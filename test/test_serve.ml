(* Tests for the query service: the shared s-expression dialect, the
   wire protocol, the content-addressed store, the deduplicating
   scheduler with per-request deadlines, and the listener's fault
   policy. *)

open Fact_sexp
open Fact_resilience
open Fact_serve

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "fact-test-serve-%d-%d" (Unix.getpid ()) !counter)
    in
    (match Unix.mkdir d 0o700 with
    | () -> ()
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let rm_rf dir =
  (match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | files ->
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      files);
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let ra2 = Query.Ra { n = 2; adv = Query.Preset "wait-free" }

(* ------------------------------------------------------------------ *)
(* Sexp                                                               *)
(* ------------------------------------------------------------------ *)

let test_sexp_roundtrip () =
  let roundtrip sx =
    match Sexp.of_string (Sexp.to_string sx) with
    | Ok got -> Alcotest.(check bool) "roundtrip" true (got = sx)
    | Error m -> Alcotest.failf "reparse failed: %s" m
  in
  roundtrip (Sexp.Atom "plain");
  roundtrip (Sexp.Atom "");
  roundtrip (Sexp.Atom "with space");
  roundtrip (Sexp.Atom "quo\"te and back\\slash");
  roundtrip (Sexp.Atom "line1\nline2\ttabbed\rcr");
  roundtrip (Sexp.Atom "(parens)");
  roundtrip (Sexp.List []);
  roundtrip
    (Sexp.List
       [ Sexp.Atom "k"; Sexp.List [ Sexp.int 42; Sexp.Atom "v v" ];
         Sexp.Atom "\"" ]);
  (* plain atoms stay unquoted: the historical trace format is stable *)
  check_string "unquoted" "(run 3 (s0 c1))"
    (Sexp.to_string
       (Sexp.List
          [ Sexp.Atom "run"; Sexp.int 3;
            Sexp.List [ Sexp.Atom "s0"; Sexp.Atom "c1" ] ]));
  (* parse errors carry an offset and never raise *)
  (match Sexp.of_string "(unclosed" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unclosed list parsed");
  (match Sexp.of_string "a b" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage parsed");
  match Sexp.of_string "\"unterminated" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated string parsed"

let test_checkpoint_error_names_file () =
  let file =
    Filename.concat (fresh_dir ()) "broken.ck"
  in
  let oc = open_out file in
  output_string oc "(this is (not a checkpoint))";
  close_out oc;
  (match Fact_check.Checkpoint.load file with
  | Ok _ -> Alcotest.fail "garbage checkpoint loaded"
  | Error msg ->
    check_bool "message names the file" true
      (String.length msg >= String.length file
      && String.sub msg 0 (String.length file) = file));
  Sys.remove file;
  match Fact_check.Checkpoint.load file with
  | Ok _ -> Alcotest.fail "missing checkpoint loaded"
  | Error msg ->
    (* Sys_error from open_in already names the path *)
    check_bool "missing file named" true
      (let rec contains i =
         i + String.length file <= String.length msg
         && (String.sub msg i (String.length file) = file
            || contains (i + 1))
       in
       contains 0)

(* ------------------------------------------------------------------ *)
(* Query / Digest / Wire                                              *)
(* ------------------------------------------------------------------ *)

let test_query_roundtrip () =
  let queries =
    [
      ra2;
      Query.Ra { n = 3; adv = Query.Live [ [ 0; 1 ]; [ 2 ] ] };
      Query.Chr { n = 3; m = 2 };
      Query.Critical { n = 3; adv = Query.Preset "fig5b" };
      Query.Setcon { n = 4; adv = Query.Preset "t-res:1" };
      Query.Fairness { n = 3; adv = Query.Preset "k-of:2" };
      Query.Explore { protocol = "is"; n = 2; max_runs = 100 };
    ]
  in
  List.iter
    (fun q ->
      match Query.of_sexp (Query.to_sexp q) with
      | Ok got -> check_bool (Query.endpoint q) true (got = q)
      | Error m -> Alcotest.failf "%s: %s" (Query.endpoint q) m)
    queries;
  (* digests are stable, distinct per query, and hex *)
  let d1 = Digest.of_query ra2 and d2 = Digest.of_query ra2 in
  check_string "digest deterministic" d1 d2;
  check "digest hex length" 32 (String.length d1);
  check_bool "digests distinguish queries" true
    (d1 <> Digest.of_query (Query.Chr { n = 3; m = 2 }))

let test_wire_roundtrip () =
  let reqs =
    [
      Wire.Query { query = ra2; deadline_s = Some 1.5 };
      Wire.Query { query = ra2; deadline_s = None };
      Wire.Put { query = ra2; payload = "multi\nline \"payload\"" };
      Wire.Stats; Wire.Ping; Wire.Shutdown;
    ]
  in
  List.iter
    (fun r ->
      match Wire.request_of_sexp (Wire.request_to_sexp r) with
      | Ok got -> check_bool "request roundtrip" true (got = r)
      | Error m -> Alcotest.fail m)
    reqs;
  let resps =
    [
      Wire.Payload { payload = "multi\nline \"payload\""; source = Wire.Disk };
      Wire.Stats_payload "stats text";
      Wire.Pong; Wire.Shutting_down;
      Wire.Refused (Fact_error.Precondition { fn = "f"; what = "w" });
      Wire.Refused (Fact_error.Deadline_exceeded { where = "x"; budget_s = 0.5 });
      Wire.Refused (Fact_error.Cancelled { where = "x" });
      Wire.Refused
        (Fact_error.Worker_failure { fn = "f"; failed = 1; chunks = 2; first = "e" });
      Wire.Refused (Fact_error.Resource_limit { what = "w"; limit = 1; got = 2 });
      Wire.Refused (Fact_error.Unavailable { what = "shard 2 unreachable" });
      Wire.Stored { already = true };
      Wire.Stored { already = false };
    ]
  in
  List.iter
    (fun r ->
      match Wire.response_of_sexp (Wire.response_to_sexp r) with
      | Ok got -> check_bool "response roundtrip" true (got = r)
      | Error m -> Alcotest.fail m)
    resps;
  (* a request from a future protocol version is refused up front *)
  let bumped =
    match Wire.request_to_sexp Wire.Ping with
    | Sexp.List (Sexp.List [ Sexp.Atom "version"; _ ] :: rest) ->
      Sexp.List (Sexp.List [ Sexp.Atom "version"; Sexp.int 99 ] :: rest)
    | sx -> sx
  in
  match Wire.request_of_sexp bumped with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "version 99 request accepted"

(* ------------------------------------------------------------------ *)
(* Store                                                              *)
(* ------------------------------------------------------------------ *)

let test_store_restart_roundtrip () =
  let dir = fresh_dir () in
  let payload = "line one\nline \"two\" (with parens)\n" in
  let digest = Digest.of_query ra2 in
  let s1 = Store.open_dir dir in
  Store.put s1 ~digest ~query:(Query.to_sexp ra2) ~payload;
  check "one entry" 1 (Store.entries s1);
  (* a fresh handle — a restarted process — reads the same bytes *)
  let s2 = Store.open_dir dir in
  (match Store.get s2 ~digest with
  | Some got -> check_string "payload survives restart" payload got
  | None -> Alcotest.fail "entry lost across restart");
  (* corrupt the file: the read drops it and degrades to a miss *)
  let file = Filename.concat dir (digest ^ ".fact") in
  let oc = open_out file in
  output_string oc "((store-version 1) garbage";
  close_out oc;
  (match Store.get s2 ~digest with
  | None -> ()
  | Some _ -> Alcotest.fail "corrupt entry served");
  check "corrupt counted" 1 (Store.stats s2).Store.corrupt;
  check_bool "corrupt file removed" false (Sys.file_exists file);
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Cache import/export hooks                                          *)
(* ------------------------------------------------------------------ *)

module String_cache = Cache.Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)

let test_cache_add_find_evict () =
  let evicted = ref [] in
  let c =
    String_cache.create ~name:"test.serve.import" ~cap:2
      ~on_evict:(fun k v -> evicted := (k, v) :: !evicted)
      ~equal:Int.equal ()
  in
  (* imports count neither hits nor misses *)
  String_cache.add c "a" 1;
  String_cache.add c "b" 2;
  let s = String_cache.stats c in
  check "no hits after import" 0 s.Cache.hits;
  check "no misses after import" 0 s.Cache.misses;
  (* probes count; the import is resident *)
  (match String_cache.find_opt c "a" with
  | Some v -> check "imported value" 1 v
  | None -> Alcotest.fail "import not resident");
  check "probe hit counted" 1 (String_cache.stats c).Cache.hits;
  check_bool "probe miss" true (String_cache.find_opt c "zz" = None);
  check "probe miss counted" 1 (String_cache.stats c).Cache.misses;
  (* growing past cap evicts (with hysteresis, down to 3/4 cap)
     through the hook *)
  String_cache.add c "c" 3;
  check_bool "bounded" true ((String_cache.stats c).Cache.size <= 2);
  check_bool "eviction hook fired" true (!evicted <> []);
  (* re-importing a resident key keeps the resident value *)
  String_cache.add c "c" 99;
  match String_cache.find_opt c "c" with
  | Some v -> check "resident entry wins" 3 v
  | None -> Alcotest.fail "resident entry evicted by re-import"

(* ------------------------------------------------------------------ *)
(* Scheduler                                                          *)
(* ------------------------------------------------------------------ *)

let payload_of = function
  | Ok (o : Scheduler.outcome) -> o.Scheduler.payload
  | Error e -> Alcotest.failf "unexpected refusal: %s" (Fact_error.to_string e)

let test_scheduler_dedup () =
  let sched = Scheduler.create () in
  (* occupy the executor with a slow job, then race two identical
     queries: the second must join the first's in-flight job *)
  let slow = Query.Explore { protocol = "alg1"; n = 2; max_runs = 20_000 } in
  let slow_t =
    Thread.create (fun () -> ignore (Scheduler.submit sched slow)) ()
  in
  Thread.delay 0.05;
  let results = Array.make 2 None in
  let racers =
    Array.init 2 (fun i ->
        Thread.create
          (fun () -> results.(i) <- Some (Scheduler.submit sched ra2))
          ())
  in
  Array.iter Thread.join racers;
  Thread.join slow_t;
  let p0 = payload_of (Option.get results.(0)) in
  let p1 = payload_of (Option.get results.(1)) in
  check_string "deduplicated answers identical" p0 p1;
  check_string "answers match a direct eval" (Query.eval ra2) p0;
  check_bool "a join was recorded" true (Scheduler.dedup sched >= 1);
  (* a repeat is now a cache hit *)
  (match Scheduler.submit sched ra2 with
  | Ok { Scheduler.source = Wire.Memory; payload } ->
    check_string "memory hit identical" p0 payload
  | Ok { Scheduler.source = s; _ } ->
    Alcotest.failf "expected memory hit, got %s" (Wire.source_to_string s)
  | Error e -> Alcotest.fail (Fact_error.to_string e));
  Scheduler.shutdown sched;
  (* after shutdown, submissions fail with a typed Cancelled *)
  match Scheduler.submit sched ra2 with
  | Error (Fact_error.Cancelled _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Fact_error.to_string e)
  | Ok _ -> Alcotest.fail "submit succeeded after shutdown"

let test_scheduler_deadline () =
  let sched = Scheduler.create () in
  (* an impossible budget: either the queue check or the Cancel token
     trips, both must surface as a typed Deadline_exceeded *)
  let expensive = Query.Ra { n = 4; adv = Query.Preset "wait-free" } in
  (match Scheduler.submit sched ~deadline_s:0.0005 expensive with
  | Error (Fact_error.Deadline_exceeded _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Fact_error.to_string e)
  | Ok _ -> Alcotest.fail "expensive query beat a 0.5ms deadline");
  (* the executor survives and serves the next request *)
  (match Scheduler.submit sched ra2 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Fact_error.to_string e));
  Scheduler.shutdown sched

let test_scheduler_store_warm () =
  let dir = fresh_dir () in
  let store = Store.open_dir dir in
  let sched = Scheduler.create ~store () in
  let first = payload_of (Scheduler.submit sched ra2) in
  check "computed result persisted" 1 (Store.entries store);
  Scheduler.shutdown sched;
  (* restart: the same store warm-starts the cache; the answer comes
     from disk and is byte-identical *)
  let store2 = Store.open_dir dir in
  let sched2 = Scheduler.create ~store:store2 () in
  (match Scheduler.submit sched2 ra2 with
  | Ok { Scheduler.payload; source = Wire.Disk } ->
    check_string "disk answer identical" first payload
  | Ok { Scheduler.source = s; _ } ->
    Alcotest.failf "expected disk hit, got %s" (Wire.source_to_string s)
  | Error e -> Alcotest.fail (Fact_error.to_string e));
  Scheduler.shutdown sched2;
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Listener + Client                                                  *)
(* ------------------------------------------------------------------ *)

let with_server ?store f =
  let dir = fresh_dir () in
  let sock = Filename.concat dir "test.sock" in
  let store = Option.map (fun () -> Store.open_dir (Filename.concat dir "store")) store in
  let scheduler = Scheduler.create ?store () in
  let listener = Listener.start_scheduler ~scheduler (Listener.Unix_sock sock) in
  Fun.protect
    ~finally:(fun () ->
      Listener.stop listener;
      (match store with Some s -> rm_rf (Store.dir s) | None -> ());
      rm_rf dir)
    (fun () -> f (Listener.Unix_sock sock))

let test_concurrent_clients_identical () =
  with_server (fun addr ->
      let reference = Query.eval ra2 in
      let results = Array.make 4 None in
      let clients =
        Array.init 4 (fun i ->
            Thread.create
              (fun () ->
                results.(i) <-
                  Some
                    (Client.with_connection addr (fun c ->
                         fst (Client.query c ra2))))
              ())
      in
      Array.iter Thread.join clients;
      Array.iter
        (function
          | Some p -> check_string "client payload = one-shot eval" reference p
          | None -> Alcotest.fail "client returned nothing")
        results)

let test_listener_bad_frames () =
  with_server (fun addr ->
      let sock_path =
        match addr with Listener.Unix_sock p -> p | _ -> assert false
      in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock_path);
      (* a malformed request gets a typed refusal... *)
      Wire.write_frame fd "((not a)) request";
      (match Wire.read_frame ~max_frame:Wire.default_max_frame fd with
      | Ok raw -> (
        match Result.bind (Sexp.of_string raw) Wire.response_of_sexp with
        | Ok (Wire.Refused (Fact_error.Precondition _)) -> ()
        | Ok _ -> Alcotest.fail "expected a Precondition refusal"
        | Error m -> Alcotest.fail m)
      | Error _ -> Alcotest.fail "no reply to malformed frame");
      (* ...and the same connection still serves *)
      Wire.write_frame fd (Sexp.to_string (Wire.request_to_sexp Wire.Ping));
      (match Wire.read_frame ~max_frame:Wire.default_max_frame fd with
      | Ok raw -> (
        match Result.bind (Sexp.of_string raw) Wire.response_of_sexp with
        | Ok Wire.Pong -> ()
        | _ -> Alcotest.fail "connection unusable after refusal")
      | Error _ -> Alcotest.fail "connection closed after refusal");
      Unix.close fd;
      (* an oversized frame gets a typed refusal, then the connection
         closes; the listener itself keeps accepting *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock_path);
      let hdr = Bytes.create 4 in
      Bytes.set_int32_be hdr 0 (Int32.of_int (Wire.default_max_frame + 1));
      ignore (Unix.write fd hdr 0 4);
      (match Wire.read_frame ~max_frame:Wire.default_max_frame fd with
      | Ok raw -> (
        match Result.bind (Sexp.of_string raw) Wire.response_of_sexp with
        | Ok (Wire.Refused (Fact_error.Resource_limit _)) -> ()
        | Ok _ -> Alcotest.fail "expected a Resource_limit refusal"
        | Error m -> Alcotest.fail m)
      | Error _ -> Alcotest.fail "no reply to oversized frame");
      Unix.close fd;
      Client.with_connection addr (fun c -> Client.ping c))

let test_client_deadline_typed () =
  with_server (fun addr ->
      Client.with_connection addr (fun c ->
          let expensive = Query.Ra { n = 4; adv = Query.Preset "wait-free" } in
          (match Client.query c ~deadline_s:0.0005 expensive with
          | _ -> Alcotest.fail "expensive query beat a 0.5ms deadline"
          | exception Fact_error.Error e ->
            check "deadline maps to exit 3" 3 (Fact_error.exit_code e));
          (* the same connection, and the server, keep working *)
          let p, _ = Client.query c ra2 in
          check_string "served after deadline" (Query.eval ra2) p))

let test_serve_chaos () =
  let stats = Serve_chaos.run ~seed:7 ~max_faults:12 () in
  check "all faults injected" 12 stats.Serve_chaos.injected;
  Alcotest.(check (list string)) "no violations" [] stats.Serve_chaos.violations

(* ------------------------------------------------------------------ *)
(* Crash simulation, adversarial I/O, retry / unavailable             *)
(* ------------------------------------------------------------------ *)

let chr21 = Query.Chr { n = 2; m = 1 }

let test_store_crash_sim () =
  let dir = fresh_dir () in
  let digest = Digest.of_query ra2 in
  let s1 = Store.open_dir dir in
  Store.put s1 ~digest ~query:(Query.to_sexp ra2) ~payload:"committed";
  (* a writer killed mid-put leaves an un-renamed tmp file... *)
  let oc = open_out (Filename.concat dir ("." ^ digest ^ "dead.tmp")) in
  output_string oc "((store-version 1) (trunc";
  close_out oc;
  (* ...and a crash can tear a file that carries a committed name *)
  let torn_digest = Digest.of_query chr21 in
  let oc = open_out (Filename.concat dir (torn_digest ^ ".fact")) in
  output_string oc "((store-version 1) (digest";
  close_out oc;
  (* reboot: the tmp is swept, the torn entry quarantined, the good
     entry served byte-for-byte *)
  let s2 = Store.open_dir dir in
  check "tmp swept at boot" 1 (Store.stats s2).Store.swept;
  check_bool "no tmp files survive" false
    (Array.exists (fun f -> Filename.check_suffix f ".tmp") (Sys.readdir dir));
  (match Store.get s2 ~digest with
  | Some p -> check_string "committed entry intact" "committed" p
  | None -> Alcotest.fail "committed entry lost");
  (match Store.get s2 ~digest:torn_digest with
  | None -> ()
  | Some _ -> Alcotest.fail "torn entry served");
  check "torn entry quarantined" 1 (Store.stats s2).Store.corrupt;
  check_bool "torn entry removed" false (Store.has s2 ~digest:torn_digest);
  rm_rf dir

let test_scheduler_inject () =
  let dir = fresh_dir () in
  let store = Store.open_dir dir in
  let sched = Scheduler.create ~store () in
  let payload = Query.eval ra2 in
  (match Scheduler.inject sched ra2 ~payload with
  | Ok `Stored -> ()
  | Ok `Already -> Alcotest.fail "first inject reported already-stored"
  | Error e -> Alcotest.fail (Fact_error.to_string e));
  (match Scheduler.inject sched ra2 ~payload with
  | Ok `Already -> ()
  | Ok `Stored -> Alcotest.fail "second inject not idempotent"
  | Error e -> Alcotest.fail (Fact_error.to_string e));
  check_bool "entry on disk" true (Store.has store ~digest:(Digest.of_query ra2));
  (* an injected entry serves as a disk-sourced result — the cluster's
     read-repair contract: warm re-serves report source=disk *)
  (match Scheduler.submit sched ra2 with
  | Ok { Scheduler.payload = p; source = Wire.Disk } ->
    check_string "injected payload served" payload p
  | Ok { Scheduler.source = s; _ } ->
    Alcotest.failf "expected disk source, got %s" (Wire.source_to_string s)
  | Error e -> Alcotest.fail (Fact_error.to_string e));
  Scheduler.shutdown sched;
  rm_rf dir

let test_wire_adversarial_io () =
  with_server (fun addr ->
      let sock_path =
        match addr with Listener.Unix_sock p -> p | _ -> assert false
      in
      (* slow-loris: a valid ping delivered one byte at a time must be
         assembled and answered, not misread or hung on *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock_path);
      let req = Sexp.to_string (Wire.request_to_sexp Wire.Ping) in
      let n = String.length req in
      let frame = Bytes.create (4 + n) in
      Bytes.set_int32_be frame 0 (Int32.of_int n);
      Bytes.blit_string req 0 frame 4 n;
      for i = 0 to Bytes.length frame - 1 do
        ignore (Unix.write fd frame i 1);
        if i mod 5 = 0 then Thread.delay 0.002
      done;
      (match Wire.read_frame ~max_frame:Wire.default_max_frame fd with
      | Ok raw -> (
        match Result.bind (Sexp.of_string raw) Wire.response_of_sexp with
        | Ok Wire.Pong -> ()
        | _ -> Alcotest.fail "slow-loris ping mis-answered")
      | Error _ -> Alcotest.fail "no reply to slow-loris ping");
      Unix.close fd;
      (* mid-frame disconnect: declare 100 bytes, deliver 10, hang up;
         only that connection dies *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock_path);
      let partial = Bytes.create 14 in
      Bytes.set_int32_be partial 0 100l;
      ignore (Unix.write fd partial 0 14);
      Unix.close fd;
      (* the listener keeps serving fresh clients *)
      Client.with_connection addr Client.ping)

let test_bind_failure_typed () =
  let l1 =
    Listener.start ~handler:(fun _ -> Wire.Pong) (Listener.Tcp ("127.0.0.1", 0))
  in
  let port =
    match Listener.bound_addr l1 with Listener.Tcp (_, p) -> p | _ -> 0
  in
  check_bool "kernel assigned a port" true (port > 0);
  (* a second bind on a live port must be a typed, retryable refusal —
     the EADDRINUSE a supervisor restart loop has to absorb *)
  (match
     Listener.start ~handler:(fun _ -> Wire.Pong)
       (Listener.Tcp ("127.0.0.1", port))
   with
  | l2 ->
    Listener.stop l2;
    Alcotest.fail "second bind on a live port succeeded"
  | exception Fact_error.Error e ->
    check "bind failure maps to exit 7" 7 (Fact_error.exit_code e);
    check_bool "bind failure is retryable" true
      (Fact_error.is_unavailable (Fact_error.Error e)));
  Listener.stop l1

let test_client_unavailable_retry () =
  let dir = fresh_dir () in
  let missing = Listener.Unix_sock (Filename.concat dir "absent.sock") in
  (match Client.connect missing with
  | c ->
    Client.close c;
    Alcotest.fail "connected to a nonexistent server"
  | exception Fact_error.Error e ->
    check "unreachable maps to exit 7" 7 (Fact_error.exit_code e));
  let backoff = Backoff.make ~base_ms:1. ~max_ms:2. () in
  (match Client.query_with_retry ~retries:2 ~backoff missing ra2 with
  | _ -> Alcotest.fail "query against nothing succeeded"
  | exception Fact_error.Error e ->
    check_bool "budget exhausted stays typed" true
      (Fact_error.is_unavailable (Fact_error.Error e)));
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Ring, loadgen, cluster                                             *)
(* ------------------------------------------------------------------ *)

let test_ring_determinism_balance () =
  let r1 = Ring.create ~shards:4 () and r2 = Ring.create ~shards:4 () in
  let keys = List.init 500 (fun i -> Printf.sprintf "key-%d" i) in
  List.iter
    (fun k -> check "ring deterministic" (Ring.shard_of r1 k) (Ring.shard_of r2 k))
    keys;
  let spread = Ring.spread r1 keys in
  check "spread accounts for every key" 500 (Array.fold_left ( + ) 0 spread);
  Array.iter
    (fun c -> check_bool "every shard carries load" true (c > 0))
    spread;
  Array.iter
    (fun c -> check_bool "no shard owns a majority" true (c < 250))
    spread;
  (* consistency: adding a shard remaps a minority of the keyspace *)
  let r5 = Ring.create ~shards:5 () in
  let moved =
    List.length
      (List.filter (fun k -> Ring.shard_of r1 k <> Ring.shard_of r5 k) keys)
  in
  check_bool "resize moves a minority of keys" true (moved < 250)

let test_loadgen_zero_failures () =
  with_server ~store:() (fun addr ->
      let r =
        Loadgen.run ~threads:3 ~requests:12 ~retries:1
          ~queries:[ ra2; chr21 ] addr
      in
      check "every request answered" 12 r.Loadgen.ok;
      check "zero failures" 0 r.Loadgen.failed;
      check "sources partition the answers" 12
        (r.Loadgen.computed + r.Loadgen.memory + r.Loadgen.disk))

let rec rm_rf_deep dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | files ->
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if (try Sys.is_directory p with Sys_error _ -> false) then rm_rf_deep p
        else try Sys.remove p with Sys_error _ -> ())
      files;
    (try Unix.rmdir dir with Unix.Unix_error _ -> ())

let test_cluster_e2e () =
  let dir = fresh_dir () in
  let cfg =
    Cluster.config ~dir:(Filename.concat dir "c") ~shards:2 ~replicas:2
      ~attempt_timeout_s:5.
      ~backoff:(Backoff.make ~base_ms:50. ~max_ms:500. ())
      ~heartbeat_period_s:0.2 ~fail_threshold:2 ()
  in
  let cluster = Cluster.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Cluster.stop cluster;
      rm_rf_deep dir)
    (fun () ->
      let reference = Query.eval ra2 in
      let q () =
        match
          Cluster.handler cluster (Wire.Query { query = ra2; deadline_s = None })
        with
        | Wire.Payload { payload; _ } -> payload
        | Wire.Refused e -> Alcotest.fail (Fact_error.to_string e)
        | _ -> Alcotest.fail "unexpected response shape"
      in
      check_string "cluster answer = one-shot eval" reference (q ());
      let shard = Cluster.shard_of cluster ra2 in
      (* one replica down: the twin serves *)
      Cluster.kill_worker cluster ~shard ~replica:0;
      check_string "survives a replica kill" reference (q ());
      (* whole shard down: the front tier degrades to local eval *)
      Cluster.kill_worker cluster ~shard ~replica:0;
      Cluster.kill_worker cluster ~shard ~replica:1;
      check_string "survives a shard blackout" reference (q ());
      check_bool "faults were actually routed around" true
        (Cluster.failovers cluster + Cluster.degraded cluster > 0))

let test_cluster_chaos () =
  let s = Serve_chaos.run_cluster ~seed:3 ~max_faults:6 () in
  check "all faults injected" 6 s.Serve_chaos.c_injected;
  Alcotest.(check (list string)) "no violations" [] s.Serve_chaos.c_violations;
  check_bool "every fault recovered" true (s.Serve_chaos.c_recovered > 0)

(* ------------------------------------------------------------------ *)
(* Zero-copy wire path                                                *)
(* ------------------------------------------------------------------ *)

(* The buffered writer must emit exactly the bytes the one-shot
   [Sexp.to_string] rendering produced before it existed: the wire
   format is versioned, and a quoting difference would split the
   protocol in two. One writer/reader pair over a socketpair, messages
   chosen to hit every atom class (bare, quoted-without-escapes,
   escaped, empty) and to reuse the buffers across frames. *)
let test_wire_writer_byte_identity () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let w = Wire.writer a and r = Wire.reader b in
  let recv () =
    match Wire.read_frame_view r ~max_frame:Wire.default_max_frame with
    | Ok (raw, len) -> String.sub raw 0 len
    | Error _ -> Alcotest.fail "frame expected"
  in
  let payloads =
    [
      "bare-atom_123"; "with space and (parens)"; "esc \"q\" b\\s\nnl\ttab\rcr";
      ""; String.make 5000 'x' ^ "\"" ^ String.make 5000 'y';
    ]
  in
  List.iter
    (fun p ->
      List.iter
        (fun rq ->
          Wire.write_request w rq;
          check_string "request bytes"
            (Sexp.to_string (Wire.request_to_sexp rq))
            (recv ()))
        [
          Wire.Query { query = ra2; deadline_s = Some 1.5 };
          Wire.Query { query = ra2; deadline_s = None };
          Wire.Put { query = ra2; payload = p };
          Wire.Stats; Wire.Ping; Wire.Shutdown;
        ];
      List.iter
        (fun resp ->
          Wire.write_response w resp;
          check_string "response bytes"
            (Sexp.to_string (Wire.response_to_sexp resp))
            (recv ()))
        [
          Wire.Payload { payload = p; source = Wire.Computed };
          Wire.Payload { payload = p; source = Wire.Memory };
          Wire.Payload { payload = p; source = Wire.Disk };
          Wire.Stats_payload p;
          Wire.Pong; Wire.Shutting_down;
          Wire.Stored { already = true };
          Wire.Stored { already = false };
          Wire.Refused (Fact_error.Precondition { fn = "f"; what = p });
          Wire.Refused
            (Fact_error.Deadline_exceeded { where = "x"; budget_s = 0.5 });
          Wire.Refused
            (Fact_error.Worker_failure
               { fn = "f"; failed = 1; chunks = 2; first = p });
          Wire.Refused
            (Fact_error.Resource_limit { what = "w"; limit = 1; got = 2 });
          Wire.Refused (Fact_error.Unavailable { what = p });
          Wire.Refused (Fact_error.Cancelled { where = "x" });
        ])
    payloads;
  (* both framing layers interoperate: writer frames parse under the
     allocating reader and vice versa *)
  Wire.write_request w Wire.Ping;
  (match Wire.read_frame ~max_frame:Wire.default_max_frame b with
  | Ok s -> check_string "writer -> read_frame" "((version 2) (request ping))" s
  | Error _ -> Alcotest.fail "frame expected");
  Wire.write_frame a "((version 2) (request ping))";
  check_string "write_frame -> reader" "((version 2) (request ping))" (recv ());
  Unix.close a;
  Unix.close b

(* Per-connection buffers mean concurrent connections can never
   interleave partial frames, and the refusal path reuses its scratch
   instead of allocating per refusal. Eight threads hammer one
   listener with large echo payloads (distinct per thread) mixed with
   malformed requests; every reply must come back intact and in
   request order on its own connection. *)
let test_concurrent_no_interleave () =
  let dir = fresh_dir () in
  let sock = Filename.concat dir "interleave.sock" in
  let handler = function
    | Wire.Put { payload; query = _ } ->
      Wire.Payload { payload; source = Wire.Computed }
    | _ -> Wire.Pong
  in
  let listener = Listener.start ~handler (Listener.Unix_sock sock) in
  let errors = ref 0 in
  let lock = Mutex.create () in
  let flag () = Mutex.lock lock; incr errors; Mutex.unlock lock in
  let worker tid =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX sock);
    let w = Wire.writer fd and r = Wire.reader fd in
    let parse () =
      match Wire.read_frame_view r ~max_frame:Wire.default_max_frame with
      | Error _ -> Error "short read"
      | Ok (raw, len) -> (
        match Sexp.of_substring raw ~pos:0 ~len with
        | Error m -> Error m
        | Ok sx -> Wire.response_of_sexp sx)
    in
    for i = 1 to 25 do
      let payload =
        Printf.sprintf "t%d:%d:%s" tid i
          (String.make (2048 + (tid * 131)) (Char.chr (Char.code 'A' + tid)))
      in
      Wire.write_request w (Wire.Put { query = ra2; payload });
      (match parse () with
      | Ok (Wire.Payload { payload = got; _ }) when got = payload -> ()
      | _ -> flag ());
      if i mod 5 = 0 then begin
        (* well-formed sexp, ill-formed request: a refusal that must
           not disturb this or any other connection's framing *)
        Wire.write_frame fd "(not a request)";
        match parse () with
        | Ok (Wire.Refused _) -> ()
        | _ -> flag ()
      end
    done;
    Unix.close fd
  in
  let ths = List.init 8 (fun tid -> Thread.create worker tid) in
  List.iter Thread.join ths;
  Listener.stop listener;
  rm_rf dir;
  check "corrupted or misordered replies" 0 !errors

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "sexp roundtrip" `Quick test_sexp_roundtrip;
    Alcotest.test_case "checkpoint error names file" `Quick
      test_checkpoint_error_names_file;
    Alcotest.test_case "query roundtrip + digest" `Quick test_query_roundtrip;
    Alcotest.test_case "wire roundtrip + version" `Quick test_wire_roundtrip;
    Alcotest.test_case "store restart roundtrip" `Quick
      test_store_restart_roundtrip;
    Alcotest.test_case "cache import/probe/evict hooks" `Quick
      test_cache_add_find_evict;
    Alcotest.test_case "scheduler dedup" `Slow test_scheduler_dedup;
    Alcotest.test_case "scheduler deadline" `Quick test_scheduler_deadline;
    Alcotest.test_case "scheduler store warm restart" `Quick
      test_scheduler_store_warm;
    Alcotest.test_case "concurrent clients identical" `Quick
      test_concurrent_clients_identical;
    Alcotest.test_case "listener bad frames" `Quick test_listener_bad_frames;
    Alcotest.test_case "client deadline typed" `Quick
      test_client_deadline_typed;
    Alcotest.test_case "serve chaos" `Slow test_serve_chaos;
    Alcotest.test_case "store crash simulation" `Quick test_store_crash_sim;
    Alcotest.test_case "scheduler inject (write-through)" `Quick
      test_scheduler_inject;
    Alcotest.test_case "wire adversarial io" `Quick test_wire_adversarial_io;
    Alcotest.test_case "bind failure typed unavailable" `Quick
      test_bind_failure_typed;
    Alcotest.test_case "client unavailable + retry budget" `Quick
      test_client_unavailable_retry;
    Alcotest.test_case "ring determinism + balance" `Quick
      test_ring_determinism_balance;
    Alcotest.test_case "loadgen zero failures" `Quick
      test_loadgen_zero_failures;
    Alcotest.test_case "cluster end-to-end" `Slow test_cluster_e2e;
    Alcotest.test_case "cluster chaos storm" `Slow test_cluster_chaos;
    Alcotest.test_case "wire writer byte identity" `Quick
      test_wire_writer_byte_identity;
    Alcotest.test_case "concurrent connections no interleave" `Quick
      test_concurrent_no_interleave;
  ]
