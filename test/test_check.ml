(* Tests for lib/check: decision traces, deterministic replay, the
   DFS explorer with sleep-set pruning and crash injection, greedy
   counterexample shrinking, and the Gen/Shrink/Prop property core.

   The headline checks are the model-checking ones: exhaustive
   exploration of small instances against the paper's topological
   oracles — one-shot IS interleavings vs the facets of Chr s (the
   ordered-set-partition correspondence), and Algorithm 1 vs R_A
   (Theorem 7) with crash injection up to the α-model bound. *)

open Fact_topology
open Fact_adversary
open Fact_affine
open Fact_runtime
open Fact_check

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let ps = Pset.of_list

(* ------------------------------------------------------------------ *)
(* Trace: construction, validation, serialization                     *)
(* ------------------------------------------------------------------ *)

let test_trace_roundtrip () =
  let tr =
    Trace.make ~n:3 ~participants:(ps [ 0; 1; 2 ])
      [ Trace.Step 0; Trace.Step 1; Trace.Crash 2; Trace.Step 0 ]
  in
  let s = Trace.to_string tr in
  check_str "printed form"
    "((n 3) (participants (0 1 2)) (decisions (s0 s1 c2 s0)))" s;
  (match Trace.of_string s with
  | Ok tr2 -> check_bool "round-trip" true (Trace.equal tr tr2)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  check "crashes" 1 (Pset.cardinal (Trace.crashes tr))

let test_trace_parse_errors () =
  let bad s =
    match Trace.of_string s with Ok _ -> false | Error _ -> true
  in
  check_bool "garbage" true (bad "hello");
  check_bool "unclosed" true (bad "((n 2) (participants (0 1)");
  check_bool "bad decision" true
    (bad "((n 2) (participants (0 1)) (decisions (x0)))");
  check_bool "step after crash" true
    (bad "((n 2) (participants (0 1)) (decisions (c0 s0)))");
  check_bool "non-participant" true
    (bad "((n 2) (participants (0)) (decisions (s1)))")

let test_trace_validation () =
  let raises f = match f () with _ -> false | exception Invalid_argument _ -> true in
  check_bool "decision on crashed" true
    (raises (fun () ->
         Trace.make ~n:2 ~participants:(Pset.full 2)
           [ Trace.Crash 0; Trace.Step 0 ]));
  check_bool "non-participant" true
    (raises (fun () ->
         Trace.make ~n:2 ~participants:(ps [ 0 ]) [ Trace.Step 1 ]))

(* ------------------------------------------------------------------ *)
(* Replay: controlled schedules are deterministic                      *)
(* ------------------------------------------------------------------ *)

let counter_procs () =
  (* Two processes interleaving writes and snapshots over shared
     memory; the decided values depend on the interleaving. *)
  let mem = Memory.create 2 in
  Array.init 2 (fun _ pid ->
      Memory.update mem ~pid (10 * (pid + 1));
      let snap = Memory.snapshot mem in
      Memory.update mem ~pid (100 * (pid + 1));
      Array.to_list snap |> List.filter_map Fun.id |> List.fold_left ( + ) 0)

let test_replay_matches_sequential () =
  (* The trace of a fully sequential schedule replays to the same
     decisions as Schedule.sequential itself. *)
  let schedule = Schedule.sequential ~n:2 ~participants:(Pset.full 2) in
  let direct = Exec.run ~schedule (counter_procs ()) in
  let steps_of pid =
    match direct.Exec.outcomes.(pid) with
    | Exec.Decided _ -> ()
    | _ -> Alcotest.failf "p%d did not decide" pid
  in
  steps_of 0;
  steps_of 1;
  (* p0 runs to completion (4 scheduled steps: the start plus one
     resume per yield point — each Memory op yields before executing),
     then p1. *)
  let tr =
    Trace.make ~n:2 ~participants:(Pset.full 2)
      [ Trace.Step 0; Trace.Step 0; Trace.Step 0; Trace.Step 0;
        Trace.Step 1; Trace.Step 1; Trace.Step 1; Trace.Step 1 ]
  in
  let replayed = Replay.run ~procs:(counter_procs ()) tr in
  check_bool "same decisions" true
    (Exec.decided replayed = Exec.decided direct)

let test_replay_deterministic () =
  let tr =
    Trace.make ~n:2 ~participants:(Pset.full 2)
      [ Trace.Step 0; Trace.Step 1; Trace.Step 1; Trace.Step 0;
        Trace.Step 0; Trace.Step 1; Trace.Step 1; Trace.Step 0 ]
  in
  let r1 = Replay.run ~procs:(counter_procs ()) tr in
  let r2 = Replay.run ~procs:(counter_procs ()) tr in
  check_bool "identical decisions" true (Exec.decided r1 = Exec.decided r2)

let test_replay_crash () =
  (* Crashing p0 before its first step: p1 sees only itself. *)
  let tr =
    Trace.make ~n:2 ~participants:(Pset.full 2)
      [ Trace.Crash 0; Trace.Step 1; Trace.Step 1; Trace.Step 1;
        Trace.Step 1 ]
  in
  let r = Replay.run ~procs:(counter_procs ()) tr in
  (match r.Exec.outcomes.(0) with
  | Exec.Crashed 0 -> ()
  | _ -> Alcotest.fail "p0 should crash with 0 steps");
  Alcotest.(check (list (pair int int))) "p1 sees only itself" [ (1, 20) ]
    (Exec.decided r)

(* ------------------------------------------------------------------ *)
(* Explorer: exhaustive IS vs the Chr s oracle (ordered partitions)    *)
(* ------------------------------------------------------------------ *)

let test_explore_is_n2 () =
  let stats, parts = Harness.explore_immediate_snapshot ~n:2 () in
  check_bool "exhaustive" true stats.Explore.exhausted;
  check "violations" 0 (List.length stats.Explore.violations);
  check "truncated" 0 stats.Explore.truncated;
  check "ordered partitions = fubini 2" (Opart.fubini 2) (List.length parts);
  (* Oracle: the partitions are exactly those enumerated by Opart,
     i.e. the facets of Chr s. *)
  let expected = List.sort Opart.compare (Opart.enumerate (Pset.full 2)) in
  check_bool "= Opart.enumerate" true
    (List.for_all2 Opart.equal parts expected)

let test_explore_is_n3_oracle () =
  (* n=3: all 13 ordered set partitions (the 13 facets of Chr s,
     Figure 1a) arise from explored interleavings, and nothing else. *)
  let stats, parts = Harness.explore_immediate_snapshot ~n:3 () in
  check_bool "exhaustive" true stats.Explore.exhausted;
  check "violations" 0 (List.length stats.Explore.violations);
  check "ordered partitions = fubini 3" (Opart.fubini 3) (List.length parts);
  let expected = List.sort Opart.compare (Opart.enumerate (Pset.full 3)) in
  check_bool "= facets of Chr s via Opart" true
    (List.for_all2 Opart.equal parts expected);
  (* and via the complex itself *)
  let chr_runs =
    List.sort Opart.compare
      (List.map Chr.run_of_facet (Complex.facets (Chr.standard 3 |> Chr.subdivide)))
  in
  check_bool "= runs of Chr s facets" true
    (List.for_all2 Opart.equal parts chr_runs)

(* ------------------------------------------------------------------ *)
(* Explorer: Algorithm 1 vs R_A (Theorem 7), with crash injection      *)
(* ------------------------------------------------------------------ *)

let test_explore_alg1_waitfree_n2 () =
  (* Exhaustive, with the α-model crash budget α(Π)−1 = 1: every
     interleaving and crash placement keeps outputs inside R_A. *)
  let alpha = Agreement.of_adversary (Adversary.wait_free 2) in
  let stats =
    Harness.explore_algorithm1 ~alpha ~participants:(Pset.full 2) ()
  in
  check_bool "exhaustive" true stats.Explore.exhausted;
  check "violations" 0 (List.length stats.Explore.violations);
  check "truncated" 0 stats.Explore.truncated;
  (* crash patterns: {}, {0}, {1} *)
  check "crash patterns" 3 stats.Explore.crash_patterns

let test_explore_alg1_1of_n2 () =
  (* 1-OF: the wait phase spins, so runs truncate at the depth bound;
     the bounded space is still fully covered and violation-free. *)
  let alpha = Agreement.k_obstruction_free ~n:2 ~k:1 in
  let stats =
    Harness.explore_algorithm1 ~alpha ~participants:(Pset.full 2)
      ~max_depth:48 ()
  in
  check_bool "exhaustive (bounded)" true stats.Explore.exhausted;
  check "violations" 0 (List.length stats.Explore.violations);
  check_bool "wait loops were truncated" true (stats.Explore.truncated > 0)

let test_explore_alg1_waitfree_n3_bounded () =
  (* n=3 under a run budget: crash injection reaches all 7 α-model
     patterns (≤ 2 crashes among 3 processes); no violation. *)
  let alpha = Agreement.of_adversary (Adversary.wait_free 3) in
  let stats =
    Harness.explore_algorithm1 ~alpha ~participants:(Pset.full 3)
      ~max_runs:30_000 ()
  in
  check "violations" 0 (List.length stats.Explore.violations);
  check "crash patterns" 7 stats.Explore.crash_patterns;
  check_bool "hit the run budget" true (not stats.Explore.exhausted)

let test_explore_sleep_sets_prune () =
  (* Two processes writing to distinct cells: all interleavings
     commute, so sleep sets collapse the space to very few complete
     runs (vs 6 = C(4,2) without reduction for 2 steps each). *)
  let procs () =
    let mem = Memory.create 2 in
    Array.init 2 (fun _ pid ->
        Memory.update mem ~pid pid;
        pid)
  in
  let stats =
    Explore.explore ~n:2 ~participants:(Pset.full 2)
      ~subject:(fun () -> Subject.of_procs ~prop:(fun _ -> true) (procs ()))
      ()
  in
  check_bool "exhaustive" true stats.Explore.exhausted;
  check_bool "pruned something" true (stats.Explore.pruned > 0);
  (* Disjoint writes commute: strictly fewer complete runs than the
     2-step × 2-process interleaving count. *)
  check_bool "reduced" true (stats.Explore.runs < 6)

(* ------------------------------------------------------------------ *)
(* Counterexample pipeline: find → shrink → replay (skip_wait)         *)
(* ------------------------------------------------------------------ *)

let alpha_1of2 = Agreement.k_obstruction_free ~n:2 ~k:1
let ra_1of2 = Ra.complex alpha_1of2 ~n:2

let skip_wait_procs () =
  let inst = Algorithm1.create_instance ~n:2 in
  Array.init 2 (fun _ pid ->
      Algorithm1.process ~skip_wait:true inst alpha_1of2 ~pid)

let skip_wait_fails r = not (Harness.alg1_prop ~ra:ra_1of2 r)

let test_skip_wait_counterexample () =
  (* The explorer finds a run of the hand-broken protocol (no wait
     phase) escaping R_A; shrinking keeps it failing; the shrunk trace
     serializes, parses back byte-identically, and replays to the same
     failure every time. *)
  let stats =
    Harness.explore_algorithm1 ~skip_wait:true ~alpha:alpha_1of2
      ~participants:(Pset.full 2) ~max_depth:48 ~stop_on_violation:true ()
  in
  match stats.Explore.violations with
  | [] -> Alcotest.fail "no counterexample found for skip_wait"
  | v :: _ ->
    let tr = v.Explore.trace in
    check_bool "violation reproduces" true
      (skip_wait_fails (Replay.run ~procs:(skip_wait_procs ()) tr));
    let shrunk = Minimize.shrink ~procs:skip_wait_procs ~fails:skip_wait_fails tr in
    check_bool "shrunk no longer" true (Trace.length shrunk <= Trace.length tr);
    check_bool "shrunk still fails" true
      (skip_wait_fails (Replay.run ~procs:(skip_wait_procs ()) shrunk));
    (* serialization round-trip is byte-identical *)
    let s = Trace.to_string shrunk in
    (match Trace.of_string s with
    | Error e -> Alcotest.failf "parse: %s" e
    | Ok tr2 ->
      check_str "byte-identical" s (Trace.to_string tr2);
      (* deterministic replay: same decided outputs on every replay *)
      let d1 = Exec.decided (Replay.run ~procs:(skip_wait_procs ()) tr2) in
      let d2 = Exec.decided (Replay.run ~procs:(skip_wait_procs ()) tr2) in
      check_bool "replay deterministic" true
        (List.map fst d1 = List.map fst d2
        && List.for_all2
             (fun (_, a) (_, b) ->
               Simplex.equal
                 (Algorithm1.simplex_of_outputs [ a ])
                 (Algorithm1.simplex_of_outputs [ b ]))
             d1 d2))

let test_shrink_reduces_padded_trace () =
  (* Pad a real counterexample with no-op decisions (steps of already
     finished processes are skipped at replay): the padded trace still
     fails, and the shrinker strictly reduces it. *)
  let stats =
    Harness.explore_algorithm1 ~skip_wait:true ~alpha:alpha_1of2
      ~participants:(Pset.full 2) ~max_depth:48 ~stop_on_violation:true ()
  in
  let ce =
    match stats.Explore.violations with
    | v :: _ -> v.Explore.trace
    | [] -> Alcotest.fail "no counterexample found"
  in
  let padded =
    Trace.make ~n:2 ~participants:(Pset.full 2)
      (Trace.decisions ce
      @ [ Trace.Step 1; Trace.Step 0; Trace.Step 1; Trace.Step 0;
          Trace.Step 1; Trace.Step 0 ])
  in
  check_bool "padded trace fails" true
    (skip_wait_fails (Replay.run ~procs:(skip_wait_procs ()) padded));
  let shrunk =
    Minimize.shrink ~procs:skip_wait_procs ~fails:skip_wait_fails padded
  in
  check_bool "still fails" true
    (skip_wait_fails (Replay.run ~procs:(skip_wait_procs ()) shrunk));
  check_bool "strictly shorter" true
    (Trace.length shrunk < Trace.length padded);
  check_bool "no more context switches" true
    (Minimize.context_switches shrunk <= Minimize.context_switches padded)

(* ------------------------------------------------------------------ *)
(* Property core: Gen / Shrink / Prop                                  *)
(* ------------------------------------------------------------------ *)

let test_gen_deterministic () =
  let g = Gen.list ~len:(Gen.int_range 0 10) (Gen.int 1000) in
  let a = Gen.run ~seed:7 g and b = Gen.run ~seed:7 g in
  check_bool "same seed, same value" true (a = b);
  let c = Gen.run ~seed:8 g in
  check_bool "different seed differs" true (a <> c);
  (* subset generators respect their bounds *)
  for seed = 0 to 20 do
    let p = Gen.run ~seed (Gen.pset ~n:3) in
    check_bool "nonempty" false (Pset.is_empty p);
    check_bool "inside universe" true (Pset.subset p (Pset.full 3))
  done

let test_prop_pass_and_fail () =
  (match
     Prop.check ~count:50 ~seed:1 ~name:"sorted concat"
       (Gen.list ~len:(Gen.int_range 0 8) (Gen.int 100))
       (fun l -> List.length (List.sort compare l) = List.length l)
   with
  | Prop.Ok { count } -> check "all ran" 50 count
  | Prop.Fail _ -> Alcotest.fail "true property failed");
  (* a failing property shrinks to the minimal counterexample *)
  match
    Prop.check ~count:200 ~seed:1 ~name:"all < 50" ~shrink:Shrink.int
      (Gen.int 1000)
      (fun x -> x < 50)
  with
  | Prop.Ok _ -> Alcotest.fail "false property passed"
  | Prop.Fail { original; shrunk; _ } ->
    check_bool "original fails" true (original >= 50);
    check "shrunk to boundary" 50 shrunk

let test_prop_iteration_replays_standalone () =
  (* The state of iteration i is Random.State.make [|seed; i|]: a
     reported failure replays without rerunning iterations 0..i-1. *)
  let gen = Gen.int 1_000_000 in
  match
    Prop.check ~count:100 ~seed:42 ~name:"evens" gen (fun x -> x mod 2 = 0)
  with
  | Prop.Ok _ -> Alcotest.fail "should fail"
  | Prop.Fail { iteration; original; _ } ->
    let replayed = gen (Random.State.make [| 42; iteration |]) in
    check "standalone replay" original replayed

let test_prop_exception_is_failure () =
  match
    Prop.check ~count:10 ~seed:3 ~name:"raises" (Gen.int 10) (fun _ ->
        failwith "boom")
  with
  | Prop.Ok _ -> Alcotest.fail "raising property passed"
  | Prop.Fail { error; _ } ->
    check_bool "error recorded" true
      (match error with Some e -> e <> "" | None -> false)

let test_shrink_int_well_founded () =
  (* Shrink candidates are strictly smaller in absolute value, so any
     greedy descent terminates. *)
  List.iter
    (fun i ->
      List.iter
        (fun c -> check_bool "smaller" true (abs c < abs i))
        (Shrink.int i))
    [ 1; 2; 17; 1000 ];
  check "no candidates for 0" 0 (List.length (Shrink.int 0))

(* ------------------------------------------------------------------ *)
(* Determinism regressions: seeded schedules vs FACT_DOMAINS           *)
(* ------------------------------------------------------------------ *)

let alg1_fingerprint alpha schedule =
  let report = Algorithm1.run alpha ~schedule in
  List.map
    (fun (pid, o) ->
      (pid, Pset.to_mask o.Algorithm1.view1, List.map fst o.Algorithm1.view2))
    (Exec.decided report)

let test_schedule_random_deterministic () =
  let alpha = Agreement.of_adversary (Adversary.wait_free 3) in
  for seed = 1 to 10 do
    let mk () =
      Schedule.random ~seed ~n:3 ~participants:(Pset.full 3) ~crashes:[]
    in
    check_bool "same seed, same run" true
      (alg1_fingerprint alpha (mk ()) = alg1_fingerprint alpha (mk ()))
  done

let test_schedule_alpha_model_deterministic () =
  let alpha = Agreement.of_adversary (Adversary.t_resilient ~n:3 ~t:1) in
  for seed = 1 to 10 do
    let mk () = Schedule.alpha_model ~seed alpha ~participation:(Pset.full 3) in
    check_bool "same faulty set" true
      (Pset.equal (Schedule.faulty (mk ())) (Schedule.faulty (mk ())));
    check_bool "same seed, same run" true
      (alg1_fingerprint alpha (mk ()) = alg1_fingerprint alpha (mk ()))
  done

let test_schedules_independent_of_domains () =
  (* Seeded schedules must not depend on the Parallel fan-out
     (FACT_DOMAINS): runs are byte-identical at 1 and 4 domains. *)
  let alpha = Agreement.of_adversary (Adversary.t_resilient ~n:3 ~t:1) in
  let saved = Parallel.default_domains () in
  let fingerprints domains =
    Parallel.set_default_domains domains;
    List.init 5 (fun seed ->
        let sr =
          Schedule.random ~seed ~n:3 ~participants:(Pset.full 3) ~crashes:[]
        in
        let sa = Schedule.alpha_model ~seed alpha ~participation:(Pset.full 3) in
        (alg1_fingerprint alpha sr, alg1_fingerprint alpha sa))
  in
  let at1 = fingerprints 1 in
  let at4 = fingerprints 4 in
  Parallel.set_default_domains saved;
  check_bool "identical under 1 vs 4 domains" true (at1 = at4)

(* ------------------------------------------------------------------ *)
(* Parallel exploration: bit-identical to the sequential engine        *)
(* ------------------------------------------------------------------ *)

let is_fingerprint ~domains n =
  let stats, parts = Harness.explore_immediate_snapshot ~domains ~n () in
  ( stats.Explore.runs,
    stats.Explore.truncated,
    stats.Explore.pruned,
    stats.Explore.crash_patterns,
    stats.Explore.exhausted,
    List.map (Format.asprintf "%a" Opart.pp) parts )

let test_explore_parallel_is_identical () =
  (* The work-stealing fan-out must not change a single count: runs,
     pruned prefixes, crash patterns and the recovered partitions are
     bit-identical whatever the domain count. *)
  List.iter
    (fun n ->
      let seq = is_fingerprint ~domains:1 n in
      List.iter
        (fun d ->
          check_bool
            (Printf.sprintf "IS n=%d identical at %d domains" n d)
            true
            (is_fingerprint ~domains:d n = seq))
        [ 2; 4 ])
    [ 2; 3 ]

let test_explore_parallel_alg1_identical () =
  let alpha = Agreement.of_adversary (Adversary.wait_free 2) in
  let fingerprint domains =
    let stats =
      Harness.explore_algorithm1 ~domains ~alpha ~participants:(Pset.full 2)
        ()
    in
    ( stats.Explore.runs,
      stats.Explore.truncated,
      stats.Explore.pruned,
      stats.Explore.crash_patterns,
      List.length stats.Explore.violations,
      stats.Explore.exhausted )
  in
  let seq = fingerprint 1 in
  List.iter
    (fun d ->
      check_bool
        (Printf.sprintf "Alg1 n=2 identical at %d domains" d)
        true
        (fingerprint d = seq))
    [ 2; 4 ]

let test_explore_parallel_counterexample () =
  (* stop_on_violation keeps the lowest subtree's first violation, so
     the counterexample — and therefore its shrink — is the sequential
     one under any fan-out. *)
  let shrunk_at domains =
    let stats =
      Harness.explore_algorithm1 ~skip_wait:true ~domains ~alpha:alpha_1of2
        ~participants:(Pset.full 2) ~max_depth:48 ~stop_on_violation:true ()
    in
    match stats.Explore.violations with
    | [] -> Alcotest.fail "no counterexample found for skip_wait"
    | v :: _ ->
      Trace.to_string
        (Minimize.shrink ~procs:skip_wait_procs ~fails:skip_wait_fails
           v.Explore.trace)
  in
  let seq = shrunk_at 1 in
  List.iter
    (fun d ->
      check_str
        (Printf.sprintf "shrunk counterexample identical at %d domains" d)
        seq (shrunk_at d))
    [ 2; 4 ]

let suite =
  [
    ("trace: round-trip", `Quick, test_trace_roundtrip);
    ("trace: parse errors", `Quick, test_trace_parse_errors);
    ("trace: validation", `Quick, test_trace_validation);
    ("replay: matches sequential", `Quick, test_replay_matches_sequential);
    ("replay: deterministic", `Quick, test_replay_deterministic);
    ("replay: crash decision", `Quick, test_replay_crash);
    ("explore: IS n=2 = Chr s facets", `Quick, test_explore_is_n2);
    ("explore: IS n=3 oracle (13 partitions)", `Slow, test_explore_is_n3_oracle);
    ("explore: Alg1 wait-free n=2 exhaustive", `Slow, test_explore_alg1_waitfree_n2);
    ("explore: Alg1 1-OF n=2 bounded", `Slow, test_explore_alg1_1of_n2);
    ("explore: Alg1 wait-free n=3 budget", `Slow, test_explore_alg1_waitfree_n3_bounded);
    ("explore: sleep sets prune commuting writes", `Quick, test_explore_sleep_sets_prune);
    ("counterexample: find/shrink/replay (skip_wait)", `Slow, test_skip_wait_counterexample);
    ("counterexample: shrinking reduces padding", `Slow, test_shrink_reduces_padded_trace);
    ("gen: explicit-seed determinism", `Quick, test_gen_deterministic);
    ("prop: pass and shrink-to-boundary", `Quick, test_prop_pass_and_fail);
    ("prop: iteration replays standalone", `Quick, test_prop_iteration_replays_standalone);
    ("prop: exception counts as failure", `Quick, test_prop_exception_is_failure);
    ("shrink: int is well-founded", `Quick, test_shrink_int_well_founded);
    ("determinism: Schedule.random per seed", `Quick, test_schedule_random_deterministic);
    ("determinism: Schedule.alpha_model per seed", `Quick, test_schedule_alpha_model_deterministic);
    ("determinism: independent of FACT_DOMAINS", `Quick, test_schedules_independent_of_domains);
    ("parallel explore: IS counts identical at 1/2/4 domains", `Slow, test_explore_parallel_is_identical);
    ("parallel explore: Alg1 counts identical at 1/2/4 domains", `Slow, test_explore_parallel_alg1_identical);
    ("parallel explore: identical shrunk counterexample", `Slow, test_explore_parallel_counterexample);
  ]
