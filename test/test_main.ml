let () =
  Alcotest.run "fact"
    [ ("topology", Test_topology.suite); ("adversary", Test_adversary.suite); ("affine", Test_affine.suite); ("runtime", Test_runtime.suite); ("tasks", Test_tasks.suite); ("check", Test_check.suite); ("assertion", Test_assertion.suite); ("resilience", Test_resilience.suite); ("serve", Test_serve.suite); ("campaign", Test_campaign.suite) ]
