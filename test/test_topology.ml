(* Tests for the combinatorial-topology substrate: process sets, ordered
   partitions (IS runs), simplices, complexes and the standard chromatic
   subdivision. *)

open Fact_topology

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Pset                                                               *)
(* ------------------------------------------------------------------ *)

let test_pset_basics () =
  let s = Pset.of_list [ 0; 2; 5 ] in
  check "cardinal" 3 (Pset.cardinal s);
  check_bool "mem 2" true (Pset.mem 2 s);
  check_bool "mem 1" false (Pset.mem 1 s);
  check "min" 0 (Pset.min_elt s);
  check "max" 5 (Pset.max_elt s);
  Alcotest.(check (list int)) "to_list" [ 0; 2; 5 ] (Pset.to_list s);
  check_bool "subset" true (Pset.subset (Pset.of_list [ 0; 5 ]) s);
  check_bool "proper" true (Pset.proper_subset (Pset.of_list [ 0 ]) s);
  check_bool "not proper self" false (Pset.proper_subset s s)

let test_pset_algebra () =
  let a = Pset.of_list [ 0; 1 ] and b = Pset.of_list [ 1; 2 ] in
  Alcotest.(check (list int)) "union" [ 0; 1; 2 ] (Pset.to_list (Pset.union a b));
  Alcotest.(check (list int)) "inter" [ 1 ] (Pset.to_list (Pset.inter a b));
  Alcotest.(check (list int)) "diff" [ 0 ] (Pset.to_list (Pset.diff a b));
  check_bool "disjoint" true (Pset.disjoint (Pset.singleton 0) (Pset.singleton 1))

let test_pset_subsets () =
  let s = Pset.full 3 in
  check "subset count" 8 (List.length (Pset.subsets s));
  check "nonempty" 7 (List.length (Pset.nonempty_subsets s));
  check "card-2 subsets" 3 (List.length (Pset.subsets_of_card 2 s));
  (* the empty set comes first *)
  check_bool "first empty" true
    (Pset.is_empty (List.hd (Pset.subsets s)))

let test_pset_errors () =
  Alcotest.check_raises "full too big" (Invalid_argument "Pset.full: bad universe size 63")
    (fun () -> ignore (Pset.full 63));
  Alcotest.check_raises "min_elt empty" Not_found (fun () ->
      ignore (Pset.min_elt Pset.empty))

let pset_gen =
  QCheck.map
    (fun m -> Pset.of_mask (m land ((1 lsl 16) - 1)))
    QCheck.(map abs int)

let prop_pset_fold_cardinal =
  QCheck.Test.make ~name:"pset fold counts cardinal" ~count:200 pset_gen
    (fun s -> Pset.fold (fun _ acc -> acc + 1) s 0 = Pset.cardinal s)

let prop_pset_subsets_count =
  QCheck.Test.make ~name:"pset subsets number 2^k" ~count:50
    (QCheck.map (fun m -> Pset.of_mask (m land 0xff)) QCheck.(map abs int))
    (fun s -> List.length (Pset.subsets s) = 1 lsl Pset.cardinal s)

(* ------------------------------------------------------------------ *)
(* Opart                                                              *)
(* ------------------------------------------------------------------ *)

let test_fubini () =
  List.iteri
    (fun n expected -> check (Printf.sprintf "fubini %d" n) expected (Opart.fubini n))
    [ 1; 1; 3; 13; 75 ]

let test_opart_views () =
  (* Ordered run {p1},{p0},{p2} from Figure 3a (relabeled to 0-based). *)
  let run =
    Opart.make [ Pset.singleton 1; Pset.singleton 0; Pset.singleton 2 ]
  in
  Alcotest.(check (list int)) "view p1" [ 1 ] (Pset.to_list (Opart.view run 1));
  Alcotest.(check (list int)) "view p0" [ 0; 1 ] (Pset.to_list (Opart.view run 0));
  Alcotest.(check (list int)) "view p2" [ 0; 1; 2 ] (Pset.to_list (Opart.view run 2));
  check_bool "views valid" true (Opart.is_valid_views (Opart.views run))

let test_opart_sync () =
  (* Synchronous run {p0,p1,p2} from Figure 3b. *)
  let run = Opart.make [ Pset.full 3 ] in
  List.iter
    (fun p ->
      Alcotest.(check (list int))
        (Printf.sprintf "sync view p%d" p)
        [ 0; 1; 2 ]
        (Pset.to_list (Opart.view run p)))
    [ 0; 1; 2 ]

let test_opart_invalid_views () =
  (* Violates containment: views {0} and {1} are incomparable. *)
  check_bool "incomparable views invalid" false
    (Opart.is_valid_views [ (0, Pset.singleton 0); (1, Pset.singleton 1) ]);
  (* Violates immediacy: p0 sees p1 but p1's view is not included. *)
  check_bool "immediacy violation invalid" false
    (Opart.is_valid_views
       [ (0, Pset.of_list [ 0; 1 ]); (1, Pset.of_list [ 0; 1; 2 ]);
         (2, Pset.of_list [ 0; 1; 2 ]) ])

let test_opart_make_errors () =
  Alcotest.check_raises "empty block" (Invalid_argument "Opart.make: empty block")
    (fun () -> ignore (Opart.make [ Pset.empty ]));
  Alcotest.check_raises "overlap" (Invalid_argument "Opart.make: overlapping blocks")
    (fun () -> ignore (Opart.make [ Pset.singleton 0; Pset.of_list [ 0; 1 ] ]))

let opart_gen n =
  let all = Opart.enumerate (Pset.full n) in
  QCheck.map (fun i -> List.nth all (i mod List.length all)) QCheck.(map abs small_int)

let prop_opart_views_valid =
  QCheck.Test.make ~name:"every ordered partition yields valid IS views"
    ~count:200 (opart_gen 4)
    (fun run -> Opart.is_valid_views (Opart.views run))

let prop_opart_random_valid =
  QCheck.Test.make ~name:"random ordered partitions are valid (n=10)"
    ~count:200 QCheck.(map abs int)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let run = Opart.random st (Pset.full 10) in
      Pset.equal (Opart.support run) (Pset.full 10)
      && Opart.is_valid_views (Opart.views run))

let prop_opart_roundtrip =
  QCheck.Test.make ~name:"of_views inverts views" ~count:200 (opart_gen 4)
    (fun run ->
      match Opart.of_views (Opart.views run) with
      | Some run' -> Opart.equal run run'
      | None -> false)

(* ------------------------------------------------------------------ *)
(* Simplex                                                            *)
(* ------------------------------------------------------------------ *)

let s3 = Chr.standard 3

let test_simplex_basics () =
  let f = List.hd (Complex.facets s3) in
  check "dim" 2 (Simplex.dim f);
  Alcotest.(check (list int)) "colors" [ 0; 1; 2 ] (Pset.to_list (Simplex.colors f));
  check "faces" 7 (List.length (Simplex.faces f));
  check "proper faces" 6 (List.length (Simplex.proper_faces f));
  let r = Simplex.restrict f (Pset.of_list [ 0; 2 ]) in
  check "restrict dim" 1 (Simplex.dim r);
  check_bool "restrict subset" true (Simplex.subset r f)

let test_simplex_color_clash () =
  Alcotest.check_raises "color clash"
    (Invalid_argument "Simplex.make: two vertices share a color") (fun () ->
      ignore (Simplex.make [ Vertex.input 0 0; Vertex.input 0 1 ]))

let test_simplex_union_diff () =
  let f = List.hd (Complex.facets s3) in
  let a = Simplex.restrict f (Pset.of_list [ 0 ])
  and b = Simplex.restrict f (Pset.of_list [ 1; 2 ]) in
  check_bool "union = facet" true (Simplex.equal (Simplex.union a b) f);
  check_bool "diff" true
    (Simplex.equal (Simplex.diff f b) a);
  check "inter empty" 0 (Simplex.card (Simplex.inter a b))

(* ------------------------------------------------------------------ *)
(* Chr                                                                *)
(* ------------------------------------------------------------------ *)

let chr1 = Chr.subdivide s3
let chr2 = Chr.subdivide chr1

let test_chr_facets_n3 () =
  (* Figure 1a: Chr s for 3 processes has 13 facets (ordered
     partitions) and 12 vertices. *)
  check "Chr s facets" 13 (Complex.facet_count chr1);
  check "Chr s vertices" 12 (List.length (Complex.vertices chr1));
  check_bool "pure dim 2" true (Complex.is_pure_of_dim 2 chr1)

let test_chr2_facets_n3 () =
  check "Chr^2 s facets" 169 (Complex.facet_count chr2);
  check_bool "pure dim 2" true (Complex.is_pure_of_dim 2 chr2)

let test_chr_facets_n4 () =
  let c = Chr.subdivide (Chr.standard 4) in
  check "Chr s (n=4) facets" 75 (Complex.facet_count c);
  check_bool "pure dim 3" true (Complex.is_pure_of_dim 3 c)

let test_chr_euler () =
  (* |Chr^m s| is homeomorphic to a disk: Euler characteristic 1. *)
  check "euler s" 1 (Complex.euler_characteristic s3);
  check "euler Chr s" 1 (Complex.euler_characteristic chr1);
  check "euler Chr^2 s" 1 (Complex.euler_characteristic chr2);
  check "euler Chr s n=4" 1
    (Complex.euler_characteristic (Chr.subdivide (Chr.standard 4)))

let test_chr_all_simplices_valid () =
  List.iter
    (fun s -> check_bool "IS conditions" true (Chr.is_simplex_of_chr s))
    (Complex.all_simplices chr1)

let test_chr_run_roundtrip () =
  let tau = List.hd (Complex.facets s3) in
  List.iter
    (fun run ->
      let facet = Chr.facet_of_run tau run in
      check_bool "roundtrip" true (Opart.equal run (Chr.run_of_facet facet)))
    (Opart.enumerate (Pset.full 3))

let test_chr_carrier () =
  (* The carrier of a facet of Chr s is the whole simplex s; the
     carrier of the solo vertex (p, {p}) is the p-corner. *)
  let tau = List.hd (Complex.facets s3) in
  let run = Opart.make [ Pset.singleton 0; Pset.of_list [ 1; 2 ] ] in
  let facet = Chr.facet_of_run tau run in
  check_bool "facet carrier = s" true (Simplex.equal (Chr.carrier facet) tau);
  let v0 = Option.get (Simplex.find_color 0 facet) in
  Alcotest.(check (list int)) "solo base carrier" [ 0 ]
    (Pset.to_list (Vertex.base_carrier v0));
  let v2 = Option.get (Simplex.find_color 2 facet) in
  Alcotest.(check (list int)) "late base carrier" [ 0; 1; 2 ]
    (Pset.to_list (Vertex.base_carrier v2))

let test_chr_carrier_composition () =
  (* carrier(σ, s) = carrier(carrier(σ, Chr s), s) for σ ∈ Chr² s. *)
  List.iter
    (fun sigma ->
      let direct = Simplex.base_carrier sigma in
      let via = Simplex.base_carrier (Simplex.carrier sigma) in
      check_bool "carrier composes" true (Pset.equal direct via))
    (Complex.facets chr2)

let test_streaming_closure_kernel () =
  (* The streaming face kernel must agree with the materialized
     closure on cold complexes: same face set, count, Euler
     characteristic and skeletons, each face emitted exactly once. *)
  List.iter
    (fun n ->
      let cold () =
        Complex.of_facets ~n (Complex.facets (Chr.standard_iterated ~m:2 ~n))
      in
      let reference = Simplex.Set.of_list (Complex.all_simplices (cold ())) in
      let streamed, emissions =
        Complex.fold_faces (cold ()) ~init:(Simplex.Set.empty, 0)
          ~f:(fun (acc, k) ~card:_ ~face ->
            (Simplex.Set.add (face ()) acc, k + 1))
      in
      check_bool
        (Printf.sprintf "streamed faces = closure (n=%d)" n)
        true
        (Simplex.Set.equal streamed reference);
      check
        (Printf.sprintf "each face exactly once (n=%d)" n)
        (Simplex.Set.cardinal reference)
        emissions;
      check
        (Printf.sprintf "streaming count (n=%d)" n)
        (Simplex.Set.cardinal reference)
        (Complex.simplex_count (cold ()));
      let euler_ref =
        Simplex.Set.fold
          (fun s acc -> if Simplex.dim s mod 2 = 0 then acc + 1 else acc - 1)
          reference 0
      in
      check
        (Printf.sprintf "streaming euler (n=%d)" n)
        euler_ref
        (Complex.euler_characteristic (cold ()));
      (* card slice: dimension-1 faces only *)
      let edges_ref =
        Simplex.Set.cardinal (Simplex.Set.filter (fun s -> Simplex.dim s = 1) reference)
      in
      check
        (Printf.sprintf "card slice (n=%d)" n)
        edges_ref
        (Complex.fold_faces ~min_card:2 ~max_card:2 (cold ()) ~init:0
           ~f:(fun acc ~card:_ ~face:_ -> acc + 1));
      (* skeletons match the filtered-closure construction *)
      List.iter
        (fun k ->
          let skel_ref =
            Complex.of_facets ~n
              (List.filter
                 (fun s -> Simplex.dim s <= k)
                 (Complex.all_simplices (cold ())))
          in
          check_bool
            (Printf.sprintf "skeleton %d (n=%d)" k n)
            true
            (Complex.equal (Complex.skeleton k (cold ())) skel_ref))
        [ 0; 1; 2 ])
    [ 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Face_set (off-heap dedup table)                                    *)
(* ------------------------------------------------------------------ *)

let test_face_set_packed_boundaries () =
  (* each packed class's vid budget, straddled: the last packable vid
     on one side, the first spilling vid (general table) on the other *)
  List.iter
    (fun (card, vid) ->
      check_bool (Printf.sprintf "card %d vid %d packs" card vid) true
        (Face_set.packable ~card ~max_vid:vid);
      check_bool (Printf.sprintf "card %d vid %d spills" card (vid + 1)) false
        (Face_set.packable ~card ~max_vid:(vid + 1));
      let mk last =
        Array.init card (fun i -> if i = card - 1 then last else i)
      in
      check_bool
        (Printf.sprintf "pack nonzero (card %d)" card)
        true
        (Face_set.pack (mk vid) ~len:card > 0);
      check (Printf.sprintf "pack zero past limit (card %d)" card) 0
        (Face_set.pack (mk (vid + 1)) ~len:card))
    [ (1, 0x7ffe); (4, 0x7ffe); (5, 0xffe); (6, 0x3fe) ];
  check_bool "card 7 never packs" false (Face_set.packable ~card:7 ~max_vid:0);
  (* keys on both sides of the boundary coexist, dedup independently,
     and land in the right table *)
  let t = Face_set.create ~size:4 () in
  let k1 = Array.init 4 (fun i -> if i = 3 then 0x7ffe else i) in
  let k2 = Array.init 4 (fun i -> if i = 3 then 0x7fff else i) in
  check_bool "fresh packed" false (Face_set.mem_or_add t k1 ~len:4);
  check_bool "dup packed" true (Face_set.mem_or_add t k1 ~len:4);
  check_bool "fresh heap" false (Face_set.mem_or_add t k2 ~len:4);
  check_bool "dup heap" true (Face_set.mem_or_add t k2 ~len:4);
  check "packed count" 1 (Face_set.packed_count t);
  check "heap count" 1 (Face_set.heap_count t);
  check "count" 2 (Face_set.count t);
  Face_set.release t

let test_face_set_tiny_growth_fuzz () =
  (* force growth from the smallest capacity through many doublings
     (no tombstones: every verdict must survive rehashing); a
     reference Hashtbl adjudicates every fresh/dup answer. Vid ranges
     straddle all three packed classes and the general table. *)
  let t = Face_set.create ~size:1 () in
  let start_cap = Face_set.packed_capacity t in
  let seen = Hashtbl.create 64 in
  let state = ref 123456789 in
  let rand m =
    state := ((!state * 1103515245) + 12345) land 0x3fffffff;
    !state mod m
  in
  let scratch = Array.make 8 0 in
  let disagreements = ref 0 in
  for _ = 1 to 5000 do
    let card = 1 + rand 8 in
    let limit = [| 6; 0x7fff + 2; 0xfff + 2; 0x3ff + 2 |].(rand 4) in
    let v = ref (rand limit) in
    for i = 0 to card - 1 do
      scratch.(i) <- !v;
      v := !v + 1 + rand (max 1 (limit / 8))
    done;
    let key = Array.sub scratch 0 card in
    let dup_ref = Hashtbl.mem seen key in
    Hashtbl.replace seen key ();
    if Face_set.mem_or_add t scratch ~len:card <> dup_ref then
      incr disagreements
  done;
  check "verdicts agree with reference" 0 !disagreements;
  check "count = reference" (Hashtbl.length seen) (Face_set.count t);
  check "packed + heap = count" (Face_set.count t)
    (Face_set.packed_count t + Face_set.heap_count t);
  check_bool "packed table grew" true
    (Face_set.packed_capacity t > start_cap);
  Face_set.release t

let test_restrict_colors () =
  (* Chr(∂-face) appears as the restriction of Chr s to the face's
     colors: for a 1-face it is a path of 3 edges (3 facets). *)
  let edge = Complex.restrict_colors (Pset.of_list [ 0; 1 ]) chr1 in
  check "edge subdivision facets" 3 (Complex.facet_count edge);
  check_bool "pure dim 1" true (Complex.is_pure_of_dim 1 edge);
  check "euler" 1 (Complex.euler_characteristic edge)

let test_skeleton_star_pc () =
  let skel0 = Complex.skeleton 0 chr1 in
  check "0-skeleton facets" 12 (Complex.facet_count skel0);
  (* Star of the central vertex (p0, s): all simplices containing it. *)
  let tau = List.hd (Complex.facets s3) in
  let central = Simplex.make [ Vertex.deriv 0 (Simplex.vertices tau) ] in
  let st = Complex.star [ central ] chr1 in
  check_bool "star nonempty" true (List.length st > 0);
  List.iter
    (fun s -> check_bool "star member contains v" true
        (Simplex.subset central s))
    st;
  (* Pc of the corner vertices: facets not touching any corner. *)
  let corners =
    List.map
      (fun p -> Simplex.make [ Vertex.deriv p [ Vertex.base p ] ])
      [ 0; 1; 2 ]
  in
  let pc = Complex.pure_complement corners chr1 in
  check_bool "Pc pure" true (Complex.is_pure_of_dim 2 pc);
  (* Exactly the facets of runs whose first block is not a singleton
     seeing only itself: runs starting with a solo block touch a
     corner. 13 runs, 6 of them start with a singleton block
     ({pi} first: 3 choices × 3 orderings of the rest... enumerated:
     for each of 3 solo starters there are 3 completions, plus the
     3-way sync run and runs starting with a pair. Count those with
     solo first block: 3 × fubini(2) = 9? No: the corner vertex is
     (p,{p}), contained in facets whose run has first block {p}. Runs
     with first block a fixed singleton: fubini(2) = 3, so 9 runs
     touch a corner; 13 − 9 = 4 remain. *)
  check "Pc facet count" 4 (Complex.facet_count pc)

let test_complex_mem_union () =
  let f1 = List.nth (Complex.facets chr1) 0 in
  let c1 = Complex.of_facets ~n:3 [ f1 ] in
  check_bool "facet mem" true (Complex.mem f1 chr1);
  check_bool "face mem" true
    (Complex.mem (List.hd (Simplex.proper_faces f1)) chr1);
  check_bool "subcomplex" true (Complex.subcomplex c1 chr1);
  check_bool "union idempotent" true
    (Complex.equal (Complex.union chr1 chr1) chr1)

let prop_chr2_simplices_valid =
  QCheck.Test.make ~name:"random faces of Chr^2 s satisfy IS conditions"
    ~count:300
    (QCheck.map
       (fun (i, mask) ->
         let fs = Complex.facets chr2 in
         let f = List.nth fs (abs i mod List.length fs) in
         Simplex.restrict f (Pset.of_mask (abs mask land 7)))
       QCheck.(pair int int))
    (fun s -> Simplex.is_empty s || Chr.is_simplex_of_chr s)

let prop_carrier_monotonic =
  QCheck.Test.make ~name:"base carrier is monotonic on faces" ~count:300
    (QCheck.map
       (fun (i, mask) ->
         let fs = Complex.facets chr2 in
         (List.nth fs (abs i mod List.length fs), Pset.of_mask (abs mask land 7)))
       QCheck.(pair int int))
    (fun (f, colors) ->
      let sub = Simplex.restrict f colors in
      Pset.subset (Simplex.base_carrier sub) (Simplex.base_carrier f))

(* ------------------------------------------------------------------ *)
(* Interned representation vs structural reference                    *)
(* ------------------------------------------------------------------ *)

(* Reference implementations over the plain vertex lists, ignoring all
   cached metadata (intern ids, color masks, hashes). The interned
   fast paths must agree with these. *)
let ref_mem v s = List.exists (Vertex.equal v) (Simplex.vertices s)
let ref_subset a b = List.for_all (fun v -> ref_mem v b) (Simplex.vertices a)

let ref_colors s =
  List.fold_left
    (fun acc v -> Pset.add (Vertex.proc v) acc)
    Pset.empty (Simplex.vertices s)

let ref_equal a b =
  List.length (Simplex.vertices a) = List.length (Simplex.vertices b)
  && ref_subset a b

let face_gen complex =
  (* A random face of a random facet, paired with a second one. *)
  QCheck.map
    (fun (i, m1, j, m2) ->
      let fs = Complex.facets complex in
      let pick i m =
        Simplex.restrict
          (List.nth fs (abs i mod List.length fs))
          (Pset.of_mask (abs m land 7))
      in
      (pick i m1, pick j m2))
    QCheck.(quad int int int int)

let interned_props name complex =
  [
    QCheck.Test.make ~name:(name ^ ": subset agrees with structural") ~count:300
      (face_gen complex)
      (fun (a, b) ->
        Simplex.subset a b = ref_subset a b
        && Simplex.subset b a = ref_subset b a);
    QCheck.Test.make ~name:(name ^ ": colors agree with structural") ~count:300
      (face_gen complex)
      (fun (a, b) ->
        Pset.equal (Simplex.colors a) (ref_colors a)
        && Pset.equal (Simplex.colors b) (ref_colors b));
    QCheck.Test.make ~name:(name ^ ": mem agrees with structural") ~count:300
      (face_gen complex)
      (fun (a, b) ->
        List.for_all (fun v -> Simplex.mem v b = ref_mem v b)
          (Simplex.vertices a));
    QCheck.Test.make
      ~name:(name ^ ": compare = 0 iff structurally equal") ~count:300
      (face_gen complex)
      (fun (a, b) ->
        (Simplex.compare a b = 0) = ref_equal a b
        && Simplex.compare a a = 0
        (* antisymmetry of the hash-primary order *)
        && compare (Simplex.compare a b) 0 = compare 0 (Simplex.compare b a));
  ]

let test_simplex_duplicate_vertex () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Simplex.make: duplicate vertex") (fun () ->
      ignore (Simplex.make [ Vertex.base 0; Vertex.base 0 ]))

let test_of_chr_pairs_equals_make () =
  (* The fast constructor used by Chr agrees with the generic one on
     every run of the standard 3-simplex. *)
  let tau = List.hd (Complex.facets s3) in
  List.iter
    (fun run ->
      let pairs =
        List.map
          (fun (p, view) -> (p, Simplex.restrict tau view))
          (Opart.views run)
      in
      let fast = Simplex.of_chr_pairs pairs in
      let slow =
        Simplex.make
          (List.map
             (fun (p, car) -> Vertex.deriv p (Simplex.vertices car))
             pairs)
      in
      check_bool "of_chr_pairs = make" true (Simplex.equal fast slow);
      check "compare 0" 0 (Simplex.compare fast slow))
    (Opart.enumerate (Pset.full 3))

let test_chr2_facets_n4 () =
  (* 75 facets of Chr s (n=4), each subdividing into 75: 5625. *)
  let c = Chr.standard_iterated ~m:2 ~n:4 in
  check "Chr^2 s (n=4) facets" 5625 (Complex.facet_count c);
  check_bool "pure dim 3" true (Complex.is_pure_of_dim 3 c)

(* ------------------------------------------------------------------ *)
(* Parallel                                                           *)
(* ------------------------------------------------------------------ *)

let test_parallel_sequential_identity () =
  (* domains <= 1 must be literally List.map. *)
  let xs = List.init 100 Fun.id in
  let f x = (x * 7919) mod 101 in
  check_bool "map" true (Parallel.map ~domains:1 f xs = List.map f xs);
  check_bool "map domains=0" true (Parallel.map ~domains:0 f xs = List.map f xs);
  check_bool "concat_map" true
    (Parallel.concat_map ~domains:1 (fun x -> [ x; -x ]) xs
    = List.concat_map (fun x -> [ x; -x ]) xs);
  check_bool "empty" true (Parallel.map ~domains:4 f [] = [])

let test_parallel_domain_independence () =
  let xs = List.init 37 Fun.id in
  let f x = (x * 7919) mod 101 in
  List.iter
    (fun d ->
      check_bool
        (Printf.sprintf "map %d domains" d)
        true
        (Parallel.map ~domains:d f xs = List.map f xs);
      check_bool
        (Printf.sprintf "concat_map %d domains" d)
        true
        (Parallel.concat_map ~domains:d (fun x -> [ x; x + 1 ]) xs
        = List.concat_map (fun x -> [ x; x + 1 ]) xs))
    [ 2; 3; 4; 8; 64 ];
  (* map_init: the per-worker context is scratch space; for an [f]
     pure modulo the context the output matches List.map. *)
  check_bool "map_init" true
    (Parallel.map_init ~domains:3
       (fun () -> Buffer.create 16)
       (fun buf x ->
         Buffer.clear buf;
         Buffer.add_string buf (string_of_int (f x));
         int_of_string (Buffer.contents buf))
       xs
    = List.map f xs)

let test_parallel_subdivision_independent_of_domains () =
  (* The topological pipeline must produce identical complexes — and
     identical facet orders — whatever the domain count. *)
  let seq = Chr.iterate 2 (Chr.standard 3) in
  let saved = Parallel.default_domains () in
  Parallel.set_default_domains 4;
  let par = Chr.iterate 2 (Chr.standard 3) in
  Parallel.set_default_domains saved;
  check_bool "complex equal" true (Complex.equal seq par);
  check_bool "facet order equal" true
    (List.equal Simplex.equal (Complex.facets seq) (Complex.facets par))

(* ------------------------------------------------------------------ *)
(* Sperner labelings                                                  *)
(* ------------------------------------------------------------------ *)

let test_sperner_chromatic_labeling () =
  (* The coloring χ itself is a Sperner labeling, and every facet is
     rainbow: 13 (odd, as the lemma demands). *)
  check_bool "chi is sperner" true
    (Sperner.is_sperner_labeling chr1 Vertex.proc);
  check "all facets rainbow" 13 (Sperner.rainbow_facets chr1 Vertex.proc);
  check_bool "lemma" true (Sperner.lemma_holds chr1 Vertex.proc)

let test_sperner_constant_on_corner () =
  (* Labeling every vertex by the smallest process it saw is Sperner;
     the lemma still finds an odd number of rainbow facets. *)
  let labeling v = Pset.min_elt (Vertex.base_carrier v) in
  check_bool "sperner" true (Sperner.is_sperner_labeling chr2 labeling);
  check_bool "odd rainbow count" true (Sperner.lemma_holds chr2 labeling)

let prop_sperner_lemma =
  QCheck.Test.make ~name:"Sperner's lemma on Chr and Chr^2 (random labelings)"
    ~count:150
    QCheck.(pair (map abs int) bool)
    (fun (seed, deep) ->
      let k = if deep then chr2 else chr1 in
      let labeling = Sperner.random_labeling ~seed k in
      Sperner.is_sperner_labeling k labeling && Sperner.lemma_holds k labeling)

let prop_sperner_lemma_n4 =
  QCheck.Test.make ~name:"Sperner's lemma on Chr s (n=4)" ~count:30
    QCheck.(map abs int)
    (fun seed ->
      let k = Chr.subdivide (Chr.standard 4) in
      let labeling = Sperner.random_labeling ~seed k in
      Sperner.lemma_holds k labeling)

(* ------------------------------------------------------------------ *)
(* Links                                                              *)
(* ------------------------------------------------------------------ *)

let test_link_basics () =
  (* In Chr s, the link of the central vertex (p0, s) is the cycle of
     simplices around it — connected; the link of a corner vertex
     (p0, {p0}) is the opposite arc — also connected. *)
  let tau = List.hd (Complex.facets s3) in
  let central = Simplex.of_vertex (Vertex.deriv 0 (Simplex.vertices tau)) in
  let lk = Link.link central chr1 in
  check_bool "central link nonempty" true (not (Complex.is_empty lk));
  check_bool "central link connected" true (Link.is_connected lk);
  check_bool "Chr s link-connected" true (Link.is_link_connected chr1);
  check_bool "Chr^2 s link-connected" true (Link.is_link_connected chr2)

let test_link_of_missing_simplex () =
  let foreign = Simplex.of_vertex (Vertex.base 0) in
  check_bool "empty" true (Complex.is_empty (Link.link foreign chr1))

(* ------------------------------------------------------------------ *)
(* Geometric realization (Appendix A)                                 *)
(* ------------------------------------------------------------------ *)

let close a b = abs_float (a -. b) < 1e-9

let test_geometry_coords () =
  (* Corner vertex (0, {0}) realizes at the corner x_0; the central
     vertex (0, s) at (1/5, 2/5, 2/5) for n = 3 (k = 3 in the Appendix
     formula). *)
  let corner = Vertex.deriv 0 [ Vertex.base 0 ] in
  Alcotest.(check (array (float 1e-9))) "corner" [| 1.0; 0.0; 0.0 |]
    (Geometry.coords ~n:3 corner);
  let tau = List.hd (Complex.facets s3) in
  let central = Vertex.deriv 0 (Simplex.vertices tau) in
  Alcotest.(check (array (float 1e-9))) "central" [| 0.2; 0.4; 0.4 |]
    (Geometry.coords ~n:3 central);
  (* Edge midpoint-ish vertex (0, {0,1}): 1/3 x0 + 2/3 x1. *)
  let edge = Vertex.deriv 0 [ Vertex.base 0; Vertex.base 1 ] in
  Alcotest.(check (array (float 1e-9))) "edge" [| 1. /. 3.; 2. /. 3.; 0.0 |]
    (Geometry.coords ~n:3 edge)

let test_geometry_subdivision_volumes () =
  (* Chr is a subdivision: the geometric facets tile |s|. *)
  check_bool "vol Chr s = 1" true (close 1.0 (Geometry.total_volume chr1));
  check_bool "vol Chr^2 s = 1" true (close 1.0 (Geometry.total_volume chr2));
  check_bool "vol Chr s (n=4) = 1" true
    (close 1.0 (Geometry.total_volume (Chr.subdivide (Chr.standard 4))));
  (* The central triangle of Chr s occupies 1/25 of |s|. *)
  let tau = List.hd (Complex.facets s3) in
  let central =
    Simplex.make
      (List.map (fun p -> Vertex.deriv p (Simplex.vertices tau)) [ 0; 1; 2 ])
  in
  check_bool "central volume 1/25" true
    (close 0.04 (Geometry.volume_fraction ~n:3 central))

let test_geometry_positive_facets () =
  List.iter
    (fun f ->
      check_bool "positive volume" true
        (Geometry.volume_fraction ~n:3 f > 1e-9))
    (Complex.facets chr2)

let test_geometry_degenerate () =
  let tau = List.hd (Complex.facets s3) in
  check_bool "low-dim is 0" true
    (Geometry.volume_fraction ~n:3 (Simplex.restrict tau (Pset.of_list [ 0; 1 ]))
     = 0.0);
  let b = Geometry.barycenter [ [| 1.0; 0.0 |]; [| 0.0; 1.0 |] ] in
  Alcotest.(check (array (float 1e-9))) "barycenter" [| 0.5; 0.5 |] b

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [
    ("pset basics", `Quick, test_pset_basics);
    ("pset algebra", `Quick, test_pset_algebra);
    ("pset subsets", `Quick, test_pset_subsets);
    ("pset errors", `Quick, test_pset_errors);
    ("fubini numbers", `Quick, test_fubini);
    ("opart views (Fig 3a)", `Quick, test_opart_views);
    ("opart sync run (Fig 3b)", `Quick, test_opart_sync);
    ("opart invalid views", `Quick, test_opart_invalid_views);
    ("opart make errors", `Quick, test_opart_make_errors);
    ("simplex basics", `Quick, test_simplex_basics);
    ("simplex color clash", `Quick, test_simplex_color_clash);
    ("simplex union/diff/inter", `Quick, test_simplex_union_diff);
    ("Chr s n=3 counts (Fig 1a)", `Quick, test_chr_facets_n3);
    ("Chr^2 s n=3 counts", `Quick, test_chr2_facets_n3);
    ("Chr s n=4 counts", `Quick, test_chr_facets_n4);
    ("Euler characteristic of subdivisions", `Quick, test_chr_euler);
    ("Chr simplices satisfy IS conditions", `Quick, test_chr_all_simplices_valid);
    ("run/facet roundtrip", `Quick, test_chr_run_roundtrip);
    ("carriers", `Quick, test_chr_carrier);
    ("carrier composition", `Quick, test_chr_carrier_composition);
    ("restrict to face colors", `Quick, test_restrict_colors);
    ("streaming closure kernel = materialized closure", `Quick,
     test_streaming_closure_kernel);
    ("face set: packed class boundaries", `Quick,
     test_face_set_packed_boundaries);
    ("face set: tiny-capacity growth fuzz", `Quick,
     test_face_set_tiny_growth_fuzz);
    ("skeleton, star, pure complement", `Quick, test_skeleton_star_pc);
    ("complex mem/union/subcomplex", `Quick, test_complex_mem_union);
    ("simplex duplicate vertex rejected", `Quick, test_simplex_duplicate_vertex);
    ("of_chr_pairs = make on all runs", `Quick, test_of_chr_pairs_equals_make);
    ("Chr^2 s n=4 counts", `Quick, test_chr2_facets_n4);
    ("parallel: sequential identity", `Quick, test_parallel_sequential_identity);
    ("parallel: domain independence", `Quick, test_parallel_domain_independence);
    ("parallel: subdivision independent of domains", `Quick,
     test_parallel_subdivision_independent_of_domains);
    qt prop_pset_fold_cardinal;
    qt prop_pset_subsets_count;
    qt prop_opart_views_valid;
    qt prop_opart_roundtrip;
    qt prop_opart_random_valid;
    ("sperner: chromatic labeling", `Quick, test_sperner_chromatic_labeling);
    ("sperner: min-seen labeling", `Quick, test_sperner_constant_on_corner);
    ("link basics", `Quick, test_link_basics);
    ("link of foreign simplex", `Quick, test_link_of_missing_simplex);
    ("geometry: vertex coordinates", `Quick, test_geometry_coords);
    ("geometry: subdivision volumes", `Quick, test_geometry_subdivision_volumes);
    ("geometry: facets non-degenerate", `Quick, test_geometry_positive_facets);
    ("geometry: degenerate cases", `Quick, test_geometry_degenerate);
    qt prop_chr2_simplices_valid;
    qt prop_carrier_monotonic;
  ]
  @ List.map qt (interned_props "Chr s" chr1)
  @ List.map qt (interned_props "Chr^2 s" chr2)
  @ [
    qt prop_sperner_lemma;
    qt prop_sperner_lemma_n4;
  ]
