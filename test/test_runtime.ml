(* Tests for the executable systems layer: the cooperative executor,
   atomic-snapshot memory, immediate snapshot, IIS, Algorithm 1
   (Theorem 7), the affine-model runner and α-adaptive set consensus
   (Section 6). *)

open Fact_topology
open Fact_adversary
open Fact_affine
open Fact_runtime

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let ps = Pset.of_list

(* API misuse must surface as the typed error taxonomy, not as an ad
   hoc message string. *)
let check_precondition name ~fn f =
  match f () with
  | _ -> Alcotest.failf "%s: expected a Precondition Fact_error" name
  | exception
      Fact_resilience.Fact_error.Error
        (Fact_resilience.Fact_error.Precondition { fn = got; _ }) ->
    Alcotest.(check string) name fn got
  | exception e ->
    Alcotest.failf "%s: unexpected exception %s" name (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Exec + Memory                                                      *)
(* ------------------------------------------------------------------ *)

let test_exec_sequential () =
  (* Under a sequential schedule, p0 writes before p1 snapshots. *)
  let mem = Memory.create 2 in
  let proc pid =
    Memory.update mem ~pid (10 + pid);
    let snap = Memory.snapshot mem in
    Array.to_list snap |> List.filter_map Fun.id |> List.fold_left ( + ) 0
  in
  let schedule = Schedule.sequential ~n:2 ~participants:(Pset.full 2) in
  let report = Exec.run ~schedule [| proc; proc |] in
  Alcotest.(check (list (pair int int)))
    "sums" [ (0, 10); (1, 21) ] (Exec.decided report);
  check_bool "no budget hit" false report.Exec.hit_step_budget

let test_exec_crash () =
  (* p0 crashes after one step; p1 still decides. *)
  let mem = Memory.create 2 in
  let proc pid =
    Memory.update mem ~pid pid;
    Memory.update mem ~pid (100 + pid);
    pid
  in
  let schedule =
    Schedule.random ~seed:1 ~n:2 ~participants:(Pset.full 2)
      ~crashes:[ (0, 1) ]
  in
  let report = Exec.run ~schedule [| proc; proc |] in
  (match report.Exec.outcomes.(0) with
  | Exec.Crashed k -> check "crashed after 1 step" 1 k
  | _ -> Alcotest.fail "p0 should have crashed");
  Alcotest.(check (list (pair int int))) "p1 decided" [ (1, 1) ]
    (Exec.decided report)

let test_exec_non_participant () =
  let schedule = Schedule.sequential ~n:3 ~participants:(ps [ 0; 2 ]) in
  let report = Exec.run ~schedule [| Fun.id; Fun.id; Fun.id |] in
  Alcotest.(check (list (pair int int)))
    "only participants decide" [ (0, 0); (2, 2) ] (Exec.decided report);
  check_bool "p1 never ran" true (report.Exec.outcomes.(1) = Exec.Running)

let test_yield_outside_fiber () =
  (* yield is a no-op outside Exec.run, so protocols are also plain
     functions. *)
  Exec.yield ();
  let mem = Memory.create 1 in
  Memory.update mem ~pid:0 42;
  Alcotest.(check (option int)) "direct call" (Some 42) (Memory.peek mem 0)

(* ------------------------------------------------------------------ *)
(* Schedules                                                          *)
(* ------------------------------------------------------------------ *)

let test_schedule_round_robin () =
  let s = Schedule.round_robin ~n:4 ~participants:(ps [ 0; 2; 3 ]) in
  let alive = ps [ 0; 2; 3 ] in
  let picks = List.init 6 (fun _ -> Option.get (Schedule.next s ~alive)) in
  Alcotest.(check (list int)) "cycles" [ 0; 2; 3; 0; 2; 3 ] picks;
  (* after picking 3, nothing larger is alive: wrap to the smallest *)
  Alcotest.(check (option int)) "wraps" (Some 0)
    (Schedule.next s ~alive:(ps [ 0; 3 ]));
  Alcotest.(check (option int)) "stop when empty" None
    (Schedule.next s ~alive:Pset.empty)

let test_schedule_sequential () =
  let s = Schedule.sequential ~n:3 ~participants:(Pset.full 3) in
  Alcotest.(check (option int)) "lowest first" (Some 0)
    (Schedule.next s ~alive:(Pset.full 3));
  Alcotest.(check (option int)) "then next" (Some 1)
    (Schedule.next s ~alive:(ps [ 1; 2 ]))

let test_schedule_crash_bookkeeping () =
  let s =
    Schedule.random ~seed:3 ~n:3 ~participants:(Pset.full 3)
      ~crashes:[ (1, 5) ]
  in
  Alcotest.(check (list int)) "faulty set" [ 1 ]
    (Pset.to_list (Schedule.faulty s));
  check_bool "not yet" false (Schedule.crash_now s ~pid:1 ~steps_taken:4);
  check_bool "now" true (Schedule.crash_now s ~pid:1 ~steps_taken:5);
  check_bool "correct never" false
    (Schedule.crash_now s ~pid:0 ~steps_taken:1_000_000)

let test_schedule_alpha_model_validation () =
  let alpha = Agreement.of_adversary (Adversary.t_resilient ~n:3 ~t:1) in
  check_precondition "alpha 0 rejected" ~fn:"Schedule.alpha_model" (fun () ->
      ignore (Schedule.alpha_model ~seed:1 alpha ~participation:(ps [ 0 ])));
  (* valid participations never crash more than alpha(P)-1 processes *)
  for seed = 1 to 50 do
    let s = Schedule.alpha_model ~seed alpha ~participation:(Pset.full 3) in
    check_bool "bounded faults" true (Pset.cardinal (Schedule.faulty s) <= 1)
  done

let test_schedule_adversarial_validation () =
  let adv = Adversary.t_resilient ~n:3 ~t:1 in
  check_precondition "non-live rejected" ~fn:"Schedule.adversarial"
    (fun () -> ignore (Schedule.adversarial ~seed:1 adv ~live:(ps [ 0 ])));
  let s = Schedule.adversarial ~seed:1 adv ~live:(ps [ 0; 1 ]) in
  Alcotest.(check (list int)) "complement crashes" [ 2 ]
    (Pset.to_list (Schedule.faulty s))

(* ------------------------------------------------------------------ *)
(* Immediate snapshot                                                 *)
(* ------------------------------------------------------------------ *)

let run_is ~n ~schedule =
  let obj = Immediate_snapshot.create n in
  let report =
    Exec.run ~schedule
      (Array.init n (fun _ pid ->
           Immediate_snapshot.write_snapshot obj ~pid pid))
  in
  Exec.decided report
  |> List.map (fun (pid, view) -> (pid, Immediate_snapshot.view_set view))

let test_is_sequential () =
  (* Sequential: process i sees exactly {0..i}. *)
  let views = run_is ~n:3 ~schedule:(Schedule.sequential ~n:3 ~participants:(Pset.full 3)) in
  List.iter
    (fun (pid, view) ->
      Alcotest.(check (list int))
        (Printf.sprintf "view p%d" pid)
        (List.init (pid + 1) Fun.id)
        (Pset.to_list view))
    views

let test_is_round_robin_synchronous () =
  (* Lock-step round robin: everybody descends together and sees
     everyone — the synchronous run. *)
  let views = run_is ~n:3 ~schedule:(Schedule.round_robin ~n:3 ~participants:(Pset.full 3)) in
  List.iter
    (fun (pid, view) ->
      check (Printf.sprintf "sync view size p%d" pid) 3 (Pset.cardinal view))
    views

let prop_is_random_schedules =
  QCheck.Test.make ~name:"IS properties under random schedules (n=4)"
    ~count:300 QCheck.(map abs int)
    (fun seed ->
      let schedule =
        Schedule.random ~seed ~n:4 ~participants:(Pset.full 4) ~crashes:[]
      in
      let views = run_is ~n:4 ~schedule in
      List.length views = 4 && Opart.is_valid_views views)

let prop_is_random_schedules_with_crashes =
  QCheck.Test.make ~name:"IS properties with crashes (n=4)" ~count:300
    QCheck.(pair (map abs int) (map abs int))
    (fun (seed, crashinfo) ->
      let pid = crashinfo mod 4 and steps = crashinfo / 4 mod 8 in
      let schedule =
        Schedule.random ~seed ~n:4 ~participants:(Pset.full 4)
          ~crashes:[ (pid, steps) ]
      in
      let views = run_is ~n:4 ~schedule in
      (* Decided views must satisfy the IS properties even though the
         crashed process's pending write may be visible. *)
      Opart.is_valid_views views)

(* ------------------------------------------------------------------ *)
(* IIS                                                                *)
(* ------------------------------------------------------------------ *)

let chr2_3 = Chr.iterate 2 (Chr.standard 3)

let run_iis ~n ~rounds ~schedule =
  let iis = Iis.create ~n ~rounds in
  let report =
    Exec.run ~schedule
      (Array.init n (fun _ pid -> Iis.process iis ~pid ~input:0))
  in
  List.map snd (Exec.decided report)

let test_iis_sequential_facet () =
  (* Sequential execution: both IS rounds are the fully ordered run. *)
  let views =
    run_iis ~n:3 ~rounds:2
      ~schedule:(Schedule.sequential ~n:3 ~participants:(Pset.full 3))
  in
  let sigma = Iis.simplex_of_views views in
  let ordered =
    Opart.make [ ps [ 0 ]; ps [ 1 ]; ps [ 2 ] ]
  in
  let expected =
    Chr.facet_of_runs
      (List.hd (Complex.facets (Chr.standard 3)))
      [ ordered; ordered ]
  in
  check_bool "expected facet" true (Simplex.equal sigma expected)

let prop_iis_lands_in_chr2 =
  QCheck.Test.make ~name:"IIS(2 rounds) views form a facet of Chr^2 s"
    ~count:200 QCheck.(map abs int)
    (fun seed ->
      let schedule =
        Schedule.random ~seed ~n:3 ~participants:(Pset.full 3) ~crashes:[]
      in
      let views = run_iis ~n:3 ~rounds:2 ~schedule in
      let sigma = Iis.simplex_of_views views in
      Simplex.dim sigma = 2 && Complex.mem sigma chr2_3)

let prop_iis_three_rounds_valid =
  QCheck.Test.make ~name:"IIS(3 rounds) views satisfy Chr conditions"
    ~count:100 QCheck.(map abs int)
    (fun seed ->
      let schedule =
        Schedule.random ~seed ~n:3 ~participants:(Pset.full 3) ~crashes:[]
      in
      let views = run_iis ~n:3 ~rounds:3 ~schedule in
      Chr.is_simplex_of_chr (Iis.simplex_of_views views))

(* ------------------------------------------------------------------ *)
(* Algorithm 1 (Theorem 7)                                            *)
(* ------------------------------------------------------------------ *)

let adversaries_n3 =
  [
    ("1-OF", Adversary.k_obstruction_free ~n:3 ~k:1);
    ("2-OF", Adversary.k_obstruction_free ~n:3 ~k:2);
    ("1-res", Adversary.t_resilient ~n:3 ~t:1);
    ("fig5b", Adversary.fig5b);
    ("wait-free", Adversary.wait_free 3);
  ]

let algorithm1_trial alpha ra ~seed ~participation =
  let schedule = Schedule.alpha_model ~seed alpha ~participation in
  let report = Algorithm1.run alpha ~schedule in
  let liveness =
    (not report.Exec.hit_step_budget)
    && Pset.for_all
         (fun i ->
           match report.Exec.outcomes.(i) with
           | Exec.Decided _ | Exec.Crashed _ -> true
           | Exec.Running -> false)
         participation
  in
  let safety =
    match List.map snd (Exec.decided report) with
    | [] -> true
    | outputs -> Complex.mem (Algorithm1.simplex_of_outputs outputs) ra
  in
  (liveness, safety)

let test_algorithm1_theorem7 () =
  List.iter
    (fun (name, adv) ->
      let alpha = Agreement.of_adversary adv in
      let ra = Ra.complex alpha ~n:3 in
      let participations =
        List.filter
          (fun p -> Agreement.eval alpha p >= 1)
          (Pset.nonempty_subsets (Pset.full 3))
      in
      List.iter
        (fun participation ->
          for seed = 1 to 15 do
            let liveness, safety =
              algorithm1_trial alpha ra ~seed ~participation
            in
            check_bool (name ^ " liveness") true liveness;
            check_bool (name ^ " safety") true safety
          done)
        participations)
    adversaries_n3

let test_algorithm1_theorem7_prop () =
  (* Theorem 7 through the lib/check property core: explicit seeds
     (each iteration replays standalone from (seed, i)), shrinking over
     the (schedule seed, participation) pair. The fixed-seed loop above
     stays as the fingerprint regression. *)
  let open Fact_check in
  List.iter
    (fun (name, adv) ->
      let alpha = Agreement.of_adversary adv in
      let ra = Ra.complex alpha ~n:3 in
      let parts =
        List.filter
          (fun p -> Agreement.eval alpha p >= 1)
          (Pset.nonempty_subsets (Pset.full 3))
      in
      Prop.run ~count:60 ~seed:0xFAC7 ~name:(name ^ ": theorem 7")
        ~shrink:(Shrink.pair Shrink.int Shrink.int)
        ~pp:(fun ppf (s, i) ->
          Format.fprintf ppf "(seed %d, participation %a)" s Pset.pp
            (List.nth parts i))
        (Gen.pair (Gen.int_range 100 10_000) (Gen.int (List.length parts)))
        (fun (seed, i) ->
          let participation = List.nth parts i in
          let liveness, safety =
            algorithm1_trial alpha ra ~seed ~participation
          in
          liveness && safety))
    adversaries_n3

let test_algorithm1_sequential () =
  (* Fully sequential run under wait-freedom: the ordered 2-round run;
     also deterministic, so assert the exact simplex. *)
  let alpha = Agreement.of_adversary (Adversary.wait_free 3) in
  let schedule = Schedule.sequential ~n:3 ~participants:(Pset.full 3) in
  let report = Algorithm1.run alpha ~schedule in
  let outputs = List.map snd (Exec.decided report) in
  check "all decided" 3 (List.length outputs);
  let ordered = Opart.make [ ps [ 0 ]; ps [ 1 ]; ps [ 2 ] ] in
  let expected =
    Chr.facet_of_runs
      (List.hd (Complex.facets (Chr.standard 3)))
      [ ordered; ordered ]
  in
  check_bool "ordered run" true
    (Simplex.equal (Algorithm1.simplex_of_outputs outputs) expected)

let test_algorithm1_adversarial_schedules () =
  (* Algorithm 1 solves R_A in the α-MODEL; an A-compliant run need not
     be an α-model run (e.g. 1-OF lets n−1 processes crash while the
     α-model allows none), so liveness is NOT guaranteed under general
     A-compliant schedules — only safety is: whatever decides, decides
     inside R_A. For t-resilient adversaries every A-compliant run IS
     an α-model run (faulty ≤ t = α(P)−1), so there we also assert
     liveness. Run with a small step budget since livelock is a legal
     outcome for the non-t-resilient entries. *)
  List.iter
    (fun (name, adv, liveness_expected) ->
      let alpha = Agreement.of_adversary adv in
      let ra = Ra.complex alpha ~n:3 in
      List.iter
        (fun live ->
          for seed = 1 to 10 do
            let schedule = Schedule.adversarial ~seed adv ~live in
            let report = Algorithm1.run ~max_steps:30_000 alpha ~schedule in
            if liveness_expected then begin
              check_bool (name ^ " budget") false report.Exec.hit_step_budget;
              Pset.iter
                (fun i ->
                  match report.Exec.outcomes.(i) with
                  | Exec.Decided _ -> ()
                  | Exec.Crashed _ | Exec.Running ->
                    Alcotest.failf "%s: correct p%d did not decide" name i)
                live
            end;
            match List.map snd (Exec.decided report) with
            | [] -> ()
            | outputs ->
              check_bool (name ^ " safety") true
                (Complex.mem (Algorithm1.simplex_of_outputs outputs) ra)
          done)
        (Adversary.live_sets adv))
    [ ("1-OF", Adversary.k_obstruction_free ~n:3 ~k:1, false);
      ("1-res", Adversary.t_resilient ~n:3 ~t:1, true);
      ("fig5b", Adversary.fig5b, false) ]

(* ------------------------------------------------------------------ *)
(* Affine runner                                                      *)
(* ------------------------------------------------------------------ *)

let r1of = Rkof.task ~n:3 ~k:1

let test_affine_runner_trace_composes () =
  (* The realized facets, composed, land in L^m. *)
  let rounds = 2 in
  let trace = Affine_runner.trace r1of ~rounds ~picker:(Affine_runner.random_picker ~seed:7) in
  check "trace length" rounds (List.length trace);
  let composed =
    match trace with
    | first :: rest ->
      List.fold_left
        (fun host inner -> Affine_task.compose_facets ~host inner)
        first rest
    | [] -> assert false
  in
  let lm = Affine_task.iterate r1of rounds in
  check_bool "composed run in L^m" true (Affine_task.mem_run lm composed)

let test_affine_runner_visibility () =
  (* Every process sees its own previous state, and visibility equals
     the base carrier of its vertex. *)
  let seen = ref [] in
  let _ =
    Affine_runner.run r1of ~rounds:1
      ~picker:(Affine_runner.random_picker ~seed:3)
      ~init:(fun pid -> pid)
      ~step:(fun pid v visible ->
        seen := (pid, v, visible) :: !seen;
        pid)
  in
  List.iter
    (fun (pid, v, visible) ->
      let procs = List.map fst visible in
      check_bool "self visible" true (List.mem pid procs);
      Alcotest.(check (list int))
        "visibility = carrier" (Pset.to_list (Vertex.base_carrier v)) procs;
      (* initial states are passed through *)
      List.iter (fun (j, st) -> check "state is id" j st) visible)
    !seen

(* ------------------------------------------------------------------ *)
(* α-adaptive set consensus in R_A* (Section 6)                        *)
(* ------------------------------------------------------------------ *)

let test_adaptive_consensus_bounds () =
  List.iter
    (fun (name, adv) ->
      let alpha = Agreement.of_adversary adv in
      let task = Ra.task alpha ~n:3 in
      let bound = Agreement.eval alpha (Pset.full 3) in
      List.iter
        (fun q ->
          for seed = 1 to 15 do
            let result =
              Adaptive_consensus.solve ~task ~alpha ~q
                ~proposals:(fun pid -> 100 + pid)
                ~picker:(Affine_runner.random_picker ~seed)
                ()
            in
            check_bool (name ^ " validity") true
              (Adaptive_consensus.validity_ok ~q
                 ~proposals:(fun pid -> 100 + pid)
                 result);
            check_bool
              (Format.asprintf "%s agreement Q=%a" name Pset.pp q)
              true
              (result.Adaptive_consensus.distinct
               <= min (Pset.cardinal q) bound);
            (* every proposer decides *)
            check (name ^ " all decide") (Pset.cardinal q)
              (List.length result.Adaptive_consensus.decisions)
          done)
        (Pset.nonempty_subsets (Pset.full 3)))
    adversaries_n3

let test_adaptive_consensus_1of_is_consensus () =
  (* 1-obstruction-freedom has agreement power 1: R_{1-OF}* solves
     consensus, whatever the schedule of facets. *)
  let alpha = Agreement.k_obstruction_free ~n:3 ~k:1 in
  let task = Rkof.task ~n:3 ~k:1 in
  List.iter
    (fun facet ->
      let result =
        Adaptive_consensus.solve ~task ~alpha ~q:(Pset.full 3)
          ~proposals:(fun pid -> pid)
          ~picker:(Affine_runner.fixed_picker [ facet ])
          ()
      in
      check "consensus" 1 result.Adaptive_consensus.distinct)
    (Complex.facets (Affine_task.complex task))

let test_adaptive_consensus_tightness_wait_free () =
  (* Wait-freedom can do no better than n-set consensus: the fully
     reversed-order facet of Chr² s yields n distinct leaders. *)
  let alpha = Agreement.of_adversary (Adversary.wait_free 3) in
  let task = Affine_task.full_chr ~n:3 ~ell:2 in
  let s3 = List.hd (Complex.facets (Chr.standard 3)) in
  (* Reversed round-1 order followed by id-order round 2: each process
     enters the second IS seeing only smaller View1s of its own chain,
     so the three elected leaders are pairwise distinct. *)
  let facet =
    Chr.facet_of_runs s3
      [ Opart.make [ ps [ 2 ]; ps [ 1 ]; ps [ 0 ] ];
        Opart.make [ ps [ 0 ]; ps [ 1 ]; ps [ 2 ] ] ]
  in
  let result =
    Adaptive_consensus.solve ~task ~alpha ~q:(Pset.full 3)
      ~proposals:(fun pid -> pid)
      ~picker:(Affine_runner.fixed_picker [ facet ])
      ()
  in
  check "n distinct decisions" 3 result.Adaptive_consensus.distinct

(* ------------------------------------------------------------------ *)
(* α-adaptive set consensus objects (Definition 4)                    *)
(* ------------------------------------------------------------------ *)

let test_alpha_sc_object () =
  (* 1-resilient, n=3, round-robin: the first proposer must wait until
     α(P) ≥ 1; the oracle then opens at most α(Π) = 2 values. *)
  let alpha = Agreement.of_adversary (Adversary.t_resilient ~n:3 ~t:1) in
  let obj = Alpha_sc.create alpha in
  let schedule = Schedule.round_robin ~n:3 ~participants:(Pset.full 3) in
  let report =
    Exec.run ~schedule
      (Array.init 3 (fun _ pid -> Alpha_sc.propose obj ~pid ~value:(100 + pid)))
  in
  let decided = Exec.decided report in
  check "all return" 3 (List.length decided);
  let distinct =
    List.sort_uniq Stdlib.compare (List.map snd decided) |> List.length
  in
  check_bool "alpha-agreement" true (distinct <= 2);
  check_bool "oracle is tight" true (distinct = 2);
  List.iter
    (fun (_, v) -> check_bool "validity" true (v >= 100 && v <= 102))
    decided

let test_alpha_sc_consensus_power_one () =
  (* k-obstruction-freedom with k = 1: the object degenerates to
     consensus whatever the schedule. *)
  let alpha = Agreement.k_obstruction_free ~n:3 ~k:1 in
  for seed = 1 to 30 do
    let obj = Alpha_sc.create alpha in
    let schedule =
      Schedule.random ~seed ~n:3 ~participants:(Pset.full 3) ~crashes:[]
    in
    let report =
      Exec.run ~schedule
        (Array.init 3 (fun _ pid -> Alpha_sc.propose obj ~pid ~value:pid))
    in
    let distinct =
      List.sort_uniq Stdlib.compare (List.map snd (Exec.decided report))
      |> List.length
    in
    check "consensus" 1 distinct
  done

let prop_alpha_sc_adaptive =
  QCheck.Test.make ~name:"alpha-SC object: distinct <= alpha(participants)"
    ~count:100
    QCheck.(pair (map abs int) (map abs int))
    (fun (seed, mask) ->
      let participants = Pset.of_mask (1 + (mask land 6)) in
      let alpha = Agreement.of_adversary Adversary.fig5b in
      QCheck.assume (Agreement.eval alpha participants >= 1);
      let obj = Alpha_sc.create alpha in
      let schedule = Schedule.random ~seed ~n:3 ~participants ~crashes:[] in
      let report =
        Exec.run ~schedule
          (Array.init 3 (fun _ pid -> Alpha_sc.propose obj ~pid ~value:pid))
      in
      let distinct =
        List.sort_uniq Stdlib.compare (List.map snd (Exec.decided report))
        |> List.length
      in
      distinct <= Agreement.eval alpha participants)

let test_adaptive_consensus_committed () =
  (* The §6.1 estimate/commit discipline obeys the same α-agreement
     bound (Lemma 13) and always terminates within a couple of
     rounds. *)
  List.iter
    (fun (name, adv) ->
      let alpha = Agreement.of_adversary adv in
      let task = Ra.task alpha ~n:3 in
      let bound = Agreement.eval alpha (Pset.full 3) in
      List.iter
        (fun q ->
          for seed = 1 to 10 do
            let r =
              Adaptive_consensus.solve_committed ~task ~alpha ~q
                ~proposals:(fun pid -> 100 + pid)
                ~picker:(Affine_runner.random_picker ~seed)
                ~max_rounds:5
            in
            check (name ^ " all commit") (Pset.cardinal q)
              (List.length r.Adaptive_consensus.decisions);
            check_bool (name ^ " committed agreement") true
              (r.Adaptive_consensus.distinct <= min (Pset.cardinal q) bound);
            check_bool (name ^ " committed validity") true
              (Adaptive_consensus.validity_ok ~q
                 ~proposals:(fun pid -> 100 + pid)
                 r)
          done)
        (Pset.nonempty_subsets (Pset.full 3)))
    adversaries_n3

(* ------------------------------------------------------------------ *)
(* Shared-memory simulation in R_A* (Section 6.1)                     *)
(* ------------------------------------------------------------------ *)

let ra_1res_task = Ra.of_adversary (Adversary.t_resilient ~n:3 ~t:1)

let test_simulation_collect_inputs () =
  (* The input-collection task (threshold n − t = 2) in R_{1-res}*:
     everyone decides at least 2 genuine inputs, and the simulated
     memory behaves like atomic snapshots. *)
  for seed = 1 to 60 do
    let outcome =
      Simulation.run ~task:ra_1res_task
        ~picker:(Affine_runner.random_picker ~seed)
        ~max_rounds:60
        (Simulation.collect_inputs_protocol ~threshold:2
           ~inputs:(fun pid -> 100 + pid))
    in
    check "all decide" 3 (List.length outcome.Simulation.decisions);
    List.iter
      (fun (_, vals) ->
        check_bool "enough inputs" true (List.length vals >= 2);
        List.iter
          (fun v -> check_bool "genuine input" true (v >= 100 && v <= 102))
          vals)
      outcome.Simulation.decisions;
    check_bool "snapshots contained" true
      (Simulation.snapshots_contained outcome)
  done

let test_simulation_collect_inputs_prop () =
  (* The same simulation property through the lib/check core, on seeds
     disjoint from the fingerprint loop above. *)
  let open Fact_check in
  Prop.run ~count:40 ~seed:0x51D ~name:"collect-inputs in R_1-res*"
    ~shrink:Shrink.int ~pp:Format.pp_print_int (Gen.int_range 61 5000)
    (fun seed ->
      let outcome =
        Simulation.run ~task:ra_1res_task
          ~picker:(Affine_runner.random_picker ~seed)
          ~max_rounds:60
          (Simulation.collect_inputs_protocol ~threshold:2
             ~inputs:(fun pid -> 100 + pid))
      in
      List.length outcome.Simulation.decisions = 3
      && List.for_all
           (fun (_, vals) ->
             List.length vals >= 2
             && List.for_all (fun v -> v >= 100 && v <= 102) vals)
           outcome.Simulation.decisions
      && Simulation.snapshots_contained outcome)

let starving_facet =
  (* Both IS rounds are {p0,p1},{p2}: p0 and p1 never see p2. *)
  let s3 = List.hd (Complex.facets (Chr.standard 3)) in
  let run = Opart.make [ ps [ 0; 1 ]; ps [ 2 ] ] in
  Chr.facet_of_runs s3 [ run; run ]

let test_simulation_fast_slow () =
  (* The §6.1 fast/slow phenomenon on an adversarial facet schedule:
     with the ⊥ mechanism the slow process completes after the fast
     ones terminate; without it, it starves. *)
  check_bool "facet is in R_1-res" true
    (Affine_task.mem_run ra_1res_task starving_facet);
  let picker = Affine_runner.fixed_picker [ starving_facet ] in
  let protocol =
    Simulation.collect_inputs_protocol ~threshold:2 ~inputs:(fun pid -> pid)
  in
  let with_bot =
    Simulation.run ~task:ra_1res_task ~picker ~max_rounds:60 protocol
  in
  check "all decide with ⊥" 3 (List.length with_bot.Simulation.decisions);
  let without_bot =
    Simulation.run ~respect_termination:false ~task:ra_1res_task ~picker
      ~max_rounds:60 protocol
  in
  check "slow process starves without ⊥" 2
    (List.length without_bot.Simulation.decisions)

let test_algorithm1_wait_phase_ablation () =
  (* Without the wait phase (lines 6-9), Algorithm 1 degrades to plain
     2-round IS and its outputs escape R_A on contended schedules. *)
  let adv = Adversary.k_obstruction_free ~n:3 ~k:1 in
  let alpha = Agreement.of_adversary adv in
  let ra = Ra.complex alpha ~n:3 in
  let violations = ref 0 in
  for seed = 1 to 100 do
    let schedule =
      Schedule.alpha_model ~seed alpha ~participation:(Pset.full 3)
    in
    let report = Algorithm1.run ~skip_wait:true alpha ~schedule in
    match List.map snd (Exec.decided report) with
    | [] -> ()
    | outputs ->
      if not (Complex.mem (Algorithm1.simplex_of_outputs outputs) ra) then
        incr violations
  done;
  check_bool "wait phase is load-bearing" true (!violations > 0)

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [
    ("exec sequential", `Quick, test_exec_sequential);
    ("exec crash", `Quick, test_exec_crash);
    ("exec non-participant", `Quick, test_exec_non_participant);
    ("yield outside fiber", `Quick, test_yield_outside_fiber);
    ("schedule: round robin", `Quick, test_schedule_round_robin);
    ("schedule: sequential", `Quick, test_schedule_sequential);
    ("schedule: crash bookkeeping", `Quick, test_schedule_crash_bookkeeping);
    ("schedule: alpha-model validation", `Quick, test_schedule_alpha_model_validation);
    ("schedule: adversarial validation", `Quick, test_schedule_adversarial_validation);
    ("IS sequential views", `Quick, test_is_sequential);
    ("IS round-robin synchronous", `Quick, test_is_round_robin_synchronous);
    ("IIS sequential facet", `Quick, test_iis_sequential_facet);
    ("Algorithm 1: Theorem 7 (randomized)", `Slow, test_algorithm1_theorem7);
    ("Algorithm 1: Theorem 7 (prop core)", `Slow, test_algorithm1_theorem7_prop);
    ("Algorithm 1: sequential run", `Quick, test_algorithm1_sequential);
    ("Algorithm 1: A-compliant schedules", `Slow, test_algorithm1_adversarial_schedules);
    ("affine runner: trace composes into L^m", `Quick, test_affine_runner_trace_composes);
    ("affine runner: visibility", `Quick, test_affine_runner_visibility);
    ("adaptive consensus bounds", `Slow, test_adaptive_consensus_bounds);
    ("R_1-OF* solves consensus (all facets)", `Quick, test_adaptive_consensus_1of_is_consensus);
    ("wait-free tightness", `Quick, test_adaptive_consensus_tightness_wait_free);
    ("alpha-SC object (Definition 4)", `Quick, test_alpha_sc_object);
    ("alpha-SC object is consensus at power 1", `Quick, test_alpha_sc_consensus_power_one);
    ("committed set consensus (§6.1)", `Slow, test_adaptive_consensus_committed);
    ("AS simulation in R_A* (§6.1)", `Slow, test_simulation_collect_inputs);
    ("AS simulation (prop core)", `Slow, test_simulation_collect_inputs_prop);
    ("fast/slow ⊥ mechanism (§6.1)", `Quick, test_simulation_fast_slow);
    ("ablation: wait phase of Algorithm 1", `Slow, test_algorithm1_wait_phase_ablation);
    qt prop_alpha_sc_adaptive;
    qt prop_is_random_schedules;
    qt prop_is_random_schedules_with_crashes;
    qt prop_iis_lands_in_chr2;
    qt prop_iis_three_rounds_valid;
  ]
