(* Tests for the grid-sweep campaign subsystem: spec parsing and
   canonicalization, content-addressed cell digests, the resumable
   runner over both backends, corrupt-result quarantine, the report's
   regression gate, and the shared latency histogram. *)

open Fact_campaign
open Fact_serve

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "fact-test-campaign-%d-%d" (Unix.getpid ()) !counter)
    in
    (match Unix.mkdir d 0o700 with
    | () -> ()
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let rec rm_rf dir =
  (match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | files ->
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then rm_rf p
        else try Sys.remove p with Sys_error _ -> ())
      files);
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let spec_of_string s =
  match Grid.of_string s with
  | Ok spec -> spec
  | Error m -> Alcotest.failf "spec rejected: %s" m

(* ------------------------------------------------------------------ *)
(* Grid                                                               *)
(* ------------------------------------------------------------------ *)

let grid3_text =
  "((name grid3) (seed 42) (deadline-s 120) (axes ((endpoint (ra)) \
   (adversary (wait-free t-res:1 k-of:1)) (n (2 3)) (domains (1 2)))))"

let test_spec_roundtrip () =
  let spec = spec_of_string grid3_text in
  check "cells" 12 (List.length (Grid.cells spec));
  check_string "name" "grid3" (Grid.name spec);
  check "seed" 42 (Grid.seed spec);
  (* to_sexp materializes defaults; reparsing yields the same grid *)
  let again =
    match Grid.of_sexp (Grid.to_sexp spec) with
    | Ok s -> s
    | Error m -> Alcotest.failf "to_sexp not reparseable: %s" m
  in
  check_bool "cells stable under round-trip" true
    (Grid.cells spec = Grid.cells again);
  check_string "rendering stable"
    (Fact_sexp.Sexp.to_string (Grid.to_sexp spec))
    (Fact_sexp.Sexp.to_string (Grid.to_sexp again))

let test_cell_roundtrip_and_digest_pinned () =
  let spec = spec_of_string grid3_text in
  List.iter
    (fun c ->
      match Grid.cell_of_sexp (Grid.cell_to_sexp c) with
      | Ok c' -> check_bool "cell round-trip" true (c = c')
      | Error m -> Alcotest.failf "cell reparse failed: %s" m)
    (Grid.cells spec);
  (* Pinned: a digest is a stable on-disk address, so an accidental
     change to the cell rendering or the salt must fail loudly here. *)
  let c =
    {
      Grid.endpoint = "ra"; adversary = "k-of:1"; n = 2; m = 0;
      protocol = "-"; max_runs = 0; domains = 1; cache_cap = None;
      seed = 42; deadline_s = Some 120.;
    }
  in
  check_string "pinned digest" "e336f924aa01e67e88c68f8efa7543c9"
    (Grid.digest c);
  (* environment axes address distinct cells; payload identity across
     them is the runner's concern, not the digest's *)
  check_bool "domains axis changes the digest" true
    (Grid.digest c <> Grid.digest { c with Grid.domains = 2 })

let test_canonicalization_dedups () =
  (* chr ignores the adversary axis: two declared presets collapse to
     one canonical cell *)
  let spec =
    spec_of_string
      "((name dedup) (axes ((endpoint (chr)) (adversary (wait-free fig5b)) \
       (n (2)))))"
  in
  (match Grid.cells spec with
  | [ c ] ->
    check_string "adversary canonicalized" "-" c.Grid.adversary;
    check "m defaulted" 1 c.Grid.m
  | cells -> Alcotest.failf "expected 1 cell, got %d" (List.length cells));
  (* prune drops the matching grid points before canonicalization *)
  let pruned =
    spec_of_string
      "((name pruned) (axes ((endpoint (ra)) (n (2 3)) (domains (1 2)))) \
       (prune (((n 3) (domains 2)))))"
  in
  check "pruned cells" 3 (List.length (Grid.cells pruned))

(* ------------------------------------------------------------------ *)
(* Runner: resume, quarantine, backends                               *)
(* ------------------------------------------------------------------ *)

let small_grid =
  "((name small) (seed 7) (axes ((endpoint (ra)) (adversary (wait-free \
   t-res:1)) (n (2)))))"

let test_resume_skips_completed () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let spec = spec_of_string small_grid in
      let p1 = Runner.run ~backend:Runner.Local ~dir spec in
      check "first run ran all" 2 p1.Runner.ran;
      check "first run ok" 2 p1.Runner.ok;
      let p2 = Runner.run ~backend:Runner.Local ~dir spec in
      check "second run ran none" 0 p2.Runner.ran;
      check "second run skipped all" 2 p2.Runner.skipped)

let test_corrupt_result_quarantined () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let spec = spec_of_string small_grid in
      ignore (Runner.run ~backend:Runner.Local ~dir spec);
      let digest = Grid.digest (List.hd (Grid.cells spec)) in
      let path = Results.record_path ~dir ~digest in
      let oc = open_out_bin path in
      output_string oc "(not a result";
      close_out oc;
      check_bool "corrupt result reads as pending" false
        (Results.completed ~dir ~digest);
      check_bool "original file moved away" false (Sys.file_exists path);
      check "quarantine holds the evidence" 1
        (Array.length (Sys.readdir (Results.quarantine_dir dir)));
      (* a rerun recomputes exactly the quarantined cell *)
      let p = Runner.run ~backend:Runner.Local ~dir spec in
      check "rerun recomputes one" 1 p.Runner.ran;
      check "rerun skips the other" 1 p.Runner.skipped;
      check_bool "cell completed again" true (Results.completed ~dir ~digest))

let test_local_cluster_identical () =
  let base = fresh_dir () in
  let sock = Filename.concat base "camp.sock" in
  let scheduler = Scheduler.create () in
  let listener =
    Listener.start_scheduler ~scheduler (Listener.Unix_sock sock)
  in
  Fun.protect
    ~finally:(fun () ->
      Listener.stop listener;
      rm_rf base)
    (fun () ->
      let spec = spec_of_string small_grid in
      let local = Filename.concat base "local"
      and cluster = Filename.concat base "cluster" in
      let p1 = Runner.run ~backend:Runner.Local ~dir:local spec in
      let p2 =
        Runner.run
          ~backend:
            (Runner.Cluster
               {
                 addr = Listener.Unix_sock sock; retries = 2;
                 backoff = None; timeout_s = 30.;
               })
          ~dir:cluster spec
      in
      check "local all ok" 2 p1.Runner.ok;
      check "cluster all ok" 2 p2.Runner.ok;
      let files dir = Sys.readdir (Results.cells_dir dir) in
      let lf = files local and cf = files cluster in
      Array.sort compare lf;
      Array.sort compare cf;
      check_bool "same cell filenames" true (lf = cf);
      Array.iter
        (fun f ->
          check_string
            (Printf.sprintf "cell %s byte-identical" f)
            (read_file (Filename.concat (Results.cells_dir local) f))
            (read_file (Filename.concat (Results.cells_dir cluster) f)))
        lf)

(* ------------------------------------------------------------------ *)
(* Report: gate, splice                                               *)
(* ------------------------------------------------------------------ *)

let test_gate_pass_and_fail () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let spec = spec_of_string small_grid in
      ignore (Runner.run ~backend:Runner.Local ~dir spec);
      let report = Report.load ~dir in
      let baseline = Report.to_json report in
      (match Report.gate ~baseline report with
      | Ok n -> check "gate passes fresh baseline" 2 n
      | Error vs -> Alcotest.failf "unexpected gate failure: %s" (List.hd vs));
      (* shrink every baseline wall time to force the slow check, with
         no slack to hide behind *)
      (match Report.gate ~tolerance:0.0 ~slack_ms:(-1.0) ~baseline report with
      | Ok _ -> Alcotest.fail "zero-tolerance gate should fail"
      | Error vs ->
        check_bool "slow violation reported" true
          (List.exists
             (fun v -> String.length v >= 4 && String.sub v 0 4 = "slow")
             vs));
      (* a baseline cell with no current result is a hard violation *)
      let missing =
        baseline
        ^ "{\"digest\": \"0000deadbeef0000deadbeef0000dead\", \
           \"result_md5\": \"x\", \"outcome\": \"ok\", \"wall_ms\": 1.0}\n"
      in
      (match Report.gate ~baseline:missing report with
      | Ok _ -> Alcotest.fail "missing-cell gate should fail"
      | Error vs ->
        check_bool "missing violation reported" true
          (List.exists
             (fun v ->
               String.length v >= 7 && String.sub v 0 7 = "missing")
             vs));
      match Report.gate ~baseline:"" report with
      | Ok _ -> Alcotest.fail "empty baseline should fail"
      | Error _ -> ())

let test_splice_idempotent () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let spec = spec_of_string small_grid in
      ignore (Runner.run ~backend:Runner.Local ~dir spec);
      let report = Report.load ~dir in
      let file = Filename.concat dir "EXPERIMENTS.md" in
      let oc = open_out_bin file in
      output_string oc "# Experiments\n\nprose before the block\n";
      close_out oc;
      Report.splice ~file report;
      let first = read_file file in
      check_bool "block appended" true
        (String.length first > String.length "# Experiments\n");
      Report.splice ~file report;
      check_string "second splice is a fixpoint" first (read_file file);
      check_bool "prose preserved" true
        (String.length first >= 5 && String.sub first 0 5 = "# Exp"))

(* ------------------------------------------------------------------ *)
(* Bench gate + trend                                                 *)
(* ------------------------------------------------------------------ *)

(* Synthetic bench results: gating never runs the real entries. *)
let bench_result ?p99_ms ~name ~n ~wall_ms ~minor_words () =
  {
    Bench_entries.name; n; wall_ms; p99_ms; facets = 1;
    minor_words; major_words = 0.; minor_collections = 0.;
    major_collections = 0.; hits = 0; misses = 0; evictions = 0;
  }

let test_bench_gate () =
  let r = bench_result ~name:"e1" ~n:3 ~wall_ms:1.0 ~minor_words:1000. () in
  let baseline =
    "{\"entries\": [\n"
    ^ Bench_entries.json_line r
    ^ "\n], \"caches\": [\n"
    ^ "  {\"name\": \"some.cache\", \"hits\": 1, \"misses\": 2, \
       \"evictions\": 0, \"size\": 1, \"cap\": 4}\n" ^ "]}\n"
  in
  (match Bench_entries.gate ~baseline [ r ] with
  | Ok n -> check "gate passes own baseline" 1 n
  | Error vs -> Alcotest.failf "unexpected gate failure: %s" (List.hd vs));
  (* wall-time regression *)
  let slow = { r with Bench_entries.wall_ms = 500. } in
  (match Bench_entries.gate ~tolerance:2.0 ~slack_ms:5. ~baseline [ slow ] with
  | Ok _ -> Alcotest.fail "slow gate should fail"
  | Error vs ->
    check_bool "slow violation" true
      (List.exists (fun v -> String.sub v 0 4 = "slow") vs));
  (* allocation regression, wall time unchanged *)
  let churny = { r with Bench_entries.minor_words = 1_000_000. } in
  (match
     Bench_entries.gate ~alloc_tolerance:2.0 ~slack_words:100. ~baseline
       [ churny ]
   with
  | Ok _ -> Alcotest.fail "alloc gate should fail"
  | Error vs ->
    check_bool "alloc violation" true
      (List.exists (fun v -> String.sub v 0 5 = "alloc") vs));
  (* an entry the baseline does not know is a violation, not a pass *)
  let unknown = bench_result ~name:"new" ~n:1 ~wall_ms:1. ~minor_words:1. () in
  (match Bench_entries.gate ~baseline [ r; unknown ] with
  | Ok _ -> Alcotest.fail "unknown-entry gate should fail"
  | Error vs ->
    check_bool "missing violation" true
      (List.exists (fun v -> String.sub v 0 7 = "missing") vs));
  (* cache-trailer lines (name without wall_ms) are not entries *)
  match Bench_entries.gate ~baseline:"{\"entries\": []}" [ r ] with
  | Ok _ -> Alcotest.fail "empty baseline should fail"
  | Error _ -> ()

let test_trend_table () =
  let snap label w1 w2 =
    ( label,
      "{\"entries\": [\n"
      ^ Bench_entries.json_line
          (bench_result ~name:"e1" ~n:3 ~wall_ms:w1 ~minor_words:0. ())
      ^ ",\n"
      ^ Bench_entries.json_line
          (bench_result ~name:"e2" ~n:4 ~wall_ms:w2 ~minor_words:0. ())
      ^ "\n]}\n" )
  in
  let md = Report.trend [ snap "old.json" 10.0 4.0; snap "new.json" 2.5 4.0 ] in
  let has sub s =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check_bool "md has both columns" true
    (has "old.json" md && has "new.json" md);
  check_bool "md rows keyed by name+n" true (has "e1 n=3" md && has "e2 n=4" md);
  check_bool "md trend ratio" true (has "x0.25" md);
  let csv =
    Report.trend ~format:`Csv [ snap "a.json" 1.0 2.0; snap "b.json" 3.0 4.0 ]
  in
  check_bool "csv header" true (has "entry,a.json,b.json" csv);
  check_bool "csv row" true (has "e1 n=3,1.000,3.000" csv);
  (* campaign cells trend too, keyed by digest *)
  let cell =
    "{\"digest\": \"abcdef0123456789\", \"endpoint\": \"ra\", \"adversary\": \
     \"wait-free\", \"n\": 3, \"wall_ms\": 7.5}"
  in
  let md2 = Report.trend [ ("c1.json", cell); ("c2.json", cell) ] in
  check_bool "campaign key" true (has "ra wait-free n=3 abcdef012345" md2);
  (* a file with no entries is a typed error *)
  match Report.trend [ ("empty.json", "{}") ] with
  | exception Fact_resilience.Fact_error.Error _ -> ()
  | _ -> Alcotest.fail "empty trend input should raise"

(* ------------------------------------------------------------------ *)
(* Histogram                                                          *)
(* ------------------------------------------------------------------ *)

let test_histogram_percentiles () =
  let h = Histogram.create () in
  check_string "empty percentile" "0." (string_of_float (Histogram.percentile h 50.));
  (* 90 fast, 9 medium, 1 slow: p50 in the fast bucket, p95 medium,
     p99 medium, p100 slow *)
  for _ = 1 to 90 do Histogram.add h 0.5 done;
  for _ = 1 to 9 do Histogram.add h 3.0 done;
  Histogram.add h 100.0;
  check "count" 100 (Histogram.count h);
  check_bool "p50 <= 1ms" true (Histogram.percentile h 50. = 1.0);
  check_bool "p95 <= 4ms" true (Histogram.percentile h 95. = 4.0);
  check_bool "p99 <= 4ms" true (Histogram.percentile h 99. = 4.0);
  check_bool "p100 <= 128ms" true (Histogram.percentile h 100. = 128.0);
  check_string "line format" "p50<=1ms p95<=4ms p99<=4ms"
    (Histogram.percentiles_line h);
  (* of_counts adopts raw buckets — the scheduler/loadgen snapshot path *)
  let h2 = Histogram.of_counts (Histogram.counts h) in
  check "of_counts count" 100 (Histogram.count h2);
  check_bool "of_counts p95" true (Histogram.percentile h2 95. = 4.0)

let suite =
  [
    Alcotest.test_case "grid spec round-trip" `Quick test_spec_roundtrip;
    Alcotest.test_case "cell round-trip + pinned digest" `Quick
      test_cell_roundtrip_and_digest_pinned;
    Alcotest.test_case "canonicalization dedups, prune prunes" `Quick
      test_canonicalization_dedups;
    Alcotest.test_case "resume skips completed" `Quick
      test_resume_skips_completed;
    Alcotest.test_case "corrupt result quarantined" `Quick
      test_corrupt_result_quarantined;
    Alcotest.test_case "local vs cluster byte-identical" `Quick
      test_local_cluster_identical;
    Alcotest.test_case "gate pass/fail" `Quick test_gate_pass_and_fail;
    Alcotest.test_case "bench gate wall + alloc" `Quick test_bench_gate;
    Alcotest.test_case "trend table md/csv" `Quick test_trend_table;
    Alcotest.test_case "report splice idempotent" `Quick
      test_splice_idempotent;
    Alcotest.test_case "histogram percentiles" `Quick
      test_histogram_percentiles;
  ]
