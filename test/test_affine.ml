(* Tests for the affine-task machinery: views, contention, critical
   simplices, concurrency levels, R_{k-OF}, R_{t-res}, R_A and µ_Q
   (Sections 4 and 6.2, Figures 1b and 4-7). *)

open Fact_topology
open Fact_adversary
open Fact_affine

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ps = Pset.of_list
let s3 = List.hd (Complex.facets (Chr.standard 3))
let chr1_3 = Chr.subdivide (Chr.standard 3)
let chr2_3 = Chr.subdivide chr1_3

let run blocks = Opart.make (List.map ps blocks)
let facet2 r1 r2 = Chr.facet_of_runs s3 [ run r1; run r2 ]

(* Agreement functions of the paper's two running examples. *)
let alpha_1of = Agreement.k_obstruction_free ~n:3 ~k:1
let alpha_5b = Agreement.of_adversary Adversary.fig5b

(* ------------------------------------------------------------------ *)
(* Views                                                              *)
(* ------------------------------------------------------------------ *)

let test_views () =
  (* Round 1 ordered {p0},{p1},{p2}; round 2 {p2},{p0,p1}. *)
  let f = facet2 [ [ 0 ]; [ 1 ]; [ 2 ] ] [ [ 2 ]; [ 0; 1 ] ] in
  let v p = Option.get (Simplex.find_color p f) in
  Alcotest.(check (list int)) "View1 p0" [ 0 ] (Pset.to_list (Views.view1 (v 0)));
  Alcotest.(check (list int)) "View1 p1" [ 0; 1 ] (Pset.to_list (Views.view1 (v 1)));
  Alcotest.(check (list int)) "View1 p2" [ 0; 1; 2 ] (Pset.to_list (Views.view1 (v 2)));
  Alcotest.(check (list int)) "View2 p2" [ 2 ] (Pset.to_list (Views.view2 (v 2)));
  Alcotest.(check (list int)) "View2 p0" [ 0; 1; 2 ] (Pset.to_list (Views.view2 (v 0)))

let test_views_level_check () =
  Alcotest.check_raises "level-1 vertex rejected"
    (Invalid_argument "Views.view1: vertex not at level 2") (fun () ->
      let f1 = List.hd (Complex.facets chr1_3) in
      ignore (Views.view1 (List.hd (Simplex.vertices f1))))

(* ------------------------------------------------------------------ *)
(* Contention (Figure 4)                                              *)
(* ------------------------------------------------------------------ *)

let test_contention_fig4a () =
  (* Reversed orders: {p1},{p0},{p2} then {p2},{p0},{p1} — every pair
     contends (Figure 4a, relabeled 0-based). *)
  let f = facet2 [ [ 1 ]; [ 0 ]; [ 2 ] ] [ [ 2 ]; [ 0 ]; [ 1 ] ] in
  check_bool "whole facet is a contention simplex" true
    (Contention.is_contention_simplex f);
  check "max contention dim" 2 (Contention.max_contention_dim f)

let test_contention_fig4b () =
  (* Ordered round 1, then {p1},{p2,p0}: the only contending couple is
     {p0,p1} (Figure 4b, relabeled 0-based). *)
  let f = facet2 [ [ 0 ]; [ 1 ]; [ 2 ] ] [ [ 1 ]; [ 2; 0 ] ] in
  let v p = Option.get (Simplex.find_color p f) in
  check_bool "p0-p1 contend" true (Contention.contending (v 0) (v 1));
  check_bool "p1-p2 do not" false (Contention.contending (v 1) (v 2));
  check_bool "p0-p2 do not" false (Contention.contending (v 0) (v 2));
  check "max contention dim" 1 (Contention.max_contention_dim f)

let test_contention_complex_counts () =
  (* Figure 4c: the 2-contention complex of Chr² s for n = 3. The six
     2-dimensional contention simplices are exactly the six pairs of
     strictly reversed 3-block orderings. *)
  let cont = Contention.complex chr2_3 in
  let by_dim d =
    List.length
      (List.filter (fun s -> Simplex.dim s = d) (Complex.all_simplices cont))
  in
  check "contention triangles" 6 (by_dim 2);
  check "contention edges" 78 (by_dim 1);
  check "all vertices trivially contention" 99 (by_dim 0);
  check "prohibited for k=1" 84
    (List.length (Contention.simplices_of_dim_ge 1 chr2_3))

let test_sync_runs_not_contending () =
  (* Two synchronous rounds: nobody contends. *)
  let f = facet2 [ [ 0; 1; 2 ] ] [ [ 0; 1; 2 ] ] in
  check "max contention dim" 0 (Contention.max_contention_dim f)

(* ------------------------------------------------------------------ *)
(* Critical simplices (Figure 5)                                      *)
(* ------------------------------------------------------------------ *)

let central_simplex colors =
  (* The simplex {(p, σ_colors) : p ∈ colors} of Chr s — all vertices
     sharing the face of s spanned by [colors] as carrier. *)
  let face = Simplex.restrict s3 colors in
  Simplex.make
    (List.map
       (fun p -> Vertex.deriv p (Simplex.vertices face))
       (Pset.to_list colors))

let test_critical_1of () =
  (* Figure 5a: for α(P) = min(|P|, 1) the critical simplices are the
     central simplices of the 7 faces of s. *)
  let crit = Critical.all_critical alpha_1of chr1_3 in
  check "count" 7 (List.length crit);
  List.iter
    (fun colors ->
      check_bool
        (Format.asprintf "central %a critical" Pset.pp colors)
        true
        (List.exists (Simplex.equal (central_simplex colors)) crit))
    (Pset.nonempty_subsets (Pset.full 3))

let test_critical_fig5b () =
  let crit = Critical.all_critical alpha_5b chr1_3 in
  check "count" 15 (List.length crit);
  (* p1 running solo is critical (α grows from 0 to 1 at {p1}); p0
     solo is not (α({p0}) = 0). *)
  let solo p = Simplex.make [ Vertex.deriv p [ Vertex.base p ] ] in
  check_bool "solo p1 critical" true
    (Critical.is_critical alpha_5b (solo 1));
  check_bool "solo p0 not critical" false
    (Critical.is_critical alpha_5b (solo 0));
  check_bool "solo p2 not critical" false
    (Critical.is_critical alpha_5b (solo 2));
  (* the central edge of the face {p0,p2} is critical: α goes 0 → 1 *)
  check_bool "central {p0,p2} critical" true
    (Critical.is_critical alpha_5b (central_simplex (ps [ 0; 2 ])))

let test_critical_not_inclusion_closed () =
  (* The set of critical simplices is not inclusion-closed (paper
     remark under Definition 7): under α(P) = min(|P|, 1) the central
     triangle is critical, but none of its proper faces is — removing
     only part of the triangle keeps the agreement power at 1. *)
  let triangle = central_simplex (Pset.full 3) in
  check_bool "central triangle critical" true
    (Critical.is_critical alpha_1of triangle);
  List.iter
    (fun face ->
      check_bool "proper face not critical" false
        (Critical.is_critical alpha_1of face))
    (Simplex.proper_faces triangle)

let test_csm_csv () =
  (* In the fully ordered run {p0},{p1},{p2} with α = min(|P|,1): only
     the solo simplex (p0,{p0}) is critical; CSM = {p0-vertex} and
     CSV = {p0}. *)
  let f1 = Chr.facet_of_run s3 (run [ [ 0 ]; [ 1 ]; [ 2 ] ]) in
  let csm = Critical.members alpha_1of f1 in
  Alcotest.(check (list int)) "CSM colors" [ 0 ]
    (Pset.to_list (Simplex.colors csm));
  Alcotest.(check (list int)) "CSV" [ 0 ]
    (Pset.to_list (Critical.view alpha_1of f1));
  (* Same run under fig5b's α: solo p0 is not critical; the first
     critical witness is (p1, {p0,p1}): α({p0}) = 0 < α({p0,p1}) = 1. *)
  let csm5b = Critical.members alpha_5b f1 in
  check_bool "p1 in CSM" true (Pset.mem 1 (Simplex.colors csm5b));
  check_bool "CSV includes p0,p1" true
    (Pset.subset (ps [ 0; 1 ]) (Critical.view alpha_5b f1))

(* ------------------------------------------------------------------ *)
(* Concurrency map (Figure 6)                                         *)
(* ------------------------------------------------------------------ *)

let test_concurrency_histograms () =
  (* Figure 6a: levels over the 49 simplices of Chr s (n=3). *)
  Alcotest.(check (list (pair int int)))
    "fig6a" [ (0, 18); (1, 31) ]
    (Concurrency.histogram alpha_1of chr1_3);
  Alcotest.(check (list (pair int int)))
    "fig6b" [ (0, 4); (1, 14); (2, 31) ]
    (Concurrency.histogram alpha_5b chr1_3)

let test_concurrency_star_structure () =
  (* A simplex has level ≥ k iff it contains a critical simplex of
     agreement power ≥ k — cross-check on all simplices for fig5b. *)
  List.iter
    (fun sigma ->
      let level = Concurrency.level alpha_5b sigma in
      let expected =
        List.fold_left
          (fun acc tau ->
            max acc (Agreement.eval alpha_5b (Simplex.base_carrier tau)))
          0
          (List.filter (Critical.is_critical alpha_5b) (Simplex.faces sigma))
      in
      check "level agrees" expected level)
    (Complex.all_simplices chr1_3)

(* ------------------------------------------------------------------ *)
(* Affine tasks: R_{k-OF}, R_{t-res}, R_A (Figures 1b and 7)          *)
(* ------------------------------------------------------------------ *)

let test_rkof_counts () =
  check "R_1-OF facets (Fig 7a)" 73 (Complex.facet_count (Rkof.complex ~n:3 ~k:1));
  check "R_2-OF facets" 163 (Complex.facet_count (Rkof.complex ~n:3 ~k:2));
  check "R_3-OF = Chr^2 s" 169 (Complex.facet_count (Rkof.complex ~n:3 ~k:3))

let test_rtres_counts () =
  (* Figure 1b: R_{1-res} for n = 3. *)
  let r = Rtres.complex ~n:3 ~t:1 in
  check "facets" 142 (Complex.facet_count r);
  check_bool "pure" true (Complex.is_pure_of_dim 2 r);
  (* Wait-free resilience (t = n-1) imposes nothing. *)
  check "R_(n-1)-res = Chr^2 s" 169
    (Complex.facet_count (Rtres.complex ~n:3 ~t:2))

let test_ra_matches_rkof_extremes () =
  (* Under the union variant, R_A of the k-OF adversary coincides with
     Definition 6 for k = 1 and k = n. *)
  List.iter
    (fun (nn, k) ->
      let alpha = Agreement.k_obstruction_free ~n:nn ~k in
      check_bool
        (Printf.sprintf "n=%d k=%d" nn k)
        true
        (Complex.equal
           (Ra.complex ~variant:Ra.Lemma6_union alpha ~n:nn)
           (Rkof.complex ~n:nn ~k)))
    [ (3, 1); (3, 3); (2, 1); (2, 2) ]

let test_ra_strict_refinement_k2 () =
  (* For 1 < k < n, R_A is a strict sub-complex of Definition 6's
     R_{k-OF}: Definition 9 additionally excludes runs in which a
     process with the largest View1 jumps first in round 2 without a
     critical witness — runs Algorithm 1 cannot produce. *)
  let alpha = Agreement.k_obstruction_free ~n:3 ~k:2 in
  let ra = Ra.complex ~variant:Ra.Lemma6_union alpha ~n:3 in
  let rkof = Rkof.complex ~n:3 ~k:2 in
  check_bool "RA ⊆ Rkof" true (Complex.subcomplex ra rkof);
  check "RA facets" 142 (Complex.facet_count ra);
  check "Rkof facets" 163 (Complex.facet_count rkof);
  (* The documented witness: rounds {p0},{p1},{p2} then {p2},{p0,p1}. *)
  let f = facet2 [ [ 0 ]; [ 1 ]; [ 2 ] ] [ [ 2 ]; [ 0; 1 ] ] in
  check_bool "witness in Rkof" true (Complex.mem f rkof);
  check_bool "witness not in RA" false (Complex.mem f ra)

let test_ra_variants_differ () =
  (* The literal Definition 9 (triple intersection) does not match
     R_{1-OF}; the Lemma 6 union reading does. *)
  let alpha = alpha_1of in
  let ra_int = Ra.complex ~variant:Ra.Def9_intersection alpha ~n:3 in
  let ra_uni = Ra.complex ~variant:Ra.Lemma6_union alpha ~n:3 in
  let rkof = Rkof.complex ~n:3 ~k:1 in
  check_bool "union = Def 6" true (Complex.equal ra_uni rkof);
  check_bool "intersection ≠ Def 6" false (Complex.equal ra_int rkof);
  check_bool "intersection ⊆ union" true (Complex.subcomplex ra_int ra_uni)

let test_ra_1res_equals_rtres () =
  (* For the (superset-closed, fair) 1-resilient adversary on 3
     processes, R_A coincides with Saraph et al.'s R_{t-res}. *)
  let a = Adversary.t_resilient ~n:3 ~t:1 in
  let ra = Ra.complex (Agreement.of_adversary a) ~n:3 in
  check_bool "equal" true (Complex.equal ra (Rtres.complex ~n:3 ~t:1))

let test_ra_fig7 () =
  check "R_A fig7a facets" 73
    (Complex.facet_count (Ra.complex alpha_1of ~n:3));
  check "R_A fig7b facets" 145
    (Complex.facet_count (Ra.complex alpha_5b ~n:3));
  check_bool "fig7b pure" true
    (Complex.is_pure_of_dim 2 (Ra.complex alpha_5b ~n:3))

let test_ra_wait_free_full () =
  (* The wait-free adversary has α(P) = |P|: nothing is prohibited. *)
  let alpha = Agreement.of_adversary (Adversary.wait_free 3) in
  check "R_A wait-free = Chr^2 s" 169
    (Complex.facet_count (Ra.complex alpha ~n:3))

let test_affine_task_api () =
  let t = Rkof.task ~n:3 ~k:1 in
  check "ell" 2 (Affine_task.ell t);
  check "n" 3 (Affine_task.n t);
  (* ∆ on a proper face: the sub-complex of runs among {p0,p1}. *)
  let d = Affine_task.delta t (ps [ 0; 1 ]) in
  check_bool "delta nonempty" true (not (Complex.is_empty d));
  List.iter
    (fun f ->
      check_bool "delta carrier inside face" true
        (Pset.subset (Simplex.base_carrier f) (ps [ 0; 1 ])))
    (Complex.facets d);
  (* ∆ must be monotone (carrier map). *)
  check_bool "monotone" true
    (Complex.subcomplex d (Affine_task.delta t (Pset.full 3)))

let check_precondition name ~fn f =
  match f () with
  | _ -> Alcotest.failf "%s: expected a Precondition Fact_error" name
  | exception
      Fact_resilience.Fact_error.Error
        (Fact_resilience.Fact_error.Precondition { fn = got; _ }) ->
    Alcotest.(check string) name fn got
  | exception e ->
    Alcotest.failf "%s: unexpected exception %s" name (Printexc.to_string e)

let test_affine_task_validation () =
  check_precondition "empty rejected" ~fn:"Affine_task.make" (fun () ->
      ignore (Affine_task.make ~ell:2 (Complex.of_facets ~n:3 [])));
  check_precondition "wrong level rejected" ~fn:"Affine_task.make"
    (fun () -> ignore (Affine_task.make ~ell:2 chr1_3))

let test_affine_compose () =
  (* Chr^1 ∘ Chr^1 = Chr^2 (as complexes). *)
  let one = Affine_task.full_chr ~n:3 ~ell:1 in
  let two = Affine_task.compose one one in
  check "ell adds" 2 (Affine_task.ell two);
  check_bool "= Chr^2 s" true (Complex.equal (Affine_task.complex two) chr2_3);
  (* Iterating R_{1-OF} twice gives a pure sub-complex of Chr^4 s with
     73² facets. *)
  let r = Rkof.task ~n:3 ~k:1 in
  let r2 = Affine_task.iterate r 2 in
  check "ell" 4 (Affine_task.ell r2);
  check "facets multiply" (73 * 73) (Complex.facet_count (Affine_task.complex r2));
  check_bool "pure" true (Complex.is_pure_of_dim 2 (Affine_task.complex r2));
  List.iter
    (fun f -> check_bool "valid Chr^4 simplex" true (Chr.is_simplex_of_chr f))
    (List.filteri (fun i _ -> i mod 500 = 0) (Complex.facets (Affine_task.complex r2)))

(* ------------------------------------------------------------------ *)
(* R_A regression against the pre-memoization implementation          *)
(* ------------------------------------------------------------------ *)

(* Facet/simplex/Euler fingerprints of [Ra.complex] recorded from the
   seed (structural, cache-free) implementation. The memoized
   mask-based pipeline must reproduce them exactly, for both Def 9
   variants. *)
let test_ra_seed_fingerprints () =
  let alpha_1res = Agreement.of_adversary (Adversary.t_resilient ~n:3 ~t:1) in
  let cases =
    [
      ("1-res union", alpha_1res, Ra.Lemma6_union, 142, 475);
      ("1-res inter", alpha_1res, Ra.Def9_intersection, 142, 475);
      ("fig5b union", alpha_5b, Ra.Lemma6_union, 145, 483);
      ("fig5b inter", alpha_5b, Ra.Def9_intersection, 139, 467);
    ]
  in
  List.iter
    (fun (name, alpha, variant, facets, simplices) ->
      let r = Ra.complex ~variant alpha ~n:3 in
      check (name ^ " facets") facets (Complex.facet_count r);
      check (name ^ " simplices") simplices (Complex.simplex_count r);
      check (name ^ " euler") 1 (Complex.euler_characteristic r))
    cases

let test_ra_memo_stability () =
  (* A second call for the same α must hit the per-(stamp, variant)
     verdict cache and return an equal complex; the mask path must also
     agree facet-by-facet with the face-list path [offending_faces]. *)
  let r1 = Ra.complex alpha_5b ~n:3 in
  let r2 = Ra.complex alpha_5b ~n:3 in
  check_bool "repeat equal" true (Complex.equal r1 r2);
  check "repeat facet count" (Complex.facet_count r1) (Complex.facet_count r2);
  List.iter
    (fun f ->
      let fast = Complex.mem f r1 in
      let slow = Ra.offending_faces alpha_5b f = [] in
      check_bool "mask path = face-list path" true (fast = slow))
    (Complex.facets (Chr.standard_iterated ~m:2 ~n:3))

(* ------------------------------------------------------------------ *)
(* µ_Q (Section 6.2)                                                  *)
(* ------------------------------------------------------------------ *)

let ra_1of = Ra.complex alpha_1of ~n:3
let ra_5b = Ra.complex alpha_5b ~n:3

let nonempty_qs = Pset.nonempty_subsets (Pset.full 3)

let test_mu_validity () =
  (* Property 9: µ_Q(v) ∈ Q ∩ χ(carrier(v, s)), exhaustively. *)
  List.iter
    (fun (alpha, ra) ->
      List.iter
        (fun f ->
          List.iter
            (fun v ->
              List.iter
                (fun q ->
                  if Pset.mem (Vertex.proc v) q then begin
                    let l = Mu.leader alpha ~q v in
                    check_bool "leader in Q" true (Pset.mem l q);
                    check_bool "leader seen" true
                      (Pset.mem l (Vertex.base_carrier v))
                  end)
                nonempty_qs)
            (Simplex.vertices f))
        (Complex.facets ra))
    [ (alpha_1of, ra_1of); (alpha_5b, ra_5b) ]

let test_mu_agreement () =
  (* Property 10: on any θ ⊆ σ ∈ facets(R_A) with χ(θ) ⊆ Q, the number
     of distinct leaders is at most α(χ(carrier(θ, s))). Exhaustive. *)
  List.iter
    (fun (alpha, ra) ->
      List.iter
        (fun f ->
          List.iter
            (fun q ->
              let theta = Simplex.restrict f q in
              if not (Simplex.is_empty theta) then begin
                let leaders = Mu.leaders alpha ~q theta in
                let bound =
                  Agreement.eval alpha (Simplex.base_carrier theta)
                in
                check_bool "≤ α(carrier θ)" true
                  (Pset.cardinal leaders <= bound)
              end)
            nonempty_qs)
        (Complex.facets ra))
    [ (alpha_1of, ra_1of); (alpha_5b, ra_5b) ]

let test_mu_robustness () =
  (* Property 12: µ_Q(v) = µ_{Q ∩ carrier(v,s)}(v). Exhaustive. *)
  List.iter
    (fun (alpha, ra) ->
      List.iter
        (fun f ->
          List.iter
            (fun v ->
              List.iter
                (fun q ->
                  if Pset.mem (Vertex.proc v) q then begin
                    let q' = Pset.inter q (Vertex.base_carrier v) in
                    check "robust" (Mu.leader alpha ~q v)
                      (Mu.leader alpha ~q:q' v)
                  end)
                nonempty_qs)
            (Simplex.vertices f))
        (Complex.facets ra))
    [ (alpha_1of, ra_1of); (alpha_5b, ra_5b) ]

let test_mu_errors () =
  let f = List.hd (Complex.facets ra_1of) in
  let v = List.hd (Simplex.vertices f) in
  let q = Pset.remove (Vertex.proc v) (Pset.full 3) in
  Alcotest.check_raises "color not in Q"
    (Invalid_argument "Mu.leader: vertex color not in Q") (fun () ->
      ignore (Mu.leader alpha_1of ~q v))

(* ------------------------------------------------------------------ *)
(* Link-connectivity (Section 8)                                      *)
(* ------------------------------------------------------------------ *)

let test_link_connectivity_of_affine_tasks () =
  (* Section 8: R_{t-res} is link-connected (which is what lets [30]
     use continuous maps), while "only very special adversaries" have
     link-connected affine tasks — in particular R_{1-OF} (Figure 7a)
     is NOT link-connected. *)
  check_bool "R_1-res link-connected" true
    (Link.is_link_connected (Rtres.complex ~n:3 ~t:1));
  check_bool "R_1-OF not link-connected" false
    (Link.is_link_connected ra_1of);
  check_bool "witnesses exist" true
    (Link.disconnected_vertices ra_1of <> []);
  (* Chr^2 s itself (wait-freedom) is a subdivision, hence
     link-connected. *)
  check_bool "Chr^2 link-connected" true (Link.is_link_connected chr2_3)

(* ------------------------------------------------------------------ *)
(* Property tests                                                     *)
(* ------------------------------------------------------------------ *)

let facet_gen complex =
  let fs = Complex.facets complex in
  QCheck.map (fun i -> List.nth fs (abs i mod List.length fs)) QCheck.int

let prop_cont2_inclusion_closed =
  QCheck.Test.make ~name:"Cont2 is inclusion-closed" ~count:200
    (QCheck.pair (facet_gen chr2_3) QCheck.(map abs int))
    (fun (f, mask) ->
      let sub = Simplex.restrict f (Pset.of_mask (mask land 7)) in
      (not (Contention.is_contention_simplex f))
      || Simplex.is_empty sub
      || Contention.is_contention_simplex sub)

let prop_ra_facets_pass_their_own_check =
  QCheck.Test.make ~name:"R_A facets have no offending faces" ~count:100
    (facet_gen ra_5b)
    (fun f -> Ra.offending_faces alpha_5b f = [])

let prop_mu_agreement_random_adversary =
  QCheck.Test.make ~name:"µ_Q agreement on random fair adversaries" ~count:8
    (QCheck.map
       (fun bits ->
         let sizes = List.filter (fun k -> (bits lsr k) land 1 = 1) [ 1; 2; 3 ] in
         let sizes = if sizes = [] then [ 3 ] else sizes in
         Adversary.of_sizes ~n:3 sizes)
       QCheck.(map abs int))
    (fun a ->
      let alpha = Agreement.of_adversary a in
      let ra = Ra.complex alpha ~n:3 in
      List.for_all
        (fun f ->
          List.for_all
            (fun q ->
              let theta = Simplex.restrict f q in
              Simplex.is_empty theta
              || Pset.cardinal (Mu.leaders alpha ~q theta)
                 <= Agreement.eval alpha (Simplex.base_carrier theta))
            nonempty_qs)
        (Complex.facets ra))

let suite =
  [
    ("views of a 2-round run", `Quick, test_views);
    ("views level check", `Quick, test_views_level_check);
    ("contention: reversed runs (Fig 4a)", `Quick, test_contention_fig4a);
    ("contention: mixed runs (Fig 4b)", `Quick, test_contention_fig4b);
    ("contention complex counts (Fig 4c)", `Quick, test_contention_complex_counts);
    ("sync runs not contending", `Quick, test_sync_runs_not_contending);
    ("critical simplices 1-OF (Fig 5a)", `Quick, test_critical_1of);
    ("critical simplices fig5b (Fig 5b)", `Quick, test_critical_fig5b);
    ("critical not inclusion-closed", `Quick, test_critical_not_inclusion_closed);
    ("CSM and CSV", `Quick, test_csm_csv);
    ("concurrency histograms (Fig 6)", `Quick, test_concurrency_histograms);
    ("concurrency vs critical faces", `Quick, test_concurrency_star_structure);
    ("R_kOF facet counts", `Quick, test_rkof_counts);
    ("R_tres facet counts (Fig 1b)", `Quick, test_rtres_counts);
    ("R_A = R_kOF at extremes", `Quick, test_ra_matches_rkof_extremes);
      ("R_A strict refinement at k=2", `Quick, test_ra_strict_refinement_k2);
      ("Def 9 variants differ", `Quick, test_ra_variants_differ);
      ("R_A(1-res) = R_tres", `Quick, test_ra_1res_equals_rtres);
      ("R_A facet counts (Fig 7)", `Quick, test_ra_fig7);
      ("R_A of wait-free is Chr^2 s", `Quick, test_ra_wait_free_full);
      ("R_A seed fingerprints (both variants)", `Quick, test_ra_seed_fingerprints);
      ("R_A memo stability", `Quick, test_ra_memo_stability);
      ("affine task API", `Quick, test_affine_task_api);
      ("affine task validation", `Quick, test_affine_task_validation);
      ("affine task composition", `Quick, test_affine_compose);
      ("µ_Q validity (Property 9)", `Quick, test_mu_validity);
      ("µ_Q agreement (Property 10)", `Quick, test_mu_agreement);
      ("µ_Q robustness (Property 12)", `Quick, test_mu_robustness);
      ("µ_Q errors", `Quick, test_mu_errors);
      ("link-connectivity of affine tasks (§8)", `Quick,
       test_link_connectivity_of_affine_tasks);
      QCheck_alcotest.to_alcotest prop_cont2_inclusion_closed;
      QCheck_alcotest.to_alcotest prop_ra_facets_pass_their_own_check;
      QCheck_alcotest.to_alcotest prop_mu_agreement_random_adversary;
    ]
