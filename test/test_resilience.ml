(* Tests for the resilience layer: the typed error taxonomy,
   cooperative cancellation, bounded memo caches with recompute
   auditing, the fault-tolerant parallel fan-out, exploration
   checkpoint/resume, and the chaos harness. *)

open Fact_topology
open Fact_adversary
open Fact_affine
open Fact_runtime
open Fact_tasks
open Fact_check
open Fact_resilience

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let ps = Pset.of_list

let check_precondition name ~fn f =
  match f () with
  | _ -> Alcotest.failf "%s: expected a Precondition Fact_error" name
  | exception Fact_error.Error (Fact_error.Precondition { fn = got; _ }) ->
    Alcotest.(check string) name fn got
  | exception e ->
    Alcotest.failf "%s: unexpected exception %s" name (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Fact_error                                                         *)
(* ------------------------------------------------------------------ *)

let test_error_taxonomy () =
  let pre = Fact_error.Precondition { fn = "f"; what = "w" } in
  let dead = Fact_error.Deadline_exceeded { where = "x"; budget_s = 1.0 } in
  let can = Fact_error.Cancelled { where = "x" } in
  let wrk =
    Fact_error.Worker_failure { fn = "f"; failed = 1; chunks = 2; first = "e" }
  in
  let res = Fact_error.Resource_limit { what = "w"; limit = 1; got = 2 } in
  check "precondition exit" 2 (Fact_error.exit_code pre);
  check "deadline exit" 3 (Fact_error.exit_code dead);
  check "cancelled exit" 4 (Fact_error.exit_code can);
  check "worker exit" 5 (Fact_error.exit_code wrk);
  check "resource exit" 6 (Fact_error.exit_code res);
  check_bool "deadline is cancellation" true
    (Fact_error.is_cancellation (Fact_error.Error dead));
  check_bool "cancelled is cancellation" true
    (Fact_error.is_cancellation (Fact_error.Error can));
  check_bool "worker is not" false
    (Fact_error.is_cancellation (Fact_error.Error wrk));
  check_bool "other exceptions are not" false
    (Fact_error.is_cancellation Exit);
  (* messages carry the taxonomy case and the origin *)
  Alcotest.(check string)
    "to_string" "fact_error(precondition): f: w" (Fact_error.to_string pre);
  Alcotest.(check string)
    "registered printer" "fact_error(cancelled): x"
    (Printexc.to_string (Fact_error.Error can))

(* ------------------------------------------------------------------ *)
(* Cancel                                                             *)
(* ------------------------------------------------------------------ *)

let test_cancel_token () =
  (* the inert token *)
  Cancel.check ~where:"t" Cancel.never;
  check_bool "never not cancelled" false (Cancel.cancelled Cancel.never);
  (* external trigger *)
  let t = Cancel.create () in
  Cancel.check ~where:"t" t;
  Cancel.cancel t;
  check_bool "triggered" true (Cancel.cancelled t);
  (match Cancel.check ~where:"t" t with
  | () -> Alcotest.fail "expected Cancelled"
  | exception Fact_error.Error (Fact_error.Cancelled { where }) ->
    Alcotest.(check string) "where" "t" where);
  (* poll-count trip: k polls pass, the k+1-st raises *)
  let t = Cancel.create ~trip_after:2 () in
  Cancel.check ~where:"t" t;
  Cancel.check ~where:"t" t;
  (match Cancel.check ~where:"t" t with
  | () -> Alcotest.fail "expected trip"
  | exception Fact_error.Error (Fact_error.Cancelled _) -> ());
  (* deadline *)
  let t = Cancel.create ~deadline_s:0.01 () in
  Cancel.check ~where:"t" t;
  Unix.sleepf 0.02;
  (match Cancel.check ~where:"t" t with
  | () -> Alcotest.fail "expected deadline"
  | exception Fact_error.Error (Fact_error.Deadline_exceeded { budget_s; _ })
    ->
    check_bool "budget recorded" true (budget_s > 0.));
  (* ambient install/restore, including on exceptions *)
  let t = Cancel.create () in
  Cancel.with_token t (fun () ->
      check_bool "installed" true (Cancel.current () == t));
  check_bool "restored" true (Cancel.current () == Cancel.never);
  (try
     Cancel.with_token t (fun () -> raise Exit)
   with Exit -> ());
  check_bool "restored after raise" true (Cancel.current () == Cancel.never);
  (* validation *)
  check_precondition "bad deadline" ~fn:"Cancel.create" (fun () ->
      Cancel.create ~deadline_s:(-1.) ());
  check_precondition "bad trip_after" ~fn:"Cancel.create" (fun () ->
      Cancel.create ~trip_after:(-1) ())

(* ------------------------------------------------------------------ *)
(* Cache                                                              *)
(* ------------------------------------------------------------------ *)

module Int_cache = Cache.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

let test_cache_bounded () =
  let c = Int_cache.create ~name:"test.bounded" ~cap:8 ~equal:Int.equal () in
  for k = 0 to 99 do
    check "value" (2 * k) (Int_cache.find_or_add c k (fun k -> 2 * k))
  done;
  let s = Int_cache.stats c in
  check_bool "size bounded" true (s.Cache.size <= 8);
  check "all misses" 100 s.Cache.misses;
  check_bool "evicted" true (s.Cache.evictions >= 92);
  (* the most recent key is still resident *)
  ignore (Int_cache.find_or_add c 99 (fun _ -> Alcotest.fail "not cached"));
  check "hit counted" 1 (Int_cache.stats c).Cache.hits

let test_cache_recompute_audit () =
  let c = Int_cache.create ~name:"test.audit" ~cap:8 ~equal:Int.equal () in
  Cache.set_check true;
  Fun.protect
    ~finally:(fun () -> Cache.set_check false)
    (fun () ->
      for k = 0 to 3 do
        ignore (Int_cache.find_or_add c k (fun k -> 10 * k))
      done;
      Int_cache.force_evict c;
      check "emptied" 0 (Int_cache.stats c).Cache.size;
      (* recomputing the same value is fine... *)
      check "clean recompute" 20
        (Int_cache.find_or_add c 2 (fun k -> 10 * k));
      (* ...but an evicted entry recomputing differently is an
         invariant violation, surfaced as a typed error. *)
      check_precondition "divergent recompute" ~fn:"Cache(test.audit)"
        (fun () -> Int_cache.find_or_add c 3 (fun k -> (10 * k) + 1)))

let test_cache_cap_identity () =
  (* R_A is the same complex whatever the cache cap and however often
     the caches are flushed. *)
  let alpha = Agreement.of_adversary (Adversary.t_resilient ~n:3 ~t:1) in
  let reference = Ra.complex alpha ~n:3 in
  let old_cap = Cache.default_cap () in
  Fun.protect
    ~finally:(fun () -> Cache.set_default_cap old_cap)
    (fun () ->
      List.iter
        (fun cap ->
          Cache.set_default_cap cap;
          Cache.clear_all ();
          check_bool
            (Printf.sprintf "cap %d" cap)
            true
            (Complex.equal (Ra.complex alpha ~n:3) reference))
        [ 64; 1024; 0 ]);
  Cache.clear_all ();
  (* counters aggregate across the registry *)
  ignore (Ra.complex alpha ~n:3);
  let stats = Cache.all_stats () in
  check_bool "registry populated" true (List.length stats >= 5);
  check_bool "work happened" true
    (List.exists (fun (_, s) -> s.Cache.misses > 0) stats);
  Cache.reset_counters ();
  check_bool "counters reset" true
    (List.for_all
       (fun (_, s) -> s.Cache.misses = 0 && s.Cache.hits = 0)
       (Cache.all_stats ()))

(* ------------------------------------------------------------------ *)
(* Parallel fault tolerance                                           *)
(* ------------------------------------------------------------------ *)

let items = List.init 48 Fun.id

let test_parallel_worker_failure () =
  (* a fault deterministic in the input fails the retry too and
     surfaces as one aggregated Worker_failure *)
  (match
     Parallel.map ~domains:4
       (fun x -> if x mod 2 = 0 then failwith "boom" else x)
       items
   with
  | _ -> Alcotest.fail "expected Worker_failure"
  | exception
      Fact_error.Error
        (Fact_error.Worker_failure { fn; failed; chunks; first }) ->
    Alcotest.(check string) "fn" "Parallel.map" fn;
    check "chunks" 4 chunks;
    check "all chunks failed" 4 failed;
    check_bool "first cause recorded" true
      (String.length first > 0));
  (* no leaked domains, no poisoned state: the next fan-out succeeds *)
  Alcotest.(check (list int))
    "fan-out reusable" (List.map succ items)
    (Parallel.map ~domains:4 succ items);
  (* map_init path aggregates the same way *)
  match
    Parallel.map_init ~domains:4
      (fun () -> ())
      (fun () _ -> failwith "boom")
      items
  with
  | _ -> Alcotest.fail "expected Worker_failure"
  | exception Fact_error.Error (Fact_error.Worker_failure { fn; _ }) ->
    Alcotest.(check string) "map_init fn" "Parallel.map_init" fn

let test_parallel_transient_retry () =
  (* fails the first time it is called on one item, then succeeds:
     the sequential retry on the parent absorbs it *)
  let lock = Mutex.create () in
  let tripped = ref false in
  let f x =
    if x = 17 then begin
      Mutex.lock lock;
      let first = not !tripped in
      tripped := true;
      Mutex.unlock lock;
      if first then failwith "transient"
    end;
    x * 3
  in
  Alcotest.(check (list int))
    "retried to success"
    (List.map (fun x -> x * 3) items)
    (Parallel.map ~domains:4 f items)

let test_parallel_cancellation_passthrough () =
  (* cancellation is a stop request, not a worker failure: it must
     escape unwrapped and skip the retry *)
  let t = Cancel.create ~trip_after:0 () in
  match
    Cancel.with_token t (fun () ->
        Parallel.map ~domains:4
          (fun x ->
            Cancel.poll ~where:"test";
            x)
          items)
  with
  | _ -> Alcotest.fail "expected Cancelled"
  | exception Fact_error.Error (Fact_error.Cancelled _) -> ()

let test_parallel_domains_identity () =
  let alpha = Agreement.of_adversary Adversary.fig5b in
  let reference = Ra.complex alpha ~n:3 in
  let old = Parallel.default_domains () in
  Fun.protect
    ~finally:(fun () -> Parallel.set_default_domains old)
    (fun () ->
      List.iter
        (fun d ->
          Parallel.set_default_domains d;
          Cache.clear_all ();
          check_bool
            (Printf.sprintf "domains %d" d)
            true
            (Complex.equal (Ra.complex alpha ~n:3) reference))
        [ 1; 2; 4 ])

(* ------------------------------------------------------------------ *)
(* Typed preconditions at API boundaries                              *)
(* ------------------------------------------------------------------ *)

let test_typed_preconditions () =
  check_precondition "Schedule.random non-participant" ~fn:"Schedule.random"
    (fun () ->
      Schedule.random ~seed:1 ~n:3 ~participants:(ps [ 0; 1 ])
        ~crashes:[ (2, 0) ]);
  let task = Set_consensus.task_fixed ~n:2 ~k:1 ~inputs:[ 0; 1 ] in
  check_precondition "Solver.solve empty protocol" ~fn:"Solver.solve"
    (fun () ->
      Solver.solve ~protocol:(Complex.of_facets ~n:2 []) ~task);
  let alpha = Agreement.of_adversary (Adversary.wait_free 2) in
  check_precondition "Adaptive_consensus empty Q"
    ~fn:"Adaptive_consensus.solve" (fun () ->
      Adaptive_consensus.solve
        ~task:(Affine_task.full_chr ~n:2 ~ell:2)
        ~alpha ~q:Pset.empty ~proposals:Fun.id
        ~picker:(Affine_runner.random_picker ~seed:1)
        ());
  let one = Affine_task.full_chr ~n:2 ~ell:1 in
  check_precondition "Affine_task.iterate m=0" ~fn:"Affine_task.iterate"
    (fun () -> Affine_task.iterate one 0);
  let other = Affine_task.full_chr ~n:3 ~ell:1 in
  check_precondition "Affine_task.compose universes"
    ~fn:"Affine_task.compose" (fun () -> Affine_task.compose one other);
  check_precondition "Chaos.run budget" ~fn:"Chaos.run" (fun () ->
      Chaos.run ~max_faults:0 ())

(* ------------------------------------------------------------------ *)
(* Explore: checkpoint/resume                                         *)
(* ------------------------------------------------------------------ *)

let stats_agree name (a : _ Explore.stats) (b : _ Explore.stats) =
  check (name ^ " runs") a.Explore.runs b.Explore.runs;
  check (name ^ " truncated") a.Explore.truncated b.Explore.truncated;
  check (name ^ " pruned") a.Explore.pruned b.Explore.pruned;
  check (name ^ " patterns") a.Explore.crash_patterns b.Explore.crash_patterns;
  check (name ^ " violations")
    (List.length a.Explore.violations)
    (List.length b.Explore.violations);
  check_bool (name ^ " exhausted") a.Explore.exhausted b.Explore.exhausted

let interrupted_is ~n ~max_runs =
  let last = ref None in
  let stats, _ =
    Harness.explore_immediate_snapshot ~max_runs ~checkpoint_every:1
      ~on_checkpoint:(fun ck -> last := Some ck)
      ~n ()
  in
  check_bool "interrupted" false stats.Explore.exhausted;
  match !last with
  | Some ck -> ck
  | None -> Alcotest.fail "no checkpoint emitted"

let test_checkpoint_resume_is () =
  List.iter
    (fun (n, max_runs, fubini) ->
      let base, base_parts = Harness.explore_immediate_snapshot ~n () in
      check_bool "baseline exhaustive" true base.Explore.exhausted;
      check "baseline partitions" fubini (List.length base_parts);
      let ck = interrupted_is ~n ~max_runs in
      (* serialization round-trip *)
      let ck =
        match Checkpoint.of_string (Checkpoint.to_string ck) with
        | Ok ck' ->
          Alcotest.(check string)
            "checkpoint round-trip" (Checkpoint.to_string ck)
            (Checkpoint.to_string ck');
          ck'
        | Error e -> Alcotest.failf "checkpoint parse: %s" e
      in
      let resumed, parts =
        Harness.explore_immediate_snapshot ~resume:ck ~n ()
      in
      stats_agree (Printf.sprintf "is n=%d" n) base resumed;
      check "resumed partitions" fubini (List.length parts);
      check_bool "same partitions" true
        (List.for_all2 Opart.equal base_parts parts))
    [ (2, 3, 3); (3, 200, 13) ]

let test_checkpoint_resume_alg1 () =
  let alpha = Agreement.of_adversary (Adversary.t_resilient ~n:2 ~t:1) in
  let participants = Pset.full 2 in
  let base = Harness.explore_algorithm1 ~alpha ~participants () in
  check_bool "baseline exhaustive" true base.Explore.exhausted;
  check "no violations" 0 (List.length base.Explore.violations);
  let last = ref None in
  let interrupted =
    Harness.explore_algorithm1 ~max_runs:1500 ~checkpoint_every:100
      ~on_checkpoint:(fun ck -> last := Some ck)
      ~alpha ~participants ()
  in
  check_bool "interrupted" false interrupted.Explore.exhausted;
  let ck = Option.get !last in
  let resumed = Harness.explore_algorithm1 ~resume:ck ~alpha ~participants () in
  stats_agree "alg1 n=2" base resumed

let test_checkpoint_mismatch () =
  let ck = interrupted_is ~n:2 ~max_runs:3 in
  check_precondition "wrong protocol" ~fn:"Harness.explore_algorithm1"
    (fun () ->
      Harness.explore_algorithm1 ~resume:ck
        ~alpha:(Agreement.of_adversary (Adversary.wait_free 2))
        ~participants:(Pset.full 2) ());
  check_precondition "wrong universe" ~fn:"Harness.explore_immediate_snapshot"
    (fun () -> Harness.explore_immediate_snapshot ~resume:ck ~n:3 ())

let test_explore_cancellation_flushes () =
  (* a deadline mid-search still leaves a resumable checkpoint *)
  let last = ref None in
  let t = Cancel.create ~trip_after:50 () in
  (match
     Cancel.with_token t (fun () ->
         Harness.explore_immediate_snapshot
           ~on_checkpoint:(fun ck -> last := Some ck)
           ~n:3 ())
   with
  | _ -> Alcotest.fail "expected cancellation"
  | exception Fact_error.Error (Fact_error.Cancelled _) -> ());
  let ck = Option.get !last in
  let base, base_parts = Harness.explore_immediate_snapshot ~n:3 () in
  let resumed, parts = Harness.explore_immediate_snapshot ~resume:ck ~n:3 () in
  stats_agree "after cancel" base resumed;
  check "partitions" (List.length base_parts) (List.length parts)

let test_checkpoint_resume_parallel () =
  (* Pooled exploration: cancel mid-search at 4 domains, round-trip
     the Par snapshot through the textual format, resume under the
     pool — final stats bit-identical to an uninterrupted run. *)
  let last = ref None in
  let t = Cancel.create ~trip_after:12 () in
  (match
     Cancel.with_token t (fun () ->
         Harness.explore_immediate_snapshot ~domains:4 ~checkpoint_every:5
           ~on_checkpoint:(fun ck -> last := Some ck)
           ~n:3 ())
   with
  | _ -> Alcotest.fail "expected cancellation"
  | exception Fact_error.Error (Fact_error.Cancelled _) -> ());
  let ck = Option.get !last in
  let ck =
    match Checkpoint.of_string (Checkpoint.to_string ck) with
    | Ok ck' ->
      Alcotest.(check string)
        "Par snapshot round-trip" (Checkpoint.to_string ck)
        (Checkpoint.to_string ck');
      ck'
    | Error e -> Alcotest.failf "checkpoint parse: %s" e
  in
  let base, base_parts = Harness.explore_immediate_snapshot ~n:3 () in
  let resumed, parts =
    Harness.explore_immediate_snapshot ~resume:ck ~domains:4 ~n:3 ()
  in
  stats_agree "parallel resume" base resumed;
  check "partitions" (List.length base_parts) (List.length parts);
  check_bool "same partitions" true
    (List.for_all2 Opart.equal base_parts parts)

(* ------------------------------------------------------------------ *)
(* Chaos                                                              *)
(* ------------------------------------------------------------------ *)

let test_chaos () =
  let stats = Chaos.run ~seed:11 ~max_faults:60 () in
  check "all injected" 60 stats.Chaos.injected;
  Alcotest.(check (list string)) "no violations" [] stats.Chaos.violations;
  check_bool "every kind exercised" true
    (stats.Chaos.worker_crash > 0
    && stats.Chaos.worker_transient > 0
    && stats.Chaos.evictions > 0
    && stats.Chaos.explore_storms > 0
    && stats.Chaos.assertion_sweeps > 0);
  check_bool "typed errors observed" true (stats.Chaos.typed_errors > 0);
  check_bool "completions observed" true (stats.Chaos.completed > 0)

let test_ra_cancellation () =
  let alpha = Agreement.of_adversary (Adversary.t_resilient ~n:3 ~t:1) in
  let reference = Ra.complex alpha ~n:3 in
  (* poll-trip: even a warm pipeline cancels promptly *)
  (match
     Cancel.with_token
       (Cancel.create ~trip_after:5 ())
       (fun () -> Ra.complex alpha ~n:3)
   with
  | _ -> Alcotest.fail "expected cancellation"
  | exception Fact_error.Error (Fact_error.Cancelled _) -> ());
  (* an already-expired deadline raises the deadline error *)
  (match
     Cancel.with_token
       (Cancel.create ~deadline_s:1e-9 ())
       (fun () ->
         Unix.sleepf 0.001;
         Ra.complex alpha ~n:3)
   with
  | _ -> Alcotest.fail "expected deadline"
  | exception Fact_error.Error (Fact_error.Deadline_exceeded _) -> ());
  (* the pipeline is unharmed afterwards *)
  check_bool "pipeline healthy" true
    (Complex.equal (Ra.complex alpha ~n:3) reference)

(* ---------------------------- backoff ----------------------------- *)

let test_backoff_policy () =
  let p = Backoff.make ~base_ms:50. ~multiplier:2. ~max_ms:400. () in
  (* deterministic exponential growth, capped *)
  Alcotest.(check (list (float 0.001)))
    "schedule doubles then caps"
    [ 50.; 100.; 200.; 400.; 400. ]
    (Backoff.schedule p ~attempts:5);
  (* huge attempt numbers must saturate at the cap, not overflow *)
  Alcotest.(check (float 0.001)) "no overflow at attempt 10_000" 400.
    (Backoff.delay_ms p ~attempt:10_000);
  Alcotest.(check (float 0.001)) "negative attempts clamp to base" 50.
    (Backoff.delay_ms p ~attempt:(-3));
  (* bad policies are typed refusals, not NaN machines *)
  check_precondition "negative base" ~fn:"Backoff.make" (fun () ->
      Backoff.make ~base_ms:(-1.) ());
  check_precondition "shrinking multiplier" ~fn:"Backoff.make" (fun () ->
      Backoff.make ~multiplier:0.5 ());
  check_precondition "cap below base" ~fn:"Backoff.make" (fun () ->
      Backoff.make ~base_ms:100. ~max_ms:50. ())

let test_backoff_interruptible () =
  let p = Backoff.make ~base_ms:5_000. ~max_ms:5_000. () in
  (* a stop signal cuts a long sleep short at poll granularity *)
  let t0 = Unix.gettimeofday () in
  Backoff.sleep_interruptible p ~attempt:0 ~stop:(fun () -> true);
  check_bool "stop observed promptly" true (Unix.gettimeofday () -. t0 < 1.)

let suite =
  [
    Alcotest.test_case "error taxonomy" `Quick test_error_taxonomy;
    Alcotest.test_case "backoff policy" `Quick test_backoff_policy;
    Alcotest.test_case "backoff interruptible sleep" `Quick
      test_backoff_interruptible;
    Alcotest.test_case "cancel token" `Quick test_cancel_token;
    Alcotest.test_case "cache bounded" `Quick test_cache_bounded;
    Alcotest.test_case "cache recompute audit" `Quick
      test_cache_recompute_audit;
    Alcotest.test_case "cache cap identity" `Quick test_cache_cap_identity;
    Alcotest.test_case "parallel worker failure" `Quick
      test_parallel_worker_failure;
    Alcotest.test_case "parallel transient retry" `Quick
      test_parallel_transient_retry;
    Alcotest.test_case "parallel cancellation passthrough" `Quick
      test_parallel_cancellation_passthrough;
    Alcotest.test_case "parallel domains identity" `Quick
      test_parallel_domains_identity;
    Alcotest.test_case "typed preconditions" `Quick test_typed_preconditions;
    Alcotest.test_case "checkpoint/resume (is)" `Quick
      test_checkpoint_resume_is;
    Alcotest.test_case "checkpoint/resume (alg1)" `Slow
      test_checkpoint_resume_alg1;
    Alcotest.test_case "checkpoint mismatch" `Quick test_checkpoint_mismatch;
    Alcotest.test_case "cancellation flushes checkpoint" `Quick
      test_explore_cancellation_flushes;
    Alcotest.test_case "checkpoint/resume under the pool" `Slow
      test_checkpoint_resume_parallel;
    Alcotest.test_case "chaos storm" `Slow test_chaos;
    Alcotest.test_case "R_A cancellation" `Quick test_ra_cancellation;
  ]
