(* Tests for adversaries, hitting sets, setcon, agreement functions and
   fairness (Section 3 of the paper). *)

open Fact_topology
open Fact_adversary

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ps = Pset.of_list

(* ------------------------------------------------------------------ *)
(* Adversary construction and classes                                 *)
(* ------------------------------------------------------------------ *)

let test_constructors () =
  check "wait-free n=3 live sets" 7 (Adversary.cardinal (Adversary.wait_free 3));
  (* 1-resilient, n=3: all subsets of size >= 2. *)
  let a1res = Adversary.t_resilient ~n:3 ~t:1 in
  check "1-res live sets" 4 (Adversary.cardinal a1res);
  check_bool "contains pairs" true (Adversary.is_live (ps [ 0; 1 ]) a1res);
  check_bool "no singleton" false (Adversary.is_live (ps [ 0 ]) a1res);
  let kof = Adversary.k_obstruction_free ~n:3 ~k:1 in
  check "1-OF live sets" 3 (Adversary.cardinal kof)

let test_make_errors () =
  Alcotest.check_raises "empty live set"
    (Invalid_argument "Adversary.make: empty live set") (fun () ->
      ignore (Adversary.make ~n:3 [ Pset.empty ]));
  Alcotest.check_raises "outside universe"
    (Invalid_argument "Adversary.make: live set outside the universe")
    (fun () -> ignore (Adversary.make ~n:2 [ ps [ 0; 2 ] ]))

let test_classes () =
  let t_res = Adversary.t_resilient ~n:4 ~t:2 in
  check_bool "t-res superset-closed" true (Adversary.is_superset_closed t_res);
  check_bool "t-res symmetric" true (Adversary.is_symmetric t_res);
  let kof = Adversary.k_obstruction_free ~n:4 ~k:2 in
  check_bool "k-OF not superset-closed" false (Adversary.is_superset_closed kof);
  check_bool "k-OF symmetric" true (Adversary.is_symmetric kof);
  check_bool "fig5b superset-closed" true
    (Adversary.is_superset_closed Adversary.fig5b);
  check_bool "fig5b not symmetric" false (Adversary.is_symmetric Adversary.fig5b)

let test_superset_closure () =
  let a = Adversary.make ~n:3 [ ps [ 1 ]; ps [ 0; 2 ] ] in
  let c = Adversary.superset_closure a in
  (* supersets of {1}: {1},{0,1},{1,2},{0,1,2}; of {0,2}: {0,2},{0,1,2}
     — union has 5 distinct sets. *)
  check "closure size" 5 (Adversary.cardinal c);
  check_bool "closed" true (Adversary.is_superset_closed c);
  check_bool "equals fig5b" true (Adversary.equal c Adversary.fig5b)

let test_restrictions () =
  let a = Adversary.wait_free 3 in
  let r = Adversary.restrict a (ps [ 0; 1 ]) in
  check "restrict size" 3 (Adversary.cardinal r);
  let r2 = Adversary.restrict2 a ~p:(ps [ 0; 1 ]) ~q:(ps [ 1 ]) in
  check "restrict2 size" 2 (Adversary.cardinal r2);
  check_bool "restrict2 member" true (Adversary.is_live (ps [ 1 ]) r2);
  check_bool "restrict2 excludes" false (Adversary.is_live (ps [ 0 ]) r2)

(* ------------------------------------------------------------------ *)
(* Hitting sets                                                       *)
(* ------------------------------------------------------------------ *)

let test_hitting () =
  check "empty collection" 0 (Hitting.csize []);
  check "single" 1 (Hitting.csize [ ps [ 0; 1 ] ]);
  check "disjoint pair" 2 (Hitting.csize [ ps [ 0 ]; ps [ 1 ] ]);
  (* pairs of a triangle: one vertex hits two edges, need 2 *)
  check "triangle edges" 2
    (Hitting.csize [ ps [ 0; 1 ]; ps [ 0; 2 ]; ps [ 1; 2 ] ]);
  let h = Hitting.minimum_hitting_set [ ps [ 0; 1 ]; ps [ 1; 2 ] ] in
  check "hub hit" 1 (Pset.cardinal h);
  check_bool "valid" true
    (Hitting.is_hitting_set h [ ps [ 0; 1 ]; ps [ 1; 2 ] ])

let test_hitting_error () =
  match Hitting.csize [ Pset.empty ] with
  | _ -> Alcotest.fail "empty member: expected a Precondition Fact_error"
  | exception
      Fact_resilience.Fact_error.Error
        (Fact_resilience.Fact_error.Precondition { fn; _ }) ->
    Alcotest.(check string) "empty member" "Hitting.minimum_hitting_set" fn
  | exception e ->
    Alcotest.failf "empty member: unexpected exception %s"
      (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* setcon                                                             *)
(* ------------------------------------------------------------------ *)

let test_setcon_standard () =
  (* Wait-free n processes: setcon = n. *)
  check "wait-free n=3" 3 (Setcon.setcon (Adversary.wait_free 3));
  check "wait-free n=4" 4 (Setcon.setcon (Adversary.wait_free 4));
  (* t-resilient: setcon = t + 1. *)
  check "1-res n=3" 2 (Setcon.setcon (Adversary.t_resilient ~n:3 ~t:1));
  check "2-res n=4" 3 (Setcon.setcon (Adversary.t_resilient ~n:4 ~t:2));
  check "0-res n=4 (consensus)" 1 (Setcon.setcon (Adversary.t_resilient ~n:4 ~t:0));
  (* k-obstruction-free: setcon = k. *)
  check "1-OF n=3" 1 (Setcon.setcon (Adversary.k_obstruction_free ~n:3 ~k:1));
  check "2-OF n=4" 2 (Setcon.setcon (Adversary.k_obstruction_free ~n:4 ~k:2));
  check "empty adversary" 0 (Setcon.setcon (Adversary.make ~n:3 []))

let test_setcon_superset_closed_csize () =
  (* For superset-closed adversaries, setcon = csize (Gafni–Kuznetsov). *)
  List.iter
    (fun a ->
      check "setcon = csize" (Hitting.csize (Adversary.live_sets a))
        (Setcon.setcon a))
    [
      Adversary.t_resilient ~n:4 ~t:1;
      Adversary.t_resilient ~n:4 ~t:3;
      Adversary.fig5b;
      Adversary.superset_closure
        (Adversary.make ~n:4 [ ps [ 0 ]; ps [ 1; 2 ]; ps [ 2; 3 ] ]);
    ]

let test_setcon_symmetric_formula () =
  (* For symmetric adversaries, setcon = number of distinct live-set
     sizes. *)
  List.iter
    (fun a -> check "setcon = #sizes" (Setcon.symmetric_formula a) (Setcon.setcon a))
    [
      Adversary.wait_free 4;
      Adversary.t_resilient ~n:4 ~t:2;
      Adversary.k_obstruction_free ~n:4 ~k:3;
      Adversary.of_sizes ~n:4 [ 1; 3 ];
      Adversary.of_sizes ~n:5 [ 2; 4; 5 ];
    ]

let test_alpha_fig5b () =
  (* fig5b = {p1},{p0,p2} + supersets: hitting sets: {p1}∩{p0,p2}=∅ so
     csize = 2 → setcon = 2. Restricted: alpha({p1}) = 1,
     alpha({p0,p2}) = 1, alpha({p0}) = 0. *)
  let alpha = Setcon.alpha_fn Adversary.fig5b in
  check "alpha full" 2 (alpha (Pset.full 3));
  check "alpha {p1}" 1 (alpha (ps [ 1 ]));
  check "alpha {p0,p2}" 1 (alpha (ps [ 0; 2 ]));
  check "alpha {p0}" 0 (alpha (ps [ 0 ]));
  check "alpha {p0,p1}" 1 (alpha (ps [ 0; 1 ]));
  check "alpha empty" 0 (alpha Pset.empty)

(* ------------------------------------------------------------------ *)
(* Agreement functions                                                *)
(* ------------------------------------------------------------------ *)

let test_agreement_properties () =
  List.iter
    (fun a ->
      let f = Agreement.of_adversary a in
      check_bool "monotonic" true (Agreement.is_monotonic f);
      check_bool "bounded growth" true (Agreement.is_bounded_growth f);
      check_bool "regular" true (Agreement.is_regular f))
    [
      Adversary.wait_free 3;
      Adversary.t_resilient ~n:4 ~t:2;
      Adversary.k_obstruction_free ~n:4 ~k:2;
      Adversary.fig5b;
      Fairness.unfair_example;
    ]

let test_agreement_kof () =
  (* α of the k-OF adversary is min(|P|, k). *)
  List.iter
    (fun (nn, k) ->
      let from_adv =
        Agreement.of_adversary (Adversary.k_obstruction_free ~n:nn ~k)
      in
      let direct = Agreement.k_obstruction_free ~n:nn ~k in
      check_bool
        (Printf.sprintf "kOF alpha n=%d k=%d" nn k)
        true
        (Agreement.equal from_adv direct))
    [ (3, 1); (3, 2); (4, 2); (4, 3) ]

let test_max_faulty () =
  let f = Agreement.of_adversary (Adversary.t_resilient ~n:3 ~t:1) in
  Alcotest.(check (option int)) "full participation" (Some 1)
    (Agreement.max_faulty f (Pset.full 3));
  Alcotest.(check (option int)) "one participant" None
    (Agreement.max_faulty f (ps [ 0 ]))

(* ------------------------------------------------------------------ *)
(* Fairness                                                           *)
(* ------------------------------------------------------------------ *)

let test_fairness_classes () =
  (* Superset-closed and symmetric adversaries are fair (paper, §3). *)
  List.iter
    (fun (name, a) -> check_bool name true (Fairness.is_fair a))
    [
      ("wait-free", Adversary.wait_free 3);
      ("t-resilient", Adversary.t_resilient ~n:4 ~t:2);
      ("k-OF", Adversary.k_obstruction_free ~n:4 ~k:2);
      ("fig5b", Adversary.fig5b);
      ("sizes {1,3}", Adversary.of_sizes ~n:4 [ 1; 3 ]);
      ( "asymmetric superset-closed",
        Adversary.superset_closure
          (Adversary.make ~n:4 [ ps [ 0 ]; ps [ 1; 2; 3 ] ]) );
    ]

let test_unfair_example () =
  check_bool "unfair example is unfair" false
    (Fairness.is_fair Fairness.unfair_example);
  let vs = Fairness.violations Fairness.unfair_example in
  check_bool "violations nonempty" true (vs <> []);
  (* The documented violation: P = Π, Q = {p0,p1}. *)
  check_bool "documented violation present" true
    (List.exists
       (fun (p, q, got, expected) ->
         Pset.equal p (Pset.full 4) && Pset.equal q (ps [ 0; 1 ])
         && got = 1 && expected = 2)
       vs)

let test_dominance () =
  let alpha_of a = Agreement.of_adversary a in
  let wf = alpha_of (Adversary.wait_free 3) in
  let res1 = alpha_of (Adversary.t_resilient ~n:3 ~t:1) in
  let of1 = alpha_of (Adversary.k_obstruction_free ~n:3 ~k:1) in
  let of2 = alpha_of (Adversary.k_obstruction_free ~n:3 ~k:2) in
  (* wait-freedom dominates everything (largest alpha = weakest
     model: larger agreement power means worse agreement). *)
  List.iter
    (fun f -> check_bool "WF dominates" true (Agreement.dominates wf f))
    [ res1; of1; of2 ];
  (* 2-OF dominates 1-OF (pointwise min(|P|,k) grows with k)… *)
  check_bool "2-OF >= 1-OF" true (Agreement.dominates of2 of1);
  (* …but 1-OF and 1-resilience are incomparable: at a singleton
     α_{1-OF} = 1 > 0 = α_{1-res}, at full participation 1 < 2. *)
  check_bool "1-res !>= 1-OF" false (Agreement.dominates res1 of1);
  check_bool "1-OF !>= 1-res" false (Agreement.dominates of1 res1);
  (* 2-OF dominates 1-resilience pointwise but not conversely: at a
     singleton participation alpha is 1 vs 0. *)
  check_bool "2-OF >= 1-res" true (Agreement.dominates of2 res1);
  check_bool "1-res < 2-OF" false (Agreement.dominates res1 of2);
  check_bool "equivalent reflexive" true (Agreement.equivalent res1 res1);
  check_bool "not equivalent" false (Agreement.equivalent res1 of2)

let test_fair_computability_classes () =
  check "classes n=2" 5 (Census.fair_computability_classes ~n:2);
  check "classes n=3" 37 (Census.fair_computability_classes ~n:3)

(* ------------------------------------------------------------------ *)
(* Census (quantifying Figure 2)                                      *)
(* ------------------------------------------------------------------ *)

let test_census_n2 () =
  let c = Census.exhaustive ~n:2 in
  check "total" 7 c.Census.total;
  check "superset-closed" 4 c.Census.superset_closed;
  check "symmetric" 3 c.Census.symmetric;
  check "fair" 5 c.Census.fair;
  check "fair-only" 0 c.Census.fair_only;
  check "unfair" 2 c.Census.unfair;
  Alcotest.(check (list (pair int int))) "setcon histogram"
    [ (1, 6); (2, 1) ] c.Census.by_setcon

let test_census_n3 () =
  let c = Census.exhaustive ~n:3 in
  check "total" 127 c.Census.total;
  check "superset-closed" 18 c.Census.superset_closed;
  check "symmetric" 7 c.Census.symmetric;
  check "fair" 43 c.Census.fair;
  (* the region of Figure 2 beyond both earlier characterizations *)
  check "fair-only" 21 c.Census.fair_only;
  check "unfair" 84 c.Census.unfair;
  Alcotest.(check (list (pair int int))) "setcon histogram"
    [ (1, 63); (2, 63); (3, 1) ] c.Census.by_setcon

let test_census_invariants () =
  List.iter
    (fun c ->
      check_bool "fair >= fair_only" true (c.Census.fair >= c.Census.fair_only);
      check "fair + unfair = total" c.Census.total
        (c.Census.fair + c.Census.unfair);
      check "setcon histogram covers all" c.Census.total
        (List.fold_left (fun acc (_, n) -> acc + n) 0 c.Census.by_setcon))
    [ Census.exhaustive ~n:2; Census.exhaustive ~n:3;
      Census.sampled ~n:4 ~seed:7 ~samples:300 ]

(* A singleton-live-set adversary that is not superset-closed is
   unfair under the literal Definition 2: a disjoint coalition Q has
   setcon(A|P,Q) = 0 < min(|Q|, setcon(A|P)). *)
let test_singleton_adversary_unfair () =
  let a = Adversary.make ~n:2 [ ps [ 0 ] ] in
  check_bool "unfair" false (Fairness.is_fair a);
  check_bool "its closure is fair" true
    (Fairness.is_fair (Adversary.superset_closure a))

(* ------------------------------------------------------------------ *)
(* Property tests                                                     *)
(* ------------------------------------------------------------------ *)

let random_adversary n =
  (* Pick live sets from the nonempty subsets via a random mask over
     their indices. *)
  let all = Pset.nonempty_subsets (Pset.full n) in
  QCheck.map
    (fun bits ->
      let live =
        List.filteri (fun i _ -> (bits lsr i) land 1 = 1) all
      in
      Adversary.make ~n live)
    QCheck.(map abs int)

let prop_symmetric_fair =
  QCheck.Test.make ~name:"symmetric adversaries are fair" ~count:40
    (QCheck.map
       (fun bits ->
         let sizes = List.filter (fun k -> (bits lsr k) land 1 = 1) [ 1; 2; 3; 4 ] in
         Adversary.of_sizes ~n:4 sizes)
       QCheck.(map abs int))
    Fairness.is_fair

let prop_superset_closed_fair =
  QCheck.Test.make ~name:"superset-closed adversaries are fair" ~count:30
    (QCheck.map Adversary.superset_closure (random_adversary 4))
    Fairness.is_fair

let prop_superset_closed_setcon_csize =
  QCheck.Test.make ~name:"superset-closed: setcon = csize" ~count:30
    (QCheck.map Adversary.superset_closure (random_adversary 4))
    (fun a ->
      Adversary.is_empty a
      || Setcon.setcon a = Hitting.csize (Adversary.live_sets a))

let prop_alpha_regular =
  QCheck.Test.make ~name:"agreement functions are regular" ~count:40
    (random_adversary 4)
    (fun a -> Agreement.is_regular (Agreement.of_adversary a))

let prop_setcon_restrict_monotone =
  QCheck.Test.make ~name:"setcon monotone under restriction" ~count:40
    (QCheck.pair (random_adversary 4) QCheck.(map abs int))
    (fun (a, mask) ->
      let p = Pset.of_mask (mask land 15) in
      Setcon.alpha a p <= Setcon.setcon a)

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [
    ("constructors", `Quick, test_constructors);
    ("make errors", `Quick, test_make_errors);
    ("structural classes (Fig 2)", `Quick, test_classes);
    ("superset closure", `Quick, test_superset_closure);
    ("restrictions", `Quick, test_restrictions);
    ("hitting sets", `Quick, test_hitting);
    ("hitting errors", `Quick, test_hitting_error);
    ("setcon of standard adversaries", `Quick, test_setcon_standard);
    ("setcon = csize (superset-closed)", `Quick, test_setcon_superset_closed_csize);
    ("setcon symmetric formula", `Quick, test_setcon_symmetric_formula);
    ("alpha of fig5b", `Quick, test_alpha_fig5b);
    ("agreement function properties", `Quick, test_agreement_properties);
    ("agreement of k-OF", `Quick, test_agreement_kof);
    ("alpha-model max faulty", `Quick, test_max_faulty);
    ("fair classes", `Quick, test_fairness_classes);
    ("unfair example", `Quick, test_unfair_example);
    ("agreement dominance", `Quick, test_dominance);
    ("fair computability classes", `Quick, test_fair_computability_classes);
    ("census n=2", `Quick, test_census_n2);
    ("census n=3", `Quick, test_census_n3);
    ("census invariants", `Quick, test_census_invariants);
    ("singleton adversary unfair", `Quick, test_singleton_adversary_unfair);
    qt prop_symmetric_fair;
    qt prop_superset_closed_fair;
    qt prop_superset_closed_setcon_csize;
    qt prop_alpha_regular;
    qt prop_setcon_restrict_monotone;
  ]
