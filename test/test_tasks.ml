(* Tests for the task framework, k-set consensus, simplex agreement and
   the FACT solvability solver (Theorems 15/16). *)

open Fact_topology
open Fact_adversary
open Fact_affine
open Fact_tasks

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Task construction                                                  *)
(* ------------------------------------------------------------------ *)

let test_full_inputs () =
  let i = Task.full_inputs ~n:2 ~values:[ 0; 1 ] in
  check "facets" 4 (Complex.facet_count i);
  check "vertices" 4 (List.length (Complex.vertices i));
  let i3 = Task.full_inputs ~n:3 ~values:[ 0; 1; 2 ] in
  check "facets n=3" 27 (Complex.facet_count i3)

let test_fixed_inputs () =
  let i = Task.fixed_inputs [ 5; 7; 9 ] in
  check "one facet" 1 (Complex.facet_count i);
  let f = List.hd (Complex.facets i) in
  Alcotest.(check (list int)) "values" [ 5; 7; 9 ]
    (List.map Vertex.value (Simplex.vertices f))

let test_set_consensus_complexes () =
  let t = Set_consensus.task ~n:2 ~k:1 ~values:[ 0; 1 ] in
  (* Outputs: only the two monochromatic assignments. *)
  check "consensus outputs" 2 (Complex.facet_count t.Task.outputs);
  let t2 = Set_consensus.task ~n:3 ~k:2 ~values:[ 0; 1; 2 ] in
  (* 27 assignments minus the 6 rainbow ones. *)
  check "2-set outputs" 21 (Complex.facet_count t2.Task.outputs)

let test_set_consensus_delta_carrier () =
  let t = Set_consensus.task ~n:2 ~k:1 ~values:[ 0; 1 ] in
  check_bool "carrier map" true (Task.is_carrier_map t);
  let t2 = Set_consensus.task_fixed ~n:3 ~k:2 ~inputs:[ 0; 1; 2 ] in
  check_bool "carrier map (fixed)" true (Task.is_carrier_map t2)

let test_decisions_ok () =
  check_bool "valid" true
    (Set_consensus.decisions_ok ~k:2
       ~proposals:[ (0, 10); (1, 11); (2, 12) ]
       ~decisions:[ (0, 10); (1, 10); (2, 12) ]);
  check_bool "too many values" false
    (Set_consensus.decisions_ok ~k:1
       ~proposals:[ (0, 10); (1, 11) ]
       ~decisions:[ (0, 10); (1, 11) ]);
  check_bool "invalid value" false
    (Set_consensus.decisions_ok ~k:2
       ~proposals:[ (0, 10); (1, 11) ]
       ~decisions:[ (0, 99) ])

let test_simplex_agreement_task () =
  let l = Rkof.task ~n:3 ~k:1 in
  let t = Simplex_agreement.of_affine l in
  check "inputs = s" 1 (Complex.facet_count t.Task.inputs);
  check "outputs = L" 73 (Complex.facet_count t.Task.outputs);
  check_bool "member run respected" true
    (Simplex_agreement.carrier_respected l
       (List.hd (Complex.facets (Affine_task.complex l))))

(* ------------------------------------------------------------------ *)
(* Solver: classical ACT results on the wait-free (IIS) model         *)
(* ------------------------------------------------------------------ *)

let chr_protocol ~n ~ell inputs =
  Affine_task.apply (Affine_task.full_chr ~n ~ell) inputs

let test_consensus_unsolvable_wait_free_n2 () =
  (* FLP/ACT: consensus is not wait-free solvable — no simplicial map
     from Chr^ℓ(I), checked exhaustively for ℓ = 1, 2. *)
  let t = Set_consensus.task ~n:2 ~k:1 ~values:[ 0; 1 ] in
  List.iter
    (fun ell ->
      match
        Solver.solve ~protocol:(chr_protocol ~n:2 ~ell t.Task.inputs) ~task:t
      with
      | Solver.Unsolvable -> ()
      | Solver.Solvable _ ->
        Alcotest.failf "consensus solved wait-free at ell=%d!" ell)
    [ 1; 2 ]

let test_trivial_task_solvable () =
  (* 2-set consensus among 2 processes: decide your own value. *)
  let t = Set_consensus.task ~n:2 ~k:2 ~values:[ 0; 1; 2 ] in
  match
    Solver.solve ~protocol:(chr_protocol ~n:2 ~ell:1 t.Task.inputs) ~task:t
  with
  | Solver.Solvable m ->
    check_bool "certified" true
      (Solver.check_map
         ~protocol:(chr_protocol ~n:2 ~ell:1 t.Task.inputs)
         ~task:t m)
  | Solver.Unsolvable -> Alcotest.fail "trivial task unsolvable?"

let test_2set_unsolvable_wait_free_n3 () =
  (* Chaudhuri / Sperner: 2-set consensus is not wait-free solvable for
     3 processes (checked for one iteration, on the standard
     fixed-input restriction). *)
  let t = Set_consensus.task_fixed ~n:3 ~k:2 ~inputs:[ 0; 1; 2 ] in
  match
    Solver.solve ~protocol:(chr_protocol ~n:3 ~ell:1 t.Task.inputs) ~task:t
  with
  | Solver.Unsolvable -> ()
  | Solver.Solvable _ -> Alcotest.fail "2-set consensus solved wait-free!"

let test_3set_solvable_wait_free_n3 () =
  let t = Set_consensus.task_fixed ~n:3 ~k:3 ~inputs:[ 0; 1; 2 ] in
  let protocol = chr_protocol ~n:3 ~ell:1 t.Task.inputs in
  match Solver.solve ~protocol ~task:t with
  | Solver.Solvable m ->
    check_bool "certified" true (Solver.check_map ~protocol ~task:t m)
  | Solver.Unsolvable -> Alcotest.fail "n-set consensus unsolvable?"

(* ------------------------------------------------------------------ *)
(* Solver + R_A: the FACT equation on the adversary zoo               *)
(* ------------------------------------------------------------------ *)

let zoo =
  [
    ("1-OF", Adversary.k_obstruction_free ~n:3 ~k:1);
    ("2-OF", Adversary.k_obstruction_free ~n:3 ~k:2);
    ("1-res", Adversary.t_resilient ~n:3 ~t:1);
    ("2-res(WF)", Adversary.wait_free 3);
    ("fig5b", Adversary.fig5b);
  ]

let ra_protocol adv inputs =
  Affine_task.apply (Ra.of_adversary adv) inputs

let test_fact_impossibility () =
  (* k-set consensus with k < setcon(A) admits no map from one R_A
     iteration. The wait-free entry is excluded here: its R_A is all of
     Chr² s and the corresponding UNSAT instance is a genuine Sperner
     configuration, infeasible for CSP search (the same claim is
     checked at one IS round by the ACT tests above). *)
  List.iter
    (fun (name, adv) ->
      let power = Setcon.setcon adv in
      let t = Set_consensus.task_fixed ~n:3 ~k:(power - 1) ~inputs:[ 0; 1; 2 ] in
      if power > 1 && power < 3 then
        match Solver.solve ~protocol:(ra_protocol adv t.Task.inputs) ~task:t with
        | Solver.Unsolvable -> ()
        | Solver.Solvable _ ->
          Alcotest.failf "%s: %d-set consensus solved below power!" name
            (power - 1))
    zoo

let test_fact_possibility_via_mu () =
  (* k-set consensus with k = setcon(A) is solved by the explicit
     µ-map on one R_A iteration — certified by the solver's checker. *)
  List.iter
    (fun (name, adv) ->
      let power = Setcon.setcon adv in
      let alpha = Agreement.of_adversary adv in
      let t = Set_consensus.task_fixed ~n:3 ~k:power ~inputs:[ 0; 1; 2 ] in
      let protocol = ra_protocol adv t.Task.inputs in
      let m = Mu_map.set_consensus_map ~alpha ~protocol in
      check_bool (name ^ " µ-map certified") true
        (Solver.check_map ~protocol ~task:t m))
    zoo

let test_fact_possibility_via_search () =
  (* The solver also finds a map by itself for the 1-OF model
     (consensus from one iteration of R_{1-OF}). *)
  let adv = Adversary.k_obstruction_free ~n:3 ~k:1 in
  let t = Set_consensus.task_fixed ~n:3 ~k:1 ~inputs:[ 0; 1; 2 ] in
  let protocol = ra_protocol adv t.Task.inputs in
  match Solver.solve ~protocol ~task:t with
  | Solver.Solvable m ->
    check_bool "certified" true (Solver.check_map ~protocol ~task:t m)
  | Solver.Unsolvable -> Alcotest.fail "consensus unsolvable in R_1-OF"

let test_fact_full_inputs_consensus_1of () =
  (* Same statement on the full input complex (all 2^3 input vectors),
     not just a fixed one: µ still certifies. *)
  let adv = Adversary.k_obstruction_free ~n:3 ~k:1 in
  let alpha = Agreement.of_adversary adv in
  let t = Set_consensus.task ~n:3 ~k:1 ~values:[ 0; 1 ] in
  let protocol = ra_protocol adv t.Task.inputs in
  let m = Mu_map.set_consensus_map ~alpha ~protocol in
  check_bool "µ-map certified on full inputs" true
    (Solver.check_map ~protocol ~task:t m)

(* ------------------------------------------------------------------ *)
(* The µ_Q leader map: Properties 9/10/12 and Solver certification    *)
(* ------------------------------------------------------------------ *)

let test_mu_q_leader_properties () =
  (* Validity (the leader is a participating member of Q), agreement
     (at most α(carrier) leaders per simplex) and robustness
     (µ_Q = µ_{Q ∩ carrier}) — exhaustively over every facet of R_A
     and every nonempty Q, for both running examples. *)
  List.iter
    (fun (name, alpha) ->
      let ra = Ra.complex alpha ~n:3 in
      List.iter
        (fun f ->
          List.iter
            (fun q ->
              let theta = Simplex.restrict f q in
              if not (Simplex.is_empty theta) then begin
                check_bool (name ^ " agreement") true
                  (Pset.cardinal (Mu.leaders alpha ~q theta)
                  <= Agreement.eval alpha (Simplex.base_carrier theta));
                List.iter
                  (fun v ->
                    let l = Mu.leader alpha ~q v in
                    check_bool (name ^ " validity") true
                      (Pset.mem l q && Pset.mem l (Vertex.base_carrier v));
                    let q' = Pset.inter q (Vertex.base_carrier v) in
                    check_bool (name ^ " robustness") true
                      (Mu.leader alpha ~q:q' v = l))
                  (Simplex.vertices theta)
              end)
            (Pset.nonempty_subsets (Pset.full 3)))
        (Complex.facets ra))
    [
      ("1-OF", Agreement.k_obstruction_free ~n:3 ~k:1);
      ("fig5b", Agreement.of_adversary Adversary.fig5b);
    ]

let test_mu_decided_value () =
  (* decided_value recovers the leader's input from the vertex view:
     on R_A(1-res) over inputs 20/21/22, every vertex decides
     20 + leader. *)
  let alpha = Agreement.of_adversary (Adversary.t_resilient ~n:3 ~t:1) in
  let protocol =
    Affine_task.apply (Ra.task alpha ~n:3)
      (Task.fixed_inputs [ 20; 21; 22 ])
  in
  List.iter
    (fun v ->
      let leader = Mu.leader alpha ~q:(Pset.full 3) v in
      check "decided = leader input" (20 + leader)
        (Mu_map.decided_value v ~leader))
    (Complex.vertices protocol)

let test_mu_map_corrupt_rejected () =
  (* check_map is a real certifier: corrupting a certified µ-map (swap
     the outputs of two differently-colored vertices, breaking
     chromaticity) must be rejected. *)
  let adv = Adversary.k_obstruction_free ~n:3 ~k:1 in
  let alpha = Agreement.of_adversary adv in
  let t = Set_consensus.task_fixed ~n:3 ~k:1 ~inputs:[ 0; 1; 2 ] in
  let protocol = ra_protocol adv t.Task.inputs in
  let m = Mu_map.set_consensus_map ~alpha ~protocol in
  check_bool "uncorrupted is certified" true
    (Solver.check_map ~protocol ~task:t m);
  let corrupt =
    match m with
    | (v1, o1) :: (v2, o2) :: rest -> (v1, o2) :: (v2, o1) :: rest
    | _ -> Alcotest.fail "map too small"
  in
  check_bool "corrupted is rejected" false
    (Solver.check_map ~protocol ~task:t corrupt)

(* ------------------------------------------------------------------ *)
(* Simplex agreement, n = 3, end to end through the solver            *)
(* ------------------------------------------------------------------ *)

let test_simplex_agreement_solver_wait_free_n3 () =
  (* Simplex agreement on Chr s is solvable by deciding one's own
     vertex; the solver finds and certifies a map. *)
  let l = Affine_task.full_chr ~n:3 ~ell:1 in
  let t = Simplex_agreement.of_affine l in
  let protocol = Affine_task.apply l t.Task.inputs in
  match Solver.solve ~protocol ~task:t with
  | Solver.Solvable m ->
    check_bool "certified" true (Solver.check_map ~protocol ~task:t m)
  | Solver.Unsolvable -> Alcotest.fail "simplex agreement unsolvable?"

let test_simplex_agreement_solver_1of_n3 () =
  (* Simplex agreement on R_1-OF (outputs restricted to the affine
     task of 1-obstruction-freedom): still solvable from one R_1-OF
     iteration, and every solution simplex respects carriers. *)
  let l = Rkof.task ~n:3 ~k:1 in
  let t = Simplex_agreement.of_affine l in
  let protocol = Affine_task.apply l t.Task.inputs in
  match Solver.solve ~protocol ~task:t with
  | Solver.Solvable m ->
    check_bool "certified" true (Solver.check_map ~protocol ~task:t m);
    List.iter
      (fun f ->
        let image =
          Simplex.make
            (List.sort_uniq Vertex.compare
               (List.map (fun v -> List.assoc v m) (Simplex.vertices f)))
        in
        check_bool "carrier respected" true
          (Simplex_agreement.carrier_respected l image))
      (Complex.facets protocol)
  | Solver.Unsolvable -> Alcotest.fail "simplex agreement unsolvable in R_1-OF"

let test_approximate_agreement_staircase () =
  (* One Chr round trisects the interval (n = 2), so the minimal depth
     for a map is ⌈log₃ range⌉. *)
  List.iter
    (fun (range, expected) ->
      Alcotest.(check (option int))
        (Printf.sprintf "range %d" range)
        (Some expected)
        (Approximate_agreement.minimal_rounds ~n:2 ~range ~max_rounds:3))
    [ (1, 1); (2, 1); (3, 1); (4, 2); (9, 2); (10, 3) ]

let test_approximate_agreement_task_shape () =
  let t = Approximate_agreement.task ~n:2 ~range:3 in
  check_bool "carrier map" true (Task.is_carrier_map t);
  check "input facets" 4 (Complex.facet_count t.Task.inputs);
  (* output facets: assignments within a window {m, m+1}: windows
     {0,1},{1,2},{2,3} give 4 assignments each, minus the 2 shared
     monochromatic ones per overlap = 3*4 − 2 = 10. *)
  check "output facets" 10 (Complex.facet_count t.Task.outputs)

let test_solvable_by_iteration () =
  (* The iteration search finds ℓ = 1 for a solvable task and None for
     an unsolvable one within the bound. *)
  let t = Set_consensus.task_fixed ~n:2 ~k:2 ~inputs:[ 0; 1 ] in
  Alcotest.(check (option int)) "trivial at 1" (Some 1)
    (Solver.solvable_by_iteration
       ~task_of_round:(fun r -> chr_protocol ~n:2 ~ell:r t.Task.inputs)
       ~task:t ~max_rounds:2);
  let c = Set_consensus.task_fixed ~n:2 ~k:1 ~inputs:[ 0; 1 ] in
  Alcotest.(check (option int)) "consensus never" None
    (Solver.solvable_by_iteration
       ~task_of_round:(fun r -> chr_protocol ~n:2 ~ell:r c.Task.inputs)
       ~task:c ~max_rounds:2)

let suite =
  [
    ("full input complex", `Quick, test_full_inputs);
    ("fixed input complex", `Quick, test_fixed_inputs);
    ("set consensus complexes", `Quick, test_set_consensus_complexes);
    ("delta is a carrier map", `Quick, test_set_consensus_delta_carrier);
    ("operational decision check", `Quick, test_decisions_ok);
    ("simplex agreement task", `Quick, test_simplex_agreement_task);
    ("ACT: consensus unsolvable wait-free (n=2)", `Quick,
     test_consensus_unsolvable_wait_free_n2);
    ("trivial task solvable", `Quick, test_trivial_task_solvable);
    ("ACT: 2-set consensus unsolvable wait-free (n=3)", `Quick,
     test_2set_unsolvable_wait_free_n3);
    ("ACT: 3-set consensus solvable (n=3)", `Quick,
     test_3set_solvable_wait_free_n3);
    ("FACT impossibility below setcon", `Slow, test_fact_impossibility);
    ("FACT possibility via µ-map", `Slow, test_fact_possibility_via_mu);
    ("FACT possibility via search (1-OF)", `Quick,
     test_fact_possibility_via_search);
    ("FACT µ-map on full inputs (1-OF)", `Slow,
     test_fact_full_inputs_consensus_1of);
    ("iteration search", `Quick, test_solvable_by_iteration);
    ("µ_Q leader: validity/agreement/robustness", `Slow,
     test_mu_q_leader_properties);
    ("µ decided_value recovers leader input", `Quick, test_mu_decided_value);
    ("µ-map corruption rejected", `Quick, test_mu_map_corrupt_rejected);
    ("simplex agreement via solver (wait-free n=3)", `Quick,
     test_simplex_agreement_solver_wait_free_n3);
    ("simplex agreement via solver (1-OF n=3)", `Slow,
     test_simplex_agreement_solver_1of_n3);
    ("approximate agreement: depth staircase", `Slow,
     test_approximate_agreement_staircase);
    ("approximate agreement: task shape", `Quick,
     test_approximate_agreement_task_shape);
  ]
