(* The declarative assertion DSL: oracle ports (bit-identical
   fingerprints), mutation-tested assertions, frame-rule soundness
   against Op commutativity, serialization round-trips, shrinking, and
   checkpoint resume under assertions. *)

open Fact_topology
open Fact_adversary
open Fact_runtime
open Fact_check

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Ported oracles keep the historical exploration counts, at any      *)
(* domain count.                                                      *)
(* ------------------------------------------------------------------ *)

let test_fingerprint_is () =
  List.iter
    (fun domains ->
      let name = Printf.sprintf "is n=3 domains=%d" domains in
      let stats, parts = Harness.explore_immediate_snapshot ~domains ~n:3 () in
      check (name ^ " runs") 1522 stats.Explore.runs;
      check (name ^ " pruned") 1338 stats.Explore.pruned;
      check (name ^ " truncated") 0 stats.Explore.truncated;
      check (name ^ " violations") 0 (List.length stats.Explore.violations);
      check (name ^ " partitions") 13 (List.length parts);
      check_bool (name ^ " exhausted") true stats.Explore.exhausted)
    [ 1; 2; 4 ]

let test_fingerprint_alg1 () =
  let alpha = Agreement.of_adversary (Adversary.wait_free 2) in
  List.iter
    (fun domains ->
      let name = Printf.sprintf "alg1 wf n=2 domains=%d" domains in
      let stats =
        Harness.explore_algorithm1 ~domains ~alpha ~participants:(Pset.full 2)
          ()
      in
      check (name ^ " runs") 4825 stats.Explore.runs;
      check (name ^ " pruned") 14762 stats.Explore.pruned;
      check (name ^ " crash patterns") 3 stats.Explore.crash_patterns;
      check (name ^ " violations") 0 (List.length stats.Explore.violations);
      check_bool (name ^ " exhausted") true stats.Explore.exhausted)
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Mutation tests: every seeded mutant is caught by its assertion,    *)
(* and the shrunk counterexample replays standalone, including after  *)
(* a serialization round-trip of the trace.                           *)
(* ------------------------------------------------------------------ *)

let test_mutants_caught () =
  List.iter
    (fun (spec : Mutant.spec) ->
      let name = spec.Mutant.m_protocol ^ "/" ^ spec.m_name in
      match Mutant.hunt spec with
      | Error msg -> Alcotest.failf "%s: %s" name msg
      | Ok c ->
        check_bool (name ^ " caught by " ^ spec.m_caught_by) true
          (String.length c.Mutant.c_message
           >= String.length spec.m_caught_by
          && String.sub c.c_message 0 (String.length spec.m_caught_by)
             = spec.m_caught_by);
        check_bool (name ^ " non-empty counterexample") true
          (Trace.length c.c_trace > 0);
        (* the trace survives a textual round-trip and still convicts
           a fresh instance of the mutant *)
        let s = Trace.to_string c.c_trace in
        (match Trace.of_string s with
        | Error e -> Alcotest.failf "%s: trace parse: %s" name e
        | Ok tr ->
          check_str (name ^ " trace round-trip") s (Trace.to_string tr);
          (match Mutant.check_trace spec ~truncated:c.c_truncated tr with
          | Error _ -> ()
          | Ok () ->
            Alcotest.failf "%s: round-tripped trace no longer fails" name)))
    Mutant.all

let test_intact_protocols_pass () =
  (* The same suites on the unmutated protocols find nothing: the
     mutants are caught for being broken, not for being explored. *)
  let stats = Harness.explore_snapmin ~n:3 () in
  check "wsmin n=3 violations" 0 (List.length stats.Explore.violations);
  check_bool "wsmin n=3 exhausted" true stats.Explore.exhausted;
  let stats =
    Harness.explore_snapmin ~n:2 ~assertion:(Assertion.Agreement 1) ()
  in
  check_bool "wsmin does not solve consensus" true
    (List.length stats.Explore.violations > 0)

(* ------------------------------------------------------------------ *)
(* Frame rule vs Op commutativity (property-based)                    *)
(* ------------------------------------------------------------------ *)

(* Two shared objects: processes 0 and 1 write-then-snapshot object
   "a"; process 2 writes object "b". The assertion's footprint is
   {0, 1}, so process 2's steps are outside it and commute (distinct
   objects) with every footprint step. *)
let framed_subject =
  let assertion =
    Assertion.All
      [
        Assertion.Frame (Pset.of_list [ 0; 1 ], [ "a" ]);
        Assertion.Eventually
          (Assertion.Touches (Pset.of_list [ 0; 1 ], [ "a" ]));
      ]
  in
  Assertion.subject ~participants:(Pset.full 3)
    ~make:(fun () ->
      let a = Memory.create 3 in
      let b = Memory.create 3 in
      let procs =
        [|
          (fun pid -> Memory.update a ~pid pid; Array.length (Memory.snapshot a));
          (fun pid -> Memory.update a ~pid pid; Array.length (Memory.snapshot a));
          (fun pid -> Memory.update b ~pid pid; 0);
        |]
      in
      ( procs,
        Assertion.env
          ~objects:[ ("a", Memory.id a); ("b", Memory.id b) ]
          () ))
    assertion

(* Per-process step counts: start + update + snapshot for 0 and 1,
   start + update for 2. *)
let framed_steps = [| 3; 3; 2 |]

let interleavings_gen counts =
  (* a random shuffle of the fixed per-process step multiset, as a
     decision list *)
  QCheck.Gen.map
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let pool =
        Array.to_list counts
        |> List.mapi (fun pid k -> List.init k (fun _ -> pid))
        |> List.concat |> Array.of_list
      in
      let len = Array.length pool in
      for i = len - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let t = pool.(i) in
        pool.(i) <- pool.(j);
        pool.(j) <- t
      done;
      Array.to_list pool |> List.map (fun p -> Trace.Step p))
    QCheck.Gen.(0 -- max_int)

let verdict_of ~subject tr = Result.is_ok (Replay.check ~subject tr)

let prop_frame_rule_swaps =
  (* Swapping adjacent decisions where at least one process is outside
     the assertion's footprint (and the steps are independent — here
     structurally, distinct objects) never flips the verdict. *)
  let n = 3 in
  let footprint =
    match
      Assertion.footprint
        (Assertion.All
           [
             Assertion.Frame (Pset.of_list [ 0; 1 ], [ "a" ]);
             Assertion.Eventually
               (Assertion.Touches (Pset.of_list [ 0; 1 ], [ "a" ]));
           ])
    with
    | Some f -> f
    | None -> Alcotest.fail "frame assertion should have a footprint"
  in
  QCheck.Test.make ~name:"frame rule: out-of-footprint swaps keep verdicts"
    ~count:60
    (QCheck.make (interleavings_gen framed_steps))
    (fun decisions ->
      let tr = Trace.make ~n ~participants:(Pset.full n) decisions in
      let v0 = verdict_of ~subject:framed_subject tr in
      let arr = Array.of_list decisions in
      let ok = ref true in
      for i = 0 to Array.length arr - 2 do
        let pid = function Trace.Step p | Trace.Crash p -> p in
        let p, q = (pid arr.(i), pid arr.(i + 1)) in
        if p <> q && (not (Pset.mem p footprint) || not (Pset.mem q footprint))
        then begin
          let swapped = Array.copy arr in
          swapped.(i) <- arr.(i + 1);
          swapped.(i + 1) <- arr.(i);
          let tr' =
            Trace.make ~n ~participants:(Pset.full n)
              (Array.to_list swapped)
          in
          if verdict_of ~subject:framed_subject tr' <> v0 then ok := false
        end
      done;
      !ok)

let prop_commuting_swaps_wsmin =
  (* The report-level schemas on wsmin: swapping adjacent decisions
     whose observed pending operations commute (per Op.commute, the
     sleep-set relation) is Mazurkiewicz-equivalent, so the verdict of
     [Agreement 1] is unchanged — even though its footprint is empty
     and its verdict genuinely varies across interleavings. *)
  let n = 2 in
  let subject () =
    Harness.wsmin_subject ~n ~assertion:(Assertion.Agreement 1) () ()
  in
  let observed_ops tr =
    (* instrument a replay to learn each decision's pending operation *)
    let ops = ref [] in
    let s = subject () in
    let recording =
      {
        s with
        Subject.on_step =
          Some
            (fun ~pid op ->
              ops := (pid, op) :: !ops;
              match s.Subject.on_step with
              | Some f -> f ~pid op
              | None -> ());
      }
    in
    ignore (Replay.run_subject ~subject:recording tr);
    Array.of_list (List.rev !ops)
  in
  QCheck.Test.make ~name:"commuting swaps keep Agreement verdicts" ~count:60
    (QCheck.make (interleavings_gen [| 3; 3 |]))
    (fun decisions ->
      let tr = Trace.make ~n ~participants:(Pset.full n) decisions in
      let v0 = verdict_of ~subject tr in
      let ops = observed_ops tr in
      let arr = Array.of_list decisions in
      let ok = ref true in
      for i = 0 to min (Array.length arr) (Array.length ops) - 2 do
        let pid = function Trace.Step p | Trace.Crash p -> p in
        let p, q = (pid arr.(i), pid arr.(i + 1)) in
        if p <> q && Op.commute (snd ops.(i)) (snd ops.(i + 1)) then begin
          let swapped = Array.copy arr in
          swapped.(i) <- arr.(i + 1);
          swapped.(i + 1) <- arr.(i);
          let tr' =
            Trace.make ~n ~participants:(Pset.full n)
              (Array.to_list swapped)
          in
          if verdict_of ~subject tr' <> v0 then ok := false
        end
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Serialization round-trip (property-based)                          *)
(* ------------------------------------------------------------------ *)

let pset_gen n =
  QCheck.Gen.map
    (fun bits ->
      Pset.of_list
        (List.filter (fun i -> (bits lsr i) land 1 = 1) (List.init n Fun.id)))
    (QCheck.Gen.int_bound ((1 lsl n) - 1))

let objs_gen =
  QCheck.Gen.map
    (fun bits ->
      List.filteri
        (fun i _ -> (bits lsr i) land 1 = 1)
        [ "a"; "mem"; "reg-is1" ])
    (QCheck.Gen.int_bound 7)

let atom_gen =
  let open QCheck.Gen in
  let ps = pset_gen 4 in
  oneof
    [
      map (fun p -> Assertion.Steps p) ps;
      map (fun p -> Assertion.Crashes p) ps;
      map (fun p -> Assertion.Decides p) ps;
      map2 (fun p o -> Assertion.Touches (p, o)) ps objs_gen;
    ]

let assertion_gen =
  let open QCheck.Gen in
  let ps = pset_gen 4 in
  let leaf =
    oneof
      [
        map (fun b -> Assertion.Const b) bool;
        map (fun a -> Assertion.Always a) atom_gen;
        map (fun a -> Assertion.Eventually a) atom_gen;
        map2 (fun a b -> Assertion.Before (a, b)) atom_gen atom_gen;
        (* [Some Pset.empty] prints as the bare [(eventually-decides)],
           i.e. normalizes to [None] on parse — generate the normal
           form only *)
        map
          (fun p ->
            if Pset.is_empty p then Assertion.Eventually_decides None
            else Assertion.Eventually_decides (Some p))
          ps;
        map2 (fun p o -> Assertion.Frame (p, o)) ps objs_gen;
        map (fun k -> Assertion.Agreement k) (1 -- 4);
        return Assertion.Validity;
        map
          (fun i -> Assertion.Named (List.nth [ "is-valid-views"; "in-ra" ] i))
          (0 -- 1);
      ]
  in
  sized_size (0 -- 4)
    (fix (fun self n ->
         if n = 0 then leaf
         else
           oneof
             [
               leaf;
               map (fun t -> Assertion.Not t) (self (n - 1));
               map (fun l -> Assertion.All l) (list_size (0 -- 3) (self (n / 2)));
               map (fun l -> Assertion.Any l) (list_size (0 -- 3) (self (n / 2)));
               map2
                 (fun a b -> Assertion.Implies (a, b))
                 (self (n / 2)) (self (n / 2));
             ]))

let prop_sexp_roundtrip =
  QCheck.Test.make ~name:"assertion sexp round-trip" ~count:300
    (QCheck.make ~print:Assertion.to_string assertion_gen)
    (fun t ->
      match Assertion.of_string (Assertion.to_string t) with
      | Ok t' -> t' = t && Assertion.to_string t' = Assertion.to_string t
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Shrinking of violating traces                                      *)
(* ------------------------------------------------------------------ *)

let test_shrink_wsmin_violation () =
  let subject () =
    Harness.wsmin_subject ~n:2 ~assertion:(Assertion.Agreement 1) () ()
  in
  let stats =
    Harness.explore_snapmin ~n:2 ~assertion:(Assertion.Agreement 1)
      ~stop_on_violation:true ()
  in
  let ce =
    match stats.Explore.violations with
    | v :: _ -> v.Explore.trace
    | [] -> Alcotest.fail "no agreement-1 counterexample"
  in
  (* pad with no-op decisions: still fails, and shrinking strictly
     reduces while preserving the failure *)
  let padded =
    Trace.make ~n:2 ~participants:(Pset.full 2)
      (Trace.decisions ce
      @ [ Trace.Step 0; Trace.Step 1; Trace.Step 0; Trace.Step 1 ])
  in
  check_bool "padded still fails" true
    (Result.is_error (Replay.check ~subject padded));
  let shrunk = Minimize.shrink_subject ~subject padded in
  check_bool "shrunk still fails" true
    (Result.is_error (Replay.check ~subject shrunk));
  check_bool "strictly shorter" true
    (Trace.length shrunk < Trace.length padded);
  check_bool "not shrunk to nothing" true (Trace.length shrunk > 0);
  check_bool "context switches not increased" true
    (Minimize.context_switches shrunk <= Minimize.context_switches padded)

let test_shrink_never_fakes_liveness () =
  (* Regression: a shrinking candidate that cuts a run short leaves
     processes running; such partial replays must evaluate liveness
     vacuously, or every safety counterexample would "shrink" to the
     empty trace via a fake eventually-decides violation. *)
  let subject () = Harness.wsmin_subject ~n:2 () () in
  let empty = Trace.make ~n:2 ~participants:(Pset.full 2) [] in
  check_bool "empty trace passes the full suite" true
    (Result.is_ok (Replay.check ~subject empty));
  let partial =
    Trace.make ~n:2 ~participants:(Pset.full 2) [ Trace.Step 0 ]
  in
  check_bool "partial trace passes the full suite" true
    (Result.is_ok (Replay.check ~subject partial))

(* ------------------------------------------------------------------ *)
(* Checkpoint resume under assertions: forced-frontier re-evaluation  *)
(* ------------------------------------------------------------------ *)

let test_resume_mid_violation () =
  let assertion = Assertion.Agreement 1 in
  let base = Harness.explore_snapmin ~n:3 ~assertion () in
  check_bool "baseline exhaustive" true base.Explore.exhausted;
  check_bool "baseline violations" true
    (List.length base.Explore.violations > 0);
  (* interrupt after the first violations are on record *)
  let last = ref None in
  let interrupted =
    Harness.explore_snapmin ~n:3 ~assertion ~max_runs:25 ~checkpoint_every:1
      ~on_checkpoint:(fun ck -> last := Some ck)
      ()
  in
  check_bool "interrupted" false interrupted.Explore.exhausted;
  check_bool "interrupted mid-violation" true
    (List.length interrupted.Explore.violations > 0);
  let ck = Option.get !last in
  (* the snapshot round-trips through the textual format, violations
     included *)
  let ck =
    match Checkpoint.of_string (Checkpoint.to_string ck) with
    | Ok ck' ->
      check_str "checkpoint round-trip" (Checkpoint.to_string ck)
        (Checkpoint.to_string ck');
      ck'
    | Error e -> Alcotest.failf "checkpoint parse: %s" e
  in
  (* resuming under the same assertion reaches the uninterrupted
     stats, with the same violating runs in the same order *)
  let resumed = Harness.explore_snapmin ~n:3 ~assertion ~resume:ck () in
  check "resumed runs" base.Explore.runs resumed.Explore.runs;
  check "resumed pruned" base.Explore.pruned resumed.Explore.pruned;
  check "resumed violations"
    (List.length base.Explore.violations)
    (List.length resumed.Explore.violations);
  check_bool "resumed exhausted" true resumed.Explore.exhausted;
  check_bool "same violating traces" true
    (List.for_all2
       (fun (a : _ Explore.outcome) (b : _ Explore.outcome) ->
         Trace.decisions a.Explore.trace = Trace.decisions b.Explore.trace)
       base.Explore.violations resumed.Explore.violations);
  (* resuming under the default (satisfiable) suite re-evaluates the
     recorded violations along the forced replay instead of trusting
     the snapshot verdicts: they are dropped, not inherited *)
  let relaxed = Harness.explore_snapmin ~n:3 ~resume:ck () in
  check "relaxed resume drops recorded violations" 0
    (List.length relaxed.Explore.violations);
  check "relaxed resume still covers the space" base.Explore.runs
    relaxed.Explore.runs

(* ------------------------------------------------------------------ *)

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "IS fingerprint across domains" `Slow
      test_fingerprint_is;
    Alcotest.test_case "alg1 fingerprint across domains" `Slow
      test_fingerprint_alg1;
    Alcotest.test_case "all mutants caught" `Slow test_mutants_caught;
    Alcotest.test_case "intact protocols pass" `Quick
      test_intact_protocols_pass;
    qt prop_frame_rule_swaps;
    qt prop_commuting_swaps_wsmin;
    qt prop_sexp_roundtrip;
    Alcotest.test_case "shrinking violations" `Quick
      test_shrink_wsmin_violation;
    Alcotest.test_case "shrinking never fakes liveness" `Quick
      test_shrink_never_fakes_liveness;
    Alcotest.test_case "resume mid-violation" `Quick test_resume_mid_violation;
  ]
