(* fact — command-line interface to the FACT library.

   Subcommands:
     analyze   classify an adversary, print its agreement function
     affine    build the affine task R_A and print statistics
     run       execute Algorithm 1 under a random alpha-model schedule
     solve     decide k-set-consensus solvability from R_A iterations
     chr       print statistics of Chr^m s
     explore   model-check a protocol over all interleavings (lib/check)
     assert    list built-in trace assertions and seeded mutants
     chaos     inject faults into the resilience layer and audit it
     census    classify every adversary over n processes
     serve     long-lived query server (dedup, batching, warm store)
     client    query a running server (with optional retry/backoff)
     cluster   supervised sharded+replicated worker cluster front tier
     loadgen   concurrent query burst against a server or cluster
     ra        one-shot evaluation of the ra serve endpoint
     campaign  run a declarative grid sweep (content-addressed results)
     report    aggregate a results directory; CI regression gate
     bench     run single timed bench entries (--filter)

   Adversaries are given either by a preset name
   (wait-free | t-res:T | k-of:K | fig5b) or as explicit live sets,
   e.g. --live 0,1 --live 2.

   Exit codes (see DESIGN.md, "Failure model and resource bounds"):
     0  success
     1  property violation / counterexample found / chaos invariant broken
     2  precondition or usage error
     3  deadline exceeded (--timeout)
     4  cancelled
     5  worker failure (parallel fan-out)
     6  resource limit *)

open Cmdliner
open Fact_core.Fact

let pf = Format.printf

(* ------------------------- error rendering ------------------------ *)

(* Every subcommand body runs under this wrapper: typed [Fact_error]s
   map to their documented exit codes, stray [Failure]/
   [Invalid_argument] render as usage errors (exit 2). [--timeout]
   installs an ambient cooperative deadline for the whole body. *)
let guarded timeout f =
  let body () =
    match timeout with
    | None -> f ()
    | Some s -> Cancel.with_token (Cancel.create ~deadline_s:s ()) f
  in
  match body () with
  | () -> ()
  | exception Fact_error.Error err ->
    prerr_endline ("fact: " ^ Fact_error.to_string err);
    exit (Fact_error.exit_code err)
  | exception (Failure msg | Invalid_argument msg) ->
    prerr_endline ("fact: " ^ msg);
    exit 2

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECS"
        ~doc:
          "Cooperative deadline for the whole command: long-running \
           pipelines poll an ambient token and abort with exit code 3 \
           once SECS seconds elapsed.")

(* ----------------------------- adversary argument ----------------- *)

let parse_live s =
  try
    Ok
      (Pset.of_list
         (List.map int_of_string
            (String.split_on_char ',' (String.trim s))))
  with Failure _ -> Error (`Msg (Printf.sprintf "bad live set %S" s))

let live_conv = Arg.conv (parse_live, fun ppf p -> Pset.pp ppf p)

let adversary_of ~n ~preset ~live_sets =
  match (preset, live_sets) with
  | Some p, [] ->
    (match String.split_on_char ':' p with
    | [ "wait-free" ] -> Adversary.wait_free n
    | [ "fig5b" ] -> Adversary.fig5b
    | [ "t-res"; t ] -> Adversary.t_resilient ~n ~t:(int_of_string t)
    | [ "k-of"; k ] -> Adversary.k_obstruction_free ~n ~k:(int_of_string k)
    | _ -> failwith (Printf.sprintf "unknown preset %S" p))
  | None, (_ :: _ as ls) -> Adversary.make ~n ls
  | Some _, _ :: _ -> failwith "give either --preset or --live, not both"
  | None, [] -> failwith "give an adversary: --preset or --live"

let n_arg =
  Arg.(value & opt int 3 & info [ "n" ] ~doc:"Number of processes.")

let preset_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "preset" ] ~docv:"NAME"
        ~doc:"Adversary preset: wait-free | t-res:T | k-of:K | fig5b.")

let live_arg =
  Arg.(
    value & opt_all live_conv []
    & info [ "live" ] ~docv:"P,Q,..."
        ~doc:"A live set, as comma-separated process ids (repeatable).")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let with_adversary f n preset live_sets =
  f n (adversary_of ~n ~preset ~live_sets)

(* ----------------------------- analyze ---------------------------- *)

let analyze n adv =
  pf "adversary: %a@." Adversary.pp adv;
  let c = classify adv in
  pf "superset-closed: %b@.symmetric: %b@.fair: %b@." c.superset_closed
    c.symmetric c.fair;
  pf "agreement power (setcon): %d@." c.agreement_power;
  pf "minimal hitting set size (csize): %d@."
    (Hitting.csize (Adversary.live_sets adv));
  let alpha = Agreement.of_adversary adv in
  pf "agreement function:@.";
  List.iter
    (fun p -> pf "  alpha(%a) = %d@." Pset.pp p (Agreement.eval alpha p))
    (Pset.nonempty_subsets (Pset.full n));
  if not c.fair then begin
    pf "fairness violations:@.";
    List.iter
      (fun (p, q, got, expected) ->
        pf "  P=%a Q=%a setcon(A|P,Q)=%d expected %d@." Pset.pp p Pset.pp q
          got expected)
      (Fairness.violations adv)
  end

let analyze_cmd =
  Cmd.v (Cmd.info "analyze" ~doc:"Classify an adversary (Figure 2).")
    Term.(
      const (fun timeout n preset live ->
          guarded timeout (fun () -> with_adversary analyze n preset live))
      $ timeout_arg $ n_arg $ preset_arg $ live_arg)

(* ----------------------------- affine ----------------------------- *)

let affine n adv =
  ignore n;
  let task = affine_task_of_adversary adv in
  pf "R_A: %a@." Affine_task.pp_stats task;
  let c = Affine_task.complex task in
  pf "simplices: %d  euler characteristic: %d@." (Complex.simplex_count c)
    (Complex.euler_characteristic c);
  pf "volume fraction of |Chr^2 s|: %.4f@." (Geometry.total_volume c);
  pf "link-connected: %b@." (Link.is_link_connected c);
  List.iter
    (fun p ->
      let d = Affine_task.delta task p in
      pf "  delta(%a): %d facets@." Pset.pp p (Complex.facet_count d))
    (Pset.nonempty_subsets (Pset.full (Adversary.n adv)))

let affine_cmd =
  Cmd.v
    (Cmd.info "affine" ~doc:"Build the affine task R_A (Definition 9).")
    Term.(
      const (fun timeout n preset live ->
          guarded timeout (fun () -> with_adversary affine n preset live))
      $ timeout_arg $ n_arg $ preset_arg $ live_arg)

(* ----------------------------- run -------------------------------- *)

let run_alg1 seed n adv =
  let alpha = Agreement.of_adversary adv in
  let participation = Pset.full n in
  if Agreement.eval alpha participation < 1 then
    failwith "alpha(full participation) = 0, no alpha-model run";
  let schedule = Schedule.alpha_model ~seed alpha ~participation in
  pf "faulty processes: %a@." Pset.pp (Schedule.faulty schedule);
  let report = Algorithm1.run alpha ~schedule in
  Array.iteri
    (fun pid outcome ->
      match outcome with
      | Exec.Decided o ->
        pf "p%d: View1=%a View2={%a}@." pid Pset.pp o.Algorithm1.view1
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
             (fun ppf (j, v1) -> Format.fprintf ppf "p%d:%a" j Pset.pp v1))
          o.Algorithm1.view2
      | Exec.Crashed k -> pf "p%d: crashed after %d steps@." pid k
      | Exec.Running -> pf "p%d: still running@." pid)
    report.Exec.outcomes;
  match List.map snd (Exec.decided report) with
  | [] -> pf "nobody decided@."
  | outputs ->
    let sigma = Algorithm1.simplex_of_outputs outputs in
    let ra = affine_task_of_adversary adv in
    pf "output simplex lands in R_A: %b (total steps %d)@."
      (Complex.mem sigma (Affine_task.complex ra))
      report.Exec.steps

let run_cmd =
  Cmd.v
    (Cmd.info "run"
       ~doc:"Execute Algorithm 1 under a random alpha-model schedule.")
    Term.(
      const (fun timeout seed n preset live ->
          guarded timeout (fun () ->
              with_adversary (run_alg1 seed) n preset live))
      $ timeout_arg $ seed_arg $ n_arg $ preset_arg $ live_arg)

(* ----------------------------- solve ------------------------------ *)

let solve k n adv =
  let power = Setcon.setcon adv in
  pf "agreement power: %d; deciding %d-set consensus...@." power k;
  let t =
    Set_consensus.task_fixed ~n ~k ~inputs:(List.init n (fun i -> i))
  in
  let ra = affine_task_of_adversary adv in
  match
    Solver.solve ~protocol:(Affine_task.apply ra t.Task.inputs) ~task:t
  with
  | Solver.Solvable _ ->
    pf "solvable from one iteration of R_A (map found and certified)@."
  | Solver.Unsolvable ->
    pf "no simplicial map from R_A^1 (consistent with setcon = %d)@." power

let solve_cmd =
  let k_arg =
    Arg.(value & opt int 1 & info [ "k" ] ~doc:"Set-consensus parameter k.")
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:"Decide k-set-consensus solvability from R_A (Theorem 16).")
    Term.(
      const (fun timeout k n preset live ->
          guarded timeout (fun () -> with_adversary (solve k) n preset live))
      $ timeout_arg $ k_arg $ n_arg $ preset_arg $ live_arg)

(* ----------------------------- chr -------------------------------- *)

let chr n m =
  let c = Chr.iterate m (Chr.standard n) in
  pf "Chr^%d s (n=%d): %a@." m n Complex.pp_stats c;
  pf "simplices: %d  euler characteristic: %d@." (Complex.simplex_count c)
    (Complex.euler_characteristic c)

let chr_cmd =
  let m_arg =
    Arg.(value & opt int 1 & info [ "m" ] ~doc:"Subdivision iterations.")
  in
  Cmd.v
    (Cmd.info "chr" ~doc:"Statistics of the iterated chromatic subdivision.")
    Term.(
      const (fun timeout n m -> guarded timeout (fun () -> chr n m))
      $ timeout_arg $ n_arg $ m_arg)

(* ----------------------------- explore ---------------------------- *)

let load_checkpoint file =
  match Checkpoint.load file with
  | Ok ck -> ck
  | Error msg -> failwith msg (* already names the file *)

(* --assert SPEC resolves, in order: a built-in name for the protocol
   (see [fact assert list]), a file holding an assertion s-expression,
   or an inline s-expression. *)
let assertion_of ~protocol ~n spec =
  match Harness.builtin ~protocol spec with
  | Some b -> b.Harness.b_assertion ~n
  | None ->
    let text =
      if Sys.file_exists spec then (
        let ic = open_in spec in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic)))
      else spec
    in
    (match Assertion.of_string (String.trim text) with
    | Ok a -> a
    | Error msg -> failwith (Printf.sprintf "--assert %s: %s" spec msg))

let explore protocol max_depth max_runs max_crashes skip_wait assert_spec
    mutate agreement_k stop_on_violation checkpoint_file checkpoint_every
    resume_file domains n preset live_sets =
  let participants = Pset.full n in
  let resume = Option.map load_checkpoint resume_file in
  let on_checkpoint =
    Option.map (fun file ck -> Checkpoint.save file ck) checkpoint_file
  in
  let checkpoint_every =
    if checkpoint_file = None then 0 else checkpoint_every
  in
  let assertion = Option.map (assertion_of ~protocol ~n) assert_spec in
  let bad_mutant m =
    failwith
      (Printf.sprintf "unknown %s mutant %S (see fact assert list)" protocol m)
  in
  (* Shared violation reporting: shrink assertion-aware, confirm the
     shrunk trace by a standalone replay, print it replayable. *)
  let report_violations :
      'r. subject:(unit -> 'r Subject.t) -> 'r Explore.outcome list ->
      ok:string -> unit =
   fun ~subject violations ~ok ->
    match violations with
    | [] -> pf "%s@." ok
    | v :: _ ->
      let truncated = v.Explore.truncated in
      let shrunk = Minimize.shrink_subject ~truncated ~subject v.Explore.trace in
      (match Replay.check ~truncated ~subject shrunk with
      | Error msg -> pf "violation! %s@." msg
      | Ok () -> pf "violation (does not replay standalone?)@.");
      pf "counterexample (%d decisions, shrunk to %d):@."
        (Trace.length v.Explore.trace)
        (Trace.length shrunk);
      pf "%a@." Trace.pp shrunk;
      exit 1
  in
  match protocol with
  | "is" ->
    let mutation =
      match mutate with
      | None -> None
      | Some "split-snapshot" -> Some Harness.Split_snapshot
      | Some m -> bad_mutant m
    in
    let stats, parts =
      Harness.explore_immediate_snapshot ~max_depth ~max_runs ?mutation
        ?assertion ~stop_on_violation ?resume ~checkpoint_every ?on_checkpoint
        ?domains ~n ()
    in
    pf "one-shot IS, n=%d: %a@." n Explore.pp_stats stats;
    pf "distinct ordered partitions: %d (fubini %d = %d)@."
      (List.length parts) n (Opart.fubini n);
    report_violations
      ~subject:(Harness.is_subject ?mutation ?assertion ~n ())
      stats.Explore.violations
      ~ok:"no violation: every run yields a valid ordered partition"
  | "alg1" ->
    let adv =
      match (preset, live_sets) with
      | None, [] -> Adversary.wait_free n
      | _ -> adversary_of ~n ~preset ~live_sets
    in
    let alpha = Agreement.of_adversary adv in
    pf "adversary: %a@." Adversary.pp adv;
    if skip_wait then pf "ablation: wait phase disabled@.";
    let mutation =
      match mutate with
      | None -> None
      | Some "skip-wait" -> Some Algorithm1.Skip_wait
      | Some "drop-second-snapshot" -> Some Algorithm1.Drop_second_snapshot
      | Some "biased-view" -> Some Algorithm1.Biased_view
      | Some m -> bad_mutant m
    in
    let stats =
      Harness.explore_algorithm1 ~skip_wait ?mutation ?assertion ?max_crashes
        ~max_depth ~max_runs ~stop_on_violation ?resume ~checkpoint_every
        ?on_checkpoint ?domains ~alpha ~participants ()
    in
    pf "Algorithm 1, n=%d: %a@." n Explore.pp_stats stats;
    report_violations
      ~subject:
        (Harness.alg1_subject ~skip_wait ?mutation ?assertion ~alpha
           ~participants ())
      stats.Explore.violations
      ~ok:"no violation: all explored runs land in R_A"
  | "wsmin" ->
    let mutation =
      match mutate with
      | None -> None
      | Some "biased-decision" -> Some Harness.Biased_decision
      | Some m -> bad_mutant m
    in
    let stats =
      Harness.explore_snapmin ?mutation ?k:agreement_k ?assertion ~max_depth
        ~max_runs ~stop_on_violation ?resume ~checkpoint_every ?on_checkpoint
        ?domains ~n ()
    in
    pf "write-snapshot-min, n=%d: %a@." n Explore.pp_stats stats;
    report_violations
      ~subject:(Harness.wsmin_subject ?mutation ?k:agreement_k ?assertion ~n ())
      stats.Explore.violations
      ~ok:"no violation: validity, agreement and termination hold"
  | p -> failwith ("unknown protocol " ^ p ^ " (alg1 | is | wsmin)")

let explore_cmd =
  let protocol_arg =
    Arg.(
      value & opt string "alg1"
      & info [ "protocol" ] ~docv:"NAME"
          ~doc:"Protocol to model-check: alg1 (Algorithm 1) | is (one-shot \
                immediate snapshot) | wsmin (write, snapshot, decide min).")
  in
  let assert_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "assert" ] ~docv:"SPEC"
          ~doc:
            "Assertion to check on every explored run: a built-in name \
             (see $(b,fact assert list)), a file holding an assertion \
             s-expression, or an inline s-expression such as \
             '(and validity (agreement 1))'. Default: the protocol's \
             built-in oracle.")
  in
  let mutate_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "mutate" ] ~docv:"NAME"
          ~doc:
            "Replace the protocol by a seeded broken variant (see \
             $(b,fact assert list)); the assertions are expected to find \
             a counterexample.")
  in
  let agreement_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "agreement" ] ~docv:"K"
          ~doc:
            "Agreement bound of the wsmin default assertion (default: n). \
             K = 1 asks for consensus and yields a counterexample.")
  in
  let max_depth_arg =
    Arg.(
      value & opt int 64
      & info [ "max-depth" ] ~doc:"Decisions per run before truncation.")
  in
  let max_runs_arg =
    Arg.(
      value & opt int 100_000
      & info [ "max-runs" ] ~doc:"Total execution budget.")
  in
  let max_crashes_arg =
    Arg.(
      value & opt (some int) None
      & info [ "max-crashes" ]
          ~doc:"Crash budget per run. Default: the alpha-model bound \
                alpha(P) - 1.")
  in
  let skip_wait_arg =
    Arg.(
      value & flag
      & info [ "skip-wait" ]
          ~doc:"Ablation: drop Algorithm 1's wait phase (lines 6-9); the \
                explorer then finds runs escaping R_A.")
  in
  let stop_arg =
    Arg.(
      value & flag
      & info [ "stop-on-violation" ]
          ~doc:
            "Stop the search at the first violating run instead of \
             exploring the whole tree; with --domains the leftmost \
             violation is kept, so the reported counterexample matches \
             the sequential one.")
  in
  let checkpoint_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Write a resumable checkpoint to FILE periodically (see \
             --checkpoint-every) and when a --timeout deadline trips \
             mid-search.")
  in
  let checkpoint_every_arg =
    Arg.(
      value & opt int 1000
      & info [ "checkpoint-every" ] ~docv:"RUNS"
          ~doc:"Checkpoint every RUNS executions (with --checkpoint).")
  in
  let resume_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume an interrupted exploration from a checkpoint FILE; the \
             final counts equal an uninterrupted run's.")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Fan the search out over N domains of the work-stealing pool \
             (default: FACT_DOMAINS or 1). The reported counts are \
             identical for any N.")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Systematically explore protocol interleavings (DFS with sleep-set \
          pruning and crash injection) and check outputs against R_A. The \
          adversary defaults to wait-free.")
    Term.(
      const (fun timeout protocol max_depth max_runs max_crashes skip_wait
                 assert_spec mutate agreement stop checkpoint_file
                 checkpoint_every resume_file domains n preset live ->
          guarded timeout (fun () ->
              explore protocol max_depth max_runs max_crashes skip_wait
                assert_spec mutate agreement stop checkpoint_file
                checkpoint_every resume_file domains n preset live))
      $ timeout_arg $ protocol_arg $ max_depth_arg $ max_runs_arg
      $ max_crashes_arg $ skip_wait_arg $ assert_arg $ mutate_arg
      $ agreement_arg $ stop_arg $ checkpoint_file_arg $ checkpoint_every_arg
      $ resume_arg $ domains_arg $ n_arg $ preset_arg $ live_arg)

(* ----------------------------- assert ----------------------------- *)

let assert_list () =
  pf "built-in assertions (fact explore --assert NAME):@.";
  List.iter
    (fun (b : Harness.builtin) ->
      pf "  %-6s %-14s %s@." b.Harness.b_protocol b.b_name b.b_doc)
    Harness.builtins;
  pf "@.seeded mutants (fact explore --mutate NAME):@.";
  List.iter
    (fun (s : Mutant.spec) ->
      pf "  %-6s %-22s n=%d  caught by %s: %s@." s.Mutant.m_protocol s.m_name
        s.m_n s.m_caught_by s.m_doc)
    Mutant.all

let assert_cmd =
  let list_cmd =
    Cmd.v
      (Cmd.info "list"
         ~doc:"List the built-in assertions and the seeded mutants.")
      Term.(const (fun () -> assert_list ()) $ const ())
  in
  Cmd.group
    (Cmd.info "assert"
       ~doc:
         "Inspect the declarative assertion registry: built-in trace \
          assertions per protocol and the seeded mutants they are \
          mutation-tested against.")
    [ list_cmd ]

(* ----------------------------- chaos ------------------------------ *)

let chaos_run seed max_faults serve_faults cluster_faults =
  let stats = Chaos.run ~seed ~max_faults () in
  pf "chaos: %a@." Chaos.pp_stats stats;
  let serve_violations =
    if serve_faults < 1 then []
    else begin
      let s = Serve_chaos.run ~seed ~max_faults:serve_faults () in
      pf "%a@." Serve_chaos.pp_stats s;
      s.Serve_chaos.violations
    end
  in
  let cluster_violations =
    if cluster_faults < 1 then []
    else begin
      let s = Serve_chaos.run_cluster ~seed ~max_faults:cluster_faults () in
      pf "%a@." Serve_chaos.pp_cluster_stats s;
      s.Serve_chaos.c_violations
    end
  in
  match stats.Chaos.violations @ serve_violations @ cluster_violations with
  | [] -> pf "all invariants held@."
  | vs ->
    List.iter (fun m -> pf "violation: %s@." m) vs;
    exit 1

let chaos_cmd =
  let max_faults_arg =
    Arg.(
      value & opt int 100
      & info [ "max-faults" ] ~doc:"Number of faults to inject.")
  in
  let serve_faults_arg =
    Arg.(
      value & opt int 0
      & info [ "serve-faults" ] ~docv:"N"
          ~doc:
            "Also boot a throwaway query server and inject N listener-side \
             faults (client disconnects, corrupted store entries, forced \
             evictions mid-batch, protocol garbage).")
  in
  let cluster_faults_arg =
    Arg.(
      value & opt int 0
      & info [ "cluster-faults" ] ~docv:"N"
          ~doc:
            "Also boot a throwaway sharded cluster (real worker \
             processes) and inject N faults: kill -9 mid-request, \
             corrupted replica stores, SIGSTOP heartbeat stalls, \
             whole-shard blackouts. Every query must still answer with \
             one-shot-identical bytes.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Inject worker crashes, cancellations and cache evictions into \
          the R_A pipeline and audit the resilience invariants.")
    Term.(
      const (fun timeout seed max_faults serve_faults cluster_faults ->
          guarded timeout (fun () ->
              chaos_run seed max_faults serve_faults cluster_faults))
      $ timeout_arg $ seed_arg $ max_faults_arg $ serve_faults_arg
      $ cluster_faults_arg)

(* ------------------------- serve / client ------------------------- *)

(* The serve endpoints resolve their adversary from the same flags as
   the one-shot commands; with neither flag they default to wait-free,
   so [fact ra --n 3] and [fact client ra --n 3] name the same query. *)
let spec_of ~preset ~live_sets : Query.adversary_spec =
  match (preset, live_sets) with
  | Some p, [] -> Query.Preset p
  | None, [] -> Query.Preset "wait-free"
  | None, (_ :: _ as ls) -> Query.Live (List.map Pset.to_list ls)
  | Some _, _ :: _ -> failwith "give either --preset or --live, not both"

let query_of ~endpoint ~n ~m ~preset ~live_sets ~protocol ~max_runs =
  let adv () = spec_of ~preset ~live_sets in
  match endpoint with
  | "ra" -> Query.Ra { n; adv = adv () }
  | "chr" -> Query.Chr { n; m }
  | "critical" -> Query.Critical { n; adv = adv () }
  | "setcon" -> Query.Setcon { n; adv = adv () }
  | "fairness" -> Query.Fairness { n; adv = adv () }
  | "explore" -> Query.Explore { protocol; n; max_runs }
  | e ->
    failwith
      (Printf.sprintf
         "unknown endpoint %S (ra | chr | critical | setcon | fairness | \
          explore | stats | ping | shutdown)"
         e)

let addr_of s =
  match Listener.addr_of_string s with
  | Ok a -> a
  | Error msg -> failwith msg

let addr_arg =
  Arg.(
    value
    & opt string "fact.sock"
    & info [ "addr" ] ~docv:"ADDR"
        ~doc:
          "Server address: unix:PATH, tcp:HOST:PORT, or a bare PATH (a \
           Unix-domain socket).")

let m_serve_arg =
  Arg.(
    value & opt int 1
    & info [ "m" ] ~doc:"Subdivision iterations (chr endpoint).")

let protocol_serve_arg =
  Arg.(
    value & opt string "is"
    & info [ "protocol" ] ~docv:"NAME"
        ~doc:"Protocol for the explore endpoint: is | alg1.")

let max_runs_serve_arg =
  Arg.(
    value & opt int 10_000
    & info [ "max-runs" ] ~doc:"Execution budget (explore endpoint).")

let serve addr_s store_dir cache_cap max_frame =
  let addr = addr_of addr_s in
  let store = Option.map Store.open_dir store_dir in
  let scheduler = Scheduler.create ?store ?cache_cap () in
  let listener = Listener.start_scheduler ~max_frame ~scheduler addr in
  (match store with
  | Some s ->
    pf "fact: serving on %s (store %s, %d entries warm)@."
      (Listener.addr_to_string addr) (Store.dir s) (Store.entries s)
  | None ->
    pf "fact: serving on %s (no store: results die with the process)@."
      (Listener.addr_to_string addr));
  let stop_in_background _ =
    ignore (Thread.create (fun () -> Listener.stop listener) ())
  in
  (try
     Sys.set_signal Sys.sigint (Sys.Signal_handle stop_in_background);
     Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_in_background)
   with Invalid_argument _ | Sys_error _ -> ());
  Listener.wait listener;
  Listener.stop listener;
  pf "fact: server stopped@."

let serve_cmd =
  let store_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Content-addressed result store: warm-starts the result cache \
             on boot, persists every computed result, and survives \
             restarts.")
  in
  let cache_cap_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-cap" ]
          ~doc:"Bound on resident results (evictions are persisted).")
  in
  let max_frame_arg =
    Arg.(
      value
      & opt int Wire.default_max_frame
      & info [ "max-frame" ] ~docv:"BYTES"
          ~doc:"Largest accepted request frame.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve ra/chr/critical/setcon/fairness/explore queries over a \
          Unix-domain or TCP socket, with request deduplication, \
          batching, per-request deadlines and a warm on-disk result \
          store.")
    Term.(
      const (fun addr store cap max_frame ->
          guarded None (fun () -> serve addr store cap max_frame))
      $ addr_arg $ store_arg $ cache_cap_arg $ max_frame_arg)

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Extra attempts (fresh connection each) after a retryable \
           transport failure — server unreachable, connection dropped, \
           receive timed out. Server-side refusals are never retried. \
           With the budget exhausted the command exits 7 (unavailable).")

let backoff_ms_arg =
  Arg.(
    value & opt float 50.
    & info [ "backoff-ms" ] ~docv:"MS"
        ~doc:
          "Base delay between retries; doubles per attempt, capped at \
           2000ms.")

let client timeout addr_s retries backoff_ms endpoint n m preset live_sets
    protocol max_runs =
  let addr = addr_of addr_s in
  let backoff = Backoff.make ~base_ms:backoff_ms () in
  Client.with_retries ~retries ~backoff addr (fun c ->
      match endpoint with
      | "stats" -> print_string (Client.stats c)
      | "ping" ->
        Client.ping c;
        pf "pong@."
      | "shutdown" ->
        Client.shutdown c;
        pf "server shutting down@."
      | _ ->
        let q =
          query_of ~endpoint ~n ~m ~preset ~live_sets ~protocol ~max_runs
        in
        (* --timeout travels with the request; the server maps what is
           left of it onto a Cancel token around the pipeline *)
        let payload, source = Client.query c ?deadline_s:timeout q in
        Printf.eprintf "fact: source=%s\n%!" (Wire.source_to_string source);
        print_string payload)

let client_cmd =
  let endpoint_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ENDPOINT"
          ~doc:
            "ra | chr | critical | setcon | fairness | explore | stats | \
             ping | shutdown")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Query a running fact server. The payload (on stdout) is \
          bit-identical to the matching one-shot command; the answer's \
          source (computed | memory | disk) goes to stderr. A --timeout \
          is enforced server-side as a per-request deadline.")
    Term.(
      const (fun timeout addr retries backoff_ms endpoint n m preset live
                 protocol max_runs ->
          guarded None (fun () ->
              client timeout addr retries backoff_ms endpoint n m preset live
                protocol max_runs))
      $ timeout_arg $ addr_arg $ retries_arg $ backoff_ms_arg $ endpoint_arg
      $ n_arg $ m_serve_arg $ preset_arg $ live_arg $ protocol_serve_arg
      $ max_runs_serve_arg)

(* ------------------------- cluster / loadgen ---------------------- *)

let cluster_run addr_s shards replicas dir max_frame restart_budget
    attempt_timeout =
  let addr = addr_of addr_s in
  let dir =
    match dir with
    | Some d -> d
    | None ->
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "fact-cluster-%d" (Unix.getpid ()))
  in
  let cfg =
    Cluster.config ~dir ~shards ~replicas ~restart_budget
      ~attempt_timeout_s:attempt_timeout ()
  in
  let cluster = Cluster.start cfg in
  let listener =
    Listener.start ~max_frame ~handler:(Cluster.handler cluster) addr
  in
  for shard = 0 to shards - 1 do
    for replica = 0 to replicas - 1 do
      pf "fact: worker shard=%d replica=%d pid=%d sock=%s@." shard replica
        (Option.value (Cluster.worker_pid cluster ~shard ~replica) ~default:0)
        (Cluster.worker_sock cluster ~shard ~replica)
    done
  done;
  pf "fact: cluster serving on %s (%d shards x %d replicas, store root %s)@."
    (Listener.addr_to_string addr) shards replicas dir;
  let stop_in_background _ =
    ignore (Thread.create (fun () -> Listener.stop listener) ())
  in
  (try
     Sys.set_signal Sys.sigint (Sys.Signal_handle stop_in_background);
     Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_in_background)
   with Invalid_argument _ | Sys_error _ -> ());
  Listener.wait listener;
  Listener.stop listener;
  Cluster.stop cluster;
  pf "fact: cluster stopped@."

let cluster_cmd =
  let shards_arg =
    Arg.(value & opt int 3 & info [ "shards" ] ~doc:"Number of shards.")
  in
  let replicas_arg =
    Arg.(
      value & opt int 2
      & info [ "replicas" ] ~doc:"Worker processes per shard.")
  in
  let dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Root directory for worker stores and sockets (default: a \
             pid-stamped directory under the system temp dir).")
  in
  let max_frame_arg =
    Arg.(
      value
      & opt int Wire.default_max_frame
      & info [ "max-frame" ] ~docv:"BYTES"
          ~doc:"Largest accepted request frame.")
  in
  let restart_budget_arg =
    Arg.(
      value & opt int 8
      & info [ "restart-budget" ] ~docv:"N"
          ~doc:
            "Consecutive crash-loop restarts before a worker is fused \
             (left down and routed around).")
  in
  let attempt_timeout_arg =
    Arg.(
      value & opt float 10.
      & info [ "attempt-timeout" ] ~docv:"SECS"
          ~doc:
            "Socket send/receive bound per replica attempt; a wedged \
             worker costs at most this before failover.")
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "Serve queries from a supervised, sharded, replicated worker \
          cluster: content digests are consistent-hashed across shards, \
          each shard runs R replicated fact-serve processes, crashed \
          workers are restarted with backoff, replicas are kept \
          converged by write-through and read-repair, and with a whole \
          shard down the front tier degrades to local evaluation \
          instead of failing.")
    Term.(
      const (fun addr shards replicas dir max_frame budget attempt ->
          guarded None (fun () ->
              cluster_run addr shards replicas dir max_frame budget attempt))
      $ addr_arg $ shards_arg $ replicas_arg $ dir_arg $ max_frame_arg
      $ restart_budget_arg $ attempt_timeout_arg)

(* a fixed mix of cheap queries with distinct digests, so a burst
   spreads over every shard of a cluster *)
let loadgen_mix =
  [
    Query.Ra { n = 2; adv = Query.Preset "wait-free" };
    Query.Chr { n = 2; m = 1 };
    Query.Chr { n = 3; m = 1 };
    Query.Setcon { n = 3; adv = Query.Preset "wait-free" };
    Query.Setcon { n = 3; adv = Query.Preset "t-res:1" };
    Query.Fairness { n = 2; adv = Query.Preset "wait-free" };
    Query.Fairness { n = 3; adv = Query.Preset "t-res:1" };
    Query.Critical { n = 2; adv = Query.Preset "wait-free" };
  ]

let loadgen_run addr_s requests threads retries backoff_ms deadline =
  let addr = addr_of addr_s in
  let backoff = Backoff.make ~base_ms:backoff_ms () in
  let report =
    Loadgen.run ~threads ~requests ~retries ~backoff ?deadline_s:deadline
      ~queries:loadgen_mix addr
  in
  print_endline (Loadgen.report_to_string report);
  if report.Loadgen.failed > 0 then
    Fact_error.raise_error
      (Fact_error.Unavailable
         {
           what =
             Printf.sprintf "loadgen: %d of %d requests failed"
               report.Loadgen.failed report.Loadgen.sent;
         })

let loadgen_cmd =
  let requests_arg =
    Arg.(
      value & opt int 64
      & info [ "requests" ] ~docv:"N" ~doc:"Total requests to send.")
  in
  let threads_arg =
    Arg.(
      value & opt int 4
      & info [ "threads" ] ~docv:"N" ~doc:"Concurrent client threads.")
  in
  let loadgen_retries_arg =
    Arg.(
      value & opt int 4
      & info [ "retries" ] ~docv:"N"
          ~doc:"Retry budget per request (see fact client --retries).")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:"Per-request server-side deadline.")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Fire a concurrent burst of queries (a fixed mix of cheap \
          endpoints with distinct digests) at a running fact server or \
          cluster and report per-source counts and a latency histogram. \
          Exits 0 only if every request succeeded; a request whose \
          retry budget is exhausted makes the exit code 7.")
    Term.(
      const (fun addr requests threads retries backoff_ms deadline ->
          guarded None (fun () ->
              loadgen_run addr requests threads retries backoff_ms deadline))
      $ addr_arg $ requests_arg $ threads_arg $ loadgen_retries_arg
      $ backoff_ms_arg $ deadline_arg)

let ra_cmd =
  Cmd.v
    (Cmd.info "ra"
       ~doc:
         "One-shot evaluation of the ra serve endpoint: R_A statistics \
          for an adversary (defaults to wait-free), bit-identical to the \
          payload a fact server returns for the same query.")
    Term.(
      const (fun timeout n preset live ->
          guarded timeout (fun () ->
              print_string
                (Query.eval
                   (Query.Ra { n; adv = spec_of ~preset ~live_sets:live }))))
      $ timeout_arg $ n_arg $ preset_arg $ live_arg)

(* ----------------------- campaign / report ------------------------ *)

let dir_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "dir" ] ~docv:"DIR" ~doc:"Campaign results directory.")

let campaign_run grid_file dir backend addr_s retries backoff_ms timeout_s =
  let spec = Grid.load grid_file in
  let backend =
    match backend with
    | "local" -> Campaign_runner.Local
    | "cluster" ->
      Campaign_runner.Cluster
        {
          addr = addr_of addr_s;
          retries;
          backoff = Some (Backoff.make ~base_ms:backoff_ms ());
          timeout_s;
        }
    | b -> failwith (Printf.sprintf "unknown backend %S (local | cluster)" b)
  in
  let p =
    Campaign_runner.run ~log:print_endline ~backend ~dir spec
  in
  if p.Campaign_runner.failed > 0 then
    Fact_error.raise_error
      (Fact_error.Worker_failure
         {
           fn = "fact campaign";
           failed = p.Campaign_runner.failed;
           chunks = p.Campaign_runner.total;
           first = "see the cell FAILED lines above";
         })

let campaign_cmd =
  let grid_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "grid" ] ~docv:"FILE" ~doc:"Grid spec (sexp; see lib/campaign).")
  in
  let backend_arg =
    Arg.(
      value & opt string "local"
      & info [ "backend" ] ~docv:"NAME"
          ~doc:
            "Where cells execute: local (the in-process work-stealing \
             pool) or cluster (a running fact serve / fact cluster at \
             --addr). Both produce byte-identical cells/ directories.")
  in
  let cell_timeout_arg =
    Arg.(
      value & opt float 30.
      & info [ "attempt-timeout" ] ~docv:"SECS"
          ~doc:"Socket send/receive bound per cluster request.")
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run a declarative grid sweep: expand the spec's axis \
          cross-product into cells, execute every cell not already \
          answered in --dir (resume = skip), and write one \
          content-addressed result per cell plus a timing sidecar. \
          Exits 5 if any cell failed.")
    Term.(
      const (fun grid dir backend addr retries backoff_ms timeout ->
          guarded None (fun () ->
              campaign_run grid dir backend addr retries backoff_ms timeout))
      $ grid_arg $ dir_arg $ backend_arg $ addr_arg $ retries_arg
      $ backoff_ms_arg $ cell_timeout_arg)

let write_or_print path contents =
  if path = "-" then print_string contents
  else begin
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    pf "fact: wrote %s@." path
  end

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error m -> failwith m

(* --trend bypasses the results directory entirely: it compares
   committed baseline files (campaign --json outputs or
   BENCH_topology.json snapshots), oldest first on the command line. *)
let trend_run trends csv =
  let inputs = List.map (fun p -> (Filename.basename p, read_file p)) trends in
  match csv with
  | Some p -> write_or_print p (Report.trend ~format:`Csv inputs)
  | None -> print_string (Report.trend ~format:`Md inputs)

let report_run dir json csv fingerprints experiments gate baseline tolerance
    slack_ms =
  let dir =
    match dir with
    | Some d -> d
    | None -> failwith "report: --dir is required (unless using --trend)"
  in
  let t = Report.load ~dir in
  if t.Report.rows = [] then failwith (Printf.sprintf "no results in %s" dir);
  Option.iter (fun p -> write_or_print p (Report.to_json t)) json;
  Option.iter (fun p -> write_or_print p (Report.to_csv t)) csv;
  Option.iter (fun p -> write_or_print p (Report.fingerprints t)) fingerprints;
  Option.iter
    (fun p ->
      Report.splice ~file:p t;
      pf "fact: spliced report into %s@." p)
    experiments;
  let default_output =
    json = None && csv = None && fingerprints = None && experiments = None
    && not gate
  in
  if default_output then print_string (Report.markdown t);
  if gate then begin
    let contents = read_file baseline in
    match Report.gate ~tolerance ~slack_ms ~baseline:contents t with
    | Ok n -> pf "gate: %d cells within tolerance of %s@." n baseline
    | Error violations ->
      List.iter (fun v -> Printf.eprintf "gate: %s\n" v) violations;
      Printf.eprintf "gate: %d regression(s) against %s\n%!"
        (List.length violations) baseline;
      exit 1
  end

let report_cmd =
  (* --dir is only meaningful (and then mandatory) outside --trend
     mode, so it is optional at the cmdliner layer *)
  let dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR" ~doc:"Campaign results directory.")
  in
  let out k doc =
    Arg.(
      value
      & opt (some string) None
      & info [ k ] ~docv:"FILE" ~doc:(doc ^ " (- for stdout)."))
  in
  let experiments_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "experiments" ] ~docv:"FILE"
          ~doc:
            "Splice the markdown table into FILE between the \
             fact-report marker comments (appending the block if the \
             markers are absent).")
  in
  let gate_arg =
    Arg.(
      value & flag
      & info [ "gate" ]
          ~doc:
            "Compare against --baseline and exit 1 on any fingerprint \
             change, missing cell, or wall-time above tolerance x \
             baseline + slack.")
  in
  let baseline_arg =
    Arg.(
      value
      & opt string "BENCH_campaign.json"
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:"Committed baseline: a prior --json output.")
  in
  let tolerance_arg =
    Arg.(
      value & opt float 4.0
      & info [ "tolerance" ] ~docv:"X"
          ~doc:"Multiplicative wall-time band for --gate.")
  in
  let slack_arg =
    Arg.(
      value & opt float 50.
      & info [ "slack-ms" ] ~docv:"MS"
          ~doc:"Absolute wall-time slack for --gate, absorbing timer \
                noise on cells that take microseconds.")
  in
  let trend_arg =
    Arg.(
      value & opt_all string []
      & info [ "trend" ] ~docv:"FILE"
          ~doc:
            "Line up the wall-time columns of several committed baseline \
             JSONs (campaign --json outputs or BENCH_topology.json \
             snapshots), oldest first; repeatable. Prints a markdown \
             trajectory table, or CSV with --csv; ignores --dir.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Aggregate a campaign results directory: JSON/CSV tables, the \
          deterministic fingerprint column, the EXPERIMENTS.md block, \
          and the CI regression gate. With no output flag, prints the \
          markdown table. With --trend, compare baseline files across \
          time instead of reading a results directory.")
    Term.(
      const
        (fun dir json csv fps experiments gate baseline tolerance slack trends ->
          guarded None (fun () ->
              if trends <> [] then trend_run trends csv
              else
                report_run dir json csv fps experiments gate baseline tolerance
                  slack))
      $ dir_arg $ out "json" "Write the JSON table"
      $ out "csv" "Write the CSV table"
      $ out "fingerprints" "Write the fingerprint listing"
      $ experiments_arg $ gate_arg $ baseline_arg $ tolerance_arg $ slack_arg
      $ trend_arg)

let bench_cmd =
  let filter_arg =
    Arg.(
      value & opt_all string []
      & info [ "filter" ] ~docv:"NAME"
          ~doc:
            "Run only the timed entries whose name contains NAME \
             (case-insensitive substring; repeatable, matching any).")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"Fan Chr/R_A construction out over N domains.")
  in
  let gate_arg =
    Arg.(
      value & flag
      & info [ "gate" ]
          ~doc:
            "Compare the entries run against --baseline and exit 1 when \
             any is slower than tolerance x baseline + slack or \
             allocates past its minor-word budget.")
  in
  let baseline_arg =
    Arg.(
      value
      & opt string "BENCH_topology.json"
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:"Committed baseline: a prior bench --json output.")
  in
  let tolerance_arg =
    Arg.(
      value & opt float 4.0
      & info [ "tolerance" ] ~docv:"X"
          ~doc:"Multiplicative wall-time band for --gate.")
  in
  let slack_arg =
    Arg.(
      value & opt float 50.
      & info [ "slack-ms" ] ~docv:"MS"
          ~doc:"Absolute wall-time slack for --gate.")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run the timed wall-clock entries behind BENCH_topology.json \
          (never writing the baseline file — that stays with bench/main \
          --json, which runs them all). With --gate, compare the entries \
          run against the committed baseline's wall-time and GC columns.")
    Term.(
      const (fun timeout filters domains gate baseline tolerance slack ->
          guarded timeout (fun () ->
              Option.iter Parallel.set_default_domains domains;
              let results = Bench_entries.run ~filters () in
              List.iter
                (fun r -> print_endline (Bench_entries.line r))
                results;
              if gate then begin
                let contents = read_file baseline in
                match
                  Bench_entries.gate ~tolerance ~slack_ms:slack
                    ~baseline:contents results
                with
                | Ok n ->
                  pf "gate: %d entr%s within tolerance of %s@." n
                    (if n = 1 then "y" else "ies")
                    baseline
                | Error violations ->
                  List.iter (fun v -> Printf.eprintf "gate: %s\n" v) violations;
                  Printf.eprintf "gate: %d regression(s) against %s\n%!"
                    (List.length violations) baseline;
                  Stdlib.exit 1
              end))
      $ timeout_arg $ filter_arg $ domains_arg $ gate_arg $ baseline_arg
      $ tolerance_arg $ slack_arg)

(* ----------------------------- census ----------------------------- *)

let census_run n =
  if n > 4 then failwith "census is exhaustive; n <= 4 only";
  pf "census over all adversaries, n=%d:@." n;
  pf "%a@." Census.pp (Census.exhaustive ~n);
  pf "fair task-computability classes: %d@."
    (Census.fair_computability_classes ~n)

let census_cmd =
  Cmd.v
    (Cmd.info "census"
       ~doc:"Classify every adversary over n processes (quantified Figure 2).")
    Term.(
      const (fun timeout n -> guarded timeout (fun () -> census_run n))
      $ timeout_arg $ n_arg)

(* ------------------------------------------------------------------ *)

let () =
  let man =
    [
      `S Manpage.s_exit_status;
      `P
        "0 on success; 1 when a property violation, counterexample or \
         chaos-invariant failure was found; 2 on a precondition or usage \
         error; 3 when a --timeout deadline was exceeded; 4 when \
         cancelled; 5 on a parallel worker failure; 6 on a resource \
         limit; 7 when a server or shard stayed unavailable (bind \
         failure, unreachable server, retry budget exhausted) — the \
         retryable class: back off and try again.";
    ]
  in
  let info =
    Cmd.info "fact" ~version:"1.0.0" ~man
      ~doc:
        "Affine tasks for fair adversaries (Kuznetsov, Rieutord, He, PODC \
         2018) — executable."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ analyze_cmd; affine_cmd; run_cmd; solve_cmd; chr_cmd;
            explore_cmd; assert_cmd; chaos_cmd; census_cmd; serve_cmd;
            client_cmd; cluster_cmd; loadgen_cmd; ra_cmd; campaign_cmd;
            report_cmd; bench_cmd ]))
