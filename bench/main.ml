(* Benchmark & figure-regeneration harness.

   One section per evaluation artifact of the paper (DESIGN.md §3):
   Figures 1a, 1b, 2, 3, 4, 5, 6, 7, Theorem 7 (Algorithm 1), the µ_Q
   properties (9/10/12), the FACT solvability equation (Theorems
   15/16), the compactness observation (§1), and Bechamel performance
   micro-benchmarks.

   Usage:
     dune exec bench/main.exe                # everything
     dune exec bench/main.exe -- fig4 mu     # selected sections
     dune exec bench/main.exe -- --json      # write BENCH_topology.json
     dune exec bench/main.exe -- --filter ra # timed entries matching "ra" only
     dune exec bench/main.exe -- --domains 4 # fan Chr/R_A out over 4 domains *)

open Fact_core.Fact

let pf = Format.printf
let section name = pf "@.=== %s ===@." name
let ps = Pset.of_list

let n = 3
let s3 () = List.hd (Complex.facets (Chr.standard n))
let chr1 = lazy (Chr.subdivide (Chr.standard n))
let chr2 = lazy (Chr.subdivide (Lazy.force chr1))

(* The two running examples of Figures 5-7. *)
let alpha_1of = lazy (Agreement.k_obstruction_free ~n ~k:1)
let alpha_5b = lazy (Agreement.of_adversary Adversary.fig5b)

(* ------------------------------------------------------------------ *)

let fig1a () =
  section "Figure 1a: Chr s, the standard chromatic subdivision (n=3)";
  let c = Lazy.force chr1 in
  pf "facets (ordered IS runs): %d  [paper: 13 triangles]@." (Complex.facet_count c);
  pf "vertices: %d  edges: %d@."
    (List.length (Complex.vertices c))
    (List.length
       (List.filter (fun s -> Simplex.dim s = 1) (Complex.all_simplices c)));
  pf "pure of dim 2: %b  chromatic: by construction@." (Complex.is_pure_of_dim 2 c);
  pf "Euler characteristic: %d  [disk: 1]@." (Complex.euler_characteristic c);
  pf "facets as ordered partitions:@.";
  List.iter
    (fun f -> pf "  %a@." Opart.pp (Chr.run_of_facet f))
    (Complex.facets c)

let fig1b () =
  section "Figure 1b: R_1-res, the affine task of 1-resilience (n=3)";
  let r = Rtres.complex ~n ~t:1 in
  pf "facets: %d / %d of Chr^2 s  [every process sees >= n-t = 2]@."
    (Complex.facet_count r)
    (Complex.facet_count (Lazy.force chr2));
  pf "pure of dim 2: %b@." (Complex.is_pure_of_dim 2 r);
  let ra = Ra.complex (Agreement.of_adversary (Adversary.t_resilient ~n ~t:1)) ~n in
  pf "equals R_A of the 1-resilient adversary (Def 9): %b@."
    (Complex.equal r ra)

let fig2 () =
  section "Figure 2: adversary classes";
  let zoo =
    [
      ("wait-free", Adversary.wait_free 3);
      ("2-resilient = WF (n=3)", Adversary.t_resilient ~n:3 ~t:2);
      ("1-resilient", Adversary.t_resilient ~n:3 ~t:1);
      ("0-resilient", Adversary.t_resilient ~n:3 ~t:0);
      ("1-obstruction-free", Adversary.k_obstruction_free ~n:3 ~k:1);
      ("2-obstruction-free", Adversary.k_obstruction_free ~n:3 ~k:2);
      ("sizes {1,3}", Adversary.of_sizes ~n:3 [ 1; 3 ]);
      ("fig5b (ssc, asymmetric)", Adversary.fig5b);
      ("unfair specimen (n=4)", Fairness.unfair_example);
    ]
  in
  pf "%-26s %5s %5s %5s %7s@." "adversary" "ssc" "sym" "fair" "setcon";
  List.iter
    (fun (name, a) ->
      let c = classify a in
      pf "%-26s %5b %5b %5b %7d@." name c.superset_closed c.symmetric c.fair
        c.agreement_power)
    zoo;
  pf "[paper: superset-closed + symmetric are both fair, neither exhausts fair;@.";
  pf " t-resilient is superset-closed AND symmetric; k-OF symmetric, not ssc]@."

let fig3 () =
  section "Figure 3: valid sets of IS outputs";
  let show name blocks =
    let run = Opart.make (List.map ps blocks) in
    pf "%s: %a@." name Opart.pp run;
    List.iter
      (fun (p, v) -> pf "  p%d sees %a@." p Pset.pp v)
      (Opart.views run);
    pf "  IS properties hold: %b@." (Opart.is_valid_views (Opart.views run))
  in
  show "ordered run (Fig 3a)" [ [ 1 ]; [ 0 ]; [ 2 ] ];
  show "synchronous run (Fig 3b)" [ [ 0; 1; 2 ] ];
  pf "all %d ordered partitions of 3 processes yield valid IS views: %b@."
    (Opart.fubini 3)
    (List.for_all
       (fun r -> Opart.is_valid_views (Opart.views r))
       (Opart.enumerate (Pset.full 3)))

let fig4 () =
  section "Figure 4: the 2-contention complex Cont2 (n=3)";
  let cont = Contention.complex (Lazy.force chr2) in
  let by_dim d =
    List.length
      (List.filter (fun s -> Simplex.dim s = d) (Complex.all_simplices cont))
  in
  pf "contention simplices: dim0=%d dim1=%d dim2=%d@." (by_dim 0) (by_dim 1)
    (by_dim 2);
  pf "[the 6 dim-2 simplices = the 6 pairs of strictly reversed orderings]@.";
  let f_rev =
    Chr.facet_of_runs (s3 ())
      [ Opart.make [ ps [ 1 ]; ps [ 0 ]; ps [ 2 ] ];
        Opart.make [ ps [ 2 ]; ps [ 0 ]; ps [ 1 ] ] ]
  in
  pf "reversed runs (Fig 4a) max contention dim: %d  [paper: 2]@."
    (Contention.max_contention_dim f_rev);
  let f_mix =
    Chr.facet_of_runs (s3 ())
      [ Opart.make [ ps [ 0 ]; ps [ 1 ]; ps [ 2 ] ];
        Opart.make [ ps [ 1 ]; ps [ 2; 0 ] ] ]
  in
  pf "mixed runs (Fig 4b) max contention dim: %d  [paper: 1, couple {p0,p1}]@."
    (Contention.max_contention_dim f_mix)

let fig5 () =
  section "Figure 5: critical simplices";
  let show name alpha =
    let crit = Critical.all_critical alpha (Lazy.force chr1) in
    pf "%s: %d critical simplices of Chr s@." name (List.length crit);
    List.iter
      (fun c ->
        pf "  chi=%a carrier=%a power=%d@." Pset.pp (Simplex.colors c) Pset.pp
          (Simplex.base_carrier c)
          (Agreement.eval alpha (Simplex.base_carrier c)))
      crit
  in
  show "Fig 5a, alpha(P)=min(|P|,1) (1-OF)" (Lazy.force alpha_1of);
  show "Fig 5b, {p1},{p0,p2}+supersets" (Lazy.force alpha_5b)

let fig6 () =
  section "Figure 6: concurrency levels over Chr s";
  let show name alpha =
    pf "%s: histogram %a  [49 simplices total]@." name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
         (fun ppf (l, c) -> Format.fprintf ppf "level%d:%d" l c))
      (Concurrency.histogram alpha (Lazy.force chr1))
  in
  show "Fig 6a (1-OF)" (Lazy.force alpha_1of);
  show "Fig 6b (fig5b)" (Lazy.force alpha_5b)

let fig7 () =
  section "Figure 7: affine tasks R_A (n=3)";
  let r1 = Ra.complex (Lazy.force alpha_1of) ~n in
  let r5b = Ra.complex (Lazy.force alpha_5b) ~n in
  pf "Fig 7a R_A(1-OF): %d facets; equals Def 6 R_1-OF: %b@."
    (Complex.facet_count r1)
    (Complex.equal r1 (Rkof.complex ~n ~k:1));
  pf "Fig 7b R_A(fig5b): %d facets; pure: %b@." (Complex.facet_count r5b)
    (Complex.is_pure_of_dim 2 r5b);
  pf "@.Definition 9 variant disambiguation (vs Def 6 R_k-OF):@.";
  List.iter
    (fun k ->
      let alpha = Agreement.k_obstruction_free ~n ~k in
      let uni = Ra.complex ~variant:Ra.Lemma6_union alpha ~n in
      let int_ = Ra.complex ~variant:Ra.Def9_intersection alpha ~n in
      let kof = Rkof.complex ~n ~k in
      pf "  k=%d: |R_kOF|=%3d |RA_union|=%3d (eq %-5b) |RA_inter|=%3d (eq %b)@."
        k (Complex.facet_count kof) (Complex.facet_count uni)
        (Complex.equal uni kof) (Complex.facet_count int_)
        (Complex.equal int_ kof))
    [ 1; 2; 3 ];
  pf "[union variant matches Def 6 at k=1 and k=n; for 1<k<n Def 9 is a@.";
  pf " strict refinement — it excludes runs Algorithm 1 cannot produce]@."

let thm7 () =
  section "Theorem 7: Algorithm 1 solves R_A in the alpha-model";
  let trials = 300 in
  List.iter
    (fun (name, adv) ->
      let alpha = Agreement.of_adversary adv in
      let ra = Ra.complex alpha ~n in
      let live_ok = ref 0 and safe_ok = ref 0 and runs = ref 0 in
      for seed = 1 to trials do
        let parts =
          List.filter
            (fun p -> Agreement.eval alpha p >= 1)
            (Pset.nonempty_subsets (Pset.full n))
        in
        let participation =
          List.nth parts (seed * 7919 mod List.length parts)
        in
        let schedule = Schedule.alpha_model ~seed alpha ~participation in
        let report = Algorithm1.run alpha ~schedule in
        incr runs;
        let all_done =
          (not report.Exec.hit_step_budget)
          && Pset.for_all
               (fun i -> report.Exec.outcomes.(i) <> Exec.Running)
               participation
        in
        if all_done then incr live_ok;
        (match List.map snd (Exec.decided report) with
        | [] -> incr safe_ok
        | outputs ->
          if Complex.mem (Algorithm1.simplex_of_outputs outputs) ra then
            incr safe_ok)
      done;
      pf "%-12s liveness %d/%d  safety %d/%d@." name !live_ok !runs !safe_ok
        !runs)
    [
      ("1-OF", Adversary.k_obstruction_free ~n ~k:1);
      ("2-OF", Adversary.k_obstruction_free ~n ~k:2);
      ("1-res", Adversary.t_resilient ~n ~t:1);
      ("fig5b", Adversary.fig5b);
      ("wait-free", Adversary.wait_free n);
    ]

let mu () =
  section "Properties 9/10/12: the mu_Q leader map (exhaustive)";
  List.iter
    (fun (name, alpha) ->
      let ra = Ra.complex alpha ~n in
      let facets = Complex.facets ra in
      let qs = Pset.nonempty_subsets (Pset.full n) in
      let validity = ref true and agreement = ref true and robust = ref true in
      let checked = ref 0 in
      List.iter
        (fun f ->
          List.iter
            (fun q ->
              let theta = Simplex.restrict f q in
              if not (Simplex.is_empty theta) then begin
                incr checked;
                let leaders = Mu.leaders alpha ~q theta in
                if
                  Pset.cardinal leaders
                  > Agreement.eval alpha (Simplex.base_carrier theta)
                then agreement := false;
                List.iter
                  (fun v ->
                    let l = Mu.leader alpha ~q v in
                    if
                      (not (Pset.mem l q))
                      || not (Pset.mem l (Vertex.base_carrier v))
                    then validity := false;
                    let q' = Pset.inter q (Vertex.base_carrier v) in
                    if Mu.leader alpha ~q:q' v <> l then robust := false)
                  (Simplex.vertices theta)
              end)
            qs)
        facets;
      pf "%-10s %d (facet,Q) pairs: validity=%b agreement=%b robustness=%b@."
        name !checked !validity !agreement !robust)
    [ ("1-OF", Lazy.force alpha_1of); ("fig5b", Lazy.force alpha_5b) ]

let fact () =
  section "Theorems 15/16 (FACT): set-consensus solvability = setcon";
  let zoo =
    [
      ("1-OF", Adversary.k_obstruction_free ~n ~k:1);
      ("2-OF", Adversary.k_obstruction_free ~n ~k:2);
      ("1-res", Adversary.t_resilient ~n ~t:1);
      ("wait-free", Adversary.wait_free n);
      ("fig5b", Adversary.fig5b);
    ]
  in
  pf "%-10s %6s %28s %28s@." "adversary" "setcon" "k=setcon-1 (impossible?)"
    "k=setcon (mu-map certified?)";
  List.iter
    (fun (name, adv) ->
      let power = Setcon.setcon adv in
      let alpha = Agreement.of_adversary adv in
      let ra = affine_task_of_adversary adv in
      let impossible =
        if power <= 1 then "(trivial)"
        else if power >= n then
          (* wait-free: R_A = Chr² s is a Sperner UNSAT instance, out of
             reach for CSP search; the same claim is checked at one IS
             round instead. *)
          let t =
            Set_consensus.task_fixed ~n ~k:(power - 1) ~inputs:[ 0; 1; 2 ]
          in
          match
            Solver.solve
              ~protocol:
                (Affine_task.apply
                   (Affine_task.full_chr ~n ~ell:1)
                   t.Task.inputs)
              ~task:t
          with
          | Solver.Unsolvable -> "unsolvable at Chr^1 (OK)"
          | Solver.Solvable _ -> "SOLVED (!!)"
        else
          let t =
            Set_consensus.task_fixed ~n ~k:(power - 1) ~inputs:[ 0; 1; 2 ]
          in
          match
            Solver.solve
              ~protocol:(Affine_task.apply ra t.Task.inputs)
              ~task:t
          with
          | Solver.Unsolvable -> "unsolvable (OK)"
          | Solver.Solvable _ -> "SOLVED (!!)"
      in
      let possible =
        let t = Set_consensus.task_fixed ~n ~k:power ~inputs:[ 0; 1; 2 ] in
        let protocol = Affine_task.apply ra t.Task.inputs in
        let m = Mu_map.set_consensus_map ~alpha ~protocol in
        if Solver.check_map ~protocol ~task:t m then "certified (OK)"
        else "REJECTED (!!)"
      in
      pf "%-10s %6d %28s %28s@." name power impossible possible)
    zoo

let compact () =
  section "Compactness (Section 1): affine models vs adversarial models";
  let adv = Adversary.t_resilient ~n ~t:1 in
  pf "1-resilient n=3: the infinite solo run of p0 has correct set {p0},@.";
  pf "not a live set (%b) — yet every finite prefix extends to a compliant@."
    (Adversary.is_live (ps [ 0 ]) adv);
  pf "run (correct set %a is live: %b). The model is not compact.@." Pset.pp
    (Pset.full n)
    (Adversary.is_live (Pset.full n) adv);
  let ra = affine_task_of_adversary adv in
  let t = Set_consensus.task_fixed ~n ~k:2 ~inputs:[ 0; 1; 2 ] in
  (match
     Solver.solvable_by_iteration
       ~task_of_round:(fun r ->
         Affine_task.apply (Affine_task.iterate ra r) t.Task.inputs)
       ~task:t ~max_rounds:2
   with
  | Some ell ->
    pf "R_A* is compact: 2-set consensus solvable at finite ell = %d.@." ell
  | None -> pf "unexpected: no finite certificate found@.")

let fig7n4 () =
  section "Figure 7 cross-checks at n=4 (slow)";
  let n = 4 in
  List.iter
    (fun k ->
      let alpha = Agreement.k_obstruction_free ~n ~k in
      let ra = Ra.complex alpha ~n in
      let kof = Rkof.complex ~n ~k in
      pf "k=%d: |R_A|=%4d |R_kOF|=%4d equal=%-5b RA<=kof=%-5b kof<=RA=%b@." k
        (Complex.facet_count ra) (Complex.facet_count kof)
        (Complex.equal ra kof) (Complex.subcomplex ra kof)
        (Complex.subcomplex kof ra))
    [ 1; 2; 4 ];
  let a = Adversary.t_resilient ~n ~t:1 in
  let ra = Ra.complex (Agreement.of_adversary a) ~n in
  let rt = Rtres.complex ~n ~t:1 in
  pf "1-res: |R_A|=%d |R_tres|=%d equal=%b@." (Complex.facet_count ra)
    (Complex.facet_count rt) (Complex.equal ra rt);
  pf "[R_A = R_tres again at n=4; R_A vs R_kOF incomparable at k=2]@."

let scale () =
  section "Scaling: Algorithm 1 beyond enumerable complexes (n = 4..7)";
  (* R_A is too big to enumerate past n = 4, but Definition 9 is
     checkable per-simplex: the decided outputs form one facet and
     Ra.facet_ok evaluates the condition directly. *)
  List.iter
    (fun nn ->
      List.iter
        (fun (name, adv) ->
          let alpha = Agreement.of_adversary adv in
          let trials = 40 in
          let live_ok = ref 0 and safe_ok = ref 0 and full_runs = ref 0 in
          let steps = ref 0 in
          let t0 = Unix.gettimeofday () in
          for seed = 1 to trials do
            let schedule =
              Schedule.alpha_model ~seed alpha ~participation:(Pset.full nn)
            in
            let report = Algorithm1.run alpha ~schedule in
            steps := !steps + report.Exec.steps;
            if
              (not report.Exec.hit_step_budget)
              && Array.for_all (fun o -> o <> Exec.Running) report.Exec.outcomes
            then incr live_ok;
            let outputs = List.map snd (Exec.decided report) in
            if List.length outputs = nn then begin
              incr full_runs;
              if Ra.facet_ok alpha (Algorithm1.simplex_of_outputs outputs)
              then incr safe_ok
            end
          done;
          pf
            "n=%d %-10s liveness %d/%d  safety (full runs) %d/%d  avg steps %d  (%.2fs)@."
            nn name !live_ok trials !safe_ok !full_runs
            (!steps / trials)
            (Unix.gettimeofday () -. t0))
        [
          (Printf.sprintf "%d-res" (nn / 2), Adversary.t_resilient ~n:nn ~t:(nn / 2));
          (Printf.sprintf "%d-OF" (nn - 1), Adversary.k_obstruction_free ~n:nn ~k:(nn - 1));
        ])
    [ 4; 5; 6; 7 ];
  pf "[Def. 9 evaluated directly on the output simplex: no complex built]@."

let census () =
  section "Census: measuring the classes of Figure 2";
  List.iter
    (fun nn ->
      pf "n=%d (all %d adversaries): %a@." nn
        ((1 lsl ((1 lsl nn) - 1)) - 1)
        Census.pp (Census.exhaustive ~n:nn))
    [ 2; 3; 4 ];
  pf "[fair-only = fair but neither superset-closed nor symmetric: the@.";
  pf " region this paper's characterization covers and earlier ones missed]@.";
  pf "@.distinct agreement functions among fair adversaries (= distinct@.";
  pf "task-computability classes, by [24] Thm 1-2, = distinct R_A up to alpha):@.";
  List.iter
    (fun nn ->
      pf "  n=%d: %d classes@." nn (Census.fair_computability_classes ~n:nn))
    [ 2; 3; 4 ]

let approx () =
  section "Approximate agreement: minimal Chr-iteration depth (n=2)";
  pf "%8s %12s %22s@." "range" "minimal ell" "(3^ell >= range)";
  List.iter
    (fun range ->
      match Approximate_agreement.minimal_rounds ~n:2 ~range ~max_rounds:3 with
      | Some ell -> pf "%8d %12d %22b@." range ell ((3. ** float ell) >= float range)
      | None -> pf "%8d %12s@." range "> 3")
    [ 1; 2; 3; 4; 6; 9; 10 ];
  pf "[each Chr round trisects the reachable interval: depth = ceil(log3 range);@.";
  pf " unlike set consensus, solvability genuinely consumes iterations]@."

let ablation () =
  section "Ablations: the paper's mechanisms are load-bearing";
  (* 1. Algorithm 1 without the wait phase (lines 6-9). *)
  let adv = Adversary.k_obstruction_free ~n ~k:1 in
  let alpha = Agreement.of_adversary adv in
  let ra = Ra.complex alpha ~n in
  let count skip =
    let viol = ref 0 and runs = ref 0 in
    for seed = 1 to 200 do
      let schedule =
        Schedule.alpha_model ~seed alpha ~participation:(Pset.full n)
      in
      let report = Algorithm1.run ~skip_wait:skip alpha ~schedule in
      match List.map snd (Exec.decided report) with
      | [] -> ()
      | outputs ->
        incr runs;
        if not (Complex.mem (Algorithm1.simplex_of_outputs outputs) ra) then
          incr viol
    done;
    (!viol, !runs)
  in
  let v1, r1 = count false and v2, r2 = count true in
  pf "Algorithm 1 (1-OF): outputs escaping R_A — with wait phase %d/%d,@."
    v1 r1;
  pf "without wait phase %d/%d  [the wait discipline enforces Def. 9]@." v2 r2;
  (* 2. The §6.1 ⊥ mechanism in the R_A* memory simulation. *)
  let task = Ra.of_adversary (Adversary.t_resilient ~n ~t:1) in
  let s3f = s3 () in
  let run_ = Opart.make [ ps [ 0; 1 ]; ps [ 2 ] ] in
  let facet = Chr.facet_of_runs s3f [ run_; run_ ] in
  let picker = Affine_runner.fixed_picker [ facet ] in
  let protocol =
    Simulation.collect_inputs_protocol ~threshold:2 ~inputs:(fun pid -> pid)
  in
  let w = Simulation.run ~task ~picker ~max_rounds:60 protocol in
  let wo =
    Simulation.run ~respect_termination:false ~task ~picker ~max_rounds:60
      protocol
  in
  pf "@.R_A* memory simulation on the starving facet ({p0,p1},{p2} twice):@.";
  pf "with ⊥ termination: %d/3 decide in %d rounds; without: %d/3 in %d rounds@."
    (List.length w.Simulation.decisions)
    w.Simulation.rounds_used
    (List.length wo.Simulation.decisions)
    wo.Simulation.rounds_used;
  pf "[fast processes must advertise termination or slow writes never complete]@."

let link () =
  section "Section 8: link-connectivity of affine tasks";
  let entries =
    [
      ("Chr^2 s (wait-free)", Lazy.force chr2);
      ("R_1-res (Fig 1b)", Rtres.complex ~n ~t:1);
      ("R_A(0-res)", Ra.complex (Agreement.of_adversary (Adversary.t_resilient ~n ~t:0)) ~n);
      ("R_1-OF (Fig 7a)", Ra.complex (Lazy.force alpha_1of) ~n);
      ("R_2-OF", Ra.complex (Agreement.k_obstruction_free ~n ~k:2) ~n);
      ("R_A(fig5b) (Fig 7b)", Ra.complex (Lazy.force alpha_5b) ~n);
    ]
  in
  List.iter
    (fun (name, c) ->
      let bad = Link.disconnected_vertices c in
      pf "%-22s link-connected: %-5b (%d disconnected links)@." name
        (bad = []) (List.length bad))
    entries;
  pf "[paper §8: R_t-res is link-connected; R_1-OF (Fig 7a) is not —@.";
  pf " which is why the paper's proofs are algorithmic, not point-set]@."

let geom () =
  section "Geometric realization (Appendix A): volumes of affine tasks";
  pf "vol(Chr s) = %.6f  vol(Chr^2 s) = %.6f  [subdivisions tile |s|]@."
    (Geometry.total_volume (Lazy.force chr1))
    (Geometry.total_volume (Lazy.force chr2));
  pf "@.volume of |R_A| as fraction of |s| (vs facet fraction):@.";
  List.iter
    (fun (name, c) ->
      pf "  %-18s facets %3d/169 (%.3f)   volume %.4f@." name
        (Complex.facet_count c)
        (float_of_int (Complex.facet_count c) /. 169.0)
        (Geometry.total_volume c))
    [
      ("R_1-OF", Ra.complex (Lazy.force alpha_1of) ~n);
      ("R_2-OF", Ra.complex (Agreement.k_obstruction_free ~n ~k:2) ~n);
      ("R_1-res", Rtres.complex ~n ~t:1);
      ("R_A(0-res)", Ra.complex (Agreement.of_adversary (Adversary.t_resilient ~n ~t:0)) ~n);
      ("R_A(fig5b)", Ra.complex (Lazy.force alpha_5b) ~n);
      ("Chr^2 (wait-free)", Lazy.force chr2);
    ];
  pf "[volume weights runs by geometric measure; prohibited contention@.";
  pf " regions concentrate near the barycenter, so volume < facet share]@."

let explore_bench () =
  section "Model checking: systematic exploration throughput (lib/check)";
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let show name (stats : _ Explore.stats) dt =
    let total = stats.Explore.runs + stats.Explore.truncated + stats.Explore.pruned in
    pf "%-28s %a@." name Explore.pp_stats stats;
    pf "%-28s %.2fs, %.0f executions/s@." "" dt (float_of_int total /. dt)
  in
  let (st, parts), dt = time (fun () -> Harness.explore_immediate_snapshot ~n:2 ()) in
  show "IS n=2 (exhaustive)" st dt;
  pf "%-28s ordered partitions: %d/%d@." "" (List.length parts) (Opart.fubini 2);
  let (st, parts), dt = time (fun () -> Harness.explore_immediate_snapshot ~n:3 ()) in
  show "IS n=3 (exhaustive)" st dt;
  pf "%-28s ordered partitions: %d/%d@." "" (List.length parts) (Opart.fubini 3);
  let wf2 = Agreement.of_adversary (Adversary.wait_free 2) in
  let st, dt =
    time (fun () ->
        Harness.explore_algorithm1 ~alpha:wf2 ~participants:(Pset.full 2) ())
  in
  show "Alg1 n=2 wait-free" st dt;
  let oof2 = Agreement.k_obstruction_free ~n:2 ~k:1 in
  let st, dt =
    time (fun () ->
        Harness.explore_algorithm1 ~alpha:oof2 ~participants:(Pset.full 2)
          ~max_depth:48 ())
  in
  show "Alg1 n=2 1-OF (depth 48)" st dt;
  let wf3 = Agreement.of_adversary (Adversary.wait_free 3) in
  let st, dt =
    time (fun () ->
        Harness.explore_algorithm1 ~alpha:wf3 ~participants:(Pset.full 3)
          ~max_runs:30_000 ())
  in
  show "Alg1 n=3 wait-free (30k)" st dt;
  pf "[sleep sets prune commuting interleavings; truncation bounds wait loops]@."

(* ------------------------------------------------------------------ *)
(* Bechamel performance micro-benchmarks                               *)
(* ------------------------------------------------------------------ *)

let perf () =
  section "Performance micro-benchmarks (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let alpha5b = Lazy.force alpha_5b in
  let ra_complex = Ra.complex alpha5b ~n in
  let ra_task = Affine_task.make ~ell:2 ra_complex in
  let tests =
    [
      Test.make ~name:"Chr s (n=3)"
        (Staged.stage (fun () -> Chr.subdivide (Chr.standard 3)));
      Test.make ~name:"Chr^2 s (n=3)"
        (Staged.stage (fun () -> Chr.iterate 2 (Chr.standard 3)));
      Test.make ~name:"Chr s (n=4)"
        (Staged.stage (fun () -> Chr.subdivide (Chr.standard 4)));
      Test.make ~name:"setcon fig5b"
        (Staged.stage (fun () -> Setcon.setcon Adversary.fig5b));
      Test.make ~name:"setcon 3-res (n=6)"
        (Staged.stage (fun () ->
             Setcon.setcon (Adversary.t_resilient ~n:6 ~t:3)));
      Test.make ~name:"csize 3-res (n=6)"
        (Staged.stage (fun () ->
             Hitting.csize
               (Adversary.live_sets (Adversary.t_resilient ~n:6 ~t:3))));
      Test.make ~name:"fairness check fig5b"
        (Staged.stage (fun () -> Fairness.is_fair Adversary.fig5b));
      Test.make ~name:"R_A(fig5b) construction (n=3)"
        (Staged.stage (fun () -> Ra.complex alpha5b ~n:3));
      Test.make ~name:"Algorithm1 run (n=3, 1-res)"
        (let alpha = Agreement.of_adversary (Adversary.t_resilient ~n:3 ~t:1) in
         let seed = ref 0 in
         Staged.stage (fun () ->
             incr seed;
             let schedule =
               Schedule.alpha_model ~seed:!seed alpha
                 ~participation:(Pset.full 3)
             in
             ignore (Algorithm1.run alpha ~schedule)));
      Test.make ~name:"mu leader (fig5b)"
        (let f = List.hd (Complex.facets ra_complex) in
         let v = List.hd (Simplex.vertices f) in
         Staged.stage (fun () ->
             Mu.leader alpha5b ~q:(Pset.full 3) v));
      Test.make ~name:"adaptive consensus round (fig5b)"
        (let seed = ref 0 in
         Staged.stage (fun () ->
             incr seed;
             Adaptive_consensus.solve ~task:ra_task ~alpha:alpha5b
               ~q:(Pset.full 3)
               ~proposals:(fun pid -> pid)
               ~picker:(Affine_runner.random_picker ~seed:!seed)
               ()));
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.3) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> pf "%-40s %12.1f ns/run@." name est
          | _ -> pf "%-40s (no estimate)@." name)
        ols)
    tests

(* ------------------------------------------------------------------ *)
(* JSON baseline: the wall-clock numbers tracked across PRs            *)
(* ------------------------------------------------------------------ *)

let bench_json_file = "BENCH_topology.json"

(* The timed entries live in lib/campaign/bench_entries.ml, shared
   with [fact bench --filter]; this path runs them all and owns the
   baseline file plus the cache/domain trailer. *)
let bench_json () =
  section (Printf.sprintf "JSON bench baseline -> %s" bench_json_file);
  let results = Bench_entries.run () in
  List.iter (fun r -> pf "%s@." (Bench_entries.line r)) results;
  let entries = List.map Bench_entries.json_line results in
  let cache_lines =
    List.map
      (fun (name, s) ->
        pf "cache %-24s hits=%d misses=%d evictions=%d size=%d cap=%d@." name
          s.Cache.hits s.Cache.misses s.Cache.evictions s.Cache.size
          s.Cache.cap;
        Printf.sprintf
          "  {\"name\": \"%s\", \"hits\": %d, \"misses\": %d, \"evictions\": \
           %d, \"size\": %d, \"cap\": %d}"
          name s.Cache.hits s.Cache.misses s.Cache.evictions s.Cache.size
          s.Cache.cap)
      (Cache.all_stats ())
  in
  let oc = open_out bench_json_file in
  output_string oc "{\"entries\": [\n";
  output_string oc (String.concat ",\n" entries);
  output_string oc "\n], \"caches\": [\n";
  output_string oc (String.concat ",\n" cache_lines);
  output_string oc
    (Printf.sprintf "\n], \"domains\": %d, \"domain_spawns\": %d}\n"
       (Parallel.default_domains ()) (Parallel.domain_spawns ()));
  close_out oc;
  pf "wrote %s (domains=%d, domain spawns=%d)@." bench_json_file
    (Parallel.default_domains ())
    (Parallel.domain_spawns ())

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("fig1a", fig1a);
    ("fig1b", fig1b);
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("thm7", thm7);
    ("mu", mu);
    ("fact", fact);
    ("compact", compact);
    ("ablation", ablation);
    ("census", census);
    ("fig7n4", fig7n4);
    ("scale", scale);
    ("approx", approx);
    ("explore", explore_bench);
    ("link", link);
    ("geom", geom);
    ("perf", perf);
  ]

let () =
  (* Flags: [--domains N] sets the Parallel fan-out (like FACT_DOMAINS),
     [--json] writes the BENCH_topology.json baseline, [--filter NAME]
     (repeatable) runs only the timed entries whose name contains one
     of the NAMEs (no baseline file). The remaining arguments are
     section names. *)
  let rec parse args names json filters =
    match args with
    | [] -> (List.rev names, json, List.rev filters)
    | "--json" :: rest -> parse rest names true filters
    | "--filter" :: f :: rest -> parse rest names json (f :: filters)
    | [ "--filter" ] ->
      pf "--filter: missing value@.";
      exit 2
    | "--domains" :: d :: rest ->
      (match int_of_string_opt d with
      | Some d -> Parallel.set_default_domains d
      | None ->
        pf "--domains: not an integer: %s@." d;
        exit 2);
      parse rest names json filters
    | [ "--domains" ] ->
      pf "--domains: missing value@.";
      exit 2
    | name :: rest -> parse rest (name :: names) json filters
  in
  let names, json, filters =
    parse (List.tl (Array.to_list Sys.argv)) [] false []
  in
  match filters with
  | _ :: _ -> (
    (* an unknown --filter is a usage error, not a crash: name the
       valid entries and exit like the CLI does *)
    match Bench_entries.run ~filters () with
    | results -> List.iter (fun r -> pf "%s@." (Bench_entries.line r)) results
    | exception Fact_error.Error e ->
      Printf.eprintf "bench: %s\n%!" (Fact_error.to_string e);
      exit (Fact_error.exit_code e))
  | [] ->
  if json then bench_json ()
  else
    let requested = if names = [] then List.map fst sections else names in
    List.iter
      (fun name ->
        match List.assoc_opt name sections with
        | Some f -> f ()
        | None ->
          pf "unknown section %s (available: %s)@." name
            (String.concat " " (List.map fst sections)))
      requested
