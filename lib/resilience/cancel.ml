type active = {
  deadline : float option; (* absolute, Unix.gettimeofday *)
  budget_s : float;
  trip_after : int option;
  polls : int Atomic.t;
  triggered : bool Atomic.t;
}

type t = Never | Active of active

let never = Never

let create ?deadline_s ?trip_after () =
  (match deadline_s with
  | Some d when d <= 0. ->
    Fact_error.precondition ~fn:"Cancel.create" "deadline_s must be positive"
  | _ -> ());
  (match trip_after with
  | Some k when k < 0 ->
    Fact_error.precondition ~fn:"Cancel.create" "trip_after must be >= 0"
  | _ -> ());
  Active
    {
      deadline = Option.map (fun d -> Unix.gettimeofday () +. d) deadline_s;
      budget_s = Option.value deadline_s ~default:0.;
      trip_after;
      polls = Atomic.make 0;
      triggered = Atomic.make false;
    }

let cancel = function
  | Never -> ()
  | Active a -> Atomic.set a.triggered true

let deadline_passed a =
  match a.deadline with
  | Some d -> Unix.gettimeofday () > d
  | None -> false

let cancelled = function
  | Never -> false
  | Active a ->
    Atomic.get a.triggered
    || (match a.trip_after with
       | Some k -> Atomic.get a.polls >= k
       | None -> false)
    || deadline_passed a

let check ~where = function
  | Never -> ()
  | Active a ->
    if Atomic.get a.triggered then
      Fact_error.raise_error (Cancelled { where });
    (match a.trip_after with
    | Some k ->
      if Atomic.fetch_and_add a.polls 1 >= k then begin
        Atomic.set a.triggered true;
        Fact_error.raise_error (Cancelled { where })
      end
    | None -> ());
    if deadline_passed a then
      Fact_error.raise_error
        (Deadline_exceeded { where; budget_s = a.budget_s })

(* The ambient token, one slot per domain. A process-wide slot would
   make concurrent clients of the persistent domain pool trample each
   other's scopes; domain-local storage keeps [with_token] scopes
   independent, and the pool propagates tokens explicitly — it
   captures the submitter's ambient token at job submission and
   installs it around the job on whichever domain runs it. *)
let ambient : t Domain.DLS.key = Domain.DLS.new_key (fun () -> Never)

let with_token t f =
  let old = Domain.DLS.get ambient in
  Domain.DLS.set ambient t;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient old) f

let current () = Domain.DLS.get ambient

let poll ~where =
  match Domain.DLS.get ambient with
  | Never -> ()
  | t -> check ~where t
