(** Typed failure taxonomy for the FACT runtime.

    Every long-running entry point of the library reports failures
    through {!exception-Error} carrying one of the five classes below,
    instead of bare [Invalid_argument]/[Failure] backtraces escaping to
    the CLI. Each class maps to a distinct, documented process exit
    code (see {!exit_code}), so scripts driving [fact] can react to
    {e why} a command failed, not just that it did.

    - [Precondition]: the caller violated a documented API
      precondition ([fn] is the offending entry point). Replaces
      [invalid_arg] at library boundaries.
    - [Deadline_exceeded]: a {!Cancel} token's deadline elapsed while
      the computation was polling cooperatively.
    - [Cancelled]: a {!Cancel} token was triggered externally.
    - [Worker_failure]: a parallel fan-out lost one or more worker
      chunks and the sequential retry failed too; the payload
      aggregates every per-chunk failure.
    - [Resource_limit]: a configured resource bound was exceeded
      (e.g. a cache invariant check tripped, or a frontier outgrew a
      hard cap).
    - [Unavailable]: a service dependency is (possibly transiently)
      unreachable — a socket that cannot be bound because the previous
      owner's address lingers, a server that refuses connections, a
      shard whose restart budget is exhausted. Unlike [Precondition]
      this is {e retryable}: supervisors and clients respond with
      {!Backoff} and failover, not by giving up. *)

type t =
  | Precondition of { fn : string; what : string }
  | Deadline_exceeded of { where : string; budget_s : float }
  | Cancelled of { where : string }
  | Worker_failure of { fn : string; failed : int; chunks : int; first : string }
  | Resource_limit of { what : string; limit : int; got : int }
  | Unavailable of { what : string }

exception Error of t

val raise_error : t -> 'a
val precondition : fn:string -> string -> 'a
(** [precondition ~fn msg] raises [Error (Precondition _)] — the typed
    replacement for [invalid_arg (fn ^ ": " ^ msg)]. *)

val unavailable : string -> 'a
(** Raises [Error (Unavailable _)]. *)

val is_unavailable : exn -> bool
(** True for [Error (Unavailable _)]: failures a retry/backoff layer
    may absorb instead of propagating. *)

val is_cancellation : exn -> bool
(** True for [Error (Cancelled _ | Deadline_exceeded _)]: failures that
    mean "stop asked for", not "computation broken" — fan-out layers
    propagate these directly instead of wrapping them in
    [Worker_failure]. *)

val exit_code : t -> int
(** Documented process exit codes: [Precondition] 2,
    [Deadline_exceeded] 3, [Cancelled] 4, [Worker_failure] 5,
    [Resource_limit] 6, [Unavailable] 7. (0 is success; 1 is reserved
    for property violations / counterexamples.) *)

val to_string : t -> string
(** One-line rendering, ["fact_error(<class>): ..."]. Also installed as
    the [Printexc] printer for {!exception-Error}. *)

val pp : Format.formatter -> t -> unit
