type policy = { base_ms : float; multiplier : float; max_ms : float }

let default = { base_ms = 50.; multiplier = 2.; max_ms = 2_000. }
let supervisor = { base_ms = 100.; multiplier = 2.; max_ms = 5_000. }

let make ?(base_ms = 50.) ?(multiplier = 2.) ?(max_ms = 2_000.) () =
  if base_ms < 0. then
    Fact_error.precondition ~fn:"Backoff.make" "base_ms must be >= 0";
  if multiplier < 1. then
    Fact_error.precondition ~fn:"Backoff.make" "multiplier must be >= 1";
  if max_ms < base_ms then
    Fact_error.precondition ~fn:"Backoff.make" "max_ms must be >= base_ms";
  { base_ms; multiplier; max_ms }

let delay_ms p ~attempt =
  let attempt = max 0 attempt in
  let rec go d k =
    if k <= 0 || d >= p.max_ms then d else go (d *. p.multiplier) (k - 1)
  in
  Float.min p.max_ms (go p.base_ms attempt)

let schedule p ~attempts =
  List.init (max 0 attempts) (fun attempt -> delay_ms p ~attempt)

let sleep p ~attempt = Thread.delay (delay_ms p ~attempt /. 1000.)

let sleep_interruptible p ~attempt ~stop =
  let deadline = Unix.gettimeofday () +. (delay_ms p ~attempt /. 1000.) in
  let rec wait () =
    if stop () then ()
    else
      let left = deadline -. Unix.gettimeofday () in
      if left > 0. then begin
        Thread.delay (Float.min 0.025 left);
        wait ()
      end
  in
  wait ()
