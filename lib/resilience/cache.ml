type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  cap : int;
}

let env_cap =
  match Sys.getenv_opt "FACT_CACHE_CAP" with
  | Some s -> ( try int_of_string (String.trim s) with _ -> 65536)
  | None -> 65536

let default = Atomic.make env_cap
let default_cap () = Atomic.get default
let set_default_cap c = Atomic.set default c

let env_check =
  match Sys.getenv_opt "FACT_CACHE_CHECK" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let checking = Atomic.make env_check
let set_check b = Atomic.set checking b

(* Evicted entries parked for the recompute-equality check are bounded
   too: a runaway shadow would defeat the point of capping. *)
let shadow_cap = 4096

(* Registry of every live cache, as closures so instantiations of the
   functor below can all be driven together. *)
type handle = {
  name : string;
  get_stats : unit -> stats;
  do_clear : unit -> unit;
  do_force_evict : unit -> unit;
  do_reset : unit -> unit;
}

let registry_lock = Mutex.create ()
let registry : handle list ref = ref []

let register h =
  Mutex.lock registry_lock;
  registry := h :: !registry;
  Mutex.unlock registry_lock

let with_registry f =
  Mutex.lock registry_lock;
  let hs = !registry in
  Mutex.unlock registry_lock;
  f hs

let all_stats () =
  with_registry (fun hs ->
      List.sort compare (List.map (fun h -> (h.name, h.get_stats ())) hs))

let clear_all () = with_registry (List.iter (fun h -> h.do_clear ()))
let force_evict_all () = with_registry (List.iter (fun h -> h.do_force_evict ()))
let reset_counters () = with_registry (List.iter (fun h -> h.do_reset ()))

module Make (K : Hashtbl.HashedType) = struct
  module H = Hashtbl.Make (K)

  type 'a entry = { value : 'a; mutable used : int }

  type 'a t = {
    name : string;
    cap : int option; (* None: follow the process default *)
    equal : 'a -> 'a -> bool;
    on_evict : (K.t -> 'a -> unit) option;
    lock : Mutex.t;
    tbl : 'a entry H.t;
    shadow : 'a H.t; (* evicted entries awaiting the recompute check *)
    mutable tick : int;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  let effective_cap t =
    match t.cap with Some c -> c | None -> default_cap ()

  (* Called with [t.lock] held. Evict the least-recently-used entries
     down to [target], parking them in the shadow table when checking
     is on. Returns the victims so the caller can run the [on_evict]
     hook {e outside} the lock (the hook may do I/O or re-enter the
     cache). *)
  let evict_to t target =
    let entries = ref [] in
    H.iter (fun k e -> entries := (k, e) :: !entries) t.tbl;
    let sorted =
      List.sort (fun (_, a) (_, b) -> compare a.used b.used) !entries
    in
    let excess = List.length sorted - target in
    let victims = List.filteri (fun i _ -> i < excess) sorted in
    List.iter
      (fun (k, e) ->
        H.remove t.tbl k;
        t.evictions <- t.evictions + 1;
        if Atomic.get checking then begin
          if H.length t.shadow >= shadow_cap then H.reset t.shadow;
          H.replace t.shadow k e.value
        end)
      victims;
    victims

  let notify_evicted t victims =
    match t.on_evict with
    | None -> ()
    | Some hook -> List.iter (fun (k, e) -> hook k e.value) victims

  let create ~name ?cap ?on_evict ~equal () =
    let t =
      {
        name;
        cap;
        equal;
        on_evict;
        lock = Mutex.create ();
        tbl = H.create 256;
        shadow = H.create 16;
        tick = 0;
        hits = 0;
        misses = 0;
        evictions = 0;
      }
    in
    let locked f =
      Mutex.lock t.lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f
    in
    register
      {
        name;
        get_stats =
          (fun () ->
            locked (fun () ->
                {
                  hits = t.hits;
                  misses = t.misses;
                  evictions = t.evictions;
                  size = H.length t.tbl;
                  cap = effective_cap t;
                }));
        do_clear =
          (fun () ->
            locked (fun () ->
                H.reset t.tbl;
                H.reset t.shadow));
        do_force_evict =
          (fun () -> notify_evicted t (locked (fun () -> evict_to t 0)));
        do_reset =
          (fun () ->
            locked (fun () ->
                t.hits <- 0;
                t.misses <- 0;
                t.evictions <- 0));
      };
    t

  let find_or_add t key compute =
    Mutex.lock t.lock;
    t.tick <- t.tick + 1;
    let tick = t.tick in
    match H.find_opt t.tbl key with
    | Some e ->
      e.used <- tick;
      t.hits <- t.hits + 1;
      Mutex.unlock t.lock;
      e.value
    | None ->
      t.misses <- t.misses + 1;
      Mutex.unlock t.lock;
      (* compute outside the lock: can be expensive, may recurse
         through other caches; a racing duplicate is dropped below. *)
      let v = compute key in
      Mutex.lock t.lock;
      let stale =
        if Atomic.get checking then H.find_opt t.shadow key else None
      in
      let victims =
        match H.find_opt t.tbl key with
        | Some _ -> [] (* racing insert won; both values are equal *)
        | None ->
          H.replace t.tbl key { value = v; used = tick };
          H.remove t.shadow key;
          let cap = effective_cap t in
          if cap > 0 && H.length t.tbl > cap then
            evict_to t (max 1 (cap * 3 / 4))
          else []
      in
      Mutex.unlock t.lock;
      notify_evicted t victims;
      (match stale with
      | Some old when not (t.equal old v) ->
        Fact_error.precondition
          ~fn:(Printf.sprintf "Cache(%s)" t.name)
          "evicted entry recomputed to a different value"
      | Some _ | None -> ());
      v

  (* Import path: insert a value obtained elsewhere (e.g. a persisted
     store) without touching the hit/miss counters. An existing entry
     wins — the resident value is at least as fresh. *)
  let add t key v =
    Mutex.lock t.lock;
    t.tick <- t.tick + 1;
    let victims =
      match H.find_opt t.tbl key with
      | Some _ -> []
      | None ->
        H.replace t.tbl key { value = v; used = t.tick };
        let cap = effective_cap t in
        if cap > 0 && H.length t.tbl > cap then
          evict_to t (max 1 (cap * 3 / 4))
        else []
    in
    Mutex.unlock t.lock;
    notify_evicted t victims

  let find_opt t key =
    Mutex.lock t.lock;
    t.tick <- t.tick + 1;
    let r =
      match H.find_opt t.tbl key with
      | Some e ->
        e.used <- t.tick;
        t.hits <- t.hits + 1;
        Some e.value
      | None ->
        t.misses <- t.misses + 1;
        None
    in
    Mutex.unlock t.lock;
    r

  let stats t =
    Mutex.lock t.lock;
    let s =
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        size = H.length t.tbl;
        cap = effective_cap t;
      }
    in
    Mutex.unlock t.lock;
    s

  let clear t =
    Mutex.lock t.lock;
    H.reset t.tbl;
    H.reset t.shadow;
    Mutex.unlock t.lock

  let force_evict t =
    Mutex.lock t.lock;
    let victims = evict_to t 0 in
    Mutex.unlock t.lock;
    notify_evicted t victims
end
