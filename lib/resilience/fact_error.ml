type t =
  | Precondition of { fn : string; what : string }
  | Deadline_exceeded of { where : string; budget_s : float }
  | Cancelled of { where : string }
  | Worker_failure of { fn : string; failed : int; chunks : int; first : string }
  | Resource_limit of { what : string; limit : int; got : int }
  | Unavailable of { what : string }

exception Error of t

let raise_error e = raise (Error e)
let precondition ~fn what = raise_error (Precondition { fn; what })
let unavailable what = raise_error (Unavailable { what })

let is_unavailable = function Error (Unavailable _) -> true | _ -> false

let is_cancellation = function
  | Error (Cancelled _ | Deadline_exceeded _) -> true
  | _ -> false

let exit_code = function
  | Precondition _ -> 2
  | Deadline_exceeded _ -> 3
  | Cancelled _ -> 4
  | Worker_failure _ -> 5
  | Resource_limit _ -> 6
  | Unavailable _ -> 7

let to_string = function
  | Precondition { fn; what } ->
    Printf.sprintf "fact_error(precondition): %s: %s" fn what
  | Deadline_exceeded { where; budget_s } ->
    Printf.sprintf "fact_error(deadline-exceeded): %s: budget %.3fs elapsed"
      where budget_s
  | Cancelled { where } -> Printf.sprintf "fact_error(cancelled): %s" where
  | Worker_failure { fn; failed; chunks; first } ->
    Printf.sprintf "fact_error(worker-failure): %s: %d/%d chunks failed; first: %s"
      fn failed chunks first
  | Resource_limit { what; limit; got } ->
    Printf.sprintf "fact_error(resource-limit): %s: got %d, limit %d" what got
      limit
  | Unavailable { what } -> Printf.sprintf "fact_error(unavailable): %s" what

let pp ppf e = Format.pp_print_string ppf (to_string e)

let () =
  Printexc.register_printer (function
    | Error e -> Some (to_string e)
    | _ -> None)
