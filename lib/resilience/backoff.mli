(** Deterministic exponential-backoff policies.

    A policy describes how long to wait before retry attempt [k]:
    [base_ms * multiplier^k], capped at [max_ms]. There is no jitter —
    the repository's bit-identical-results discipline extends to
    retry schedules, so a supervisor restarting a crashed shard and a
    client re-dialling a server both produce reproducible timelines.

    The policy is plain data; {!delay_ms} is a pure function of
    [(policy, attempt)], so tests can assert whole schedules without
    sleeping. *)

type policy = {
  base_ms : float;  (** delay before the first retry (attempt 0) *)
  multiplier : float;  (** growth factor per attempt, >= 1.0 *)
  max_ms : float;  (** hard cap on any single delay *)
}

val default : policy
(** 50 ms base, doubling, capped at 2 s — the client/failover default. *)

val supervisor : policy
(** 100 ms base, doubling, capped at 5 s — the shard-restart default. *)

val make : ?base_ms:float -> ?multiplier:float -> ?max_ms:float -> unit -> policy
(** Raises a typed [Precondition] {!Fact_error} if [base_ms < 0],
    [multiplier < 1.0], or [max_ms < base_ms]. *)

val delay_ms : policy -> attempt:int -> float
(** Delay before retry number [attempt] (0-based). Pure; negative
    attempts are treated as 0. Overflow-safe: once the running product
    reaches [max_ms] it stays there. *)

val schedule : policy -> attempts:int -> float list
(** [delay_ms] over [0 .. attempts-1] — the whole retry timeline. *)

val sleep : policy -> attempt:int -> unit
(** [Thread.delay (delay_ms policy ~attempt / 1000.)]. *)

val sleep_interruptible : policy -> attempt:int -> stop:(unit -> bool) -> unit
(** Like {!sleep}, but wakes up every 25 ms to poll [stop]; returns
    early once it holds. Supervisors use this so a cluster shutdown
    never waits out a pending restart delay. *)
