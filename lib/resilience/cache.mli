(** Bounded, instrumented memo tables.

    Every long-lived memo table in the pipeline (Chr subdivisions,
    views, critical-simplex analyses, per-facet R_A verdicts) is one
    of these: a mutex-protected hash table with an entry cap,
    LRU-ish eviction, and hit/miss/eviction counters. Because every
    cached computation is pure, eviction is always safe — a later miss
    recomputes the identical value — so results are independent of the
    cap; the cap only trades memory for recomputation.

    {b Capacity.} Each cache takes an optional per-cache [cap];
    otherwise the process default applies — the [FACT_CACHE_CAP]
    environment variable (read once at startup), overridable with
    {!set_default_cap}, initially 65536 entries. A cap [<= 0] means
    unbounded. The default is re-read on every insertion, so
    [set_default_cap] retroactively bounds existing caches.

    {b Eviction.} When an insertion pushes a cache past its cap, the
    least-recently-used quarter (by access tick) is evicted in one
    amortized sweep, leaving the cache at 3/4 cap.

    {b Invariant checking.} With checking enabled ([FACT_CACHE_CHECK=1]
    or {!set_check}), evicted entries are parked in a bounded shadow
    table; when an evicted key is later recomputed, the new value is
    compared against the evicted one with the cache's [equal] and a
    mismatch raises a [Precondition] {!Fact_error} — the chaos suite
    runs with this on to prove eviction never changes results.

    All caches self-register by name for fleet-wide operations:
    {!all_stats} (bench counters), {!clear_all}, {!force_evict_all}
    (chaos fault injection), {!reset_counters}. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;  (** current entries *)
  cap : int;  (** effective cap at reading time; <= 0 = unbounded *)
}

val default_cap : unit -> int
val set_default_cap : int -> unit
(** [<= 0] = unbounded. Initial value: [FACT_CACHE_CAP] or 65536. *)

val set_check : bool -> unit
(** Enable/disable the eviction invariant check (default:
    [FACT_CACHE_CHECK=1] in the environment). *)

module Make (K : Hashtbl.HashedType) : sig
  type 'a t

  val create :
    name:string ->
    ?cap:int ->
    ?on_evict:(K.t -> 'a -> unit) ->
    equal:('a -> 'a -> bool) ->
    unit ->
    'a t
  (** Registers the cache under [name] (names should be unique;
      duplicates only blur the aggregated stats). [equal] is used by
      the eviction invariant check — pass semantic equality
      (e.g. [Complex.equal]), not [(=)], for values containing caches
      or closures. [on_evict] is called once per evicted entry,
      {e outside} the cache lock (so it may do I/O or re-enter the
      cache) — the [fact serve] result store uses it to persist
      evictions to disk. *)

  val find_or_add : 'a t -> K.t -> (K.t -> 'a) -> 'a
  (** Memoized call: a hit refreshes the entry's LRU tick; a miss
      computes {e outside} the cache lock (recursive calls through
      other caches are fine), then inserts, evicting if over cap. On a
      racing duplicate insert the first value wins. Safe to call from
      {!Fact_topology.Parallel} worker domains. *)

  val add : 'a t -> K.t -> 'a -> unit
  (** Import path: insert a value computed elsewhere (e.g. read back
      from a persisted store on boot) without counting a hit or a
      miss. A resident entry for [key] wins; over-cap inserts evict as
      usual. *)

  val find_opt : 'a t -> K.t -> 'a option
  (** Probe without computing: counts a hit (and refreshes the LRU
      tick) or a miss. *)

  val stats : 'a t -> stats
  val clear : 'a t -> unit
  (** Drop all entries and the shadow table (counters are kept). *)

  val force_evict : 'a t -> unit
  (** Evict every entry as if the cap had been hit (entries go to the
      shadow table when checking is on) — the chaos suite's forced
      eviction fault. *)
end

val all_stats : unit -> (string * stats) list
(** Per-cache stats, sorted by name. *)

val clear_all : unit -> unit
val force_evict_all : unit -> unit
val reset_counters : unit -> unit
