(** Cooperative cancellation tokens.

    A token carries an optional wall-clock deadline, an external
    trigger, and (for deterministic fault injection) an optional
    poll-count trip wire. Long-running library loops poll the
    {e ambient} token — installed for a dynamic scope with
    {!with_token} — once per unit of work ({!Fact_topology.Chr}
    subdivision facets, the R_A facet filter, [Critical.analyze]
    calls, explorer executions), so cancellation latency is one work
    item, never a whole pipeline stage.

    Polling the default {!never} token is one [Atomic.get] plus an
    integer test — cheap enough for per-facet granularity.

    The ambient slot is domain-local: each domain has its own
    [with_token] scope stack, so scopes on concurrent domains never
    race on restore. Propagation into the {!Fact_topology.Parallel}
    domain pool is explicit — the pool captures the submitter's
    ambient token when work is submitted and installs it around each
    job on whichever worker domain (or helping caller) runs it, so
    cancelling the submitter's token trips every worker processing its
    jobs. *)

type t

val never : t
(** The inert token: polling it never raises. *)

val create : ?deadline_s:float -> ?trip_after:int -> unit -> t
(** A fresh token. [deadline_s] is a budget in seconds from now
    (wall clock); once elapsed, checks raise
    [Fact_error.Deadline_exceeded]. [trip_after] trips the token after
    that many successful polls — deterministic mid-pipeline
    cancellation for the chaos suite. Raises a [Precondition] error if
    [deadline_s <= 0] or [trip_after < 0]. *)

val cancel : t -> unit
(** Trigger externally; subsequent checks raise
    [Fact_error.Cancelled]. Idempotent. [cancel never] is a no-op. *)

val cancelled : t -> bool
(** Non-raising probe (trigger, trip wire, or elapsed deadline). Does
    not advance the trip-wire poll count. *)

val check : where:string -> t -> unit
(** Poll the token: raises [Fact_error.Error (Cancelled _)] if
    triggered or tripped, [Fact_error.Error (Deadline_exceeded _)] if
    the deadline elapsed, and returns unit otherwise. [where] names
    the cancellation point in the error. *)

val with_token : t -> (unit -> 'a) -> 'a
(** [with_token t f] installs [t] as the ambient token for the
    dynamic extent of [f] (restored on return or raise). *)

val current : unit -> t
(** The ambient token ({!never} outside any [with_token]). *)

val poll : where:string -> unit
(** [check ~where (current ())] — the one-liner library loops call. *)
