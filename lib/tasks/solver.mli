(** FACT solvability decisions: existence of a chromatic simplicial map
    [φ : K → O] carried by ∆ (Theorem 16 / the classical ACT).

    [K] is a protocol complex — [Chr^ℓ(I)] or [R_A^ℓ(I)], built with
    {!Fact_affine.Affine_task.apply} — and the map must send every
    facet [F ∈ K] to a simplex of [∆(carrier(F, I))]. The decision is
    by backtracking with forward pruning: partial images of every facet
    must stay inside the corresponding ∆. Positive answers return the
    map; negative answers are exhaustive for the given [K] (i.e. for
    the given number of iterations). *)

open Fact_topology

type assignment = (Vertex.t * Vertex.t) list
(** The simplicial map as an association list: protocol vertex →
    output vertex (same color). *)

type verdict =
  | Solvable of assignment
  | Unsolvable

val solve : protocol:Complex.t -> task:Task.t -> verdict
(** Decides the existence of a chromatic simplicial map carried by ∆.
    Raises a [Precondition] {!Fact_resilience.Fact_error} if the
    protocol complex is empty. *)

val check_map : protocol:Complex.t -> task:Task.t -> assignment -> bool
(** Validates a candidate map: chromatic, simplicial, and carried by ∆
    on every facet. Used to certify [Solvable] verdicts and externally
    constructed maps (e.g. the µ-based ones). *)

val solvable_by_iteration :
  task_of_round:(int -> Complex.t) -> task:Task.t -> max_rounds:int ->
  int option
(** Searches increasing iteration counts [1 … max_rounds], returning
    the first round count whose protocol complex admits a map, if
    any. *)
