open Fact_topology

let distinct_values simplex =
  Simplex.vertices simplex
  |> List.map Vertex.value
  |> List.sort_uniq Stdlib.compare

let outputs_complex ~n ~k ~values =
  (* Facets: full-dimensional chromatic assignments with <= k distinct
     values. Smaller simplices arise as their faces. *)
  let rec assignments i =
    if i = n then [ [] ]
    else
      let rest = assignments (i + 1) in
      List.concat_map
        (fun v -> List.map (fun a -> Vertex.input i v :: a) rest)
        values
  in
  let facets =
    assignments 0
    |> List.map Simplex.make
    |> List.filter (fun s -> List.length (distinct_values s) <= k)
  in
  Complex.of_facets ~n facets

(* ∆(ρ): every chromatic assignment of proposed values to the
   participants χ(ρ) with at most k distinct values (faces included by
   closure). *)
let delta ~n ~k rho =
  let procs = Pset.to_list (Simplex.colors rho) in
  let proposed = distinct_values rho in
  let rec assignments = function
    | [] -> [ [] ]
    | p :: rest ->
      let tails = assignments rest in
      List.concat_map
        (fun v -> List.map (fun t -> Vertex.input p v :: t) tails)
        proposed
  in
  let facets =
    assignments procs
    |> List.map Simplex.make
    |> List.filter (fun s -> List.length (distinct_values s) <= k)
  in
  Complex.of_facets ~n facets

let task ~n ~k ~values =
  if List.length values < k + 1 then
    invalid_arg "Set_consensus.task: need |V| >= k + 1";
  let outputs = outputs_complex ~n ~k ~values in
  Task.make
    ~name:(Printf.sprintf "%d-set-consensus" k)
    ~inputs:(Task.full_inputs ~n ~values)
    ~outputs
    ~delta:(delta ~n ~k)

let task_fixed ~n ~k ~inputs =
  if List.length inputs <> n then
    invalid_arg "Set_consensus.task_fixed: need one input per process";
  let values = List.sort_uniq Stdlib.compare inputs in
  let outputs = outputs_complex ~n ~k ~values in
  Task.make
    ~name:(Printf.sprintf "%d-set-consensus(fixed)" k)
    ~inputs:(Task.fixed_inputs inputs)
    ~outputs
    ~delta:(delta ~n ~k)

let consensus ~n ~values = task ~n ~k:1 ~values

let agreement_ok ~k ~decisions =
  List.length (List.sort_uniq Stdlib.compare (List.map snd decisions)) <= k

let validity_ok ~proposals ~decisions =
  let proposed = List.map snd proposals in
  List.for_all (fun (_, v) -> List.mem v proposed) decisions

let decisions_ok ~k ~proposals ~decisions =
  validity_ok ~proposals ~decisions && agreement_ok ~k ~decisions
