(** The k-set consensus task (Section 2, after Chaudhuri [7]).

    Processes propose values from a set [V] (with [|V| ≥ k + 1]) and
    decide proposed values so that at most [k] distinct values are
    decided. [k = 1] is consensus. *)


val task : n:int -> k:int -> values:int list -> Task.t
(** Inputs: all assignments [Π → values]. Outputs: all chromatic
    simplices of decided values with at most [k] distinct values.
    [∆(ρ)]: outputs on χ(ρ) whose values were proposed in ρ. *)

val task_fixed : n:int -> k:int -> inputs:int list -> Task.t
(** The task restricted to a single input vector — the sub-task used
    for impossibility arguments (if the full task were solvable, so
    would every restriction be). *)

val consensus : n:int -> values:int list -> Task.t

val agreement_ok : k:int -> decisions:(int * int) list -> bool
(** At most [k] distinct values are decided. *)

val validity_ok :
  proposals:(int * int) list -> decisions:(int * int) list -> bool
(** Every decided value was proposed by someone. *)

val decisions_ok : k:int -> proposals:(int * int) list ->
  decisions:(int * int) list -> bool
(** Operational check used by the runtime experiments:
    {!validity_ok} and {!agreement_ok} together. *)
