open Fact_topology

type assignment = (Vertex.t * Vertex.t) list

type verdict = Solvable of assignment | Unsolvable

module Vtbl = Hashtbl.Make (struct
  type t = Vertex.t

  let equal = Vertex.equal
  let hash = Vertex.hash
end)

(* The search is ordering-sensitive: facets must arrive in structural
   (lexicographic vertex) order so that consecutive facets share
   vertices. [Complex.facets] iterates in hash order, so re-sort
   structurally here — this also keeps the search deterministic and
   independent of interning or domain-count effects on set order. *)
let structural_vertex_compare = Vertex.compare

let structural_simplex_compare a b =
  List.compare structural_vertex_compare (Simplex.vertices a)
    (Simplex.vertices b)

(* Facet-major vertex order: keeps consecutive decision variables in
   shared facets, which makes the per-facet pruning bite early. *)
let vertex_order facets =
  let seen = Vtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun f ->
      List.iter
        (fun v ->
          if not (Vtbl.mem seen v) then begin
            Vtbl.add seen v ();
            order := v :: !order
          end)
        (Simplex.vertices f))
    facets;
  Array.of_list (List.rev !order)

(* Backtracking with forward checking: assigning a vertex filters the
   domains of every unassigned vertex sharing a facet with it (the
   partial facet image plus the candidate must remain a simplex of the
   facet's ∆). Domain wipe-out backtracks immediately, which avoids
   the thrashing a chronological search suffers on equality-like
   constraints such as consensus. *)
let solve ~protocol ~task =
  let facets =
    List.sort structural_simplex_compare (Complex.facets protocol)
  in
  if facets = [] then
    Fact_resilience.Fact_error.precondition ~fn:"Solver.solve"
      "empty protocol complex";
  let Task.{ delta; _ } = task in
  (* ∆ of a simplex depends only on its input carrier; cache it. *)
  let delta_cache = Simplex.Tbl.create 64 in
  let delta_of simplex =
    let key = Simplex.base_simplex simplex in
    match Simplex.Tbl.find_opt delta_cache key with
    | Some c -> c
    | None ->
      let c = delta key in
      Simplex.Tbl.replace delta_cache key c;
      c
  in
  let order = vertex_order facets in
  let nv = Array.length order in
  let index = Vtbl.create nv in
  Array.iteri (fun i v -> Vtbl.replace index v i) order;
  (* facets as index arrays, with their ∆ *)
  let facet_data =
    List.map
      (fun f ->
        ( Array.of_list
            (List.map (fun v -> Vtbl.find index v) (Simplex.vertices f)),
          delta_of f ))
      facets
  in
  let facets_of = Array.make nv [] in
  List.iter
    (fun ((idxs, _) as fd) ->
      Array.iter (fun i -> facets_of.(i) <- fd :: facets_of.(i)) idxs)
    facet_data;
  (* mutable candidate domains *)
  let domains =
    Array.map
      (fun v ->
        let allowed = delta_of (Simplex.of_vertex v) in
        ref
          (Complex.vertices allowed
          |> List.filter (fun o -> Vertex.proc o = Vertex.proc v)
          |> List.sort structural_vertex_compare))
      order
  in
  let image = Array.make nv None in
  (* the simplex formed by the current image of facet [idxs], plus
     optionally [extra] at position [at] *)
  let partial_image idxs ?at ?extra () =
    let vs = ref [] in
    Array.iter
      (fun i ->
        match image.(i) with
        | Some o -> vs := o :: !vs
        | None -> (
          match (at, extra) with
          | Some j, Some o when j = i -> vs := o :: !vs
          | _ -> ()))
      idxs;
    Simplex.make !vs
  in
  let consistent i cand =
    List.for_all
      (fun (idxs, d) ->
        Complex.mem (partial_image idxs ~at:i ~extra:cand ()) d)
      facets_of.(i)
  in
  (* trail of domain shrinks for backtracking *)
  let prune_neighbors i =
    let touched = ref [] in
    let ok =
      List.for_all
        (fun (idxs, d) ->
          Array.for_all
            (fun j ->
              if j = i || image.(j) <> None then true
              else begin
                let before = !(domains.(j)) in
                let after =
                  List.filter
                    (fun cand ->
                      Complex.mem (partial_image idxs ~at:j ~extra:cand ()) d)
                    before
                in
                if List.length after < List.length before then begin
                  touched := (j, before) :: !touched;
                  domains.(j) := after
                end;
                after <> []
              end)
            idxs)
        facets_of.(i)
    in
    (ok, !touched)
  in
  let undo touched =
    List.iter (fun (j, before) -> domains.(j) := before) touched
  in
  let rec search i =
    if i = nv then true
    else
      List.exists
        (fun cand ->
          if not (consistent i cand) then false
          else begin
            image.(i) <- Some cand;
            let ok, touched = prune_neighbors i in
            let solved = ok && search (i + 1) in
            if not solved then begin
              undo touched;
              image.(i) <- None
            end;
            solved
          end)
        !(domains.(i))
  in
  if search 0 then
    Solvable
      (Array.to_list (Array.mapi (fun i v -> (v, Option.get image.(i))) order))
  else Unsolvable

let check_map ~protocol ~task assignment =
  let Task.{ delta; outputs; _ } = task in
  let lookup v = List.find_opt (fun (x, _) -> Vertex.equal x v) assignment in
  let chromatic =
    List.for_all (fun (v, o) -> Vertex.proc v = Vertex.proc o) assignment
  in
  chromatic
  && List.for_all
       (fun f ->
         match
           List.map (fun v -> Option.map snd (lookup v)) (Simplex.vertices f)
         with
         | imgs when List.for_all Option.is_some imgs ->
           let simplex = Simplex.make (List.map Option.get imgs) in
           Complex.mem simplex outputs
           && Complex.mem simplex (delta (Simplex.base_simplex f))
         | _ -> false)
       (Complex.facets protocol)

let solvable_by_iteration ~task_of_round ~task ~max_rounds =
  let rec go r =
    if r > max_rounds then None
    else
      match solve ~protocol:(task_of_round r) ~task with
      | Solvable _ -> Some r
      | Unsolvable -> go (r + 1)
  in
  go 1
