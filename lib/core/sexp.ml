type t = Atom of string | List of t list

let atom s = Atom s
let int i = Atom (string_of_int i)
let list xs = List xs

let must_quote s =
  s = ""
  || String.exists
       (function
         | '(' | ')' | '"' | '\\' | ' ' | '\t' | '\n' | '\r' -> true
         | _ -> false)
       s

let rec add_to_buffer buf = function
  | Atom s ->
    if must_quote s then begin
      Buffer.add_char buf '"';
      String.iter
        (function
          | '"' -> Buffer.add_string buf "\\\""
          | '\\' -> Buffer.add_string buf "\\\\"
          | '\n' -> Buffer.add_string buf "\\n"
          | '\t' -> Buffer.add_string buf "\\t"
          | '\r' -> Buffer.add_string buf "\\r"
          | c -> Buffer.add_char buf c)
        s;
      Buffer.add_char buf '"'
    end
    else Buffer.add_string buf s
  | List xs ->
    Buffer.add_char buf '(';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ' ';
        add_to_buffer buf x)
      xs;
    Buffer.add_char buf ')'

let to_string t =
  let buf = Buffer.create 256 in
  add_to_buffer buf t;
  Buffer.contents buf

exception Parse of string * int

(* Parse over a slice of [s] without copying it out first — the serve
   wire path hands in a view of its reusable receive buffer. Offsets
   in errors are relative to [pos]. Atoms are copied out of [s]
   ([String.sub] / [Buffer]), so the result never aliases the input. *)
let of_substring s ~pos:p0 ~len =
  let n = p0 + len in
  let pos = ref p0 in
  let fail msg = raise (Parse (msg, !pos - p0)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let quoted () =
    (* cursor on the opening quote *)
    incr pos;
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          if !pos + 1 >= n then fail "dangling escape";
          (match s.[!pos + 1] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | c -> fail (Printf.sprintf "bad escape \\%c" c));
          pos := !pos + 2;
          go ()
        | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Atom (Buffer.contents buf)
  in
  let bare () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '(' | ')' | '"' | ' ' | '\t' | '\n' | '\r' -> false
      | _ -> true
    do
      incr pos
    done;
    Atom (String.sub s start (!pos - start))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "empty input"
    | Some '(' ->
      incr pos;
      let items = ref [] in
      let rec go () =
        skip_ws ();
        match peek () with
        | None -> fail "unclosed ("
        | Some ')' -> incr pos
        | Some _ ->
          items := value () :: !items;
          go ()
      in
      go ();
      List (List.rev !items)
    | Some ')' -> fail "unexpected )"
    | Some '"' -> quoted ()
    | Some _ -> bare ()
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Parse (msg, at) ->
    Error (Printf.sprintf "%s at offset %d" msg at)

let of_string s = of_substring s ~pos:0 ~len:(String.length s)

let to_atom = function
  | Atom a -> Ok a
  | List _ -> Error "expected an atom"

let to_int = function
  | Atom a -> (
    match int_of_string_opt a with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "not an integer: %S" a))
  | List _ -> Error "expected an integer atom"

let assoc key = function
  | List items -> (
    let hit = function
      | List (Atom k :: _) -> k = key
      | _ -> false
    in
    match List.find_opt hit items with
    | Some (List [ _; v ]) -> Ok v
    | Some _ -> Error (Printf.sprintf "field %s is not a (key value) pair" key)
    | None -> Error (Printf.sprintf "missing field %s" key))
  | Atom _ -> Error (Printf.sprintf "expected a record with field %s" key)

let rec map_result f = function
  | [] -> Ok []
  | x :: tl -> (
    match f x with
    | Ok y -> (
      match map_result f tl with Ok ys -> Ok (y :: ys) | Error _ as e -> e)
    | Error _ as e -> e)
