(** The one s-expression dialect of the repository.

    Every persisted or transmitted artifact — decision traces
    ({!Fact_check.Trace}), exploration checkpoints
    ({!Fact_check.Checkpoint}), the [fact serve] wire protocol and its
    on-disk result store ({!Fact_serve}) — shares this reader/writer,
    so there is exactly one grammar to keep compatible.

    The grammar is the classic one: an expression is an atom or a
    parenthesised list of expressions separated by whitespace. Atoms
    that contain whitespace, parentheses, quotes or backslashes (or are
    empty) are written as double-quoted strings with backslash escapes
    for quote, backslash, newline, tab and carriage return — so
    arbitrary byte payloads round-trip. Plain atoms
    (identifiers, integers, [s0]/[c2] decisions) print unquoted,
    keeping the historical trace/checkpoint formats byte-stable. *)

type t = Atom of string | List of t list

val atom : string -> t
val int : int -> t
val list : t list -> t

val to_string : t -> string
(** Canonical rendering: single spaces, atoms quoted only when
    necessary. [of_string (to_string x) = Ok x] for every [x]. *)

val add_to_buffer : Buffer.t -> t -> unit

val of_string : string -> (t, string) result
(** Parses exactly one expression (leading/trailing whitespace
    allowed); [Error msg] names the offset of the first problem. *)

val of_substring : string -> pos:int -> len:int -> (t, string) result
(** {!of_string} over the slice [s.[pos .. pos+len-1]] — for callers
    parsing out of a reusable I/O buffer. Atoms are copied out, so the
    result never aliases the input; error offsets are relative to
    [pos]. *)

val to_atom : t -> (string, string) result
val to_int : t -> (int, string) result

val assoc : string -> t -> (t, string) result
(** [assoc key (List [... (List [Atom key; v]) ...])] finds the value
    of the first [(key v)] pair — tolerant record-field access. *)

val map_result : ('a -> ('b, string) result) -> 'a list -> ('b list, string) result
(** All-or-first-error traversal, shared by every [of_sexp] below. *)
