(** FACT — the Fair Asynchronous Computability Theorem, executable.

    Umbrella API over the six sub-libraries. Re-exports the module
    hierarchy and offers the theorem-level entry points:

    - {!affine_task_of_adversary}: the affine task [R_A] capturing a
      fair adversary (Definition 9);
    - {!solvable_in_adversary}: decide task solvability in a fair
      adversarial model by searching for a simplicial map from
      iterations of [R_A] (Theorem 16), with a bounded number of
      iterations;
    - {!classify}: where an adversary sits in Figure 2
      (superset-closed / symmetric / fair), together with its
      agreement power. *)

module Pset = Fact_topology.Pset
module Opart = Fact_topology.Opart
module Vertex = Fact_topology.Vertex
module Simplex = Fact_topology.Simplex
module Complex = Fact_topology.Complex
module Chr = Fact_topology.Chr
module Sperner = Fact_topology.Sperner
module Link = Fact_topology.Link
module Geometry = Fact_topology.Geometry
module Parallel = Fact_topology.Parallel
module Adversary = Fact_adversary.Adversary
module Hitting = Fact_adversary.Hitting
module Setcon = Fact_adversary.Setcon
module Agreement = Fact_adversary.Agreement
module Fairness = Fact_adversary.Fairness
module Census = Fact_adversary.Census
module Views = Fact_affine.Views
module Contention = Fact_affine.Contention
module Critical = Fact_affine.Critical
module Concurrency = Fact_affine.Concurrency
module Affine_task = Fact_affine.Affine_task
module Ra = Fact_affine.Ra
module Rkof = Fact_affine.Rkof
module Rtres = Fact_affine.Rtres
module Mu = Fact_affine.Mu
module Task = Fact_tasks.Task
module Set_consensus = Fact_tasks.Set_consensus
module Simplex_agreement = Fact_tasks.Simplex_agreement
module Solver = Fact_tasks.Solver
module Approximate_agreement = Fact_tasks.Approximate_agreement
module Mu_map = Fact_tasks.Mu_map
module Op = Fact_runtime.Op
module Schedule = Fact_runtime.Schedule
module Exec = Fact_runtime.Exec
module Memory = Fact_runtime.Memory
module Immediate_snapshot = Fact_runtime.Immediate_snapshot
module Iis = Fact_runtime.Iis
module Algorithm1 = Fact_runtime.Algorithm1
module Snapmin = Fact_runtime.Snapmin
module Affine_runner = Fact_runtime.Affine_runner
module Adaptive_consensus = Fact_runtime.Adaptive_consensus
module Simulation = Fact_runtime.Simulation
module Alpha_sc = Fact_runtime.Alpha_sc
module Fact_error = Fact_resilience.Fact_error
module Cancel = Fact_resilience.Cancel
module Cache = Fact_resilience.Cache
module Trace = Fact_check.Trace
module Replay = Fact_check.Replay
module Explore = Fact_check.Explore
module Minimize = Fact_check.Minimize
module Gen = Fact_check.Gen
module Shrink = Fact_check.Shrink
module Prop = Fact_check.Prop
module Subject = Fact_check.Subject
module Assertion = Fact_check.Assertion
module Mutant = Fact_check.Mutant
module Harness = Fact_check.Harness
module Checkpoint = Fact_check.Checkpoint
module Chaos = Fact_check.Chaos
module Sexp = Fact_sexp.Sexp
module Query = Fact_serve.Query
module Wire = Fact_serve.Wire
module Store = Fact_serve.Store
module Scheduler = Fact_serve.Scheduler
module Listener = Fact_serve.Listener
module Client = Fact_serve.Client
module Serve_chaos = Fact_serve.Serve_chaos
module Serve_digest = Fact_serve.Digest
module Backoff = Fact_resilience.Backoff
module Ring = Fact_serve.Ring
module Supervisor = Fact_serve.Supervisor
module Health = Fact_serve.Health
module Cluster = Fact_serve.Cluster
module Loadgen = Fact_serve.Loadgen
module Histogram = Fact_serve.Histogram
module Grid = Fact_campaign.Grid
module Campaign_results = Fact_campaign.Results
module Campaign_runner = Fact_campaign.Runner
module Report = Fact_campaign.Report
module Bench_entries = Fact_campaign.Bench_entries

type classification = {
  superset_closed : bool;
  symmetric : bool;
  fair : bool;
  agreement_power : int;
}

val classify : Adversary.t -> classification
(** Structural classification of an adversary (the regions of
    Figure 2) plus its agreement power [setcon]. *)

val affine_task_of_adversary : Adversary.t -> Affine_task.t
(** [R_A] (Definition 9, default variant). The characterization
    theorems apply when the adversary is fair. *)

val solvable_in_adversary :
  ?max_rounds:int -> Adversary.t -> Task.t -> int option
(** [solvable_in_adversary a t]: the smallest number [ℓ ≤ max_rounds]
    (default 2) of [R_A] iterations from which a simplicial map to the
    task's outputs exists — [Some ℓ] certifies solvability in the
    A-model (Theorem 16); [None] means no map exists within the bound
    (for the canonical set-consensus family this settles the question,
    as solvability there needs only one iteration). *)

val set_consensus_power : Adversary.t -> int
(** The smallest [k] such that k-set consensus is solvable — computed
    from the adversary's structure ([setcon], Definition 1). Theorems
    15/16 equate it with solvability in [R_A*]; the test suite verifies
    the equation through {!solvable_in_adversary}. *)
