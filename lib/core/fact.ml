module Pset = Fact_topology.Pset
module Opart = Fact_topology.Opart
module Vertex = Fact_topology.Vertex
module Simplex = Fact_topology.Simplex
module Complex = Fact_topology.Complex
module Chr = Fact_topology.Chr
module Sperner = Fact_topology.Sperner
module Link = Fact_topology.Link
module Geometry = Fact_topology.Geometry
module Parallel = Fact_topology.Parallel
module Adversary = Fact_adversary.Adversary
module Hitting = Fact_adversary.Hitting
module Setcon = Fact_adversary.Setcon
module Agreement = Fact_adversary.Agreement
module Fairness = Fact_adversary.Fairness
module Census = Fact_adversary.Census
module Views = Fact_affine.Views
module Contention = Fact_affine.Contention
module Critical = Fact_affine.Critical
module Concurrency = Fact_affine.Concurrency
module Affine_task = Fact_affine.Affine_task
module Ra = Fact_affine.Ra
module Rkof = Fact_affine.Rkof
module Rtres = Fact_affine.Rtres
module Mu = Fact_affine.Mu
module Task = Fact_tasks.Task
module Set_consensus = Fact_tasks.Set_consensus
module Simplex_agreement = Fact_tasks.Simplex_agreement
module Solver = Fact_tasks.Solver
module Approximate_agreement = Fact_tasks.Approximate_agreement
module Mu_map = Fact_tasks.Mu_map
module Op = Fact_runtime.Op
module Schedule = Fact_runtime.Schedule
module Exec = Fact_runtime.Exec
module Memory = Fact_runtime.Memory
module Immediate_snapshot = Fact_runtime.Immediate_snapshot
module Iis = Fact_runtime.Iis
module Algorithm1 = Fact_runtime.Algorithm1
module Snapmin = Fact_runtime.Snapmin
module Affine_runner = Fact_runtime.Affine_runner
module Adaptive_consensus = Fact_runtime.Adaptive_consensus
module Simulation = Fact_runtime.Simulation
module Alpha_sc = Fact_runtime.Alpha_sc
module Fact_error = Fact_resilience.Fact_error
module Cancel = Fact_resilience.Cancel
module Cache = Fact_resilience.Cache
module Trace = Fact_check.Trace
module Replay = Fact_check.Replay
module Explore = Fact_check.Explore
module Minimize = Fact_check.Minimize
module Gen = Fact_check.Gen
module Shrink = Fact_check.Shrink
module Prop = Fact_check.Prop
module Subject = Fact_check.Subject
module Assertion = Fact_check.Assertion
module Mutant = Fact_check.Mutant
module Harness = Fact_check.Harness
module Checkpoint = Fact_check.Checkpoint
module Chaos = Fact_check.Chaos
module Sexp = Fact_sexp.Sexp
module Query = Fact_serve.Query
module Wire = Fact_serve.Wire
module Store = Fact_serve.Store
module Scheduler = Fact_serve.Scheduler
module Listener = Fact_serve.Listener
module Client = Fact_serve.Client
module Serve_chaos = Fact_serve.Serve_chaos
module Serve_digest = Fact_serve.Digest
module Backoff = Fact_resilience.Backoff
module Ring = Fact_serve.Ring
module Supervisor = Fact_serve.Supervisor
module Health = Fact_serve.Health
module Cluster = Fact_serve.Cluster
module Loadgen = Fact_serve.Loadgen
module Histogram = Fact_serve.Histogram
module Grid = Fact_campaign.Grid
module Campaign_results = Fact_campaign.Results
module Campaign_runner = Fact_campaign.Runner
module Report = Fact_campaign.Report
module Bench_entries = Fact_campaign.Bench_entries

type classification = {
  superset_closed : bool;
  symmetric : bool;
  fair : bool;
  agreement_power : int;
}

let classify a =
  {
    superset_closed = Adversary.is_superset_closed a;
    symmetric = Adversary.is_symmetric a;
    fair = Fairness.is_fair a;
    agreement_power = Setcon.setcon a;
  }

let affine_task_of_adversary a = Ra.of_adversary a

let solvable_in_adversary ?(max_rounds = 2) a task =
  let ra = affine_task_of_adversary a in
  Solver.solvable_by_iteration
    ~task_of_round:(fun r ->
      Affine_task.apply (Affine_task.iterate ra r) task.Task.inputs)
    ~task ~max_rounds

let set_consensus_power = Setcon.setcon
