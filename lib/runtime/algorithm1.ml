open Fact_topology
open Fact_adversary

type output = {
  pid : int;
  view1 : Pset.t;
  view2 : (int * Pset.t) list;
}

type instance = {
  first : int Immediate_snapshot.t;
  second : Pset.t Immediate_snapshot.t;
  reg_is1 : Pset.t Memory.t;
  reg_is2 : (int * Pset.t) list Memory.t;
  reg_conc : int Memory.t;
}

let create_instance ~n =
  {
    first = Immediate_snapshot.create n;
    second = Immediate_snapshot.create n;
    reg_is1 = Memory.create n;
    reg_is2 = Memory.create n;
    reg_conc = Memory.create n;
  }

let objects inst =
  [
    ("is1", Immediate_snapshot.id inst.first);
    ("is2", Immediate_snapshot.id inst.second);
    ("reg-is1", Memory.id inst.reg_is1);
    ("reg-is2", Memory.id inst.reg_is2);
    ("reg-conc", Memory.id inst.reg_conc);
  ]

type mutation = Skip_wait | Drop_second_snapshot | Biased_view

let process ?(skip_wait = false) ?mutation inst alpha ~pid =
  let skip_wait = skip_wait || mutation = Some Skip_wait in
  let a p = Agreement.eval alpha p in
  (* Line 5: first immediate snapshot, then publish IS1[i]. *)
  let view1_pairs = Immediate_snapshot.write_snapshot inst.first ~pid pid in
  let is1 = Immediate_snapshot.view_set view1_pairs in
  Memory.update inst.reg_is1 ~pid is1;
  (* Lines 6-9: wait until crit or rank < conc. Each probe reads the
     three register arrays (each read is an atomic step). *)
  let rec wait () =
    let s1 = Memory.snapshot inst.reg_is1 in
    let s2 = Memory.snapshot inst.reg_is2 in
    let sc = Memory.snapshot inst.reg_conc in
    let same_view j = match s1.(j) with
      | Some v -> Pset.equal v is1
      | None -> false
    in
    let same = Pset.filter same_view (Pset.full (Memory.n inst.reg_is1)) in
    let crit = a is1 > a (Pset.diff is1 same) in
    let rank =
      Pset.cardinal
        (Pset.filter (fun j -> s2.(j) = None && not (same_view j)) is1)
    in
    let conc =
      Array.fold_left
        (fun acc c -> match c with Some c -> max acc c | None -> acc)
        (a is1) sc
    in
    if crit || rank < conc then () else wait ()
  in
  if not skip_wait then wait ();
  (* Line 10: second immediate snapshot on the IS1 view, publish. *)
  let view2_pairs =
    match mutation with
    | Some Drop_second_snapshot ->
      (* mutant: the second IS round is dropped entirely — the process
         reports only its own pair, as if it ran the round alone *)
      [ (pid, is1) ]
    | _ -> Immediate_snapshot.write_snapshot inst.second ~pid is1
  in
  let view2_pairs =
    match mutation with
    | Some Biased_view -> (
      (* mutant: the lowest-id pair is silently lost from the second
         view — a biased snapshot that breaks Chr² containment *)
      match view2_pairs with _ :: (_ :: _ as rest) -> rest | v -> v)
    | _ -> view2_pairs
  in
  Memory.update inst.reg_is2 ~pid view2_pairs;
  (* Lines 11-12: publish the concurrency level witnessed by a
     terminated critical simplex. *)
  let s1 = Memory.snapshot inst.reg_is1 in
  let s2 = Memory.snapshot inst.reg_is2 in
  let same_done =
    Pset.filter
      (fun j ->
        (match s1.(j) with Some v -> Pset.equal v is1 | None -> false)
        && s2.(j) <> None)
      (Pset.full (Memory.n inst.reg_is1))
  in
  if a is1 > a (Pset.diff is1 same_done) then
    Memory.update inst.reg_conc ~pid (a is1);
  { pid; view1 = is1; view2 = view2_pairs }

let run ?max_steps ?skip_wait alpha ~schedule =
  let n = Schedule.n schedule in
  let inst = create_instance ~n in
  Exec.run ?max_steps ~schedule
    (Array.init n (fun _ pid -> process ?skip_wait inst alpha ~pid))

let chr1_vertex (j, is1j) =
  Vertex.deriv j
    (Simplex.vertices
       (Simplex.make (List.map Vertex.base (Pset.to_list is1j))))

let vertex_of_output o =
  Vertex.deriv o.pid
    (Simplex.vertices (Simplex.make (List.map chr1_vertex o.view2)))

let simplex_of_outputs outputs =
  Simplex.make (List.map vertex_of_output outputs)
