(** Write–snapshot–decide-min: the simplest full-information protocol
    with a decision value per process.

    Every process publishes its proposal in its cell of one atomic
    snapshot memory, takes one snapshot, and decides the minimum value
    it saw. Since the snapshots of a single memory are totally ordered,
    the views form a containment chain, so at most [n] distinct values
    are decided ([n]-set consensus) — but nothing stronger: a late
    writer whose snapshot sees only itself decides its own proposal, so
    [k]-agreement for [k < n] has counterexample schedules, which makes
    this protocol the canonical demo for the task-parameterized
    agreement/validity assertion schemas of [Fact_check.Assertion].

    The CLI exposes it as protocol [wsmin]. *)

type instance

val create : proposals:int array -> instance
(** Fresh shared memory for [Array.length proposals] processes;
    process [i] will propose [proposals.(i)]. One instance per run. *)

val n : instance -> int
val id : instance -> int

val objects : instance -> (string * int) list
(** Symbolic object-name map for assertions: [mem]. *)

val proposal : instance -> int -> int

val process : ?biased:bool -> instance -> pid:int -> int
(** One process: update, snapshot, decide the minimum seen. [biased]
    (default [false]) is a seeded mutant that decides [min + 1] — a
    non-proposed value, caught by the validity assertion. *)
