(** Asynchronous schedules with crash injection.

    A schedule drives the cooperative executor ({!Exec}): at each step
    it names the process that takes the next atomic shared-memory
    operation. Crash injection models the adversarial/α-model runs of
    the paper: a faulty process takes a bounded number of steps and
    then stops forever; correct processes are scheduled until they
    decide.

    Schedules are stateful values; build a fresh one per run. *)

open Fact_topology
open Fact_adversary

type t

val n : t -> int
val participants : t -> Pset.t
val faulty : t -> Pset.t
(** The processes this schedule will crash. Empty for {!controlled}
    schedules (their crashes are decided by the callback, not known up
    front). *)

val next : ?pending:(int -> Op.pending) -> t -> alive:Pset.t -> int option
(** The next process to step among [alive] (running processes that are
    neither finished nor crashed), or [None] to stop (never happens for
    the built-in schedules while [alive] is nonempty). [pending]
    reports the operation each process is suspended before — the
    executor supplies it; only {!controlled} schedules look at it, and
    it defaults to "unknown" when absent. *)

val crash_now : t -> pid:int -> steps_taken:int -> bool
(** Should this process crash before taking its next step? *)

val controlled :
  n:int ->
  participants:Pset.t ->
  next:(alive:Pset.t -> pending:(int -> Op.pending) -> int option) ->
  crash_now:(pid:int -> steps_taken:int -> bool) ->
  t
(** A schedule driven entirely by callbacks: [next] names the process
    to step (or [None] to stop the run), [crash_now] decides crashes.
    This is the hook the systematic explorer and the trace replayer of
    [Fact_check] plug into; the callbacks see the pending operation of
    every suspended fiber. *)

val round_robin : n:int -> participants:Pset.t -> t
(** Failure-free round-robin among the participants. *)

val sequential : n:int -> participants:Pset.t -> t
(** Runs participants one after the other to completion, in increasing
    id order (a fully ordered run). *)

val random : seed:int -> n:int -> participants:Pset.t ->
  crashes:(int * int) list -> t
(** Uniform random interleaving of the participants;
    [crashes = [(pid, k); …]] crashes [pid] after its k-th step. *)

val alpha_model : seed:int -> Agreement.t -> participation:Pset.t -> t
(** A random α-model schedule: requires [α(P) ≥ 1]; picks a uniformly
    random faulty subset of size ≤ α(P) − 1 and random crash points,
    then interleaves uniformly. Raises a [Precondition]
    {!Fact_resilience.Fact_error} if [α(P) = 0] (the α-model has no
    such run). *)

val adversarial : seed:int -> Adversary.t -> live:Pset.t -> t
(** A random A-compliant schedule over participation = the whole
    universe with correct set exactly [live] (which must be a live set
    of the adversary; raises otherwise). Faulty processes crash after
    a random number of steps. *)
