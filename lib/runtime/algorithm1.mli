(** Algorithm 1 of the paper: solving the affine task [R_A] in the
    α-model (Section 5).

    Every process proposes its id to a first immediate snapshot, shares
    the view in register [IS1], then waits until it either belongs to a
    critical simplex ([crit]) or the number of potentially contending
    unfinished processes is below the current concurrency level
    ([rank < conc]); it then runs the second immediate snapshot, posts
    the outcome in [IS2], publishes the new concurrency level in
    [Conc] if it completed a critical simplex, and returns its second
    view.

    Theorem 7: in any α-model run, all correct processes return and
    the outputs form a simplex of [R_A]. Both properties are exercised
    by the test suite under randomized compliant schedules. *)

open Fact_topology
open Fact_adversary

type output = {
  pid : int;
  view1 : Pset.t;                 (** own first IS view *)
  view2 : (int * Pset.t) list;    (** second IS view: (j, IS1[j]) pairs *)
}

type instance

val create_instance : n:int -> instance
(** Fresh shared objects (two IS objects and the three register
    arrays). One instance per run. *)

val objects : instance -> (string * int) list
(** Symbolic names for the instance's shared objects, mapped to the
    {!Op.t} object ids of this instance ([is1], [is2], [reg-is1],
    [reg-is2], [reg-conc]). Object ids are globally monotonic, so
    assertions must resolve names through this map per run. *)

type mutation = Skip_wait | Drop_second_snapshot | Biased_view
(** Seeded faults for mutation-testing the oracle suite:
    - [Skip_wait] removes the wait-phase (lines 6–9), degrading the
      algorithm to a plain 2-round immediate snapshot;
    - [Drop_second_snapshot] skips the second IS round — the process
      reports only its own pair;
    - [Biased_view] drops the lowest-id pair from the second view.
    Each must be caught by at least one built-in assertion. *)

val process :
  ?skip_wait:bool -> ?mutation:mutation -> instance -> Agreement.t ->
  pid:int -> output
(** The protocol for one process, to be run under {!Exec.run}.
    [skip_wait] (default [false]) is the historical spelling of
    [~mutation:Skip_wait]: it removes the wait-phase, and outputs then
    escape [R_A] on contended schedules (verified by the test suite
    and the [ablation] bench). *)

val run :
  ?max_steps:int ->
  ?skip_wait:bool ->
  Agreement.t ->
  schedule:Schedule.t ->
  output Exec.report
(** Convenience wrapper: fresh instance, all scheduled processes run
    {!process}. *)

val vertex_of_output : output -> Vertex.t
(** The vertex of [Chr² s] encoded by an output. *)

val simplex_of_outputs : output list -> Simplex.t
(** The simplex formed by a set of outputs (distinct processes). *)
