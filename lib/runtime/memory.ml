type 'a t = { id : int; cells : 'a option array }

(* Globally unique object ids, so schedules can tell operations on
   distinct memories apart (see {!Op}). Atomic for safety under
   multi-domain test runners; the executor itself is single-domain. *)
let next_id = Atomic.make 0

let create n = { id = Atomic.fetch_and_add next_id 1; cells = Array.make n None }
let n t = Array.length t.cells
let id t = t.id

let update t ~pid v =
  Exec.yield_op { Op.obj = t.id; kind = Op.Write pid };
  t.cells.(pid) <- Some v

let snapshot t =
  Exec.yield_op { Op.obj = t.id; kind = Op.Snapshot };
  Array.copy t.cells

let get t i =
  Exec.yield_op { Op.obj = t.id; kind = Op.Read i };
  t.cells.(i)

let peek t i = t.cells.(i)
