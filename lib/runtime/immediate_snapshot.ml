open Fact_topology

(* Each cell holds the writer's value and its current level. *)
type 'a cell = { value : 'a; level : int }
type 'a t = { mem : 'a cell Memory.t }

let create n = { mem = Memory.create n }
let id t = Memory.id t.mem

let write_snapshot t ~pid v =
  let n = Memory.n t.mem in
  let rec descend level =
    let level = level - 1 in
    Memory.update t.mem ~pid { value = v; level };
    let snap = Memory.snapshot t.mem in
    let seen =
      Array.to_list snap
      |> List.mapi (fun j c -> (j, c))
      |> List.filter_map (function
           | j, Some c when c.level <= level -> Some (j, c.value)
           | _ -> None)
    in
    if List.length seen >= level then seen else descend level
  in
  descend (n + 1)

let view_set view =
  List.fold_left (fun acc (j, _) -> Pset.add j acc) Pset.empty view
