(** Cooperative executor for asynchronous shared-memory protocols,
    built on OCaml 5 effects.

    Each process runs as a fiber; it calls {!yield} (or {!yield_op},
    announcing the operation it is about to perform) before every
    atomic shared-memory operation, giving the scheduler an
    interleaving point. Code between two yields executes atomically —
    this is how the atomic-snapshot semantics of {!Memory} is realized.
    A {!Schedule} decides which fiber steps next and which processes
    crash; controlled schedules additionally see the pending operation
    of every suspended fiber, which is what the systematic explorer of
    [Fact_check] uses to prune commuting interleavings. *)

open Fact_topology

val yield : unit -> unit
(** Interleaving point. A no-op when called outside {!run} (so protocol
    code can also be executed sequentially, e.g. in unit tests). *)

val yield_op : Op.t -> unit
(** Like {!yield}, but announces the shared-memory operation the
    process will perform right after being rescheduled. All {!Memory}
    primitives yield through this, so controlled schedules know each
    process's pending operation. *)

type 'r outcome =
  | Decided of 'r     (** the process returned a value *)
  | Crashed of int    (** crashed by the schedule after [k] steps *)
  | Running           (** still alive when the executor stopped *)

type 'r report = {
  outcomes : 'r outcome array;
  steps : int;                  (** total scheduler steps *)
  hit_step_budget : bool;
}

val run :
  ?max_steps:int ->
  ?on_step:(pid:int -> Op.pending -> unit) ->
  ?on_crash:(pid:int -> unit) ->
  schedule:Schedule.t ->
  (int -> 'r) array ->
  'r report
(** [run ~schedule procs] executes [procs.(i) i] for each participant
    [i] of the schedule under its interleaving, crashing processes as
    the schedule dictates, until every non-crashed participant has
    decided (or [max_steps], default 100_000, is hit — then remaining
    processes report [Running]). Non-participants report [Running]
    with 0 steps. Exceptions raised by a process propagate.

    [on_step] is a trace hook called right before each scheduler step
    with the stepping process and the operation it is about to perform
    ([Start] for its very first step). Crash events do not invoke the
    hook (they execute no operation); they invoke [on_crash] instead,
    right before the fiber is discontinued — together the two hooks
    observe the full decision sequence of the run, which is what the
    assertion monitors of [Fact_check] consume. *)

val decided : 'r report -> (int * 'r) list
(** The decided processes with their values, by increasing id. *)

val decided_set : 'r report -> Pset.t
