(** α-adaptive set consensus solved in the affine model [R_A*]
    (Section 6, Definition 4 and the simulation of §6.1–6.2).

    Processes in a proposer set [Q] start with proposals; one iteration
    of [R_A] elects, at each vertex [v], the leader [µ_Q(v)], and every
    proposer adopts the leader's proposal (visible by Property 9).
    Property 10 then bounds the number of distinct adopted values by
    [α(χ(carrier(θ, s))) ≤ α(Π)], and leaders lie in [Q], so at most
    [min (|Q|, α(Π))] distinct values are decided — exactly the
    α-agreement of Definition 4 (participation here is the full
    universe: the affine model is failure-free). *)

open Fact_topology
open Fact_adversary
open Fact_affine

type result = {
  decisions : (int * int) list;  (** (proposer, decided value) *)
  distinct : int;                (** number of distinct decided values *)
}

val solve :
  task:Affine_task.t ->
  alpha:Agreement.t ->
  q:Pset.t ->
  proposals:(int -> int) ->
  picker:Affine_runner.picker ->
  ?rounds:int ->
  unit ->
  result
(** Runs [rounds] (default 1) iterations of the given [R_A] task and
    decides each proposer's current estimate. [proposals pid] is the
    value proposed by [pid ∈ Q]. Raises a [Precondition]
    {!Fact_resilience.Fact_error} if [q] is empty, or if the leader's
    estimate is invisible (the task is not an R_A for [alpha]). *)

val validity_ok : q:Pset.t -> proposals:(int -> int) -> result -> bool
(** Every decision is the proposal of some process in [Q]. *)

val solve_committed :
  task:Affine_task.t ->
  alpha:Agreement.t ->
  q:Pset.t ->
  proposals:(int -> int) ->
  picker:Affine_runner.picker ->
  max_rounds:int ->
  result
(** The estimate/commit discipline of §6.1, closer to the paper's
    simulation than {!solve}: every iteration each proposer {e adopts}
    the estimate of its [µ_Q] leader; it {e commits} (and decides) its
    estimate in the first iteration in which every proposer it observes
    already holds an estimate. Lemma 13's argument gives the same
    α-agreement bound: at the earliest committing iteration all
    proposers hold estimates and Property 10 bounds their diversity;
    later adoptions only copy existing estimates. Raises a
    [Precondition] {!Fact_resilience.Fact_error} on an empty [Q]; processes that never commit
    within [max_rounds] are absent from [decisions] (does not happen —
    commitment occurs by round 2 — but the executor is defensive). *)
