(** One-shot immediate snapshot object (Borowsky–Gafni [4]).

    Wait-free implementation over atomic-snapshot memory using the
    classical level-descent algorithm: a process repeatedly lowers its
    level and snapshots until the set of processes at or below its own
    level has size at least that level; that set is its IS view. The
    returned views satisfy self-inclusion, containment and immediacy
    (checked by the property tests under every schedule). *)

open Fact_topology

type 'a t

val create : int -> 'a t

val id : 'a t -> int
(** The object id of the underlying snapshot memory — this is the id
    that labels the IS's operations in {!Op.t} descriptors, so frame
    assertions can name the object symbolically. *)

val write_snapshot : 'a t -> pid:int -> 'a -> (int * 'a) list
(** [WriteSnapshot(v)]: submits [v] and returns the set of submitted
    (process, value) pairs of the view, sorted by process id. One-shot
    per process. *)

val view_set : (int * 'a) list -> Pset.t
(** The process set of a view. *)
