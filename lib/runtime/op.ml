type kind =
  | Write of int
  | Read of int
  | Snapshot

type t = { obj : int; kind : kind }

type pending =
  | Start
  | Unlabeled
  | Op of t

let conflict a b =
  a.obj = b.obj
  &&
  match (a.kind, b.kind) with
  | Write i, Write j | Write i, Read j | Read i, Write j -> i = j
  | Write _, Snapshot | Snapshot, Write _ -> true
  | Read _, Read _ | Read _, Snapshot | Snapshot, Read _ -> false
  | Snapshot, Snapshot -> false

let commute a b =
  match (a, b) with
  | Start, _ | _, Start -> true
  | Unlabeled, _ | _, Unlabeled -> false
  | Op a, Op b -> not (conflict a b)

let pp ppf { obj; kind } =
  match kind with
  | Write i -> Format.fprintf ppf "w%d[%d]" obj i
  | Read i -> Format.fprintf ppf "r%d[%d]" obj i
  | Snapshot -> Format.fprintf ppf "s%d[*]" obj

let pp_pending ppf = function
  | Start -> Format.pp_print_string ppf "start"
  | Unlabeled -> Format.pp_print_string ppf "?"
  | Op op -> pp ppf op
