open Fact_topology
open Fact_adversary

type kind =
  | Round_robin of { mutable last : int }
  | Sequential
  | Random of Random.State.t
  | Controlled of {
      next : alive:Pset.t -> pending:(int -> Op.pending) -> int option;
      crash : pid:int -> steps_taken:int -> bool;
    }

type t = {
  n : int;
  participants : Pset.t;
  crash_after : int array; (* max_int = correct *)
  kind : kind;
}

let n t = t.n
let participants t = t.participants

let faulty t =
  Pset.filter (fun p -> t.crash_after.(p) < max_int) t.participants

let no_pending : int -> Op.pending = fun _ -> Op.Unlabeled

let next ?(pending = no_pending) t ~alive =
  if Pset.is_empty alive then None
  else
    match t.kind with
    | Sequential -> Some (Pset.min_elt alive)
    | Round_robin r ->
      let cands = Pset.to_list alive in
      let after = List.filter (fun p -> p > r.last) cands in
      let pid = match after with p :: _ -> p | [] -> List.hd cands in
      r.last <- pid;
      Some pid
    | Random st ->
      let cands = Pset.to_list alive in
      Some (List.nth cands (Random.State.int st (List.length cands)))
    | Controlled c -> c.next ~alive ~pending

let crash_now t ~pid ~steps_taken =
  match t.kind with
  | Controlled c -> c.crash ~pid ~steps_taken
  | _ -> steps_taken >= t.crash_after.(pid)

let no_crash n = Array.make n max_int

let round_robin ~n ~participants =
  { n; participants; crash_after = no_crash n; kind = Round_robin { last = -1 } }

let sequential ~n ~participants =
  { n; participants; crash_after = no_crash n; kind = Sequential }

let controlled ~n ~participants ~next ~crash_now =
  { n;
    participants;
    crash_after = no_crash n;
    kind = Controlled { next; crash = crash_now };
  }

let random ~seed ~n ~participants ~crashes =
  let crash_after = no_crash n in
  List.iter
    (fun (pid, k) ->
      if not (Pset.mem pid participants) then
        Fact_resilience.Fact_error.precondition ~fn:"Schedule.random"
          "crashing a non-participant";
      crash_after.(pid) <- k)
    crashes;
  { n;
    participants;
    crash_after;
    kind = Random (Random.State.make [| seed |]);
  }

let random_crashes st ~candidates ~max_faulty ~max_crash_step =
  let cands = Pset.to_list candidates in
  let nb = Random.State.int st (max_faulty + 1) in
  let rec pick acc cands k =
    if k = 0 || cands = [] then acc
    else
      let i = Random.State.int st (List.length cands) in
      let pid = List.nth cands i in
      pick ((pid, Random.State.int st max_crash_step) :: acc)
        (List.filter (fun p -> p <> pid) cands)
        (k - 1)
  in
  pick [] cands nb

let alpha_model ~seed alpha ~participation =
  let n = Agreement.n alpha in
  let a = Agreement.eval alpha participation in
  if a < 1 then
    Fact_resilience.Fact_error.precondition ~fn:"Schedule.alpha_model"
      "alpha(P) = 0, no such run";
  let st = Random.State.make [| seed; 0x5eed |] in
  let crashes =
    random_crashes st ~candidates:participation ~max_faulty:(a - 1)
      ~max_crash_step:30
  in
  random
    ~seed:(Random.State.int st 0x3FFFFFFF)
    ~n ~participants:participation ~crashes

let adversarial ~seed adv ~live =
  if not (Adversary.is_live live adv) then
    Fact_resilience.Fact_error.precondition ~fn:"Schedule.adversarial"
      "correct set is not a live set";
  let n = Adversary.n adv in
  let universe = Pset.full n in
  let st = Random.State.make [| seed; 0xadf |] in
  let crashes =
    Pset.fold
      (fun p acc -> (p, Random.State.int st 30) :: acc)
      (Pset.diff universe live) []
  in
  random
    ~seed:(Random.State.int st 0x3FFFFFFF)
    ~n ~participants:universe ~crashes
