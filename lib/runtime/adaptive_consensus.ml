open Fact_topology
open Fact_affine

type result = {
  decisions : (int * int) list;
  distinct : int;
}

(* Per-process state: Some estimate for proposers, None for the rest
   (they still move through the iterations, as IIS mandates). *)
let solve ~task ~alpha ~q ~proposals ~picker ?(rounds = 1) () =
  if Pset.is_empty q then
    Fact_resilience.Fact_error.precondition ~fn:"Adaptive_consensus.solve"
      "empty Q";
  let init pid = if Pset.mem pid q then Some (proposals pid) else None in
  let step pid v visible =
    if not (Pset.mem pid q) then None
    else begin
      let leader = Mu.leader alpha ~q v in
      match List.assoc_opt leader visible with
      | Some (Some estimate) -> Some estimate
      | Some None | None ->
        (* Property 9 puts the leader inside the carrier, so its state
           is visible; and leaders are proposers, so they hold an
           estimate — unless the task is not an R_A for this alpha. *)
        Fact_resilience.Fact_error.precondition ~fn:"Adaptive_consensus.solve"
          "leader estimate invisible: task is not an R_A for this alpha \
           (Property 9 violated)"
    end
  in
  let states = Affine_runner.run task ~rounds ~picker ~init ~step in
  let decisions =
    Array.to_list states
    |> List.mapi (fun pid st -> (pid, st))
    |> List.filter_map (function pid, Some v -> Some (pid, v) | _, None -> None)
  in
  let distinct =
    List.sort_uniq Stdlib.compare (List.map snd decisions) |> List.length
  in
  { decisions; distinct }

(* §6.1 estimate/commit discipline. Per-process state: the current
   estimate (every proposer starts with its proposal as estimate) and
   the committed decision, if any. Non-proposers carry None and only
   relay information through the full-information structure. *)
type commit_state = {
  estimate : int option;
  committed : int option;
}

let solve_committed ~task ~alpha ~q ~proposals ~picker ~max_rounds =
  if Pset.is_empty q then
    Fact_resilience.Fact_error.precondition
      ~fn:"Adaptive_consensus.solve_committed" "empty Q";
  let init pid =
    if Pset.mem pid q then
      { estimate = Some (proposals pid); committed = None }
    else { estimate = None; committed = None }
  in
  let step pid v visible =
    let self = List.assoc pid visible in
    if (not (Pset.mem pid q)) || self.committed <> None then self
    else begin
      (* adopt the leader's estimate (visible by Property 9) *)
      let leader = Mu.leader alpha ~q v in
      let estimate =
        match List.assoc_opt leader visible with
        | Some { estimate = Some e; _ } -> Some e
        | Some { estimate = None; _ } | None -> self.estimate
      in
      (* commit once every observed proposer holds an estimate *)
      let all_have =
        List.for_all
          (fun (j, c) -> (not (Pset.mem j q)) || c.estimate <> None)
          visible
      in
      if all_have then { estimate; committed = estimate }
      else { estimate; committed = None }
    end
  in
  let states = ref (Array.init (Affine_task.n task) init) in
  (try
     for _round = 1 to max_rounds do
       let arr = !states in
       states :=
         Affine_runner.run task ~rounds:1 ~picker
           ~init:(fun pid -> arr.(pid))
           ~step;
       let done_ =
         Pset.for_all (fun pid -> !states.(pid).committed <> None) q
       in
       if done_ then raise Exit
     done
   with Exit -> ());
  let decisions =
    Array.to_list !states
    |> List.mapi (fun pid c -> (pid, c.committed))
    |> List.filter_map (function pid, Some v -> Some (pid, v) | _ -> None)
  in
  let distinct =
    List.sort_uniq Stdlib.compare (List.map snd decisions) |> List.length
  in
  { decisions; distinct }

let validity_ok ~q ~proposals result =
  let allowed = Pset.fold (fun p acc -> proposals p :: acc) q [] in
  List.for_all (fun (_, v) -> List.mem v allowed) result.decisions
