(** Descriptors of atomic shared-memory operations.

    Every shared-memory primitive of the runtime ({!Memory}, and hence
    {!Immediate_snapshot} and everything above it) announces the
    operation it is about to perform when it yields to the scheduler.
    Schedules that care (the model-checking explorer of [Fact_check])
    use the descriptors to decide which pairs of steps commute; the
    built-in randomized schedules ignore them.

    Two operations {e conflict} when the order of their execution can
    be observed: they touch the same object and overlapping cells, and
    at least one of them writes. Steps whose pending operations do not
    conflict commute — executing them in either order reaches the same
    state — which is what justifies sleep-set pruning during
    systematic exploration. *)

type kind =
  | Write of int  (** writes cell [i] of the object *)
  | Read of int   (** reads cell [i] of the object *)
  | Snapshot      (** atomically reads every cell of the object *)

type t = {
  obj : int;  (** unique id of the shared object (see {!Memory.id}) *)
  kind : kind;
}

type pending =
  | Start      (** fiber not started: its first step runs only local
                   code up to the first yield, no shared operation *)
  | Unlabeled  (** suspended at a bare {!Exec.yield}: unknown
                   operation, conservatively conflicts with
                   everything *)
  | Op of t    (** suspended immediately before this operation *)

val conflict : t -> t -> bool
(** Same object, overlapping cells, at least one write. *)

val commute : pending -> pending -> bool
(** Do the next steps of two {e distinct} processes commute? [Start]
    commutes with everything (a start step is purely local);
    [Unlabeled] commutes with nothing; two known operations commute
    iff they do not {!conflict}. *)

val pp : Format.formatter -> t -> unit
val pp_pending : Format.formatter -> pending -> unit
