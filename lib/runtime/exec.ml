open Fact_topology

type _ Effect.t += Yield : Op.t option -> unit Effect.t

let yield () =
  try Effect.perform (Yield None) with
  | Effect.Unhandled (Yield _) -> ()

let yield_op op =
  try Effect.perform (Yield (Some op)) with
  | Effect.Unhandled (Yield _) -> ()

type 'r outcome = Decided of 'r | Crashed of int | Running

type 'r report = {
  outcomes : 'r outcome array;
  steps : int;
  hit_step_budget : bool;
}

(* A fiber is either not yet started, paused at a yield (remembering
   the operation it is about to perform, if announced), or done. *)
type 'r status =
  | Finished of 'r
  | Paused of Op.t option * (unit, 'r status) Effect.Deep.continuation

type 'r fiber =
  | Not_started of (unit -> 'r)
  | Suspended of (unit, 'r status) Effect.Deep.continuation
  | Terminated

exception Killed

let handler =
  {
    Effect.Deep.retc = (fun r -> Finished r);
    exnc = raise;
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield op ->
          Some
            (fun (k : (a, _) Effect.Deep.continuation) -> Paused (op, k))
        | _ -> None);
  }

let run ?(max_steps = 100_000) ?on_step ?on_crash ~schedule procs =
  let n = Schedule.n schedule in
  if Array.length procs <> n then invalid_arg "Exec.run: arity mismatch";
  let participants = Schedule.participants schedule in
  let fibers =
    Array.init n (fun i ->
        if Pset.mem i participants then Not_started (fun () -> procs.(i) i)
        else Terminated)
  in
  let outcomes = Array.make n Running in
  let pending = Array.make n Op.Start in
  let steps_of = Array.make n 0 in
  let total = ref 0 in
  let alive () =
    Pset.filter
      (fun i -> match fibers.(i) with Terminated -> false | _ -> true)
      participants
  in
  let kill pid =
    (match fibers.(pid) with
    | Suspended k -> (
      (* unwind the fiber so finalizers (if any) run *)
      try ignore (Effect.Deep.discontinue k Killed) with Killed -> ())
    | Not_started _ | Terminated -> ());
    fibers.(pid) <- Terminated;
    outcomes.(pid) <- Crashed steps_of.(pid)
  in
  let step pid =
    (match on_step with
    | Some f -> f ~pid (pending.(pid) : Op.pending)
    | None -> ());
    let status =
      match fibers.(pid) with
      | Not_started f -> Effect.Deep.match_with f () handler
      | Suspended k -> Effect.Deep.continue k ()
      | Terminated -> assert false
    in
    steps_of.(pid) <- steps_of.(pid) + 1;
    incr total;
    match status with
    | Finished r ->
      fibers.(pid) <- Terminated;
      outcomes.(pid) <- Decided r
    | Paused (op, k) ->
      fibers.(pid) <- Suspended k;
      pending.(pid) <-
        (match op with Some op -> Op.Op op | None -> Op.Unlabeled)
  in
  let pending_of i = pending.(i) in
  let hit_budget = ref false in
  let rec loop () =
    let a = alive () in
    if Pset.is_empty a then ()
    else if !total >= max_steps then hit_budget := true
    else
      match Schedule.next ~pending:pending_of schedule ~alive:a with
      | None -> ()
      | Some pid ->
        if Schedule.crash_now schedule ~pid ~steps_taken:steps_of.(pid) then begin
          (match on_crash with Some f -> f ~pid | None -> ());
          kill pid;
          loop ()
        end
        else begin
          step pid;
          loop ()
        end
  in
  loop ();
  { outcomes; steps = !total; hit_step_budget = !hit_budget }

let decided r =
  Array.to_list r.outcomes
  |> List.mapi (fun i o -> (i, o))
  |> List.filter_map (function i, Decided v -> Some (i, v) | _ -> None)

let decided_set r =
  List.fold_left (fun acc (i, _) -> Pset.add i acc) Pset.empty (decided r)
