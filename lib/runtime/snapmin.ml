type instance = { mem : int Memory.t; proposals : int array }

let create ~proposals =
  if Array.length proposals < 1 then
    invalid_arg "Snapmin.create: need at least one proposal";
  { mem = Memory.create (Array.length proposals); proposals }

let n inst = Array.length inst.proposals
let id inst = Memory.id inst.mem
let objects inst = [ ("mem", Memory.id inst.mem) ]
let proposal inst pid = inst.proposals.(pid)

let process ?(biased = false) inst ~pid =
  let own = inst.proposals.(pid) in
  Memory.update inst.mem ~pid own;
  let snap = Memory.snapshot inst.mem in
  let m =
    Array.fold_left
      (fun acc c -> match c with Some v -> min acc v | None -> acc)
      own snap
  in
  if biased then m + 1 else m
