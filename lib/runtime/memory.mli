(** Atomic-snapshot shared memory (Section 2).

    A vector of [n] single-writer cells supporting [update] (write own
    cell) and [snapshot] (read the whole vector atomically). Atomicity
    is obtained from the cooperative executor: both operations perform
    exactly one {!Exec.yield} and then execute without interleaving. *)

type 'a t

val create : int -> 'a t
val n : 'a t -> int

val id : 'a t -> int
(** Globally unique object id, used to label this memory's operations
    in {!Op.t} descriptors. *)

val update : 'a t -> pid:int -> 'a -> unit
(** One atomic step: write the cell of [pid]. *)

val snapshot : 'a t -> 'a option array
(** One atomic step: the current vector ([None] = never written). *)

val get : 'a t -> int -> 'a option
(** One atomic step: read a single cell. *)

val peek : 'a t -> int -> 'a option
(** Non-atomic debug read (no yield) — for assertions and printing
    outside fibers only. *)
