open Fact_topology

type decision = Step of int | Crash of int

type t = {
  n : int;
  participants : Pset.t;
  decisions : decision list;
}

let pid_of = function Step p | Crash p -> p

let make ~n ~participants decisions =
  if n < 1 || n > Pset.max_processes then invalid_arg "Trace.make: bad n";
  if not (Pset.subset participants (Pset.full n)) then
    invalid_arg "Trace.make: participants outside universe";
  let crashed = ref Pset.empty in
  List.iter
    (fun d ->
      let p = pid_of d in
      if not (Pset.mem p participants) then
        invalid_arg "Trace.make: decision on a non-participant";
      if Pset.mem p !crashed then
        invalid_arg "Trace.make: decision on a crashed process";
      match d with
      | Crash p -> crashed := Pset.add p !crashed
      | Step _ -> ())
    decisions;
  { n; participants; decisions }

let n t = t.n
let participants t = t.participants
let decisions t = t.decisions
let length t = List.length t.decisions

let crashes t =
  List.fold_left
    (fun acc -> function Crash p -> Pset.add p acc | Step _ -> acc)
    Pset.empty t.decisions

let pp_decision ppf = function
  | Step p -> Format.fprintf ppf "s%d" p
  | Crash p -> Format.fprintf ppf "c%d" p

let pp ppf t =
  let pp_sep ppf () = Format.pp_print_string ppf " " in
  Format.fprintf ppf "((n %d) (participants (%a)) (decisions (%a)))" t.n
    (Format.pp_print_list ~pp_sep Format.pp_print_int)
    (Pset.to_list t.participants)
    (Format.pp_print_list ~pp_sep pp_decision)
    t.decisions

let to_string t = Format.asprintf "%a" pp t

let equal a b =
  a.n = b.n && Pset.equal a.participants b.participants
  && a.decisions = b.decisions

(* ------------------------------------------------------------------ *)
(* Parsing: a minimal s-expression reader for the fixed shape above.  *)

type sexp = Atom of string | List of sexp list

let tokenize s =
  let toks = ref [] in
  let buf = Buffer.create 8 in
  let flush () =
    if Buffer.length buf > 0 then begin
      toks := `Atom (Buffer.contents buf) :: !toks;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | '(' -> flush (); toks := `LP :: !toks
      | ')' -> flush (); toks := `RP :: !toks
      | ' ' | '\t' | '\n' | '\r' -> flush ()
      | c -> Buffer.add_char buf c)
    s;
  flush ();
  List.rev !toks

let parse_sexp toks =
  let rec go toks =
    match toks with
    | `Atom a :: rest -> Ok (Atom a, rest)
    | `LP :: rest ->
      let rec items acc toks =
        match toks with
        | `RP :: rest -> Ok (List (List.rev acc), rest)
        | [] -> Error "unclosed ("
        | _ ->
          (match go toks with
          | Ok (x, rest) -> items (x :: acc) rest
          | Error _ as e -> e)
      in
      items [] rest
    | `RP :: _ -> Error "unexpected )"
    | [] -> Error "empty input"
  in
  match go toks with
  | Ok (x, []) -> Ok x
  | Ok (_, _ :: _) -> Error "trailing tokens"
  | Error _ as e -> e

let int_atom = function
  | Atom a -> (
    match int_of_string_opt a with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "not an integer: %S" a))
  | List _ -> Error "expected an integer atom"

let decision_atom = function
  | Atom a when String.length a >= 2 -> (
    let p = int_of_string_opt (String.sub a 1 (String.length a - 1)) in
    match (a.[0], p) with
    | 's', Some p -> Ok (Step p)
    | 'c', Some p -> Ok (Crash p)
    | _ -> Error (Printf.sprintf "bad decision %S" a))
  | Atom a -> Error (Printf.sprintf "bad decision %S" a)
  | List _ -> Error "expected a decision atom"

let rec map_result f = function
  | [] -> Ok []
  | x :: rest -> (
    match f x with
    | Ok y -> (
      match map_result f rest with Ok ys -> Ok (y :: ys) | Error _ as e -> e)
    | Error _ as e -> e)

let parse_sexp_string s = parse_sexp (tokenize s)
let int_of_sexp = int_atom
let decision_of_sexp = decision_atom

let of_string s =
  match parse_sexp (tokenize s) with
  | Error _ as e -> e
  | Ok (List
      [
        List [ Atom "n"; n_sexp ];
        List [ Atom "participants"; List parts ];
        List [ Atom "decisions"; List decs ];
      ]) -> (
    match
      ( int_atom n_sexp,
        map_result int_atom parts,
        map_result decision_atom decs )
    with
    | Ok n, Ok parts, Ok decs -> (
      match make ~n ~participants:(Pset.of_list parts) decs with
      | t -> Ok t
      | exception Invalid_argument msg -> Error msg)
    | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e)
  | Ok _ -> Error "expected ((n _) (participants (_)) (decisions (_)))"
