open Fact_topology

type decision = Step of int | Crash of int

type t = {
  n : int;
  participants : Pset.t;
  decisions : decision list;
}

let pid_of = function Step p | Crash p -> p

let make ~n ~participants decisions =
  if n < 1 || n > Pset.max_processes then invalid_arg "Trace.make: bad n";
  if not (Pset.subset participants (Pset.full n)) then
    invalid_arg "Trace.make: participants outside universe";
  let crashed = ref Pset.empty in
  List.iter
    (fun d ->
      let p = pid_of d in
      if not (Pset.mem p participants) then
        invalid_arg "Trace.make: decision on a non-participant";
      if Pset.mem p !crashed then
        invalid_arg "Trace.make: decision on a crashed process";
      match d with
      | Crash p -> crashed := Pset.add p !crashed
      | Step _ -> ())
    decisions;
  { n; participants; decisions }

let n t = t.n
let participants t = t.participants
let decisions t = t.decisions
let length t = List.length t.decisions

let crashes t =
  List.fold_left
    (fun acc -> function Crash p -> Pset.add p acc | Step _ -> acc)
    Pset.empty t.decisions

let pp_decision ppf = function
  | Step p -> Format.fprintf ppf "s%d" p
  | Crash p -> Format.fprintf ppf "c%d" p

let pp ppf t =
  let pp_sep ppf () = Format.pp_print_string ppf " " in
  Format.fprintf ppf "((n %d) (participants (%a)) (decisions (%a)))" t.n
    (Format.pp_print_list ~pp_sep Format.pp_print_int)
    (Pset.to_list t.participants)
    (Format.pp_print_list ~pp_sep pp_decision)
    t.decisions

let to_string t = Format.asprintf "%a" pp t

let equal a b =
  a.n = b.n && Pset.equal a.participants b.participants
  && a.decisions = b.decisions

(* ------------------------------------------------------------------ *)
(* Parsing: the shared s-expression reader (Fact_sexp.Sexp) applied   *)
(* to the fixed shape above.                                          *)

open Fact_sexp

let decision_of_sexp = function
  | Sexp.Atom a when String.length a >= 2 -> (
    let p = int_of_string_opt (String.sub a 1 (String.length a - 1)) in
    match (a.[0], p) with
    | 's', Some p -> Ok (Step p)
    | 'c', Some p -> Ok (Crash p)
    | _ -> Error (Printf.sprintf "bad decision %S" a))
  | Sexp.Atom a -> Error (Printf.sprintf "bad decision %S" a)
  | Sexp.List _ -> Error "expected a decision atom"

let sexp_of_decision d = Sexp.Atom (Format.asprintf "%a" pp_decision d)

let of_string s =
  match Sexp.of_string s with
  | Error _ as e -> e
  | Ok
      (Sexp.List
        [
          Sexp.List [ Sexp.Atom "n"; n_sexp ];
          Sexp.List [ Sexp.Atom "participants"; Sexp.List parts ];
          Sexp.List [ Sexp.Atom "decisions"; Sexp.List decs ];
        ]) -> (
    match
      ( Sexp.to_int n_sexp,
        Sexp.map_result Sexp.to_int parts,
        Sexp.map_result decision_of_sexp decs )
    with
    | Ok n, Ok parts, Ok decs -> (
      match make ~n ~participants:(Pset.of_list parts) decs with
      | t -> Ok t
      | exception Invalid_argument msg -> Error msg)
    | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e)
  | Ok _ -> Error "expected ((n _) (participants (_)) (decisions (_)))"
