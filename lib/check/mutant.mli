(** Seeded protocol mutants, for mutation-testing the assertion DSL.

    Each {!spec} names a deliberately broken variant of one of the
    harness protocols, together with the built-in assertion expected
    to catch it. {!hunt} runs the full counterexample pipeline against
    a mutant: explore until a violation, shrink it assertion-aware
    ({!Minimize.shrink_subject}), then confirm the shrunk trace by a
    {e standalone} replay — the verdict subject is rebuilt from the
    spec alone, so the counterexample is reproducible outside the
    hunting process (and from a serialized trace file).

    A mutant that survives (no violation found) or whose shrunk
    counterexample fails to replay is a bug in the assertions, not in
    the mutant — that is the point of the exercise. *)

type spec = {
  m_protocol : string;  (** ["is"], ["alg1"] or ["wsmin"] *)
  m_name : string;
  m_n : int;            (** smallest process count exhibiting the bug *)
  m_doc : string;
  m_caught_by : string; (** built-in assertion expected to catch it *)
}

val all : spec list
(** Every registered mutant. *)

val find : protocol:string -> string -> spec option

val check_trace : spec -> truncated:bool -> Trace.t -> (unit, string) result
(** Replay a trace against a fresh instance of the mutant under its
    default assertion suite — standalone verdict of a counterexample.
    [truncated] flags a run cut at the depth budget (liveness
    assertions then hold vacuously). *)

type caught = {
  c_spec : spec;
  c_trace : Trace.t;      (** shrunk, standalone-replayable *)
  c_truncated : bool;
  c_message : string;     (** the violated assertion's message *)
}

val hunt :
  ?max_depth:int -> ?max_runs:int -> ?domains:int -> spec ->
  (caught, string) result
(** Run the find → shrink → standalone-replay pipeline (defaults:
    depth 48, 100_000 runs, 1 domain). [Error] carries a diagnosis:
    either no violation was found within the budget, or the shrunk
    counterexample failed to replay. *)
