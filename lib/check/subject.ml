open Fact_runtime

type 'r t = {
  procs : (int -> 'r) array;
  on_step : (pid:int -> Op.pending -> unit) option;
  on_crash : (pid:int -> unit) option;
  check : 'r Exec.report -> truncated:bool -> (unit, string) result;
}

let of_procs ~prop procs =
  {
    procs;
    on_step = None;
    on_crash = None;
    check =
      (fun report ~truncated:_ ->
        if prop report then Ok () else Error "property violated");
  }
