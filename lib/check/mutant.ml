open Fact_topology
open Fact_adversary
open Fact_runtime

type spec = {
  m_protocol : string;
  m_name : string;
  m_n : int;
  m_doc : string;
  m_caught_by : string;
}

let all =
  [
    {
      m_protocol = "is";
      m_name = "split-snapshot";
      m_n = 3;
      m_doc =
        "plain write then separate snapshot instead of an immediate \
         write-snapshot (immediacy breaks for n >= 3)";
      m_caught_by = "is-valid-views";
    };
    {
      m_protocol = "alg1";
      m_name = "skip-wait";
      m_n = 2;
      m_doc = "skip the wait phase of Algorithm 1 (line 6)";
      m_caught_by = "in-ra";
    };
    {
      m_protocol = "alg1";
      m_name = "drop-second-snapshot";
      m_n = 2;
      m_doc =
        "publish to the second IS but read back only the own view, \
         ignoring concurrent first-round views";
      m_caught_by = "in-ra";
    };
    {
      m_protocol = "alg1";
      m_name = "biased-view";
      m_n = 2;
      m_doc = "drop the first pair from any non-singleton second-IS view";
      m_caught_by = "in-ra";
    };
    {
      m_protocol = "wsmin";
      m_name = "biased-decision";
      m_n = 2;
      m_doc = "decide min + 1 instead of min (never a proposed value)";
      m_caught_by = "validity";
    };
  ]

let find ~protocol name =
  List.find_opt (fun s -> s.m_protocol = protocol && s.m_name = name) all

let unknown spec =
  Fact_resilience.Fact_error.precondition ~fn:"Mutant"
    (Printf.sprintf "unknown mutant %s/%s" spec.m_protocol spec.m_name)

let alg1_mutation spec =
  match spec.m_name with
  | "skip-wait" -> Algorithm1.Skip_wait
  | "drop-second-snapshot" -> Algorithm1.Drop_second_snapshot
  | "biased-view" -> Algorithm1.Biased_view
  | _ -> unknown spec

(* Search models for the alg1 mutants: skip-wait is only wrong when
   the wait phase matters, i.e. under 1-OF; the two view mutants are
   hunted under the wait-free adversary (no wait loop, short runs). *)
let alg1_alpha spec =
  match spec.m_name with
  | "skip-wait" -> Agreement.k_obstruction_free ~n:spec.m_n ~k:1
  | _ -> Agreement.of_adversary (Adversary.wait_free spec.m_n)

let alg1_subject spec =
  Harness.alg1_subject ~mutation:(alg1_mutation spec) ~alpha:(alg1_alpha spec)
    ~participants:(Pset.full spec.m_n) ()

let check_trace spec ~truncated tr =
  match spec.m_protocol with
  | "is" ->
    Replay.check ~truncated
      ~subject:
        (Harness.is_subject ~mutation:Harness.Split_snapshot ~n:spec.m_n ())
      tr
  | "alg1" -> Replay.check ~truncated ~subject:(alg1_subject spec) tr
  | "wsmin" ->
    Replay.check ~truncated
      ~subject:
        (Harness.wsmin_subject ~mutation:Harness.Biased_decision ~n:spec.m_n
           ())
      tr
  | _ -> unknown spec

type caught = {
  c_spec : spec;
  c_trace : Trace.t;
  c_truncated : bool;
  c_message : string;
}

let hunt ?(max_depth = 48) ?(max_runs = 100_000) ?(domains = 1) spec =
  (* Polymorphic over the subject's result type so one finisher serves
     all three protocols: take the first violating run, shrink it
     assertion-aware, then confirm the shrunk trace still fails by a
     standalone replay against a subject rebuilt from the spec alone. *)
  let finish : 'r. subject:(unit -> 'r Subject.t) -> 'r Explore.stats ->
      (caught, string) result =
   fun ~subject stats ->
    match stats.Explore.violations with
    | [] ->
      Error
        (Printf.sprintf "%s/%s: no violation found within the budget"
           spec.m_protocol spec.m_name)
    | o :: _ -> (
      let truncated = o.Explore.truncated in
      let tr = Minimize.shrink_subject ~truncated ~subject o.Explore.trace in
      match check_trace spec ~truncated tr with
      | Error msg ->
        Ok { c_spec = spec; c_trace = tr; c_truncated = truncated;
             c_message = msg }
      | Ok () ->
        Error
          (Printf.sprintf
             "%s/%s: shrunk counterexample does not replay standalone"
             spec.m_protocol spec.m_name))
  in
  match spec.m_protocol with
  | "is" ->
    let stats, _ =
      Harness.explore_immediate_snapshot ~mutation:Harness.Split_snapshot
        ~max_depth ~max_runs ~stop_on_violation:true ~domains ~n:spec.m_n ()
    in
    finish
      ~subject:
        (Harness.is_subject ~mutation:Harness.Split_snapshot ~n:spec.m_n ())
      stats
  | "alg1" ->
    let stats =
      Harness.explore_algorithm1 ~mutation:(alg1_mutation spec)
        ~alpha:(alg1_alpha spec) ~participants:(Pset.full spec.m_n)
        ~max_depth ~max_runs ~stop_on_violation:true ~domains ()
    in
    finish ~subject:(alg1_subject spec) stats
  | "wsmin" ->
    let stats =
      Harness.explore_snapmin ~mutation:Harness.Biased_decision ~max_depth
        ~max_runs ~stop_on_violation:true ~domains ~n:spec.m_n ()
    in
    finish
      ~subject:
        (Harness.wsmin_subject ~mutation:Harness.Biased_decision ~n:spec.m_n
           ())
      stats
  | _ -> unknown spec
