(** Deterministic replay of decision traces.

    All protocols of the runtime are deterministic functions of the
    schedule (no hidden randomness, all shared state goes through
    {!Fact_runtime.Memory}), so replaying a {!Trace.t} against fresh
    protocol state reproduces the original run byte-identically:
    same interleaving, same memory contents, same outcomes.

    Decisions that are not applicable at replay time (a step or crash
    of a process that has already finished or crashed — this happens
    for traces edited by the shrinker) are skipped; the run stops when
    the trace is exhausted. *)

open Fact_runtime

val schedule : Trace.t -> Schedule.t
(** A fresh controlled schedule that follows the trace's decisions and
    then stops. Stateful — build a new one per run. *)

val run :
  ?max_steps:int -> procs:(int -> 'r) array -> Trace.t -> 'r Exec.report
(** [run ~procs tr] replays [tr] against freshly created processes
    (the caller must supply fresh shared state — replaying against
    used state is meaningless). *)

val run_subject :
  ?max_steps:int ->
  ?truncated:bool ->
  subject:'r Subject.t ->
  Trace.t ->
  'r Exec.report * (unit, string) result
(** Observed replay: run the trace against a fresh {!Subject.t} with
    its monitor hooks attached, evaluating the subject's assertions
    incrementally along the replay, and return the report together
    with the verdict. [truncated] (default [false]) tells liveness
    assertions the original run hit the depth budget, so they hold
    vacuously — pass it when re-checking a truncated exploration
    outcome. *)

val check :
  ?truncated:bool ->
  subject:(unit -> 'r Subject.t) ->
  Trace.t ->
  (unit, string) result
(** [check ~subject tr]: the verdict of one observed replay of [tr]
    against a fresh subject. This is the standalone counterexample
    checker: a reported violation must fail this check from nothing
    but the trace and the subject builder. *)
