(** A system under test bundled with its observers: the unit the
    explorer and the replayer execute.

    A subject pairs the fresh process closures of one execution with
    the (optional) event hooks and the verdict function of the
    monitors watching that same execution. Bundling them is what lets
    assertion monitors ({!Assertion.subject}) close over the very
    protocol instance the processes share — object ids are
    per-instance, so an observer built against another instance would
    watch the wrong objects.

    Builders are functions [unit -> 'r t]: like the old [procs]
    argument of {!Explore.explore}, every call must return fresh
    state — fresh processes {e and} fresh monitor state. A subject
    whose assertion needs no events has [on_step = on_crash = None]
    and its executions are bit-identical to unmonitored ones. *)

open Fact_runtime

type 'r t = {
  procs : (int -> 'r) array;  (** fresh process closures, one run *)
  on_step : (pid:int -> Op.pending -> unit) option;
      (** forwarded to {!Exec.run}'s [on_step] *)
  on_crash : (pid:int -> unit) option;
      (** forwarded to {!Exec.run}'s [on_crash] *)
  check : 'r Exec.report -> truncated:bool -> (unit, string) result;
      (** the verdict on the run this subject executed; [truncated]
          tells liveness parts to hold vacuously *)
}

val of_procs : prop:('r Exec.report -> bool) -> (int -> 'r) array -> 'r t
(** Wrap plain processes and a boolean report property into a subject
    with no observers — the bridge from the pre-assertion API. *)
