(** Explicit scheduling decision traces.

    A trace is the complete record of one execution of the cooperative
    executor: the universe size, the participating set, and the
    sequence of scheduling decisions — [Step p] (process [p] takes its
    next atomic step) or [Crash p] (process [p] crashes before its next
    step). Because every protocol of the runtime is deterministic given
    its schedule, a trace replays byte-identically ({!Replay}).

    Traces serialize to a small s-expression text form, suitable for
    logs, EXPERIMENTS.md and bug reports:

    {v ((n 3) (participants (0 1 2)) (decisions (s0 s1 c2 s0 s1))) v}

    where [s<p>] is a step of process [p] and [c<p>] a crash. *)

open Fact_topology

type decision = Step of int | Crash of int

type t

val make : n:int -> participants:Pset.t -> decision list -> t
(** Validates that every decision names a participant and that no
    process steps or crashes after it crashed. Raises
    [Invalid_argument] otherwise. *)

val n : t -> int
val participants : t -> Pset.t
val decisions : t -> decision list
val length : t -> int

val crashes : t -> Pset.t
(** The processes crashed by the trace. *)

val to_string : t -> string
val of_string : string -> (t, string) result
(** Inverse of {!to_string}; [Error msg] on malformed input. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_decision : Format.formatter -> decision -> unit

(** {2 S-expression plumbing}

    The grammar and reader live in the shared {!Fact_sexp.Sexp}
    module; only the decision-atom conversions are trace-specific.
    Other persisted artifacts (exploration checkpoints,
    {!Checkpoint}; the [fact serve] wire protocol) build on the same
    module. *)

val decision_of_sexp : Fact_sexp.Sexp.t -> (decision, string) result
(** Decision atoms are [s<p>] / [c<p>], as printed by
    {!pp_decision}. *)

val sexp_of_decision : decision -> Fact_sexp.Sexp.t
