(** A property-based test runner with explicit seeds and shrinking.

    Each of the [count] iterations draws its value from an independent
    random state [Random.State.make [|seed; i|]], so a failure report
    names the exact [(seed, i)] pair and the iteration reproduces in
    isolation — no need to rerun the whole sequence, no global
    {!Random} state involved.

    On failure the counterexample is shrunk greedily with the
    property's {!Shrink.t} before reporting. *)

type 'a result =
  | Ok of { count : int }
      (** all iterations passed *)
  | Fail of {
      seed : int;
      iteration : int;
      original : 'a;
      shrunk : 'a;
      shrink_steps : int;
      error : string option;  (** exception text, if the property raised *)
    }

val check :
  ?count:int ->
  ?shrink:'a Shrink.t ->
  seed:int ->
  name:string ->
  'a Gen.t ->
  ('a -> bool) ->
  'a result
(** [check ~seed ~name gen prop] runs [prop] on [count] (default 100)
    generated values. A property that raises counts as failing. *)

val run :
  ?count:int ->
  ?shrink:'a Shrink.t ->
  ?pp:(Format.formatter -> 'a -> unit) ->
  seed:int ->
  name:string ->
  'a Gen.t ->
  ('a -> bool) ->
  unit
(** Like {!check} but raises [Failure] with a readable report on
    failure — the Alcotest-friendly entry point. *)
