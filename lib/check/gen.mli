(** Random generators with explicit state.

    A generator is a function of a {!Random.State.t}; there is no
    hidden global state, so every value is reproducible from the seed
    that built the state. {!Prop.check} derives one independent state
    per iteration from [(seed, iteration)], so any single failing
    iteration replays standalone. *)

open Fact_topology

type 'a t = Random.State.t -> 'a

val return : 'a -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val pair : 'a t -> 'b t -> ('a * 'b) t

val int : int -> int t
(** [int bound] draws uniformly from [0, bound). *)

val int_range : int -> int -> int t
(** [int_range lo hi] draws uniformly from [lo, hi] inclusive. *)

val bool : bool t
val oneof : 'a list -> 'a t
val list : len:int t -> 'a t -> 'a list t

val subset : Pset.t -> Pset.t t
(** Uniform subset (possibly empty) of the given set. *)

val nonempty_subset : Pset.t -> Pset.t t

val pset : n:int -> Pset.t t
(** Nonempty subset of [Pset.full n]: a random participant set. *)

val run : seed:int -> 'a t -> 'a
(** Run a generator on a fresh state from [seed] alone. *)
