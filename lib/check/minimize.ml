let context_switches tr =
  let pid = function Trace.Step p | Trace.Crash p -> p in
  let rec go = function
    | a :: (b :: _ as rest) -> (if pid a <> pid b then 1 else 0) + go rest
    | [ _ ] | [] -> 0
  in
  go (Trace.decisions tr)

(* Rebuild a trace from an edited decision list, dropping decisions
   made invalid by the edit (steps/crashes after a crash of the same
   process). Replay skips non-applicable decisions anyway; normalizing
   here keeps [Trace.make]'s invariant and the printed form honest. *)
let rebuild tr decisions =
  let crashed = ref Fact_topology.Pset.empty in
  let decisions =
    List.filter
      (fun d ->
        let p = match d with Trace.Step p | Trace.Crash p -> p in
        if Fact_topology.Pset.mem p !crashed then false
        else begin
          (match d with
          | Trace.Crash _ -> crashed := Fact_topology.Pset.add p !crashed
          | Trace.Step _ -> ());
          true
        end)
      decisions
  in
  Trace.make ~n:(Trace.n tr) ~participants:(Trace.participants tr) decisions

let rec drop_nth i = function
  | [] -> []
  | _ :: rest when i = 0 -> rest
  | x :: rest -> x :: drop_nth (i - 1) rest

let rec take k = function
  | [] -> []
  | _ when k = 0 -> []
  | x :: rest -> x :: take (k - 1) rest

let shrink_trace ~still_fails tr =
  let try_candidates current cands =
    List.find_opt (fun c -> not (Trace.equal c current) && still_fails c) cands
  in
  (* Phase 1: cut suffixes, halving from the full length. *)
  let rec cut_suffix tr =
    let ds = Trace.decisions tr in
    let len = List.length ds in
    let rec try_len keep =
      if keep >= len then tr
      else
        let cand = rebuild tr (take keep ds) in
        if still_fails cand then cand else try_len (keep + (max 1 ((len - keep) / 2)))
    in
    let tr' = try_len (len / 2) in
    if Trace.length tr' < len then cut_suffix tr' else tr
  in
  (* Phase 2: drop crash decisions one at a time. *)
  let drop_crashes tr =
    let rec go tr =
      let ds = Trace.decisions tr in
      let cands =
        List.filteri (fun _ d -> match d with Trace.Crash _ -> true | _ -> false)
          ds
        |> List.map (fun c ->
               rebuild tr (List.filter (fun d -> d <> c) ds))
      in
      match try_candidates tr cands with Some c -> go c | None -> tr
    in
    go tr
  in
  (* Phase 3: drop any single decision, restarting after each success. *)
  let drop_singles tr =
    let rec go tr i =
      let ds = Trace.decisions tr in
      if i >= List.length ds then tr
      else
        let cand = rebuild tr (drop_nth i ds) in
        if still_fails cand then go cand i else go tr (i + 1)
    in
    go tr 0
  in
  (* Phase 4: adjacent swaps that reduce context switches. *)
  let reduce_switches tr =
    let rec swap_at i = function
      | a :: b :: rest when i = 0 -> b :: a :: rest
      | x :: rest -> x :: swap_at (i - 1) rest
      | [] -> []
    in
    let rec go tr i =
      let ds = Trace.decisions tr in
      if i + 1 >= List.length ds then tr
      else
        let cand = rebuild tr (swap_at i ds) in
        if
          Trace.length cand = Trace.length tr
          && context_switches cand < context_switches tr
          && still_fails cand
        then go cand 0
        else go tr (i + 1)
    in
    go tr 0
  in
  (* Run phases to a fixpoint: a later phase can enable an earlier one. *)
  let pass tr = reduce_switches (drop_singles (drop_crashes (cut_suffix tr))) in
  let rec fix tr =
    let tr' = pass tr in
    if Trace.equal tr' tr then tr else fix tr'
  in
  fix tr

let shrink ~procs ~fails tr =
  shrink_trace
    ~still_fails:(fun cand -> fails (Replay.run ~procs:(procs ()) cand))
    tr

let shrink_subject ?truncated ~subject tr =
  shrink_trace
    ~still_fails:(fun cand ->
      match Replay.check ?truncated ~subject cand with
      | Ok () -> false
      | Error _ -> true)
    tr
