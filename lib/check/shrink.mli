(** Shrinking strategies for property-test counterexamples.

    A shrinker maps a value to a list of strictly "smaller" candidate
    values, tried in order. {!Prop.check} applies the property's
    shrinker greedily: take the first candidate that still fails,
    restart from it, stop at a local minimum. Shrinkers must be
    well-founded (every chain of candidates is finite) or shrinking
    will diverge. *)

type 'a t = 'a -> 'a list

val nothing : 'a t
(** No candidates: disables shrinking. *)

val int : int t
(** Towards 0: candidates [0, i − i/2, i − i/4, …, i − 1], so greedy
    descent binary-searches down to a pass/fail boundary. *)

val list : 'a t -> 'a list t
(** Drop elements (halves, then singles), then shrink each element. *)

val pair : 'a t -> 'b t -> ('a * 'b) t
