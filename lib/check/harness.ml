open Fact_topology
open Fact_adversary
open Fact_affine
open Fact_runtime

(* ------------------------------------------------------------------ *)
(* One-shot immediate snapshot.                                       *)
(* ------------------------------------------------------------------ *)

let is_procs ~n () =
  let is = Immediate_snapshot.create n in
  Array.init n (fun _ pid -> Immediate_snapshot.write_snapshot is ~pid pid)

let views_of_report report =
  List.map
    (fun (i, view) -> (i, Immediate_snapshot.view_set view))
    (Exec.decided report)

type is_mutation = Split_snapshot

(* The split-snapshot mutant replaces the immediate write-snapshot by
   a plain write followed by a separate snapshot. Containment still
   holds (snapshots of one memory are totally ordered) but immediacy
   breaks for n >= 3, which [is-valid-views] must catch. *)
let is_make ?mutation ~n () =
  match mutation with
  | None ->
    let is = Immediate_snapshot.create n in
    let procs =
      Array.init n (fun _ pid -> Immediate_snapshot.write_snapshot is ~pid pid)
    in
    (procs, [ ("is", Immediate_snapshot.id is) ])
  | Some Split_snapshot ->
    let mem = Memory.create n in
    let procs =
      Array.init n (fun _ pid ->
          Memory.update mem ~pid pid;
          let snap = Memory.snapshot mem in
          Array.to_list snap
          |> List.mapi (fun j c -> (j, c))
          |> List.filter_map (function
               | j, Some v -> Some (j, v)
               | _, None -> None))
    in
    (procs, [ ("is", Memory.id mem) ])

let is_named =
  [
    ( "is-valid-views",
      fun (view : _ Assertion.view) ->
        if Opart.is_valid_views (views_of_report view.Assertion.v_report) then
          Ok ()
        else
          Error
            "is-valid-views: decided views do not form a valid ordered \
             partition (self-inclusion, containment or immediacy broken)" );
  ]

let is_default_assertion =
  Assertion.All
    [ Assertion.Named "is-valid-views"; Assertion.Eventually_decides None ]

let is_subject ?mutation ?(assertion = is_default_assertion) ~n () =
  Assertion.subject ~participants:(Pset.full n)
    ~make:(fun () ->
      let procs, objects = is_make ?mutation ~n () in
      (procs, Assertion.env ~objects ~named:is_named ()))
    assertion

(* ------------------------------------------------------------------ *)
(* Algorithm 1.                                                       *)
(* ------------------------------------------------------------------ *)

let alg1_prop ~ra report =
  match List.map snd (Exec.decided report) with
  | [] -> true
  | outputs -> Complex.mem (Algorithm1.simplex_of_outputs outputs) ra

let alg1_named ~ra =
  [
    ( "in-ra",
      fun (view : _ Assertion.view) ->
        if alg1_prop ~ra view.Assertion.v_report then Ok ()
        else Error "in-ra: the decided outputs form a simplex outside R_A" );
  ]

let alg1_default_assertion =
  Assertion.All [ Assertion.Named "in-ra"; Assertion.Eventually_decides None ]

let alg1_object_names = [ "is1"; "is2"; "reg-is1"; "reg-is2"; "reg-conc" ]

let alg1_subject ?(skip_wait = false) ?mutation ?variant
    ?(assertion = alg1_default_assertion) ~alpha ~participants () =
  let n = Agreement.n alpha in
  let ra = Ra.complex ?variant alpha ~n in
  let skip_wait = skip_wait || mutation = Some Algorithm1.Skip_wait in
  Assertion.subject ~participants
    ~make:(fun () ->
      let inst = Algorithm1.create_instance ~n in
      let procs =
        Array.init n (fun _ pid ->
            Algorithm1.process ~skip_wait ?mutation inst alpha ~pid)
      in
      (procs, Assertion.env ~objects:(Algorithm1.objects inst)
                ~named:(alg1_named ~ra) ()))
    assertion

(* ------------------------------------------------------------------ *)
(* Write–snapshot–decide-min (wsmin).                                 *)
(* ------------------------------------------------------------------ *)

type wsmin_mutation = Biased_decision

let wsmin_default_proposals n = Array.init n (fun i -> 2 * i)

let wsmin_default_assertion ~k =
  Assertion.All
    [ Assertion.Validity; Assertion.Agreement k;
      Assertion.Eventually_decides None ]

let wsmin_subject ?mutation ?proposals ?k ?assertion ~n () =
  let proposals =
    match proposals with Some p -> p | None -> wsmin_default_proposals n
  in
  if Array.length proposals <> n then
    Fact_resilience.Fact_error.precondition ~fn:"Harness.wsmin_subject"
      "need one proposal per process";
  let k = match k with Some k -> k | None -> n in
  let assertion =
    match assertion with Some a -> a | None -> wsmin_default_assertion ~k
  in
  let biased = mutation = Some Biased_decision in
  let plist = Array.to_list proposals |> List.mapi (fun i v -> (i, v)) in
  Assertion.subject ~participants:(Pset.full n)
    ~make:(fun () ->
      let inst = Snapmin.create ~proposals in
      let procs =
        Array.init n (fun _ pid -> Snapmin.process ~biased inst ~pid)
      in
      (procs, Assertion.env ~objects:(Snapmin.objects inst)
                ~decisions_of:Exec.decided ~proposals:plist ()))
    assertion

(* ------------------------------------------------------------------ *)
(* Built-in assertion registry (for [fact assert list] and --assert). *)
(* ------------------------------------------------------------------ *)

type builtin = {
  b_protocol : string;
  b_name : string;
  b_doc : string;
  b_assertion : n:int -> Assertion.t;
}

let builtins =
  [
    {
      b_protocol = "is";
      b_name = "default";
      b_doc = "the full IS oracle: valid views plus termination";
      b_assertion = (fun ~n:_ -> is_default_assertion);
    };
    {
      b_protocol = "is";
      b_name = "is-valid-views";
      b_doc = "decided views form a valid ordered set partition";
      b_assertion = (fun ~n:_ -> Assertion.Named "is-valid-views");
    };
    {
      b_protocol = "is";
      b_name = "termination";
      b_doc = "every participant decides or crashes (vacuous when cut)";
      b_assertion = (fun ~n:_ -> Assertion.Eventually_decides None);
    };
    {
      b_protocol = "alg1";
      b_name = "default";
      b_doc = "the full Theorem 7 oracle: outputs in R_A plus termination";
      b_assertion = (fun ~n:_ -> alg1_default_assertion);
    };
    {
      b_protocol = "alg1";
      b_name = "in-ra";
      b_doc = "decided outputs form a simplex of R_A (Theorem 7 safety)";
      b_assertion = (fun ~n:_ -> Assertion.Named "in-ra");
    };
    {
      b_protocol = "alg1";
      b_name = "termination";
      b_doc = "every participant decides or crashes (vacuous when cut)";
      b_assertion = (fun ~n:_ -> Assertion.Eventually_decides None);
    };
    {
      b_protocol = "alg1";
      b_name = "footprint";
      b_doc =
        "frame condition: processes only touch the two IS objects and \
         the three registers";
      b_assertion =
        (fun ~n -> Assertion.Frame (Pset.full n, alg1_object_names));
    };
    {
      b_protocol = "wsmin";
      b_name = "default";
      b_doc = "validity, n-agreement and termination";
      b_assertion = (fun ~n -> wsmin_default_assertion ~k:n);
    };
    {
      b_protocol = "wsmin";
      b_name = "validity";
      b_doc = "every decided value was proposed";
      b_assertion = (fun ~n:_ -> Assertion.Validity);
    };
    {
      b_protocol = "wsmin";
      b_name = "agreement-1";
      b_doc = "consensus agreement: at most one distinct decided value \
               (has counterexamples — wsmin does not solve consensus)";
      b_assertion = (fun ~n:_ -> Assertion.Agreement 1);
    };
    {
      b_protocol = "wsmin";
      b_name = "termination";
      b_doc = "every participant decides or crashes (vacuous when cut)";
      b_assertion = (fun ~n:_ -> Assertion.Eventually_decides None);
    };
  ]

let builtin ~protocol name =
  List.find_opt
    (fun b -> b.b_protocol = protocol && b.b_name = name)
    builtins

(* ------------------------------------------------------------------ *)
(* Ready-made explorations.                                           *)
(* ------------------------------------------------------------------ *)

let check_resume ~fn ~protocol ~n ~participants = function
  | None -> None
  | Some ck ->
    if ck.Checkpoint.protocol <> protocol then
      Fact_resilience.Fact_error.precondition ~fn
        (Printf.sprintf "checkpoint is for protocol %S, not %S"
           ck.Checkpoint.protocol protocol);
    if ck.Checkpoint.n <> n || not (Pset.equal ck.participants participants)
    then
      Fact_resilience.Fact_error.precondition ~fn
        "checkpoint universe does not match";
    Some ck.Checkpoint.state

let explore_immediate_snapshot ?(max_depth = 64) ?(max_runs = 100_000)
    ?mutation ?assertion ?stop_on_violation ?resume ?checkpoint_every
    ?on_checkpoint ?domains ~n () =
  let parts =
    ref (match resume with Some ck -> ck.Checkpoint.parts | None -> [])
  in
  (* [record] runs on worker domains under parallel exploration,
     possibly concurrently and (if the run budget trips) more than
     once per run — a locked set-insert is both thread-safe and
     idempotent. *)
  let parts_lock = Mutex.create () in
  let record (outcome : _ Explore.outcome) =
    if not outcome.truncated then
      match Opart.of_views (views_of_report outcome.report) with
      | Some part ->
        Mutex.lock parts_lock;
        if not (List.exists (Opart.equal part) !parts) then
          parts := part :: !parts;
        Mutex.unlock parts_lock
      | None -> ()
  in
  let participants = Pset.full n in
  let resume_state =
    check_resume ~fn:"Harness.explore_immediate_snapshot" ~protocol:"is" ~n
      ~participants resume
  in
  let on_checkpoint =
    Option.map
      (fun f state ->
        let parts_now =
          Mutex.lock parts_lock;
          let ps = List.sort Opart.compare !parts in
          Mutex.unlock parts_lock;
          ps
        in
        f
          {
            Checkpoint.protocol = "is";
            n;
            participants;
            state;
            parts = parts_now;
          })
      on_checkpoint
  in
  let stats =
    Explore.explore
      ~config:(Explore.config ~max_depth ~max_runs ())
      ?stop_on_violation ~on_run:record ?resume:resume_state ?checkpoint_every
      ?on_checkpoint ?domains ~n ~participants
      ~subject:(is_subject ?mutation ?assertion ~n ())
      ()
  in
  (stats, List.sort Opart.compare !parts)

let explore_algorithm1 ?(skip_wait = false) ?mutation ?variant ?assertion
    ?max_crashes ?(max_depth = 64) ?(max_runs = 100_000) ?stop_on_violation
    ?resume ?checkpoint_every ?on_checkpoint ?domains ~alpha ~participants () =
  let n = Agreement.n alpha in
  let max_crashes =
    match max_crashes with
    | Some c -> c
    | None -> (
      match Agreement.max_faulty alpha participants with
      | Some t -> t
      | None -> 0)
  in
  let resume_state =
    check_resume ~fn:"Harness.explore_algorithm1" ~protocol:"alg1" ~n
      ~participants resume
  in
  let on_checkpoint =
    Option.map
      (fun f state ->
        f { Checkpoint.protocol = "alg1"; n; participants; state; parts = [] })
      on_checkpoint
  in
  Explore.explore
    ~config:
      (Explore.config ~max_crashes ~crashable:participants ~max_depth
         ~max_runs ())
    ?stop_on_violation ?resume:resume_state ?checkpoint_every ?on_checkpoint
    ?domains ~n ~participants
    ~subject:
      (alg1_subject ~skip_wait ?mutation ?variant ?assertion ~alpha
         ~participants ())
    ()

let explore_snapmin ?mutation ?proposals ?k ?assertion ?(max_depth = 64)
    ?(max_runs = 100_000) ?stop_on_violation ?resume ?checkpoint_every
    ?on_checkpoint ?domains ~n () =
  let participants = Pset.full n in
  let resume_state =
    check_resume ~fn:"Harness.explore_snapmin" ~protocol:"wsmin" ~n
      ~participants resume
  in
  let on_checkpoint =
    Option.map
      (fun f state ->
        f { Checkpoint.protocol = "wsmin"; n; participants; state; parts = [] })
      on_checkpoint
  in
  Explore.explore
    ~config:(Explore.config ~max_depth ~max_runs ())
    ?stop_on_violation ?resume:resume_state ?checkpoint_every ?on_checkpoint
    ?domains ~n ~participants
    ~subject:(wsmin_subject ?mutation ?proposals ?k ?assertion ~n ())
    ()
