open Fact_topology
open Fact_adversary
open Fact_affine
open Fact_runtime

let is_procs ~n () =
  let is = Immediate_snapshot.create n in
  Array.init n (fun _ pid -> Immediate_snapshot.write_snapshot is ~pid pid)

let views_of_report report =
  List.map
    (fun (i, view) -> (i, Immediate_snapshot.view_set view))
    (Exec.decided report)

let explore_immediate_snapshot ?(max_depth = 64) ?(max_runs = 100_000) ~n ()
    =
  let parts = ref [] in
  let record (outcome : _ Explore.outcome) =
    if not outcome.truncated then
      match Opart.of_views (views_of_report outcome.report) with
      | Some part when not (List.exists (Opart.equal part) !parts) ->
        parts := part :: !parts
      | Some _ | None -> ()
  in
  let stats =
    Explore.explore
      ~config:(Explore.config ~max_depth ~max_runs ())
      ~on_run:record ~n ~participants:(Pset.full n) ~procs:(is_procs ~n)
      ~prop:(fun report -> Opart.is_valid_views (views_of_report report))
      ()
  in
  (stats, List.sort Opart.compare !parts)

let alg1_prop ~ra report =
  match List.map snd (Exec.decided report) with
  | [] -> true
  | outputs -> Complex.mem (Algorithm1.simplex_of_outputs outputs) ra

let explore_algorithm1 ?(skip_wait = false) ?variant ?max_crashes
    ?(max_depth = 64) ?(max_runs = 100_000) ?stop_on_violation ~alpha
    ~participants () =
  let n = Agreement.n alpha in
  let max_crashes =
    match max_crashes with
    | Some c -> c
    | None -> (
      match Agreement.max_faulty alpha participants with
      | Some t -> t
      | None -> 0)
  in
  let ra = Ra.complex ?variant alpha ~n in
  let procs () =
    let inst = Algorithm1.create_instance ~n in
    Array.init n (fun _ pid -> Algorithm1.process ~skip_wait inst alpha ~pid)
  in
  Explore.explore
    ~config:
      (Explore.config ~max_crashes ~crashable:participants ~max_depth
         ~max_runs ())
    ?stop_on_violation ~n ~participants ~procs ~prop:(alg1_prop ~ra) ()
