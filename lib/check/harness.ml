open Fact_topology
open Fact_adversary
open Fact_affine
open Fact_runtime

let is_procs ~n () =
  let is = Immediate_snapshot.create n in
  Array.init n (fun _ pid -> Immediate_snapshot.write_snapshot is ~pid pid)

let views_of_report report =
  List.map
    (fun (i, view) -> (i, Immediate_snapshot.view_set view))
    (Exec.decided report)

let explore_immediate_snapshot ?(max_depth = 64) ?(max_runs = 100_000)
    ?resume ?checkpoint_every ?on_checkpoint ?domains ~n () =
  let parts =
    ref (match resume with Some ck -> ck.Checkpoint.parts | None -> [])
  in
  (* [record] runs on worker domains under parallel exploration,
     possibly concurrently and (if the run budget trips) more than
     once per run — a locked set-insert is both thread-safe and
     idempotent. *)
  let parts_lock = Mutex.create () in
  let record (outcome : _ Explore.outcome) =
    if not outcome.truncated then
      match Opart.of_views (views_of_report outcome.report) with
      | Some part ->
        Mutex.lock parts_lock;
        if not (List.exists (Opart.equal part) !parts) then
          parts := part :: !parts;
        Mutex.unlock parts_lock
      | None -> ()
  in
  let participants = Pset.full n in
  let resume_state =
    match resume with
    | None -> None
    | Some ck ->
      if ck.Checkpoint.protocol <> "is" then
        Fact_resilience.Fact_error.precondition
          ~fn:"Harness.explore_immediate_snapshot"
          (Printf.sprintf "checkpoint is for protocol %S, not \"is\""
             ck.Checkpoint.protocol);
      if ck.Checkpoint.n <> n || not (Pset.equal ck.participants participants)
      then
        Fact_resilience.Fact_error.precondition
          ~fn:"Harness.explore_immediate_snapshot"
          "checkpoint universe does not match";
      Some ck.Checkpoint.state
  in
  let on_checkpoint =
    Option.map
      (fun f state ->
        let parts_now =
          Mutex.lock parts_lock;
          let ps = List.sort Opart.compare !parts in
          Mutex.unlock parts_lock;
          ps
        in
        f
          {
            Checkpoint.protocol = "is";
            n;
            participants;
            state;
            parts = parts_now;
          })
      on_checkpoint
  in
  let stats =
    Explore.explore
      ~config:(Explore.config ~max_depth ~max_runs ())
      ~on_run:record ?resume:resume_state ?checkpoint_every ?on_checkpoint
      ?domains ~n ~participants ~procs:(is_procs ~n)
      ~prop:(fun report -> Opart.is_valid_views (views_of_report report))
      ()
  in
  (stats, List.sort Opart.compare !parts)

let alg1_prop ~ra report =
  match List.map snd (Exec.decided report) with
  | [] -> true
  | outputs -> Complex.mem (Algorithm1.simplex_of_outputs outputs) ra

let explore_algorithm1 ?(skip_wait = false) ?variant ?max_crashes
    ?(max_depth = 64) ?(max_runs = 100_000) ?stop_on_violation ?resume
    ?checkpoint_every ?on_checkpoint ?domains ~alpha ~participants () =
  let n = Agreement.n alpha in
  let max_crashes =
    match max_crashes with
    | Some c -> c
    | None -> (
      match Agreement.max_faulty alpha participants with
      | Some t -> t
      | None -> 0)
  in
  let ra = Ra.complex ?variant alpha ~n in
  let procs () =
    let inst = Algorithm1.create_instance ~n in
    Array.init n (fun _ pid -> Algorithm1.process ~skip_wait inst alpha ~pid)
  in
  let resume_state =
    match resume with
    | None -> None
    | Some ck ->
      if ck.Checkpoint.protocol <> "alg1" then
        Fact_resilience.Fact_error.precondition
          ~fn:"Harness.explore_algorithm1"
          (Printf.sprintf "checkpoint is for protocol %S, not \"alg1\""
             ck.Checkpoint.protocol);
      if ck.Checkpoint.n <> n || not (Pset.equal ck.participants participants)
      then
        Fact_resilience.Fact_error.precondition
          ~fn:"Harness.explore_algorithm1"
          "checkpoint universe does not match";
      Some ck.Checkpoint.state
  in
  let on_checkpoint =
    Option.map
      (fun f state ->
        f { Checkpoint.protocol = "alg1"; n; participants; state; parts = [] })
      on_checkpoint
  in
  Explore.explore
    ~config:
      (Explore.config ~max_crashes ~crashable:participants ~max_depth
         ~max_runs ())
    ?stop_on_violation ?resume:resume_state ?checkpoint_every ?on_checkpoint
    ?domains ~n ~participants ~procs ~prop:(alg1_prop ~ra) ()
