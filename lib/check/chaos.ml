open Fact_topology
open Fact_adversary
open Fact_affine
open Fact_resilience

type stats = {
  injected : int;
  worker_crash : int;
  worker_transient : int;
  cancellations : int;
  evictions : int;
  explore_storms : int;
  assertion_sweeps : int;
  typed_errors : int;
  completed : int;
  violations : string list;
}

(* The fan-out workload: big enough to split into several chunks. *)
let items = List.init 60 Fun.id
let f_ref x = (x * x) + 1
let expected = List.map f_ref items

let run ?(seed = 0) ~max_faults () =
  if max_faults < 1 then
    Fact_error.precondition ~fn:"Chaos.run" "max_faults must be >= 1";
  let rng = Random.State.make [| seed; 0xc4a05 |] in
  let worker_crash = ref 0 in
  let worker_transient = ref 0 in
  let cancellations = ref 0 in
  let evictions = ref 0 in
  let explore_storms = ref 0 in
  let assertion_sweeps = ref 0 in
  let typed_errors = ref 0 in
  let completed = ref 0 in
  let violations = ref [] in
  let violation fmt =
    Printf.ksprintf (fun m -> violations := m :: !violations) fmt
  in
  (* Pipeline references, computed fault-free up front. Two agreement
     functions so cache keys for distinct α coexist under chaos. *)
  let alphas =
    [
      Agreement.of_adversary (Adversary.t_resilient ~n:3 ~t:1);
      Agreement.of_adversary (Adversary.wait_free 3);
    ]
  in
  let refs = List.map (fun a -> (a, Ra.complex a ~n:3)) alphas in
  (* Uninterrupted parallel-exploration reference for the explore
     storm, forced once on first use. *)
  let explore_ref =
    lazy
      (let stats, parts = Harness.explore_immediate_snapshot ~n:3 () in
       ( stats.Explore.runs,
         stats.Explore.truncated,
         stats.Explore.pruned,
         stats.Explore.crash_patterns,
         parts ))
  in
  let check_pipeline what =
    List.iter
      (fun (a, reference) ->
        match Ra.complex a ~n:3 with
        | c ->
          if not (Complex.equal c reference) then
            violation "%s: R_A differs from the fault-free reference" what
        | exception e ->
          violation "%s: fault-free recompute raised %s" what
            (Printexc.to_string e))
      refs
  in
  (* Recompute-equality checking stays on for the whole storm so every
     eviction is audited. *)
  Cache.set_check true;
  for _ = 1 to max_faults do
    match Random.State.int rng 6 with
    | 0 -> (
      (* Deterministic worker crash: must aggregate to Worker_failure
         and leave the fan-out reusable. *)
      incr worker_crash;
      let bad = Random.State.int rng (List.length items) in
      (match
         Parallel.map ~domains:4
           (fun x ->
             if x = bad then failwith "chaos: injected worker crash"
             else f_ref x)
           items
       with
      | _ -> violation "worker crash: deterministic fault returned a result"
      | exception Fact_error.Error (Fact_error.Worker_failure _) ->
        incr typed_errors
      | exception e ->
        violation "worker crash: untyped escape %s" (Printexc.to_string e));
      match Parallel.map ~domains:4 f_ref items with
      | r ->
        if r = expected then incr completed
        else violation "worker crash: post-fault fan-out is wrong"
      | exception e ->
        violation "worker crash: post-fault fan-out raised %s"
          (Printexc.to_string e))
    | 1 -> (
      (* Transient fault: fails the first time only; the sequential
         retry must recover the exact reference result. *)
      incr worker_transient;
      let bad = Random.State.int rng (List.length items) in
      let lock = Mutex.create () in
      let tripped = ref false in
      let f x =
        if x = bad then begin
          Mutex.lock lock;
          let first = not !tripped in
          tripped := true;
          Mutex.unlock lock;
          if first then failwith "chaos: transient worker fault"
        end;
        f_ref x
      in
      match Parallel.map ~domains:4 f items with
      | r ->
        if r = expected then incr completed
        else violation "transient: retried result differs from reference"
      | exception e ->
        violation "transient: retry did not absorb the fault (%s)"
          (Printexc.to_string e))
    | 2 -> (
      (* Mid-pipeline cancellation: trips after a random number of
         polls; outcome must be the reference result or a typed
         Cancelled, and the pipeline must stay healthy afterwards. *)
      let alpha, reference = List.nth refs (Random.State.int rng 2) in
      let tok = Cancel.create ~trip_after:(Random.State.int rng 40) () in
      (match Cancel.with_token tok (fun () -> Ra.complex alpha ~n:3) with
      | c ->
        if Complex.equal c reference then incr completed
        else violation "cancel: completed run differs from reference"
      | exception Fact_error.Error (Fact_error.Cancelled _) ->
        incr cancellations;
        incr typed_errors
      | exception e ->
        violation "cancel: untyped escape %s" (Printexc.to_string e));
      check_pipeline "cancel")
    | 3 -> (
      (* Explore storm: cancel a pooled parallel exploration
         mid-search, then resume fault-free from the snapshot flushed
         on the trip; the resumed stats must be bit-identical to the
         uninterrupted reference. *)
      incr explore_storms;
      let runs_ref, trunc_ref, pruned_ref, patterns_ref, parts_ref =
        Lazy.force explore_ref
      in
      let saved = ref None in
      let tok = Cancel.create ~trip_after:(1 + Random.State.int rng 2500) () in
      let first =
        match
          Cancel.with_token tok (fun () ->
              Harness.explore_immediate_snapshot ~n:3 ~checkpoint_every:100
                ~on_checkpoint:(fun ck -> saved := Some ck)
                ~domains:4 ())
        with
        | r -> Some r
        | exception Fact_error.Error (Fact_error.Cancelled _) ->
          incr cancellations;
          incr typed_errors;
          None
        | exception e ->
          violation "explore storm: untyped escape %s" (Printexc.to_string e);
          None
      in
      let final =
        match first with
        | Some r -> Some r
        | None -> (
          match
            Harness.explore_immediate_snapshot ?resume:!saved ~domains:4 ~n:3
              ()
          with
          | r -> Some r
          | exception e ->
            violation "explore storm: resume raised %s" (Printexc.to_string e);
            None)
      in
      match final with
      | None -> ()
      | Some (stats, parts) ->
        if
          stats.Explore.runs = runs_ref
          && stats.Explore.truncated = trunc_ref
          && stats.Explore.pruned = pruned_ref
          && stats.Explore.crash_patterns = patterns_ref
          && List.length parts = List.length parts_ref
          && List.for_all2 Opart.equal parts parts_ref
        then incr completed
        else violation "explore storm: resumed stats differ from reference")
    | 4 -> (
      (* Assertion sweep: a random seeded mutant must still be caught
         by the DSL, with a shrunk counterexample that replays
         standalone. A surviving mutant means the assertion suite lost
         its teeth. *)
      incr assertion_sweeps;
      let spec =
        List.nth Mutant.all (Random.State.int rng (List.length Mutant.all))
      in
      match Mutant.hunt ~max_runs:20_000 spec with
      | Ok _ -> incr completed
      | Error msg -> violation "assertion sweep: %s" msg)
    | _ ->
      (* Forced eviction under recompute-equality checking: the
         recomputed pipeline must match; a cache that recomputes a
         different value raises from inside [find_or_add]. *)
      incr evictions;
      let before = List.length !violations in
      Cache.force_evict_all ();
      check_pipeline "evict";
      if List.length !violations = before then incr completed
  done;
  Cache.set_check false;
  {
    injected = max_faults;
    worker_crash = !worker_crash;
    worker_transient = !worker_transient;
    cancellations = !cancellations;
    evictions = !evictions;
    explore_storms = !explore_storms;
    assertion_sweeps = !assertion_sweeps;
    typed_errors = !typed_errors;
    completed = !completed;
    violations = List.rev !violations;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "injected %d (worker crash %d, transient %d, cancel trips %d, \
     evictions %d, explore storms %d, assertion sweeps %d) typed errors \
     %d completed %d violations %d"
    s.injected s.worker_crash s.worker_transient s.cancellations s.evictions
    s.explore_storms s.assertion_sweeps s.typed_errors s.completed
    (List.length s.violations)
