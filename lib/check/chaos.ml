open Fact_topology
open Fact_adversary
open Fact_affine
open Fact_resilience

type stats = {
  injected : int;
  worker_crash : int;
  worker_transient : int;
  cancellations : int;
  evictions : int;
  typed_errors : int;
  completed : int;
  violations : string list;
}

(* The fan-out workload: big enough to split into several chunks. *)
let items = List.init 60 Fun.id
let f_ref x = (x * x) + 1
let expected = List.map f_ref items

let run ?(seed = 0) ~max_faults () =
  if max_faults < 1 then
    Fact_error.precondition ~fn:"Chaos.run" "max_faults must be >= 1";
  let rng = Random.State.make [| seed; 0xc4a05 |] in
  let worker_crash = ref 0 in
  let worker_transient = ref 0 in
  let cancellations = ref 0 in
  let evictions = ref 0 in
  let typed_errors = ref 0 in
  let completed = ref 0 in
  let violations = ref [] in
  let violation fmt =
    Printf.ksprintf (fun m -> violations := m :: !violations) fmt
  in
  (* Pipeline references, computed fault-free up front. Two agreement
     functions so cache keys for distinct α coexist under chaos. *)
  let alphas =
    [
      Agreement.of_adversary (Adversary.t_resilient ~n:3 ~t:1);
      Agreement.of_adversary (Adversary.wait_free 3);
    ]
  in
  let refs = List.map (fun a -> (a, Ra.complex a ~n:3)) alphas in
  let check_pipeline what =
    List.iter
      (fun (a, reference) ->
        match Ra.complex a ~n:3 with
        | c ->
          if not (Complex.equal c reference) then
            violation "%s: R_A differs from the fault-free reference" what
        | exception e ->
          violation "%s: fault-free recompute raised %s" what
            (Printexc.to_string e))
      refs
  in
  (* Recompute-equality checking stays on for the whole storm so every
     eviction is audited. *)
  Cache.set_check true;
  for _ = 1 to max_faults do
    match Random.State.int rng 4 with
    | 0 -> (
      (* Deterministic worker crash: must aggregate to Worker_failure
         and leave the fan-out reusable. *)
      incr worker_crash;
      let bad = Random.State.int rng (List.length items) in
      (match
         Parallel.map ~domains:4
           (fun x ->
             if x = bad then failwith "chaos: injected worker crash"
             else f_ref x)
           items
       with
      | _ -> violation "worker crash: deterministic fault returned a result"
      | exception Fact_error.Error (Fact_error.Worker_failure _) ->
        incr typed_errors
      | exception e ->
        violation "worker crash: untyped escape %s" (Printexc.to_string e));
      match Parallel.map ~domains:4 f_ref items with
      | r ->
        if r = expected then incr completed
        else violation "worker crash: post-fault fan-out is wrong"
      | exception e ->
        violation "worker crash: post-fault fan-out raised %s"
          (Printexc.to_string e))
    | 1 -> (
      (* Transient fault: fails the first time only; the sequential
         retry must recover the exact reference result. *)
      incr worker_transient;
      let bad = Random.State.int rng (List.length items) in
      let lock = Mutex.create () in
      let tripped = ref false in
      let f x =
        if x = bad then begin
          Mutex.lock lock;
          let first = not !tripped in
          tripped := true;
          Mutex.unlock lock;
          if first then failwith "chaos: transient worker fault"
        end;
        f_ref x
      in
      match Parallel.map ~domains:4 f items with
      | r ->
        if r = expected then incr completed
        else violation "transient: retried result differs from reference"
      | exception e ->
        violation "transient: retry did not absorb the fault (%s)"
          (Printexc.to_string e))
    | 2 -> (
      (* Mid-pipeline cancellation: trips after a random number of
         polls; outcome must be the reference result or a typed
         Cancelled, and the pipeline must stay healthy afterwards. *)
      let alpha, reference = List.nth refs (Random.State.int rng 2) in
      let tok = Cancel.create ~trip_after:(Random.State.int rng 40) () in
      (match Cancel.with_token tok (fun () -> Ra.complex alpha ~n:3) with
      | c ->
        if Complex.equal c reference then incr completed
        else violation "cancel: completed run differs from reference"
      | exception Fact_error.Error (Fact_error.Cancelled _) ->
        incr cancellations;
        incr typed_errors
      | exception e ->
        violation "cancel: untyped escape %s" (Printexc.to_string e));
      check_pipeline "cancel")
    | _ ->
      (* Forced eviction under recompute-equality checking: the
         recomputed pipeline must match; a cache that recomputes a
         different value raises from inside [find_or_add]. *)
      incr evictions;
      let before = List.length !violations in
      Cache.force_evict_all ();
      check_pipeline "evict";
      if List.length !violations = before then incr completed
  done;
  Cache.set_check false;
  {
    injected = max_faults;
    worker_crash = !worker_crash;
    worker_transient = !worker_transient;
    cancellations = !cancellations;
    evictions = !evictions;
    typed_errors = !typed_errors;
    completed = !completed;
    violations = List.rev !violations;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "injected %d (worker crash %d, transient %d, cancel trips %d, \
     evictions %d) typed errors %d completed %d violations %d"
    s.injected s.worker_crash s.worker_transient s.cancellations s.evictions
    s.typed_errors s.completed
    (List.length s.violations)
