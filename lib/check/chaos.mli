(** Fault-injection harness for the resilience layer.

    Each injection picks one fault kind at random (seeded, so runs are
    reproducible) and checks the corresponding invariant:

    - {b worker crash}: a deterministically-failing chunk inside
      {!Fact_topology.Parallel.map} must surface as a single typed
      [Worker_failure] — never a raw exception, a hang, or a partial
      result — and the very next fan-out must succeed (no leaked
      domains or poisoned state).
    - {b transient worker fault}: a chunk that fails once and then
      succeeds must be recovered by the sequential retry, with the
      result byte-identical to the fault-free reference.
    - {b cancellation}: an ambient {!Fact_resilience.Cancel} token
      tripping after a random number of polls inside [Ra.complex]
      either lets the call complete with the reference result or
      raises a typed [Cancelled]; a fault-free recompute afterwards
      still matches the reference.
    - {b explore storm}: an ambient token cancels a parallel
      exploration (one-shot IS, [n = 3], on the domain pool)
      mid-search; the snapshot flushed on the trip is resumed
      fault-free and the resumed stats and partitions must be
      bit-identical to the uninterrupted reference.
    - {b assertion sweep}: a random seeded {!Mutant} is hunted with
      the assertion DSL as a fault-campaign dimension — the mutant
      must still be caught, and its shrunk counterexample must replay
      standalone; a surviving mutant is a violation (the assertions
      lost their teeth).
    - {b forced eviction}: with recompute-equality checking on, all
      bounded caches are flushed mid-pipeline and the recomputed
      [R_A] must equal the reference (a mismatch raises from the cache
      itself and is reported as a violation).

    [run] returns counts per kind plus any violation messages; a
    healthy tree reports [violations = []]. *)

type stats = {
  injected : int;         (** total faults injected *)
  worker_crash : int;
  worker_transient : int;
  cancellations : int;    (** cancel faults that actually tripped *)
  evictions : int;
  explore_storms : int;   (** cancel-and-resume exploration faults *)
  assertion_sweeps : int; (** mutant hunts via the assertion DSL *)
  typed_errors : int;     (** faults surfacing as typed [Fact_error] *)
  completed : int;        (** faults absorbed with correct results *)
  violations : string list;  (** invariant failures, oldest first *)
}

val run : ?seed:int -> max_faults:int -> unit -> stats
(** [run ~max_faults ()] injects [max_faults] faults (default
    [seed = 0]). Raises a [Precondition] {!Fact_resilience.Fact_error}
    if [max_faults < 1]. *)

val pp_stats : Format.formatter -> stats -> unit
