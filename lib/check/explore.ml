open Fact_topology
open Fact_runtime

type config = {
  max_crashes : int;
  crashable : Pset.t;
  max_depth : int;
  max_runs : int;
}

let config ?(max_crashes = 0) ?(crashable = Pset.empty) ?(max_depth = 256)
    ?(max_runs = 100_000) () =
  if max_depth < 1 then invalid_arg "Explore.config: max_depth < 1";
  if max_runs < 1 then invalid_arg "Explore.config: max_runs < 1";
  { max_crashes; crashable; max_depth; max_runs }

type 'r outcome = {
  report : 'r Exec.report;
  trace : Trace.t;
  truncated : bool;
}

type 'r stats = {
  runs : int;
  truncated : int;
  pruned : int;
  crash_patterns : int;
  violations : 'r outcome list;
  exhausted : bool;
}

(* A resumable snapshot of the DFS: the counters so far plus, for every
   depth of the current path, the chosen decision and the fully
   explored siblings. [enabled], [sleep0], [ops] and [crashes_before]
   are deliberately absent — they are deterministic functions of the
   decision prefix and are rebuilt by re-executing one (uncounted
   at checkpoint time) run along [frontier]. *)
type checkpoint = {
  ck_runs : int;
  ck_truncated : int;
  ck_pruned : int;
  ck_patterns : int list; (* Pset masks of completed runs' faulty sets *)
  frontier : (Trace.decision * Trace.decision list) list;
      (* (chosen, done) per depth, outermost first *)
}

(* A node of the decision tree, one per depth of the current DFS path.
   [enabled] is fixed at node creation; [chosen] is the decision of the
   current run; [done_] accumulates fully-explored siblings; [sleep0]
   is the node's inherited sleep set; [ops] snapshots every process's
   pending operation for the independence checks. *)
type node = {
  mutable chosen : Trace.decision;
  mutable done_ : Trace.decision list;
  sleep0 : Trace.decision list;
  enabled : Trace.decision list;
  ops : Op.pending array;
  crashes_before : int;
}

(* Independence of two decisions available at the same node: used both
   to filter sleep sets through a fired transition and to justify not
   exploring both orders. Crash(p) commutes with any decision of
   another process except another crash (two crashes compete for the
   same budget, so firing one can disable the other). *)
let independent node d1 d2 =
  match (d1, d2) with
  | Trace.Step p, Trace.Step q ->
    p <> q && Op.commute node.ops.(p) node.ops.(q)
  | Trace.Crash p, Trace.Step q | Trace.Step q, Trace.Crash p -> p <> q
  | Trace.Crash _, Trace.Crash _ -> false

let explore ?(config = config ()) ?(stop_on_violation = false)
    ?(on_run = fun _ -> ()) ?resume ?(checkpoint_every = 0)
    ?(on_checkpoint = fun _ -> ()) ~n ~participants ~procs ~prop () =
  let cfg = config in
  let path : node option array = Array.make cfg.max_depth None in
  let plen = ref 0 in
  let runs = ref 0 in
  let truncated_runs = ref 0 in
  let pruned = ref 0 in
  let violations = ref [] in
  let patterns = Hashtbl.create 16 in
  (* Resume: restore the counters; the frontier is reinstalled by
     forcing the first run along the checkpointed decisions, rebuilding
     each node's [enabled]/[sleep0]/[ops] deterministically. *)
  let forced, forced_done =
    match resume with
    | None -> ([||], [||])
    | Some ck ->
      runs := ck.ck_runs;
      truncated_runs := ck.ck_truncated;
      pruned := ck.ck_pruned;
      List.iter (fun m -> Hashtbl.replace patterns m ()) ck.ck_patterns;
      ( Array.of_list (List.map fst ck.frontier),
        Array.of_list (List.map snd ck.frontier) )
  in
  let forcing = ref (Array.length forced > 0) in
  let node_at i = match path.(i) with Some nd -> nd | None -> assert false in

  (* One execution following the current path as prefix, extending it
     with fresh nodes past the end. Returns the report plus whether the
     run was truncated (depth budget) or sleep-blocked (pruned). *)
  let run_once () =
    let depth = ref 0 in
    let truncated = ref false in
    let blocked = ref false in
    let crash_flag = ref (-1) in
    let next ~alive ~pending =
      if !depth >= cfg.max_depth then begin
        truncated := true;
        None
      end
      else begin
        let decision =
          if !depth < !plen then Some (node_at !depth).chosen
          else begin
            let parent = if !depth = 0 then None else path.(!depth - 1) in
            let crashes_before =
              match parent with
              | None -> 0
              | Some par ->
                par.crashes_before
                + (match par.chosen with Trace.Crash _ -> 1 | _ -> 0)
            in
            let steps =
              List.map (fun p -> Trace.Step p) (Pset.to_list alive)
            in
            let crashes =
              if crashes_before < cfg.max_crashes then
                List.map
                  (fun p -> Trace.Crash p)
                  (Pset.to_list (Pset.inter alive cfg.crashable))
              else []
            in
            let enabled = steps @ crashes in
            let sleep0 =
              match parent with
              | None -> []
              | Some par ->
                List.filter
                  (fun z -> independent par z par.chosen)
                  (par.sleep0 @ par.done_)
            in
            let choice =
              if !forcing && !depth < Array.length forced then begin
                (* Resume: rebuild the checkpointed node. The forced
                   decision must still be enabled — anything else means
                   the checkpoint was taken against a different
                   protocol or configuration. *)
                let d = forced.(!depth) in
                if not (List.mem d enabled) then
                  Fact_resilience.Fact_error.precondition
                    ~fn:"Explore.explore"
                    "checkpoint does not match the protocol (forced \
                     decision not enabled)";
                Some (d, forced_done.(!depth))
              end
              else
                match
                  List.find_opt (fun d -> not (List.mem d sleep0)) enabled
                with
                | None -> None
                | Some d -> Some (d, [])
            in
            match choice with
            | None ->
              (* Every enabled decision is asleep: all continuations are
                 commutation-equivalent to already-explored runs. *)
              blocked := true;
              None
            | Some (d, done0) ->
              let ops = Array.init n (fun i -> pending i) in
              path.(!depth) <-
                Some
                  { chosen = d; done_ = done0; sleep0; enabled; ops;
                    crashes_before };
              plen := !depth + 1;
              Some d
          end
        in
        match decision with
        | None -> None
        | Some d ->
          incr depth;
          (match d with
          | Trace.Step p -> Some p
          | Trace.Crash p ->
            crash_flag := p;
            Some p)
      end
    in
    let crash_now ~pid ~steps_taken:_ =
      if !crash_flag = pid then begin
        crash_flag := -1;
        true
      end
      else false
    in
    let schedule = Schedule.controlled ~n ~participants ~next ~crash_now in
    let report =
      Exec.run ~max_steps:(cfg.max_depth + 1) ~schedule (procs ())
    in
    (report, !truncated, !blocked)
  in

  (* Move to the next unexplored branch: mark the deepest node's chosen
     decision as done, pick a fresh sibling if any, else pop. Returns
     false when the tree is exhausted. *)
  let rec backtrack () =
    if !plen = 0 then false
    else begin
      let nd = node_at (!plen - 1) in
      nd.done_ <- nd.chosen :: nd.done_;
      let available =
        List.filter
          (fun d -> not (List.mem d nd.done_ || List.mem d nd.sleep0))
          nd.enabled
      in
      match available with
      | d :: _ ->
        nd.chosen <- d;
        true
      | [] ->
        decr plen;
        path.(!plen) <- None;
        backtrack ()
    end
  in

  let current_trace () =
    Trace.make ~n ~participants
      (List.init !plen (fun i -> (node_at i).chosen))
  in

  (* Snapshot for resume. Taken at the top of the loop, so the frontier
     is exactly the prefix the next (not yet counted) run will follow:
     a resumed exploration replays that one run under forcing and then
     continues as if never interrupted. *)
  let current_checkpoint () =
    {
      ck_runs = !runs;
      ck_truncated = !truncated_runs;
      ck_pruned = !pruned;
      ck_patterns = Hashtbl.fold (fun m () acc -> m :: acc) patterns [];
      frontier =
        List.init !plen (fun i ->
            let nd = node_at i in
            (nd.chosen, nd.done_));
    }
  in

  let executions = ref 0 in
  let exhausted = ref false in
  let stop = ref false in
  while (not !stop) && !executions < cfg.max_runs do
    (* Cancellation is polled once per run; a trip flushes a final
       checkpoint so the exploration can be resumed later. *)
    (try Fact_resilience.Cancel.poll ~where:"Explore.explore"
     with Fact_resilience.Fact_error.Error _ as e ->
       on_checkpoint (current_checkpoint ());
       raise e);
    if
      checkpoint_every > 0 && !executions > 0
      && !executions mod checkpoint_every = 0
    then on_checkpoint (current_checkpoint ());
    let report, truncated, blocked = run_once () in
    forcing := false;
    incr executions;
    if blocked then incr pruned
    else begin
      if truncated then incr truncated_runs else incr runs;
      let outcome = { report; trace = current_trace (); truncated } in
      if not truncated then begin
        let faulty = Trace.crashes outcome.trace in
        if not (Hashtbl.mem patterns (Pset.to_mask faulty)) then
          Hashtbl.add patterns (Pset.to_mask faulty) ()
      end;
      on_run outcome;
      if not (prop report) then begin
        violations := outcome :: !violations;
        if stop_on_violation then stop := true
      end
    end;
    if not !stop then
      if not (backtrack ()) then begin
        exhausted := true;
        stop := true
      end
  done;
  {
    runs = !runs;
    truncated = !truncated_runs;
    pruned = !pruned;
    crash_patterns = Hashtbl.length patterns;
    violations = List.rev !violations;
    exhausted = !exhausted;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "runs %d (truncated %d, pruned %d) crash patterns %d violations %d%s"
    s.runs s.truncated s.pruned s.crash_patterns
    (List.length s.violations)
    (if s.exhausted then " [exhaustive]" else " [budget hit]")
