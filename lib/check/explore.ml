open Fact_topology
open Fact_runtime

type config = {
  max_crashes : int;
  crashable : Pset.t;
  max_depth : int;
  max_runs : int;
}

let config ?(max_crashes = 0) ?(crashable = Pset.empty) ?(max_depth = 256)
    ?(max_runs = 100_000) () =
  if max_depth < 1 then invalid_arg "Explore.config: max_depth < 1";
  if max_runs < 1 then invalid_arg "Explore.config: max_runs < 1";
  { max_crashes; crashable; max_depth; max_runs }

type 'r outcome = {
  report : 'r Exec.report;
  trace : Trace.t;
  truncated : bool;
}

type 'r stats = {
  runs : int;
  truncated : int;
  pruned : int;
  crash_patterns : int;
  violations : 'r outcome list;
  exhausted : bool;
}

(* A resumable snapshot of one DFS: the counters so far plus, for every
   depth of the current path, the chosen decision and the fully
   explored siblings. [enabled], [sleep0], [ops] and [crashes_before]
   are deliberately absent — they are deterministic functions of the
   decision prefix and are rebuilt by re-executing one (uncounted
   at checkpoint time) run along [frontier]. *)
type checkpoint = {
  ck_runs : int;
  ck_truncated : int;
  ck_pruned : int;
  ck_patterns : int list; (* Pset masks of completed runs' faulty sets *)
  ck_viol : (Trace.decision list * bool) list;
      (* violating runs so far as (decisions, truncated), oldest first.
         Only the traces are persisted — never the verdicts: a resume
         re-evaluates each one by observed replay against the current
         subject, so checkpoints survive assertion changes. *)
  frontier : (Trace.decision * Trace.decision list) list;
      (* (chosen, done) per depth, outermost first *)
}

(* Parallel exploration splits the decision tree into subtree tasks,
   each identified by a forced (chosen, done)-prefix. The prefix pins
   both the path into the tree and the sibling context (which branches
   of each prefix node the task owns are exactly [enabled \ (done ∪
   sleep)], all deterministic functions of the prefix), so a task is a
   self-contained unit of work and the partition refines the
   sequential DFS. *)
type tally = {
  t_runs : int;
  t_truncated : int;
  t_pruned : int;
  t_patterns : int list;
  t_viol : (Trace.decision list * bool) list;
  t_exhausted : bool;
}

type progress = Todo | Done of tally | Active of checkpoint

type subtree = {
  prefix : (Trace.decision * Trace.decision list) list;
  progress : progress;
}

type snapshot = Seq of checkpoint | Par of subtree list

let zero_tally =
  {
    t_runs = 0;
    t_truncated = 0;
    t_pruned = 0;
    t_patterns = [];
    t_viol = [];
    t_exhausted = false;
  }

let tally_of_checkpoint ck =
  {
    t_runs = ck.ck_runs;
    t_truncated = ck.ck_truncated;
    t_pruned = ck.ck_pruned;
    t_patterns = ck.ck_patterns;
    t_viol = ck.ck_viol;
    t_exhausted = false;
  }

(* Re-establish recorded violating runs against the *current* subject:
   each persisted trace is replayed (uncounted) with a fresh monitor
   and kept only if an assertion still fails. Trusting the snapshot
   verdict instead would let a checkpoint taken under one assertion
   set poison a resume under another. *)
let restore_viols ~n ~participants ~subject viols =
  List.filter_map
    (fun (ds, truncated) ->
      let tr = Trace.make ~n ~participants ds in
      let subj = subject () in
      let report, verdict = Replay.run_subject ~truncated ~subject:subj tr in
      match verdict with
      | Ok () -> None
      | Error _ -> Some { report; trace = tr; truncated })
    viols

(* A node of the decision tree, one per depth of the current DFS path.
   [enabled] is fixed at node creation; [chosen] is the decision of the
   current run; [done_] accumulates fully-explored siblings; [sleep0]
   is the node's inherited sleep set; [ops] snapshots every process's
   pending operation for the independence checks. *)
type node = {
  mutable chosen : Trace.decision;
  mutable done_ : Trace.decision list;
  sleep0 : Trace.decision list;
  enabled : Trace.decision list;
  ops : Op.pending array;
  crashes_before : int;
}

(* Independence of two decisions available at the same node: used both
   to filter sleep sets through a fired transition and to justify not
   exploring both orders. Crash(p) commutes with any decision of
   another process except another crash (two crashes compete for the
   same budget, so firing one can disable the other). *)
let independent node d1 d2 =
  match (d1, d2) with
  | Trace.Step p, Trace.Step q ->
    p <> q && Op.commute node.ops.(p) node.ops.(q)
  | Trace.Crash p, Trace.Step q | Trace.Step q, Trace.Crash p -> p <> q
  | Trace.Crash _, Trace.Crash _ -> false

(* Raised by a subtree task's per-execution hook when the shared run
   budget trips or a lower-indexed task already found a violation: the
   task's speculative results are discarded, never merged. *)
exception Task_abort

type 'r core_result = {
  r_stats : 'r stats;
  r_patterns : int list; (* final distinct masks, incl. restored ones *)
  r_executions : int;    (* executions performed by this invocation *)
}

(* The sequential DFS core. [forced] replays a decision prefix (a
   resume frontier or a subtree prefix) on the first run; [floor] is
   the backtrack floor — nodes at depths < floor belong to the caller's
   partition and are never advanced, so the search covers exactly the
   subtree below the prefix. [budget] bounds executions performed by
   this invocation; [on_execution] runs before each one (the parallel
   driver's shared-budget / abort hook). [capture = Some (d, cell)]
   switches to probe mode: one execution, record into [cell] the
   branch decisions at depth [d] (enabled minus sleep set), count
   nothing. *)
let explore_core ~cfg ~stop_on_violation ~on_run ~base ~forced ~floor ~budget
    ~on_execution ~checkpoint_every ~on_checkpoint ~capture ~n ~participants
    ~subject () =
  let path : node option array = Array.make cfg.max_depth None in
  let plen = ref 0 in
  let runs = ref base.t_runs in
  let truncated_runs = ref base.t_truncated in
  let pruned = ref base.t_pruned in
  (* newest first; restored base violations (uncounted re-evaluating
     replays) come first in trace order *)
  let violations =
    ref (List.rev (restore_viols ~n ~participants ~subject base.t_viol))
  in
  let patterns = Hashtbl.create 16 in
  List.iter (fun m -> Hashtbl.replace patterns m ()) base.t_patterns;
  let forced_d = Array.of_list (List.map fst forced) in
  let forced_done = Array.of_list (List.map snd forced) in
  let forcing = ref (Array.length forced_d > 0) in
  let node_at i = match path.(i) with Some nd -> nd | None -> assert false in

  (* One execution following the current path as prefix, extending it
     with fresh nodes past the end. Returns the report plus whether the
     run was truncated (depth budget) or sleep-blocked (pruned). *)
  let run_once () =
    let depth = ref 0 in
    let truncated = ref false in
    let blocked = ref false in
    let crash_flag = ref (-1) in
    let next ~alive ~pending =
      if !depth >= cfg.max_depth then begin
        truncated := true;
        None
      end
      else begin
        let decision =
          if !depth < !plen then Some (node_at !depth).chosen
          else begin
            let parent = if !depth = 0 then None else path.(!depth - 1) in
            let crashes_before =
              match parent with
              | None -> 0
              | Some par ->
                par.crashes_before
                + (match par.chosen with Trace.Crash _ -> 1 | _ -> 0)
            in
            let steps =
              List.map (fun p -> Trace.Step p) (Pset.to_list alive)
            in
            let crashes =
              if crashes_before < cfg.max_crashes then
                List.map
                  (fun p -> Trace.Crash p)
                  (Pset.to_list (Pset.inter alive cfg.crashable))
              else []
            in
            let enabled = steps @ crashes in
            let sleep0 =
              match parent with
              | None -> []
              | Some par ->
                List.filter
                  (fun z -> independent par z par.chosen)
                  (par.sleep0 @ par.done_)
            in
            let choice =
              if !forcing && !depth < Array.length forced_d then begin
                (* Resume or subtree prefix: rebuild the recorded node.
                   The forced decision must still be enabled — anything
                   else means the checkpoint was taken against a
                   different protocol or configuration. *)
                let d = forced_d.(!depth) in
                if not (List.mem d enabled) then
                  Fact_resilience.Fact_error.precondition
                    ~fn:"Explore.explore"
                    "checkpoint does not match the protocol (forced \
                     decision not enabled)";
                Some (d, forced_done.(!depth))
              end
              else
                match
                  List.find_opt (fun d -> not (List.mem d sleep0)) enabled
                with
                | None -> None
                | Some d -> Some (d, [])
            in
            match choice with
            | None ->
              (* Every enabled decision is asleep: all continuations are
                 commutation-equivalent to already-explored runs. *)
              blocked := true;
              None
            | Some (d, done0) ->
              let ops = Array.init n (fun i -> pending i) in
              path.(!depth) <-
                Some
                  { chosen = d; done_ = done0; sleep0; enabled; ops;
                    crashes_before };
              plen := !depth + 1;
              Some d
          end
        in
        match decision with
        | None -> None
        | Some d ->
          incr depth;
          (match d with
          | Trace.Step p -> Some p
          | Trace.Crash p ->
            crash_flag := p;
            Some p)
      end
    in
    let crash_now ~pid ~steps_taken:_ =
      if !crash_flag = pid then begin
        crash_flag := -1;
        true
      end
      else false
    in
    let schedule = Schedule.controlled ~n ~participants ~next ~crash_now in
    let subj : _ Subject.t = subject () in
    let report =
      Exec.run ~max_steps:(cfg.max_depth + 1) ?on_step:subj.Subject.on_step
        ?on_crash:subj.Subject.on_crash ~schedule subj.Subject.procs
    in
    (subj, report, !truncated, !blocked)
  in

  (* Move to the next unexplored branch: mark the deepest node's chosen
     decision as done, pick a fresh sibling if any, else pop — but
     never past [floor]: prefix nodes belong to the caller's partition.
     Returns false when the subtree is exhausted. *)
  let rec backtrack () =
    if !plen <= floor then false
    else begin
      let nd = node_at (!plen - 1) in
      nd.done_ <- nd.chosen :: nd.done_;
      let available =
        List.filter
          (fun d -> not (List.mem d nd.done_ || List.mem d nd.sleep0))
          nd.enabled
      in
      match available with
      | d :: _ ->
        nd.chosen <- d;
        true
      | [] ->
        decr plen;
        path.(!plen) <- None;
        backtrack ()
    end
  in

  let current_trace () =
    Trace.make ~n ~participants
      (List.init !plen (fun i -> (node_at i).chosen))
  in

  (* Snapshot for resume. Taken at the top of the loop, so the frontier
     is exactly the prefix the next (not yet counted) run will follow:
     a resumed exploration replays that one run under forcing and then
     continues as if never interrupted. Before the first run the path
     is still empty, so fall back to the pending forced prefix — a
     flush must never lose the task's position. *)
  let current_checkpoint () =
    {
      ck_runs = !runs;
      ck_truncated = !truncated_runs;
      ck_pruned = !pruned;
      ck_patterns = Hashtbl.fold (fun m () acc -> m :: acc) patterns [];
      ck_viol =
        List.rev_map
          (fun o -> (Trace.decisions o.trace, o.truncated))
          !violations;
      frontier =
        (if !forcing then forced
         else
           List.init !plen (fun i ->
               let nd = node_at i in
               (nd.chosen, nd.done_)));
    }
  in

  let executions = ref 0 in
  let exhausted = ref false in
  let stop = ref false in
  while (not !stop) && !executions < budget do
    (match on_execution with None -> () | Some hook -> hook ());
    (* Cancellation is polled once per run; a trip flushes a final
       checkpoint so the exploration can be resumed later. *)
    (try Fact_resilience.Cancel.poll ~where:"Explore.explore"
     with Fact_resilience.Fact_error.Error _ as e ->
       on_checkpoint (current_checkpoint ());
       raise e);
    if
      checkpoint_every > 0 && !executions > 0
      && !executions mod checkpoint_every = 0
    then on_checkpoint (current_checkpoint ());
    let subj, report, truncated, blocked = run_once () in
    forcing := false;
    incr executions;
    (match capture with
    | Some (d, cell) ->
      (* probe mode: record the branch decisions at depth [d] — the
         node's enabled minus its sleep set, in enabled order, which is
         exactly the branch set the sequential DFS explores there *)
      if d < !plen then begin
        let nd = node_at d in
        cell :=
          Some
            (List.filter (fun x -> not (List.mem x nd.sleep0)) nd.enabled)
      end;
      stop := true
    | None ->
      if blocked then incr pruned
      else begin
        if truncated then incr truncated_runs else incr runs;
        let outcome = { report; trace = current_trace (); truncated } in
        if not truncated then begin
          let faulty = Trace.crashes outcome.trace in
          if not (Hashtbl.mem patterns (Pset.to_mask faulty)) then
            Hashtbl.add patterns (Pset.to_mask faulty) ()
        end;
        on_run outcome;
        (match subj.Subject.check report ~truncated with
        | Ok () -> ()
        | Error _ ->
          violations := outcome :: !violations;
          if stop_on_violation then stop := true)
      end;
      if not !stop then
        if not (backtrack ()) then begin
          exhausted := true;
          stop := true
        end)
  done;
  {
    r_stats =
      {
        runs = !runs;
        truncated = !truncated_runs;
        pruned = !pruned;
        crash_patterns = Hashtbl.length patterns;
        violations = List.rev !violations;
        exhausted = !exhausted;
      };
    r_patterns = Hashtbl.fold (fun m () acc -> m :: acc) patterns [];
    r_executions = !executions;
  }

(* ------------------------------------------------------------------ *)
(* Subtree splitting.                                                 *)
(* ------------------------------------------------------------------ *)

(* The branch set the sequential DFS explores at a node is [enabled \
   sleep0] in enabled order; the [done] context each branch sees is the
   previously-explored siblings, newest first. *)
let expand_children explored =
  let rec go done_ acc = function
    | [] -> List.rev acc
    | d :: rest -> go (d :: done_) ((d, done_) :: acc) rest
  in
  go [] [] explored

(* Split the decision tree into subtree prefixes, in DFS order. Each
   level probes every expandable leaf with one uncounted forced
   execution to read the branch decisions at the leaf's depth; leaves
   whose run ends, blocks or truncates before that depth stay whole.
   Expansion stops once there are enough tasks to keep [domains]
   workers busy (or at a fixed depth cap — beyond it task granularity
   no longer matters, stealing balances the load). *)
let split_subtrees ~cfg ~domains ~n ~participants ~subject =
  let probe prefix =
    let depth = List.length prefix in
    if depth >= cfg.max_depth then None
    else begin
      let cell = ref None in
      ignore
        (explore_core ~cfg ~stop_on_violation:false ~on_run:(fun _ -> ())
           ~base:zero_tally ~forced:prefix ~floor:depth ~budget:1
           ~on_execution:None ~checkpoint_every:0
           ~on_checkpoint:(fun _ -> ())
           ~capture:(Some (depth, cell)) ~n ~participants ~subject ());
      !cell
    end
  in
  let target = 2 * domains in
  let max_levels = 3 in
  let rec level leaves count remaining =
    if remaining = 0 || count >= target then leaves
    else
      let expanded =
        List.concat_map
          (fun (prefix, expandable) ->
            if not expandable then [ (prefix, false) ]
            else
              match probe prefix with
              | None | Some [] -> [ (prefix, false) ]
              | Some explored ->
                List.map
                  (fun (d, dn) -> (prefix @ [ (d, dn) ], true))
                  (expand_children explored))
          leaves
      in
      level expanded (List.length expanded) (remaining - 1)
  in
  level [ ([], true) ] 1 max_levels
  |> List.map (fun (prefix, _) -> { prefix; progress = Todo })

(* ------------------------------------------------------------------ *)
(* The parallel driver.                                               *)
(* ------------------------------------------------------------------ *)

(* Deterministic merge of per-task results, in task (= DFS) order.
   Counter sums, pattern-set unions and in-order violation
   concatenation are all independent of how the tree was partitioned
   and of execution interleaving, which is what makes the counts
   bit-identical to the sequential engine for any domain count. *)
type 'r merged_item = M_tally of tally | M_res of 'r core_result

let merge_items items ~restore ~cut =
  let runs = ref 0 and truncated = ref 0 and pruned = ref 0 in
  let patterns = Hashtbl.create 16 in
  let violations = ref [] in
  let exhausted = ref true in
  List.iter
    (fun item ->
      let t_runs, t_trunc, t_pruned, masks, viols, exh =
        match item with
        | M_tally t ->
          ( t.t_runs,
            t.t_truncated,
            t.t_pruned,
            t.t_patterns,
            restore t.t_viol,
            t.t_exhausted )
        | M_res r ->
          ( r.r_stats.runs,
            r.r_stats.truncated,
            r.r_stats.pruned,
            r.r_patterns,
            r.r_stats.violations,
            r.r_stats.exhausted )
      in
      runs := !runs + t_runs;
      truncated := !truncated + t_trunc;
      pruned := !pruned + t_pruned;
      List.iter (fun m -> Hashtbl.replace patterns m ()) masks;
      violations := !violations @ viols;
      if not exh then exhausted := false)
    items;
  {
    runs = !runs;
    truncated = !truncated;
    pruned = !pruned;
    crash_patterns = Hashtbl.length patterns;
    violations = !violations;
    exhausted = (not cut) && !exhausted;
  }

let explore_tasks ~cfg ~stop_on_violation ~on_run ~checkpoint_every
    ~on_checkpoint ~domains ~subtrees ~n ~participants ~subject () =
  let restore = restore_viols ~n ~participants ~subject in
  let subs = Array.of_list subtrees in
  let ntasks = Array.length subs in
  let slots = Array.map (fun st -> st.progress) subs in
  let lock = Mutex.create () in
  let emit_lock = Mutex.create () in
  let snapshot_locked () =
    Par
      (List.init ntasks (fun i ->
           { prefix = subs.(i).prefix; progress = slots.(i) }))
  in
  let set_slot i p ~emit =
    Mutex.lock lock;
    slots.(i) <- p;
    let snap =
      if emit && on_checkpoint <> None then Some (snapshot_locked ())
      else None
    in
    Mutex.unlock lock;
    match (snap, on_checkpoint) with
    | Some s, Some f ->
      Mutex.lock emit_lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock emit_lock) (fun () -> f s)
    | _ -> ()
  in
  let task_inputs i =
    match slots.(i) with
    | Todo -> (zero_tally, subs.(i).prefix)
    | Active ck -> (tally_of_checkpoint ck, ck.frontier)
    | Done _ -> assert false
  in
  let done_tally (r : _ core_result) =
    {
      t_runs = r.r_stats.runs;
      t_truncated = r.r_stats.truncated;
      t_pruned = r.r_stats.pruned;
      t_patterns = r.r_patterns;
      t_viol =
        List.map
          (fun o -> (Trace.decisions o.trace, o.truncated))
          r.r_stats.violations;
      t_exhausted = r.r_stats.exhausted;
    }
  in

  (* Phase 1 — optimistic parallel execution. Every task runs its
     whole subtree; a shared counter implements [max_runs]. If the
     counter ever crosses the budget the bounded-exploration results
     are partition-dependent, so everything from this phase is
     discarded and phase 2 recomputes with exact sequential budget
     semantics. With [stop_on_violation], a violation in task [i]
     makes every higher-indexed task pointless (the sequential engine
     would have stopped inside task [i]'s subtree): they abort early
     and are discarded by the merge cut. *)
  let executed = Atomic.make 0 in
  let tripped = Atomic.make false in
  let viol_floor = Atomic.make max_int in
  let run_task i () =
    let base, forced = task_inputs i in
    let floor = List.length subs.(i).prefix in
    let on_execution () =
      if Atomic.get tripped then raise Task_abort;
      if Atomic.get viol_floor < i then raise Task_abort;
      if Atomic.fetch_and_add executed 1 >= cfg.max_runs then begin
        Atomic.set tripped true;
        raise Task_abort
      end
    in
    let r =
      explore_core ~cfg ~stop_on_violation ~on_run ~base ~forced ~floor
        ~budget:cfg.max_runs ~on_execution:(Some on_execution)
        ~checkpoint_every
        ~on_checkpoint:(fun ck -> set_slot i (Active ck) ~emit:true)
        ~capture:None ~n ~participants ~subject ()
    in
    set_slot i (Done (done_tally r)) ~emit:false;
    if stop_on_violation && r.r_stats.violations <> [] then begin
      let rec lower () =
        let cur = Atomic.get viol_floor in
        if i < cur && not (Atomic.compare_and_set viol_floor cur i) then
          lower ()
      in
      lower ()
    end;
    r
  in
  let torun =
    List.filter
      (fun i -> match slots.(i) with Done _ -> false | _ -> true)
      (List.init ntasks Fun.id)
  in
  let outcomes =
    Parallel.run_all ~workers:domains (List.map (fun i -> run_task i) torun)
  in
  let by_index = Hashtbl.create 16 in
  List.iter2 (fun i o -> Hashtbl.replace by_index i o) torun outcomes;
  let cancellation =
    List.find_map
      (function
        | Error ((e, _) as eb)
          when Fact_resilience.Fact_error.is_cancellation e ->
          Some eb
        | _ -> None)
      outcomes
  in
  match cancellation with
  | Some eb ->
    (* every task settled (cancelled tasks flushed their frontier into
       the slots); surface one final resumable snapshot, then
       propagate the stop request *)
    (match on_checkpoint with
    | None -> ()
    | Some f ->
      Mutex.lock lock;
      let s = snapshot_locked () in
      Mutex.unlock lock;
      Mutex.lock emit_lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock emit_lock) (fun () -> f s));
    Parallel.reraise eb
  | None ->
    if Atomic.get tripped then begin
      (* Phase 2 — the run budget was hit: replay the tasks strictly
         in order with the exact remaining budget, which is literally
         the sequential engine applied subtree by subtree. Costs at
         most one extra pass of [max_runs] executions, and only for
         budget-limited explorations. *)
      Mutex.lock lock;
      Array.iteri (fun i st -> slots.(i) <- st.progress) subs;
      Mutex.unlock lock;
      let budget = ref cfg.max_runs in
      let items = ref [] in
      let stopped = ref false in
      let cut = ref false in
      for i = 0 to ntasks - 1 do
        if not !stopped then
          match subs.(i).progress with
          | Done t -> items := M_tally t :: !items
          | Todo | Active _ ->
            if !budget <= 0 then begin
              stopped := true;
              cut := true
            end
            else begin
              let base, forced = task_inputs i in
              let floor = List.length subs.(i).prefix in
              let r =
                explore_core ~cfg ~stop_on_violation ~on_run ~base ~forced
                  ~floor ~budget:!budget ~on_execution:None ~checkpoint_every
                  ~on_checkpoint:(fun ck -> set_slot i (Active ck) ~emit:true)
                  ~capture:None ~n ~participants ~subject ()
              in
              budget := !budget - r.r_executions;
              set_slot i (Done (done_tally r)) ~emit:false;
              items := M_res r :: !items;
              if stop_on_violation && r.r_stats.violations <> [] then begin
                stopped := true;
                cut := true
              end
            end
      done;
      merge_items (List.rev !items) ~restore ~cut:!cut
    end
    else begin
      let fl = Atomic.get viol_floor in
      let cut = fl < max_int in
      let last = if cut then min fl (ntasks - 1) else ntasks - 1 in
      let items =
        List.init (last + 1) (fun i ->
            match Hashtbl.find_opt by_index i with
            | None -> (
              match subs.(i).progress with
              | Done t -> M_tally t
              | _ -> assert false)
            | Some (Ok r) -> M_res r
            | Some (Error eb) -> Parallel.reraise eb)
      in
      merge_items items ~restore ~cut
    end

(* ------------------------------------------------------------------ *)
(* Public entry point.                                                *)
(* ------------------------------------------------------------------ *)

let explore ?(config = config ()) ?(stop_on_violation = false)
    ?(on_run = fun _ -> ()) ?resume ?(checkpoint_every = 0)
    ?on_checkpoint ?domains ~n ~participants ~subject () =
  let cfg = config in
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> Parallel.default_domains ()
  in
  let seq ~base ~forced =
    let on_checkpoint =
      match on_checkpoint with
      | None -> fun _ -> ()
      | Some f -> fun ck -> f (Seq ck)
    in
    (explore_core ~cfg ~stop_on_violation ~on_run ~base ~forced ~floor:0
       ~budget:cfg.max_runs ~on_execution:None ~checkpoint_every
       ~on_checkpoint ~capture:None ~n ~participants ~subject ())
      .r_stats
  in
  let par subtrees =
    explore_tasks ~cfg ~stop_on_violation ~on_run ~checkpoint_every
      ~on_checkpoint ~domains ~subtrees ~n ~participants ~subject ()
  in
  match resume with
  | Some (Seq ck) -> seq ~base:(tally_of_checkpoint ck) ~forced:ck.frontier
  | Some (Par subtrees) -> par subtrees
  | None ->
    if domains <= 1 then seq ~base:zero_tally ~forced:[]
    else begin
      match split_subtrees ~cfg ~domains ~n ~participants ~subject with
      | [] | [ _ ] ->
        (* nothing to fan out: the tree has at most one subtree task *)
        seq ~base:zero_tally ~forced:[]
      | subtrees -> par subtrees
    end

let pp_stats ppf s =
  Format.fprintf ppf
    "runs %d (truncated %d, pruned %d) crash patterns %d violations %d%s"
    s.runs s.truncated s.pruned s.crash_patterns
    (List.length s.violations)
    (if s.exhausted then " [exhaustive]" else " [budget hit]")
