open Fact_topology
open Fact_sexp

type t = {
  protocol : string;
  n : int;
  participants : Pset.t;
  state : Explore.snapshot;
  parts : Opart.t list;
}

let ints_sx is = Sexp.List (List.map Sexp.int is)

let frontier_entry_sx (d, done_) =
  Sexp.List
    [ Trace.sexp_of_decision d; Sexp.List (List.map Trace.sexp_of_decision done_) ]

let frontier_sx fr = Sexp.List (List.map frontier_entry_sx fr)

let part_sx part =
  Sexp.List (List.map (fun b -> ints_sx (Pset.to_list b)) (Opart.blocks part))

(* A recorded violating run: its decisions, flagged [cut] when the run
   hit the depth budget (liveness assertions hold vacuously on replay)
   and [full] otherwise. The field is omitted when there are no
   violations, so checkpoints written before assertions existed
   round-trip byte-identically. *)
let viol_sx (ds, truncated) =
  Sexp.List
    (Sexp.Atom (if truncated then "cut" else "full")
    :: List.map Trace.sexp_of_decision ds)

let viols_field viols =
  if viols = [] then []
  else
    [ Sexp.List [ Sexp.Atom "violations"; Sexp.List (List.map viol_sx viols) ] ]

(* Sequential snapshots keep the original (PR 3) field layout, so
   checkpoint files written before parallel exploration existed still
   load, and single-DFS checkpoints round-trip byte-identically against
   that format. Parallel snapshots replace the inline DFS state with a
   [subtrees] list: per subtree the identifying prefix and its
   progress — todo, a final tally, or an interrupted frontier. *)
let progress_sx = function
  | Explore.Todo -> Sexp.Atom "todo"
  | Explore.Done t ->
    Sexp.List
      ([
         Sexp.Atom "done";
         Sexp.List [ Sexp.Atom "runs"; Sexp.int t.Explore.t_runs ];
         Sexp.List [ Sexp.Atom "truncated"; Sexp.int t.t_truncated ];
         Sexp.List [ Sexp.Atom "pruned"; Sexp.int t.t_pruned ];
         Sexp.List [ Sexp.Atom "patterns"; ints_sx t.t_patterns ];
         Sexp.List
           [
             Sexp.Atom "exhausted";
             Sexp.Atom (if t.t_exhausted then "true" else "false");
           ];
       ]
      @ viols_field t.t_viol)
  | Explore.Active ck ->
    Sexp.List
      ([
         Sexp.Atom "active";
         Sexp.List [ Sexp.Atom "runs"; Sexp.int ck.Explore.ck_runs ];
         Sexp.List [ Sexp.Atom "truncated"; Sexp.int ck.ck_truncated ];
         Sexp.List [ Sexp.Atom "pruned"; Sexp.int ck.ck_pruned ];
         Sexp.List [ Sexp.Atom "patterns"; ints_sx ck.ck_patterns ];
         Sexp.List [ Sexp.Atom "frontier"; frontier_sx ck.frontier ];
       ]
      @ viols_field ck.ck_viol)

let subtree_sx st =
  Sexp.List
    [
      Sexp.List [ Sexp.Atom "prefix"; frontier_sx st.Explore.prefix ];
      Sexp.List [ Sexp.Atom "status"; progress_sx st.Explore.progress ];
    ]

let to_sexp t =
  let header =
    [
      Sexp.List [ Sexp.Atom "protocol"; Sexp.Atom t.protocol ];
      Sexp.List [ Sexp.Atom "n"; Sexp.int t.n ];
      Sexp.List [ Sexp.Atom "participants"; ints_sx (Pset.to_list t.participants) ];
    ]
  in
  let state =
    match t.state with
    | Explore.Seq ck ->
      [
        Sexp.List [ Sexp.Atom "runs"; Sexp.int ck.Explore.ck_runs ];
        Sexp.List [ Sexp.Atom "truncated"; Sexp.int ck.ck_truncated ];
        Sexp.List [ Sexp.Atom "pruned"; Sexp.int ck.ck_pruned ];
        Sexp.List [ Sexp.Atom "patterns"; ints_sx ck.ck_patterns ];
        Sexp.List [ Sexp.Atom "frontier"; frontier_sx ck.frontier ];
      ]
      @ viols_field ck.ck_viol
    | Explore.Par subs ->
      [ Sexp.List [ Sexp.Atom "subtrees"; Sexp.List (List.map subtree_sx subs) ] ]
  in
  let footer = [ Sexp.List [ Sexp.Atom "parts"; Sexp.List (List.map part_sx t.parts) ] ] in
  Sexp.List (header @ state @ footer)

let to_string t = Sexp.to_string (to_sexp t)

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e

(* Tolerant field access over a list of (key value) pairs: fields may
   gain optional members (like [violations]) without breaking old
   readers, and old files without them still parse. *)
let field name fields =
  List.find_map
    (function
      | Sexp.List [ Sexp.Atom k; v ] when k = name -> Some v
      | _ -> None)
    fields

let req name fields =
  match field name fields with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field (%s ...)" name)

let req_int name fields =
  let* v = req name fields in
  Sexp.to_int v

let req_ints name fields =
  let* v = req name fields in
  match v with
  | Sexp.List is -> Sexp.map_result Sexp.to_int is
  | Sexp.Atom _ -> Error (Printf.sprintf "field %s: expected a list" name)

let entry_of_sexp = function
  | Sexp.List [ d_sx; Sexp.List done_sx ] ->
    let* d = Trace.decision_of_sexp d_sx in
    let* dn = Sexp.map_result Trace.decision_of_sexp done_sx in
    Ok (d, dn)
  | _ -> Error "bad frontier entry: expected (decision (decisions))"

let req_frontier name fields =
  let* v = req name fields in
  match v with
  | Sexp.List fr -> Sexp.map_result entry_of_sexp fr
  | Sexp.Atom _ -> Error (Printf.sprintf "field %s: expected a list" name)

let bool_of_sexp = function
  | Sexp.Atom "true" -> Ok true
  | Sexp.Atom "false" -> Ok false
  | _ -> Error "bad boolean: expected true or false"

let viol_of_sexp = function
  | Sexp.List (Sexp.Atom (("full" | "cut") as flag) :: ds) ->
    let* ds = Sexp.map_result Trace.decision_of_sexp ds in
    Ok (ds, flag = "cut")
  | _ -> Error "bad violation: expected (full|cut decisions...)"

let opt_viols fields =
  match field "violations" fields with
  | None -> Ok []
  | Some (Sexp.List vs) -> Sexp.map_result viol_of_sexp vs
  | Some (Sexp.Atom _) -> Error "field violations: expected a list"

let progress_of_sexp = function
  | Sexp.Atom "todo" -> Ok Explore.Todo
  | Sexp.List (Sexp.Atom "done" :: fields) ->
    let* t_runs = req_int "runs" fields in
    let* t_truncated = req_int "truncated" fields in
    let* t_pruned = req_int "pruned" fields in
    let* t_patterns = req_ints "patterns" fields in
    let* ex_sx = req "exhausted" fields in
    let* t_exhausted = bool_of_sexp ex_sx in
    let* t_viol = opt_viols fields in
    Ok
      (Explore.Done
         { Explore.t_runs; t_truncated; t_pruned; t_patterns; t_viol;
           t_exhausted })
  | Sexp.List (Sexp.Atom "active" :: fields) ->
    let* ck_runs = req_int "runs" fields in
    let* ck_truncated = req_int "truncated" fields in
    let* ck_pruned = req_int "pruned" fields in
    let* ck_patterns = req_ints "patterns" fields in
    let* frontier = req_frontier "frontier" fields in
    let* ck_viol = opt_viols fields in
    Ok
      (Explore.Active
         { Explore.ck_runs; ck_truncated; ck_pruned; ck_patterns; ck_viol;
           frontier })
  | _ -> Error "bad subtree status: expected todo, (done ...) or (active ...)"

let subtree_of_sexp = function
  | Sexp.List fields ->
    let* pre_sx = req_frontier "prefix" fields in
    let* st_sx = req "status" fields in
    let* progress = progress_of_sexp st_sx in
    Ok { Explore.prefix = pre_sx; progress }
  | _ -> Error "bad subtree: expected ((prefix ...) (status ...))"

let parts_of_sexp opart_sx =
  let block = function
    | Sexp.List b ->
      let* is = Sexp.map_result Sexp.to_int b in
      Ok (Pset.of_list is)
    | Sexp.Atom _ -> Error "bad block: expected a list of process ids"
  in
  let opart = function
    | Sexp.List bs -> (
      let* blocks = Sexp.map_result block bs in
      match Opart.make blocks with
      | p -> Ok p
      | exception Invalid_argument m -> Error m)
    | Sexp.Atom _ -> Error "bad partition: expected a list of blocks"
  in
  Sexp.map_result opart opart_sx

let of_sexp = function
  | Sexp.List fields ->
    let* proto_sx = req "protocol" fields in
    let* protocol = Sexp.to_atom proto_sx in
    let* n = req_int "n" fields in
    let* participants = req_ints "participants" fields in
    let* parts =
      let* v = req "parts" fields in
      match v with
      | Sexp.List opart_sx -> parts_of_sexp opart_sx
      | Sexp.Atom _ -> Error "field parts: expected a list"
    in
    let* state =
      match field "subtrees" fields with
      | Some (Sexp.List subs_sx) ->
        let* subtrees = Sexp.map_result subtree_of_sexp subs_sx in
        Ok (Explore.Par subtrees)
      | Some (Sexp.Atom _) -> Error "field subtrees: expected a list"
      | None ->
        let* ck_runs = req_int "runs" fields in
        let* ck_truncated = req_int "truncated" fields in
        let* ck_pruned = req_int "pruned" fields in
        let* ck_patterns = req_ints "patterns" fields in
        let* frontier = req_frontier "frontier" fields in
        let* ck_viol = opt_viols fields in
        Ok
          (Explore.Seq
             { Explore.ck_runs; ck_truncated; ck_pruned; ck_patterns;
               ck_viol; frontier })
    in
    Ok { protocol; n; participants = Pset.of_list participants; state; parts }
  | Sexp.Atom _ -> Error "malformed checkpoint file"

let of_string s =
  let* sx = Sexp.of_string s in
  of_sexp sx

let save file t =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')

let load file =
  let tagged = function
    | Ok _ as ok -> ok
    | Error msg -> Error (file ^ ": " ^ msg)
  in
  match
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> tagged (of_string (String.trim s))
  | exception Sys_error msg -> Error msg
  | exception End_of_file -> Error (file ^ ": truncated read")
