open Fact_topology
open Fact_sexp

type t = {
  protocol : string;
  n : int;
  participants : Pset.t;
  state : Explore.snapshot;
  parts : Opart.t list;
}

let ints_sx is = Sexp.List (List.map Sexp.int is)

let frontier_entry_sx (d, done_) =
  Sexp.List
    [ Trace.sexp_of_decision d; Sexp.List (List.map Trace.sexp_of_decision done_) ]

let frontier_sx fr = Sexp.List (List.map frontier_entry_sx fr)

let part_sx part =
  Sexp.List (List.map (fun b -> ints_sx (Pset.to_list b)) (Opart.blocks part))

(* Sequential snapshots keep the original (PR 3) field layout, so
   checkpoint files written before parallel exploration existed still
   load, and single-DFS checkpoints round-trip byte-identically against
   that format. Parallel snapshots replace the inline DFS state with a
   [subtrees] list: per subtree the identifying prefix and its
   progress — todo, a final tally, or an interrupted frontier. *)
let progress_sx = function
  | Explore.Todo -> Sexp.Atom "todo"
  | Explore.Done t ->
    Sexp.List
      [
        Sexp.Atom "done";
        Sexp.List [ Sexp.Atom "runs"; Sexp.int t.Explore.t_runs ];
        Sexp.List [ Sexp.Atom "truncated"; Sexp.int t.t_truncated ];
        Sexp.List [ Sexp.Atom "pruned"; Sexp.int t.t_pruned ];
        Sexp.List [ Sexp.Atom "patterns"; ints_sx t.t_patterns ];
        Sexp.List
          [
            Sexp.Atom "exhausted";
            Sexp.Atom (if t.t_exhausted then "true" else "false");
          ];
      ]
  | Explore.Active ck ->
    Sexp.List
      [
        Sexp.Atom "active";
        Sexp.List [ Sexp.Atom "runs"; Sexp.int ck.Explore.ck_runs ];
        Sexp.List [ Sexp.Atom "truncated"; Sexp.int ck.ck_truncated ];
        Sexp.List [ Sexp.Atom "pruned"; Sexp.int ck.ck_pruned ];
        Sexp.List [ Sexp.Atom "patterns"; ints_sx ck.ck_patterns ];
        Sexp.List [ Sexp.Atom "frontier"; frontier_sx ck.frontier ];
      ]

let subtree_sx st =
  Sexp.List
    [
      Sexp.List [ Sexp.Atom "prefix"; frontier_sx st.Explore.prefix ];
      Sexp.List [ Sexp.Atom "status"; progress_sx st.Explore.progress ];
    ]

let to_sexp t =
  let header =
    [
      Sexp.List [ Sexp.Atom "protocol"; Sexp.Atom t.protocol ];
      Sexp.List [ Sexp.Atom "n"; Sexp.int t.n ];
      Sexp.List [ Sexp.Atom "participants"; ints_sx (Pset.to_list t.participants) ];
    ]
  in
  let state =
    match t.state with
    | Explore.Seq ck ->
      [
        Sexp.List [ Sexp.Atom "runs"; Sexp.int ck.Explore.ck_runs ];
        Sexp.List [ Sexp.Atom "truncated"; Sexp.int ck.ck_truncated ];
        Sexp.List [ Sexp.Atom "pruned"; Sexp.int ck.ck_pruned ];
        Sexp.List [ Sexp.Atom "patterns"; ints_sx ck.ck_patterns ];
        Sexp.List [ Sexp.Atom "frontier"; frontier_sx ck.frontier ];
      ]
    | Explore.Par subs ->
      [ Sexp.List [ Sexp.Atom "subtrees"; Sexp.List (List.map subtree_sx subs) ] ]
  in
  let footer = [ Sexp.List [ Sexp.Atom "parts"; Sexp.List (List.map part_sx t.parts) ] ] in
  Sexp.List (header @ state @ footer)

let to_string t = Sexp.to_string (to_sexp t)

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e

let entry_of_sexp = function
  | Sexp.List [ d_sx; Sexp.List done_sx ] ->
    let* d = Trace.decision_of_sexp d_sx in
    let* dn = Sexp.map_result Trace.decision_of_sexp done_sx in
    Ok (d, dn)
  | _ -> Error "bad frontier entry: expected (decision (decisions))"

let bool_of_sexp = function
  | Sexp.Atom "true" -> Ok true
  | Sexp.Atom "false" -> Ok false
  | _ -> Error "bad boolean: expected true or false"

let progress_of_sexp = function
  | Sexp.Atom "todo" -> Ok Explore.Todo
  | Sexp.List
      [
        Sexp.Atom "done";
        Sexp.List [ Sexp.Atom "runs"; runs_sx ];
        Sexp.List [ Sexp.Atom "truncated"; tr_sx ];
        Sexp.List [ Sexp.Atom "pruned"; pr_sx ];
        Sexp.List [ Sexp.Atom "patterns"; Sexp.List pat_sx ];
        Sexp.List [ Sexp.Atom "exhausted"; ex_sx ];
      ] ->
    let* t_runs = Sexp.to_int runs_sx in
    let* t_truncated = Sexp.to_int tr_sx in
    let* t_pruned = Sexp.to_int pr_sx in
    let* t_patterns = Sexp.map_result Sexp.to_int pat_sx in
    let* t_exhausted = bool_of_sexp ex_sx in
    Ok
      (Explore.Done
         { Explore.t_runs; t_truncated; t_pruned; t_patterns; t_exhausted })
  | Sexp.List
      [
        Sexp.Atom "active";
        Sexp.List [ Sexp.Atom "runs"; runs_sx ];
        Sexp.List [ Sexp.Atom "truncated"; tr_sx ];
        Sexp.List [ Sexp.Atom "pruned"; pr_sx ];
        Sexp.List [ Sexp.Atom "patterns"; Sexp.List pat_sx ];
        Sexp.List [ Sexp.Atom "frontier"; Sexp.List fr_sx ];
      ] ->
    let* ck_runs = Sexp.to_int runs_sx in
    let* ck_truncated = Sexp.to_int tr_sx in
    let* ck_pruned = Sexp.to_int pr_sx in
    let* ck_patterns = Sexp.map_result Sexp.to_int pat_sx in
    let* frontier = Sexp.map_result entry_of_sexp fr_sx in
    Ok
      (Explore.Active
         { Explore.ck_runs; ck_truncated; ck_pruned; ck_patterns; frontier })
  | _ -> Error "bad subtree status: expected todo, (done ...) or (active ...)"

let subtree_of_sexp = function
  | Sexp.List
      [
        Sexp.List [ Sexp.Atom "prefix"; Sexp.List pre_sx ];
        Sexp.List [ Sexp.Atom "status"; st_sx ];
      ] ->
    let* prefix = Sexp.map_result entry_of_sexp pre_sx in
    let* progress = progress_of_sexp st_sx in
    Ok { Explore.prefix; progress }
  | _ -> Error "bad subtree: expected ((prefix ...) (status ...))"

let parts_of_sexp opart_sx =
  let block = function
    | Sexp.List b ->
      let* is = Sexp.map_result Sexp.to_int b in
      Ok (Pset.of_list is)
    | Sexp.Atom _ -> Error "bad block: expected a list of process ids"
  in
  let opart = function
    | Sexp.List bs -> (
      let* blocks = Sexp.map_result block bs in
      match Opart.make blocks with
      | p -> Ok p
      | exception Invalid_argument m -> Error m)
    | Sexp.Atom _ -> Error "bad partition: expected a list of blocks"
  in
  Sexp.map_result opart opart_sx

let of_sexp sx =
  match sx with
  | Sexp.List
      [
        Sexp.List [ Sexp.Atom "protocol"; Sexp.Atom protocol ];
        Sexp.List [ Sexp.Atom "n"; n_sx ];
        Sexp.List [ Sexp.Atom "participants"; Sexp.List parts_sx ];
        Sexp.List [ Sexp.Atom "runs"; runs_sx ];
        Sexp.List [ Sexp.Atom "truncated"; tr_sx ];
        Sexp.List [ Sexp.Atom "pruned"; pr_sx ];
        Sexp.List [ Sexp.Atom "patterns"; Sexp.List pat_sx ];
        Sexp.List [ Sexp.Atom "frontier"; Sexp.List fr_sx ];
        Sexp.List [ Sexp.Atom "parts"; Sexp.List opart_sx ];
      ] ->
    let* n = Sexp.to_int n_sx in
    let* participants = Sexp.map_result Sexp.to_int parts_sx in
    let* ck_runs = Sexp.to_int runs_sx in
    let* ck_truncated = Sexp.to_int tr_sx in
    let* ck_pruned = Sexp.to_int pr_sx in
    let* ck_patterns = Sexp.map_result Sexp.to_int pat_sx in
    let* frontier = Sexp.map_result entry_of_sexp fr_sx in
    let* parts = parts_of_sexp opart_sx in
    Ok
      {
        protocol;
        n;
        participants = Pset.of_list participants;
        state =
          Explore.Seq
            { Explore.ck_runs; ck_truncated; ck_pruned; ck_patterns; frontier };
        parts;
      }
  | Sexp.List
      [
        Sexp.List [ Sexp.Atom "protocol"; Sexp.Atom protocol ];
        Sexp.List [ Sexp.Atom "n"; n_sx ];
        Sexp.List [ Sexp.Atom "participants"; Sexp.List parts_sx ];
        Sexp.List [ Sexp.Atom "subtrees"; Sexp.List subs_sx ];
        Sexp.List [ Sexp.Atom "parts"; Sexp.List opart_sx ];
      ] ->
    let* n = Sexp.to_int n_sx in
    let* participants = Sexp.map_result Sexp.to_int parts_sx in
    let* subtrees = Sexp.map_result subtree_of_sexp subs_sx in
    let* parts = parts_of_sexp opart_sx in
    Ok
      {
        protocol;
        n;
        participants = Pset.of_list participants;
        state = Explore.Par subtrees;
        parts;
      }
  | _ -> Error "malformed checkpoint file"

let of_string s =
  let* sx = Sexp.of_string s in
  of_sexp sx

let save file t =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')

let load file =
  let tagged = function
    | Ok _ as ok -> ok
    | Error msg -> Error (file ^ ": " ^ msg)
  in
  match
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> tagged (of_string (String.trim s))
  | exception Sys_error msg -> Error msg
  | exception End_of_file -> Error (file ^ ": truncated read")
