open Fact_topology
open Fact_sexp

type t = {
  protocol : string;
  n : int;
  participants : Pset.t;
  state : Explore.checkpoint;
  parts : Opart.t list;
}

let ints_sx is = Sexp.List (List.map Sexp.int is)

let frontier_entry_sx (d, done_) =
  Sexp.List
    [ Trace.sexp_of_decision d; Sexp.List (List.map Trace.sexp_of_decision done_) ]

let part_sx part =
  Sexp.List (List.map (fun b -> ints_sx (Pset.to_list b)) (Opart.blocks part))

let to_sexp t =
  Sexp.List
    [
      Sexp.List [ Sexp.Atom "protocol"; Sexp.Atom t.protocol ];
      Sexp.List [ Sexp.Atom "n"; Sexp.int t.n ];
      Sexp.List [ Sexp.Atom "participants"; ints_sx (Pset.to_list t.participants) ];
      Sexp.List [ Sexp.Atom "runs"; Sexp.int t.state.Explore.ck_runs ];
      Sexp.List [ Sexp.Atom "truncated"; Sexp.int t.state.Explore.ck_truncated ];
      Sexp.List [ Sexp.Atom "pruned"; Sexp.int t.state.Explore.ck_pruned ];
      Sexp.List [ Sexp.Atom "patterns"; ints_sx t.state.Explore.ck_patterns ];
      Sexp.List
        [
          Sexp.Atom "frontier";
          Sexp.List (List.map frontier_entry_sx t.state.Explore.frontier);
        ];
      Sexp.List [ Sexp.Atom "parts"; Sexp.List (List.map part_sx t.parts) ];
    ]

let to_string t = Sexp.to_string (to_sexp t)

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e

let of_sexp sx =
  match sx with
  | Sexp.List
      [
        Sexp.List [ Sexp.Atom "protocol"; Sexp.Atom protocol ];
        Sexp.List [ Sexp.Atom "n"; n_sx ];
        Sexp.List [ Sexp.Atom "participants"; Sexp.List parts_sx ];
        Sexp.List [ Sexp.Atom "runs"; runs_sx ];
        Sexp.List [ Sexp.Atom "truncated"; tr_sx ];
        Sexp.List [ Sexp.Atom "pruned"; pr_sx ];
        Sexp.List [ Sexp.Atom "patterns"; Sexp.List pat_sx ];
        Sexp.List [ Sexp.Atom "frontier"; Sexp.List fr_sx ];
        Sexp.List [ Sexp.Atom "parts"; Sexp.List opart_sx ];
      ] ->
    let* n = Sexp.to_int n_sx in
    let* participants = Sexp.map_result Sexp.to_int parts_sx in
    let* ck_runs = Sexp.to_int runs_sx in
    let* ck_truncated = Sexp.to_int tr_sx in
    let* ck_pruned = Sexp.to_int pr_sx in
    let* ck_patterns = Sexp.map_result Sexp.to_int pat_sx in
    let entry = function
      | Sexp.List [ d_sx; Sexp.List done_sx ] ->
        let* d = Trace.decision_of_sexp d_sx in
        let* dn = Sexp.map_result Trace.decision_of_sexp done_sx in
        Ok (d, dn)
      | _ -> Error "bad frontier entry: expected (decision (decisions))"
    in
    let* frontier = Sexp.map_result entry fr_sx in
    let block = function
      | Sexp.List b ->
        let* is = Sexp.map_result Sexp.to_int b in
        Ok (Pset.of_list is)
      | Sexp.Atom _ -> Error "bad block: expected a list of process ids"
    in
    let opart = function
      | Sexp.List bs -> (
        let* blocks = Sexp.map_result block bs in
        match Opart.make blocks with
        | p -> Ok p
        | exception Invalid_argument m -> Error m)
      | Sexp.Atom _ -> Error "bad partition: expected a list of blocks"
    in
    let* parts = Sexp.map_result opart opart_sx in
    Ok
      {
        protocol;
        n;
        participants = Pset.of_list participants;
        state =
          { Explore.ck_runs; ck_truncated; ck_pruned; ck_patterns; frontier };
        parts;
      }
  | _ -> Error "malformed checkpoint file"

let of_string s =
  let* sx = Sexp.of_string s in
  of_sexp sx

let save file t =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')

let load file =
  let tagged = function
    | Ok _ as ok -> ok
    | Error msg -> Error (file ^ ": " ^ msg)
  in
  match
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> tagged (of_string (String.trim s))
  | exception Sys_error msg -> Error msg
  | exception End_of_file -> Error (file ^ ": truncated read")
