open Fact_topology

type t = {
  protocol : string;
  n : int;
  participants : Pset.t;
  state : Explore.checkpoint;
  parts : Opart.t list;
}

let ints_s is = "(" ^ String.concat " " (List.map string_of_int is) ^ ")"

let decision_s = function
  | Trace.Step p -> "s" ^ string_of_int p
  | Trace.Crash p -> "c" ^ string_of_int p

let frontier_entry_s (d, done_) =
  Printf.sprintf "(%s (%s))" (decision_s d)
    (String.concat " " (List.map decision_s done_))

let part_s part =
  "("
  ^ String.concat " "
      (List.map (fun b -> ints_s (Pset.to_list b)) (Opart.blocks part))
  ^ ")"

let to_string t =
  Printf.sprintf
    "((protocol %s) (n %d) (participants %s) (runs %d) (truncated %d) \
     (pruned %d) (patterns %s) (frontier (%s)) (parts (%s)))"
    t.protocol t.n
    (ints_s (Pset.to_list t.participants))
    t.state.Explore.ck_runs t.state.Explore.ck_truncated
    t.state.Explore.ck_pruned
    (ints_s t.state.Explore.ck_patterns)
    (String.concat " " (List.map frontier_entry_s t.state.Explore.frontier))
    (String.concat " " (List.map part_s t.parts))

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e

let rec map_result f = function
  | [] -> Ok []
  | x :: tl ->
    let* y = f x in
    let* ys = map_result f tl in
    Ok (y :: ys)

let of_string s =
  let open Trace in
  let* sx = parse_sexp_string s in
  match sx with
  | List
      [
        List [ Atom "protocol"; Atom protocol ];
        List [ Atom "n"; n_sx ];
        List [ Atom "participants"; List parts_sx ];
        List [ Atom "runs"; runs_sx ];
        List [ Atom "truncated"; tr_sx ];
        List [ Atom "pruned"; pr_sx ];
        List [ Atom "patterns"; List pat_sx ];
        List [ Atom "frontier"; List fr_sx ];
        List [ Atom "parts"; List opart_sx ];
      ] ->
    let* n = int_of_sexp n_sx in
    let* participants = map_result int_of_sexp parts_sx in
    let* ck_runs = int_of_sexp runs_sx in
    let* ck_truncated = int_of_sexp tr_sx in
    let* ck_pruned = int_of_sexp pr_sx in
    let* ck_patterns = map_result int_of_sexp pat_sx in
    let entry = function
      | List [ d_sx; List done_sx ] ->
        let* d = decision_of_sexp d_sx in
        let* dn = map_result decision_of_sexp done_sx in
        Ok (d, dn)
      | _ -> Error "bad frontier entry: expected (decision (decisions))"
    in
    let* frontier = map_result entry fr_sx in
    let block = function
      | List b ->
        let* is = map_result int_of_sexp b in
        Ok (Pset.of_list is)
      | Atom _ -> Error "bad block: expected a list of process ids"
    in
    let opart = function
      | List bs -> (
        let* blocks = map_result block bs in
        match Opart.make blocks with
        | p -> Ok p
        | exception Invalid_argument m -> Error m)
      | Atom _ -> Error "bad partition: expected a list of blocks"
    in
    let* parts = map_result opart opart_sx in
    Ok
      {
        protocol;
        n;
        participants = Pset.of_list participants;
        state =
          { Explore.ck_runs; ck_truncated; ck_pruned; ck_patterns; frontier };
        parts;
      }
  | _ -> Error "malformed checkpoint file"

let save file t =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')

let load file =
  match
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_string (String.trim s)
  | exception Sys_error msg -> Error msg
  | exception End_of_file -> Error (file ^ ": truncated read")
