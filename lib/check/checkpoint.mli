(** Persistence for interrupted explorations.

    A checkpoint file records everything needed to resume a [fact
    explore] run: which protocol was being explored (so a resume
    against the wrong one fails fast), the universe, the explorer's
    {!Explore.snapshot}, and — for the immediate-snapshot harness —
    the distinct ordered partitions already observed. The format is
    the same s-expression dialect as {!Trace}, one value per file. A
    sequential snapshot keeps the original inline layout (older
    checkpoint files load unchanged):

    {v ((protocol is) (n 2) (participants (0 1)) (runs 5)
        (truncated 0) (pruned 1) (patterns (0 3))
        (frontier ((s0 (s1)) (s1 ())))
        (parts (((0) (1)) ((0 1))))) v}

    A parallel snapshot replaces the inline DFS state with a
    [subtrees] list — per subtree task its identifying prefix and its
    progress ([todo], a final [done] tally, or an interrupted [active]
    frontier):

    {v ((protocol is) (n 2) (participants (0 1))
        (subtrees (((prefix ((s0 ()))) (status todo))
                   ((prefix ((s1 (s0))))
                    (status (active (runs 3) (truncated 0) (pruned 1)
                            (patterns (0)) (frontier ((s1 (s0)) (s0 ()))))))))
        (parts ())) v} *)

open Fact_topology

type t = {
  protocol : string;  (** e.g. ["is"] or ["alg1"]; checked on resume *)
  n : int;
  participants : Pset.t;
  state : Explore.snapshot;
  parts : Opart.t list;
      (** partitions observed so far ([is] harness; empty otherwise) *)
}

val to_string : t -> string
val of_string : string -> (t, string) result

val save : string -> t -> unit
(** [save file t] writes [to_string t] to [file] atomically enough for
    our purposes (truncate + write + close). *)

val load : string -> (t, string) result
(** [load file] reads and parses [file]; [Error msg] on I/O or parse
    failure. The message always names the offending file, so callers
    can surface it verbatim. *)
