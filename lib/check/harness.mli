(** Ready-made explorations of the paper's protocols.

    These glue {!Explore} to the runtime protocols and to the
    topological oracles of the paper:

    - {!explore_immediate_snapshot} enumerates the interleavings of a
      single one-shot immediate snapshot and reconstructs the ordered
      set partition ({!Fact_topology.Opart}) of every completed run —
      the combinatorial side of the [Chr s] ↔ IS-runs correspondence,
      so exhaustive exploration of [n] processes must produce exactly
      the [fubini n] partitions.
    - {!explore_algorithm1} model-checks Theorem 7: under every
      explored interleaving (with crash injection up to the α-model
      bound [α(P) − 1]), the decided outputs of Algorithm 1 form a
      simplex of [R_A]. The [skip_wait] ablation hands the explorer a
      genuinely broken protocol to find counterexamples in. *)

open Fact_topology
open Fact_adversary
open Fact_runtime

val is_procs : n:int -> unit -> (int -> (int * int) list) array
(** Fresh process closures over a fresh one-shot IS for [n] processes:
    process [i] write-snapshots its own id and returns its view.
    Matches the [procs] argument of {!Explore.explore}. *)

val explore_immediate_snapshot :
  ?max_depth:int ->
  ?max_runs:int ->
  ?resume:Checkpoint.t ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(Checkpoint.t -> unit) ->
  ?domains:int ->
  n:int ->
  unit ->
  (int * int) list Explore.stats * Opart.t list
(** Explore all interleavings (failure-free, full participation) of a
    one-shot IS. The property checked on every run is
    {!Opart.is_valid_views} of the decided views. Also returns the
    distinct ordered partitions of the completed runs, sorted.

    [resume]/[checkpoint_every]/[on_checkpoint]/[domains] thread
    through to {!Explore.explore}, with the observed partitions
    carried in the {!Checkpoint.t} ([protocol = "is"]); partition
    collection is thread-safe and idempotent, as parallel exploration
    requires of [on_run]. Resuming from a checkpoint of another
    protocol or universe raises a [Precondition]
    {!Fact_resilience.Fact_error}. *)

val alg1_prop :
  ra:Complex.t -> Algorithm1.output Exec.report -> bool
(** Theorem 7 safety: the decided outputs form a simplex of [R_A]
    (vacuously true when nothing decided). *)

val explore_algorithm1 :
  ?skip_wait:bool ->
  ?variant:Fact_affine.Ra.variant ->
  ?max_crashes:int ->
  ?max_depth:int ->
  ?max_runs:int ->
  ?stop_on_violation:bool ->
  ?resume:Checkpoint.t ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(Checkpoint.t -> unit) ->
  ?domains:int ->
  alpha:Agreement.t ->
  participants:Pset.t ->
  unit ->
  Algorithm1.output Explore.stats
(** Model-check Algorithm 1 for [alpha] with the given participation.
    Defaults: [max_crashes] is the α-model bound
    [α(participants) − 1] (0 if [α = 0]), all participants crashable,
    [max_depth = 64], [max_runs = 100_000]. The checked property is
    {!alg1_prop} for [Ra.complex ?variant alpha].

    [resume]/[checkpoint_every]/[on_checkpoint] behave as in
    {!explore_immediate_snapshot} ([protocol = "alg1"]). *)
