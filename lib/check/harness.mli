(** Ready-made explorations of the paper's protocols.

    These glue {!Explore} to the runtime protocols and to the
    topological oracles of the paper, all phrased as {!Assertion}
    suites over {!Subject}s:

    - {!explore_immediate_snapshot} enumerates the interleavings of a
      single one-shot immediate snapshot and reconstructs the ordered
      set partition ({!Fact_topology.Opart}) of every completed run —
      the combinatorial side of the [Chr s] ↔ IS-runs correspondence,
      so exhaustive exploration of [n] processes must produce exactly
      the [fubini n] partitions. Its oracle is the built-in assertion
      [All [Named "is-valid-views"; Eventually_decides None]].
    - {!explore_algorithm1} model-checks Theorem 7: under every
      explored interleaving (with crash injection up to the α-model
      bound [α(P) − 1]), the decided outputs of Algorithm 1 form a
      simplex of [R_A] ([All [Named "in-ra"; Eventually_decides None]]).
      The [skip_wait] ablation (and the other {!Algorithm1.mutation}s)
      hand the explorer genuinely broken protocols to find
      counterexamples in.
    - {!explore_snapmin} explores the write–snapshot–decide-min
      protocol ({!Snapmin}, protocol name ["wsmin"]) against
      set-consensus validity/agreement/termination schemas. With
      [Agreement 1] it exhibits the classic consensus counterexample.

    Each assertion suite is boolean-equivalent, run by run, to the
    hand-written oracle it replaced, and the default monitors are
    passive (no per-event hooks), so exploration counts are
    bit-identical to the historical engine. *)

open Fact_topology
open Fact_adversary
open Fact_runtime

val is_procs : n:int -> unit -> (int -> (int * int) list) array
(** Fresh process closures over a fresh one-shot IS for [n] processes:
    process [i] write-snapshots its own id and returns its view. *)

val views_of_report : (int * int) list Exec.report -> (int * Pset.t) list
(** The decided views of an IS run, as (pid, set-of-writers) pairs. *)

(** {1 Subjects and assertion environments} *)

type is_mutation = Split_snapshot
    (** Replace the immediate write-snapshot by a plain write followed
        by a separate snapshot: containment still holds but immediacy
        breaks for [n ≥ 3]. *)

val is_default_assertion : Assertion.t
(** [All [Named "is-valid-views"; Eventually_decides None]]. *)

val is_subject :
  ?mutation:is_mutation ->
  ?assertion:Assertion.t ->
  n:int ->
  unit ->
  unit -> (int * int) list Subject.t
(** Subject factory for the one-shot IS: each call of the returned
    thunk builds a fresh instance, its assertion environment (object
    ["is"], named assertion ["is-valid-views"]) and monitors. *)

val alg1_prop : ra:Complex.t -> Algorithm1.output Exec.report -> bool
(** Theorem 7 safety: the decided outputs form a simplex of [R_A]
    (vacuously true when nothing decided). *)

val alg1_default_assertion : Assertion.t
(** [All [Named "in-ra"; Eventually_decides None]]. *)

val alg1_object_names : string list
(** The five shared objects of Algorithm 1, for frame assertions:
    ["is1"; "is2"; "reg-is1"; "reg-is2"; "reg-conc"]. *)

val alg1_subject :
  ?skip_wait:bool ->
  ?mutation:Algorithm1.mutation ->
  ?variant:Fact_affine.Ra.variant ->
  ?assertion:Assertion.t ->
  alpha:Agreement.t ->
  participants:Pset.t ->
  unit ->
  unit -> Algorithm1.output Subject.t
(** Subject factory for Algorithm 1. [R_A] is computed once, when the
    factory is built. The environment binds the five
    {!alg1_object_names} and the named assertion ["in-ra"]. *)

type wsmin_mutation = Biased_decision
    (** Decide [min + 1] instead of [min]: with the default even
        proposals the decided value is never proposed, so [Validity]
        catches it on every run. *)

val wsmin_default_proposals : int -> int array
(** [2 * pid] for each process — all even and distinct. *)

val wsmin_default_assertion : k:int -> Assertion.t
(** [All [Validity; Agreement k; Eventually_decides None]]. *)

val wsmin_subject :
  ?mutation:wsmin_mutation ->
  ?proposals:int array ->
  ?k:int ->
  ?assertion:Assertion.t ->
  n:int ->
  unit ->
  unit -> int Subject.t
(** Subject factory for {!Snapmin}. [k] (default [n]) picks the
    agreement bound of the default assertion. The environment binds
    object ["mem"], [decisions_of = Exec.decided] and the proposal
    map, so the [Agreement]/[Validity] schemas apply. *)

(** {1 Built-in assertion registry} *)

type builtin = {
  b_protocol : string;  (** ["is"], ["alg1"] or ["wsmin"] *)
  b_name : string;
  b_doc : string;
  b_assertion : n:int -> Assertion.t;
}

val builtins : builtin list
(** Every built-in assertion, for [fact assert list]. *)

val builtin : protocol:string -> string -> builtin option
(** Look up a built-in by protocol and name. *)

(** {1 Ready-made explorations} *)

val explore_immediate_snapshot :
  ?max_depth:int ->
  ?max_runs:int ->
  ?mutation:is_mutation ->
  ?assertion:Assertion.t ->
  ?stop_on_violation:bool ->
  ?resume:Checkpoint.t ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(Checkpoint.t -> unit) ->
  ?domains:int ->
  n:int ->
  unit ->
  (int * int) list Explore.stats * Opart.t list
(** Explore all interleavings (failure-free, full participation) of a
    one-shot IS. The property checked on every run is
    {!is_default_assertion} unless [assertion] overrides it. Also
    returns the distinct ordered partitions of the completed runs,
    sorted.

    [resume]/[checkpoint_every]/[on_checkpoint]/[domains] thread
    through to {!Explore.explore}, with the observed partitions
    carried in the {!Checkpoint.t} ([protocol = "is"]); partition
    collection is thread-safe and idempotent, as parallel exploration
    requires of [on_run]. Resuming from a checkpoint of another
    protocol or universe raises a [Precondition]
    {!Fact_resilience.Fact_error}. *)

val explore_algorithm1 :
  ?skip_wait:bool ->
  ?mutation:Algorithm1.mutation ->
  ?variant:Fact_affine.Ra.variant ->
  ?assertion:Assertion.t ->
  ?max_crashes:int ->
  ?max_depth:int ->
  ?max_runs:int ->
  ?stop_on_violation:bool ->
  ?resume:Checkpoint.t ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(Checkpoint.t -> unit) ->
  ?domains:int ->
  alpha:Agreement.t ->
  participants:Pset.t ->
  unit ->
  Algorithm1.output Explore.stats
(** Model-check Algorithm 1 for [alpha] with the given participation.
    Defaults: [max_crashes] is the α-model bound
    [α(participants) − 1] (0 if [α = 0]), all participants crashable,
    [max_depth = 64], [max_runs = 100_000]. The checked property is
    {!alg1_default_assertion} over [Ra.complex ?variant alpha] unless
    [assertion] overrides it.

    [resume]/[checkpoint_every]/[on_checkpoint] behave as in
    {!explore_immediate_snapshot} ([protocol = "alg1"]). *)

val explore_snapmin :
  ?mutation:wsmin_mutation ->
  ?proposals:int array ->
  ?k:int ->
  ?assertion:Assertion.t ->
  ?max_depth:int ->
  ?max_runs:int ->
  ?stop_on_violation:bool ->
  ?resume:Checkpoint.t ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(Checkpoint.t -> unit) ->
  ?domains:int ->
  n:int ->
  unit ->
  int Explore.stats
(** Explore the write–snapshot–decide-min protocol, failure-free with
    full participation ([protocol = "wsmin"]). The default property is
    {!wsmin_default_assertion} with [k = n] (always satisfied); with
    [assertion = Agreement 1] the explorer finds the standard
    split-brain consensus counterexample. *)
