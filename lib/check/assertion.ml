open Fact_topology
open Fact_runtime
open Fact_sexp

(* ------------------------------------------------------------------ *)
(* Syntax.                                                            *)
(* ------------------------------------------------------------------ *)

type atom =
  | Steps of Pset.t
  | Crashes of Pset.t
  | Decides of Pset.t
  | Touches of Pset.t * string list

type t =
  | Const of bool
  | Not of t
  | All of t list
  | Any of t list
  | Implies of t * t
  | Always of atom
  | Eventually of atom
  | Before of atom * atom
  | Eventually_decides of Pset.t option
  | Frame of Pset.t * string list
  | Agreement of int
  | Validity
  | Named of string

(* ------------------------------------------------------------------ *)
(* Observations.                                                      *)
(* ------------------------------------------------------------------ *)

type event =
  | Stepped of { e_pid : int; e_op : Op.pending }
  | Crashed of { e_pid : int }

type 'r view = {
  v_report : 'r Exec.report;
  v_truncated : bool;
  v_participants : Pset.t;
  v_events : event array;
}

type 'r env = {
  objects : (string * int) list;
  named : (string * ('r view -> (unit, string) result)) list;
  decisions_of : ('r Exec.report -> (int * int) list) option;
  proposals : (int * int) list;
}

let env ?(objects = []) ?(named = []) ?decisions_of ?(proposals = []) () =
  { objects; named; decisions_of; proposals }

(* ------------------------------------------------------------------ *)
(* Footprint: the frame rule.                                         *)
(*                                                                    *)
(* The footprint of an assertion is the set of processes whose events *)
(* its event-level operators inspect ([None] = the assertion may      *)
(* inspect everything, because it embeds an opaque named predicate).  *)
(* Report-level operators (agreement, validity, eventually-decides)   *)
(* read no events at all, so they contribute nothing.                 *)
(*                                                                    *)
(* This is what discharges frame obligations from Op commutativity    *)
(* without re-exploring: an event of a process outside the footprint  *)
(* is never inspected, so swapping it with an adjacent independent    *)
(* event (in the {!Explore.independent} sense, i.e. the two pending   *)
(* operations commute) changes neither the final report nor the       *)
(* footprint-restricted event subsequence — the verdict is invariant. *)
(* The property-based tests check exactly this statement.             *)
(* ------------------------------------------------------------------ *)

let atom_procs = function
  | Steps ps | Crashes ps | Decides ps | Touches (ps, _) -> ps

let footprint t =
  let union a b =
    match (a, b) with
    | Some x, Some y -> Some (Pset.union x y)
    | _ -> None
  in
  let rec go = function
    | Const _ | Eventually_decides _ | Agreement _ | Validity ->
      Some Pset.empty
    | Named _ -> None
    | Not a -> go a
    | All l | Any l ->
      List.fold_left (fun acc a -> union acc (go a)) (Some Pset.empty) l
    | Implies (a, b) -> union (go a) (go b)
    | Always a | Eventually a -> Some (atom_procs a)
    | Before (a, b) -> Some (Pset.union (atom_procs a) (atom_procs b))
    | Frame (ps, _) -> Some ps
  in
  go t

(* ------------------------------------------------------------------ *)
(* Printing (canonical s-expressions).                                *)
(* ------------------------------------------------------------------ *)

let pset_atoms ps = List.map Sexp.int (Pset.to_list ps)
let obj_atoms objs = Sexp.List (List.map Sexp.atom objs)

let sexp_of_atom = function
  | Steps ps -> Sexp.List (Sexp.Atom "steps" :: pset_atoms ps)
  | Crashes ps -> Sexp.List (Sexp.Atom "crashes" :: pset_atoms ps)
  | Decides ps -> Sexp.List (Sexp.Atom "decides" :: pset_atoms ps)
  | Touches (ps, objs) ->
    Sexp.List [ Sexp.Atom "touches"; Sexp.List (pset_atoms ps); obj_atoms objs ]

let rec to_sexp = function
  | Const true -> Sexp.Atom "true"
  | Const false -> Sexp.Atom "false"
  | Not a -> Sexp.List [ Sexp.Atom "not"; to_sexp a ]
  | All l -> Sexp.List (Sexp.Atom "and" :: List.map to_sexp l)
  | Any l -> Sexp.List (Sexp.Atom "or" :: List.map to_sexp l)
  | Implies (a, b) -> Sexp.List [ Sexp.Atom "implies"; to_sexp a; to_sexp b ]
  | Always a -> Sexp.List [ Sexp.Atom "always"; sexp_of_atom a ]
  | Eventually a -> Sexp.List [ Sexp.Atom "eventually"; sexp_of_atom a ]
  | Before (a, b) ->
    Sexp.List [ Sexp.Atom "before"; sexp_of_atom a; sexp_of_atom b ]
  | Eventually_decides None -> Sexp.List [ Sexp.Atom "eventually-decides" ]
  | Eventually_decides (Some ps) ->
    Sexp.List (Sexp.Atom "eventually-decides" :: pset_atoms ps)
  | Frame (ps, objs) ->
    Sexp.List [ Sexp.Atom "frame"; Sexp.List (pset_atoms ps); obj_atoms objs ]
  | Agreement k -> Sexp.List [ Sexp.Atom "agreement"; Sexp.int k ]
  | Validity -> Sexp.Atom "validity"
  | Named nm -> Sexp.List [ Sexp.Atom "named"; Sexp.atom nm ]

let to_string t = Sexp.to_string (to_sexp t)
let pp ppf t = Format.pp_print_string ppf (to_string t)

(* ------------------------------------------------------------------ *)
(* Parsing.                                                           *)
(* ------------------------------------------------------------------ *)

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e

let pset_of_sexps sxs =
  let* is = Sexp.map_result Sexp.to_int sxs in
  match Pset.of_list is with
  | ps -> Ok ps
  | exception Invalid_argument m -> Error m

let objs_of_sexp = function
  | Sexp.List sxs -> Sexp.map_result Sexp.to_atom sxs
  | Sexp.Atom _ -> Error "expected a list of object names"

let atom_of_sexp = function
  | Sexp.List (Sexp.Atom "steps" :: ps) ->
    let* ps = pset_of_sexps ps in
    Ok (Steps ps)
  | Sexp.List (Sexp.Atom "crashes" :: ps) ->
    let* ps = pset_of_sexps ps in
    Ok (Crashes ps)
  | Sexp.List (Sexp.Atom "decides" :: ps) ->
    let* ps = pset_of_sexps ps in
    Ok (Decides ps)
  | Sexp.List [ Sexp.Atom "touches"; Sexp.List ps; objs ] ->
    let* ps = pset_of_sexps ps in
    let* objs = objs_of_sexp objs in
    Ok (Touches (ps, objs))
  | sx ->
    Error
      (Printf.sprintf "bad event atom %s: expected (steps ...), \
                       (crashes ...), (decides ...) or (touches (..) (..))"
         (Sexp.to_string sx))

let rec of_sexp = function
  | Sexp.Atom "true" -> Ok (Const true)
  | Sexp.Atom "false" -> Ok (Const false)
  | Sexp.Atom "validity" -> Ok Validity
  | Sexp.List [ Sexp.Atom "not"; a ] ->
    let* a = of_sexp a in
    Ok (Not a)
  | Sexp.List (Sexp.Atom "and" :: l) ->
    let* l = Sexp.map_result of_sexp l in
    Ok (All l)
  | Sexp.List (Sexp.Atom "or" :: l) ->
    let* l = Sexp.map_result of_sexp l in
    Ok (Any l)
  | Sexp.List [ Sexp.Atom "implies"; a; b ] ->
    let* a = of_sexp a in
    let* b = of_sexp b in
    Ok (Implies (a, b))
  | Sexp.List [ Sexp.Atom "always"; a ] ->
    let* a = atom_of_sexp a in
    Ok (Always a)
  | Sexp.List [ Sexp.Atom "eventually"; a ] ->
    let* a = atom_of_sexp a in
    Ok (Eventually a)
  | Sexp.List [ Sexp.Atom "before"; a; b ] ->
    let* a = atom_of_sexp a in
    let* b = atom_of_sexp b in
    Ok (Before (a, b))
  | Sexp.List [ Sexp.Atom "eventually-decides" ] -> Ok (Eventually_decides None)
  | Sexp.List (Sexp.Atom "eventually-decides" :: ps) ->
    let* ps = pset_of_sexps ps in
    Ok (Eventually_decides (Some ps))
  | Sexp.List [ Sexp.Atom "frame"; Sexp.List ps; objs ] ->
    let* ps = pset_of_sexps ps in
    let* objs = objs_of_sexp objs in
    Ok (Frame (ps, objs))
  | Sexp.List [ Sexp.Atom "agreement"; k ] ->
    let* k = Sexp.to_int k in
    if k < 1 then Error "agreement: k must be >= 1" else Ok (Agreement k)
  | Sexp.List [ Sexp.Atom "named"; nm ] ->
    let* nm = Sexp.to_atom nm in
    Ok (Named nm)
  | sx -> Error (Printf.sprintf "bad assertion %s" (Sexp.to_string sx))

let of_string s =
  let* sx = Sexp.of_string s in
  of_sexp sx

(* ------------------------------------------------------------------ *)
(* Semantics.                                                         *)
(* ------------------------------------------------------------------ *)

let atom_to_string a = Sexp.to_string (sexp_of_atom a)

let resolve env objs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | nm :: rest -> (
      match List.assoc_opt nm env.objects with
      | Some id -> go (id :: acc) rest
      | None -> Error (Printf.sprintf "unknown object %S" nm))
  in
  go [] objs

let eval ~env t view =
  let events = view.v_events in
  let nevents = Array.length events in
  (* A step event is a process's deciding step iff it is its last
     recorded step and the process finished with a decision. The
     monitor records every event of every footprint process, so the
     last recorded step of such a process is its true last step. *)
  let last_step = Hashtbl.create 8 in
  Array.iteri
    (fun i e ->
      match e with
      | Stepped { e_pid; _ } -> Hashtbl.replace last_step e_pid i
      | Crashed _ -> ())
    events;
  let deciding i pid =
    (match Hashtbl.find_opt last_step pid with
    | Some j -> j = i
    | None -> false)
    &&
    match view.v_report.Exec.outcomes.(pid) with
    | Exec.Decided _ -> true
    | _ -> false
  in
  let sat a i =
    match (a, events.(i)) with
    | Steps ps, Stepped { e_pid; _ } -> Ok (Pset.mem e_pid ps)
    | Crashes ps, Crashed { e_pid } -> Ok (Pset.mem e_pid ps)
    | Decides ps, Stepped { e_pid; _ } ->
      Ok (Pset.mem e_pid ps && deciding i e_pid)
    | Touches (ps, objs), Stepped { e_pid; e_op = Op.Op op } ->
      if not (Pset.mem e_pid ps) then Ok false
      else
        let* ids = resolve env objs in
        Ok (List.mem op.Op.obj ids)
    | (Steps _ | Decides _ | Touches _), (Stepped _ | Crashed _)
    | Crashes _, Stepped _ ->
      Ok false
  in
  let decisions what =
    match env.decisions_of with
    | Some f -> Ok (f view.v_report)
    | None ->
      Error
        (Printf.sprintf "%s: this protocol has no decision projection" what)
  in
  let rec verdict = function
    | Const true -> Ok ()
    | Const false -> Error "constant false"
    | Not a -> (
      match verdict a with
      | Ok () -> Error (Printf.sprintf "not: %s holds" (to_string a))
      | Error _ -> Ok ())
    | All l ->
      let rec go = function
        | [] -> Ok ()
        | a :: rest -> (
          match verdict a with Ok () -> go rest | Error _ as e -> e)
      in
      go l
    | Any l ->
      let rec go = function
        | [] ->
          Error
            (Printf.sprintf "or: no disjunct holds in %s"
               (to_string (Any l)))
        | a :: rest -> (
          match verdict a with Ok () -> Ok () | Error _ -> go rest)
      in
      go l
    | Implies (a, b) -> (
      match verdict a with Error _ -> Ok () | Ok () -> verdict b)
    | Always a ->
      let rec go i =
        if i >= nevents then Ok ()
        else
          let* b = sat a i in
          if b then go (i + 1)
          else
            Error
              (Printf.sprintf "always: event %d violates %s" i
                 (atom_to_string a))
      in
      go 0
    | Eventually a ->
      if view.v_truncated then Ok ()
      else
        let rec go i =
          if i >= nevents then
            Error
              (Printf.sprintf "eventually: no event satisfies %s"
                 (atom_to_string a))
          else
            let* b = sat a i in
            if b then Ok () else go (i + 1)
        in
        go 0
    | Before (a, b) ->
      let rec go i seen_a =
        if i >= nevents then Ok ()
        else
          let* sb = sat b i in
          if sb && not seen_a then
            Error
              (Printf.sprintf
                 "before: %s at event %d is not preceded by %s"
                 (atom_to_string b) i (atom_to_string a))
          else
            let* sa = sat a i in
            go (i + 1) (seen_a || sa)
      in
      go 0 false
    | Eventually_decides who ->
      if view.v_truncated then Ok ()
      else begin
        let must =
          match who with
          | None -> view.v_participants
          | Some ps -> Pset.inter ps view.v_participants
        in
        let undecided =
          Pset.filter
            (fun p ->
              match view.v_report.Exec.outcomes.(p) with
              | Exec.Running -> true
              | Exec.Decided _ | Exec.Crashed _ -> false)
            must
        in
        if Pset.is_empty undecided then Ok ()
        else
          Error
            (Printf.sprintf
               "eventually-decides: processes [%s] neither decided nor \
                crashed"
               (String.concat " "
                  (List.map string_of_int (Pset.to_list undecided))))
      end
    | Frame (ps, objs) ->
      let* allowed = resolve env objs in
      let name_of id =
        match List.find_opt (fun (_, i) -> i = id) env.objects with
        | Some (nm, _) -> nm
        | None -> Printf.sprintf "#%d" id
      in
      let rec go i =
        if i >= nevents then Ok ()
        else
          match events.(i) with
          | Stepped { e_pid; e_op } when Pset.mem e_pid ps -> (
            match e_op with
            | Op.Start -> go (i + 1)
            | Op.Op op ->
              if List.mem op.Op.obj allowed then go (i + 1)
              else
                Error
                  (Printf.sprintf
                     "frame: process %d touches %s outside its frame at \
                      event %d"
                     e_pid (name_of op.Op.obj) i)
            | Op.Unlabeled ->
              Error
                (Printf.sprintf
                   "frame: process %d performs an unlabeled operation at \
                    event %d"
                   e_pid i))
          | Stepped _ | Crashed _ -> go (i + 1)
      in
      go 0
    | Agreement k ->
      let* ds = decisions "agreement" in
      if Fact_tasks.Set_consensus.agreement_ok ~k ~decisions:ds then Ok ()
      else
        Error
          (Printf.sprintf "agreement: more than %d distinct values decided \
                           ([%s])"
             k
             (String.concat " "
                (List.map (fun (p, v) -> Printf.sprintf "%d:%d" p v) ds)))
    | Validity ->
      let* ds = decisions "validity" in
      if
        Fact_tasks.Set_consensus.validity_ok ~proposals:env.proposals
          ~decisions:ds
      then Ok ()
      else
        Error
          (Printf.sprintf "validity: a non-proposed value was decided \
                           ([%s])"
             (String.concat " "
                (List.map (fun (p, v) -> Printf.sprintf "%d:%d" p v) ds)))
    | Named nm -> (
      match List.assoc_opt nm env.named with
      | Some f -> f view
      | None -> Error (Printf.sprintf "unknown named assertion %S" nm))
  in
  verdict t

(* ------------------------------------------------------------------ *)
(* Monitors and subjects.                                             *)
(* ------------------------------------------------------------------ *)

let monitor ~participants ~env t =
  let fp = footprint t in
  let buf = ref [] in
  let want pid =
    match fp with None -> true | Some ps -> Pset.mem pid ps
  in
  let on_step ~pid (op : Op.pending) =
    if want pid then buf := Stepped { e_pid = pid; e_op = op } :: !buf
  in
  let on_crash ~pid =
    if want pid then buf := Crashed { e_pid = pid } :: !buf
  in
  let check report ~truncated =
    let view =
      {
        v_report = report;
        v_truncated = truncated;
        v_participants = participants;
        v_events = Array.of_list (List.rev !buf);
      }
    in
    eval ~env t view
  in
  let passive =
    match fp with Some ps -> Pset.is_empty ps | None -> false
  in
  ( (if passive then None else Some on_step),
    (if passive then None else Some on_crash),
    check )

let subject ~participants ~make t () =
  let procs, env = make () in
  let on_step, on_crash, check = monitor ~participants ~env t in
  { Subject.procs; on_step; on_crash; check }
