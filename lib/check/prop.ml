type 'a result =
  | Ok of { count : int }
  | Fail of {
      seed : int;
      iteration : int;
      original : 'a;
      shrunk : 'a;
      shrink_steps : int;
      error : string option;
    }

let eval prop x =
  match prop x with
  | true -> None
  | false -> Some None
  | exception e -> Some (Some (Printexc.to_string e))

let check ?(count = 100) ?(shrink = Shrink.nothing) ~seed ~name gen prop =
  if count < 1 then invalid_arg "Prop.check: count < 1";
  ignore name;
  let rec iterate i =
    if i >= count then Ok { count }
    else
      let st = Random.State.make [| seed; i |] in
      let x = gen st in
      match eval prop x with
      | None -> iterate (i + 1)
      | Some error ->
        (* Greedy shrinking: first still-failing candidate, repeat. *)
        let rec minimize x error steps =
          let candidates = shrink x in
          let rec first = function
            | [] -> (x, error, steps)
            | c :: rest -> (
              match eval prop c with
              | None -> first rest
              | Some e -> minimize c e (steps + 1))
          in
          first candidates
        in
        let shrunk, error, shrink_steps = minimize x error 0 in
        Fail { seed; iteration = i; original = x; shrunk; shrink_steps; error }
  in
  iterate 0

let run ?count ?shrink ?pp ~seed ~name gen prop =
  match check ?count ?shrink ~seed ~name gen prop with
  | Ok _ -> ()
  | Fail f ->
    let pp_val ppf x =
      match pp with
      | Some pp -> pp ppf x
      | None -> Format.pp_print_string ppf "<no printer>"
    in
    failwith
      (Format.asprintf
         "property %s failed (seed %d, iteration %d, %d shrink steps)%a@ \
          counterexample: %a"
         name f.seed f.iteration f.shrink_steps
         (fun ppf -> function
           | Some e -> Format.fprintf ppf "@ raised: %s" e
           | None -> ())
         f.error pp_val f.shrunk)
