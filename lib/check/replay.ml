open Fact_topology
open Fact_runtime

let schedule tr =
  let remaining = ref (Trace.decisions tr) in
  let crash_flag = ref (-1) in
  let rec next ~alive ~pending:_ =
    match !remaining with
    | [] -> None
    | d :: rest ->
      remaining := rest;
      let p = match d with Trace.Step p | Trace.Crash p -> p in
      if not (Pset.mem p alive) then next ~alive ~pending:(fun _ -> Op.Unlabeled)
      else begin
        (match d with
        | Trace.Crash _ -> crash_flag := p
        | Trace.Step _ -> ());
        Some p
      end
  in
  let crash_now ~pid ~steps_taken:_ =
    if !crash_flag = pid then begin
      crash_flag := -1;
      true
    end
    else false
  in
  Schedule.controlled ~n:(Trace.n tr)
    ~participants:(Trace.participants tr)
    ~next ~crash_now

let run ?max_steps ~procs tr =
  let max_steps =
    match max_steps with Some m -> m | None -> Trace.length tr + 1
  in
  Exec.run ~max_steps ~schedule:(schedule tr) procs

let run_subject ?max_steps ?(truncated = false) ~(subject : _ Subject.t) tr =
  let max_steps =
    match max_steps with Some m -> m | None -> Trace.length tr + 1
  in
  let report =
    Exec.run ~max_steps ?on_step:subject.Subject.on_step
      ?on_crash:subject.Subject.on_crash ~schedule:(schedule tr)
      subject.Subject.procs
  in
  (* A trace that leaves participants running (e.g. a shrinking
     candidate that cut the tail of a run) is a partial execution
     whatever the caller believes: liveness assertions must hold
     vacuously on it, exactly as on a depth-budget cut, or shrinking
     could manufacture spurious "never decides" violations. *)
  let partial =
    Pset.exists
      (fun p -> report.Exec.outcomes.(p) = Exec.Running)
      (Trace.participants tr)
  in
  (report, subject.Subject.check report ~truncated:(truncated || partial))

let check ?truncated ~subject tr =
  snd (run_subject ?truncated ~subject:(subject ()) tr)
