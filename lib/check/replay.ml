open Fact_topology
open Fact_runtime

let schedule tr =
  let remaining = ref (Trace.decisions tr) in
  let crash_flag = ref (-1) in
  let rec next ~alive ~pending:_ =
    match !remaining with
    | [] -> None
    | d :: rest ->
      remaining := rest;
      let p = match d with Trace.Step p | Trace.Crash p -> p in
      if not (Pset.mem p alive) then next ~alive ~pending:(fun _ -> Op.Unlabeled)
      else begin
        (match d with
        | Trace.Crash _ -> crash_flag := p
        | Trace.Step _ -> ());
        Some p
      end
  in
  let crash_now ~pid ~steps_taken:_ =
    if !crash_flag = pid then begin
      crash_flag := -1;
      true
    end
    else false
  in
  Schedule.controlled ~n:(Trace.n tr)
    ~participants:(Trace.participants tr)
    ~next ~crash_now

let run ?max_steps ~procs tr =
  let max_steps =
    match max_steps with Some m -> m | None -> Trace.length tr + 1
  in
  Exec.run ~max_steps ~schedule:(schedule tr) procs
