(** A combinator DSL for trace properties — SLOT-style declarative
    assertions over explored and replayed executions.

    The paper's solvability statements are universally quantified over
    fair runs; this module turns the per-protocol oracles that check
    them into {e data}: an {!t} is a composable property of one
    execution, evaluated against the execution's final report plus the
    sequence of scheduler events observed by a monitor riding the run
    ({!Subject.t}). Assertions serialize to s-expressions ([fact
    explore --assert <file>]), so the chaos harness and the CI sweep
    them without recompilation.

    {2 Semantics}

    An execution is observed as the final {!Fact_runtime.Exec.report}
    plus the event sequence (steps with their pending
    {!Fact_runtime.Op} descriptors, and crashes). Operators split into
    two levels:

    - {b report-level}: {!Eventually_decides} (termination — vacuous
      on truncated runs, the explorer's liveness-to-safety cut),
      {!Agreement}/{!Validity} (task schemas over the protocol's
      decision projection), and {!Named} (protocol-specific predicates
      registered in the {!env}, e.g. [is-valid-views]).
    - {b event-level}: [always]/[eventually]/[before] over event
      {!atom}s, and {!Frame} — "these processes touch only these
      objects", the Hoare-logic frame condition.

    {2 The frame rule}

    {!footprint} computes the set of processes whose events an
    assertion can inspect ([None] when a {!Named} predicate makes it
    opaque). Events of processes outside the footprint are discharged
    structurally: they are never recorded, so any reordering of an
    outside event with an adjacent {e independent} event (pending
    operations commute per {!Fact_runtime.Op.commute} — the same
    relation that justifies sleep-set pruning) leaves both the final
    report and the observed subsequence unchanged, hence the verdict.
    Assertions therefore compose across disjoint footprints without
    re-exploring: a conjunction's verdict on the explored quotient
    space equals its verdict on all interleavings. The property-based
    tests check this reordering-invariance against {!Op} metadata. *)

open Fact_topology
open Fact_runtime

(** {1 Syntax} *)

type atom =
  | Steps of Pset.t    (** a scheduler step of one of these processes *)
  | Crashes of Pset.t  (** a crash of one of these processes *)
  | Decides of Pset.t  (** the deciding (last) step of one of these *)
  | Touches of Pset.t * string list
      (** a step of one of these processes whose pending operation is
          on one of the named objects *)

type t =
  | Const of bool
  | Not of t
  | All of t list              (** conjunction; [All [] = Const true] *)
  | Any of t list              (** disjunction; [Any [] = Const false] *)
  | Implies of t * t
  | Always of atom             (** every event satisfies the atom *)
  | Eventually of atom         (** some event does (vacuous if truncated) *)
  | Before of atom * atom
      (** [Before (a, b)]: every [b]-event is preceded by an [a]-event *)
  | Eventually_decides of Pset.t option
      (** termination: every listed participant (default: all) decided
          or crashed; vacuous on truncated runs *)
  | Frame of Pset.t * string list
      (** frame condition: steps of these processes only touch the
          named objects *)
  | Agreement of int           (** ≤ k distinct values decided *)
  | Validity                   (** every decided value was proposed *)
  | Named of string            (** protocol predicate from the {!env} *)

(** {1 Observations and environments} *)

type event =
  | Stepped of { e_pid : int; e_op : Op.pending }
  | Crashed of { e_pid : int }

type 'r view = {
  v_report : 'r Exec.report;
  v_truncated : bool;
  v_participants : Pset.t;
  v_events : event array;  (** footprint-filtered, in schedule order *)
}
(** What one monitored execution looks like to an assertion. *)

type 'r env = {
  objects : (string * int) list;
      (** symbolic object names → per-instance {!Op.t} ids *)
  named : (string * ('r view -> (unit, string) result)) list;
      (** protocol-specific predicates for {!Named} *)
  decisions_of : ('r Exec.report -> (int * int) list) option;
      (** decision projection for {!Agreement}/{!Validity} *)
  proposals : (int * int) list;  (** per-process proposals for {!Validity} *)
}
(** The per-execution binding context. Object ids are globally
    monotonic and per-instance, so the environment must be rebuilt
    with each fresh protocol instance. *)

val env :
  ?objects:(string * int) list ->
  ?named:(string * ('r view -> (unit, string) result)) list ->
  ?decisions_of:('r Exec.report -> (int * int) list) ->
  ?proposals:(int * int) list ->
  unit ->
  'r env

(** {1 The frame rule} *)

val footprint : t -> Pset.t option
(** The processes whose events the assertion may inspect; [None] when
    it embeds an opaque {!Named} predicate (conservatively:
    everything). Verdicts are invariant under reorderings of
    independent events when at least one of the two is outside the
    footprint — see the module preamble. *)

(** {1 Evaluation} *)

val eval : env:'r env -> t -> 'r view -> (unit, string) result
(** Evaluate against one observed execution. [Error msg] explains the
    first violated obligation. *)

val monitor :
  participants:Pset.t ->
  env:'r env ->
  t ->
  (pid:int -> Op.pending -> unit) option
  * (pid:int -> unit) option
  * ('r Exec.report -> truncated:bool -> (unit, string) result)
(** Fresh incremental monitor state for one execution: the two event
    hooks (both [None] when the assertion's footprint is empty — such
    subjects run bit-identically to unmonitored ones) and the final
    verdict function. *)

val subject :
  participants:Pset.t ->
  make:(unit -> (int -> 'r) array * 'r env) ->
  t ->
  unit ->
  'r Subject.t
(** [subject ~participants ~make t] is a {!Subject} builder: each call
    invokes [make] for a fresh protocol instance (processes + the
    environment bound to that instance's object ids) and pairs it with
    a fresh monitor for [t]. *)

(** {1 Serialization} *)

val to_sexp : t -> Fact_sexp.Sexp.t
val of_sexp : Fact_sexp.Sexp.t -> (t, string) result
(** Round-trip: [of_sexp (to_sexp t) = Ok t]. The concrete syntax:
    [true], [false], [validity], [(not T)], [(and T ...)], [(or T ...)],
    [(implies T T)], [(always A)], [(eventually A)], [(before A A)],
    [(eventually-decides p ...)], [(frame (p ...) (obj ...))],
    [(agreement k)], [(named name)]; atoms [A] are [(steps p ...)],
    [(crashes p ...)], [(decides p ...)], [(touches (p ...) (obj ...))]. *)

val to_string : t -> string
val of_string : string -> (t, string) result
val pp : Format.formatter -> t -> unit
