type 'a t = 'a -> 'a list

let nothing _ = []

(* Candidates approach [i] from the 0 side: 0, i − i/2, i − i/4, …,
   i − 1. Greedy descent over this list converges to any pass/fail
   boundary in O(log i) rounds (like a binary search). *)
let int i =
  if i = 0 then []
  else
    let rec approach acc d =
      if d = 0 then List.rev acc else approach ((i - d) :: acc) (d / 2)
    in
    approach [] i

let list shrink_elt xs =
  let len = List.length xs in
  if len = 0 then []
  else
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: rest -> x :: take (k - 1) rest
    in
    let rec drop k = function
      | rest when k = 0 -> rest
      | [] -> []
      | _ :: rest -> drop (k - 1) rest
    in
    let halves = if len >= 2 then [ take (len / 2) xs; drop (len / 2) xs ] else [] in
    let singles = List.init len (fun i -> List.filteri (fun j _ -> j <> i) xs) in
    let elementwise =
      List.concat
        (List.mapi
           (fun i x ->
             List.map
               (fun x' -> List.mapi (fun j y -> if j = i then x' else y) xs)
               (shrink_elt x))
           xs)
    in
    halves @ singles @ elementwise

let pair sa sb (a, b) =
  List.map (fun a' -> (a', b)) (sa a) @ List.map (fun b' -> (a, b')) (sb b)
