(** Greedy minimization of counterexample traces.

    Given a failing trace (one whose replay violates a property), the
    shrinker searches for a smaller trace that still fails, by
    repeatedly applying reductions and keeping any that preserve the
    failure:

    - cut a suffix of the decisions (binary-search style, halving);
    - drop a crash decision (fewer failures is a simpler run);
    - drop any single decision;
    - swap adjacent decisions of different processes to reduce the
      number of context switches (longer runs of the same process are
      easier to read).

    Every candidate is evaluated by deterministic replay against fresh
    protocol state ({!Replay.run}), so the result is a real failing
    execution, not an approximation. Shrinking terminates at a local
    minimum: no single reduction keeps the trace failing. *)

open Fact_runtime

val context_switches : Trace.t -> int
(** Number of adjacent decision pairs on different processes. *)

val shrink :
  procs:(unit -> (int -> 'r) array) ->
  fails:('r Exec.report -> bool) ->
  Trace.t ->
  Trace.t
(** [shrink ~procs ~fails tr] assumes [fails (Replay.run ~procs:(procs ()) tr)]
    and returns a locally-minimal trace with the same guarantee.
    [procs] must build fresh process closures over fresh shared state
    on every call. *)
