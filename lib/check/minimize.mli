(** Greedy minimization of counterexample traces.

    Given a failing trace (one whose replay violates a property), the
    shrinker searches for a smaller trace that still fails, by
    repeatedly applying reductions and keeping any that preserve the
    failure:

    - cut a suffix of the decisions (binary-search style, halving);
    - drop a crash decision (fewer failures is a simpler run);
    - drop any single decision;
    - swap adjacent decisions of different processes to reduce the
      number of context switches (longer runs of the same process are
      easier to read).

    Every candidate is evaluated by deterministic replay against fresh
    protocol state ({!Replay.run}), so the result is a real failing
    execution, not an approximation. Shrinking terminates at a local
    minimum: no single reduction keeps the trace failing. *)

open Fact_runtime

val context_switches : Trace.t -> int
(** Number of adjacent decision pairs on different processes. *)

val shrink_trace : still_fails:(Trace.t -> bool) -> Trace.t -> Trace.t
(** The generic engine: [still_fails] decides whether a candidate
    trace preserves the failure (it must replay the candidate against
    fresh state). Assumes [still_fails tr]. *)

val shrink :
  procs:(unit -> (int -> 'r) array) ->
  fails:('r Exec.report -> bool) ->
  Trace.t ->
  Trace.t
(** [shrink ~procs ~fails tr] assumes [fails (Replay.run ~procs:(procs ()) tr)]
    and returns a locally-minimal trace with the same guarantee.
    [procs] must build fresh process closures over fresh shared state
    on every call. *)

val shrink_subject :
  ?truncated:bool ->
  subject:(unit -> 'r Subject.t) ->
  Trace.t ->
  Trace.t
(** Assertion-aware shrinking: a candidate preserves the failure when
    {!Replay.check} against a fresh subject still reports a violated
    assertion. [truncated] is threaded to the liveness semantics (the
    original failing run hit the depth budget). *)
