(** Systematic exploration of executor interleavings (bounded model
    checking), sequential or fanned out over the
    {!Fact_topology.Parallel} domain pool.

    The explorer enumerates schedules of {!Fact_runtime.Exec} by
    depth-first search over scheduling decisions: at every interleaving
    point it can step any alive process or (within a crash budget)
    crash one. Each branch is executed by restarting the protocol from
    scratch under a {!Fact_runtime.Schedule.controlled} schedule that
    replays the decision prefix — the standard stateless-search
    architecture of systematic concurrency testers.

    Two reduction/bounding mechanisms keep the search tractable:

    - {b sleep sets} (Godefroid): after exploring decision [d] at a
      node, [d] is put to sleep for the node's remaining branches and
      stays asleep in descendants until a {e dependent} step fires.
      Independence comes from the pending-operation descriptors
      ({!Fact_runtime.Op}): steps whose next operations commute (e.g.
      writes to different cells, or two snapshots) never both get
      explored in the two orders. Prefixes whose every enabled decision
      is asleep are abandoned — their interleavings are Mazurkiewicz
      -equivalent to already-explored ones — and counted as [pruned].
      Crash decisions commute with steps of other processes, which
      collapses the many equivalent placements of a crash point.
    - {b budgets}: [max_depth] bounds the length of a single run
      (protocols with wait-loops have unboundedly long fair runs;
      deeper runs are cut and counted as [truncated], with the
      property still checked on the partial outcome — a safety check),
      and [max_runs] bounds the total number of counted executions.

    When the search finishes within its budgets ([exhausted = true]),
    every interleaving of length ≤ [max_depth] (with ≤ [max_crashes]
    crashes among [crashable]) has been covered up to commutation of
    independent steps.

    {b Parallel exploration.} With [domains > 1] (default:
    [Parallel.default_domains], i.e. [FACT_DOMAINS]) the decision tree
    is split into subtree tasks — each a forced (chosen, done)-prefix
    whose branch set, sleep sets and sibling context are deterministic
    functions of the prefix — and the tasks run on the work-stealing
    domain pool, sleep-set pruning staying local to each subtree.
    Per-task (runs, truncated, pruned, patterns) tallies are merged by
    a deterministic reduction (counter sums, pattern-set union,
    violation concatenation in task order), so the resulting stats are
    bit-identical to the sequential engine for {e any} domain count.
    If the [max_runs] budget trips, the optimistic parallel pass is
    discarded and the tasks are replayed in order with exact
    sequential budget semantics. See DESIGN.md §5. *)

open Fact_topology
open Fact_runtime

type config = {
  max_crashes : int;  (** crash budget per run (0 = failure-free) *)
  crashable : Pset.t; (** processes the explorer may crash *)
  max_depth : int;    (** decisions per run before truncation *)
  max_runs : int;     (** total counted executions (incl. pruned/truncated) *)
}

val config :
  ?max_crashes:int -> ?crashable:Pset.t -> ?max_depth:int ->
  ?max_runs:int -> unit -> config
(** Defaults: no crashes, [crashable = ∅], depth 256, 100_000 runs. *)

type 'r outcome = {
  report : 'r Exec.report;
  trace : Trace.t;     (** the decisions of this run, replayable *)
  truncated : bool;    (** hit [max_depth] *)
}

type 'r stats = {
  runs : int;            (** completed runs (every fiber terminated) *)
  truncated : int;       (** runs cut by [max_depth] *)
  pruned : int;          (** prefixes abandoned by sleep-set pruning *)
  crash_patterns : int;  (** distinct faulty sets over completed runs *)
  violations : 'r outcome list;  (** property failures, oldest first *)
  exhausted : bool;      (** the whole bounded space was covered *)
}

type checkpoint = {
  ck_runs : int;
  ck_truncated : int;
  ck_pruned : int;
  ck_patterns : int list;
      (** {!Pset.to_mask} of each completed run's faulty set *)
  ck_viol : (Trace.decision list * bool) list;
      (** the violating runs found so far, as (decisions, truncated)
          pairs, oldest first. Only traces are persisted, never
          verdicts: a resume re-evaluates each one by observed replay
          against the current subject (and drops runs its assertions
          now pass), so a checkpoint taken under one assertion set is
          safe to resume under another. *)
  frontier : (Trace.decision * Trace.decision list) list;
      (** per depth, outermost first: the chosen decision and the
          fully-explored siblings *)
}
(** A resumable snapshot of one DFS. [enabled], sleep sets and pending
    operations are deliberately absent: they are deterministic
    functions of the decision prefix, so resuming replays one run
    under forcing along [frontier] to rebuild them. Serialized by
    {!Checkpoint}. *)

type tally = {
  t_runs : int;
  t_truncated : int;
  t_pruned : int;
  t_patterns : int list;
  t_viol : (Trace.decision list * bool) list;
      (** violating runs of the subtree, as in [ck_viol] *)
  t_exhausted : bool;
}
(** Final counters of a completed subtree task. *)

type progress = Todo | Done of tally | Active of checkpoint
(** Where one subtree task stands: not started, finished, or
    interrupted with a resumable frontier (the frontier extends the
    subtree's prefix). *)

type subtree = {
  prefix : (Trace.decision * Trace.decision list) list;
      (** the forced (chosen, done)-prefix identifying the subtree *)
  progress : progress;
}

type snapshot = Seq of checkpoint | Par of subtree list
(** What [on_checkpoint] receives and [resume] accepts: a classic
    single-DFS snapshot, or the per-subtree frontiers of a parallel
    exploration. A [Par] snapshot can be resumed under any domain
    count, including 1. *)

val explore :
  ?config:config ->
  ?stop_on_violation:bool ->
  ?on_run:('r outcome -> unit) ->
  ?resume:snapshot ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(snapshot -> unit) ->
  ?domains:int ->
  n:int ->
  participants:Pset.t ->
  subject:(unit -> 'r Subject.t) ->
  unit ->
  'r stats
(** [explore ~n ~participants ~subject ()] runs the DFS. [subject] is
    called once per execution and must return a fresh {!Subject.t}:
    fresh process closures over fresh shared state, paired with the
    monitors and verdict of that execution's assertions (wrap plain
    processes and a report property with {!Subject.of_procs}). The
    subject's [check] is evaluated on every (completed or truncated)
    run; a [check] needing no events leaves both hooks [None] and the
    search is bit-identical to the historical unmonitored engine.
    [on_run] observes every counted run. [stop_on_violation] (default
    [false]) stops at the first failure — useful as a counterexample
    finder. [domains] (default [Parallel.default_domains ()]) > 1 fans
    the search out over the domain pool; the resulting stats are
    identical whatever the value.

    {b Parallel-mode caveats.} [subject] and [on_run] run on worker
    domains, possibly concurrently — they must be thread-safe (fresh
    state per execution plus immutable/interned shared data satisfies
    this; an [on_run] that accumulates must lock). When the [max_runs]
    budget trips mid-search, the optimistic parallel pass is discarded
    and recomputed, so [on_run] may observe some runs more than once
    across the two passes — consumers should be idempotent. Splitting
    the tree costs a handful of uncounted probe executions. With
    [domains = 1] and no [Par] resume the engine is the classic
    sequential loop, bit-for-bit.

    {b Resilience.} The ambient {!Fact_resilience.Cancel} token is
    polled once per execution (on every worker); on a trip each task
    flushes its frontier and the explorer surfaces one final resumable
    snapshot through [on_checkpoint] before re-raising the typed
    error. [checkpoint_every = k > 0] also calls [on_checkpoint] every
    [k] executions (per task in parallel mode). [resume] restores a
    previous snapshot: counters continue from the snapshot and each
    interrupted DFS first replays its frontier under forcing, so the
    resumed exploration reaches exactly the stats an uninterrupted one
    would; recorded violations are re-evaluated by uncounted observed
    replays against the current subject rather than trusted (see
    [ck_viol]). Resuming against a different protocol or configuration
    raises a [Precondition] {!Fact_resilience.Fact_error}. *)

val pp_stats : Format.formatter -> 'r stats -> unit
