(** Systematic exploration of executor interleavings (bounded model
    checking).

    The explorer enumerates schedules of {!Fact_runtime.Exec} by
    depth-first search over scheduling decisions: at every interleaving
    point it can step any alive process or (within a crash budget)
    crash one. Each branch is executed by restarting the protocol from
    scratch under a {!Fact_runtime.Schedule.controlled} schedule that
    replays the decision prefix — the standard stateless-search
    architecture of systematic concurrency testers.

    Two reduction/bounding mechanisms keep the search tractable:

    - {b sleep sets} (Godefroid): after exploring decision [d] at a
      node, [d] is put to sleep for the node's remaining branches and
      stays asleep in descendants until a {e dependent} step fires.
      Independence comes from the pending-operation descriptors
      ({!Fact_runtime.Op}): steps whose next operations commute (e.g.
      writes to different cells, or two snapshots) never both get
      explored in the two orders. Prefixes whose every enabled decision
      is asleep are abandoned — their interleavings are Mazurkiewicz
      -equivalent to already-explored ones — and counted as [pruned].
      Crash decisions commute with steps of other processes, which
      collapses the many equivalent placements of a crash point.
    - {b budgets}: [max_depth] bounds the length of a single run
      (protocols with wait-loops have unboundedly long fair runs;
      deeper runs are cut and counted as [truncated], with the
      property still checked on the partial outcome — a safety check),
      and [max_runs] bounds the total number of executions.

    When the search finishes within its budgets ([exhausted = true]),
    every interleaving of length ≤ [max_depth] (with ≤ [max_crashes]
    crashes among [crashable]) has been covered up to commutation of
    independent steps. *)

open Fact_topology
open Fact_runtime

type config = {
  max_crashes : int;  (** crash budget per run (0 = failure-free) *)
  crashable : Pset.t; (** processes the explorer may crash *)
  max_depth : int;    (** decisions per run before truncation *)
  max_runs : int;     (** total executions (incl. pruned/truncated) *)
}

val config :
  ?max_crashes:int -> ?crashable:Pset.t -> ?max_depth:int ->
  ?max_runs:int -> unit -> config
(** Defaults: no crashes, [crashable = ∅], depth 256, 100_000 runs. *)

type 'r outcome = {
  report : 'r Exec.report;
  trace : Trace.t;     (** the decisions of this run, replayable *)
  truncated : bool;    (** hit [max_depth] *)
}

type 'r stats = {
  runs : int;            (** completed runs (every fiber terminated) *)
  truncated : int;       (** runs cut by [max_depth] *)
  pruned : int;          (** prefixes abandoned by sleep-set pruning *)
  crash_patterns : int;  (** distinct faulty sets over completed runs *)
  violations : 'r outcome list;  (** property failures, oldest first *)
  exhausted : bool;      (** the whole bounded space was covered *)
}

type checkpoint = {
  ck_runs : int;
  ck_truncated : int;
  ck_pruned : int;
  ck_patterns : int list;
      (** {!Pset.to_mask} of each completed run's faulty set *)
  frontier : (Trace.decision * Trace.decision list) list;
      (** per depth, outermost first: the chosen decision and the
          fully-explored siblings *)
}
(** A resumable snapshot of the DFS. [enabled], sleep sets and pending
    operations are deliberately absent: they are deterministic
    functions of the decision prefix, so resuming replays one run
    under forcing along [frontier] to rebuild them. Serialized by
    {!Checkpoint}. *)

val explore :
  ?config:config ->
  ?stop_on_violation:bool ->
  ?on_run:('r outcome -> unit) ->
  ?resume:checkpoint ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(checkpoint -> unit) ->
  n:int ->
  participants:Pset.t ->
  procs:(unit -> (int -> 'r) array) ->
  prop:('r Exec.report -> bool) ->
  unit ->
  'r stats
(** [explore ~n ~participants ~procs ~prop ()] runs the DFS. [procs]
    is called once per execution and must return fresh process
    closures over fresh shared state. [prop] is the safety property
    checked on every (completed or truncated) run's report. [on_run]
    observes every such run. [stop_on_violation] (default [false])
    stops at the first failure — useful as a counterexample finder.

    {b Resilience.} The ambient {!Fact_resilience.Cancel} token is
    polled once per execution; on a trip the explorer flushes a final
    checkpoint through [on_checkpoint] and re-raises the typed error.
    [checkpoint_every = k > 0] also calls [on_checkpoint] every [k]
    executions (default [0]: never). [resume] restores a previous
    checkpoint: counters continue from the snapshot and the search
    first replays the checkpointed frontier, so the resumed
    exploration reaches exactly the stats an uninterrupted one would.
    Resuming against a different protocol or configuration raises a
    [Precondition] {!Fact_resilience.Fact_error}. *)

val pp_stats : Format.formatter -> 'r stats -> unit
