open Fact_topology

type 'a t = Random.State.t -> 'a

let return x _ = x
let map f g st = f (g st)
let bind g f st = f (g st) st
let pair a b st =
  let x = a st in
  let y = b st in
  (x, y)

let int bound st = Random.State.int st bound
let int_range lo hi st = lo + Random.State.int st (hi - lo + 1)
let bool st = Random.State.bool st

let oneof xs st =
  match xs with
  | [] -> invalid_arg "Gen.oneof: empty list"
  | _ -> List.nth xs (Random.State.int st (List.length xs))

let list ~len elt st =
  let k = len st in
  List.init k (fun _ -> elt st)

let subset s st =
  Pset.filter (fun _ -> Random.State.bool st) s

let rec nonempty_subset s st =
  if Pset.is_empty s then invalid_arg "Gen.nonempty_subset: empty set";
  let sub = subset s st in
  if Pset.is_empty sub then nonempty_subset s st else sub

let pset ~n st = nonempty_subset (Pset.full n) st

let run ~seed g = g (Random.State.make [| seed |])
