open Fact_topology
open Fact_adversary

let check_level1 fname sigma =
  List.iter
    (fun v ->
      if Vertex.level v <> 1 then
        invalid_arg (fname ^ ": simplex not in Chr s"))
    (Simplex.vertices sigma)

let is_critical alpha sigma =
  if Simplex.is_empty sigma then false
  else begin
    check_level1 "Critical.is_critical" sigma;
    let car = Simplex.base_carrier sigma in
    let shared =
      List.for_all
        (fun v -> Pset.equal (Vertex.base_carrier v) car)
        (Simplex.vertices sigma)
    in
    shared
    && Agreement.eval alpha (Pset.diff car (Simplex.colors sigma))
       < Agreement.eval alpha car
  end

let critical_subsets alpha sigma =
  List.filter (is_critical alpha) (Simplex.faces sigma)

(* CSM/CSV/Conc in one pass, without enumerating faces of σ as
   simplices. A face is critical iff all its vertices share one base
   carrier and dropping its colors from that carrier strictly lowers
   α. So group the vertices of σ by base carrier; for a group with
   carrier [car] and color set [cs], the critical faces inside it are
   exactly the nonempty [x ⊆ cs] with [α(car \ x) < α(car)] — and
   since base_carrier(face) = car for those faces,

   - CSM colors = union of all such x (per group),
   - CSV       = union of [car] over groups owning a critical face,
   - Conc      = max of [α(car)] over those same groups.

   Only Pset words and table lookups are touched, 2^|group| of them
   per group instead of 2^|σ| simplex constructions. *)
let analyze_uncached alpha sigma =
  check_level1 "Critical.is_critical" sigma;
  let groups = ref [] in
  List.iter
    (fun v ->
      let car = Vertex.base_carrier v in
      let c = Vertex.proc v in
      match List.assoc_opt car !groups with
      | Some cs -> groups := (car, Pset.add c cs) :: List.remove_assoc car !groups
      | None -> groups := (car, Pset.singleton c) :: !groups)
    (Simplex.vertices sigma);
  let csm_colors = ref Pset.empty in
  let csv = ref Pset.empty in
  let conc = ref 0 in
  List.iter
    (fun (car, cs) ->
      let a_car = Agreement.eval alpha car in
      let any = ref false in
      List.iter
        (fun x ->
          if Agreement.eval alpha (Pset.diff car x) < a_car then begin
            any := true;
            csm_colors := Pset.union !csm_colors x
          end)
        (Pset.nonempty_subsets cs);
      if !any then begin
        csv := Pset.union !csv car;
        conc := max !conc a_car
      end)
    !groups;
  (Simplex.restrict sigma !csm_colors, !csv, !conc)

(* Memoized per (agreement-function stamp, simplex). One mutex guards
   the whole two-level table, so the cache is safe to hit from worker
   domains; computation happens outside the lock and a racing
   duplicate insert is dropped. *)
let lock = Mutex.create ()

let tbls : (int, (Simplex.t * Pset.t * int) Simplex.Tbl.t) Hashtbl.t =
  Hashtbl.create 8

let analyze alpha sigma =
  let stamp = Agreement.stamp alpha in
  Mutex.lock lock;
  let tbl =
    match Hashtbl.find_opt tbls stamp with
    | Some t -> t
    | None ->
      let t = Simplex.Tbl.create 1024 in
      Hashtbl.add tbls stamp t;
      t
  in
  let cached = Simplex.Tbl.find_opt tbl sigma in
  Mutex.unlock lock;
  match cached with
  | Some e -> e
  | None ->
    let e = analyze_uncached alpha sigma in
    Mutex.lock lock;
    if not (Simplex.Tbl.mem tbl sigma) then Simplex.Tbl.add tbl sigma e;
    Mutex.unlock lock;
    e

let members alpha sigma =
  let m, _, _ = analyze alpha sigma in
  m

let view alpha sigma =
  let _, v, _ = analyze alpha sigma in
  v

let all_critical alpha k =
  List.filter (is_critical alpha) (Complex.all_simplices k)
