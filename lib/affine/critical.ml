open Fact_topology
open Fact_adversary

let check_level1 fname sigma =
  List.iter
    (fun v ->
      if Vertex.level v <> 1 then
        invalid_arg (fname ^ ": simplex not in Chr s"))
    (Simplex.vertices sigma)

let is_critical alpha sigma =
  if Simplex.is_empty sigma then false
  else begin
    check_level1 "Critical.is_critical" sigma;
    let car = Simplex.base_carrier sigma in
    let shared =
      List.for_all
        (fun v -> Pset.equal (Vertex.base_carrier v) car)
        (Simplex.vertices sigma)
    in
    shared
    && Agreement.eval alpha (Pset.diff car (Simplex.colors sigma))
       < Agreement.eval alpha car
  end

let critical_subsets alpha sigma =
  List.filter (is_critical alpha) (Simplex.faces sigma)

(* CSM/CSV/Conc in one pass, without enumerating faces of σ as
   simplices. A face is critical iff all its vertices share one base
   carrier and dropping its colors from that carrier strictly lowers
   α. So group the vertices of σ by base carrier; for a group with
   carrier [car] and color set [cs], the critical faces inside it are
   exactly the nonempty [x ⊆ cs] with [α(car \ x) < α(car)] — and
   since base_carrier(face) = car for those faces,

   - CSM colors = union of all such x (per group),
   - CSV       = union of [car] over groups owning a critical face,
   - Conc      = max of [α(car)] over those same groups.

   Only Pset words and table lookups are touched, 2^|group| of them
   per group instead of 2^|σ| simplex constructions. *)
let analyze_uncached alpha sigma =
  check_level1 "Critical.is_critical" sigma;
  let groups = ref [] in
  List.iter
    (fun v ->
      let car = Vertex.base_carrier v in
      let c = Vertex.proc v in
      match List.assoc_opt car !groups with
      | Some cs -> groups := (car, Pset.add c cs) :: List.remove_assoc car !groups
      | None -> groups := (car, Pset.singleton c) :: !groups)
    (Simplex.vertices sigma);
  let csm_colors = ref Pset.empty in
  let csv = ref Pset.empty in
  let conc = ref 0 in
  List.iter
    (fun (car, cs) ->
      let a_car = Agreement.eval alpha car in
      let any = ref false in
      List.iter
        (fun x ->
          if Agreement.eval alpha (Pset.diff car x) < a_car then begin
            any := true;
            csm_colors := Pset.union !csm_colors x
          end)
        (Pset.nonempty_subsets cs);
      if !any then begin
        csv := Pset.union !csv car;
        conc := max !conc a_car
      end)
    !groups;
  (Simplex.restrict sigma !csm_colors, !csv, !conc)

(* Memoized per (agreement-function stamp, simplex), in one bounded
   cache safe to hit from worker domains; computation happens outside
   the cache lock and a racing duplicate insert is dropped. Polls the
   ambient cancellation token: [analyze] is the inner loop of the R_A
   facet filter, so cancellation latency stays at one analysis. *)
module Stamped_cache = Fact_resilience.Cache.Make (struct
  type t = int * Simplex.t

  let equal (s1, x1) (s2, x2) = s1 = s2 && Simplex.equal x1 x2
  let hash (s, x) = (s * 0x9e3779b1) lxor Simplex.hash x
end)

let cache : (Simplex.t * Pset.t * int) Stamped_cache.t =
  Stamped_cache.create ~name:"critical.analyze"
    ~equal:(fun (m1, v1, c1) (m2, v2, c2) ->
      Simplex.equal m1 m2 && Pset.equal v1 v2 && c1 = c2)
    ()

let analyze alpha sigma =
  Fact_resilience.Cancel.poll ~where:"Critical.analyze";
  Stamped_cache.find_or_add cache
    (Agreement.stamp alpha, sigma)
    (fun _ -> analyze_uncached alpha sigma)

let members alpha sigma =
  let m, _, _ = analyze alpha sigma in
  m

let view alpha sigma =
  let _, v, _ = analyze alpha sigma in
  v

let all_critical alpha k =
  List.filter (is_critical alpha) (Complex.all_simplices k)
