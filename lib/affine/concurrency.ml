open Fact_topology

(* Conc_α(σ) falls out of the shared critical-simplex analysis (the
   max of α over carriers of critical groups), so it is memoized per
   (α stamp, σ) together with CSM/CSV. *)
let level alpha sigma =
  let _, _, conc = Critical.analyze alpha sigma in
  conc

let classify alpha k =
  List.map (fun s -> (s, level alpha s)) (Complex.all_simplices k)

let histogram alpha k =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (_, l) ->
      Hashtbl.replace tbl l (1 + Option.value ~default:0 (Hashtbl.find_opt tbl l)))
    (classify alpha k);
  Hashtbl.fold (fun l c acc -> (l, c) :: acc) tbl []
  |> List.sort Stdlib.compare
