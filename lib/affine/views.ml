open Fact_topology

let level2 fname v =
  if Vertex.level v <> 2 then
    invalid_arg (Printf.sprintf "Views.%s: vertex not at level 2" fname)

let chr1_carrier v =
  level2 "chr1_carrier" v;
  Simplex.vertex_carrier v

(* View1/View2 are asked for every vertex of every face of every facet
   (the contention predicate is pairwise); memoize them per vertex
   intern id, bounded by FACT_CACHE_CAP. The carrier simplex itself is
   already shared through [Simplex.vertex_carrier]. *)
module Int_cache = Fact_resilience.Cache.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

let compute v =
  let car = Simplex.vertex_carrier v in
  let view2 = Simplex.colors car in
  let view1 =
    match Simplex.find_color (Vertex.proc v) car with
    | Some v' -> Vertex.base_carrier v'
    | None -> invalid_arg "Views.view1: carrier misses own color"
  in
  (view1, view2)

let cache : (Pset.t * Pset.t) Int_cache.t =
  Int_cache.create ~name:"views.views" ~equal:( = ) ()

let views v =
  level2 "views" v;
  Int_cache.find_or_add cache (Vertex.id v) (fun _ -> compute v)

let view1 v =
  level2 "view1" v;
  fst (views v)

let view2 v =
  level2 "view2" v;
  snd (views v)

let pp_views ppf v =
  Format.fprintf ppf "p%d: View1=%a View2=%a" (Vertex.proc v) Pset.pp
    (view1 v) Pset.pp (view2 v)
