open Fact_topology

type t = { ell : int; complex : Complex.t }

let check_facet_level ell f =
  List.for_all (fun v -> Vertex.level v = ell) (Simplex.vertices f)

let precondition = Fact_resilience.Fact_error.precondition

let make ~ell complex =
  if Complex.is_empty complex then
    precondition ~fn:"Affine_task.make" "empty complex";
  if not (Complex.is_pure complex) then
    precondition ~fn:"Affine_task.make" "complex is not pure";
  List.iter
    (fun f ->
      if not (check_facet_level ell f) then
        precondition ~fn:"Affine_task.make" "facet at wrong subdivision level";
      if not (Chr.is_simplex_of_chr f) then
        precondition ~fn:"Affine_task.make" "facet violates IS conditions")
    (Complex.facets complex);
  { ell; complex }

let ell t = t.ell
let n t = Complex.n t.complex
let complex t = t.complex
let delta t sigma = Complex.restrict_colors sigma t.complex

let full_chr ~n ~ell = { ell; complex = Chr.standard_iterated ~m:ell ~n }

(* Substitute the base vertices of [v] (a vertex tree over s) by the
   vertices of the host facet [sigma] with matching colors. *)
let rec substitute sigma v =
  match v with
  | Vertex.Input { proc; _ } ->
    (match Simplex.find_color proc sigma with
    | Some w -> w
    | None ->
      precondition ~fn:"Affine_task.compose" "missing color in host facet")
  | Vertex.Deriv { proc; carrier } ->
    (* re-sort: substitution does not preserve Vertex.compare order *)
    let carrier =
      List.sort Vertex.compare (List.map (substitute sigma) carrier)
    in
    Vertex.Deriv { proc; carrier }

let compose_facets ~host inner =
  Simplex.make (List.map (substitute host) (Simplex.vertices inner))

let compose l1 l2 =
  if n l1 <> n l2 then
    precondition ~fn:"Affine_task.compose" "different universes";
  let gens =
    List.concat_map
      (fun host ->
        List.map
          (fun inner ->
            Simplex.make
              (List.map (substitute host) (Simplex.vertices inner)))
          (Complex.facets l2.complex))
      (Complex.facets l1.complex)
  in
  { ell = l1.ell + l2.ell; complex = Complex.of_facets ~n:(n l1) gens }

let iterate l m =
  if m < 1 then precondition ~fn:"Affine_task.iterate" "m must be >= 1";
  let rec go acc k = if k = 1 then acc else go (compose acc l) (k - 1) in
  go l m

let mem_run t sigma = Complex.mem sigma t.complex

let apply t inputs =
  let gens =
    List.concat_map
      (fun host ->
        if Simplex.card host <> Complex.n inputs then
          precondition ~fn:"Affine_task.apply"
            "input facet not full-dimensional";
        List.map
          (fun inner -> compose_facets ~host inner)
          (Complex.facets t.complex))
      (Complex.facets inputs)
  in
  Complex.of_facets ~n:(Complex.n inputs) gens

let pp_stats ppf t =
  Format.fprintf ppf "ell=%d %a" t.ell Complex.pp_stats t.complex
