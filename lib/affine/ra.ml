open Fact_topology
open Fact_adversary

type variant = Def9_intersection | Lemma6_union

let default_variant = Lemma6_union

(* The condition P(θ, σ) of Definition 9. The per-facet carrier ρ and
   per-face carrier τ both live in Chr s; CSM/CSV/Conc are computed
   there (and memoized per (α, simplex) in [Critical.analyze]). *)
let face_ok variant alpha ~rho theta =
  if not (Contention.is_contention_simplex theta) then true
  else
    let tau = Simplex.carrier theta in
    let chi_theta = Simplex.colors theta in
    let csm_rho = Simplex.colors (Critical.members alpha rho) in
    let csv_tau = Critical.view alpha tau in
    let exempt =
      match variant with
      | Def9_intersection ->
        not (Pset.is_empty (Pset.inter chi_theta (Pset.inter csm_rho csv_tau)))
      | Lemma6_union ->
        not (Pset.is_empty (Pset.inter chi_theta (Pset.union csm_rho csv_tau)))
    in
    exempt || Simplex.dim theta < Concurrency.level alpha tau

let offending_faces ?(variant = default_variant) alpha sigma =
  let rho = Simplex.carrier sigma in
  List.filter
    (fun theta -> not (face_ok variant alpha ~rho theta))
    (Simplex.faces sigma)

(* Checking all 2^k faces of a facet through [face_ok] would build
   every face as a simplex and re-derive its views and carrier. The
   facet test below enumerates faces as bitmasks over the facet's
   vertices instead:

   - views are fetched once per vertex ([Views.views], memoized);
   - the contention predicate is pairwise, so a face is a contention
     simplex iff its mask is a clique of the precomputed k×k
     "contending" adjacency masks — integer tests per face;
   - only for contention faces (the rare case) are the carrier τ and
     its memoized CSM/CSV/Conc analysis looked up, and even then τ is
     a union of memoized per-vertex carriers — no face simplex is ever
     constructed. *)
let facet_ok_uncached variant alpha sigma =
  let vs = Array.of_list (Simplex.vertices sigma) in
  let k = Array.length vs in
  let rho = Simplex.carrier sigma in
  let csm_rho = Simplex.colors (Critical.members alpha rho) in
  let views = Array.map Views.views vs in
  let vcar = Array.map Simplex.vertex_carrier vs in
  let col = Array.map (fun v -> Pset.singleton (Vertex.proc v)) vs in
  (* contend.(i): bitmask of the j whose vertex contends with vertex i *)
  let contend = Array.make k 0 in
  for i = 0 to k - 1 do
    let v1i, v2i = views.(i) in
    for j = i + 1 to k - 1 do
      let v1j, v2j = views.(j) in
      let c =
        (Pset.proper_subset v1i v1j && Pset.proper_subset v2j v2i)
        || (Pset.proper_subset v1j v1i && Pset.proper_subset v2i v2j)
      in
      if c then begin
        contend.(i) <- contend.(i) lor (1 lsl j);
        contend.(j) <- contend.(j) lor (1 lsl i)
      end
    done
  done;
  let bit_index i =
    (* [i] has a single bit set *)
    let rec f i acc = if i <= 1 then acc else f (i lsr 1) (acc + 1) in
    f i 0
  in
  let is_clique m =
    let rec go rest =
      rest = 0
      ||
      let i = rest land -rest in
      m land lnot i land lnot contend.(bit_index i) = 0
      && go (rest land lnot i)
    in
    go m
  in
  let rec fold_bits m f acc =
    if m = 0 then acc
    else
      let i = m land -m in
      fold_bits (m land lnot i) f (f (bit_index i) acc)
  in
  let ok = ref true in
  let m = ref 1 in
  let full = (1 lsl k) - 1 in
  while !ok && !m <= full do
    let mask = !m in
    if is_clique mask then begin
      (* θ is a contention simplex: apply P(θ, σ) *)
      let chi_theta =
        fold_bits mask (fun i acc -> Pset.union acc col.(i)) Pset.empty
      in
      let tau =
        fold_bits mask (fun i acc -> Simplex.union acc vcar.(i)) Simplex.empty
      in
      let _, csv_tau, conc_tau = Critical.analyze alpha tau in
      let exempt =
        match variant with
        | Def9_intersection ->
          not
            (Pset.is_empty (Pset.inter chi_theta (Pset.inter csm_rho csv_tau)))
        | Lemma6_union ->
          not
            (Pset.is_empty (Pset.inter chi_theta (Pset.union csm_rho csv_tau)))
      in
      let dim_theta = Pset.cardinal chi_theta - 1 in
      if not (exempt || dim_theta < conc_tau) then ok := false
    end;
    incr m
  done;
  !ok

(* The verdict itself is memoized per (agreement stamp, variant,
   facet): repeated [complex] calls for the same α reduce to a table
   scan over the facets of [Chr² s]. Bounded by FACT_CACHE_CAP;
   eviction only costs recomputation. *)
module Verdict_cache = Fact_resilience.Cache.Make (struct
  type t = int * variant * Simplex.t

  let equal (s1, v1, x1) (s2, v2, x2) =
    s1 = s2 && v1 = v2 && Simplex.equal x1 x2

  let hash (s, v, x) = Hashtbl.hash (s, v, Simplex.hash x)
end)

let ok_cache : bool Verdict_cache.t =
  Verdict_cache.create ~name:"ra.facet_ok" ~equal:Bool.equal ()

let facet_ok ?(variant = default_variant) alpha sigma =
  Verdict_cache.find_or_add ok_cache
    (Agreement.stamp alpha, variant, sigma)
    (fun _ -> facet_ok_uncached variant alpha sigma)

(* Facets are filtered independently, so the scan fans out over
   domains; workers only hit mutex-protected memo tables and build
   immutable values, and kept facets are re-assembled into a complex
   on the calling domain. The ambient cancellation token is polled
   once per facet — even on cache hits, so a warm R_A still cancels
   promptly. *)
let complex ?(variant = default_variant) alpha ~n =
  let chr2 = Chr.standard_iterated ~m:2 ~n in
  let kept =
    Parallel.map
      (fun f ->
        Fact_resilience.Cancel.poll ~where:"Ra.complex";
        if facet_ok ~variant alpha f then Some f else None)
      (Complex.facets chr2)
    |> List.filter_map Fun.id
  in
  Complex.of_facets ~n kept

let task ?(variant = default_variant) alpha ~n =
  Affine_task.make ~ell:2 (complex ~variant alpha ~n)

let of_adversary ?(variant = default_variant) a =
  task ~variant (Agreement.of_adversary a) ~n:(Adversary.n a)
