open Fact_topology

let complex ~n ~t =
  if t < 0 || t >= n then invalid_arg "Rtres: need 0 <= t < n";
  let chr2 = Chr.standard_iterated ~m:2 ~n in
  Complex.filter_facets
    (fun f ->
      List.for_all
        (fun v -> Pset.cardinal (Vertex.base_carrier v) >= n - t)
        (Simplex.vertices f))
    chr2

let task ~n ~t = Affine_task.make ~ell:2 (complex ~n ~t)
