open Fact_topology

let complex ~n ~k =
  if k < 1 || k > n then invalid_arg "Rkof: need 1 <= k <= n";
  let chr2 = Chr.standard_iterated ~m:2 ~n in
  (* Keep the facets having no contention face of dimension >= k; the
     closure of those facets is the pure complement of Definition 6. *)
  Complex.filter_facets
    (fun f ->
      not
        (List.exists
           (fun theta ->
             Simplex.dim theta >= k && Contention.is_contention_simplex theta)
           (Simplex.faces f)))
    chr2

let task ~n ~k = Affine_task.make ~ell:2 (complex ~n ~k)
