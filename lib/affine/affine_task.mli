(** Affine tasks: pure nonempty sub-complexes of [Chr^ℓ s]
    (Section 2, "Simplex agreement and affine tasks").

    The affine task associated with a complex [L ⊆ Chr^ℓ s] is
    [(s, L, ∆)] with [∆(σ) = L ∩ Chr^ℓ(σ)] for every face σ ⊆ s.
    Iterating the task [m] times yields [L^m ⊆ Chr^{ℓm} s]; the affine
    model [L*] is the (compact, by construction) set of infinite IIS
    runs all of whose [ℓm]-prefixes land in [L^m]. *)

open Fact_topology

type t

val make : ell:int -> Complex.t -> t
(** Wraps a sub-complex of [Chr^ℓ s]. Checks purity, non-emptiness and
    (containment/immediacy) validity of all facets; raises a
    [Precondition] {!Fact_resilience.Fact_error} on failure. *)

val ell : t -> int
(** Number of IS rounds per iteration. *)

val n : t -> int
val complex : t -> Complex.t

val delta : t -> Pset.t -> Complex.t
(** [∆(σ) = L ∩ Chr^ℓ(σ)] — the outputs allowed when the participating
    set is σ. May be empty (participation must then grow). *)

val full_chr : n:int -> ell:int -> t
(** The trivial affine task [Chr^ℓ s] itself (the IIS / wait-free
    model). *)

val compose : t -> t -> t
(** [compose l1 l2]: run [l1], then run [l2] "inside" the output
    simplex of [l1] — the facets are those of [l2] with base vertices
    replaced by vertices of a facet of [l1]. The result lives in
    [Chr^{ℓ1+ℓ2} s]. *)

val iterate : t -> int -> t
(** [iterate l m = L^m]. [m ≥ 1]. *)

val compose_facets : host:Simplex.t -> Simplex.t -> Simplex.t
(** [compose_facets ~host inner]: the facet obtained by realizing
    [inner] (a facet over [s]) inside the facet [host]: base vertices
    of [inner] are replaced by the [host] vertices of the same color.
    Realizes one more iteration of a run. *)

val mem_run : t -> Simplex.t -> bool
(** Is the simplex a member of the task's output complex? *)

val apply : t -> Complex.t -> Complex.t
(** [apply l inputs]: the protocol complex of running [l] on the given
    input complex — every facet of [inputs] subdivided by the pattern
    of [l] (for [l = Chr^ℓ s] this is [Chr^ℓ(inputs)]). Facets of
    [inputs] must have full dimension n−1. *)

val pp_stats : Format.formatter -> t -> unit
