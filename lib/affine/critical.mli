(** Critical simplices of [Chr s] (Definition 7, Figure 5).

    Given an agreement function α, a simplex σ ∈ Chr s is critical if
    (1) all its vertices share the same carrier in [s] and (2) removing
    its colors from that carrier strictly decreases the agreement
    power: [α(χ(carrier(σ,s)) \ χ(σ)) < α(χ(carrier(σ,s)))].

    Critical simplices witness increases of the agreement power with
    participation; the [R_A] construction prioritizes them. *)

open Fact_topology
open Fact_adversary

val is_critical : Agreement.t -> Simplex.t -> bool
(** The simplex must live in [Chr s] (level 1) and be nonempty. *)

val critical_subsets : Agreement.t -> Simplex.t -> Simplex.t list
(** [CS_α(σ)]: the critical faces of σ (not inclusion-closed). *)

val members : Agreement.t -> Simplex.t -> Simplex.t
(** [CSM_α(σ)]: the vertices of σ belonging to some critical face, as a
    simplex (sub-simplex of σ). *)

val view : Agreement.t -> Simplex.t -> Pset.t
(** [CSV_α(σ) = χ(carrier(CSM_α(σ), s))]: the processes observed by
    critical simplices in their View1. *)

val analyze : Agreement.t -> Simplex.t -> Simplex.t * Pset.t * int
(** [(CSM_α σ, CSV_α σ, Conc_α σ)] in one pass, memoized per
    (agreement-function {!Agreement.stamp}, simplex). {!members},
    {!view} and {!Concurrency.level} all go through this cache, which
    is safe to hit from multiple domains. *)

val all_critical : Agreement.t -> Complex.t -> Simplex.t list
(** All critical simplices of a sub-complex of [Chr s] (for Figure 5
    and the benches). *)
