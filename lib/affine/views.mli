(** First- and second-round views of vertices of [Chr² s] (Section 4).

    For a vertex [v ∈ Chr² s] of color [p = χ(v)]:
    - [View2 v = χ(carrier(v, Chr s))] — the processes [p] saw in the
      second immediate snapshot;
    - [View1 v = χ(carrier(v', s))] where [v'] is the vertex of color
      [p] inside [carrier(v, Chr s)] — the processes [p] saw in the
      first immediate snapshot. *)

open Fact_topology

val view1 : Vertex.t -> Pset.t
(** Raises [Invalid_argument] if the vertex is not at subdivision
    level 2. *)

val view2 : Vertex.t -> Pset.t
(** Raises [Invalid_argument] if the vertex is not at subdivision
    level 2. *)

val views : Vertex.t -> Pset.t * Pset.t
(** [(view1 v, view2 v)] in one memoized lookup (cached per vertex
    intern id). *)

val chr1_carrier : Vertex.t -> Simplex.t
(** [carrier(v, Chr s)] as a simplex of [Chr s]. *)

val pp_views : Format.formatter -> Vertex.t -> unit
(** Prints [p: View1=… View2=…]. *)
