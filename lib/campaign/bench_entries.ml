module Chr = Fact_topology.Chr
module Complex = Fact_topology.Complex
module Pset = Fact_topology.Pset
module Adversary = Fact_adversary.Adversary
module Agreement = Fact_adversary.Agreement
module Ra = Fact_affine.Ra
module Harness = Fact_check.Harness
module Explore = Fact_check.Explore
module Cache = Fact_resilience.Cache
module Fact_error = Fact_resilience.Fact_error
module Query = Fact_serve.Query
module Store = Fact_serve.Store
module Scheduler = Fact_serve.Scheduler
module Listener = Fact_serve.Listener
module Client = Fact_serve.Client

type result = {
  name : string;
  n : int;
  wall_ms : float;
  facets : int;
  hits : int;
  misses : int;
  evictions : int;
}

(* one warmup run (populating the memo tables: steady state is what
   the pipeline pays in practice), then the average of [reps] runs *)
let time_ms ~reps f =
  ignore (Sys.opaque_identity (f ()));
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (Sys.opaque_identity (f ()))
  done;
  (Unix.gettimeofday () -. t0) *. 1000. /. float_of_int reps

let cache_totals () =
  List.fold_left
    (fun (h, m, e) (_, s) ->
      (h + s.Cache.hits, m + s.Cache.misses, e + s.Cache.evictions))
    (0, 0, 0) (Cache.all_stats ())

let entry ~name ~n ~reps ~facets f =
  let h0, m0, e0 = cache_totals () in
  let wall_ms = time_ms ~reps f in
  let h1, m1, e1 = cache_totals () in
  {
    name; n; wall_ms;
    facets = facets ();
    hits = h1 - h0;
    misses = m1 - m0;
    evictions = e1 - e0;
  }

(* ----------------------------- entries ----------------------------- *)

let chr2_of nn = Chr.iterate 2 (Chr.standard nn)
let alpha_1res () = Agreement.of_adversary (Adversary.t_resilient ~n:3 ~t:1)
let alpha_5b () = Agreement.of_adversary Adversary.fig5b

let closure_host nn =
  (* a fresh complex per run, so [closure_set] cannot hit the cache *)
  Complex.of_facets ~n:nn (Complex.facets (Chr.standard_iterated ~m:2 ~n:nn))

let chr_entries () =
  [
    entry ~name:"chr_iterate2" ~n:3 ~reps:20 ~facets:(fun () -> 169)
      (fun () -> chr2_of 3);
    entry ~name:"chr_iterate2" ~n:4 ~reps:5 ~facets:(fun () -> 5625)
      (fun () -> chr2_of 4);
  ]

let ra_entries () =
  let a1 = alpha_1res () and a5b = alpha_5b () in
  [
    entry ~name:"ra_1res" ~n:3 ~reps:50
      ~facets:(fun () -> Complex.facet_count (Ra.complex a1 ~n:3))
      (fun () -> Ra.complex a1 ~n:3);
    entry ~name:"ra_fig5b" ~n:3 ~reps:50
      ~facets:(fun () -> Complex.facet_count (Ra.complex a5b ~n:3))
      (fun () -> Ra.complex a5b ~n:3);
  ]

(* materialized closure (Set of interned simplices) vs the streaming
   kernel: same count, no intermediate complex *)
let closure_entries () =
  [
    entry ~name:"closure_chr2" ~n:4 ~reps:5
      ~facets:(fun () -> List.length (Complex.all_simplices (closure_host 4)))
      (fun () -> List.length (Complex.all_simplices (closure_host 4)));
    entry ~name:"closure_chr2_stream" ~n:4 ~reps:5
      ~facets:(fun () -> Complex.simplex_count (closure_host 4))
      (fun () -> Complex.simplex_count (closure_host 4));
  ]

let explore_is ?domains () =
  let stats, _ = Harness.explore_immediate_snapshot ?domains ~n:3 () in
  stats.Explore.runs

let explore_alg1 ?domains () =
  let wf2 = Agreement.of_adversary (Adversary.wait_free 2) in
  (Harness.explore_algorithm1 ?domains ~alpha:wf2 ~participants:(Pset.full 2)
     ())
    .Explore.runs

let explore_entries () =
  [
    entry ~name:"explore_is" ~n:3 ~reps:3 ~facets:(explore_is ?domains:None)
      (explore_is ?domains:None);
    entry ~name:"explore_alg1" ~n:2 ~reps:3
      ~facets:(explore_alg1 ?domains:None)
      (explore_alg1 ?domains:None);
    (* the same explorations fanned out over the domain pool; the
       counts are bit-identical to the sequential entries above *)
    entry ~name:"explore_is_par" ~n:3 ~reps:3
      ~facets:(fun () -> explore_is ~domains:4 ())
      (fun () -> explore_is ~domains:4 ());
    entry ~name:"explore_alg1_par" ~n:2 ~reps:3
      ~facets:(fun () -> explore_alg1 ~domains:4 ())
      (fun () -> explore_alg1 ~domains:4 ());
  ]

(* the same R_A under a tight cache cap: steady state now pays
   eviction churn and recomputation — the price of bounded memory *)
let capped_entries () =
  let a1 = alpha_1res () in
  let old_cap = Cache.default_cap () in
  Cache.set_default_cap 64;
  Cache.clear_all ();
  Fun.protect
    ~finally:(fun () -> Cache.set_default_cap old_cap)
    (fun () ->
      [
        entry ~name:"ra_1res_cap64" ~n:3 ~reps:20
          ~facets:(fun () -> Complex.facet_count (Ra.complex a1 ~n:3))
          (fun () -> Ra.complex a1 ~n:3);
      ])

(* fact serve, cold vs warm: a cold one-shot pays the full pipeline on
   empty memo tables; a warm served request is a result-cache hit plus
   one socket round trip *)
let serve_entries () =
  let dir =
    let d = Filename.temp_file "fact-bench-serve" "" in
    Sys.remove d;
    Unix.mkdir d 0o700;
    d
  in
  let store = Store.open_dir (Filename.concat dir "store") in
  let scheduler = Scheduler.create ~store () in
  let sock = Filename.concat dir "bench.sock" in
  let listener = Listener.start_scheduler ~scheduler (Listener.Unix_sock sock) in
  let cleanup () =
    Listener.stop listener;
    Array.iter
      (fun f ->
        try Sys.remove (Filename.concat (Store.dir store) f)
        with Sys_error _ -> ())
      (try Sys.readdir (Store.dir store) with Sys_error _ -> [||]);
    List.iter
      (fun p -> try Unix.rmdir p with Unix.Unix_error _ -> ())
      [ Store.dir store; dir ]
  in
  Fun.protect ~finally:cleanup (fun () ->
      let q = Query.Ra { n = 3; adv = Query.Preset "wait-free" } in
      let cold =
        let reps = 3 in
        let h0, m0, e0 = cache_totals () in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to reps do
          Cache.clear_all ();
          ignore (Sys.opaque_identity (Query.eval q))
        done;
        let wall_ms =
          (Unix.gettimeofday () -. t0) *. 1000. /. float_of_int reps
        in
        let h1, m1, e1 = cache_totals () in
        {
          name = "serve_ra_cold_oneshot"; n = 3; wall_ms; facets = 169;
          hits = h1 - h0; misses = m1 - m0; evictions = e1 - e0;
        }
      in
      Client.with_connection (Listener.Unix_sock sock) (fun c ->
          ignore (Client.query c q);
          let h0, m0, e0 = cache_totals () in
          let wall_ms = time_ms ~reps:50 (fun () -> Client.query c q) in
          let h1, m1, e1 = cache_totals () in
          [
            cold;
            {
              name = "serve_ra_warm"; n = 3; wall_ms; facets = 169;
              hits = h1 - h0; misses = m1 - m0; evictions = e1 - e0;
            };
          ]))

(* advertised names, execution order; groups share setup *)
let groups :
    (string list * (unit -> result list)) list Lazy.t =
  lazy
    [
      ([ "chr_iterate2"; "chr_iterate2" ], chr_entries);
      ([ "ra_1res"; "ra_fig5b" ], ra_entries);
      ([ "closure_chr2"; "closure_chr2_stream" ], closure_entries);
      ( [ "explore_is"; "explore_alg1"; "explore_is_par"; "explore_alg1_par" ],
        explore_entries );
      ([ "ra_1res_cap64" ], capped_entries);
      ([ "serve_ra_cold_oneshot"; "serve_ra_warm" ], serve_entries);
    ]

let names = List.concat_map fst (Lazy.force groups)

let matches filter name =
  match filter with
  | None -> true
  | Some f ->
    let fl = String.lowercase_ascii f and nl = String.lowercase_ascii name in
    let n = String.length nl and m = String.length fl in
    let rec go i =
      i + m <= n && (String.sub nl i m = fl || go (i + 1))
    in
    m = 0 || go 0

let run ?filter () =
  (match filter with
  | Some f when not (List.exists (matches (Some f)) names) ->
    Fact_error.precondition ~fn:"Bench_entries.run"
      (Printf.sprintf "--filter %S matches no entry (entries: %s)" f
         (String.concat " " (List.sort_uniq compare names)))
  | _ -> ());
  Cache.reset_counters ();
  List.concat_map
    (fun (group_names, run_group) ->
      if List.exists (matches filter) group_names then
        List.filter (fun r -> matches filter r.name) (run_group ())
      else [])
    (Lazy.force groups)

let line r =
  Printf.sprintf
    "%-18s n=%d %10.3f ms  facets=%d  cache hits+%d misses+%d evictions+%d"
    r.name r.n r.wall_ms r.facets r.hits r.misses r.evictions

let json_line r =
  Printf.sprintf
    "  {\"name\": \"%s\", \"n\": %d, \"wall_ms\": %.3f, \"facets\": %d, \
     \"cache_delta\": {\"hits\": %d, \"misses\": %d, \"evictions\": %d}}"
    r.name r.n r.wall_ms r.facets r.hits r.misses r.evictions
