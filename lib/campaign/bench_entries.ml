module Chr = Fact_topology.Chr
module Complex = Fact_topology.Complex
module Pset = Fact_topology.Pset
module Adversary = Fact_adversary.Adversary
module Agreement = Fact_adversary.Agreement
module Ra = Fact_affine.Ra
module Harness = Fact_check.Harness
module Explore = Fact_check.Explore
module Cache = Fact_resilience.Cache
module Fact_error = Fact_resilience.Fact_error
module Query = Fact_serve.Query
module Store = Fact_serve.Store
module Scheduler = Fact_serve.Scheduler
module Listener = Fact_serve.Listener
module Client = Fact_serve.Client

type result = {
  name : string;
  n : int;
  wall_ms : float;
  p99_ms : float option;
  facets : int;
  minor_words : float;
  major_words : float;
  minor_collections : float;
  major_collections : float;
  hits : int;
  misses : int;
  evictions : int;
}

(* one warmup run (populating the memo tables: steady state is what
   the pipeline pays in practice), then [reps] timed runs. The GC
   deltas come from one [Gc.quick_stat] sandwich around the whole
   timed loop — words and collections are reported per rep, so they
   are comparable across entries with different [reps]. With
   [~percentiles:true] each rep is also timed individually for a
   nearest-rank p99 (latency entries: the tail is the figure that
   matters, the mean hides it). *)
let measure ?(percentiles = false) ~reps f =
  ignore (Sys.opaque_identity (f ()));
  (* flush the previous entry's garbage: without this an entry pays
     major-GC slices for its predecessor's allocation, and its wall
     time depends on where it sits in the sweep *)
  Gc.full_major ();
  let samples = if percentiles then Array.make reps 0. else [||] in
  (* [Gc.counters] reads the live allocation pointers; [quick_stat]'s
     word fields only refresh at collection points, so a loop that
     triggers no minor GC (the arena paths) would read as zero *)
  let mw0, _, jw0 = Gc.counters () in
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  for i = 0 to reps - 1 do
    if percentiles then begin
      let s0 = Unix.gettimeofday () in
      ignore (Sys.opaque_identity (f ()));
      samples.(i) <- (Unix.gettimeofday () -. s0) *. 1000.
    end
    else ignore (Sys.opaque_identity (f ()))
  done;
  let t1 = Unix.gettimeofday () in
  let g1 = Gc.quick_stat () in
  let mw1, _, jw1 = Gc.counters () in
  let fr = float_of_int reps in
  let p99 =
    if not percentiles then None
    else begin
      Array.sort compare samples;
      let rank = int_of_float (ceil (0.99 *. fr)) in
      Some samples.(max 0 (min (reps - 1) (rank - 1)))
    end
  in
  ( (t1 -. t0) *. 1000. /. fr,
    p99,
    (mw1 -. mw0) /. fr,
    (jw1 -. jw0) /. fr,
    float_of_int (g1.Gc.minor_collections - g0.Gc.minor_collections) /. fr,
    float_of_int (g1.Gc.major_collections - g0.Gc.major_collections) /. fr )

let cache_totals () =
  List.fold_left
    (fun (h, m, e) (_, s) ->
      (h + s.Cache.hits, m + s.Cache.misses, e + s.Cache.evictions))
    (0, 0, 0) (Cache.all_stats ())

let entry ?percentiles ~name ~n ~reps ~facets f =
  let h0, m0, e0 = cache_totals () in
  let wall_ms, p99_ms, minor_words, major_words, minor_collections,
      major_collections =
    measure ?percentiles ~reps f
  in
  let h1, m1, e1 = cache_totals () in
  {
    name; n; wall_ms; p99_ms;
    facets = facets ();
    minor_words; major_words; minor_collections; major_collections;
    hits = h1 - h0;
    misses = m1 - m0;
    evictions = e1 - e0;
  }

(* ----------------------------- entries ----------------------------- *)

let chr2_of nn = Chr.iterate 2 (Chr.standard nn)
let alpha_1res () = Agreement.of_adversary (Adversary.t_resilient ~n:3 ~t:1)
let alpha_5b () = Agreement.of_adversary Adversary.fig5b

let closure_host nn =
  (* a fresh complex per run, so [closure_set] cannot hit the cache *)
  Complex.of_facets ~n:nn (Complex.facets (Chr.standard_iterated ~m:2 ~n:nn))

let chr_entries () =
  [
    entry ~name:"chr_iterate2" ~n:3 ~reps:20 ~facets:(fun () -> 169)
      (fun () -> chr2_of 3);
    entry ~name:"chr_iterate2" ~n:4 ~reps:5 ~facets:(fun () -> 5625)
      (fun () -> chr2_of 4);
  ]

let ra_entries () =
  let a1 = alpha_1res () and a5b = alpha_5b () in
  [
    entry ~name:"ra_1res" ~n:3 ~reps:50
      ~facets:(fun () -> Complex.facet_count (Ra.complex a1 ~n:3))
      (fun () -> Ra.complex a1 ~n:3);
    entry ~name:"ra_fig5b" ~n:3 ~reps:50
      ~facets:(fun () -> Complex.facet_count (Ra.complex a5b ~n:3))
      (fun () -> Ra.complex a5b ~n:3);
  ]

(* materialized closure (Set of interned simplices) vs the streaming
   kernel: same count, no intermediate complex *)
let closure_entries () =
  [
    entry ~name:"closure_chr2" ~n:4 ~reps:5
      ~facets:(fun () -> List.length (Complex.all_simplices (closure_host 4)))
      (fun () -> List.length (Complex.all_simplices (closure_host 4)));
    entry ~name:"closure_chr2_stream" ~n:4 ~reps:5
      ~facets:(fun () -> Complex.simplex_count (closure_host 4))
      (fun () -> Complex.simplex_count (closure_host 4));
  ]

let explore_is ?domains () =
  let stats, _ = Harness.explore_immediate_snapshot ?domains ~n:3 () in
  stats.Explore.runs

let explore_alg1 ?domains () =
  let wf2 = Agreement.of_adversary (Adversary.wait_free 2) in
  (Harness.explore_algorithm1 ?domains ~alpha:wf2 ~participants:(Pset.full 2)
     ())
    .Explore.runs

let explore_entries () =
  [
    entry ~name:"explore_is" ~n:3 ~reps:3 ~facets:(explore_is ?domains:None)
      (explore_is ?domains:None);
    entry ~name:"explore_alg1" ~n:2 ~reps:3
      ~facets:(explore_alg1 ?domains:None)
      (explore_alg1 ?domains:None);
    (* the same explorations fanned out over the domain pool; the
       counts are bit-identical to the sequential entries above *)
    entry ~name:"explore_is_par" ~n:3 ~reps:3
      ~facets:(fun () -> explore_is ~domains:4 ())
      (fun () -> explore_is ~domains:4 ());
    entry ~name:"explore_alg1_par" ~n:2 ~reps:3
      ~facets:(fun () -> explore_alg1 ~domains:4 ())
      (fun () -> explore_alg1 ~domains:4 ());
  ]

(* the same R_A under a tight cache cap: steady state now pays
   eviction churn and recomputation — the price of bounded memory *)
let capped_entries () =
  let a1 = alpha_1res () in
  let old_cap = Cache.default_cap () in
  Cache.set_default_cap 64;
  Cache.clear_all ();
  Fun.protect
    ~finally:(fun () -> Cache.set_default_cap old_cap)
    (fun () ->
      [
        entry ~name:"ra_1res_cap64" ~n:3 ~reps:20
          ~facets:(fun () -> Complex.facet_count (Ra.complex a1 ~n:3))
          (fun () -> Ra.complex a1 ~n:3);
      ])

(* fact serve, cold vs warm: a cold one-shot pays the full pipeline on
   empty memo tables; a warm served request is a result-cache hit plus
   one socket round trip. The warm entry is per-rep timed: its p99 is
   the served-latency figure the wire path is judged on. *)
let serve_entries () =
  let dir =
    let d = Filename.temp_file "fact-bench-serve" "" in
    Sys.remove d;
    Unix.mkdir d 0o700;
    d
  in
  let store = Store.open_dir (Filename.concat dir "store") in
  let scheduler = Scheduler.create ~store () in
  let sock = Filename.concat dir "bench.sock" in
  let listener = Listener.start_scheduler ~scheduler (Listener.Unix_sock sock) in
  let cleanup () =
    Listener.stop listener;
    Array.iter
      (fun f ->
        try Sys.remove (Filename.concat (Store.dir store) f)
        with Sys_error _ -> ())
      (try Sys.readdir (Store.dir store) with Sys_error _ -> [||]);
    List.iter
      (fun p -> try Unix.rmdir p with Unix.Unix_error _ -> ())
      [ Store.dir store; dir ]
  in
  Fun.protect ~finally:cleanup (fun () ->
      let q = Query.Ra { n = 3; adv = Query.Preset "wait-free" } in
      let cold =
        entry ~name:"serve_ra_cold_oneshot" ~n:3 ~reps:3
          ~facets:(fun () -> 169)
          (fun () ->
            Cache.clear_all ();
            Query.eval q)
      in
      Client.with_connection (Listener.Unix_sock sock) (fun c ->
          ignore (Client.query c q);
          [
            cold;
            entry ~percentiles:true ~name:"serve_ra_warm" ~n:3 ~reps:200
              ~facets:(fun () -> 169)
              (fun () -> Client.query c q);
          ]))

(* advertised names, execution order; groups share setup *)
let groups :
    (string list * (unit -> result list)) list Lazy.t =
  lazy
    [
      ([ "chr_iterate2"; "chr_iterate2" ], chr_entries);
      ([ "ra_1res"; "ra_fig5b" ], ra_entries);
      ([ "closure_chr2"; "closure_chr2_stream" ], closure_entries);
      ( [ "explore_is"; "explore_alg1"; "explore_is_par"; "explore_alg1_par" ],
        explore_entries );
      ([ "ra_1res_cap64" ], capped_entries);
      ([ "serve_ra_cold_oneshot"; "serve_ra_warm" ], serve_entries);
    ]

let names = List.concat_map fst (Lazy.force groups)

let matches_one f name =
  let fl = String.lowercase_ascii f and nl = String.lowercase_ascii name in
  let n = String.length nl and m = String.length fl in
  let rec go i = i + m <= n && (String.sub nl i m = fl || go (i + 1)) in
  m = 0 || go 0

let matches filters name =
  filters = [] || List.exists (fun f -> matches_one f name) filters

let run ?(filters = []) () =
  List.iter
    (fun f ->
      if not (List.exists (matches_one f) names) then
        Fact_error.precondition ~fn:"Bench_entries.run"
          (Printf.sprintf "--filter %S matches no entry (entries: %s)" f
             (String.concat " " (List.sort_uniq compare names))))
    filters;
  Cache.reset_counters ();
  List.concat_map
    (fun (group_names, run_group) ->
      if List.exists (matches filters) group_names then
        List.filter (fun r -> matches filters r.name) (run_group ())
      else [])
    (Lazy.force groups)

let line r =
  Printf.sprintf
    "%-18s n=%d %10.3f ms%s  facets=%d  gc minor=%.0fw major=%.0fw \
     cols=%.1f/%.1f  cache hits+%d misses+%d evictions+%d"
    r.name r.n r.wall_ms
    (match r.p99_ms with
    | None -> ""
    | Some p -> Printf.sprintf " (p99 %.3f ms)" p)
    r.facets r.minor_words r.major_words r.minor_collections
    r.major_collections r.hits r.misses r.evictions

let json_line r =
  Printf.sprintf
    "  {\"name\": \"%s\", \"n\": %d, \"wall_ms\": %.3f, %s\"facets\": %d, \
     \"gc_delta\": {\"minor_words\": %.0f, \"major_words\": %.0f, \
     \"minor_collections\": %.2f, \"major_collections\": %.2f}, \
     \"cache_delta\": {\"hits\": %d, \"misses\": %d, \"evictions\": %d}}"
    r.name r.n r.wall_ms
    (match r.p99_ms with
    | None -> ""
    | Some p -> Printf.sprintf "\"p99_ms\": %.3f, " p)
    r.facets r.minor_words r.major_words r.minor_collections
    r.major_collections r.hits r.misses r.evictions

(* ------------------------------- gate ------------------------------ *)

(* The baseline is a committed BENCH_topology.json: one entry object
   per line, scanned with the same field extractors the campaign gate
   uses (Report.str_field / num_field) — entry lines are the ones that
   carry both a name and a wall_ms, which skips the cache trailer. *)

type baseline_entry = {
  b_name : string;
  b_n : int;
  b_wall_ms : float;
  b_minor_words : float option;
}

let parse_baseline contents =
  String.split_on_char '\n' contents
  |> List.filter_map (fun l ->
         match (Report.str_field l "name", Report.num_field l "wall_ms") with
         | Some b_name, Some b_wall_ms ->
           Some
             {
               b_name;
               b_n =
                 (match Report.num_field l "n" with
                 | Some n -> int_of_float n
                 | None -> 0);
               b_wall_ms;
               b_minor_words = Report.num_field l "minor_words";
             }
         | _ -> None)

(* The gate is keyed on the {e current} results: a filtered run gates
   only the entries it ran (CI pins coverage on the command line), and
   a result with no baseline line fails — adding an entry means
   refreshing the baseline in the same change. *)
let gate ?(tolerance = 4.0) ?(slack_ms = 50.) ?(alloc_tolerance = 2.0)
    ?(slack_words = 50_000.) ~baseline results =
  let entries = parse_baseline baseline in
  if entries = [] then Error [ "gate: baseline contains no entries" ]
  else if results = [] then Error [ "gate: no results to gate" ]
  else begin
    let violations =
      List.concat_map
        (fun r ->
          match
            List.find_opt
              (fun b -> b.b_name = r.name && b.b_n = r.n)
              entries
          with
          | None ->
            [ Printf.sprintf
                "missing: entry %s n=%d has no baseline line (refresh the \
                 baseline)"
                r.name r.n ]
          | Some b ->
            let slow =
              let budget = (tolerance *. b.b_wall_ms) +. slack_ms in
              if r.wall_ms > budget then
                [ Printf.sprintf
                    "slow: %s n=%d took %.3f ms, budget %.3f ms (%.3f ms \
                     baseline x %.1f + %.0f ms slack)"
                    r.name r.n r.wall_ms budget b.b_wall_ms tolerance slack_ms ]
              else []
            in
            let churny =
              match b.b_minor_words with
              | None -> []
              | Some base ->
                let budget = (alloc_tolerance *. base) +. slack_words in
                if r.minor_words > budget then
                  [ Printf.sprintf
                      "alloc: %s n=%d allocated %.0f minor words/rep, budget \
                       %.0f (%.0f baseline x %.1f + %.0f slack)"
                      r.name r.n r.minor_words budget base alloc_tolerance
                      slack_words ]
                else []
            in
            slow @ churny)
        results
    in
    if violations = [] then Ok (List.length results) else Error violations
  end
