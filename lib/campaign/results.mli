(** Content-addressed campaign results on disk.

    A results directory has three subdirectories:

    - [cells/<digest>.result] — the {e deterministic core} of a cell's
      outcome: layout version, the canonical cell, its digest, the
      outcome class, and the payload fingerprint (MD5, byte and line
      counts). Two runs of the same grid — whatever the backend,
      domain count or cache cap — produce byte-identical files here,
      so CI compares whole [cells/] directories with [cmp].
    - [timings/<digest>.timing] — the {e telemetry sidecar}: backend,
      answer source, wall-clock, registry-wide cache-counter deltas,
      domain count, and the failure message if any. Never compared
      byte-for-byte; [fact report] reads it for the wall-time columns
      and the regression gate.
    - [quarantine/] — where corrupt files are {e moved} (never
      deleted) before their cell is recomputed, preserving the
      evidence.

    Writes are tmp+rename within the target directory, so a crashed
    run leaves either a complete file or a stray [*.tmp] that readers
    ignore. A [.result] whose contents fail to parse, or whose digest
    disagrees with its filename, is quarantined on first contact —
    {!completed} then reports the cell as pending again. *)

type record = {
  cell : Grid.cell;
  digest : string;
  outcome : string;  (** ["ok"] or a {!class_of_error} slug *)
  payload_md5 : string;
  payload_bytes : int;
  payload_lines : int;
}

type timing = {
  backend : string;  (** ["local"] or ["cluster"] *)
  source : string;  (** [computed | memory | disk | -] *)
  wall_ms : float;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  domains : int;  (** 0 when the work ran server-side *)
  error : string option;
}

val version : string

val class_of_error : Fact_resilience.Fact_error.t -> string
(** [precondition | deadline | cancelled | worker-failure |
    resource-limit | unavailable] — the typed taxonomy's slug; the
    only failure information allowed into the deterministic core. *)

val make_record :
  cell:Grid.cell -> outcome:string -> payload:string -> record
(** Fingerprint [payload] ([""] for failures) under the cell's
    {!Grid.digest}. *)

val init : string -> unit
(** Create the directory layout (idempotent). *)

val cells_dir : string -> string
val timings_dir : string -> string
val quarantine_dir : string -> string

val record_path : dir:string -> digest:string -> string

val write : dir:string -> record -> timing -> unit
(** Both files, tmp+rename each. *)

val record_to_sexp : record -> Fact_sexp.Sexp.t
val record_of_sexp : Fact_sexp.Sexp.t -> (record, string) result
val timing_to_sexp : timing -> Fact_sexp.Sexp.t
val timing_of_sexp : Fact_sexp.Sexp.t -> (timing, string) result

val completed : dir:string -> digest:string -> bool
(** True iff a valid [.result] for [digest] exists — the resume
    check. A present-but-corrupt file is quarantined and reported
    pending. *)

val load : dir:string -> (record * timing option) list * int
(** Every valid result (sorted by digest) with its sidecar if one
    parses, plus the number of files quarantined — by this call or
    ever ([quarantine/] entries accumulate). *)
