(** Execute a grid, one content-addressed result per cell.

    Two backends answer the same cells with byte-identical
    deterministic cores (the repository's determinism invariant —
    {!Fact_serve.Query.eval} is independent of domain count, cache
    caps and cache temperature — is what makes this hold):

    - {!Local}: cells fan out through the in-process
      {!Fact_topology.Parallel} work-stealing pool. Cells are grouped
      by their environment axes (domains, cache-cap); each group
      applies its settings process-wide, runs its cells, and the
      previous settings are restored afterwards. Per-cell deadlines
      ride a {!Fact_resilience.Cancel} token around the evaluation.
    - {!Cluster}: each cell becomes one
      {!Fact_serve.Client.query_with_retry} against a running [fact
      serve] or [fact cluster] front tier (same wire protocol); the
      cell deadline travels with the request and is enforced
      server-side.

    {b Resume.} A cell whose valid [.result] already exists is
    skipped; a corrupt one is quarantined and recomputed. Failed
    cells persist their typed outcome class and are skipped on resume
    too — except [unavailable] (the retryable class), which leaves no
    result so the next run retries it.

    {b Telemetry caveat.} Local cache-counter deltas are snapshots of
    the process-wide registry around each cell; when several cells run
    concurrently their deltas overlap. Timing sidecar only — the
    deterministic core never contains counters. *)

type backend =
  | Local
  | Cluster of {
      addr : Fact_serve.Listener.addr;
      retries : int;
      backoff : Fact_resilience.Backoff.policy option;
      timeout_s : float;
    }

type progress = {
  total : int;
  ran : int;
  skipped : int;
  ok : int;
  failed : int;
}

val backend_name : backend -> string

val run :
  ?log:(string -> unit) ->
  backend:backend ->
  dir:string ->
  Grid.spec ->
  progress
(** Initializes [dir]'s layout, executes every pending cell, writes
    results. [log] receives one line per cell plus a summary. *)
