(** Aggregate a results directory; gate CI on regressions.

    [fact report] folds [cells/] + [timings/] into machine-readable
    tables (JSON one cell per line, CSV), a fingerprint listing,
    a markdown table it splices into EXPERIMENTS.md between marker
    comments, and — the CI teeth — {!gate}: compare wall-time and
    fingerprint columns against a committed baseline (itself a prior
    {!to_json} output) with a multiplicative tolerance band plus an
    absolute slack, and report every violated cell.

    Wall-time percentiles come from the same {!Fact_serve.Histogram}
    accessor the scheduler's stats and [fact loadgen] print, so "p95"
    means the same thing everywhere. *)

type row = { record : Results.record; timing : Results.timing option }

type t = {
  rows : row list;  (** sorted by (endpoint, n, adversary, …, digest) *)
  quarantined : int;
}

val load : dir:string -> t

val hist : t -> Fact_serve.Histogram.t
(** Per-cell wall times folded into the repository's log-bucket
    histogram. *)

val to_json : t -> string
(** One cell object per line — both the [--json] output and the
    baseline format {!gate} reads. *)

val to_csv : t -> string

val fingerprints : t -> string
(** ["<digest> <payload-md5> <outcome>\n"] per cell, sorted by digest:
    the deterministic column, for byte-comparing two runs. *)

val markdown : t -> string
(** The EXPERIMENTS.md table (includes wall-time columns, so it is
    regenerated, never hand-edited). *)

val begin_marker : string
val end_marker : string

val splice : file:string -> t -> unit
(** Replace the block between {!begin_marker} and {!end_marker} in
    [file] (append the block if the markers are absent), tmp+rename.
    Raises a typed [Precondition] error if the file has a begin marker
    without an end marker. *)

val str_field : string -> string -> string option
val num_field : string -> string -> float option
(** [str_field line key] / [num_field line key] extract a ["key": v]
    field from one line of a JSON table {e this repository wrote}
    (one object per line, [Printf]-rendered). Not a JSON parser — the
    shared scanning primitive behind {!gate}, {!trend} and the bench
    gate ({!Bench_entries.gate}). *)

val gate :
  ?tolerance:float ->
  ?slack_ms:float ->
  baseline:string ->
  t ->
  (int, string list) result
(** [gate ~baseline:(contents of a committed {!to_json})] checks, per
    baseline cell: it exists in the current run, its fingerprint
    (payload MD5 + outcome) is unchanged, and its wall time is at most
    [tolerance * baseline + slack_ms] (defaults: 4.0, 50 ms). Extra
    current cells pass silently — growing a grid is not a regression.
    [Ok n] reports the number of compared cells; [Error] carries one
    line per violation. *)

val trend : ?format:[ `Md | `Csv ] -> (string * string) list -> string
(** [trend [(label, contents); ...]] lines the wall-time column of
    several baseline JSONs up side by side — one [(label, file
    contents)] pair per snapshot, oldest first. Both baseline dialects
    are understood: campaign {!to_json} cells (keyed by content
    digest) and [BENCH_topology.json] entries (keyed by name and [n]).
    Markdown output appends a trend column, last over first snapshot;
    CSV emits raw numbers with blanks for entries a snapshot lacks.
    Raises a typed [Precondition] error for a file with no entries. *)
