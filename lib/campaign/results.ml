open Fact_sexp
module Fact_error = Fact_resilience.Fact_error

let version = Grid.layout_version

type record = {
  cell : Grid.cell;
  digest : string;
  outcome : string;
  payload_md5 : string;
  payload_bytes : int;
  payload_lines : int;
}

type timing = {
  backend : string;
  source : string;
  wall_ms : float;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  domains : int;
  error : string option;
}

let class_of_error : Fact_error.t -> string = function
  | Fact_error.Precondition _ -> "precondition"
  | Fact_error.Deadline_exceeded _ -> "deadline"
  | Fact_error.Cancelled _ -> "cancelled"
  | Fact_error.Worker_failure _ -> "worker-failure"
  | Fact_error.Resource_limit _ -> "resource-limit"
  | Fact_error.Unavailable _ -> "unavailable"

let make_record ~cell ~outcome ~payload =
  {
    cell;
    digest = Grid.digest cell;
    outcome;
    payload_md5 = Stdlib.Digest.to_hex (Stdlib.Digest.string payload);
    payload_bytes = String.length payload;
    payload_lines =
      String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 payload;
  }

(* ------------------------------ layout ----------------------------- *)

let cells_dir dir = Filename.concat dir "cells"
let timings_dir dir = Filename.concat dir "timings"
let quarantine_dir dir = Filename.concat dir "quarantine"

let mkdir_p path =
  let rec go p =
    if p <> "/" && p <> "." && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path

let init dir =
  List.iter mkdir_p [ cells_dir dir; timings_dir dir; quarantine_dir dir ]

let record_path ~dir ~digest =
  Filename.concat (cells_dir dir) (digest ^ ".result")

let timing_path ~dir ~digest =
  Filename.concat (timings_dir dir) (digest ^ ".timing")

(* ------------------------------ sexp ------------------------------- *)

let ( let* ) = Result.bind

let field k v = Sexp.List [ Sexp.Atom k; v ]

let record_to_sexp r =
  Sexp.List
    [
      field "version" (Sexp.Atom version);
      field "cell" (Grid.cell_to_sexp r.cell);
      field "digest" (Sexp.Atom r.digest);
      field "outcome" (Sexp.Atom r.outcome);
      field "payload-md5" (Sexp.Atom r.payload_md5);
      field "payload-bytes" (Sexp.int r.payload_bytes);
      field "payload-lines" (Sexp.int r.payload_lines);
    ]

let atom_field k sx =
  let* v = Sexp.assoc k sx in
  Sexp.to_atom v

let int_field k sx =
  let* v = Sexp.assoc k sx in
  Sexp.to_int v

let record_of_sexp sx =
  let* v = atom_field "version" sx in
  let* () =
    if v = version then Ok ()
    else Error (Printf.sprintf "version %S, want %S" v version)
  in
  let* cell_sx = Sexp.assoc "cell" sx in
  let* cell = Grid.cell_of_sexp cell_sx in
  let* digest = atom_field "digest" sx in
  let* () =
    if digest = Grid.digest cell then Ok ()
    else Error "digest does not match cell"
  in
  let* outcome = atom_field "outcome" sx in
  let* payload_md5 = atom_field "payload-md5" sx in
  let* payload_bytes = int_field "payload-bytes" sx in
  let* payload_lines = int_field "payload-lines" sx in
  Ok { cell; digest; outcome; payload_md5; payload_bytes; payload_lines }

let timing_to_sexp t =
  Sexp.List
    ([
       field "backend" (Sexp.Atom t.backend);
       field "source" (Sexp.Atom t.source);
       field "wall-ms" (Sexp.Atom (Printf.sprintf "%.3f" t.wall_ms));
       field "cache-hits" (Sexp.int t.cache_hits);
       field "cache-misses" (Sexp.int t.cache_misses);
       field "cache-evictions" (Sexp.int t.cache_evictions);
       field "domains" (Sexp.int t.domains);
     ]
    @
    match t.error with
    | None -> []
    | Some e -> [ field "error" (Sexp.Atom e) ])

let timing_of_sexp sx =
  let* backend = atom_field "backend" sx in
  let* source = atom_field "source" sx in
  let* wall_ms =
    let* a = atom_field "wall-ms" sx in
    match float_of_string_opt a with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "bad wall-ms %S" a)
  in
  let* cache_hits = int_field "cache-hits" sx in
  let* cache_misses = int_field "cache-misses" sx in
  let* cache_evictions = int_field "cache-evictions" sx in
  let* domains = int_field "domains" sx in
  let error =
    match atom_field "error" sx with Ok e -> Some e | Error _ -> None
  in
  Ok
    {
      backend; source; wall_ms; cache_hits; cache_misses; cache_evictions;
      domains; error;
    }

(* ------------------------------- io -------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* tmp+rename in the destination directory, so the rename cannot cross
   a filesystem boundary and readers never see a partial file *)
let write_atomic path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc contents;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let write ~dir r t =
  if String.length r.digest <> 32 then
    Fact_error.precondition ~fn:"Results.write"
      (Printf.sprintf "bad digest %S" r.digest);
  write_atomic
    (record_path ~dir ~digest:r.digest)
    (Sexp.to_string (record_to_sexp r) ^ "\n");
  write_atomic
    (timing_path ~dir ~digest:r.digest)
    (Sexp.to_string (timing_to_sexp t) ^ "\n")

(* move a corrupt file out of the way, never deleting evidence; a
   numeric suffix disambiguates repeat offenders *)
let quarantine ~dir path =
  mkdir_p (quarantine_dir dir);
  let base = Filename.concat (quarantine_dir dir) (Filename.basename path) in
  let rec fresh i =
    let candidate = if i = 0 then base else Printf.sprintf "%s.%d" base i in
    if Sys.file_exists candidate then fresh (i + 1) else candidate
  in
  try Sys.rename path (fresh 0) with Sys_error _ -> ()

let parse_record ~expected_digest contents =
  let* sx = Sexp.of_string contents in
  let* r = record_of_sexp sx in
  match expected_digest with
  | Some d when d <> r.digest -> Error "filename disagrees with digest"
  | _ -> Ok r

let load_record ~dir ~digest =
  let path = record_path ~dir ~digest in
  if not (Sys.file_exists path) then None
  else
    match read_file path with
    | exception Sys_error _ -> None
    | contents -> (
      match parse_record ~expected_digest:(Some digest) contents with
      | Ok r -> Some r
      | Error _ ->
        quarantine ~dir path;
        None)

let completed ~dir ~digest = load_record ~dir ~digest <> None

let load_timing ~dir ~digest =
  let path = timing_path ~dir ~digest in
  if not (Sys.file_exists path) then None
  else
    match read_file path with
    | exception Sys_error _ -> None
    | contents -> (
      match Result.bind (Sexp.of_string contents) timing_of_sexp with
      | Ok t -> Some t
      | Error _ ->
        quarantine ~dir path;
        None)

let load ~dir =
  let entries =
    match Sys.readdir (cells_dir dir) with
    | exception Sys_error _ -> [||]
    | a -> a
  in
  Array.sort compare entries;
  let rows =
    Array.to_list entries
    |> List.filter_map (fun name ->
           match Filename.chop_suffix_opt ~suffix:".result" name with
           | None -> None
           | Some digest -> (
             match load_record ~dir ~digest with
             | None -> None
             | Some r -> Some (r, load_timing ~dir ~digest)))
  in
  let quarantined =
    match Sys.readdir (quarantine_dir dir) with
    | exception Sys_error _ -> 0
    | a -> Array.length a
  in
  (rows, quarantined)
