open Fact_sexp
module Fact_error = Fact_resilience.Fact_error
module Query = Fact_serve.Query

let layout_version = "fact-campaign-1"

type cell = {
  endpoint : string;
  adversary : string;
  n : int;
  m : int;
  protocol : string;
  max_runs : int;
  domains : int;
  cache_cap : int option;
  seed : int;
  deadline_s : float option;
}

type axis = { axis : string; values : string list }

type spec = {
  name_ : string;
  seed_ : int;
  deadline_s_ : float option;
  axes_ : axis list;  (* declared order; defaults appended *)
  prune_ : (string * string) list list;
}

let name s = s.name_
let seed s = s.seed_

let endpoints = [ "ra"; "chr"; "critical"; "setcon"; "fairness"; "explore" ]

(* axis name -> default values; also the canonical nesting order *)
let axis_defaults =
  [
    ("endpoint", []);
    ("adversary", [ "wait-free" ]);
    ("n", [ "3" ]);
    ("m", [ "1" ]);
    ("protocol", [ "is" ]);
    ("max-runs", [ "10000" ]);
    ("domains", [ "1" ]);
    ("cache-cap", [ "default" ]);
  ]

(* ------------------------------ sexp ------------------------------- *)

let ( let* ) = Result.bind

let float_atom f =
  (* %.17g round-trips every float; %g keeps whole seconds short *)
  let s = Printf.sprintf "%g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let atom_of sx = Sexp.to_atom sx
let int_of sx = Sexp.to_int sx

let to_sexp s =
  let field k v = Sexp.List [ Sexp.Atom k; v ] in
  let axes =
    List.map
      (fun a ->
        Sexp.List [ Sexp.Atom a.axis; Sexp.list (List.map Sexp.atom a.values) ])
      s.axes_
  in
  let prune =
    List.map
      (fun clause ->
        Sexp.list
          (List.map
             (fun (k, v) -> Sexp.List [ Sexp.Atom k; Sexp.Atom v ])
             clause))
      s.prune_
  in
  Sexp.List
    ([
       field "name" (Sexp.Atom s.name_);
       field "seed" (Sexp.int s.seed_);
     ]
    @ (match s.deadline_s_ with
      | None -> []
      | Some d -> [ field "deadline-s" (Sexp.Atom (float_atom d)) ])
    @ [ field "axes" (Sexp.list axes) ]
    @ if prune = [] then [] else [ field "prune" (Sexp.list prune) ])

let parse_axis sx =
  match sx with
  | Sexp.List [ Sexp.Atom axis; Sexp.List values ] ->
    if not (List.mem_assoc axis axis_defaults) then
      Error
        (Printf.sprintf "unknown axis %S (known: %s)" axis
           (String.concat " " (List.map fst axis_defaults)))
    else if values = [] then Error (Printf.sprintf "axis %S is empty" axis)
    else
      let* values = Sexp.map_result atom_of values in
      Ok { axis; values }
  | _ -> Error "axis must be (name (value ...))"

let parse_clause sx =
  match sx with
  | Sexp.List pairs ->
    Sexp.map_result
      (function
        | Sexp.List [ Sexp.Atom k; Sexp.Atom v ] when List.mem_assoc k axis_defaults ->
          Ok (k, v)
        | _ -> Error "prune clause entry must be (axis value)")
      pairs
  | _ -> Error "prune clause must be ((axis value) ...)"

let of_sexp sx =
  let* name_sx = Sexp.assoc "name" sx in
  let* name_ = atom_of name_sx in
  let* seed_ =
    match Sexp.assoc "seed" sx with
    | Ok v -> int_of v
    | Error _ -> Ok 42
  in
  let* deadline_s_ =
    match Sexp.assoc "deadline-s" sx with
    | Error _ -> Ok None
    | Ok v ->
      let* a = atom_of v in
      (match float_of_string_opt a with
      | Some f when f > 0. -> Ok (Some f)
      | _ -> Error (Printf.sprintf "bad deadline-s %S" a))
  in
  let* axes_sx = Sexp.assoc "axes" sx in
  let* axes_ =
    match axes_sx with
    | Sexp.List l -> Sexp.map_result parse_axis l
    | _ -> Error "axes must be a list of (name (value ...))"
  in
  let dup =
    List.find_opt
      (fun a -> List.length (List.filter (fun b -> b.axis = a.axis) axes_) > 1)
      axes_
  in
  let* () =
    match dup with
    | Some a -> Error (Printf.sprintf "axis %S declared twice" a.axis)
    | None -> Ok ()
  in
  let* () =
    if List.exists (fun a -> a.axis = "endpoint") axes_ then Ok ()
    else Error "the endpoint axis is required"
  in
  let* prune_ =
    match Sexp.assoc "prune" sx with
    | Error _ -> Ok []
    | Ok (Sexp.List l) -> Sexp.map_result parse_clause l
    | Ok _ -> Error "prune must be a list of clauses"
  in
  (* materialize defaults for absent axes, in canonical order *)
  let axes_ =
    axes_
    @ List.filter_map
        (fun (axis, values) ->
          if values = [] || List.exists (fun a -> a.axis = axis) axes_ then None
          else Some { axis; values })
        axis_defaults
  in
  Ok { name_; seed_; deadline_s_; axes_; prune_ }

let of_string s =
  let* sx = Sexp.of_string s in
  of_sexp sx

(* Spec files may carry [;] line comments; the core sexp reader does
   not, so strip them here (outside double-quoted atoms only). *)
let strip_comments s =
  let b = Buffer.create (String.length s) in
  let in_string = ref false and in_comment = ref false in
  String.iter
    (fun ch ->
      match ch with
      | '\n' ->
        in_comment := false;
        Buffer.add_char b ch
      | _ when !in_comment -> ()
      | '"' ->
        in_string := not !in_string;
        Buffer.add_char b ch
      | ';' when not !in_string -> in_comment := true
      | ch -> Buffer.add_char b ch)
    s;
  Buffer.contents b

let load path =
  let contents =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error m -> Fact_error.precondition ~fn:"Grid.load" m
  in
  match of_string (strip_comments contents) with
  | Ok s -> s
  | Error m ->
    Fact_error.precondition ~fn:"Grid.load"
      (Printf.sprintf "%s: %s" path m)

(* ------------------------------ cells ------------------------------ *)

let cell_to_sexp c =
  let field k v = Sexp.List [ Sexp.Atom k; v ] in
  Sexp.List
    [
      field "endpoint" (Sexp.Atom c.endpoint);
      field "adversary" (Sexp.Atom c.adversary);
      field "n" (Sexp.int c.n);
      field "m" (Sexp.int c.m);
      field "protocol" (Sexp.Atom c.protocol);
      field "max-runs" (Sexp.int c.max_runs);
      field "domains" (Sexp.int c.domains);
      field "cache-cap"
        (Sexp.Atom
           (match c.cache_cap with
           | None -> "default"
           | Some cap -> string_of_int cap));
      field "seed" (Sexp.int c.seed);
      field "deadline-s"
        (Sexp.Atom
           (match c.deadline_s with
           | None -> "none"
           | Some d -> float_atom d));
    ]

let cell_of_sexp sx =
  let atom_field k =
    let* v = Sexp.assoc k sx in
    atom_of v
  in
  let int_field k =
    let* v = Sexp.assoc k sx in
    int_of v
  in
  let* endpoint = atom_field "endpoint" in
  let* adversary = atom_field "adversary" in
  let* n = int_field "n" in
  let* m = int_field "m" in
  let* protocol = atom_field "protocol" in
  let* max_runs = int_field "max-runs" in
  let* domains = int_field "domains" in
  let* cache_cap =
    let* a = atom_field "cache-cap" in
    if a = "default" then Ok None
    else
      match int_of_string_opt a with
      | Some cap -> Ok (Some cap)
      | None -> Error (Printf.sprintf "bad cache-cap %S" a)
  in
  let* seed = int_field "seed" in
  let* deadline_s =
    let* a = atom_field "deadline-s" in
    if a = "none" then Ok None
    else
      match float_of_string_opt a with
      | Some d -> Ok (Some d)
      | None -> Error (Printf.sprintf "bad deadline-s %S" a)
  in
  Ok
    {
      endpoint; adversary; n; m; protocol; max_runs; domains; cache_cap;
      seed; deadline_s;
    }

let digest c =
  Fact_serve.Digest.of_string
    (Fact_serve.Digest.code_version ^ "\n" ^ layout_version ^ "\n"
    ^ Sexp.to_string (cell_to_sexp c))

let canonicalize c =
  let c = if c.endpoint = "chr" then c else { c with m = 0 } in
  let c =
    if c.endpoint = "explore" then c
    else { c with protocol = "-"; max_runs = 0 }
  in
  if c.endpoint = "chr" || c.endpoint = "explore" then
    { c with adversary = "-" }
  else c

let fail fmt = Printf.ksprintf (Fact_error.precondition ~fn:"Grid.cells") fmt

let int_value ~axis v =
  match int_of_string_opt v with
  | Some i -> i
  | None -> fail "axis %s: not an integer: %S" axis v

let cell_of_point s point =
  let get axis = List.assoc axis point in
  let endpoint = get "endpoint" in
  if not (List.mem endpoint endpoints) then
    fail "unknown endpoint %S (known: %s)" endpoint
      (String.concat " " endpoints);
  let cache_cap =
    match get "cache-cap" with
    | "default" -> None
    | v -> Some (int_value ~axis:"cache-cap" v)
  in
  canonicalize
    {
      endpoint;
      adversary = get "adversary";
      n = int_value ~axis:"n" (get "n");
      m = int_value ~axis:"m" (get "m");
      protocol = get "protocol";
      max_runs = int_value ~axis:"max-runs" (get "max-runs");
      domains = int_value ~axis:"domains" (get "domains");
      cache_cap;
      seed = s.seed_;
      deadline_s = s.deadline_s_;
    }

let pruned s point =
  List.exists
    (fun clause ->
      List.for_all
        (fun (axis, value) ->
          match List.assoc_opt axis point with
          | Some v -> v = value
          | None -> false)
        clause)
    s.prune_

let cells s =
  (* cross product in the canonical nesting order, whatever the
     declaration order was — resuming depends on a stable cell list *)
  let axes =
    List.map
      (fun (axis, _) ->
        match List.find_opt (fun a -> a.axis = axis) s.axes_ with
        | Some a -> a
        | None -> { axis; values = [ "unreachable" ] })
      axis_defaults
  in
  let rec expand acc = function
    | [] -> [ List.rev acc ]
    | a :: rest ->
      List.concat_map
        (fun v -> expand ((a.axis, v) :: acc) rest)
        a.values
  in
  let points = expand [] axes in
  let cells =
    List.filter_map
      (fun point ->
        if pruned s point then None else Some (cell_of_point s point))
      points
  in
  (* canonicalization can alias grid points; keep the first of each *)
  let seen = Hashtbl.create 64 in
  List.filter
    (fun c ->
      let d = digest c in
      if Hashtbl.mem seen d then false
      else begin
        Hashtbl.add seen d ();
        true
      end)
    cells

(* ------------------------------ query ------------------------------ *)

let query c =
  let adv = Query.Preset c.adversary in
  match c.endpoint with
  | "ra" -> Query.Ra { n = c.n; adv }
  | "chr" -> Query.Chr { n = c.n; m = c.m }
  | "critical" -> Query.Critical { n = c.n; adv }
  | "setcon" -> Query.Setcon { n = c.n; adv }
  | "fairness" -> Query.Fairness { n = c.n; adv }
  | "explore" ->
    Query.Explore { protocol = c.protocol; n = c.n; max_runs = c.max_runs }
  | ep ->
    Fact_error.precondition ~fn:"Grid.query"
      (Printf.sprintf "unknown endpoint %S" ep)
