(** Declarative grid-sweep specifications.

    A campaign is a cross-product over named axes, compiled to a list
    of {e cells} — one canonical {!Fact_serve.Query} invocation each,
    with its own deadline and seed. The spec is one s-expression:

    {v
((name ci-smoke)
 (seed 42)
 (deadline-s 30)
 (axes
  ((endpoint (ra setcon))
   (adversary (wait-free t-res:1))
   (n (2 3))
   (domains (1 2))
   (cache-cap (default 64))))
 (prune
  (((endpoint setcon) (n 2)))))
    v}

    Axes (all optional except [endpoint]):
    - [endpoint]: [ra | chr | critical | setcon | fairness | explore]
    - [adversary]: preset names ([wait-free | fig5b | t-res:T | k-of:K]);
      ignored by [chr]/[explore] cells (canonicalized to [-])
    - [n]: universe sizes
    - [m]: subdivision iterations ([chr] only; default [(1)])
    - [protocol]: [is | alg1] ([explore] only; default [(is)])
    - [max-runs]: execution budgets ([explore] only; default [(10000)])
    - [domains]: {!Fact_topology.Parallel} fan-out widths (default [(1)])
    - [cache-cap]: {!Fact_resilience.Cache} default caps — an integer
      or the atom [default] (default [(default)])

    [domains] and [cache-cap] are {e environment} axes: by the
    repository's determinism invariants they cannot change a payload,
    only its cost, so sweeping them probes exactly that invariant.

    [prune] lists clauses of [(axis value)] pairs; a grid point
    matching {e every} pair of {e some} clause is dropped (values
    compare as the literal axis strings, before canonicalization).

    {b Canonicalization.} Fields an endpoint does not consume are
    forced to fixed values ([m] to 0 off-[chr], [protocol]/[max-runs]
    to [-]/0 off-[explore], [adversary] to [-] on [chr]/[explore]),
    then cells with equal digests are deduplicated keeping the first —
    so [(endpoint (chr)) (adversary (wait-free fig5b))] yields one
    cell, not two aliases of it. *)

open Fact_sexp

type cell = {
  endpoint : string;
  adversary : string;  (** preset name, or [-] when not consumed *)
  n : int;
  m : int;  (** chr only; 0 otherwise *)
  protocol : string;  (** explore only; [-] otherwise *)
  max_runs : int;  (** explore only; 0 otherwise *)
  domains : int;
  cache_cap : int option;  (** [None] = process default *)
  seed : int;
  deadline_s : float option;
}

type spec

val layout_version : string
(** Salts {!digest} alongside {!Fact_serve.Digest.code_version}; bump
    on any change to the cell or result layout. *)

val name : spec -> string
val seed : spec -> int

val cells : spec -> cell list
(** Expanded, pruned, canonicalized, deduplicated — in deterministic
    nesting order (endpoint outermost, cache-cap innermost). *)

val of_sexp : Sexp.t -> (spec, string) result
val to_sexp : spec -> Sexp.t
(** Round-trips through {!of_sexp}: axes in declared order, defaults
    materialized. *)

val of_string : string -> (spec, string) result

val load : string -> spec
(** Read a spec file. Raises a typed [Precondition]
    {!Fact_resilience.Fact_error} on unreadable files or malformed
    specs. *)

val cell_to_sexp : cell -> Sexp.t
(** Canonical: fixed field order, so equal cells render to equal
    strings — {!digest} relies on this. *)

val cell_of_sexp : Sexp.t -> (cell, string) result

val digest : cell -> string
(** Content address: MD5 of the canonical cell rendering, salted with
    {!Fact_serve.Digest.code_version} and the campaign layout version —
    a pipeline or layout bump silently invalidates every stored
    result. Lowercase hex, 32 chars. *)

val query : cell -> Fact_serve.Query.t
(** The canonical invocation this cell stands for. Raises a typed
    [Precondition] error on an endpoint no query implements. *)
