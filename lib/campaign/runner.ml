module Fact_error = Fact_resilience.Fact_error
module Cancel = Fact_resilience.Cancel
module Cache = Fact_resilience.Cache
module Backoff = Fact_resilience.Backoff
module Parallel = Fact_topology.Parallel
module Query = Fact_serve.Query
module Client = Fact_serve.Client
module Listener = Fact_serve.Listener
module Wire = Fact_serve.Wire

type backend =
  | Local
  | Cluster of {
      addr : Listener.addr;
      retries : int;
      backoff : Backoff.policy option;
      timeout_s : float;
    }

type progress = {
  total : int;
  ran : int;
  skipped : int;
  ok : int;
  failed : int;
}

let backend_name = function Local -> "local" | Cluster _ -> "cluster"

let cache_totals () =
  List.fold_left
    (fun (h, m, e) (_, s) ->
      (h + s.Cache.hits, m + s.Cache.misses, e + s.Cache.evictions))
    (0, 0, 0) (Cache.all_stats ())

(* one executed cell, before persistence *)
type executed = {
  cell : Grid.cell;
  result : (string * string, Fact_error.t) result;
      (* payload, source — or the typed failure *)
  wall_ms : float;
  delta : int * int * int;
  exec_domains : int;
}

let eval_local cell =
  let q = Grid.query cell in
  let compute () = Query.eval q in
  match cell.Grid.deadline_s with
  | None -> compute ()
  | Some d -> Cancel.with_token (Cancel.create ~deadline_s:d ()) compute

let run_cell_local cell =
  let h0, m0, e0 = cache_totals () in
  let t0 = Unix.gettimeofday () in
  let result =
    match eval_local cell with
    | payload -> Ok (payload, "computed")
    | exception Fact_error.Error e -> Error e
  in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let h1, m1, e1 = cache_totals () in
  {
    cell;
    result;
    wall_ms;
    delta = (h1 - h0, m1 - m0, e1 - e0);
    exec_domains = cell.Grid.domains;
  }

let run_cell_cluster ~addr ~retries ~backoff ~timeout_s cell =
  let q = Grid.query cell in
  let t0 = Unix.gettimeofday () in
  let result =
    match
      Client.query_with_retry ~retries ?backoff ~timeout_s
        ?deadline_s:cell.Grid.deadline_s addr q
    with
    | payload, source -> Ok (payload, Wire.source_to_string source)
    | exception Fact_error.Error e -> Error e
  in
  {
    cell;
    result;
    wall_ms = (Unix.gettimeofday () -. t0) *. 1000.;
    delta = (0, 0, 0);
    exec_domains = 0;
  }

let persist ~log ~backend ~dir ex =
  let digest = Grid.digest ex.cell in
  let dh, dm, de = ex.delta in
  let timing ~source ~error =
    {
      Results.backend = backend_name backend;
      source;
      wall_ms = ex.wall_ms;
      cache_hits = dh;
      cache_misses = dm;
      cache_evictions = de;
      domains = ex.exec_domains;
      error;
    }
  in
  match ex.result with
  | Ok (payload, source) ->
    Results.write ~dir
      (Results.make_record ~cell:ex.cell ~outcome:"ok" ~payload)
      (timing ~source ~error:None);
    log (Printf.sprintf "cell %s ok %s (%.1f ms)" digest
           (Query.endpoint (Grid.query ex.cell)) ex.wall_ms);
    `Ok
  | Error e ->
    let cls = Results.class_of_error e in
    let msg = Fact_error.to_string e in
    (* [unavailable] is the retryable class: leave no result, so the
       next run retries instead of pinning a transport hiccup *)
    if cls <> "unavailable" then
      Results.write ~dir
        (Results.make_record ~cell:ex.cell ~outcome:cls ~payload:"")
        (timing ~source:"-" ~error:(Some msg));
    log (Printf.sprintf "cell %s FAILED %s: %s" digest cls msg);
    `Failed

(* ------------------------------ local ------------------------------ *)

(* cells grouped by their environment axes, declaration order kept:
   [set_default_domains]/[set_default_cap] are process-wide, so a
   group's settings must be installed before its cells run and groups
   must not interleave *)
let group_by_env cells =
  let keys = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let key = (c.Grid.domains, c.Grid.cache_cap) in
      if not (Hashtbl.mem tbl key) then begin
        keys := key :: !keys;
        Hashtbl.add tbl key []
      end;
      Hashtbl.replace tbl key (c :: Hashtbl.find tbl key))
    cells;
  List.rev_map (fun key -> (key, List.rev (Hashtbl.find tbl key))) !keys

let run_local ~log pending =
  let saved_domains = Parallel.default_domains () in
  let saved_cap = Cache.default_cap () in
  Fun.protect
    ~finally:(fun () ->
      Parallel.set_default_domains saved_domains;
      Cache.set_default_cap saved_cap)
    (fun () ->
      List.concat_map
        (fun ((domains, cache_cap), cells) ->
          Parallel.set_default_domains domains;
          Cache.set_default_cap (Option.value cache_cap ~default:saved_cap);
          log
            (Printf.sprintf "group domains=%d cache-cap=%s: %d cells" domains
               (match cache_cap with
               | None -> "default"
               | Some c -> string_of_int c)
               (List.length cells));
          (* the fan-out: each thunk is one cell; a thunk's own
             Query.eval fans out further over the same pool *)
          Parallel.run_all (List.map (fun c () -> run_cell_local c) cells)
          |> List.map (function
               | Ok ex -> ex
               | Error captured ->
                 (* run_cell_local catches every typed error, so a
                    captured exception here is a genuine bug *)
                 Parallel.reraise captured))
        (group_by_env pending))

(* ----------------------------- cluster ----------------------------- *)

let run_cluster ~addr ~retries ~backoff ~timeout_s pending =
  List.map (run_cell_cluster ~addr ~retries ~backoff ~timeout_s) pending

(* ------------------------------- run ------------------------------- *)

let run ?(log = fun _ -> ()) ~backend ~dir spec =
  Results.init dir;
  let cells = Grid.cells spec in
  let total = List.length cells in
  let pending, skipped =
    List.partition
      (fun c -> not (Results.completed ~dir ~digest:(Grid.digest c)))
      cells
  in
  let skipped = List.length skipped in
  if skipped > 0 then
    log (Printf.sprintf "resume: %d of %d cells already done" skipped total);
  let executed =
    match backend with
    | Local -> run_local ~log pending
    | Cluster { addr; retries; backoff; timeout_s } ->
      run_cluster ~addr ~retries ~backoff ~timeout_s pending
  in
  let ok, failed =
    List.fold_left
      (fun (ok, failed) ex ->
        match persist ~log ~backend ~dir ex with
        | `Ok -> (ok + 1, failed)
        | `Failed -> (ok, failed + 1))
      (0, 0) executed
  in
  let p = { total; ran = List.length executed; skipped; ok; failed } in
  log
    (Printf.sprintf "campaign %s: total=%d ran=%d skipped=%d ok=%d failed=%d"
       (Grid.name spec) p.total p.ran p.skipped p.ok p.failed);
  p
