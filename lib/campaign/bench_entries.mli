(** The timed wall-clock entries behind [BENCH_topology.json].

    Extracted from [bench/main.ml] so that [fact bench --filter NAME]
    and CI can run single entries without the whole suite. Each entry
    times a steady-state computation (one warmup run, then the mean of
    [reps] timed runs) and reports the registry-wide cache-counter
    delta it caused.

    Entries are {b stateful by design}: they share the process-wide
    memo caches, so running a subset produces the same wall numbers
    but different cache deltas than a full [--json] sweep. The JSON
    baseline is only ever written from a full, unfiltered run. *)

type result = {
  name : string;
  n : int;
  wall_ms : float;
  facets : int;  (** the size figure the entry checks (facets, counts, runs) *)
  hits : int;
  misses : int;
  evictions : int;
}

val names : string list
(** Advertised entry names, in execution order (duplicates carry
    different [n]). *)

val run : ?filter:string -> unit -> result list
(** Run the entries whose name contains [filter] (all of them when
    omitted), in declared order. Resets the cache counters first.
    Raises a typed [Precondition] error when [filter] matches
    nothing. *)

val line : result -> string
(** The human-readable ledger line [bench --json] prints. *)

val json_line : result -> string
(** The [BENCH_topology.json] entry object. *)
