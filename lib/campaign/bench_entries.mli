(** The timed wall-clock entries behind [BENCH_topology.json].

    Extracted from [bench/main.ml] so that [fact bench --filter NAME]
    and CI can run single entries without the whole suite. Each entry
    times a steady-state computation (one warmup run, then the mean of
    [reps] timed runs), reports the GC pressure it caused (one
    [Gc.quick_stat] sandwich around the timed loop, normalised per
    rep), and the registry-wide cache-counter delta.

    Entries are {b stateful by design}: they share the process-wide
    memo caches, so running a subset produces the same wall numbers
    but different cache deltas than a full [--json] sweep. The JSON
    baseline is only ever written from a full, unfiltered run. *)

type result = {
  name : string;
  n : int;
  wall_ms : float;  (** mean over [reps] *)
  p99_ms : float option;
      (** nearest-rank 99th percentile of per-rep times; only latency
          entries ([serve_ra_warm]) collect per-rep samples *)
  facets : int;  (** the size figure the entry checks (facets, counts, runs) *)
  minor_words : float;  (** minor-heap words allocated, per rep *)
  major_words : float;  (** words promoted to / allocated on the major heap, per rep *)
  minor_collections : float;  (** minor GCs per rep *)
  major_collections : float;  (** major GC cycles per rep *)
  hits : int;
  misses : int;
  evictions : int;
}

val names : string list
(** Advertised entry names, in execution order (duplicates carry
    different [n]). *)

val run : ?filters:string list -> unit -> result list
(** Run the entries whose name contains any of [filters]
    (case-insensitive substrings; all entries when empty or omitted),
    in declared order. Resets the cache counters first. Raises a typed
    [Precondition] error naming the valid entries when some filter
    matches nothing. *)

val line : result -> string
(** The human-readable ledger line [bench --json] prints. *)

val json_line : result -> string
(** The [BENCH_topology.json] entry object (one line). *)

val gate :
  ?tolerance:float ->
  ?slack_ms:float ->
  ?alloc_tolerance:float ->
  ?slack_words:float ->
  baseline:string ->
  result list ->
  (int, string list) Stdlib.result
(** Compare results against a committed [BENCH_topology.json]
    (contents, not path), entry by entry keyed on [(name, n)].
    A result regresses when its wall time exceeds
    [tolerance x baseline + slack_ms] (defaults 4.0 / 50 ms, the
    campaign gate's band) or its per-rep minor allocation exceeds
    [alloc_tolerance x baseline + slack_words] (defaults 2.0 / 50k
    words — allocation is deterministic, so the band is tighter).
    Only the entries actually run are gated: CI pins coverage with
    [--filter], and an entry absent from the baseline is itself a
    violation. [Ok n] is the number of entries checked; [Error vs]
    lists every violation. *)
