open Fact_topology

let is_hitting_set h sets =
  List.for_all (fun s -> not (Pset.disjoint h s)) sets

(* Branch on an uncovered set: one of its elements must belong to any
   hitting set. Prune with the current best. *)
let minimum_hitting_set sets =
  List.iter
    (fun s ->
      if Pset.is_empty s then
        Fact_resilience.Fact_error.precondition ~fn:"Hitting.minimum_hitting_set"
          "empty member has no hitting set")
    sets;
  let best = ref None in
  let best_size = ref max_int in
  let rec search chosen size remaining =
    if size >= !best_size then ()
    else
      match remaining with
      | [] ->
        best := Some chosen;
        best_size := size
      | s :: _ ->
        Pset.iter
          (fun p ->
            let chosen' = Pset.add p chosen in
            let remaining' =
              List.filter (fun s -> not (Pset.mem p s)) remaining
            in
            search chosen' (size + 1) remaining')
          s
  in
  search Pset.empty 0 sets;
  match !best with
  | Some h -> h
  | None ->
    (* search with no pruning always finds one *)
    Fact_resilience.Fact_error.precondition ~fn:"Hitting.minimum_hitting_set"
      "internal invariant: exhaustive search found no hitting set"

let csize sets = Pset.cardinal (minimum_hitting_set sets)
