open Fact_topology

type t = { n : int; table : int array; stamp : int }

(* Each constructed agreement function gets a unique stamp, so caches
   downstream (Critical, Concurrency, Ra) can key memo tables on it
   without hashing the whole table. *)
let next_stamp = Atomic.make 0

let of_fn ~n f =
  let table = Array.init (1 lsl n) (fun m -> f (Pset.of_mask m)) in
  { n; table; stamp = Atomic.fetch_and_add next_stamp 1 }

let of_adversary a =
  let alpha = Setcon.alpha_fn a in
  of_fn ~n:(Adversary.n a) alpha

let n t = t.n
let stamp t = t.stamp
let eval t p = t.table.(Pset.to_mask p)
let equal a b = a.n = b.n && a.table = b.table

let all_pairs n =
  (* (P, P') with P ⊆ P' over the universe *)
  let universe = Pset.full n in
  List.concat_map
    (fun p' -> List.map (fun p -> (p, p')) (Pset.subsets p'))
    (Pset.subsets universe)

let is_monotonic t =
  List.for_all (fun (p, p') -> eval t p <= eval t p') (all_pairs t.n)

let is_bounded_growth t =
  List.for_all
    (fun (p, p') -> eval t p' <= eval t p + Pset.cardinal (Pset.diff p' p))
    (all_pairs t.n)

let is_regular t = is_monotonic t && is_bounded_growth t

let k_obstruction_free ~n ~k =
  of_fn ~n (fun p -> min (Pset.cardinal p) k)

let dominates f g =
  f.n = g.n
  && Array.for_all2 ( <= ) g.table f.table

let equivalent f g = f.n = g.n && f.table = g.table

let max_faulty t p =
  let a = eval t p in
  if a >= 1 then Some (a - 1) else None

let pp ppf t =
  Pset.subsets (Pset.full t.n)
  |> List.iter (fun p ->
         Format.fprintf ppf "alpha(%a) = %d@ " Pset.pp p (eval t p))
