(** Minimal hitting sets.

    A hitting set of a collection [Q] of process sets is a set
    intersecting every member of [Q]; [csize Q] is the minimum size of
    such a set (paper notation, Sections 3 and 5). For a
    superset-closed adversary [A], [setcon A = csize (live A)]
    (Gafni–Kuznetsov [14]). *)

open Fact_topology

val csize : Pset.t list -> int
(** Minimum hitting-set size of the collection; 0 for the empty
    collection. Raises a [Precondition] {!Fact_resilience.Fact_error}
    if some member is empty (no hitting set exists). Exact branch-and-bound, exponential in the
    worst case but fast for the small universes used here. *)

val minimum_hitting_set : Pset.t list -> Pset.t
(** One hitting set of minimum size ([Pset.empty] for the empty
    collection). *)

val is_hitting_set : Pset.t -> Pset.t list -> bool
