(** Agreement functions and the α-model (Section 3, after [24]).

    An agreement function maps each participation set [P ⊆ Π] to the
    best level of set consensus solvable adaptively with participation
    [P]. The agreement function of an adversary is
    [α(P) = setcon (A|P)]. *)

open Fact_topology

type t
(** An agreement function over a universe of [n] processes, tabulated
    for all [2^n] participation sets. *)

val of_adversary : Adversary.t -> t
val of_fn : n:int -> (Pset.t -> int) -> t
val n : t -> int

val stamp : t -> int
(** A unique id per constructed agreement function, for use as a memo
    key downstream (two structurally equal functions built separately
    get distinct stamps — caches are merely less shared, never
    wrong). *)

val eval : t -> Pset.t -> int
(** α(P). *)

val equal : t -> t -> bool

val is_monotonic : t -> bool
(** P ⊆ P' ⟹ α(P) ≤ α(P'). Holds for every agreement function of a
    model. *)

val is_bounded_growth : t -> bool
(** α(P') ≤ α(P) + |P' \ P| for P ⊆ P'. *)

val is_regular : t -> bool
(** The fair-adversary inequality used throughout Section 5:
    for all Q ⊆ P, α(P) ≥ α(P \ Q) ≥ α(P) − |Q|. Equivalent to
    monotonic + bounded growth. *)

val k_obstruction_free : n:int -> k:int -> t
(** α(P) = min(|P|, k) — the agreement function of k-concurrency
    (Figures 5a/6a/7a use k = 1). *)

val dominates : t -> t -> bool
(** [dominates f g]: f(P) ≥ g(P) for every P. For {e fair} adversaries,
    agreement functions characterize task computability ([24],
    Theorems 1–2), so pointwise dominance of α_A over α_B means the
    A-model solves every task the B-model does. *)

val equivalent : t -> t -> bool
(** Pointwise equality: same task computability for fair adversaries. *)

val max_faulty : t -> Pset.t -> int option
(** In the α-model with participation [P]: [Some (α(P) − 1)] processes
    may fail if [α(P) ≥ 1]; [None] if [α(P) = 0] (no such run). *)

val pp : Format.formatter -> t -> unit
(** Tabulates α on all participation sets. *)
