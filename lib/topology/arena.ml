(* Struct-of-arrays view of a facet list: the sorted interned-id run of
   every facet concatenated into one flat int array, with an offset
   table, per-facet color bitmasks, and the facet simplices themselves
   for materialization. The streaming face kernel walks [vids] run by
   run — contiguous memory, no hashconsed node or list in the loop —
   and the only OCaml-heap traffic is the accumulator the caller folds.

   Invariant tying intern ids to arena offsets: facet [i]'s key (its
   vids sorted ascending) is exactly [vids.(off.(i)) .. vids.(off.(i+1) - 1)],
   bit [b] of a submask of facet [i] selects [vids.(off.(i) + b)], and
   [Simplex.select_sorted_mask simp.(i) m] materializes precisely the
   face whose key the kernel just emitted. *)

type t = {
  simp : Simplex.t array; (* facets, in the complex's canonical order *)
  off : int array; (* length nf + 1; run of facet i = [off.(i), off.(i+1)) *)
  vids : int array; (* concatenated sorted interned-id runs *)
  colors : Pset.t array; (* per-facet color bitmask *)
}

let build (simp : Simplex.t array) =
  let nf = Array.length simp in
  let off = Array.make (nf + 1) 0 in
  for i = 0 to nf - 1 do
    off.(i + 1) <- off.(i) + Simplex.card simp.(i)
  done;
  let vids = Array.make (max off.(nf) 1) 0 in
  let colors = Array.make (max nf 1) Pset.empty in
  for i = 0 to nf - 1 do
    let key = Simplex.interned_key simp.(i) in
    Array.blit key 0 vids off.(i) (Array.length key);
    colors.(i) <- Simplex.colors simp.(i)
  done;
  { simp; off; vids; colors }

let facet_count t = Array.length t.simp
let facet t i = t.simp.(i)
let card t i = t.off.(i + 1) - t.off.(i)
let colors t i = t.colors.(i)
let total_vids t = t.off.(Array.length t.simp)

(* Popcount of a 16-bit value by table lookup; facet cards are ≤ 62 but
   in practice tiny, so masks fit 16 bits except in adversarial
   inputs, which fall back to the bit-clearing loop. *)
let popc16 =
  lazy
    (let b = Bytes.create 65536 in
     for i = 0 to 65535 do
       let c = ref 0 and w = ref i in
       while !w <> 0 do
         w := !w land (!w - 1);
         incr c
       done;
       Bytes.unsafe_set b i (Char.unsafe_chr !c)
     done;
     b)

let popcount_slow m =
  let c = ref 0 and w = ref m in
  while !w <> 0 do
    w := !w land (!w - 1);
    incr c
  done;
  !c

(* Streaming enumeration of the distinct nonempty faces of all facets:
   every submask of every run, deduped through the shared off-heap
   [seen] table. Scratch state is hoisted out of the loop and the
   [face] thunk is a single closure over the current (facet, mask)
   pair, so a counting fold allocates nothing per face.

   Consequence of the shared thunk: [face] is only meaningful during
   the callback it was passed to — callers must force it synchronously
   (all in-tree callers do) rather than stash it for later. *)
let fold_faces ?(min_card = 1) ?(max_card = max_int) ~seen t ~init ~f =
  let min_card = max 1 min_card in
  let nf = Array.length t.simp in
  let popc = Lazy.force popc16 in
  let scratch = Array.make 64 0 in
  let acc = ref init in
  let cur_fi = ref 0 and cur_m = ref 0 in
  let face () = Simplex.select_sorted_mask t.simp.(!cur_fi) !cur_m in
  let vids = t.vids and off = t.off in
  for fi = 0 to nf - 1 do
    let base = Array.unsafe_get off fi in
    let k = Array.unsafe_get off (fi + 1) - base in
    if k > 0 && min_card <= k then begin
      let full = (1 lsl k) - 1 in
      if k <= 4 && Array.unsafe_get vids (base + k - 1) < 0x7fff then
        (* The run is sorted, so its last vid is the max: every subface
           of this facet packs into class A. Pack inline while walking
           the mask bits — no scratch stores, no per-face class
           dispatch. *)
        for m = 1 to full do
          let card = Char.code (Bytes.unsafe_get popc m) in
          if card >= min_card && card <= max_card then begin
            let p = ref 0 in
            for b = 0 to k - 1 do
              if m land (1 lsl b) <> 0 then
                p := (!p lsl 15) lor (Array.unsafe_get vids (base + b) + 1)
            done;
            if not (Face_set.mem_or_add_packed seen !p) then begin
              cur_fi := fi;
              cur_m := m;
              acc := f !acc ~card ~face
            end
          end
        done
      else
        for m = 1 to full do
          let card =
            if m < 65536 then Char.code (Bytes.unsafe_get popc m)
            else popcount_slow m
          in
          if card >= min_card && card <= max_card then begin
            let j = ref 0 in
            for b = 0 to k - 1 do
              if m land (1 lsl b) <> 0 then begin
                Array.unsafe_set scratch !j (Array.unsafe_get vids (base + b));
                incr j
              end
            done;
            if not (Face_set.mem_or_add seen scratch ~len:card) then begin
              cur_fi := fi;
              cur_m := m;
              acc := f !acc ~card ~face
            end
          end
        done
    end
  done;
  !acc
