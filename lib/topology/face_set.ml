(* Open-addressed set of face keys (sorted interned-id runs) — the
   dedup state of the streaming closure kernels. Both tables live in
   [Bigarray] int storage off the OCaml heap: probing never touches a
   boxed key, inserting never allocates a GC-visible word, and the
   minor heap stays quiet across millions of candidate faces.

   A face key is packed into a single tagged int whenever the 60-bit
   budget allows (three disjoint classes, below); everything else goes
   to a general table whose keys are runs appended to a flat int arena
   — slot [i] of the general table stores [offset + 1] into the arena
   ([0] marks a free slot), and the run at [offset] is
   [len; v_0; …; v_{len-1}]. There are no deletions, hence no
   tombstones: growth doubles the slot table and re-probes every live
   entry; the arena itself is append-only and offsets survive rehash
   unchanged.

   Packed classes (keys are sorted ascending, so [key.(len - 1)] is the
   max vid; each field stores [vid + 1] so a field is never 0 and the
   packed value is never 0, the free-slot marker):

   - class A — card ≤ 4, every vid < 0x7fff: four 15-bit fields,
     value < 2^60. The top field being nonzero recovers the card, so
     the class is injective.
   - class C — card = 5, every vid < 0xfff: five 12-bit fields
     (60 bits) tagged with bit 61.
   - class B — card = 6, every vid < 0x3ff: six 10-bit fields
     (60 bits) tagged with bit 60.

   Class A values are < 2^60, class B values have bit 60 and are
   < 2^61, class C values have bit 61 and are < 2^61 + 2^60 — the
   ranges are disjoint and all fit a 63-bit OCaml int. Whether a face
   packs (and into which class) depends only on the face itself, so the
   packed/general split is consistent across the facets sharing one
   table. *)

type ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  mutable ikeys : ba; (* packed faces; 0 marks a free slot *)
  mutable imask : int;
  mutable isize : int;
  mutable gtab : ba; (* general slots: 0 free, else arena offset + 1 *)
  mutable gmask : int;
  mutable gsize : int;
  mutable gdata : ba; (* arena of [len; vids…] runs, append-only *)
  mutable gfill : int;
}

(* Allocating a large Bigarray is ~50x the cost of zeroing one (the
   runtime charges custom-block memory against the major GC), so the
   backing storage is pooled: [release] parks a table's arrays here and
   the next [create] of the same capacity refills one with zeros
   instead of allocating. The pool is global, mutex-protected (creates
   happen once per closure fold, not per face) and bounded per size
   class. *)
let pool : (int, ba list) Hashtbl.t = Hashtbl.create 8
let pool_lock = Mutex.create ()
let pool_per_class = 4

let acquire ~zero cap : ba =
  Mutex.lock pool_lock;
  let found =
    match Hashtbl.find_opt pool cap with
    | Some (ba :: rest) ->
      Hashtbl.replace pool cap rest;
      Some ba
    | Some [] | None -> None
  in
  Mutex.unlock pool_lock;
  match found with
  | Some ba ->
    if zero then Bigarray.Array1.fill ba 0;
    ba
  | None ->
    let ba = Bigarray.Array1.create Bigarray.int Bigarray.c_layout cap in
    if zero then Bigarray.Array1.fill ba 0;
    ba

let park (ba : ba) =
  let cap = Bigarray.Array1.dim ba in
  Mutex.lock pool_lock;
  let existing = Option.value ~default:[] (Hashtbl.find_opt pool cap) in
  if List.length existing < pool_per_class then
    Hashtbl.replace pool cap (ba :: existing);
  Mutex.unlock pool_lock

let make_ba cap : ba = acquire ~zero:true cap

let create ?(size = 1024) () =
  let cap = ref 8 in
  while !cap < size * 2 do
    cap := !cap * 2
  done;
  {
    ikeys = make_ba !cap;
    imask = !cap - 1;
    isize = 0;
    gtab = make_ba 16;
    gmask = 15;
    gsize = 0;
    gdata = acquire ~zero:false 64;
    gfill = 0;
  }

(* Return the backing storage to the pool. The table must not be used
   afterwards; callers that hand [t] out (rather than keeping it
   private to one fold) should simply let the GC reclaim it. *)
let release t =
  park t.ikeys;
  park t.gtab;
  park t.gdata

let count t = t.isize + t.gsize
let packed_count t = t.isize
let heap_count t = t.gsize
let packed_capacity t = t.imask + 1

let hash_int k =
  let k = k * 0x3f58476d1ce4e5b9 in
  (k lxor (k lsr 31)) land max_int

(* Same mix as the simplex structural hash; [get] abstracts over the
   caller's scratch array vs the arena. *)
let hash_run_arr (key : int array) ~len =
  let h = ref 0x5103 in
  for i = 0 to len - 1 do
    let k = Array.unsafe_get key i * 0x3f58476d1ce4e5b9 in
    h := (!h lxor (k lxor (k lsr 31))) * 0x14d049bb133111eb
  done;
  (!h lxor (!h lsr 29)) land max_int

let hash_run_ba (data : ba) ~off ~len =
  let h = ref 0x5103 in
  for i = 0 to len - 1 do
    let k = Bigarray.Array1.unsafe_get data (off + i) * 0x3f58476d1ce4e5b9 in
    h := (!h lxor (k lxor (k lsr 31))) * 0x14d049bb133111eb
  done;
  (!h lxor (!h lsr 29)) land max_int

(* ---- packed path ------------------------------------------------- *)

let pack (key : int array) ~len =
  if len <= 4 then
    if len > 0 && Array.unsafe_get key (len - 1) < 0x7fff then begin
      let p = ref 0 in
      for j = 0 to len - 1 do
        p := (!p lsl 15) lor (Array.unsafe_get key j + 1)
      done;
      !p
    end
    else 0
  else if len = 5 && Array.unsafe_get key 4 < 0xfff then begin
    let p = ref 0 in
    for j = 0 to 4 do
      p := (!p lsl 12) lor (Array.unsafe_get key j + 1)
    done;
    !p lor (1 lsl 61)
  end
  else if len = 6 && Array.unsafe_get key 5 < 0x3ff then begin
    let p = ref 0 in
    for j = 0 to 5 do
      p := (!p lsl 10) lor (Array.unsafe_get key j + 1)
    done;
    !p lor (1 lsl 60)
  end
  else 0

let packable ~card ~max_vid =
  (card >= 1 && card <= 4 && max_vid < 0x7fff)
  || (card = 5 && max_vid < 0xfff)
  || (card = 6 && max_vid < 0x3ff)

let grow_packed t =
  let cap = (t.imask + 1) * 2 in
  let ikeys = make_ba cap in
  let mask = cap - 1 in
  for i = 0 to t.imask do
    let key = Bigarray.Array1.unsafe_get t.ikeys i in
    if key <> 0 then begin
      let j = ref (hash_int key land mask) in
      while Bigarray.Array1.unsafe_get ikeys !j <> 0 do
        j := (!j + 1) land mask
      done;
      Bigarray.Array1.unsafe_set ikeys !j key
    end
  done;
  park t.ikeys;
  t.ikeys <- ikeys;
  t.imask <- mask

(* One probe sequence over the flat int table; [key > 0]. Returns
   [true] if already present, else inserts and returns [false]. *)
let mem_or_add_packed t key =
  if 3 * t.isize >= 2 * (t.imask + 1) then grow_packed t;
  let ikeys = t.ikeys and mask = t.imask in
  let i = ref (hash_int key land mask) in
  let verdict = ref (-1) in
  while !verdict < 0 do
    let slot = Bigarray.Array1.unsafe_get ikeys !i in
    if slot = 0 then begin
      Bigarray.Array1.unsafe_set ikeys !i key;
      t.isize <- t.isize + 1;
      verdict := 0
    end
    else if slot = key then verdict := 1
    else i := (!i + 1) land mask
  done;
  !verdict = 1

(* ---- general path ------------------------------------------------ *)

let grow_gtab t =
  let cap = (t.gmask + 1) * 2 in
  let gtab = make_ba cap in
  let mask = cap - 1 in
  for i = 0 to t.gmask do
    let slot = Bigarray.Array1.unsafe_get t.gtab i in
    if slot <> 0 then begin
      let off = slot - 1 in
      let len = Bigarray.Array1.unsafe_get t.gdata off in
      let j = ref (hash_run_ba t.gdata ~off:(off + 1) ~len land mask) in
      while Bigarray.Array1.unsafe_get gtab !j <> 0 do
        j := (!j + 1) land mask
      done;
      Bigarray.Array1.unsafe_set gtab !j slot
    end
  done;
  park t.gtab;
  t.gtab <- gtab;
  t.gmask <- mask

let ensure_gdata t extra =
  let need = t.gfill + extra in
  let cap = Bigarray.Array1.dim t.gdata in
  if need > cap then begin
    let cap' = ref (cap * 2) in
    while !cap' < need do
      cap' := !cap' * 2
    done;
    let gdata = acquire ~zero:false !cap' in
    Bigarray.Array1.blit
      (Bigarray.Array1.sub t.gdata 0 t.gfill)
      (Bigarray.Array1.sub gdata 0 t.gfill);
    park t.gdata;
    t.gdata <- gdata
  end

let run_equal (data : ba) ~off (key : int array) ~len =
  Bigarray.Array1.unsafe_get data off = len
  &&
  let i = ref 0 in
  while
    !i < len
    && Bigarray.Array1.unsafe_get data (off + 1 + !i) = Array.unsafe_get key !i
  do
    incr i
  done;
  !i = len

let mem_or_add_general t (key : int array) ~len =
  if 3 * t.gsize >= 2 * (t.gmask + 1) then grow_gtab t;
  let h = hash_run_arr key ~len in
  let i = ref (h land t.gmask) in
  let verdict = ref (-1) in
  while !verdict < 0 do
    let slot = Bigarray.Array1.unsafe_get t.gtab !i in
    if slot = 0 then begin
      ensure_gdata t (len + 1);
      let off = t.gfill in
      Bigarray.Array1.unsafe_set t.gdata off len;
      for j = 0 to len - 1 do
        Bigarray.Array1.unsafe_set t.gdata (off + 1 + j) (Array.unsafe_get key j)
      done;
      t.gfill <- off + len + 1;
      Bigarray.Array1.unsafe_set t.gtab !i (off + 1);
      t.gsize <- t.gsize + 1;
      verdict := 0
    end
    else if run_equal t.gdata ~off:(slot - 1) key ~len then verdict := 1
    else i := (!i + 1) land t.gmask
  done;
  !verdict = 1

(* ---- entry point ------------------------------------------------- *)

let mem_or_add t (key : int array) ~len =
  let p = pack key ~len in
  if p <> 0 then mem_or_add_packed t p else mem_or_add_general t key ~len
