(* A simplex is stored with its vertices (sorted by Vertex.compare, as
   in the original list representation) plus interned metadata computed
   once at construction:

   - [info]: per-vertex intern id, structural hash and base carrier,
     aligned with [varr];
   - [key]: the vertex ids sorted ascending — the canonical set
     representation. Two simplices are equal iff their keys are equal,
     and subset/mem/inter/diff are merge-walks and binary searches over
     int arrays;
   - [perm]: the argsort realizing [key] from [info]
     ([key.(i) = info.(perm.(i)).vid]), computed once so mask-indexed
     face selection ({!select_sorted_mask}, the arena kernel) needs no
     per-call sort;
   - [colors]: the color bitmask, [base]: the base carrier, both O(1);
   - [shash]: a full-depth structural hash combining the vertex hashes
     in sorted order. It is deterministic (independent of intern
     order), so [compare] can use it as the primary sort key without
     making set iteration order depend on interning races.

   Every simplex is immutable after construction, so values can be
   freely shared across domains; the only synchronization is the
   intern lock taken once per construction from raw vertices. Derived
   simplices (faces, restrictions, unions, intersections) reuse the
   parent's interned metadata and take no lock at all. *)

type vinfo = { vid : int; vhash : int; vbc : Pset.t }

type t = {
  verts : Vertex.t list; (* sorted by Vertex.compare *)
  varr : Vertex.t array; (* same, for indexed access *)
  info : vinfo array; (* aligned with varr *)
  key : int array; (* vids sorted ascending *)
  perm : int array; (* key.(i) = info.(perm.(i)).vid *)
  colors : Pset.t;
  base : Pset.t;
  shash : int;
}

let mix h k =
  let k = k * 0x3f58476d1ce4e5b9 in
  let k = k lxor (k lsr 31) in
  let h = (h lxor k) * 0x14d049bb133111eb in
  h lxor (h lsr 29)

let hash_of_info info =
  Array.fold_left (fun h i -> mix h i.vhash) 0x5103 info

(* Build a simplex from already-interned, already-sorted vertices. *)
let key_perm info =
  let k = Array.length info in
  let perm = Array.init k (fun i -> i) in
  Array.sort (fun a b -> Stdlib.compare info.(a).vid info.(b).vid) perm;
  (Array.map (fun p -> info.(p).vid) perm, perm)

let of_sorted verts info =
  let varr = Array.of_list verts in
  let key, perm = key_perm info in
  let colors =
    Array.fold_left (fun c v -> Pset.add (Vertex.proc v) c) Pset.empty varr
  in
  let base = Array.fold_left (fun b i -> Pset.union b i.vbc) Pset.empty info in
  { verts; varr; info; key; perm; colors; base; shash = hash_of_info info }

let empty =
  {
    verts = [];
    varr = [||];
    info = [||];
    key = [||];
    perm = [||];
    colors = Pset.empty;
    base = Pset.empty;
    shash = 0x5103;
  }

let make vs =
  let sorted = List.sort Vertex.compare vs in
  (* Single pass: detect duplicate vertices and color clashes while
     accumulating the color mask. Adjacent sorted vertices with equal
     colors are either equal (duplicate) or distinct (clash). *)
  let rec check prev seen = function
    | [] -> ignore seen
    | v :: rest ->
      (match prev with
      | Some p when Vertex.compare p v = 0 ->
        invalid_arg "Simplex.make: duplicate vertex"
      | _ -> ());
      let c = Vertex.proc v in
      if Pset.mem c seen then
        invalid_arg "Simplex.make: two vertices share a color";
      check (Some v) (Pset.add c seen) rest
  in
  check None Pset.empty sorted;
  if sorted = [] then empty
  else
    let info =
      Vertex.intern_list sorted
      |> List.map (fun (vid, vhash, vbc) -> { vid; vhash; vbc })
      |> Array.of_list
    in
    of_sorted sorted info

let of_vertex v = make [ v ]

(* Fast construction for Chr's inner loop: the facet of vertices
   [(p, view_p)] where each view is an already-built sub-simplex of the
   subdivided simplex. The vertices are all [Deriv] with pairwise
   distinct colors, so sorting by color IS [Vertex.compare] order, and
   interning is shallow (the carriers' vertices are interned already).
   Raises the same errors as {!make}/{!Vertex.deriv} on duplicate
   colors or a carrier missing its own color. *)
let of_chr_pairs pairs =
  match pairs with
  | [] -> empty
  | _ ->
    let pairs =
      List.sort (fun (p, _) (q, _) -> Stdlib.compare p q) pairs
    in
    ignore
      (List.fold_left
         (fun seen (p, car) ->
           if Pset.mem p seen then
             invalid_arg "Simplex.make: two vertices share a color";
           if not (Pset.mem p car.colors) then
             invalid_arg
               "Vertex.deriv: carrier does not contain the vertex color";
           Pset.add p seen)
         Pset.empty pairs);
    let verts =
      List.map
        (fun (p, car) -> Vertex.Deriv { proc = p; carrier = car.verts })
        pairs
    in
    let info =
      Vertex.intern_deriv_list
        (List.map
           (fun (p, car) ->
             (p, Array.to_list (Array.map (fun i -> i.vid) car.info)))
           pairs)
      |> List.map (fun (vid, vhash, vbc) -> { vid; vhash; vbc })
      |> Array.of_list
    in
    of_sorted verts info
let vertices t = t.verts
let colors t = t.colors
let card t = Array.length t.varr
let dim t = card t - 1
let is_empty t = t.varr = [||]

let find_color c t =
  if not (Pset.mem c t.colors) then None
  else
    let rec loop i =
      if i >= Array.length t.varr then None
      else if Vertex.proc t.varr.(i) = c then Some t.varr.(i)
      else loop (i + 1)
    in
    loop 0

(* Colors are pairwise distinct inside a simplex, so membership is
   "the vertex of that color exists and is structurally equal". *)
let mem v t =
  match find_color (Vertex.proc v) t with
  | Some w -> Vertex.equal v w
  | None -> false

let key_mem id key =
  let rec bs lo hi =
    if lo >= hi then false
    else
      let m = (lo + hi) / 2 in
      if key.(m) = id then true else if key.(m) < id then bs (m + 1) hi
      else bs lo m
  in
  bs 0 (Array.length key)

(* Face relation as a merge-walk over the sorted id arrays, with the
   color bitmask as a prefilter. *)
let subset a b =
  Pset.subset a.colors b.colors
  &&
  let la = Array.length a.key and lb = Array.length b.key in
  let rec walk i j =
    if i >= la then true
    else if j >= lb then false
    else if a.key.(i) = b.key.(j) then walk (i + 1) (j + 1)
    else if a.key.(i) > b.key.(j) then walk i (j + 1)
    else false
  in
  walk 0 0

(* Derived sub-simplex: keep the vertices at the indices selected by
   [keep]; all metadata is reused from the parent, lock-free. *)
let select t keep =
  let nkeep = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 keep in
  if nkeep = 0 then empty
  else if nkeep = Array.length t.varr then t
  else begin
    let varr = Array.make nkeep t.varr.(0) in
    let info = Array.make nkeep t.info.(0) in
    let j = ref 0 in
    Array.iteri
      (fun i b ->
        if b then begin
          varr.(!j) <- t.varr.(i);
          info.(!j) <- t.info.(i);
          incr j
        end)
      keep;
    let key, perm = key_perm info in
    let colors =
      Array.fold_left (fun c v -> Pset.add (Vertex.proc v) c) Pset.empty varr
    in
    let base =
      Array.fold_left (fun b i -> Pset.union b i.vbc) Pset.empty info
    in
    {
      verts = Array.to_list varr;
      varr;
      info;
      key;
      perm;
      colors;
      base;
      shash = hash_of_info info;
    }
  end

let restrict t s =
  select t (Array.map (fun v -> Pset.mem (Vertex.proc v) s) t.varr)

let diff a b = select a (Array.map (fun i -> not (key_mem i.vid b.key)) a.info)
let inter a b = select a (Array.map (fun i -> key_mem i.vid b.key) a.info)

(* Union as vertex sets: merge the two sorted vertex arrays. Equal
   vertices collapse; distinct vertices sharing a color are an
   error. *)
let union a b =
  if is_empty a then b
  else if is_empty b then a
  else if subset b a then a
  else if subset a b then b
  else begin
    let la = Array.length a.varr and lb = Array.length b.varr in
    let rec fwd i j acc =
      if i >= la && j >= lb then List.rev acc
      else if i >= la then fwd i (j + 1) ((b.varr.(j), b.info.(j)) :: acc)
      else if j >= lb then fwd (i + 1) j ((a.varr.(i), a.info.(i)) :: acc)
      else
        let c = Vertex.compare a.varr.(i) b.varr.(j) in
        if c = 0 then fwd (i + 1) (j + 1) ((a.varr.(i), a.info.(i)) :: acc)
        else if c < 0 then fwd (i + 1) j ((a.varr.(i), a.info.(i)) :: acc)
        else fwd i (j + 1) ((b.varr.(j), b.info.(j)) :: acc)
    in
    let merged = fwd 0 0 [] in
    let seen = ref Pset.empty in
    List.iter
      (fun (v, _) ->
        let p = Vertex.proc v in
        if Pset.mem p !seen then
          invalid_arg "Simplex.union: color clash between distinct vertices";
        seen := Pset.add p !seen)
      merged;
    of_sorted (List.map fst merged) (Array.of_list (List.map snd merged))
  end

(* All sub-simplices, enumerated by bitmask over the vertex indices
   (the empty mask first, as before). *)
let subsimplices t =
  let k = card t in
  let out = ref [] in
  for m = (1 lsl k) - 1 downto 0 do
    out := select t (Array.init k (fun i -> m land (1 lsl i) <> 0)) :: !out
  done;
  !out

let faces_raw t = List.filter (fun f -> not (is_empty f)) (subsimplices t)

let interned_key t = t.key

(* The face selected by a bitmask over key positions: bit [b] keeps the
   vertex holding the b-th smallest vid. The stored [perm] maps key
   positions back to vertex-array indices, so no sort happens here —
   this is the materialization step of the arena kernel. *)
let select_sorted_mask t m =
  let k = Array.length t.varr in
  if m = (1 lsl k) - 1 then t
  else begin
    let keep = Array.make k false in
    for b = 0 to k - 1 do
      if m land (1 lsl b) <> 0 then keep.(t.perm.(b)) <- true
    done;
    select t keep
  end

(* Streaming enumeration of distinct nonempty faces across many
   simplices: walk every submask of [t]'s vertices, identify each
   candidate face by its sorted vid key, and hand the unseen ones to
   [f] — no intermediate simplex lists, and no simplex construction at
   all unless the caller forces [face]. The caller-supplied [seen] set
   is the off-heap dedup state ({!Face_set}); sharing it across the
   facets of a complex makes a face common to several facets come out
   exactly once. (Whole-complex streaming goes through [Arena], which
   runs this same walk over flat concatenated runs.)

   [t.key] is already the vids sorted ascending, so emitting a
   submask's vids in key order yields the face's canonical key with no
   per-face sort. *)
let fold_distinct_faces ~seen ?(min_card = 1) ?(max_card = max_int) t ~init ~f
    =
  let k = Array.length t.varr in
  let min_card = max 1 min_card in
  if k = 0 || min_card > k || max_card < min_card then init
  else begin
    let scratch = Array.make k 0 in
    let acc = ref init in
    for m = 1 to (1 lsl k) - 1 do
      let card =
        let c = ref 0 and w = ref m in
        while !w <> 0 do
          w := !w land (!w - 1);
          incr c
        done;
        !c
      in
      if card >= min_card && card <= max_card then begin
        let j = ref 0 in
        for b = 0 to k - 1 do
          if m land (1 lsl b) <> 0 then begin
            scratch.(!j) <- t.key.(b);
            incr j
          end
        done;
        if not (Face_set.mem_or_add seen scratch ~len:card) then begin
          let face () = select_sorted_mask t m in
          acc := f !acc ~card ~face
        end
      end
    done;
    !acc
  end

let proper_faces t =
  List.filter (fun f -> not (is_empty f) && card f <> card t) (subsimplices t)

(* ------------------------------------------------------------------ *)
(* Carriers                                                           *)
(* ------------------------------------------------------------------ *)

(* The carrier of a vertex, as a simplex of the complex one level
   down, memoized per vertex id: [Deriv (p, sigma)] carries exactly
   sigma, so the simplex is built once and shared. *)
let carrier_lock = Mutex.create ()
let carrier_tbl : (int, t) Hashtbl.t = Hashtbl.create 1024

let vertex_carrier v =
  let i = Vertex.id v in
  Mutex.lock carrier_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock carrier_lock) (fun () ->
      match Hashtbl.find_opt carrier_tbl i with
      | Some s -> s
      | None ->
        let s = make (Vertex.carrier v) in
        Hashtbl.add carrier_tbl i s;
        s)

let carrier_raw t =
  Array.fold_left (fun acc v -> union acc (vertex_carrier v)) empty t.varr

let base_carrier t = t.base

let rec base_vertex_list v =
  match v with
  | Vertex.Input _ -> [ v ]
  | Vertex.Deriv { carrier; _ } -> List.concat_map base_vertex_list carrier

let base_simplex t =
  List.concat_map base_vertex_list t.verts
  |> List.sort_uniq Vertex.compare |> make

(* ------------------------------------------------------------------ *)
(* Comparison                                                         *)
(* ------------------------------------------------------------------ *)

let equal a b =
  a == b || (a.shash = b.shash && a.key = b.key)

(* Total order: structural hash first (deterministic), then — only on
   the astronomically rare hash collision between distinct simplices —
   the original structural order. Equality is decided by the id keys,
   which is exact. *)
let compare a b =
  if a == b then 0
  else
    let c = Stdlib.compare a.shash b.shash in
    if c <> 0 then c
    else if a.key = b.key then 0
    else List.compare Vertex.compare a.verts b.verts

let pp ppf t =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       Vertex.pp)
    t.verts

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

let hash t = t.shash land max_int

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

(* ------------------------------------------------------------------ *)
(* Per-simplex memos (must follow [Tbl])                               *)
(* ------------------------------------------------------------------ *)

(* Faces and carriers of the same facets are requested over and over by
   closure computations and the R_A pipeline; both are memoized per
   simplex. Computation happens outside the lock; a racing duplicate
   insert is dropped, so the caches are domain-safe. *)
let faces_lock = Mutex.create ()
let faces_tbl : t list Tbl.t = Tbl.create 4096

let faces t =
  if is_empty t then []
  else begin
    Mutex.lock faces_lock;
    let cached = Tbl.find_opt faces_tbl t in
    Mutex.unlock faces_lock;
    match cached with
    | Some fs -> fs
    | None ->
      let fs = faces_raw t in
      Mutex.lock faces_lock;
      if not (Tbl.mem faces_tbl t) then Tbl.add faces_tbl t fs;
      Mutex.unlock faces_lock;
      fs
  end

let carrier_memo : t Tbl.t = Tbl.create 1024

let carrier t =
  if is_empty t then empty
  else begin
    Mutex.lock carrier_lock;
    let cached = Tbl.find_opt carrier_memo t in
    Mutex.unlock carrier_lock;
    match cached with
    | Some c -> c
    | None ->
      let c = carrier_raw t in
      Mutex.lock carrier_lock;
      if not (Tbl.mem carrier_memo t) then Tbl.add carrier_memo t c;
      Mutex.unlock carrier_lock;
      c
  end
