(** Off-heap dedup set of face keys (sorted interned-id runs).

    The mutable state threaded through the streaming closure kernels
    ({!Arena.fold_faces}, {!Simplex.fold_distinct_faces}). Both backing
    tables are [Bigarray] int storage outside the OCaml heap: probing
    touches no boxed key and inserting allocates no GC-visible word.
    Faces whose sorted key fits the 60-bit packing budget (card ≤ 4
    with vids < 0x7fff, card 5 with vids < 0xfff, card 6 with vids
    < 0x3ff) dedup through a flat packed-int table; everything else
    through a general table whose keys live in an append-only int
    arena. No deletions, hence no tombstones; growth rehashes slots
    only, never moves arena runs. *)

type t

val create : ?size:int -> unit -> t
(** [size] is the expected number of distinct faces (the packed table
    starts at twice that, rounded up to a power of two with a minimum
    of 8, and grows as needed). The general table always starts tiny
    and grows on demand. *)

val release : t -> unit
(** Return the backing storage to an internal pool so the next
    {!create} of the same capacity reuses it (zeroing is ~50x cheaper
    than allocating a large Bigarray). The table must not be used
    after release; callers that shared the table should skip this and
    let the GC reclaim it. *)

val mem_or_add : t -> int array -> len:int -> bool
(** [mem_or_add t key ~len]: one hash-and-probe over
    [key.(0 .. len - 1)], which must be sorted ascending and have
    [len ≥ 1]. Returns [true] if the run is already present; otherwise
    records it (copying out of the caller's scratch buffer) and
    returns [false]. *)

val mem_or_add_packed : t -> int -> bool
(** Direct probe with an already-packed key ([> 0]) — for callers that
    pack inline. The packing must agree with {!mem_or_add}'s. *)

val pack : int array -> len:int -> int
(** The packed representation of a sorted run, or [0] if the run does
    not fit any packed class. Injective over packable runs. *)

val packable : card:int -> max_vid:int -> bool
(** Whether a face of [card] vertices with maximum vid [max_vid] packs
    (keys are sorted, so the max vid decides). *)

val count : t -> int
(** Number of distinct runs recorded. *)

val packed_count : t -> int
val heap_count : t -> int
(** Split of {!count} between the packed table and the general
    (arena-backed) table. *)

val packed_capacity : t -> int
(** Current slot count of the packed table — exposed for growth tests. *)
