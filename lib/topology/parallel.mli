(** Multicore fan-out over OCaml 5 domains (stdlib only).

    Lists are split into contiguous chunks, one spawned domain per
    chunk, and results are concatenated in order — so for a pure [f]
    the output equals [List.map f xs] whatever the domain count. With
    [domains <= 1] no domain is spawned and the call {e is}
    [List.map f xs] (bit-identical sequential fallback).

    The default domain count is 1, overridable with the
    [FACT_DOMAINS] environment variable (read once at startup) or
    {!set_default_domains} (e.g. the bench [--domains] flag).

    {b Fault tolerance} (parallel path only): every spawned domain is
    joined before any exception escapes — a raising [f] never leaks a
    domain. Chunks whose worker raised are retried once, sequentially,
    on the calling domain; if the retry fails too, the call raises a
    single aggregated [Fact_error.Worker_failure] naming the failed
    chunk count and the first failure. Cancellation
    ([Fact_error.Cancelled]/[Deadline_exceeded]) is never retried or
    wrapped: it is re-raised as-is, so deadlines stay prompt. On the
    sequential path ([domains <= 1]) exceptions from [f] propagate
    untouched, exactly as [List.map].

    Worker discipline: workers may build vertices and simplices (the
    intern tables are mutex-protected and the values immutable), but
    must not force mutable caches — e.g. [Complex.all_simplices] — on
    complexes shared between domains. *)

val default_domains : unit -> int
val set_default_domains : int -> unit
(** Clamped below at 1. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs = List.map f xs], fanned out over [domains]
    domains. [?domains] defaults to {!default_domains}. *)

val concat_map : ?domains:int -> ('a -> 'b list) -> 'a list -> 'b list

val map_init : ?domains:int -> (unit -> 'ctx) -> ('ctx -> 'a -> 'b) -> 'a list -> 'b list
(** Like {!map} but each worker first builds a private context (e.g. a
    local memo table), threaded through its whole chunk. For the
    output to be independent of the domain count, [f ctx] must be pure
    modulo the context. *)
