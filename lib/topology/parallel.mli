(** Multicore fan-out over a persistent work-stealing domain pool
    (OCaml 5 stdlib only).

    One pool per process: worker domains are spawned lazily on first
    use, grown monotonically to the largest requested count minus one
    (the calling domain always helps), reused by every subsequent
    fan-out, and joined at process exit — {!domain_spawns} counts how
    many domains were ever spawned, so a long run that performs
    thousands of fan-outs still reports a handful. Scheduling is a
    shared FIFO injector plus per-worker deques: workers pop their own
    deque LIFO, then the injector, then steal FIFO from other deques;
    a nested fan-out issued from inside a job goes to the issuing
    worker's own deque, so recursion runs depth-first without spawning
    or deadlocking.

    For {!map}: lists are split into contiguous chunks, results are
    concatenated in order — so for a pure [f] the output equals
    [List.map f xs] whatever the domain count. With [domains <= 1] no
    pool is touched and the call {e is} [List.map f xs] (bit-identical
    sequential fallback).

    The default domain count is 1, overridable with the
    [FACT_DOMAINS] environment variable (read once at startup) or
    {!set_default_domains} (e.g. the bench [--domains] flag).

    {b Cancellation}: the submitter's ambient {!Fact_resilience.Cancel}
    token is captured at submission and installed around each job on
    whichever domain runs it, so cancelling the submitter trips every
    worker processing its jobs.

    {b Fault tolerance} of {!map}/{!map_init} (parallel path only):
    every chunk settles before any exception escapes — a raising [f]
    never loses a chunk. Chunks whose job raised are retried once,
    sequentially, on the calling domain; if the retry fails too, the
    call raises a single aggregated [Fact_error.Worker_failure] naming
    the failed chunk count and the first failure. Cancellation
    ([Fact_error.Cancelled]/[Deadline_exceeded]) is never retried or
    wrapped: it is re-raised as-is, so deadlines stay prompt. On the
    sequential path ([domains <= 1]) exceptions from [f] propagate
    untouched, exactly as [List.map].

    Worker discipline: workers may build vertices and simplices (the
    intern tables are mutex-protected and the values immutable), but
    must not force mutable caches — e.g. [Complex.all_simplices] — on
    complexes shared between domains. *)

val default_domains : unit -> int
val set_default_domains : int -> unit
(** Clamped below at 1. *)

val domain_spawns : unit -> int
(** Domains ever spawned by the pool in this process — stays at
    [requested - 1] however many fan-outs run. *)

val run_all :
  ?workers:int ->
  (unit -> 'a) list ->
  ('a, exn * Printexc.raw_backtrace) result list
(** Run every thunk on the pool (the caller helps) and return all
    outcomes in order, each thunk's exception captured rather than
    propagated — nothing is retried, nothing is lost. [?workers]
    bounds pool growth (default {!default_domains}); with one thunk or
    an empty list the pool is not touched. The building block for
    schedulers that need their own failure policy (e.g. the explorer's
    subtree tasks). *)

val reraise : exn * Printexc.raw_backtrace -> 'a
(** Re-raise a captured exception with its original backtrace. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs = List.map f xs], fanned out over the pool in
    [domains] contiguous chunks. [?domains] defaults to
    {!default_domains}. *)

val concat_map : ?domains:int -> ('a -> 'b list) -> 'a list -> 'b list

val map_init : ?domains:int -> (unit -> 'ctx) -> ('ctx -> 'a -> 'b) -> 'a list -> 'b list
(** Like {!map} but each worker first builds a private context (e.g. a
    local memo table), threaded through its whole chunk. For the
    output to be independent of the domain count, [f ctx] must be pure
    modulo the context. *)
