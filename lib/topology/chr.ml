let standard n =
  let vs = List.init n Vertex.base in
  Complex.of_facets ~n [ Simplex.make vs ]

let facet_of_run tau run =
  Simplex.of_chr_pairs
    (List.map
       (fun (p, view) -> (p, Simplex.restrict tau view))
       (Opart.views run))

let subdivide_simplex_raw tau =
  let runs = Opart.enumerate (Simplex.colors tau) in
  List.map (facet_of_run tau) runs

(* The facets of [Chr τ] are asked for again on every [iterate] over a
   complex containing τ (and the same τ values recur across reps of the
   whole pipeline); memoize them per simplex. *)
let sub_lock = Mutex.create ()
let sub_tbl : Simplex.t list Simplex.Tbl.t = Simplex.Tbl.create 4096

let subdivide_simplex tau =
  Mutex.lock sub_lock;
  let cached = Simplex.Tbl.find_opt sub_tbl tau in
  Mutex.unlock sub_lock;
  match cached with
  | Some fs -> fs
  | None ->
    let fs = subdivide_simplex_raw tau in
    Mutex.lock sub_lock;
    if not (Simplex.Tbl.mem sub_tbl tau) then Simplex.Tbl.add sub_tbl tau fs;
    Mutex.unlock sub_lock;
    fs

(* Per-facet ordered-partition enumeration is independent across
   facets, so it fans out over domains (Parallel is a no-op for the
   default domain count of 1). Workers only construct immutable
   simplices; the facet list order — and hence the resulting complex —
   does not depend on the domain count. *)
let subdivide k =
  let gens = Parallel.concat_map subdivide_simplex (Complex.facets k) in
  Complex.of_facets ~n:(Complex.n k) gens

let rec iterate m k = if m <= 0 then k else iterate (m - 1) (subdivide k)

(* Iterated subdivisions of the standard simplex are requested all
   over the affine pipeline (R_A, R_kOF, R_t-res, full_chr); memoize
   them per (m, n). The cached complexes are shared: treat them as
   immutable. *)
let std_lock = Mutex.create ()
let std_tbl : (int * int, Complex.t) Hashtbl.t = Hashtbl.create 16

let standard_iterated ~m ~n =
  Mutex.lock std_lock;
  let cached = Hashtbl.find_opt std_tbl (m, n) in
  Mutex.unlock std_lock;
  match cached with
  | Some c -> c
  | None ->
    (* Build outside the lock (it can be expensive and may recurse
       through subdivide); a racing duplicate build is harmless and
       both results are equal. *)
    let c = iterate m (standard n) in
    (* Pre-force the closure cache so sharing the complex with worker
       domains later never races on it. *)
    ignore (Complex.simplex_count c);
    ignore (Complex.euler_characteristic c);
    Mutex.lock std_lock;
    let c =
      match Hashtbl.find_opt std_tbl (m, n) with
      | Some c' -> c'
      | None ->
        Hashtbl.add std_tbl (m, n) c;
        c
    in
    Mutex.unlock std_lock;
    c

let facet_of_runs tau runs = List.fold_left facet_of_run tau runs

let run_of_facet_uncached sigma =
  let pairs =
    List.map
      (fun v ->
        match v with
        | Vertex.Deriv { proc; carrier } ->
          (proc, Simplex.colors (Simplex.make carrier))
        | Vertex.Input _ ->
          invalid_arg "Chr.run_of_facet: base-level vertex")
      (Simplex.vertices sigma)
  in
  match Opart.of_views pairs with
  | Some run -> run
  | None -> invalid_arg "Chr.run_of_facet: not a full facet of Chr"

let run_lock = Mutex.create ()
let run_tbl : Opart.t Simplex.Tbl.t = Simplex.Tbl.create 1024

let run_of_facet sigma =
  Mutex.lock run_lock;
  let cached = Simplex.Tbl.find_opt run_tbl sigma in
  Mutex.unlock run_lock;
  match cached with
  | Some run -> run
  | None ->
    let run = run_of_facet_uncached sigma in
    Mutex.lock run_lock;
    if not (Simplex.Tbl.mem run_tbl sigma) then
      Simplex.Tbl.add run_tbl sigma run;
    Mutex.unlock run_lock;
    run

let carrier = Simplex.carrier

let is_simplex_of_chr sigma =
  let entries =
    List.map
      (fun v ->
        match v with
        | Vertex.Deriv _ -> (Vertex.proc v, Simplex.vertex_carrier v)
        | Vertex.Input _ ->
          invalid_arg "Chr.is_simplex_of_chr: base-level vertex")
      (Simplex.vertices sigma)
  in
  (* containment: carriers pairwise ordered by inclusion;
     immediacy: c_i ∈ χ(σ_j) implies σ_i ⊆ σ_j;
     self-inclusion: c_i ∈ χ(σ_i). *)
  List.for_all
    (fun (ci, si) ->
      Pset.mem ci (Simplex.colors si)
      && List.for_all
           (fun (_, sj) -> Simplex.subset si sj || Simplex.subset sj si)
           entries
      && List.for_all
           (fun (_, sj) ->
             (not (Pset.mem ci (Simplex.colors sj))) || Simplex.subset si sj)
           entries)
    entries
