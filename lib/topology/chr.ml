open Fact_resilience

let standard n =
  let vs = List.init n Vertex.base in
  Complex.of_facets ~n [ Simplex.make vs ]

let facet_of_run tau run =
  Simplex.of_chr_pairs
    (List.map
       (fun (p, view) -> (p, Simplex.restrict tau view))
       (Opart.views run))

let subdivide_simplex_raw tau =
  let runs = Opart.enumerate (Simplex.colors tau) in
  List.map (facet_of_run tau) runs

(* The facets of [Chr τ] are asked for again on every [iterate] over a
   complex containing τ (and the same τ values recur across reps of the
   whole pipeline); memoize them per simplex, bounded (Cache evicts
   LRU-ish past FACT_CACHE_CAP — recomputation is pure, so eviction
   never changes results). *)
module Simplex_cache = Cache.Make (struct
  type t = Simplex.t

  let equal = Simplex.equal
  let hash = Simplex.hash
end)

let sub_cache : Simplex.t list Simplex_cache.t =
  Simplex_cache.create ~name:"chr.subdivide"
    ~equal:(List.equal Simplex.equal) ()

let subdivide_simplex tau =
  Simplex_cache.find_or_add sub_cache tau subdivide_simplex_raw

(* Per-facet ordered-partition enumeration is independent across
   facets, so it fans out over domains (Parallel is a no-op for the
   default domain count of 1). Workers only construct immutable
   simplices; the facet list order — and hence the resulting complex —
   does not depend on the domain count. The ambient cancellation token
   is polled once per facet, on workers too. *)
let subdivide k =
  let gens =
    Parallel.concat_map
      (fun tau ->
        Cancel.poll ~where:"Chr.subdivide";
        subdivide_simplex tau)
      (Complex.facets k)
  in
  Complex.of_facets ~n:(Complex.n k) gens

let rec iterate m k = if m <= 0 then k else iterate (m - 1) (subdivide k)

(* Iterated subdivisions of the standard simplex are requested all
   over the affine pipeline (R_A, R_kOF, R_t-res, full_chr); memoize
   them per (m, n). The cached complexes are shared: treat them as
   immutable. *)
module Int_pair_cache = Cache.Make (struct
  type t = int * int

  let equal = ( = )
  let hash = Hashtbl.hash
end)

let std_cache : Complex.t Int_pair_cache.t =
  Int_pair_cache.create ~name:"chr.standard_iterated" ~equal:Complex.equal ()

let standard_iterated ~m ~n =
  Int_pair_cache.find_or_add std_cache (m, n) (fun (m, n) ->
      let c = iterate m (standard n) in
      (* Pre-force the closure and Euler caches so sharing the complex
         with worker domains later never races on them
         ([simplex_count] streams and would leave the closure cold). *)
      ignore (Complex.all_simplices c);
      ignore (Complex.euler_characteristic c);
      c)

let facet_of_runs tau runs = List.fold_left facet_of_run tau runs

let run_of_facet sigma =
  let pairs =
    List.map
      (fun v ->
        match v with
        | Vertex.Deriv { proc; carrier } ->
          (proc, Simplex.colors (Simplex.make carrier))
        | Vertex.Input _ ->
          invalid_arg "Chr.run_of_facet: base-level vertex")
      (Simplex.vertices sigma)
  in
  match Opart.of_views pairs with
  | Some run -> run
  | None -> invalid_arg "Chr.run_of_facet: not a full facet of Chr"

let carrier = Simplex.carrier

let is_simplex_of_chr sigma =
  let entries =
    List.map
      (fun v ->
        match v with
        | Vertex.Deriv _ -> (Vertex.proc v, Simplex.vertex_carrier v)
        | Vertex.Input _ ->
          invalid_arg "Chr.is_simplex_of_chr: base-level vertex")
      (Simplex.vertices sigma)
  in
  (* containment: carriers pairwise ordered by inclusion;
     immediacy: c_i ∈ χ(σ_j) implies σ_i ⊆ σ_j;
     self-inclusion: c_i ∈ χ(σ_i). *)
  List.for_all
    (fun (ci, si) ->
      Pset.mem ci (Simplex.colors si)
      && List.for_all
           (fun (_, sj) -> Simplex.subset si sj || Simplex.subset sj si)
           entries
      && List.for_all
           (fun (_, sj) ->
             (not (Pset.mem ci (Simplex.colors sj))) || Simplex.subset si sj)
           entries)
    entries
