(** Vertices of (iterated) chromatic complexes.

    A single recursive type represents vertices of the standard simplex
    [s], of input complexes, and of any iterated standard chromatic
    subdivision [Chr^m]:

    - [Input {proc; value}] is a vertex of a base (input) complex:
      process [proc] with input [value]. The standard simplex [s] is
      the input complex where every process has value [0].
    - [Deriv {proc; carrier}] is a vertex of [Chr K]: the pair
      [(proc, σ)] of the paper, where [σ] (the [carrier]) is the
      simplex of [K] "seen" by [proc] — the snapshot it obtained in the
      corresponding immediate-snapshot run.

    Simplices are sorted vertex lists (see {!Simplex}); the [carrier]
    field stores such a sorted list. *)

type t =
  | Input of { proc : int; value : int }
  | Deriv of { proc : int; carrier : t list }

val proc : t -> int
(** The color χ(v) of the vertex: the process id. *)

val input : int -> int -> t
(** [input p v] is the base vertex of process [p] with value [v]. *)

val base : int -> t
(** [base p] = [input p 0]: a vertex of the standard simplex [s]. *)

val deriv : int -> t list -> t
(** [deriv p carrier] builds a [Chr]-vertex. The carrier must be a
    sorted simplex (as produced by {!Simplex.make}) containing a vertex
    of color [p]; raises [Invalid_argument] otherwise. *)

val carrier : t -> t list
(** The carrier of a [Deriv] vertex in the complex it subdivides, i.e.
    the simplex it has seen. For an [Input] vertex, its own singleton. *)

val base_carrier : t -> Pset.t
(** [carrier(v, s)]: the set of processes of the base complex
    ultimately seen by this vertex, flattening all subdivision
    levels. *)

val level : t -> int
(** Subdivision depth: 0 for [Input], 1 + level of carrier vertices for
    [Deriv]. *)

val value : t -> int
(** The base input value of the vertex's own process: for [Input] it is
    the stored value; for [Deriv] it is the value of the same process
    at the base level (full-information: a process always knows its own
    input). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** {2 Interning}

    Vertices are interned into a global table that assigns dense
    integer ids: structurally equal vertices always receive the same
    id, so equality of interned vertices is integer equality. The
    table also memoizes, per id, a full-depth structural hash and the
    base carrier. Interning is guarded by a mutex and is safe to call
    from multiple domains; ids are process-local (their numbering
    depends on intern order), so they must only be used for equality,
    hashing and memo keys — ordering of observable results must use
    {!strong_hash} or structural {!compare}, which are deterministic. *)

val id : t -> int
(** The dense intern id of the vertex (interning it if needed). *)

val strong_hash : t -> int
(** A full-depth structural hash, memoized per id. Deterministic: it
    depends only on the structure of the vertex, never on intern
    order. *)

val intern_list : t list -> (int * int * Pset.t) list
(** [(id, strong_hash, base_carrier)] for each vertex, taking the
    intern lock once for the whole batch. Used by {!Simplex.make}. *)

val intern_deriv_list : (int * int list) list -> (int * int * Pset.t) list
(** Shallow batch interning of derived vertices: each entry is
    [(proc, carrier_ids)] where the carrier vertices are already
    interned (in carrier order). Agrees with {!intern_list} on ids,
    hashes and base carriers, but costs O(carrier) per vertex instead
    of a full tree walk. Used by {!Simplex.of_chr_pairs}. *)

val interned_count : unit -> int
(** Number of distinct vertices interned so far (for diagnostics). *)
