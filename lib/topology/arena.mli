(** Struct-of-arrays facet storage for the streaming face kernels.

    An arena is a flat view of a facet array: all sorted interned-id
    runs concatenated into one contiguous int array plus offset, color
    and cardinality tables, alongside the facet simplices themselves
    for materialization. {!Complex.fold_faces} builds one lazily per
    complex; the kernel then walks flat memory instead of hashconsed
    nodes and OCaml lists.

    Invariant: facet [i]'s key occupies
    [vids.(off.(i)) .. vids.(off.(i+1) - 1)] sorted ascending, so bit
    [b] of a submask over facet [i] selects the vid at arena offset
    [off.(i) + b], and {!Simplex.select_sorted_mask} maps the mask back
    to the interned face. *)

type t

val build : Simplex.t array -> t
(** Flatten a facet array (in the caller's canonical order — the order
    fixes enumeration order downstream). The array is captured, not
    copied; callers must not mutate it afterwards. *)

val facet_count : t -> int
val facet : t -> int -> Simplex.t
val card : t -> int -> int
val colors : t -> int -> Pset.t
val total_vids : t -> int
(** Total length of the concatenated id runs. *)

val fold_faces :
  ?min_card:int ->
  ?max_card:int ->
  seen:Face_set.t ->
  t ->
  init:'a ->
  f:('a -> card:int -> face:(unit -> Simplex.t) -> 'a) ->
  'a
(** Streaming face enumeration over every facet run: folds [f] over
    each nonempty face with [min_card ≤ card ≤ max_card] (defaults:
    all) whose key is not yet in [seen], adding emitted keys to
    [seen]. Sharing [seen] across calls extends dedup across arenas.
    [face] is lazy and — unlike a fresh closure per face — shared and
    rebound between callbacks: force it synchronously inside [f],
    never stash it. Facets stream in array order; submasks in
    increasing mask order (so faces of one facet come out grouped). *)
