type t = {
  n : int;
  facets : Simplex.Set.t;
  mutable closure_cache : Simplex.Set.t option;
  mutable euler_cache : int option;
}

(* Keep only maximal simplices among the generators. A simplex can
   only be subsumed by one of strictly larger dimension, so when all
   generators share a dimension (the common case: facets of a pure
   complex) this is free; otherwise only larger buckets are probed,
   and within a bucket candidates whose color bitmask is not a
   superset are skipped before the id-array walk. *)
let maximalize gens =
  let by_dim = Hashtbl.create 8 in
  Simplex.Set.iter
    (fun s ->
      let d = Simplex.dim s in
      Hashtbl.replace by_dim d
        (s :: Option.value ~default:[] (Hashtbl.find_opt by_dim d)))
    gens;
  let dims = Hashtbl.fold (fun d _ acc -> d :: acc) by_dim [] in
  if List.length dims <= 1 then gens
  else
    Simplex.Set.filter
      (fun s ->
        let d = Simplex.dim s in
        let cs = Simplex.colors s in
        not
          (List.exists
             (fun d' ->
               d' > d
               && List.exists
                    (fun f ->
                      Pset.subset cs (Simplex.colors f) && Simplex.subset s f)
                    (Hashtbl.find by_dim d'))
             dims))
      gens

let of_facets ~n gens =
  let gens =
    List.filter (fun s -> not (Simplex.is_empty s)) gens
    |> Simplex.Set.of_list
  in
  { n; facets = maximalize gens; closure_cache = None; euler_cache = None }

let n t = t.n
let facets t = Simplex.Set.elements t.facets
let facet_set t = t.facets
let facet_count t = Simplex.Set.cardinal t.facets
let is_empty t = Simplex.Set.is_empty t.facets

let mem s t =
  Simplex.is_empty s && not (is_empty t)
  || Simplex.Set.exists (fun f -> Simplex.subset s f) t.facets

(* Streaming closure kernel: every nonempty face of the complex,
   exactly once, without materializing per-facet face lists. When the
   closure cache is already populated we fold over it (cheaper and, for
   callers like [vertices], the Set order is already what they expect);
   otherwise the facets stream through {!Simplex.fold_distinct_faces}
   with one shared dedup table, constructing a simplex only when [f]
   forces [face]. Enumeration order is unspecified either way. *)
let fold_faces ?(min_card = 1) ?(max_card = max_int) t ~init ~f =
  match t.closure_cache with
  | Some c ->
    Simplex.Set.fold
      (fun s acc ->
        let card = Simplex.card s in
        if card >= min_card && card <= max_card then
          f acc ~card ~face:(fun () -> s)
        else acc)
      c init
  | None ->
    let seen =
      Simplex.Face_set.create
        ~size:(max 1024 (8 * Simplex.Set.cardinal t.facets))
        ()
    in
    Simplex.Set.fold
      (fun facet acc ->
        Simplex.fold_distinct_faces ~seen ~min_card ~max_card facet ~init:acc
          ~f)
      t.facets init

let iter_faces ?min_card ?max_card t ~f =
  fold_faces ?min_card ?max_card t ~init:() ~f:(fun () ~card ~face ->
      f ~card ~face)

let closure_set t =
  match t.closure_cache with
  | Some c -> c
  | None ->
    let c =
      fold_faces t ~init:Simplex.Set.empty ~f:(fun acc ~card:_ ~face ->
          Simplex.Set.add (face ()) acc)
    in
    t.closure_cache <- Some c;
    c

let all_simplices t = Simplex.Set.elements (closure_set t)

(* Counting never forces [face]: with a cold cache this is pure
   submask/dedup arithmetic over interned ids, and deliberately does
   not populate the closure cache. *)
let simplex_count t =
  match t.closure_cache with
  | Some c -> Simplex.Set.cardinal c
  | None -> fold_faces t ~init:0 ~f:(fun acc ~card:_ ~face:_ -> acc + 1)

let vertices t =
  all_simplices t
  |> List.filter_map (fun s ->
         match Simplex.vertices s with [ v ] -> Some v | _ -> None)

let dimension t =
  Simplex.Set.fold (fun f acc -> max acc (Simplex.dim f)) t.facets (-1)

let is_pure t =
  let d = dimension t in
  Simplex.Set.for_all (fun f -> Simplex.dim f = d) t.facets

let is_pure_of_dim d t =
  (not (is_empty t))
  && dimension t = d
  && Simplex.Set.for_all (fun f -> Simplex.dim f = d) t.facets

(* The k-skeleton's facets are the card-(k+1) faces of the too-big
   facets plus the already-small facets, so only that slice of the
   closure is enumerated — not the whole face lattice. *)
let skeleton k t =
  if k < 0 then of_facets ~n:t.n []
  else if k >= dimension t then t
  else
    let small, big =
      Simplex.Set.partition (fun f -> Simplex.dim f <= k) t.facets
    in
    let seen =
      Simplex.Face_set.create ~size:(max 256 (Simplex.Set.cardinal big)) ()
    in
    let gens =
      Simplex.Set.fold
        (fun facet acc ->
          Simplex.fold_distinct_faces ~seen ~min_card:(k + 1) ~max_card:(k + 1)
            facet ~init:acc
            ~f:(fun acc ~card:_ ~face -> face () :: acc))
        big
        (Simplex.Set.elements small)
    in
    of_facets ~n:t.n gens

let closure ~n gens = of_facets ~n gens

let star gens t =
  let gen_set = Simplex.Set.of_list gens in
  all_simplices t
  |> List.filter (fun s ->
         List.exists (fun f -> Simplex.Set.mem f gen_set) (Simplex.faces s))

let pure_complement gens t =
  let gen_set = Simplex.Set.of_list gens in
  let keep f =
    not (List.exists (fun face -> Simplex.Set.mem face gen_set) (Simplex.faces f))
  in
  { n = t.n;
    facets = Simplex.Set.filter keep t.facets;
    closure_cache = None;
    euler_cache = None;
  }

(* The maximal face of [f] all of whose vertices have base carrier
   inside [colors]; carriers are monotone, so this face generates the
   restriction of the complex to the geometric face spanned by
   [colors]. *)
let restrict_colors colors t =
  let gens =
    Simplex.Set.fold
      (fun f acc ->
        let vs =
          List.filter
            (fun v -> Pset.subset (Vertex.base_carrier v) colors)
            (Simplex.vertices f)
        in
        match vs with [] -> acc | _ -> Simplex.make vs :: acc)
      t.facets []
  in
  of_facets ~n:t.n gens

(* dim even ⟺ card odd; streams when the closure cache is cold, so
   the alternating sum needs no simplex construction at all. *)
let euler_characteristic t =
  match t.euler_cache with
  | Some e -> e
  | None ->
    let e =
      fold_faces t ~init:0 ~f:(fun acc ~card ~face:_ ->
          if card land 1 = 1 then acc + 1 else acc - 1)
    in
    t.euler_cache <- Some e;
    e

let filter_facets p t =
  { n = t.n;
    facets = Simplex.Set.filter p t.facets;
    closure_cache = None;
    euler_cache = None;
  }

let union a b =
  if a.n <> b.n then invalid_arg "Complex.union: different universes";
  { n = a.n;
    facets = maximalize (Simplex.Set.union a.facets b.facets);
    closure_cache = None;
    euler_cache = None;
  }

let subcomplex a b = Simplex.Set.for_all (fun f -> mem f b) a.facets
let equal a b = a.n = b.n && Simplex.Set.equal a.facets b.facets

let pp_stats ppf t =
  Format.fprintf ppf "n=%d facets=%d dim=%d pure=%b" t.n (facet_count t)
    (dimension t) (is_pure t)
