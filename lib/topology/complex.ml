type t = {
  n : int;
  facets : Simplex.Set.t;
  mutable closure_cache : Simplex.Set.t option;
  mutable euler_cache : int option;
}

(* Keep only maximal simplices among the generators. A simplex can
   only be subsumed by one of strictly larger dimension, so when all
   generators share a dimension (the common case: facets of a pure
   complex) this is free; otherwise only larger buckets are probed,
   and within a bucket candidates whose color bitmask is not a
   superset are skipped before the id-array walk. *)
let maximalize gens =
  let by_dim = Hashtbl.create 8 in
  Simplex.Set.iter
    (fun s ->
      let d = Simplex.dim s in
      Hashtbl.replace by_dim d
        (s :: Option.value ~default:[] (Hashtbl.find_opt by_dim d)))
    gens;
  let dims = Hashtbl.fold (fun d _ acc -> d :: acc) by_dim [] in
  if List.length dims <= 1 then gens
  else
    Simplex.Set.filter
      (fun s ->
        let d = Simplex.dim s in
        let cs = Simplex.colors s in
        not
          (List.exists
             (fun d' ->
               d' > d
               && List.exists
                    (fun f ->
                      Pset.subset cs (Simplex.colors f) && Simplex.subset s f)
                    (Hashtbl.find by_dim d'))
             dims))
      gens

let of_facets ~n gens =
  let gens =
    List.filter (fun s -> not (Simplex.is_empty s)) gens
    |> Simplex.Set.of_list
  in
  { n; facets = maximalize gens; closure_cache = None; euler_cache = None }

let n t = t.n
let facets t = Simplex.Set.elements t.facets
let facet_set t = t.facets
let facet_count t = Simplex.Set.cardinal t.facets
let is_empty t = Simplex.Set.is_empty t.facets

let mem s t =
  Simplex.is_empty s && not (is_empty t)
  || Simplex.Set.exists (fun f -> Simplex.subset s f) t.facets

let closure_set t =
  match t.closure_cache with
  | Some c -> c
  | None ->
    let c =
      Simplex.Set.fold
        (fun f acc ->
          List.fold_left
            (fun acc face -> Simplex.Set.add face acc)
            acc (Simplex.faces f))
        t.facets Simplex.Set.empty
    in
    t.closure_cache <- Some c;
    c

let all_simplices t = Simplex.Set.elements (closure_set t)
let simplex_count t = Simplex.Set.cardinal (closure_set t)

let vertices t =
  all_simplices t
  |> List.filter_map (fun s ->
         match Simplex.vertices s with [ v ] -> Some v | _ -> None)

let dimension t =
  Simplex.Set.fold (fun f acc -> max acc (Simplex.dim f)) t.facets (-1)

let is_pure t =
  let d = dimension t in
  Simplex.Set.for_all (fun f -> Simplex.dim f = d) t.facets

let is_pure_of_dim d t =
  (not (is_empty t))
  && dimension t = d
  && Simplex.Set.for_all (fun f -> Simplex.dim f = d) t.facets

let skeleton k t =
  let gens =
    all_simplices t |> List.filter (fun s -> Simplex.dim s <= k)
  in
  of_facets ~n:t.n gens

let closure ~n gens = of_facets ~n gens

let star gens t =
  let gen_set = Simplex.Set.of_list gens in
  all_simplices t
  |> List.filter (fun s ->
         List.exists (fun f -> Simplex.Set.mem f gen_set) (Simplex.faces s))

let pure_complement gens t =
  let gen_set = Simplex.Set.of_list gens in
  let keep f =
    not (List.exists (fun face -> Simplex.Set.mem face gen_set) (Simplex.faces f))
  in
  { n = t.n;
    facets = Simplex.Set.filter keep t.facets;
    closure_cache = None;
    euler_cache = None;
  }

(* The maximal face of [f] all of whose vertices have base carrier
   inside [colors]; carriers are monotone, so this face generates the
   restriction of the complex to the geometric face spanned by
   [colors]. *)
let restrict_colors colors t =
  let gens =
    Simplex.Set.fold
      (fun f acc ->
        let vs =
          List.filter
            (fun v -> Pset.subset (Vertex.base_carrier v) colors)
            (Simplex.vertices f)
        in
        match vs with [] -> acc | _ -> Simplex.make vs :: acc)
      t.facets []
  in
  of_facets ~n:t.n gens

let euler_characteristic t =
  match t.euler_cache with
  | Some e -> e
  | None ->
    let e =
      Simplex.Set.fold
        (fun s acc -> if Simplex.dim s mod 2 = 0 then acc + 1 else acc - 1)
        (closure_set t) 0
    in
    t.euler_cache <- Some e;
    e

let filter_facets p t =
  { n = t.n;
    facets = Simplex.Set.filter p t.facets;
    closure_cache = None;
    euler_cache = None;
  }

let union a b =
  if a.n <> b.n then invalid_arg "Complex.union: different universes";
  { n = a.n;
    facets = maximalize (Simplex.Set.union a.facets b.facets);
    closure_cache = None;
    euler_cache = None;
  }

let subcomplex a b = Simplex.Set.for_all (fun f -> mem f b) a.facets
let equal a b = a.n = b.n && Simplex.Set.equal a.facets b.facets

let pp_stats ppf t =
  Format.fprintf ppf "n=%d facets=%d dim=%d pure=%b" t.n (facet_count t)
    (dimension t) (is_pure t)
