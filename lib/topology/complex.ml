(* A complex stores its facets as a strictly ascending [Simplex.t]
   array (ascending by [Simplex.compare] — exactly the order
   [Simplex.Set.elements] used to produce), so the canonical form is
   unique and [facets]/[equal]/iteration need no Set at all. The Set
   view, the flat arena view, the closure and the Euler characteristic
   are all derived lazily and cached; the array is never mutated after
   construction. *)

type t = {
  n : int;
  arr : Simplex.t array; (* strictly ascending by Simplex.compare *)
  mutable set_cache : Simplex.Set.t option;
  mutable arena_cache : Arena.t option;
  mutable closure_cache : Simplex.Set.t option;
  mutable euler_cache : int option;
}

let array_filter p arr =
  let kept = Array.fold_left (fun c s -> if p s then c + 1 else c) 0 arr in
  if kept = Array.length arr then arr
  else begin
    let out = Array.make kept Simplex.empty in
    let j = ref 0 in
    Array.iter
      (fun s ->
        if p s then begin
          out.(!j) <- s;
          incr j
        end)
      arr;
    out
  end

(* Keep only maximal simplices among the generators. A simplex can
   only be subsumed by one of strictly larger dimension, so when all
   generators share a dimension (the common case: facets of a pure
   complex) the dim scan is the whole cost; otherwise only larger
   buckets are probed, and within a bucket candidates whose color
   bitmask is not a superset are skipped before the id-array walk. *)
let maximalize arr =
  let len = Array.length arr in
  if len <= 1 then arr
  else begin
    let d0 = Simplex.dim arr.(0) in
    let mixed = ref false in
    for i = 1 to len - 1 do
      if Simplex.dim arr.(i) <> d0 then mixed := true
    done;
    if not !mixed then arr
    else begin
      let by_dim = Hashtbl.create 8 in
      Array.iter
        (fun s ->
          let d = Simplex.dim s in
          Hashtbl.replace by_dim d
            (s :: Option.value ~default:[] (Hashtbl.find_opt by_dim d)))
        arr;
      let dims = Hashtbl.fold (fun d _ acc -> d :: acc) by_dim [] in
      array_filter
        (fun s ->
          let d = Simplex.dim s in
          let cs = Simplex.colors s in
          not
            (List.exists
               (fun d' ->
                 d' > d
                 && List.exists
                      (fun f ->
                        Pset.subset cs (Simplex.colors f) && Simplex.subset s f)
                      (Hashtbl.find by_dim d'))
               dims))
        arr
    end
  end

(* Sort ascending and drop duplicates — but first check whether the
   input is already strictly ascending (facets round-tripped through
   [facets] always are), in which case both passes are skipped. *)
let canonicalize arr =
  let len = Array.length arr in
  let sorted = ref true in
  for i = 1 to len - 1 do
    if Simplex.compare arr.(i - 1) arr.(i) >= 0 then sorted := false
  done;
  if !sorted then arr
  else begin
    Array.sort Simplex.compare arr;
    let distinct = ref 1 in
    for i = 1 to len - 1 do
      if Simplex.compare arr.(i - 1) arr.(i) <> 0 then incr distinct
    done;
    if !distinct = len then arr
    else begin
      let out = Array.make !distinct arr.(0) in
      let j = ref 0 in
      for i = 1 to len - 1 do
        if Simplex.compare out.(!j) arr.(i) <> 0 then begin
          incr j;
          out.(!j) <- arr.(i)
        end
      done;
      out
    end
  end

let of_arr ~n arr =
  {
    n;
    arr;
    set_cache = None;
    arena_cache = None;
    closure_cache = None;
    euler_cache = None;
  }

let of_facets ~n gens =
  let gens = List.filter (fun s -> not (Simplex.is_empty s)) gens in
  of_arr ~n (maximalize (canonicalize (Array.of_list gens)))

let n t = t.n
let facets t = Array.to_list t.arr

let facet_set t =
  match t.set_cache with
  | Some s -> s
  | None ->
    let s =
      Array.fold_left (fun acc f -> Simplex.Set.add f acc) Simplex.Set.empty
        t.arr
    in
    t.set_cache <- Some s;
    s

let arena t =
  match t.arena_cache with
  | Some a -> a
  | None ->
    let a = Arena.build t.arr in
    t.arena_cache <- Some a;
    a

let facet_count t = Array.length t.arr
let is_empty t = Array.length t.arr = 0

let mem s t =
  (Simplex.is_empty s && not (is_empty t))
  || Array.exists (fun f -> Simplex.subset s f) t.arr

(* Streaming closure kernel: every nonempty face of the complex,
   exactly once, without materializing per-facet face lists. When the
   closure cache is already populated we fold over it (cheaper and, for
   callers like [vertices], the Set order is already what they expect);
   otherwise the facet arena streams through {!Arena.fold_faces} with
   one shared off-heap dedup table, constructing a simplex only when
   [f] forces [face]. [face] must be forced synchronously inside [f]
   (see {!Arena.fold_faces}). Enumeration order is unspecified. *)
let fold_faces ?(min_card = 1) ?(max_card = max_int) t ~init ~f =
  match t.closure_cache with
  | Some c ->
    Simplex.Set.fold
      (fun s acc ->
        let card = Simplex.card s in
        if card >= min_card && card <= max_card then
          f acc ~card ~face:(fun () -> s)
        else acc)
      c init
  | None ->
    let seen = Face_set.create ~size:(max 1024 (4 * facet_count t)) () in
    let r = Arena.fold_faces ~seen ~min_card ~max_card (arena t) ~init ~f in
    Face_set.release seen;
    r

let iter_faces ?min_card ?max_card t ~f =
  fold_faces ?min_card ?max_card t ~init:() ~f:(fun () ~card ~face ->
      f ~card ~face)

let closure_set t =
  match t.closure_cache with
  | Some c -> c
  | None ->
    let c =
      fold_faces t ~init:Simplex.Set.empty ~f:(fun acc ~card:_ ~face ->
          Simplex.Set.add (face ()) acc)
    in
    t.closure_cache <- Some c;
    c

let all_simplices t = Simplex.Set.elements (closure_set t)

(* Counting never forces [face]: with a cold cache this is pure
   submask/dedup arithmetic over flat interned-id runs, and
   deliberately does not populate the closure cache. *)
let simplex_count t =
  match t.closure_cache with
  | Some c -> Simplex.Set.cardinal c
  | None -> fold_faces t ~init:0 ~f:(fun acc ~card:_ ~face:_ -> acc + 1)

let vertices t =
  all_simplices t
  |> List.filter_map (fun s ->
         match Simplex.vertices s with [ v ] -> Some v | _ -> None)

let dimension t =
  Array.fold_left (fun acc f -> max acc (Simplex.dim f)) (-1) t.arr

let is_pure t =
  let d = dimension t in
  Array.for_all (fun f -> Simplex.dim f = d) t.arr

let is_pure_of_dim d t =
  (not (is_empty t))
  && dimension t = d
  && Array.for_all (fun f -> Simplex.dim f = d) t.arr

(* The k-skeleton's facets are the card-(k+1) faces of the too-big
   facets plus the already-small facets, so only that slice of the
   closure is enumerated — not the whole face lattice. *)
let skeleton k t =
  if k < 0 then of_facets ~n:t.n []
  else if k >= dimension t then t
  else begin
    let small = array_filter (fun f -> Simplex.dim f <= k) t.arr in
    let big = array_filter (fun f -> Simplex.dim f > k) t.arr in
    let seen = Face_set.create ~size:(max 256 (Array.length big)) () in
    let gens =
      Arena.fold_faces ~seen ~min_card:(k + 1) ~max_card:(k + 1)
        (Arena.build big)
        ~init:(Array.to_list small)
        ~f:(fun acc ~card:_ ~face -> face () :: acc)
    in
    Face_set.release seen;
    of_facets ~n:t.n gens
  end

let closure ~n gens = of_facets ~n gens

let star gens t =
  let gen_set = Simplex.Set.of_list gens in
  all_simplices t
  |> List.filter (fun s ->
         List.exists (fun f -> Simplex.Set.mem f gen_set) (Simplex.faces s))

let pure_complement gens t =
  let gen_set = Simplex.Set.of_list gens in
  let keep f =
    not
      (List.exists (fun face -> Simplex.Set.mem face gen_set) (Simplex.faces f))
  in
  of_arr ~n:t.n (array_filter keep t.arr)

(* The maximal face of [f] all of whose vertices have base carrier
   inside [colors]; carriers are monotone, so this face generates the
   restriction of the complex to the geometric face spanned by
   [colors]. *)
let restrict_colors colors t =
  let gens =
    Array.fold_left
      (fun acc f ->
        let vs =
          List.filter
            (fun v -> Pset.subset (Vertex.base_carrier v) colors)
            (Simplex.vertices f)
        in
        match vs with [] -> acc | _ -> Simplex.make vs :: acc)
      [] t.arr
  in
  of_facets ~n:t.n gens

(* dim even ⟺ card odd; streams when the closure cache is cold, so
   the alternating sum needs no simplex construction at all. *)
let euler_characteristic t =
  match t.euler_cache with
  | Some e -> e
  | None ->
    let e =
      fold_faces t ~init:0 ~f:(fun acc ~card ~face:_ ->
          if card land 1 = 1 then acc + 1 else acc - 1)
    in
    t.euler_cache <- Some e;
    e

let filter_facets p t = of_arr ~n:t.n (array_filter p t.arr)

(* Merge two strictly ascending facet arrays (dropping duplicates),
   then re-maximalize: the merge keeps the canonical order without a
   sort. *)
let union a b =
  if a.n <> b.n then invalid_arg "Complex.union: different universes";
  let la = Array.length a.arr and lb = Array.length b.arr in
  let out = Array.make (max (la + lb) 1) Simplex.empty in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < la || !j < lb do
    let take_a =
      if !i >= la then false
      else if !j >= lb then true
      else Simplex.compare a.arr.(!i) b.arr.(!j) <= 0
    in
    let s = if take_a then a.arr.(!i) else b.arr.(!j) in
    if take_a then incr i else incr j;
    if !k = 0 || Simplex.compare out.(!k - 1) s <> 0 then begin
      out.(!k) <- s;
      incr k
    end
  done;
  of_arr ~n:a.n (maximalize (Array.sub out 0 !k))

let subcomplex a b = Array.for_all (fun f -> mem f b) a.arr

let equal a b =
  a.n = b.n
  && Array.length a.arr = Array.length b.arr
  && (let ok = ref true in
      Array.iteri (fun i f -> if not (Simplex.equal f b.arr.(i)) then ok := false) a.arr;
      !ok)

let pp_stats ppf t =
  Format.fprintf ppf "n=%d facets=%d dim=%d pure=%b" t.n (facet_count t)
    (dimension t) (is_pure t)
