type t =
  | Input of { proc : int; value : int }
  | Deriv of { proc : int; carrier : t list }

let proc = function Input { proc; _ } | Deriv { proc; _ } -> proc

let input proc value = Input { proc; value }
let base proc = Input { proc; value = 0 }

let rec compare a b =
  if a == b then 0
  else
    match (a, b) with
    | Input x, Input y ->
      let c = Stdlib.compare x.proc y.proc in
      if c <> 0 then c else Stdlib.compare x.value y.value
    | Input _, Deriv _ -> -1
    | Deriv _, Input _ -> 1
    | Deriv x, Deriv y ->
      let c = Stdlib.compare x.proc y.proc in
      if c <> 0 then c else List.compare compare x.carrier y.carrier

let equal a b = compare a b = 0

let deriv p carrier =
  if not (List.exists (fun v -> proc v = p) carrier) then
    invalid_arg "Vertex.deriv: carrier does not contain the vertex color";
  Deriv { proc = p; carrier }

let carrier = function
  | Input _ as v -> [ v ]
  | Deriv { carrier; _ } -> carrier

let rec base_carrier = function
  | Input { proc; _ } -> Pset.singleton proc
  | Deriv { carrier; _ } ->
    List.fold_left
      (fun acc v -> Pset.union acc (base_carrier v))
      Pset.empty carrier

let rec level = function
  | Input _ -> 0
  | Deriv { carrier = v :: _; _ } -> 1 + level v
  | Deriv { carrier = []; _ } -> 1

let rec value = function
  | Input { value; _ } -> value
  | Deriv { proc = p; carrier } ->
    (match List.find_opt (fun v -> proc v = p) carrier with
    | Some v -> value v
    | None -> invalid_arg "Vertex.value: self not in carrier")

let rec pp ppf = function
  | Input { proc; value } ->
    if value = 0 then Format.fprintf ppf "p%d" proc
    else Format.fprintf ppf "p%d=%d" proc value
  | Deriv { proc; carrier } ->
    Format.fprintf ppf "(p%d,[%a])" proc
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
         pp)
      carrier

(* ------------------------------------------------------------------ *)
(* Interning                                                          *)
(* ------------------------------------------------------------------ *)

(* Every vertex is assigned a dense integer id the first time it is
   seen; structurally equal vertices (even separately allocated ones)
   get the same id. The intern table is keyed by a *shallow* key —
   (proc, value) for inputs, (proc, ids of the carrier) for derived
   vertices — so a lookup costs one pass over the tree with O(1) work
   per node instead of deep structural hashing.

   Alongside the id we store, computed once at intern time:
   - a full-depth structural hash (deterministic, independent of the
     id numbering — safe to use for ordering),
   - the base carrier (the memoized carrier map of the whole library).

   All table and store accesses are guarded by [lock], so interning is
   safe from multiple domains. Ids are then process-local names: the
   numbering depends on intern order (and is racy across domains), so
   ids must only be used for equality, hashing and memo keys — never
   for ordering observable results. The structural hash is what orders
   things deterministically. *)

type key = K_input of int * int | K_deriv of int * int list

let lock = Mutex.create ()
let table : (key, int) Hashtbl.t = Hashtbl.create 4096

(* growable per-id stores *)
let size = ref 0
let hash_store = ref (Array.make 4096 0)
let bc_store = ref (Array.make 4096 Pset.empty)

let mix h k =
  let k = k * 0x3f58476d1ce4e5b9 in
  let k = k lxor (k lsr 31) in
  let h = (h lxor k) * 0x14d049bb133111eb in
  h lxor (h lsr 29)

let fresh ~hash ~bc =
  let i = !size in
  if i >= Array.length !hash_store then begin
    let cap = 2 * Array.length !hash_store in
    let h' = Array.make cap 0 and b' = Array.make cap Pset.empty in
    Array.blit !hash_store 0 h' 0 i;
    Array.blit !bc_store 0 b' 0 i;
    hash_store := h';
    bc_store := b'
  end;
  !hash_store.(i) <- hash;
  !bc_store.(i) <- bc;
  size := i + 1;
  i

let rec intern_locked v =
  match v with
  | Input { proc; value } ->
    let key = K_input (proc, value) in
    (match Hashtbl.find_opt table key with
    | Some i -> i
    | None ->
      let hash = mix (mix 0x11 proc) value in
      let i = fresh ~hash ~bc:(Pset.singleton proc) in
      Hashtbl.add table key i;
      i)
  | Deriv { proc; carrier } ->
    let cids = List.map intern_locked carrier in
    let key = K_deriv (proc, cids) in
    (match Hashtbl.find_opt table key with
    | Some i -> i
    | None ->
      let hash =
        List.fold_left
          (fun h ci -> mix h !hash_store.(ci))
          (mix 0x22 proc) cids
      in
      let bc =
        List.fold_left
          (fun acc ci -> Pset.union acc !bc_store.(ci))
          Pset.empty cids
      in
      let i = fresh ~hash ~bc in
      Hashtbl.add table key i;
      i)

let id v =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) (fun () ->
      intern_locked v)

let strong_hash v =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) (fun () ->
      !hash_store.(intern_locked v))

let interned_count () =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) (fun () -> !size)

let intern_list vs =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) (fun () ->
      List.map
        (fun v ->
          let i = intern_locked v in
          (i, !hash_store.(i), !bc_store.(i)))
        vs)

(* Shallow interning for Chr's inner loop: the carrier's vertices are
   already interned, so a derived vertex is keyed (and its hash and
   base carrier computed) from the child ids alone — no recursion over
   the tree. Must mirror the [Deriv] case of [intern_locked] exactly,
   or the two paths would disagree on ids. *)
let intern_deriv_list entries =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) (fun () ->
      List.map
        (fun (proc, cids) ->
          let key = K_deriv (proc, cids) in
          match Hashtbl.find_opt table key with
          | Some i -> (i, !hash_store.(i), !bc_store.(i))
          | None ->
            let hash =
              List.fold_left
                (fun h ci -> mix h !hash_store.(ci))
                (mix 0x22 proc) cids
            in
            let bc =
              List.fold_left
                (fun acc ci -> Pset.union acc !bc_store.(ci))
                Pset.empty cids
            in
            let i = fresh ~hash ~bc in
            Hashtbl.add table key i;
            (i, hash, bc))
        entries)

let hash v = Hashtbl.hash v
