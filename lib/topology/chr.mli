(** The standard chromatic subdivision [Chr] and its iterations.

    Facets of [Chr τ] for a simplex τ correspond to ordered set
    partitions (immediate-snapshot runs) of χ(τ): the process in block
    [Bj] is mapped to the vertex [(p, τ|B1∪…∪Bj)]. Applying this to
    every facet of a complex [K] yields [Chr K]; boundary faces agree,
    so the result is a complex (Kozlov 2012 shows it is a genuine
    subdivision). *)

val standard : int -> Complex.t
(** The standard (n−1)-simplex [s] as a one-facet complex on colors
    [0..n-1], all inputs 0. *)

val subdivide_simplex : Simplex.t -> Simplex.t list
(** Facets of [Chr τ], one per ordered partition of χ(τ). *)

val subdivide : Complex.t -> Complex.t
(** [Chr K]. *)

val iterate : int -> Complex.t -> Complex.t
(** [iterate m K] = [Chr^m K]. [iterate 0] is the identity. *)

val standard_iterated : m:int -> n:int -> Complex.t
(** [iterate m (standard n)], memoized per [(m, n)]. The affine-task
    pipeline asks for these complexes repeatedly; the returned value is
    shared, so treat it as immutable. Its closure/euler caches are
    pre-forced, making it safe to share with worker domains. *)

val facet_of_run : Simplex.t -> Opart.t -> Simplex.t
(** [facet_of_run τ run]: the facet of [Chr τ] corresponding to the
    IS run [run], which must be an ordered partition of χ(τ). *)

val facet_of_runs : Simplex.t -> Opart.t list -> Simplex.t
(** [facet_of_runs τ [r1; …; rm]]: the facet of [Chr^m τ] reached by
    executing the IS runs [r1, …, rm] in order (each a full ordered
    partition of χ(τ)). *)

val run_of_facet : Simplex.t -> Opart.t
(** Inverse of {!facet_of_run}: recovers the ordered partition from a
    facet of [Chr τ] (any simplex all of whose vertex carriers cover
    exactly its colors). Raises [Invalid_argument] if the simplex is
    not such a facet. *)

val carrier : Simplex.t -> Simplex.t
(** Carrier of a simplex of [Chr K] in [K] (= {!Simplex.carrier}). *)

val is_simplex_of_chr : Simplex.t -> bool
(** Checks the containment and immediacy conditions defining simplices
    of [Chr K] over vertices [(c_i, σ_i)] (Section 2 / Appendix A). *)
