(** Chromatic simplices: sets of vertices with pairwise distinct
    colors, kept sorted by {!Vertex.compare}.

    The empty simplex is allowed as a value (it is convenient for
    carriers and restrictions) but complexes store only nonempty
    simplices.

    Internally a simplex carries interned metadata computed once at
    construction — the sorted array of vertex intern ids, the color
    bitmask and the base carrier — so [compare], [subset], [mem],
    [colors] and [base_carrier] are O(1)–O(k) integer operations
    instead of deep structural traversals. Simplices are immutable and
    safe to share across domains. *)

type t

val make : Vertex.t list -> t
(** Sorts and validates. Raises [Invalid_argument] if two vertices
    share a color or a vertex is duplicated. *)

val empty : t
val of_vertex : Vertex.t -> t

val of_chr_pairs : (int * t) list -> t
(** [of_chr_pairs [(p1, σ1); …]] builds the simplex of derived vertices
    [(p_i, σ_i)] — the facet-of-run shape of [Chr]. Equivalent to
    [make (List.map (fun (p, σ) -> Vertex.deriv p (vertices σ)) …)] but
    avoids deep re-interning and deep sorting: carriers are passed as
    already-built simplices. Raises [Invalid_argument] as {!make} /
    {!Vertex.deriv} on duplicate colors or a carrier missing its own
    color. *)

val vertices : t -> Vertex.t list
(** Vertices sorted by {!Vertex.compare}. *)

val colors : t -> Pset.t
(** χ(σ): the set of process ids of the vertices. O(1) (cached). *)

val dim : t -> int
(** Dimension: |σ| − 1 (so −1 for the empty simplex). *)

val card : t -> int
val is_empty : t -> bool
val mem : Vertex.t -> t -> bool
val find_color : int -> t -> Vertex.t option
(** The vertex of the given color, if any. *)

val subset : t -> t -> bool
(** Face relation: [subset a b] iff every vertex of [a] is in [b].
    A color-bitmask prefilter followed by a merge-walk over the sorted
    id arrays. *)

val restrict : t -> Pset.t -> t
(** Sub-simplex of the vertices whose color lies in the given set. *)

val union : t -> t -> t
(** Union as vertex sets. Raises [Invalid_argument] if two distinct
    vertices share a color. *)

val diff : t -> t -> t
val inter : t -> t -> t

val faces : t -> t list
(** All nonempty faces of the simplex ([2^|σ| − 1] of them). Memoized
    per simplex. *)

val proper_faces : t -> t list
(** All nonempty faces except the simplex itself. *)

val subsimplices : t -> t list
(** All faces including the empty one (first). *)

val interned_key : t -> int array
(** The sorted interned-id key — the canonical set representation.
    The physical array; callers must not mutate it. *)

val select_sorted_mask : t -> int -> t
(** [select_sorted_mask t m]: the face selected by bitmask [m] over
    key positions — bit [b] keeps the vertex holding the b-th smallest
    vid of [t]. The materialization step of the arena kernel; O(k),
    no sorting. *)

val fold_distinct_faces :
  seen:Face_set.t ->
  ?min_card:int ->
  ?max_card:int ->
  t ->
  init:'a ->
  f:('a -> card:int -> face:(unit -> t) -> 'a) ->
  'a
(** Streaming face enumeration: folds [f] over every nonempty face of
    the simplex with [min_card ≤ card ≤ max_card] (defaults: all)
    whose interned-id key is not yet in [seen], adding each emitted
    key to [seen]. Passing the same [seen] set across the facets of a
    complex therefore enumerates each face of the complex exactly
    once, with no intermediate face lists; [face] is lazy, so pure
    counting never constructs a simplex. Enumeration order within and
    across simplices is unspecified. *)

val carrier : t -> t
(** For a simplex of [Chr K], its carrier in [K]: the union of the
    carriers of its vertices (by containment, the largest one). For a
    simplex of a base complex, the simplex itself. Memoized per
    simplex. *)

val vertex_carrier : Vertex.t -> t
(** The carrier of a single vertex as a simplex, memoized per vertex
    intern id: for [Deriv (p, σ)] this is σ, built once and shared. *)

val base_carrier : t -> Pset.t
(** [χ(carrier(σ, s))]: processes of the base complex seen by the
    simplex through all subdivision levels. O(1) (cached). *)

val base_simplex : t -> t
(** The carrier of the simplex in the base (input) complex, as a
    simplex of base vertices — i.e. the input assignments ultimately
    seen through all subdivision levels. *)

val compare : t -> t -> int
(** A total order: primary key is the deterministic structural hash,
    with a structural fallback on collisions. Independent of intern
    order, so set iteration is reproducible across runs and domain
    counts — but note it is {e not} the lexicographic vertex order of
    the original list representation. *)

val equal : t -> t -> bool

val hash : t -> int
(** The structural hash (non-negative), consistent with {!equal} —
    usable as a [Hashtbl.HashedType] together with it. *)

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
