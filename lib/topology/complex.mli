(** Finite chromatic simplicial complexes, represented by their facets.

    A complex is stored as the set of its maximal simplices (facets)
    over a universe of [n] colors. Membership of an arbitrary simplex
    is "is a face of some facet". This matches the constructions of the
    paper, which are all given by facet sets (ordered partitions,
    filtered facets of [Chr² s], pure complements, closures). *)

type t

val of_facets : n:int -> Simplex.t list -> t
(** Builds a complex from generating simplices, discarding non-maximal
    generators and the empty simplex. *)

val n : t -> int
(** Number of colors of the universe. *)

val facets : t -> Simplex.t list
val facet_set : t -> Simplex.Set.t
val facet_count : t -> int
val is_empty : t -> bool

val mem : Simplex.t -> t -> bool
(** Is the simplex a face of some facet? The empty simplex is a member
    of any nonempty complex. *)

val all_simplices : t -> Simplex.t list
(** Every nonempty simplex of the complex (the closure of the facet
    set). Cached after the first call. *)

val fold_faces :
  ?min_card:int ->
  ?max_card:int ->
  t ->
  init:'a ->
  f:('a -> card:int -> face:(unit -> Simplex.t) -> 'a) ->
  'a
(** Streaming closure kernel: folds [f] over every nonempty face of
    the complex with [min_card ≤ card ≤ max_card] (defaults: all),
    each exactly once, without materializing an intermediate complex
    or per-facet face lists. [face] is lazy — forcing it builds (or
    retrieves) the interned simplex; a counting fold that ignores it
    allocates no simplices. Folds over the cached closure instead when
    one is already present. Enumeration order is unspecified. *)

val iter_faces :
  ?min_card:int ->
  ?max_card:int ->
  t ->
  f:(card:int -> face:(unit -> Simplex.t) -> unit) ->
  unit
(** {!fold_faces} with a unit accumulator. *)

val simplex_count : t -> int
(** Number of nonempty simplices of the complex. Streams via
    {!fold_faces} when the closure is not cached (and does not
    populate the cache); use {!all_simplices} first to force it. *)

val vertices : t -> Vertex.t list
val dimension : t -> int
(** Max facet dimension; −1 for the empty complex. *)

val is_pure : t -> bool
(** All facets have the same dimension. *)

val is_pure_of_dim : int -> t -> bool

val skeleton : int -> t -> t
(** [skeleton k c]: sub-complex of simplices of dimension ≤ k.
    Streams only the dimension-[k] slice of the closure. *)

val closure : n:int -> Simplex.t list -> t
(** [Cl(S)]: the complex of all faces of the given simplices — same as
    {!of_facets} (kept as a separate name to mirror the paper). *)

val star : Simplex.t list -> t -> Simplex.t list
(** [St(S, K)]: all simplices of [K] having a face in [S] (paper
    notation: simplices whose face set intersects [S]). *)

val pure_complement : Simplex.t list -> t -> t
(** [Pc(S, K)]: the maximal pure sub-complex of [K] of the same
    dimension as [K] that does not intersect [S] — the closure of the
    facets of [K] having no face in [S]. [K] must be pure. *)

val restrict_colors : Pset.t -> t -> t
(** Sub-complex of simplices whose base carrier is contained in the
    given color set. For [Chr^ℓ s] and a face σ ⊆ s this is exactly
    [Chr^ℓ(σ)]; for an affine task [L] it computes [∆(σ) = L ∩ Chr^ℓ(σ)]. *)

val euler_characteristic : t -> int
(** Σ (−1)^dim over all simplices. 1 for any [Chr^m s] (contractible).
    Streams via {!fold_faces} when the closure is not cached; the
    result is cached either way. *)

val filter_facets : (Simplex.t -> bool) -> t -> t
val union : t -> t -> t
val subcomplex : t -> t -> bool
(** [subcomplex a b]: every facet of [a] is a simplex of [b]. *)

val equal : t -> t -> bool
val pp_stats : Format.formatter -> t -> unit
(** One-line summary: n, facet count, dimension, purity. *)
