(* A fault-tolerant fan-out shim over OCaml 5 domains (stdlib only, no
   domainslib). Work lists are split into [domains] contiguous chunks;
   each chunk is mapped in a fresh domain and the per-chunk results are
   concatenated in order, so the output is a plain [List.map f] —
   independent of the domain count. With [domains <= 1] the sequential
   path is taken and no domain is spawned at all.

   Failure discipline (the parallel path): every spawned domain is
   joined before any exception escapes, whatever raised where — no
   leaked domains, no lost chunks. Failed chunks are retried once,
   sequentially, on the parent (the fall-back to sequential
   execution); only if the retry fails too does the call raise, with
   all per-chunk failures aggregated into a single typed
   [Fact_error.Worker_failure]. Cancellation is the exception to the
   retry rule: when every failure is a [Cancelled]/[Deadline_exceeded]
   stop request, the first one is re-raised directly — retrying
   cancelled work would defeat the point of cancelling it.

   Workers may construct simplices (and hence intern vertices): the
   intern table is mutex-protected, and everything a constructor
   returns is immutable, so results are safely published by
   [Domain.join]. Workers must not touch mutable complex caches
   (e.g. [Complex.all_simplices]) on shared complexes. *)

open Fact_resilience

let env_domains =
  match Sys.getenv_opt "FACT_DOMAINS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None -> 1

let default = Atomic.make env_domains
let set_default_domains d = Atomic.set default (max 1 d)
let default_domains () = Atomic.get default

(* Split [xs] into [k] contiguous chunks of near-equal length. *)
let chunks k xs =
  let len = List.length xs in
  let k = max 1 (min k len) in
  let base = len / k and extra = len mod k in
  let rec take n xs acc =
    if n = 0 then (List.rev acc, xs)
    else
      match xs with
      | [] -> (List.rev acc, [])
      | x :: rest -> take (n - 1) rest (x :: acc)
  in
  let rec loop i xs acc =
    if i >= k then List.rev acc
    else
      let size = base + if i < extra then 1 else 0 in
      let chunk, rest = take size xs [] in
      loop (i + 1) rest (chunk :: acc)
  in
  loop 0 xs []

let guard f = try Ok (f ()) with e -> Error (e, Printexc.get_raw_backtrace ())

let reraise (e, bt) = Printexc.raise_with_backtrace e bt

(* Run one closure per chunk — the head chunk on the calling domain,
   the rest in fresh domains — then join *every* spawned domain before
   looking at failures. Failed chunks are then retried sequentially on
   the parent; remaining failures aggregate into one [Worker_failure]. *)
let fan_out ~fn runners =
  match runners with
  | [] -> []
  | [ r ] -> r ()
  | head :: rest ->
    let workers = List.map (fun r -> Domain.spawn (fun () -> guard r)) rest in
    let head_result = guard head in
    let joined =
      List.map
        (fun d ->
          match Domain.join d with
          | r -> r
          | exception e -> Error (e, Printexc.get_raw_backtrace ()))
        workers
    in
    let results = head_result :: joined in
    let failures =
      List.filter_map (function Error (e, _) -> Some e | Ok _ -> None) results
    in
    if failures = [] then
      List.concat_map (function Ok r -> r | Error _ -> assert false) results
    else if List.for_all Fact_error.is_cancellation failures then
      (* a stop request, not a broken worker: propagate promptly *)
      reraise
        (List.find_map
           (function Error e -> Some e | Ok _ -> None)
           results
        |> Option.get)
    else begin
      (* fall back to sequential execution of the failed chunks *)
      let retried =
        List.map2
          (fun result runner ->
            match result with Ok v -> Ok v | Error _ -> guard runner)
          results (head :: rest)
      in
      let still =
        List.filter_map
          (function Error e -> Some e | Ok _ -> None)
          retried
      in
      match still with
      | [] -> List.concat_map (function Ok r -> r | Error _ -> assert false) retried
      | ((e, _) as first) :: _ ->
        if Fact_error.is_cancellation e then reraise first
        else
          Fact_error.raise_error
            (Worker_failure
               {
                 fn;
                 failed = List.length still;
                 chunks = List.length results;
                 first = Printexc.to_string e;
               })
    end

let map ?domains f xs =
  let domains =
    match domains with Some d -> d | None -> default_domains ()
  in
  if domains <= 1 then List.map f xs
  else
    match chunks domains xs with
    | ([] | [ _ ]) -> List.map f xs
    | cs ->
      fan_out ~fn:"Parallel.map"
        (List.map (fun chunk () -> List.map f chunk) cs)

let concat_map ?domains f xs = List.concat (map ?domains f xs)

let map_init ?domains init f xs =
  let domains =
    match domains with Some d -> d | None -> default_domains ()
  in
  if domains <= 1 then
    let ctx = init () in
    List.map (f ctx) xs
  else
    match chunks domains xs with
    | ([] | [ _ ]) ->
      let ctx = init () in
      List.map (f ctx) xs
    | cs ->
      fan_out ~fn:"Parallel.map_init"
        (List.map
           (fun chunk () ->
             let ctx = init () in
             List.map (f ctx) chunk)
           cs)
