(* A fault-tolerant fan-out over a persistent work-stealing pool of
   OCaml 5 domains (stdlib only, no domainslib).

   One pool per process: worker domains are spawned lazily the first
   time a fan-out asks for them, grown monotonically to the largest
   requested count minus one (the caller is always a worker too), and
   joined at process exit. Work is distributed through a shared FIFO
   injector plus one deque per worker: a worker pops its own deque
   LIFO (so nested fan-outs from inside a job run depth-first, hot in
   cache), then takes from the injector, then steals FIFO from the
   front of other workers' deques. The caller of a fan-out helps run
   jobs — any job, not just its own — until its group completes, so
   the pool never deadlocks on nested submissions. All queue state
   sits behind one mutex: jobs here are chunk-sized (milliseconds),
   so scheduler contention is noise; the design optimizes for
   determinism and simple invariants, not nanosecond queue ops.

   Cancellation: the submitter's ambient [Cancel] token is captured at
   submission and installed around each job on whichever domain runs
   it, so cancelling the submitter trips every worker processing its
   jobs (the ambient slot itself is domain-local).

   Failure discipline of [map]/[map_init] (the parallel path): every
   chunk settles before any exception escapes — no lost chunks.
   Failed chunks are retried once, sequentially, on the caller; only
   if the retry fails too does the call raise, with all per-chunk
   failures aggregated into a single typed
   [Fact_error.Worker_failure]. Cancellation is the exception to the
   retry rule: when every failure is a [Cancelled]/[Deadline_exceeded]
   stop request, the first one is re-raised directly — retrying
   cancelled work would defeat the point of cancelling it.

   Workers may construct simplices (and hence intern vertices): the
   intern table is mutex-protected, and everything a constructor
   returns is immutable, so results are safely published through the
   release/acquire pair on the pool mutex. Workers must not touch
   mutable complex caches (e.g. [Complex.all_simplices]) on shared
   complexes. *)

open Fact_resilience

let env_domains =
  match Sys.getenv_opt "FACT_DOMAINS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None -> 1

let default = Atomic.make env_domains
let set_default_domains d = Atomic.set default (max 1 d)
let default_domains () = Atomic.get default

(* Split [xs] into [k] contiguous chunks of near-equal length. *)
let chunks k xs =
  let len = List.length xs in
  let k = max 1 (min k len) in
  let base = len / k and extra = len mod k in
  let rec take n xs acc =
    if n = 0 then (List.rev acc, xs)
    else
      match xs with
      | [] -> (List.rev acc, [])
      | x :: rest -> take (n - 1) rest (x :: acc)
  in
  let rec loop i xs acc =
    if i >= k then List.rev acc
    else
      let size = base + if i < extra then 1 else 0 in
      let chunk, rest = take size xs [] in
      loop (i + 1) rest (chunk :: acc)
  in
  loop 0 xs []

let guard f = try Ok (f ()) with e -> Error (e, Printexc.get_raw_backtrace ())

let reraise (e, bt) = Printexc.raise_with_backtrace e bt

(* ------------------------------------------------------------------ *)
(* The persistent pool.                                               *)
(* ------------------------------------------------------------------ *)

(* A two-list deque: own end at the back (LIFO pop), steal end at the
   front (FIFO). Amortized O(1); always accessed under [pool.lock]. *)
module Deque = struct
  type 'a t = { mutable front : 'a list; mutable back : 'a list }
  (* [front] is front-to-back order, [back] is back-to-front. *)

  let create () = { front = []; back = [] }

  let push_back d x = d.back <- x :: d.back

  let pop_back d =
    match d.back with
    | x :: rest ->
      d.back <- rest;
      Some x
    | [] -> (
      match List.rev d.front with
      | [] -> None
      | x :: rest ->
        d.front <- [];
        d.back <- rest;
        Some x)

  let steal_front d =
    match d.front with
    | x :: rest ->
      d.front <- rest;
      Some x
    | [] -> (
      match List.rev d.back with
      | [] -> None
      | x :: rest ->
        d.back <- [];
        d.front <- rest;
        Some x)
end

type job = unit -> unit
(* Jobs never raise: results and exceptions are captured inside. *)

type pool = {
  lock : Mutex.t;
  wake : Condition.t;
      (* new work, a job completion, or shutdown — waiters re-check *)
  injector : job Queue.t;
  mutable deques : job Deque.t array; (* slot [i] belongs to worker [i] *)
  mutable workers : unit Domain.t list;
  mutable nworkers : int;
  mutable closing : bool;
  spawned : int Atomic.t; (* domains ever spawned, for the bench *)
}

let pool =
  {
    lock = Mutex.create ();
    wake = Condition.create ();
    injector = Queue.create ();
    deques = [||];
    workers = [];
    nworkers = 0;
    closing = false;
    spawned = Atomic.make 0;
  }

let domain_spawns () = Atomic.get pool.spawned

(* Which pool worker (if any) is the current domain? *)
let worker_id : int option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

(* Next job for a taker: own deque (LIFO), injector (FIFO), then steal
   (FIFO) scanning the other deques. Call with [pool.lock] held. *)
let take_locked my =
  let own =
    match my with
    | Some i when i < Array.length pool.deques ->
      Deque.pop_back pool.deques.(i)
    | _ -> None
  in
  match own with
  | Some _ as j -> j
  | None -> (
    match Queue.take_opt pool.injector with
    | Some _ as j -> j
    | None ->
      let n = Array.length pool.deques in
      let rec steal k =
        if k >= n then None
        else if my = Some k then steal (k + 1)
        else
          match Deque.steal_front pool.deques.(k) with
          | Some _ as j -> j
          | None -> steal (k + 1)
      in
      steal 0)

let worker_loop i =
  Mutex.lock pool.lock;
  let rec go () =
    match take_locked (Some i) with
    | Some job ->
      Mutex.unlock pool.lock;
      (try job () with _ -> ());
      Mutex.lock pool.lock;
      go ()
    | None ->
      if pool.closing then Mutex.unlock pool.lock
      else begin
        Condition.wait pool.wake pool.lock;
        go ()
      end
  in
  go ()

(* Grow the pool to [n] workers. Call with [pool.lock] held. *)
let ensure_workers_locked n =
  let n = max 0 (min n 126) (* leave headroom under the domain cap *) in
  if n > pool.nworkers && not pool.closing then begin
    let old = Array.length pool.deques in
    if n > old then
      pool.deques <-
        Array.init n (fun i ->
            if i < old then pool.deques.(i) else Deque.create ());
    for i = pool.nworkers to n - 1 do
      Atomic.incr pool.spawned;
      let d =
        Domain.spawn (fun () ->
            Domain.DLS.set worker_id (Some i);
            worker_loop i)
      in
      pool.workers <- d :: pool.workers
    done;
    pool.nworkers <- n
  end

let shutdown () =
  Mutex.lock pool.lock;
  pool.closing <- true;
  Condition.broadcast pool.wake;
  let ws = pool.workers in
  pool.workers <- [];
  Mutex.unlock pool.lock;
  List.iter Domain.join ws

let () = at_exit shutdown

let run_all ?workers thunks =
  match thunks with
  | [] -> []
  | [ t ] -> [ guard t ]
  | _ ->
    let requested =
      match workers with Some w -> max 1 w | None -> default_domains ()
    in
    let n = List.length thunks in
    let slots = Array.make n None in
    let remaining = ref n (* guarded by pool.lock *) in
    let tok = Cancel.current () in
    let mk i t () =
      let r = guard (fun () -> Cancel.with_token tok t) in
      Mutex.lock pool.lock;
      slots.(i) <- Some r;
      decr remaining;
      Condition.broadcast pool.wake;
      Mutex.unlock pool.lock
    in
    let jobs = List.mapi mk thunks in
    Mutex.lock pool.lock;
    ensure_workers_locked (requested - 1);
    let my = Domain.DLS.get worker_id in
    (match my with
    | Some i when i < Array.length pool.deques ->
      (* nested fan-out from inside a job: keep it on our own deque so
         it runs depth-first (and stays stealable) *)
      List.iter (Deque.push_back pool.deques.(i)) jobs
    | _ -> List.iter (fun j -> Queue.add j pool.injector) jobs);
    Condition.broadcast pool.wake;
    (* Help until the group completes: run any available job — ours or
       another group's — and sleep only when nothing is runnable
       (then our jobs are in flight on workers and their completion
       wakes us). *)
    let rec wait_done () =
      if !remaining > 0 then
        match take_locked my with
        | Some job ->
          Mutex.unlock pool.lock;
          job ();
          Mutex.lock pool.lock;
          wait_done ()
        | None ->
          if !remaining > 0 then begin
            Condition.wait pool.wake pool.lock;
            wait_done ()
          end
    in
    wait_done ();
    Mutex.unlock pool.lock;
    Array.to_list (Array.map Option.get slots)

(* ------------------------------------------------------------------ *)
(* Chunked fan-out with the retry/aggregate failure discipline.       *)
(* ------------------------------------------------------------------ *)

let fan_out ~fn ?workers runners =
  match runners with
  | [] -> []
  | [ r ] -> r ()
  | rs ->
    let results = run_all ?workers rs in
    let failures =
      List.filter_map (function Error (e, _) -> Some e | Ok _ -> None) results
    in
    if failures = [] then
      List.concat_map (function Ok r -> r | Error _ -> assert false) results
    else if List.for_all Fact_error.is_cancellation failures then
      (* a stop request, not a broken worker: propagate promptly *)
      reraise
        (List.find_map (function Error e -> Some e | Ok _ -> None) results
        |> Option.get)
    else begin
      (* fall back to sequential execution of the failed chunks *)
      let retried =
        List.map2
          (fun result runner ->
            match result with Ok v -> Ok v | Error _ -> guard runner)
          results rs
      in
      let still =
        List.filter_map (function Error e -> Some e | Ok _ -> None) retried
      in
      match still with
      | [] ->
        List.concat_map (function Ok r -> r | Error _ -> assert false) retried
      | ((e, _) as first) :: _ ->
        if Fact_error.is_cancellation e then reraise first
        else
          Fact_error.raise_error
            (Worker_failure
               {
                 fn;
                 failed = List.length still;
                 chunks = List.length results;
                 first = Printexc.to_string e;
               })
    end

let map ?domains f xs =
  let domains = match domains with Some d -> d | None -> default_domains () in
  if domains <= 1 then List.map f xs
  else
    match chunks domains xs with
    | [] | [ _ ] -> List.map f xs
    | cs ->
      fan_out ~fn:"Parallel.map" ~workers:domains
        (List.map (fun chunk () -> List.map f chunk) cs)

let concat_map ?domains f xs = List.concat (map ?domains f xs)

let map_init ?domains init f xs =
  let domains = match domains with Some d -> d | None -> default_domains () in
  if domains <= 1 then
    let ctx = init () in
    List.map (f ctx) xs
  else
    match chunks domains xs with
    | [] | [ _ ] ->
      let ctx = init () in
      List.map (f ctx) xs
    | cs ->
      fan_out ~fn:"Parallel.map_init" ~workers:domains
        (List.map
           (fun chunk () ->
             let ctx = init () in
             List.map (f ctx) chunk)
           cs)
