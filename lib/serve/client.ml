open Fact_sexp
module Fact_error = Fact_resilience.Fact_error
module Backoff = Fact_resilience.Backoff

type t = {
  fd : Unix.file_descr;
  w : Wire.writer;
  r : Wire.reader;
  mutable closed : bool;
}

let fail what = Fact_error.precondition ~fn:"Client" what

(* Transport-level failures — unreachable server, connection died
   mid-exchange, a receive timeout — are [Unavailable]: the server may
   be restarting, so a retry/backoff layer is entitled to absorb them.
   Protocol-level failures (unparseable reply) stay [Precondition]. *)
let gone what = Fact_error.unavailable ("Client: " ^ what)

let connect ?timeout_s addr =
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception (Invalid_argument _ | Sys_error _) -> ());
  let domain, sockaddr =
    match addr with
    | Listener.Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Listener.Tcp (host, port) ->
      let inet =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found | Invalid_argument _ -> fail ("unknown host " ^ host)
      in
      (Unix.PF_INET, Unix.ADDR_INET (inet, port))
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (* a bounded socket: a peer that accepted the connection but stopped
     responding (SIGSTOP, wedged) trips EAGAIN instead of hanging the
     caller forever; the error is typed Unavailable so failover logic
     moves on to a replica *)
  (match timeout_s with
  | None -> ()
  | Some s when s > 0. -> (
    try
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
    with Unix.Unix_error _ | Invalid_argument _ -> ())
  | Some _ -> ());
  (try Unix.connect fd sockaddr
   with Unix.Unix_error (err, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     gone
       (Printf.sprintf "cannot reach %s: %s"
          (Listener.addr_to_string addr)
          (Unix.error_message err)));
  { fd; w = Wire.writer fd; r = Wire.reader fd; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let roundtrip t req =
  if t.closed then fail "connection already closed";
  (try Wire.write_request t.w req
   with Unix.Unix_error (err, _, _) ->
     gone ("send failed: " ^ Unix.error_message err));
  match Wire.read_frame_view t.r ~max_frame:Wire.default_max_frame with
  | Error Wire.Eof -> gone "server closed the connection"
  | Error Wire.Truncated -> gone "truncated reply"
  | Error (Wire.Oversized n) -> fail (Printf.sprintf "oversized reply (%d bytes)" n)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _)
    -> gone "receive timed out"
  | exception Unix.Unix_error (err, _, _) ->
    gone ("receive failed: " ^ Unix.error_message err)
  | Ok (raw, len) -> (
    match
      let ( let* ) r f = Result.bind r f in
      let* sx = Sexp.of_substring raw ~pos:0 ~len in
      Wire.response_of_sexp sx
    with
    | Ok resp -> resp
    | Error msg -> fail ("bad reply: " ^ msg))

let query t ?deadline_s q =
  match roundtrip t (Wire.Query { query = q; deadline_s }) with
  | Wire.Payload { payload; source } -> (payload, source)
  | Wire.Refused e -> Fact_error.raise_error e
  | _ -> fail "unexpected reply to query"

let put t q ~payload =
  match roundtrip t (Wire.Put { query = q; payload }) with
  | Wire.Stored { already } -> already
  | Wire.Refused e -> Fact_error.raise_error e
  | _ -> fail "unexpected reply to put"

let stats t =
  match roundtrip t Wire.Stats with
  | Wire.Stats_payload s -> s
  | Wire.Refused e -> Fact_error.raise_error e
  | _ -> fail "unexpected reply to stats"

let ping t =
  match roundtrip t Wire.Ping with
  | Wire.Pong -> ()
  | Wire.Refused e -> Fact_error.raise_error e
  | _ -> fail "unexpected reply to ping"

let shutdown t =
  match roundtrip t Wire.Shutdown with
  | Wire.Shutting_down -> ()
  | Wire.Refused e -> Fact_error.raise_error e
  | _ -> fail "unexpected reply to shutdown"

let with_connection ?timeout_s addr f =
  let t = connect ?timeout_s addr in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(* --------------------------- retry layer --------------------------- *)

let with_retries ?(retries = 2) ?(backoff = Backoff.default) ?timeout_s addr f =
  let rec go attempt =
    match with_connection ?timeout_s addr f with
    | v -> v
    | exception Fact_error.Error (Fact_error.Unavailable _ as e) ->
      if attempt >= retries then Fact_error.raise_error e
      else begin
        Backoff.sleep backoff ~attempt;
        go (attempt + 1)
      end
  in
  go 0

let query_with_retry ?retries ?backoff ?timeout_s ?deadline_s addr q =
  with_retries ?retries ?backoff ?timeout_s addr (fun t ->
      query t ?deadline_s q)
