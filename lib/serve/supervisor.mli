(** Process supervision for cluster workers.

    Each slot owns one worker process ([fact serve] over a Unix-domain
    socket). A monitor thread per slot blocks in [waitpid]; when the
    child dies — crash, [kill -9], OOM — the monitor restarts it after
    an exponential {!Fact_resilience.Backoff} delay and re-probes
    readiness (ping until the socket answers) before declaring it
    [Up].

    {b Fuse.} A worker that crash-loops — more than [restart_budget]
    exits without ever staying up [reset_after_s] — is {b fused}: the
    supervisor stops restarting it and the slot reports
    [Fused], which the routing layer treats like [Unavailable] (skip
    the replica, fail over). A worker that holds steady for
    [reset_after_s] earns its budget back, so occasional kills never
    accumulate into a fuse.

    Slots are identified by index [0 .. n-1]; the cluster maps
    (shard, replica) onto slot ids. *)

type state =
  | Starting  (** spawned, socket not answering yet *)
  | Up of int  (** live, with current pid *)
  | Restarting of int  (** dead; attempt number of the pending respawn *)
  | Fused  (** crash-looped past the restart budget; left down *)
  | Stopped  (** supervisor shut the worker down *)

val state_to_string : state -> string

type t

val default_binary : unit -> string
(** The worker executable: [$FACT_WORKER_BIN] if set, else the
    sibling [fact] binary from the dune build tree when running under
    [dune runtest], else {!Sys.executable_name} (correct inside [fact
    cluster] itself). *)

val create :
  ?policy:Fact_resilience.Backoff.policy ->
  ?restart_budget:int ->
  ?reset_after_s:float ->
  ?ready_timeout_s:float ->
  ?on_up:(int -> unit) ->
  binary:string ->
  argv:(int -> string array) ->
  sock:(int -> string) ->
  n:int ->
  unit ->
  t
(** [argv id] is the full argument vector (argv.(0) included) for slot
    [id]; [sock id] the Unix socket its worker will answer on (used
    for readiness pings and graceful shutdown). [on_up id] fires after
    {e every} transition to [Up] — including the first — from the
    monitor thread; the cluster uses it to reset health and clear
    replication bookkeeping for the restarted store. *)

val start : t -> unit
(** Spawns every slot and blocks until each is [Up] or its ready
    timeout lapses (the slot then stays [Starting] and the monitor
    takes over). Raises a typed [Unavailable] error if a worker binary
    cannot be spawned at all. *)

val state : t -> int -> state
val restarts : t -> int -> int
(** Total restarts performed for the slot, fuse resets included. *)

val pid : t -> int -> int option
(** Pid when the slot's process exists ([Starting]/[Up]). *)

val kill : t -> int -> unit
(** [SIGKILL] the slot's process (chaos / CI). The monitor notices and
    restarts it under the normal backoff/fuse rules. No-op on a slot
    with no live process. *)

val pause : t -> int -> unit
(** [SIGSTOP]: the process stays alive but stops answering — a
    heartbeat-loss fault. *)

val resume : t -> int -> unit
(** [SIGCONT] after {!pause}. *)

val stats_lines : t -> string list
(** One line per slot: id, state, pid, restart count. *)

val stop : t -> unit
(** Graceful teardown: asks each live worker to shut down over its
    socket, escalates to [SIGTERM] then [SIGKILL], reaps every child
    and joins every monitor. Idempotent. *)
