let code_version = "fact-serve-1"

let of_string s = Stdlib.Digest.to_hex (Stdlib.Digest.string s)

let of_query q =
  of_string (code_version ^ "\n" ^ Fact_sexp.Sexp.to_string (Query.to_sexp q))
