open Fact_sexp
module Fact_error = Fact_resilience.Fact_error

let store_version = 1
let suffix = ".fact"

type stats = {
  puts : int;
  gets : int;
  hits : int;
  misses : int;
  corrupt : int;
  swept : int;
}

type t = {
  dir : string;
  lock : Mutex.t;
  mutable puts : int;
  mutable gets : int;
  mutable hits : int;
  mutable misses : int;
  mutable corrupt : int;
  mutable swept : int;
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    match Unix.mkdir dir 0o755 with
    | () -> ()
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* A crashed writer leaves a [.<digest>...tmp] behind; it was never
   renamed, so it holds no committed data — sweep it at boot. *)
let sweep_tmp dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | files ->
    Array.fold_left
      (fun n f ->
        if Filename.check_suffix f ".tmp" then (
          (try Sys.remove (Filename.concat dir f) with Sys_error _ -> ());
          n + 1)
        else n)
      0 files

let open_dir dir =
  mkdir_p dir;
  (match Sys.is_directory dir with
  | true -> ()
  | false | (exception Sys_error _) ->
    Fact_error.precondition ~fn:"Store.open_dir"
      (Printf.sprintf "%s is not a directory" dir));
  let swept = sweep_tmp dir in
  { dir; lock = Mutex.create (); puts = 0; gets = 0; hits = 0; misses = 0;
    corrupt = 0; swept }

let dir t = t.dir

let counted t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let path t digest = Filename.concat t.dir (digest ^ suffix)

let entry_sexp ~digest ~query ~payload =
  Sexp.List
    [
      Sexp.List [ Sexp.Atom "store-version"; Sexp.int store_version ];
      Sexp.List [ Sexp.Atom "code"; Sexp.Atom Digest.code_version ];
      Sexp.List [ Sexp.Atom "digest"; Sexp.Atom digest ];
      Sexp.List [ Sexp.Atom "query"; query ];
      Sexp.List [ Sexp.Atom "payload"; Sexp.Atom payload ];
    ]

let put t ~digest ~query ~payload =
  let final = path t digest in
  let tmp =
    Filename.temp_file ~temp_dir:t.dir ("." ^ digest) ".tmp"
  in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Sexp.to_string (entry_sexp ~digest ~query ~payload));
      output_char oc '\n';
      (* fsync before the rename: a worker killed mid-put must never
         commit a truncated entry under a valid name. Without it the
         rename can hit disk before the data does. *)
      flush oc;
      try Unix.fsync (Unix.descr_of_out_channel oc)
      with Unix.Unix_error _ -> ());
  Sys.rename tmp final;
  counted t (fun () -> t.puts <- t.puts + 1)

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e

let parse_entry ~digest s =
  let* sx = Sexp.of_string (String.trim s) in
  let* v = Sexp.assoc "store-version" sx in
  let* v = Sexp.to_int v in
  let* code = Sexp.assoc "code" sx in
  let* code = Sexp.to_atom code in
  let* d = Sexp.assoc "digest" sx in
  let* d = Sexp.to_atom d in
  let* query = Sexp.assoc "query" sx in
  let* payload = Sexp.assoc "payload" sx in
  let* payload = Sexp.to_atom payload in
  if v <> store_version then Error "stale store version"
  else if code <> Digest.code_version then Error "stale code version"
  else if d <> digest then Error "digest mismatch"
  else Ok (query, payload)

(* A failed read drops the entry: stale and corrupt files degrade to
   recomputes instead of accumulating. *)
let read_valid t digest =
  let file = path t digest in
  match
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error _ -> None
  | exception End_of_file -> None
  | s -> (
    match parse_entry ~digest s with
    | Ok entry -> Some entry
    | Error _ ->
      (try Sys.remove file with Sys_error _ -> ());
      counted t (fun () -> t.corrupt <- t.corrupt + 1);
      None)

let get t ~digest =
  counted t (fun () -> t.gets <- t.gets + 1);
  match read_valid t digest with
  | Some (_, payload) ->
    counted t (fun () -> t.hits <- t.hits + 1);
    Some payload
  | None ->
    counted t (fun () -> t.misses <- t.misses + 1);
    None

let has t ~digest = Sys.file_exists (path t digest)

let digests_on_disk t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> []
  | files ->
    Array.to_list files
    |> List.filter_map (fun f ->
           if Filename.check_suffix f suffix then
             Some (Filename.chop_suffix f suffix)
           else None)
    |> List.sort compare

let iter t f =
  List.iter
    (fun digest ->
      match read_valid t digest with
      | Some (query, payload) -> f ~digest ~query ~payload
      | None -> ())
    (digests_on_disk t)

let entries t = List.length (digests_on_disk t)

let stats t =
  counted t (fun () ->
      { puts = t.puts; gets = t.gets; hits = t.hits; misses = t.misses;
        corrupt = t.corrupt; swept = t.swept })
