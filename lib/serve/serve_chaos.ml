module Fact_error = Fact_resilience.Fact_error
module Cache = Fact_resilience.Cache

type stats = {
  injected : int;
  disconnects : int;
  corruptions : int;
  evictions : int;
  bad_frames : int;
  typed_errors : int;
  recovered : int;
  violations : string list;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>serve chaos: %d faults injected@,\
     \ disconnects       %d@,\
     \ store corruptions %d@,\
     \ forced evictions  %d@,\
     \ bad frames        %d@,\
     \ typed refusals    %d@,\
     \ recovered         %d@,\
     \ violations        %d@]"
    s.injected s.disconnects s.corruptions s.evictions s.bad_frames
    s.typed_errors s.recovered (List.length s.violations);
  List.iter (fun v -> Format.fprintf ppf "@,  VIOLATION: %s" v) s.violations

type ctx = {
  rng : Random.State.t;
  sock_path : string;
  store : Store.t;
  listener : Listener.t;
  reference : string;  (* fault-free payload for [ref_query] *)
  mutable disconnects : int;
  mutable corruptions : int;
  mutable evictions : int;
  mutable bad_frames : int;
  mutable typed_errors : int;
  mutable recovered : int;
  mutable violations : string list;
}

let ref_query = Query.Ra { n = 2; adv = Query.Preset "wait-free" }

let violation ctx fmt =
  Printf.ksprintf (fun m -> ctx.violations <- m :: ctx.violations) fmt

let addr ctx = Listener.Unix_sock ctx.sock_path

(* Checks the server end-to-end after a fault: a fresh client must get
   the byte-identical fault-free payload. *)
let check_recovered ctx what =
  match
    Client.with_connection (addr ctx) (fun c -> fst (Client.query c ref_query))
  with
  | payload ->
    if String.equal payload ctx.reference then ctx.recovered <- ctx.recovered + 1
    else violation ctx "%s: payload drifted from reference" what
  | exception Fact_error.Error e ->
    violation ctx "%s: recovery query refused: %s" what (Fact_error.to_string e)
  | exception e ->
    violation ctx "%s: untyped escape: %s" what (Printexc.to_string e)

let raw_connect ctx =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX ctx.sock_path);
  fd

(* ----------------------------- faults ------------------------------ *)

let inject_disconnect ctx =
  ctx.disconnects <- ctx.disconnects + 1;
  (* send a valid query, hang up without reading the response: the
     server's write hits a dead peer mid-response *)
  (match raw_connect ctx with
  | fd ->
    let req = Wire.Query { query = ref_query; deadline_s = None } in
    (try
       Wire.write_frame fd
         (Fact_sexp.Sexp.to_string (Wire.request_to_sexp req))
     with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ());
  Thread.yield ();
  check_recovered ctx "disconnect"

let inject_corruption ctx =
  ctx.corruptions <- ctx.corruptions + 1;
  let digest = Digest.of_query ref_query in
  let file = Filename.concat (Store.dir ctx.store) (digest ^ ".fact") in
  let garbage =
    if Random.State.bool ctx.rng then "((store-version 1) (truncated"
    else String.init 64 (fun _ -> Char.chr (Random.State.int ctx.rng 256))
  in
  let oc = open_out file in
  output_string oc garbage;
  close_out oc;
  (* the defensive read must drop the entry, not surface garbage *)
  (match Store.get ctx.store ~digest with
  | None -> ctx.typed_errors <- ctx.typed_errors + 1
  | Some payload ->
    if String.equal payload ctx.reference then ()
    else violation ctx "corruption: store served garbage"
  | exception e ->
    violation ctx "corruption: untyped escape: %s" (Printexc.to_string e));
  (* and a served query must recompute (or answer from memory) fine *)
  check_recovered ctx "corruption"

let inject_eviction ctx =
  ctx.evictions <- ctx.evictions + 1;
  (* flush every bounded cache while requests are in flight *)
  let results = Array.make 3 None in
  let workers =
    Array.init 3 (fun i ->
        Thread.create
          (fun () ->
            results.(i) <-
              Some
                (try
                   `Payload
                     (Client.with_connection (addr ctx) (fun c ->
                          fst (Client.query c ref_query)))
                 with
                | Fact_error.Error e -> `Typed e
                | e -> `Untyped (Printexc.to_string e)))
          ())
  in
  Cache.force_evict_all ();
  Array.iter Thread.join workers;
  Array.iter
    (function
      | Some (`Payload p) ->
        if String.equal p ctx.reference then ctx.recovered <- ctx.recovered + 1
        else violation ctx "eviction: payload drifted from reference"
      | Some (`Typed e) ->
        violation ctx "eviction: query refused: %s" (Fact_error.to_string e)
      | Some (`Untyped m) -> violation ctx "eviction: untyped escape: %s" m
      | None -> violation ctx "eviction: worker produced no result")
    results

let inject_bad_frame ctx =
  ctx.bad_frames <- ctx.bad_frames + 1;
  if Random.State.bool ctx.rng then begin
    (* well-framed garbage: typed refusal, connection stays usable *)
    match raw_connect ctx with
    | exception Unix.Unix_error _ -> violation ctx "bad-frame: connect failed"
    | fd ->
      let finish () = try Unix.close fd with Unix.Unix_error _ -> () in
      (match
         Wire.write_frame fd "((this is (not a request";
         Wire.read_frame ~max_frame:Wire.default_max_frame fd
       with
      | Ok raw -> (
        match
          Result.bind (Fact_sexp.Sexp.of_string raw) Wire.response_of_sexp
        with
        | Ok (Wire.Refused (Fact_error.Precondition _)) ->
          ctx.typed_errors <- ctx.typed_errors + 1;
          (* same connection must still answer *)
          (try
             Wire.write_frame fd
               (Fact_sexp.Sexp.to_string (Wire.request_to_sexp Wire.Ping));
             match Wire.read_frame ~max_frame:Wire.default_max_frame fd with
             | Ok _ -> ctx.recovered <- ctx.recovered + 1
             | Error _ -> violation ctx "bad-frame: connection died after refusal"
           with Unix.Unix_error _ ->
             violation ctx "bad-frame: connection died after refusal")
        | Ok _ -> violation ctx "bad-frame: expected a Precondition refusal"
        | Error m -> violation ctx "bad-frame: unreadable reply: %s" m)
      | Error _ -> violation ctx "bad-frame: no reply to malformed request"
      | exception Unix.Unix_error (e, _, _) ->
        violation ctx "bad-frame: %s" (Unix.error_message e));
      finish ()
  end
  else begin
    (* oversized length prefix: typed refusal, then the server closes *)
    match raw_connect ctx with
    | exception Unix.Unix_error _ -> violation ctx "oversized: connect failed"
    | fd ->
      let hdr = Bytes.create 4 in
      Bytes.set_int32_be hdr 0 (Int32.of_int (Wire.default_max_frame + 1));
      (match
         let rec write_all off len =
           if len > 0 then begin
             let n = Unix.write fd hdr off len in
             write_all (off + n) (len - n)
           end
         in
         write_all 0 4;
         Wire.read_frame ~max_frame:Wire.default_max_frame fd
       with
      | Ok raw -> (
        match
          Result.bind (Fact_sexp.Sexp.of_string raw) Wire.response_of_sexp
        with
        | Ok (Wire.Refused (Fact_error.Resource_limit _)) ->
          ctx.typed_errors <- ctx.typed_errors + 1
        | Ok _ -> violation ctx "oversized: expected a Resource_limit refusal"
        | Error m -> violation ctx "oversized: unreadable reply: %s" m)
      | Error _ -> violation ctx "oversized: no reply"
      | exception Unix.Unix_error (e, _, _) ->
        violation ctx "oversized: %s" (Unix.error_message e));
      (try Unix.close fd with Unix.Unix_error _ -> ())
  end;
  (* whatever happened, the listener itself must still serve *)
  check_recovered ctx "bad-frame"

(* ------------------------------- run ------------------------------- *)

let fresh_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec go i =
    let d =
      Filename.concat base
        (Printf.sprintf "fact-serve-chaos-%d-%d" (Unix.getpid ()) i)
    in
    match Unix.mkdir d 0o700 with
    | () -> d
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (i + 1)
  in
  go 0

let rm_rf dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | files ->
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      files;
    (try Unix.rmdir dir with Unix.Unix_error _ -> ())

let run ?(seed = 0) ~max_faults () =
  if max_faults < 1 then
    Fact_error.precondition ~fn:"Serve_chaos.run" "max_faults must be >= 1";
  let dir = fresh_dir () in
  let sock_path = Filename.concat dir "chaos.sock" in
  let store = Store.open_dir (Filename.concat dir "store") in
  let scheduler = Scheduler.create ~store () in
  let listener = Listener.start ~scheduler (Listener.Unix_sock sock_path) in
  let finally () =
    (try Listener.stop listener with _ -> ());
    rm_rf (Filename.concat dir "store");
    rm_rf dir
  in
  Fun.protect ~finally (fun () ->
      let reference =
        Client.with_connection (Listener.Unix_sock sock_path) (fun c ->
            fst (Client.query c ref_query))
      in
      let ctx =
        {
          rng = Random.State.make [| seed; 0x5e12e |];
          sock_path;
          store;
          listener;
          reference;
          disconnects = 0;
          corruptions = 0;
          evictions = 0;
          bad_frames = 0;
          typed_errors = 0;
          recovered = 0;
          violations = [];
        }
      in
      ignore (Listener.addr ctx.listener);
      for _ = 1 to max_faults do
        match Random.State.int ctx.rng 4 with
        | 0 -> inject_disconnect ctx
        | 1 -> inject_corruption ctx
        | 2 -> inject_eviction ctx
        | _ -> inject_bad_frame ctx
      done;
      {
        injected = max_faults;
        disconnects = ctx.disconnects;
        corruptions = ctx.corruptions;
        evictions = ctx.evictions;
        bad_frames = ctx.bad_frames;
        typed_errors = ctx.typed_errors;
        recovered = ctx.recovered;
        violations = List.rev ctx.violations;
      })
