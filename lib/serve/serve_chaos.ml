module Fact_error = Fact_resilience.Fact_error
module Cache = Fact_resilience.Cache
module Backoff = Fact_resilience.Backoff

type stats = {
  injected : int;
  disconnects : int;
  corruptions : int;
  evictions : int;
  bad_frames : int;
  typed_errors : int;
  recovered : int;
  violations : string list;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>serve chaos: %d faults injected@,\
     \ disconnects       %d@,\
     \ store corruptions %d@,\
     \ forced evictions  %d@,\
     \ bad frames        %d@,\
     \ typed refusals    %d@,\
     \ recovered         %d@,\
     \ violations        %d@]"
    s.injected s.disconnects s.corruptions s.evictions s.bad_frames
    s.typed_errors s.recovered (List.length s.violations);
  List.iter (fun v -> Format.fprintf ppf "@,  VIOLATION: %s" v) s.violations

type ctx = {
  rng : Random.State.t;
  sock_path : string;
  store : Store.t;
  listener : Listener.t;
  reference : string;  (* fault-free payload for [ref_query] *)
  mutable disconnects : int;
  mutable corruptions : int;
  mutable evictions : int;
  mutable bad_frames : int;
  mutable typed_errors : int;
  mutable recovered : int;
  mutable violations : string list;
}

let ref_query = Query.Ra { n = 2; adv = Query.Preset "wait-free" }

let violation ctx fmt =
  Printf.ksprintf (fun m -> ctx.violations <- m :: ctx.violations) fmt

let addr ctx = Listener.Unix_sock ctx.sock_path

(* Checks the server end-to-end after a fault: a fresh client must get
   the byte-identical fault-free payload. *)
let check_recovered ctx what =
  match
    Client.with_connection (addr ctx) (fun c -> fst (Client.query c ref_query))
  with
  | payload ->
    if String.equal payload ctx.reference then ctx.recovered <- ctx.recovered + 1
    else violation ctx "%s: payload drifted from reference" what
  | exception Fact_error.Error e ->
    violation ctx "%s: recovery query refused: %s" what (Fact_error.to_string e)
  | exception e ->
    violation ctx "%s: untyped escape: %s" what (Printexc.to_string e)

let raw_connect ctx =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX ctx.sock_path);
  fd

(* ----------------------------- faults ------------------------------ *)

let inject_disconnect ctx =
  ctx.disconnects <- ctx.disconnects + 1;
  (* send a valid query, hang up without reading the response: the
     server's write hits a dead peer mid-response *)
  (match raw_connect ctx with
  | fd ->
    let req = Wire.Query { query = ref_query; deadline_s = None } in
    (try
       Wire.write_frame fd
         (Fact_sexp.Sexp.to_string (Wire.request_to_sexp req))
     with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ());
  Thread.yield ();
  check_recovered ctx "disconnect"

let inject_corruption ctx =
  ctx.corruptions <- ctx.corruptions + 1;
  let digest = Digest.of_query ref_query in
  let file = Filename.concat (Store.dir ctx.store) (digest ^ ".fact") in
  let garbage =
    if Random.State.bool ctx.rng then "((store-version 1) (truncated"
    else String.init 64 (fun _ -> Char.chr (Random.State.int ctx.rng 256))
  in
  let oc = open_out file in
  output_string oc garbage;
  close_out oc;
  (* the defensive read must drop the entry, not surface garbage *)
  (match Store.get ctx.store ~digest with
  | None -> ctx.typed_errors <- ctx.typed_errors + 1
  | Some payload ->
    if String.equal payload ctx.reference then ()
    else violation ctx "corruption: store served garbage"
  | exception e ->
    violation ctx "corruption: untyped escape: %s" (Printexc.to_string e));
  (* and a served query must recompute (or answer from memory) fine *)
  check_recovered ctx "corruption"

let inject_eviction ctx =
  ctx.evictions <- ctx.evictions + 1;
  (* flush every bounded cache while requests are in flight *)
  let results = Array.make 3 None in
  let workers =
    Array.init 3 (fun i ->
        Thread.create
          (fun () ->
            results.(i) <-
              Some
                (try
                   `Payload
                     (Client.with_connection (addr ctx) (fun c ->
                          fst (Client.query c ref_query)))
                 with
                | Fact_error.Error e -> `Typed e
                | e -> `Untyped (Printexc.to_string e)))
          ())
  in
  Cache.force_evict_all ();
  Array.iter Thread.join workers;
  Array.iter
    (function
      | Some (`Payload p) ->
        if String.equal p ctx.reference then ctx.recovered <- ctx.recovered + 1
        else violation ctx "eviction: payload drifted from reference"
      | Some (`Typed e) ->
        violation ctx "eviction: query refused: %s" (Fact_error.to_string e)
      | Some (`Untyped m) -> violation ctx "eviction: untyped escape: %s" m
      | None -> violation ctx "eviction: worker produced no result")
    results

let inject_bad_frame ctx =
  ctx.bad_frames <- ctx.bad_frames + 1;
  if Random.State.bool ctx.rng then begin
    (* well-framed garbage: typed refusal, connection stays usable *)
    match raw_connect ctx with
    | exception Unix.Unix_error _ -> violation ctx "bad-frame: connect failed"
    | fd ->
      let finish () = try Unix.close fd with Unix.Unix_error _ -> () in
      (match
         Wire.write_frame fd "((this is (not a request";
         Wire.read_frame ~max_frame:Wire.default_max_frame fd
       with
      | Ok raw -> (
        match
          Result.bind (Fact_sexp.Sexp.of_string raw) Wire.response_of_sexp
        with
        | Ok (Wire.Refused (Fact_error.Precondition _)) ->
          ctx.typed_errors <- ctx.typed_errors + 1;
          (* same connection must still answer *)
          (try
             Wire.write_frame fd
               (Fact_sexp.Sexp.to_string (Wire.request_to_sexp Wire.Ping));
             match Wire.read_frame ~max_frame:Wire.default_max_frame fd with
             | Ok _ -> ctx.recovered <- ctx.recovered + 1
             | Error _ -> violation ctx "bad-frame: connection died after refusal"
           with Unix.Unix_error _ ->
             violation ctx "bad-frame: connection died after refusal")
        | Ok _ -> violation ctx "bad-frame: expected a Precondition refusal"
        | Error m -> violation ctx "bad-frame: unreadable reply: %s" m)
      | Error _ -> violation ctx "bad-frame: no reply to malformed request"
      | exception Unix.Unix_error (e, _, _) ->
        violation ctx "bad-frame: %s" (Unix.error_message e));
      finish ()
  end
  else begin
    (* oversized length prefix: typed refusal, then the server closes *)
    match raw_connect ctx with
    | exception Unix.Unix_error _ -> violation ctx "oversized: connect failed"
    | fd ->
      let hdr = Bytes.create 4 in
      Bytes.set_int32_be hdr 0 (Int32.of_int (Wire.default_max_frame + 1));
      (match
         let rec write_all off len =
           if len > 0 then begin
             let n = Unix.write fd hdr off len in
             write_all (off + n) (len - n)
           end
         in
         write_all 0 4;
         Wire.read_frame ~max_frame:Wire.default_max_frame fd
       with
      | Ok raw -> (
        match
          Result.bind (Fact_sexp.Sexp.of_string raw) Wire.response_of_sexp
        with
        | Ok (Wire.Refused (Fact_error.Resource_limit _)) ->
          ctx.typed_errors <- ctx.typed_errors + 1
        | Ok _ -> violation ctx "oversized: expected a Resource_limit refusal"
        | Error m -> violation ctx "oversized: unreadable reply: %s" m)
      | Error _ -> violation ctx "oversized: no reply"
      | exception Unix.Unix_error (e, _, _) ->
        violation ctx "oversized: %s" (Unix.error_message e));
      (try Unix.close fd with Unix.Unix_error _ -> ())
  end;
  (* whatever happened, the listener itself must still serve *)
  check_recovered ctx "bad-frame"

(* ------------------------------- run ------------------------------- *)

let fresh_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec go i =
    let d =
      Filename.concat base
        (Printf.sprintf "fact-serve-chaos-%d-%d" (Unix.getpid ()) i)
    in
    match Unix.mkdir d 0o700 with
    | () -> d
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (i + 1)
  in
  go 0

let rm_rf dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | files ->
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      files;
    (try Unix.rmdir dir with Unix.Unix_error _ -> ())

(* ------------------------- cluster storms -------------------------- *)

type cluster_stats = {
  c_injected : int;
  kills : int;
  replica_corruptions : int;
  stalls : int;
  blackouts : int;
  c_recovered : int;
  repaired_replicas : int;
  c_violations : string list;
}

let pp_cluster_stats ppf s =
  Format.fprintf ppf
    "@[<v>cluster chaos: %d faults injected@,\
     \ worker kills (-9)   %d@,\
     \ replica corruptions %d@,\
     \ heartbeat stalls    %d@,\
     \ shard blackouts     %d@,\
     \ recovered           %d@,\
     \ repaired replicas   %d@,\
     \ violations          %d@]"
    s.c_injected s.kills s.replica_corruptions s.stalls s.blackouts
    s.c_recovered s.repaired_replicas (List.length s.c_violations);
  List.iter (fun v -> Format.fprintf ppf "@,  VIOLATION: %s" v) s.c_violations

type cctx = {
  crng : Random.State.t;
  cluster : Cluster.t;
  shards : int;
  replicas : int;
  creference : string;  (* one-shot [Query.eval ref_query] *)
  ref_shard : int;
  ref_digest : string;
  mutable kills : int;
  mutable replica_corruptions : int;
  mutable stalls : int;
  mutable blackouts : int;
  mutable c_recovered : int;
  mutable repaired_replicas : int;
  mutable c_violations : string list;
}

let cviolation ctx fmt =
  Printf.ksprintf (fun m -> ctx.c_violations <- m :: ctx.c_violations) fmt

(* one front-tier query, straight through the handler *)
let cquery ctx =
  match
    Cluster.handler ctx.cluster (Wire.Query { query = ref_query; deadline_s = None })
  with
  | Wire.Payload { payload; source } -> Ok (payload, source)
  | Wire.Refused e -> Error (Fact_error.to_string e)
  | _ -> Error "unexpected response shape"
  | exception e -> Error ("untyped escape: " ^ Printexc.to_string e)

(* availability invariant: after any fault, a query must succeed with
   the byte-identical one-shot payload *)
let ccheck ctx what =
  match cquery ctx with
  | Ok (payload, _) ->
    if String.equal payload ctx.creference then
      ctx.c_recovered <- ctx.c_recovered + 1
    else cviolation ctx "%s: payload drifted from one-shot eval" what
  | Error m -> cviolation ctx "%s: query failed: %s" what m

let wait_state ctx ~shard ~replica ~timeout_s pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec poll () =
    if pred (Cluster.worker_state ctx.cluster ~shard ~replica) then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.05;
      poll ()
    end
  in
  poll ()

let wait_up ctx ~shard ~replica what =
  if
    not
      (wait_state ctx ~shard ~replica ~timeout_s:15. (function
        | Supervisor.Up _ -> true
        | _ -> false))
  then
    cviolation ctx "%s: worker %d/%d not restarted (state %s)" what shard
      replica
      (Supervisor.state_to_string (Cluster.worker_state ctx.cluster ~shard ~replica))

let ref_entry_path ctx ~replica =
  Filename.concat
    (Cluster.worker_dir ctx.cluster ~shard:ctx.ref_shard ~replica)
    (ctx.ref_digest ^ ".fact")

(* read-repair convergence: after a query, the replica's store must
   regain the reference entry *)
let wait_repaired ctx ~replica what =
  let deadline = Unix.gettimeofday () +. 10. in
  let rec poll () =
    if Sys.file_exists (ref_entry_path ctx ~replica) then begin
      ctx.repaired_replicas <- ctx.repaired_replicas + 1;
      true
    end
    else if Unix.gettimeofday () > deadline then begin
      cviolation ctx "%s: read-repair did not restore replica %d of shard %d"
        what replica ctx.ref_shard;
      false
    end
    else begin
      ignore (cquery ctx);
      Thread.delay 0.1;
      poll ()
    end
  in
  poll ()

(* kill -9 a random worker while requests are in flight *)
let inject_kill ctx =
  ctx.kills <- ctx.kills + 1;
  let shard = Random.State.int ctx.crng ctx.shards in
  let replica = Random.State.int ctx.crng ctx.replicas in
  let outcomes = Array.make 3 (Error "no result") in
  let clients =
    Array.init 3 (fun i -> Thread.create (fun () -> outcomes.(i) <- cquery ctx) ())
  in
  Cluster.kill_worker ctx.cluster ~shard ~replica;
  Array.iter Thread.join clients;
  Array.iter
    (function
      | Ok (payload, _) ->
        if String.equal payload ctx.creference then
          ctx.c_recovered <- ctx.c_recovered + 1
        else cviolation ctx "kill: mid-request payload drifted"
      | Error m -> cviolation ctx "kill: mid-request query failed: %s" m)
    outcomes;
  wait_up ctx ~shard ~replica "kill";
  ccheck ctx "kill"

(* corrupt the reference entry in one replica's store, then kill that
   worker: the restart must quarantine the garbage (never serve it)
   and read-repair must put the entry back *)
let inject_replica_corruption ctx =
  ctx.replica_corruptions <- ctx.replica_corruptions + 1;
  let replica = Random.State.int ctx.crng ctx.replicas in
  let file = ref_entry_path ctx ~replica in
  let garbage =
    if Random.State.bool ctx.crng then "((store-version 1) (truncated"
    else String.init 64 (fun _ -> Char.chr (Random.State.int ctx.crng 256))
  in
  (try
     let oc = open_out file in
     output_string oc garbage;
     close_out oc
   with Sys_error _ -> ());
  Cluster.kill_worker ctx.cluster ~shard:ctx.ref_shard ~replica;
  wait_up ctx ~shard:ctx.ref_shard ~replica "corruption";
  ccheck ctx "corruption";
  ignore (wait_repaired ctx ~replica "corruption")

(* SIGSTOP: the worker is alive but silent; heartbeats must mark it
   down and routing must prefer its twin *)
let inject_stall ctx =
  ctx.stalls <- ctx.stalls + 1;
  let shard = Random.State.int ctx.crng ctx.shards in
  let replica = Random.State.int ctx.crng ctx.replicas in
  Cluster.pause_worker ctx.cluster ~shard ~replica;
  (* two heartbeat periods at 0.2s, fail_threshold 2: health flips *)
  Thread.delay 0.6;
  ccheck ctx "stall";
  Cluster.resume_worker ctx.cluster ~shard ~replica;
  ccheck ctx "stall-resume"

(* kill every replica of the reference shard at once: the front tier
   must degrade to local evaluation rather than fail, and the shard's
   stores must be repopulated once the workers return *)
let inject_blackout ctx =
  ctx.blackouts <- ctx.blackouts + 1;
  for replica = 0 to ctx.replicas - 1 do
    Cluster.kill_worker ctx.cluster ~shard:ctx.ref_shard ~replica
  done;
  ccheck ctx "blackout";
  for replica = 0 to ctx.replicas - 1 do
    wait_up ctx ~shard:ctx.ref_shard ~replica "blackout"
  done;
  ccheck ctx "blackout-recovered";
  for replica = 0 to ctx.replicas - 1 do
    ignore (wait_repaired ctx ~replica "blackout")
  done

let rec rm_rf_rec dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | files ->
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if (try Sys.is_directory p with Sys_error _ -> false) then rm_rf_rec p
        else try Sys.remove p with Sys_error _ -> ())
      files;
    (try Unix.rmdir dir with Unix.Unix_error _ -> ())

let run_cluster ?(seed = 0) ?(shards = 2) ?(replicas = 2) ~max_faults () =
  if max_faults < 1 then
    Fact_error.precondition ~fn:"Serve_chaos.run_cluster"
      "max_faults must be >= 1";
  let dir = fresh_dir () in
  let cfg =
    Cluster.config ~dir:(Filename.concat dir "cluster") ~shards ~replicas
      ~attempt_timeout_s:2.
      ~backoff:(Backoff.make ~base_ms:50. ~max_ms:500. ())
      ~restart_budget:max_int ~reset_after_s:0.5 ~heartbeat_period_s:0.2
      ~fail_threshold:2 ()
  in
  let cluster = Cluster.start cfg in
  let finally () =
    (try Cluster.stop cluster with _ -> ());
    if Sys.getenv_opt "FACT_CHAOS_KEEP" = None then rm_rf_rec dir
  in
  Fun.protect ~finally (fun () ->
      let creference = Query.eval ref_query in
      let ctx =
        {
          crng = Random.State.make [| seed; 0xc1a5 |];
          cluster;
          shards;
          replicas;
          creference;
          ref_shard = Cluster.shard_of cluster ref_query;
          ref_digest = Digest.of_query ref_query;
          kills = 0;
          replica_corruptions = 0;
          stalls = 0;
          blackouts = 0;
          c_recovered = 0;
          repaired_replicas = 0;
          c_violations = [];
        }
      in
      (* seed the entry and let write-through replicate it *)
      ccheck ctx "warmup";
      for replica = 0 to replicas - 1 do
        ignore (wait_repaired ctx ~replica "warmup")
      done;
      for _ = 1 to max_faults do
        match Random.State.int ctx.crng 4 with
        | 0 -> inject_kill ctx
        | 1 -> inject_replica_corruption ctx
        | 2 -> inject_stall ctx
        | _ -> inject_blackout ctx
      done;
      {
        c_injected = max_faults;
        kills = ctx.kills;
        replica_corruptions = ctx.replica_corruptions;
        stalls = ctx.stalls;
        blackouts = ctx.blackouts;
        c_recovered = ctx.c_recovered;
        repaired_replicas = ctx.repaired_replicas;
        c_violations = List.rev ctx.c_violations;
      })

let run ?(seed = 0) ~max_faults () =
  if max_faults < 1 then
    Fact_error.precondition ~fn:"Serve_chaos.run" "max_faults must be >= 1";
  let dir = fresh_dir () in
  let sock_path = Filename.concat dir "chaos.sock" in
  let store = Store.open_dir (Filename.concat dir "store") in
  let scheduler = Scheduler.create ~store () in
  let listener = Listener.start_scheduler ~scheduler (Listener.Unix_sock sock_path) in
  let finally () =
    (try Listener.stop listener with _ -> ());
    rm_rf (Filename.concat dir "store");
    rm_rf dir
  in
  Fun.protect ~finally (fun () ->
      let reference =
        Client.with_connection (Listener.Unix_sock sock_path) (fun c ->
            fst (Client.query c ref_query))
      in
      let ctx =
        {
          rng = Random.State.make [| seed; 0x5e12e |];
          sock_path;
          store;
          listener;
          reference;
          disconnects = 0;
          corruptions = 0;
          evictions = 0;
          bad_frames = 0;
          typed_errors = 0;
          recovered = 0;
          violations = [];
        }
      in
      ignore (Listener.addr ctx.listener);
      for _ = 1 to max_faults do
        match Random.State.int ctx.rng 4 with
        | 0 -> inject_disconnect ctx
        | 1 -> inject_corruption ctx
        | 2 -> inject_eviction ctx
        | _ -> inject_bad_frame ctx
      done;
      {
        injected = max_faults;
        disconnects = ctx.disconnects;
        corruptions = ctx.corruptions;
        evictions = ctx.evictions;
        bad_frames = ctx.bad_frames;
        typed_errors = ctx.typed_errors;
        recovered = ctx.recovered;
        violations = List.rev ctx.violations;
      })
