(** The fault-tolerant front tier: sharding, replication, read-repair,
    graceful degradation.

    A cluster runs [shards × replicas] worker processes (each a
    supervised [fact serve] with its own content-addressed store) and
    answers the same {!Wire} protocol as a single server — clients
    cannot tell the difference, except that the answers keep coming
    while workers are being killed.

    {b Routing.} A query's content digest picks its shard on the
    consistent-hash {!Ring}; within the shard, replicas are tried in
    an order that puts {!Health}-ier replicas first (rotated per
    digest, so read load spreads). Transport failures and typed
    [Unavailable]/[Cancelled] refusals fail over to the next replica;
    deterministic refusals ([Precondition], [Resource_limit],
    [Worker_failure]) and blown deadlines return immediately — every
    replica would refuse the same way, so failover only adds latency.

    {b Replication.} The front tier tracks, per digest, which replicas
    are known to hold the result. A freshly computed result exists on
    one replica only; a background repair thread pushes [Put] frames
    to the shard's other replicas ({b write-through}). When the
    supervisor restarts a worker, its confirmation bits are dropped,
    so the next read of any digest it owned re-replicates into its
    store ({b read-repair}). Repaired entries are disk-sourced: a
    warm re-serve from a surviving or repaired replica answers
    [source=disk].

    {b Degradation.} When every replica of a shard is unreachable the
    front tier evaluates the query locally and answers
    [source=computed] — bytes identical to the one-shot CLI, because
    both sides call {!Query.eval}. Availability degrades to
    single-process throughput; correctness doesn't change. *)

type config = {
  shards : int;
  replicas : int;
  vnodes : int;
  dir : string;  (** root; each worker stores under [shard-S/replica-R] *)
  binary : string;  (** worker executable, see {!Supervisor.default_binary} *)
  restart_budget : int;
  backoff : Fact_resilience.Backoff.policy;
  attempt_timeout_s : float;  (** per-replica socket send/recv bound *)
  heartbeat_period_s : float;
  fail_threshold : int;
  ready_timeout_s : float;
  reset_after_s : float;
}

val config :
  ?vnodes:int ->
  ?binary:string ->
  ?restart_budget:int ->
  ?backoff:Fact_resilience.Backoff.policy ->
  ?attempt_timeout_s:float ->
  ?heartbeat_period_s:float ->
  ?fail_threshold:int ->
  ?ready_timeout_s:float ->
  ?reset_after_s:float ->
  dir:string ->
  shards:int ->
  replicas:int ->
  unit ->
  config
(** Raises a typed [Precondition] error unless [shards >= 1] and
    [replicas >= 1]. *)

type t

val start : config -> t
(** Creates worker store directories, spawns and supervises all
    workers, starts heartbeats and the repair thread. Returns once
    every worker answered its readiness ping (or its ready timeout
    lapsed — the worker is then routed around until it comes up). *)

val handler : t -> Wire.request -> Wire.response
(** Plug into {!Listener.start} to expose the cluster on a socket; or
    call directly for an in-process front tier. *)

val stop : t -> unit
(** Stops heartbeats, drains the repair thread, shuts every worker
    down. Idempotent. *)

(** {2 Introspection} — stats, chaos hooks, CI assertions} *)

val shard_of : t -> Query.t -> int
val worker_pid : t -> shard:int -> replica:int -> int option
val worker_dir : t -> shard:int -> replica:int -> string
val worker_sock : t -> shard:int -> replica:int -> string
val worker_state : t -> shard:int -> replica:int -> Supervisor.state

val kill_worker : t -> shard:int -> replica:int -> unit
(** [SIGKILL]; the supervisor restarts it. *)

val pause_worker : t -> shard:int -> replica:int -> unit
val resume_worker : t -> shard:int -> replica:int -> unit

val served : t -> int
(** Successfully answered queries (all sources, degraded included). *)

val failovers : t -> int
(** Replica attempts that failed and moved on to another replica. *)

val degraded : t -> int
(** Queries answered by local evaluation with every replica down. *)

val repairs : t -> int
(** Entries pushed to a replica by the repair thread. *)

val stats_text : t -> string
(** Cluster topology and counters, supervisor slot states, health
    table — one parseable line each. *)
