(** The one log-bucket latency histogram of the repository.

    Doubling millisecond buckets: bucket [i] counts observations in
    [(2^(i-1), 2^i]] ms (bucket 0: <= 1 ms), the last bucket is the
    overflow. {!Scheduler} keeps one per endpoint, {!Loadgen} one per
    burst, and the campaign report ([fact report]) folds per-cell wall
    times into one — all three answer percentile questions through the
    same {!percentile} accessor, so "p95" means the same thing in
    server stats, loadgen output and CI gates.

    Not thread-safe: callers serialize access (the scheduler holds its
    lock, loadgen its accumulator mutex). *)

type t

val buckets : int
(** Number of buckets (20: <=1ms up to >2^18 ms, then overflow). *)

val create : unit -> t

val add : t -> float -> unit
(** Record one observation, in milliseconds. Negative values count as
    0 ms. *)

val of_counts : int array -> t
(** Adopt a raw bucket-count array (length {!buckets}; shorter arrays
    are zero-padded, longer ones folded into the overflow bucket).
    Mean and max are unavailable on the result (0). *)

val count : t -> int
val total_ms : t -> float
val mean_ms : t -> float
val max_ms : t -> float

val counts : t -> int array
(** A copy of the bucket counts. *)

val bound_ms : int -> float
(** Upper bound of bucket [i] in ms ([2^i]; the overflow bucket
    reports the same bound as the last bounded one — read it as
    "greater than"). *)

val percentile : t -> float -> float
(** [percentile t p] (0 < p <= 100): the upper bound of the bucket
    holding the ceil(p% * count)-th smallest observation — a
    deterministic over-estimate within one doubling. 0 on an empty
    histogram. *)

val percentiles_line : t -> string
(** ["p50<=1ms p95<=4ms p99<=8ms"] via {!percentile} — the format
    loadgen prints, server stats include and CI greps. *)

val pp_counts_line : t -> string
(** [" <=1:3 <=4:2 >262144:1"] — nonzero buckets only, bounds in ms. *)
