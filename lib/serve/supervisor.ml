module Fact_error = Fact_resilience.Fact_error
module Backoff = Fact_resilience.Backoff

type state =
  | Starting
  | Up of int
  | Restarting of int
  | Fused
  | Stopped

let state_to_string = function
  | Starting -> "starting"
  | Up pid -> Printf.sprintf "up(pid=%d)" pid
  | Restarting k -> Printf.sprintf "restarting(attempt=%d)" k
  | Fused -> "fused"
  | Stopped -> "stopped"

type slot = {
  id : int;
  mutable st : state;
  mutable proc : int;  (* last spawned pid, 0 = never *)
  mutable spawned_at : float;
  mutable attempts : int;  (* consecutive crash-loop exits *)
  mutable total_restarts : int;
  mutable monitor : Thread.t option;
}

type t = {
  binary : string;
  argv : int -> string array;
  sock : int -> string;
  policy : Backoff.policy;
  restart_budget : int;
  reset_after_s : float;
  ready_timeout_s : float;
  on_up : int -> unit;
  slots : slot array;
  lock : Mutex.t;
  mutable stopping : bool;
}

let default_binary () =
  match Sys.getenv_opt "FACT_WORKER_BIN" with
  | Some b when b <> "" -> b
  | _ ->
    (* the CLI is a declared sibling dep of the test runner, so look for
       it next to our own executable (works for any cwd); inside
       [fact cluster] we are the worker binary ourselves *)
    let exe_dir = Filename.dirname Sys.executable_name in
    let candidates =
      [
        Filename.concat
          (Filename.concat (Filename.dirname exe_dir) "bin")
          "fact_cli.exe";
        Filename.concat (Filename.concat ".." "bin") "fact_cli.exe";
      ]
    in
    (match List.find_opt Sys.file_exists candidates with
    | Some b -> b
    | None -> Sys.executable_name)

let create ?(policy = Backoff.supervisor) ?(restart_budget = 8)
    ?(reset_after_s = 5.) ?(ready_timeout_s = 10.) ?(on_up = fun _ -> ())
    ~binary ~argv ~sock ~n () =
  if n < 1 then
    Fact_error.precondition ~fn:"Supervisor.create"
      (Printf.sprintf "need at least one slot, got %d" n);
  {
    binary;
    argv;
    sock;
    policy;
    restart_budget;
    reset_after_s;
    ready_timeout_s;
    on_up;
    slots =
      Array.init n (fun id ->
          {
            id;
            st = Starting;
            proc = 0;
            spawned_at = 0.;
            attempts = 0;
            total_restarts = 0;
            monitor = None;
          });
    lock = Mutex.create ();
    stopping = false;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let is_stopping t = locked t (fun () -> t.stopping)

(* ------------------------------ spawn ------------------------------ *)

let spawn_process t slot =
  (* worker stdout/stderr land in a per-slot log next to its store, so
     N workers cannot interleave garbage into the front tier's stdout *)
  let log_path = t.sock slot.id ^ ".log" in
  let log_fd =
    try Unix.openfile log_path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
    with Unix.Unix_error _ -> Unix.stderr
  in
  let argv = t.argv slot.id in
  let pid =
    try Unix.create_process t.binary argv Unix.stdin log_fd log_fd
    with Unix.Unix_error (err, _, _) ->
      if log_fd <> Unix.stderr then
        (try Unix.close log_fd with Unix.Unix_error _ -> ());
      Fact_error.unavailable
        (Printf.sprintf "Supervisor: cannot spawn %s: %s" t.binary
           (Unix.error_message err))
  in
  if log_fd <> Unix.stderr then
    (try Unix.close log_fd with Unix.Unix_error _ -> ());
  locked t (fun () ->
      slot.proc <- pid;
      slot.spawned_at <- Unix.gettimeofday ();
      slot.st <- Starting);
  pid

(* Poll the worker's socket until it answers a ping. Returns [true]
   once ready; [false] when the timeout lapses or the supervisor is
   stopping. *)
let wait_ready t slot pid =
  let sock = t.sock slot.id in
  let deadline = Unix.gettimeofday () +. t.ready_timeout_s in
  let rec poll () =
    if is_stopping t then false
    else if Unix.gettimeofday () > deadline then false
    else
      match
        Client.with_connection ~timeout_s:1. (Listener.Unix_sock sock)
          Client.ping
      with
      | () -> true
      | exception Fact_error.Error _ ->
        Thread.delay 0.05;
        poll ()
  in
  let ready = poll () in
  if ready then begin
    locked t (fun () -> if slot.proc = pid && not t.stopping then slot.st <- Up pid);
    t.on_up slot.id
  end;
  ready

(* ----------------------------- monitor ----------------------------- *)

let rec monitor t slot pid =
  (match Unix.waitpid [] pid with
  | _ -> ()
  | exception Unix.Unix_error _ -> ());
  let action =
    locked t (fun () ->
        if t.stopping then begin
          slot.st <- Stopped;
          `Exit
        end
        else begin
          (* a worker that held steady earns its crash budget back *)
          if Unix.gettimeofday () -. slot.spawned_at >= t.reset_after_s then
            slot.attempts <- 0;
          slot.attempts <- slot.attempts + 1;
          if slot.attempts > t.restart_budget then begin
            slot.st <- Fused;
            `Exit
          end
          else begin
            slot.st <- Restarting slot.attempts;
            slot.total_restarts <- slot.total_restarts + 1;
            `Restart (slot.attempts - 1)
          end
        end)
  in
  match action with
  | `Exit -> ()
  | `Restart attempt ->
    Backoff.sleep_interruptible t.policy ~attempt ~stop:(fun () -> is_stopping t);
    if is_stopping t then locked t (fun () -> slot.st <- Stopped)
    else begin
      match spawn_process t slot with
      | pid ->
        (* stop may have raced the respawn decision: make sure this
           child dies too, so the next waitpid returns and the slot
           lands in Stopped instead of wedging the join *)
        if is_stopping t then
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (wait_ready t slot pid);
        monitor t slot pid
      | exception Fact_error.Error _ -> locked t (fun () -> slot.st <- Fused)
    end

let start t =
  (* spawn everything first, then wait for readiness — boot is
     parallel across workers instead of serial ping-wait *)
  let pids =
    Array.map (fun slot ->
        let pid = spawn_process t slot in
        slot.monitor <- Some (Thread.create (fun () -> monitor t slot pid) ());
        pid)
      t.slots
  in
  Array.iteri (fun i slot -> ignore (wait_ready t slot pids.(i))) t.slots

(* -------------------------- introspection -------------------------- *)

let slot t id =
  if id < 0 || id >= Array.length t.slots then
    Fact_error.precondition ~fn:"Supervisor"
      (Printf.sprintf "no slot %d (have %d)" id (Array.length t.slots));
  t.slots.(id)

let state t id = locked t (fun () -> (slot t id).st)
let restarts t id = locked t (fun () -> (slot t id).total_restarts)

let pid t id =
  locked t (fun () ->
      match (slot t id).st with
      | Up pid -> Some pid
      | Starting ->
        let p = (slot t id).proc in
        if p > 0 then Some p else None
      | Restarting _ | Fused | Stopped -> None)

let signal t id sg =
  match pid t id with
  | None -> ()
  | Some p -> ( try Unix.kill p sg with Unix.Unix_error _ -> ())

let kill t id = signal t id Sys.sigkill
let pause t id = signal t id Sys.sigstop
let resume t id = signal t id Sys.sigcont

let stats_lines t =
  locked t (fun () ->
      Array.to_list
        (Array.map (fun s ->
             Printf.sprintf "worker id=%d state=%s restarts=%d" s.id
               (state_to_string s.st) s.total_restarts)
            t.slots))

(* ------------------------------- stop ------------------------------ *)

let stop t =
  let first =
    locked t (fun () ->
        let f = not t.stopping in
        t.stopping <- true;
        f)
  in
  if first then begin
    (* a paused worker cannot answer shutdown or die on SIGTERM *)
    Array.iter (fun s ->
        if s.proc > 0 then
          try Unix.kill s.proc Sys.sigcont with Unix.Unix_error _ -> ())
      t.slots;
    Array.iter (fun s ->
        match locked t (fun () -> s.st) with
        | Up _ | Starting -> (
          match
            Client.with_connection ~timeout_s:1.
              (Listener.Unix_sock (t.sock s.id))
              Client.shutdown
          with
          | () -> ()
          | exception Fact_error.Error _ ->
            if s.proc > 0 then
              (try Unix.kill s.proc Sys.sigterm with Unix.Unix_error _ -> ()))
        | Restarting _ | Fused | Stopped -> ())
      t.slots;
    (* the monitors reap; give them a grace window, then SIGKILL *)
    let deadline = Unix.gettimeofday () +. 3. in
    let all_down () =
      locked t (fun () ->
          Array.for_all (fun s ->
              match s.st with Stopped | Fused -> true | _ -> false)
            t.slots)
    in
    while (not (all_down ())) && Unix.gettimeofday () < deadline do
      Thread.delay 0.05
    done;
    if not (all_down ()) then
      Array.iter (fun s ->
          if s.proc > 0 then
            try Unix.kill s.proc Sys.sigkill with Unix.Unix_error _ -> ())
        t.slots
  end;
  Array.iter (fun s ->
      match s.monitor with
      | Some th ->
        s.monitor <- None;
        Thread.join th
      | None -> ())
    t.slots
