let buckets = 20

type t = {
  counts_ : int array;
  mutable count_ : int;
  mutable total_ms_ : float;
  mutable max_ms_ : float;
}

let create () =
  { counts_ = Array.make buckets 0; count_ = 0; total_ms_ = 0.; max_ms_ = 0. }

let bucket_of_ms ms =
  let rec go i bound =
    if ms <= bound || i = buckets - 1 then i else go (i + 1) (bound *. 2.)
  in
  go 0 1.

let bound_ms i =
  let i = if i < 0 then 0 else if i >= buckets then buckets - 1 else i in
  (* the overflow bucket shares the last bounded bucket's figure *)
  let i = min i (buckets - 2) in
  Float.of_int (1 lsl i)

let add t ms =
  let ms = if ms < 0. then 0. else ms in
  t.counts_.(bucket_of_ms ms) <- t.counts_.(bucket_of_ms ms) + 1;
  t.count_ <- t.count_ + 1;
  t.total_ms_ <- t.total_ms_ +. ms;
  if ms > t.max_ms_ then t.max_ms_ <- ms

let of_counts arr =
  let t = create () in
  Array.iteri
    (fun i c ->
      let i = min i (buckets - 1) in
      t.counts_.(i) <- t.counts_.(i) + c;
      t.count_ <- t.count_ + c)
    arr;
  t

let count t = t.count_
let total_ms t = t.total_ms_
let mean_ms t = if t.count_ = 0 then 0. else t.total_ms_ /. float_of_int t.count_
let max_ms t = t.max_ms_
let counts t = Array.copy t.counts_

let percentile t p =
  if t.count_ = 0 then 0.
  else begin
    let p = if p <= 0. then 1e-6 else if p > 100. then 100. else p in
    (* rank of the target observation, 1-based *)
    let rank =
      max 1 (int_of_float (ceil (p /. 100. *. float_of_int t.count_)))
    in
    let rec go i seen =
      if i >= buckets - 1 then bound_ms (buckets - 1)
      else
        let seen = seen + t.counts_.(i) in
        if seen >= rank then bound_ms i else go (i + 1) seen
    in
    go 0 0
  end

let percentiles_line t =
  Printf.sprintf "p50<=%gms p95<=%gms p99<=%gms" (percentile t 50.)
    (percentile t 95.) (percentile t 99.)

let pp_counts_line t =
  let b = Buffer.create 64 in
  Array.iteri
    (fun i c ->
      if c > 0 then
        if i = buckets - 1 then
          Buffer.add_string b (Printf.sprintf " >%g:%d" (bound_ms i) c)
        else Buffer.add_string b (Printf.sprintf " <=%g:%d" (bound_ms i) c))
    t.counts_;
  Buffer.contents b
