module Fact_error = Fact_resilience.Fact_error
module Backoff = Fact_resilience.Backoff

type config = {
  shards : int;
  replicas : int;
  vnodes : int;
  dir : string;
  binary : string;
  restart_budget : int;
  backoff : Backoff.policy;
  attempt_timeout_s : float;
  heartbeat_period_s : float;
  fail_threshold : int;
  ready_timeout_s : float;
  reset_after_s : float;
}

let config ?(vnodes = 64) ?binary ?(restart_budget = 8)
    ?(backoff = Backoff.supervisor) ?(attempt_timeout_s = 10.)
    ?(heartbeat_period_s = 0.5) ?(fail_threshold = 3) ?(ready_timeout_s = 10.)
    ?(reset_after_s = 5.) ~dir ~shards ~replicas () =
  if shards < 1 then
    Fact_error.precondition ~fn:"Cluster.config"
      (Printf.sprintf "shards must be >= 1, got %d" shards);
  if replicas < 1 then
    Fact_error.precondition ~fn:"Cluster.config"
      (Printf.sprintf "replicas must be >= 1, got %d" replicas);
  let binary = match binary with Some b -> b | None -> Supervisor.default_binary () in
  {
    shards;
    replicas;
    vnodes;
    dir;
    binary;
    restart_budget;
    backoff;
    attempt_timeout_s;
    heartbeat_period_s;
    fail_threshold;
    ready_timeout_s;
    reset_after_s;
  }

(* per-digest replication state: which replicas of the owning shard
   are confirmed to hold the entry on disk *)
type entry = { shard : int; bits : bool array }

type repair_job = {
  digest : string;
  query : Query.t;
  payload : string;
  job_shard : int;
}

type t = {
  cfg : config;
  ring : Ring.t;
  sup : Supervisor.t;
  health : Health.t;
  seen : (string, entry) Hashtbl.t;
  seen_lock : Mutex.t;
  repair_q : repair_job Queue.t;
  repair_lock : Mutex.t;
  repair_cond : Condition.t;
  mutable repair_thread : Thread.t option;
  mutable stopping : bool;
  mutable served_ : int;
  mutable failovers_ : int;
  mutable degraded_ : int;
  mutable repairs_ : int;
  mutable puts_ : int;
  counters : Mutex.t;
}

let slot_id cfg ~shard ~replica = (shard * cfg.replicas) + replica

let worker_dir_of cfg ~shard ~replica =
  Filename.concat cfg.dir (Printf.sprintf "shard-%d/replica-%d" shard replica)

(* short name: Unix socket paths are capped around 100 bytes *)
let worker_sock_of cfg ~shard ~replica =
  Filename.concat cfg.dir (Printf.sprintf "s%d-r%d.sock" shard replica)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let bump t field =
  Mutex.lock t.counters;
  (match field with
  | `Served -> t.served_ <- t.served_ + 1
  | `Failover -> t.failovers_ <- t.failovers_ + 1
  | `Degraded -> t.degraded_ <- t.degraded_ + 1
  | `Repair -> t.repairs_ <- t.repairs_ + 1
  | `Put -> t.puts_ <- t.puts_ + 1);
  Mutex.unlock t.counters

let read_counter t f =
  Mutex.lock t.counters;
  let v = f t in
  Mutex.unlock t.counters;
  v

(* ---------------------- replication bookkeeping -------------------- *)

let with_seen t f =
  Mutex.lock t.seen_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.seen_lock) f

let entry_of t digest shard =
  match Hashtbl.find_opt t.seen digest with
  | Some e -> e
  | None ->
    let e = { shard; bits = Array.make t.cfg.replicas false } in
    Hashtbl.replace t.seen digest e;
    e

let mark_confirmed t digest shard replica =
  with_seen t (fun () -> (entry_of t digest shard).bits.(replica) <- true)

let missing_replicas t digest shard =
  with_seen t (fun () ->
      let e = entry_of t digest shard in
      List.filter (fun r -> not e.bits.(r)) (List.init t.cfg.replicas Fun.id))

(* a restarted worker's store is no longer trusted to hold anything
   the front tier saw before: drop its bits so the next read of each
   digest re-replicates into it (read-repair) *)
let clear_bits_for_slot t id =
  let shard = id / t.cfg.replicas and replica = id mod t.cfg.replicas in
  with_seen t (fun () ->
      Hashtbl.iter (fun _ e -> if e.shard = shard then e.bits.(replica) <- false)
        t.seen)

let enqueue_repair t job =
  Mutex.lock t.repair_lock;
  Queue.push job t.repair_q;
  Condition.signal t.repair_cond;
  Mutex.unlock t.repair_lock

let repair_one t job =
  List.iter (fun replica ->
      let id = slot_id t.cfg ~shard:job.job_shard ~replica in
      match Supervisor.state t.sup id with
      | Supervisor.Up _ -> (
        let sock = worker_sock_of t.cfg ~shard:job.job_shard ~replica in
        match
          Client.with_connection ~timeout_s:t.cfg.attempt_timeout_s
            (Listener.Unix_sock sock) (fun c ->
              Client.put c job.query ~payload:job.payload)
        with
        | _already ->
          mark_confirmed t job.digest job.job_shard replica;
          bump t `Repair
        | exception Fact_error.Error _ ->
          (* dropped, not retried here: the next successful read of
             this digest re-enqueues the missing replicas *)
          Health.report_failure t.health id)
      | _ -> ())
    (missing_replicas t job.digest job.job_shard)

let repair_loop t =
  let rec next () =
    Mutex.lock t.repair_lock;
    while Queue.is_empty t.repair_q && not t.stopping do
      Condition.wait t.repair_cond t.repair_lock
    done;
    if Queue.is_empty t.repair_q then Mutex.unlock t.repair_lock
    else begin
      let job = Queue.pop t.repair_q in
      Mutex.unlock t.repair_lock;
      (try repair_one t job with Fact_error.Error _ -> ());
      next ()
    end
  in
  next ()

(* ----------------------------- lifecycle --------------------------- *)

let start cfg =
  mkdir_p cfg.dir;
  for shard = 0 to cfg.shards - 1 do
    for replica = 0 to cfg.replicas - 1 do
      mkdir_p (worker_dir_of cfg ~shard ~replica)
    done
  done;
  let n = cfg.shards * cfg.replicas in
  let sock_of id =
    worker_sock_of cfg ~shard:(id / cfg.replicas) ~replica:(id mod cfg.replicas)
  in
  let argv id =
    let shard = id / cfg.replicas and replica = id mod cfg.replicas in
    [|
      cfg.binary; "serve";
      "--addr"; "unix:" ^ worker_sock_of cfg ~shard ~replica;
      "--store"; worker_dir_of cfg ~shard ~replica;
    |]
  in
  let health =
    Health.create ~period_s:cfg.heartbeat_period_s
      ~fail_threshold:cfg.fail_threshold
      ~probe:(fun id ->
        match
          Client.with_connection ~timeout_s:cfg.attempt_timeout_s
            (Listener.Unix_sock (sock_of id)) Client.ping
        with
        | () -> true
        | exception _ -> false)
      ~n ()
  in
  (* the supervisor's on_up hook needs the cluster record, which needs
     the supervisor: tie the knot through a ref *)
  let on_up_ref = ref (fun (_ : int) -> ()) in
  let sup =
    Supervisor.create ~policy:cfg.backoff ~restart_budget:cfg.restart_budget
      ~reset_after_s:cfg.reset_after_s ~ready_timeout_s:cfg.ready_timeout_s
      ~on_up:(fun id -> !on_up_ref id)
      ~binary:cfg.binary ~argv ~sock:sock_of ~n ()
  in
  let t =
    {
      cfg;
      ring = Ring.create ~vnodes:cfg.vnodes ~shards:cfg.shards ();
      sup;
      health;
      seen = Hashtbl.create 256;
      seen_lock = Mutex.create ();
      repair_q = Queue.create ();
      repair_lock = Mutex.create ();
      repair_cond = Condition.create ();
      repair_thread = None;
      stopping = false;
      served_ = 0;
      failovers_ = 0;
      degraded_ = 0;
      repairs_ = 0;
      puts_ = 0;
      counters = Mutex.create ();
    }
  in
  (on_up_ref :=
     fun id ->
       Health.reset t.health id;
       clear_bits_for_slot t id);
  Supervisor.start sup;
  Health.start health;
  t.repair_thread <- Some (Thread.create repair_loop t);
  t

let stop t =
  if not t.stopping then begin
    Health.stop t.health;
    Mutex.lock t.repair_lock;
    t.stopping <- true;
    Condition.broadcast t.repair_cond;
    Mutex.unlock t.repair_lock;
    (match t.repair_thread with
    | Some th ->
      t.repair_thread <- None;
      Thread.join th
    | None -> ());
    Supervisor.stop t.sup
  end

(* ------------------------------ routing ---------------------------- *)

let shard_of t q = Ring.shard_of t.ring (Digest.of_query q)

let replica_order t digest shard =
  let r = t.cfg.replicas in
  let rot = Hashtbl.hash digest mod r in
  let rank replica =
    match Health.status t.health (slot_id t.cfg ~shard ~replica) with
    | Health.Healthy -> 0
    | Health.Suspect -> 1
    | Health.Down -> 2
  in
  List.init r (fun i -> (rot + i) mod r)
  |> List.stable_sort (fun a b -> Int.compare (rank a) (rank b))

(* remaining deadline budget, measured against the handler's entry
   time, so the budget covers failover attempts too *)
let remaining_deadline ~entered deadline_s =
  Option.map (fun d -> d -. (Unix.gettimeofday () -. entered)) deadline_s

let on_success t ~digest ~shard ~replica ~query ~payload =
  Health.report_success t.health (slot_id t.cfg ~shard ~replica);
  mark_confirmed t digest shard replica;
  bump t `Served;
  if missing_replicas t digest shard <> [] then
    enqueue_repair t { digest; query; payload; job_shard = shard }

(* every replica unreachable: answer anyway, from local evaluation.
   Bytes are identical to the one-shot CLI (both sides call
   [Query.eval]); only throughput degrades. *)
let degraded_eval t ~digest ~shard ~query =
  match Query.eval query with
  | payload ->
    bump t `Degraded;
    bump t `Served;
    with_seen t (fun () -> ignore (entry_of t digest shard));
    enqueue_repair t { digest; query; payload; job_shard = shard };
    Wire.Payload { payload; source = Wire.Computed }
  | exception Fact_error.Error e -> Wire.Refused e

let handle_query t query deadline_s =
  let entered = Unix.gettimeofday () in
  let digest = Digest.of_query query in
  let shard = Ring.shard_of t.ring digest in
  let rec try_replicas = function
    | [] -> degraded_eval t ~digest ~shard ~query
    | replica :: rest -> (
      let id = slot_id t.cfg ~shard ~replica in
      match remaining_deadline ~entered deadline_s with
      | Some left when left <= 0. ->
        Wire.Refused
          (Fact_error.Deadline_exceeded
             { where = "Cluster.query"; budget_s = Option.value deadline_s ~default:0. })
      | left -> (
        let sock = worker_sock_of t.cfg ~shard ~replica in
        match
          Client.with_connection ~timeout_s:t.cfg.attempt_timeout_s
            (Listener.Unix_sock sock) (fun c ->
              Client.query c ?deadline_s:left query)
        with
        | payload, source ->
          on_success t ~digest ~shard ~replica ~query ~payload;
          Wire.Payload { payload; source }
        | exception Fact_error.Error (Fact_error.Unavailable _ | Fact_error.Cancelled _)
          ->
          (* the replica is gone or shutting down; its twin may be fine *)
          Health.report_failure t.health id;
          bump t `Failover;
          try_replicas rest
        | exception Fact_error.Error e ->
          (* deterministic or budget refusal: every replica would say
             the same, failover only adds latency *)
          Wire.Refused e))
  in
  try_replicas (replica_order t digest shard)

let handle_put t query payload =
  bump t `Put;
  let digest = Digest.of_query query in
  let shard = Ring.shard_of t.ring digest in
  let results =
    List.map (fun replica ->
        let sock = worker_sock_of t.cfg ~shard ~replica in
        match
          Client.with_connection ~timeout_s:t.cfg.attempt_timeout_s
            (Listener.Unix_sock sock) (fun c -> Client.put c query ~payload)
        with
        | already ->
          mark_confirmed t digest shard replica;
          Some already
        | exception Fact_error.Error _ ->
          Health.report_failure t.health (slot_id t.cfg ~shard ~replica);
          None)
      (List.init t.cfg.replicas Fun.id)
  in
  let succeeded = List.filter_map Fun.id results in
  if succeeded = [] then
    Wire.Refused
      (Fact_error.Unavailable
         { what = Printf.sprintf "Cluster.put: no replica of shard %d reachable" shard })
  else Wire.Stored { already = List.for_all Fun.id succeeded }

(* -------------------------- introspection -------------------------- *)

let worker_pid t ~shard ~replica = Supervisor.pid t.sup (slot_id t.cfg ~shard ~replica)
let worker_dir t ~shard ~replica = worker_dir_of t.cfg ~shard ~replica
let worker_sock t ~shard ~replica = worker_sock_of t.cfg ~shard ~replica
let worker_state t ~shard ~replica = Supervisor.state t.sup (slot_id t.cfg ~shard ~replica)
let kill_worker t ~shard ~replica = Supervisor.kill t.sup (slot_id t.cfg ~shard ~replica)
let pause_worker t ~shard ~replica = Supervisor.pause t.sup (slot_id t.cfg ~shard ~replica)
let resume_worker t ~shard ~replica = Supervisor.resume t.sup (slot_id t.cfg ~shard ~replica)

let served t = read_counter t (fun t -> t.served_)
let failovers t = read_counter t (fun t -> t.failovers_)
let degraded t = read_counter t (fun t -> t.degraded_)
let repairs t = read_counter t (fun t -> t.repairs_)

let stats_text t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "cluster shards=%d replicas=%d vnodes=%d served=%d failovers=%d \
        degraded=%d repairs=%d puts=%d entries=%d\n"
       t.cfg.shards t.cfg.replicas t.cfg.vnodes (served t) (failovers t)
       (degraded t) (repairs t)
       (read_counter t (fun t -> t.puts_))
       (with_seen t (fun () -> Hashtbl.length t.seen)));
  for shard = 0 to t.cfg.shards - 1 do
    for replica = 0 to t.cfg.replicas - 1 do
      let id = slot_id t.cfg ~shard ~replica in
      Buffer.add_string b
        (Printf.sprintf
           "worker shard=%d replica=%d state=%s restarts=%d pid=%d health=%s \
            sock=%s\n"
           shard replica
           (Supervisor.state_to_string (Supervisor.state t.sup id))
           (Supervisor.restarts t.sup id)
           (Option.value (Supervisor.pid t.sup id) ~default:0)
           (Health.status_to_string (Health.status t.health id))
           (worker_sock_of t.cfg ~shard ~replica))
    done
  done;
  Buffer.contents b

let handler t = function
  | Wire.Query { query; deadline_s } -> handle_query t query deadline_s
  | Wire.Put { query; payload } -> handle_put t query payload
  | Wire.Stats -> Wire.Stats_payload (stats_text t)
  | Wire.Ping -> Wire.Pong
  | Wire.Shutdown -> Wire.Shutting_down (* listener-owned *)
