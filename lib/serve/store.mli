(** Content-addressed on-disk result store.

    One file per result, named [<digest>.fact], holding an
    s-expression record: store format version, pipeline
    {!Digest.code_version}, the digest (self-check against renames),
    the originating query, and the payload as a quoted atom. Writes go
    through a temp file + [rename], so a crashed writer never leaves a
    half-written entry under a valid name.

    Reads are defensive: an entry that fails to parse, self-check, or
    match the current code version is {e removed}, counted in
    [corrupt], and reported as a miss — corruption degrades to a
    recompute, never to a wrong answer or an untyped crash. *)

type t

type stats = {
  puts : int;
  gets : int;
  hits : int;
  misses : int;
  corrupt : int;  (** entries dropped as unreadable or stale *)
}

val open_dir : string -> t
(** Creates the directory if needed. Raises a typed [Precondition]
    {!Fact_resilience.Fact_error} if the path exists but is not a
    directory. *)

val dir : t -> string

val put : t -> digest:string -> query:Fact_sexp.Sexp.t -> payload:string -> unit
(** Idempotent; concurrent writers of the same digest are safe (last
    rename wins, contents identical by construction). *)

val get : t -> digest:string -> string option

val iter :
  t ->
  (digest:string -> query:Fact_sexp.Sexp.t -> payload:string -> unit) ->
  unit
(** Every currently valid entry — the boot-time warm start. Corrupt
    entries encountered along the way are dropped and counted. *)

val entries : t -> int
(** Valid-looking entry files on disk right now. *)

val stats : t -> stats
