(** Content-addressed on-disk result store.

    One file per result, named [<digest>.fact], holding an
    s-expression record: store format version, pipeline
    {!Digest.code_version}, the digest (self-check against renames),
    the originating query, and the payload as a quoted atom. Writes go
    through a temp file + [fsync] + [rename], so a writer crashing at
    {e any} point — even [kill -9] mid-write, even with the data still
    in the page cache — never commits a truncated entry under a valid
    name. Stale temp files left by crashed writers are swept (and
    counted) the next time the directory is opened.

    Reads are defensive: an entry that fails to parse, self-check, or
    match the current code version is {e removed}, counted in
    [corrupt], and reported as a miss — corruption degrades to a
    recompute, never to a wrong answer or an untyped crash. *)

type t

type stats = {
  puts : int;
  gets : int;
  hits : int;
  misses : int;
  corrupt : int;  (** entries dropped as unreadable or stale *)
  swept : int;  (** stale temp files removed at [open_dir] *)
}

val open_dir : string -> t
(** Creates the directory if needed. Raises a typed [Precondition]
    {!Fact_resilience.Fact_error} if the path exists but is not a
    directory. *)

val dir : t -> string

val put : t -> digest:string -> query:Fact_sexp.Sexp.t -> payload:string -> unit
(** Idempotent; concurrent writers of the same digest are safe (last
    rename wins, contents identical by construction). *)

val get : t -> digest:string -> string option

val has : t -> digest:string -> bool
(** An entry file exists under the digest's name (no validation — a
    cheap presence probe for replication convergence checks). *)

val iter :
  t ->
  (digest:string -> query:Fact_sexp.Sexp.t -> payload:string -> unit) ->
  unit
(** Every currently valid entry — the boot-time warm start. Corrupt
    entries encountered along the way are dropped and counted. *)

val entries : t -> int
(** Valid-looking entry files on disk right now. *)

val stats : t -> stats
