(** Fault-injection harness for the service layer — the listener-side
    counterpart of {!Fact_check.Chaos}.

    Each run boots a real listener on a throwaway Unix socket backed
    by a throwaway store, then injects faults a deployed server must
    absorb, checking after every one that the server still answers
    correctly:

    - {b client disconnect}: a client sends a request and hangs up
      before (or while) the response is written. Only that
      connection's thread may die; the next client must get the full,
      correct payload.
    - {b corrupted store entry}: a persisted result file is truncated
      or scribbled on. The server must drop it (counted as corrupt)
      and transparently recompute — never serve garbage.
    - {b eviction during batch}: every bounded cache is force-evicted
      while requests are in flight; answers must still be
      byte-identical to the fault-free reference.
    - {b malformed / oversized frames}: protocol garbage must come
      back as a typed [Refused] response (or a clean close for
      oversized frames) without killing the listener.

    Any failure surfacing as something other than a typed
    {!Fact_resilience.Fact_error} is a violation. *)

type stats = {
  injected : int;
  disconnects : int;
  corruptions : int;
  evictions : int;
  bad_frames : int;
  typed_errors : int;  (** faults answered with a typed refusal *)
  recovered : int;     (** faults absorbed with a correct answer *)
  violations : string list;
}

val run : ?seed:int -> max_faults:int -> unit -> stats
(** Raises a [Precondition] {!Fact_resilience.Fact_error} if
    [max_faults < 1]. The temporary socket and store live under
    [Filename.get_temp_dir_name ()] and are removed on exit. *)

val pp_stats : Format.formatter -> stats -> unit

(** {2 Cluster storms}

    {!run_cluster} boots a real {!Cluster} — [shards × replicas]
    supervised worker {e processes} — and storms it:

    - {b kill -9 mid-request}: a random worker dies while client
      threads are in flight; every in-flight and follow-up query must
      still return the byte-identical one-shot payload.
    - {b replica corruption}: the reference entry in one replica's
      store is scribbled on and the worker killed; the restart must
      quarantine the garbage and read-repair must restore the entry.
    - {b heartbeat stall}: a worker is [SIGSTOP]ped; health marks it
      down, routing prefers its twin, and service continues.
    - {b shard blackout}: every replica of the reference shard is
      killed at once; the front tier must degrade to local evaluation
      (same bytes) and the shard's stores must converge again once the
      workers return.

    The invariant throughout: {e zero} failed queries, every payload
    byte-identical to [Query.eval]. *)

type cluster_stats = {
  c_injected : int;
  kills : int;
  replica_corruptions : int;
  stalls : int;
  blackouts : int;
  c_recovered : int;  (** faults absorbed with a correct answer *)
  repaired_replicas : int;  (** read-repair convergence checks passed *)
  c_violations : string list;
}

val run_cluster :
  ?seed:int -> ?shards:int -> ?replicas:int -> max_faults:int -> unit ->
  cluster_stats
(** Spawns real worker processes (see {!Supervisor.default_binary};
    set [FACT_WORKER_BIN] to override the executable). Raises a
    [Precondition] {!Fact_resilience.Fact_error} if [max_faults < 1].
    Everything lives under a throwaway temp directory, removed on
    exit. *)

val pp_cluster_stats : Format.formatter -> cluster_stats -> unit
