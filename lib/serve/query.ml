open Fact_sexp
open Fact_topology
open Fact_adversary
open Fact_affine
open Fact_check
open Fact_resilience

type adversary_spec = Preset of string | Live of int list list

type t =
  | Ra of { n : int; adv : adversary_spec }
  | Chr of { n : int; m : int }
  | Critical of { n : int; adv : adversary_spec }
  | Setcon of { n : int; adv : adversary_spec }
  | Fairness of { n : int; adv : adversary_spec }
  | Explore of { protocol : string; n : int; max_runs : int }

let endpoint = function
  | Ra _ -> "ra"
  | Chr _ -> "chr"
  | Critical _ -> "critical"
  | Setcon _ -> "setcon"
  | Fairness _ -> "fairness"
  | Explore _ -> "explore"

(* ------------------------------- sexp ----------------------------- *)

let adv_to_sexp = function
  | Preset p -> Sexp.List [ Sexp.Atom "preset"; Sexp.Atom p ]
  | Live ls ->
    Sexp.List
      [
        Sexp.Atom "live";
        Sexp.List (List.map (fun l -> Sexp.List (List.map Sexp.int l)) ls);
      ]

let to_sexp q =
  let field k v = Sexp.List [ Sexp.Atom k; v ] in
  let fields =
    match q with
    | Ra { n; adv } ->
      [ field "endpoint" (Sexp.Atom "ra"); field "n" (Sexp.int n);
        field "adv" (adv_to_sexp adv) ]
    | Chr { n; m } ->
      [ field "endpoint" (Sexp.Atom "chr"); field "n" (Sexp.int n);
        field "m" (Sexp.int m) ]
    | Critical { n; adv } ->
      [ field "endpoint" (Sexp.Atom "critical"); field "n" (Sexp.int n);
        field "adv" (adv_to_sexp adv) ]
    | Setcon { n; adv } ->
      [ field "endpoint" (Sexp.Atom "setcon"); field "n" (Sexp.int n);
        field "adv" (adv_to_sexp adv) ]
    | Fairness { n; adv } ->
      [ field "endpoint" (Sexp.Atom "fairness"); field "n" (Sexp.int n);
        field "adv" (adv_to_sexp adv) ]
    | Explore { protocol; n; max_runs } ->
      [ field "endpoint" (Sexp.Atom "explore");
        field "protocol" (Sexp.Atom protocol); field "n" (Sexp.int n);
        field "max-runs" (Sexp.int max_runs) ]
  in
  Sexp.List fields

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e

let adv_of_sexp = function
  | Sexp.List [ Sexp.Atom "preset"; Sexp.Atom p ] -> Ok (Preset p)
  | Sexp.List [ Sexp.Atom "live"; Sexp.List ls ] ->
    let block = function
      | Sexp.List b -> Sexp.map_result Sexp.to_int b
      | Sexp.Atom _ -> Error "bad live set: expected a list of process ids"
    in
    let* ls = Sexp.map_result block ls in
    Ok (Live ls)
  | _ -> Error "bad adversary: expected (preset NAME) or (live ((..) ..))"

let of_sexp sx =
  let* ep = Sexp.assoc "endpoint" sx in
  let* ep = Sexp.to_atom ep in
  let int_field k =
    let* v = Sexp.assoc k sx in
    Sexp.to_int v
  in
  let adv_field () =
    let* v = Sexp.assoc "adv" sx in
    adv_of_sexp v
  in
  match ep with
  | "ra" ->
    let* n = int_field "n" in
    let* adv = adv_field () in
    Ok (Ra { n; adv })
  | "chr" ->
    let* n = int_field "n" in
    let* m = int_field "m" in
    Ok (Chr { n; m })
  | "critical" ->
    let* n = int_field "n" in
    let* adv = adv_field () in
    Ok (Critical { n; adv })
  | "setcon" ->
    let* n = int_field "n" in
    let* adv = adv_field () in
    Ok (Setcon { n; adv })
  | "fairness" ->
    let* n = int_field "n" in
    let* adv = adv_field () in
    Ok (Fairness { n; adv })
  | "explore" ->
    let* protocol = Sexp.assoc "protocol" sx in
    let* protocol = Sexp.to_atom protocol in
    let* n = int_field "n" in
    let* max_runs = int_field "max-runs" in
    Ok (Explore { protocol; n; max_runs })
  | ep -> Error (Printf.sprintf "unknown endpoint %S" ep)

(* --------------------------- evaluation --------------------------- *)

let fail fmt = Printf.ksprintf (Fact_error.precondition ~fn:"Query.eval") fmt

let adversary ~n = function
  | Preset p -> (
    match String.split_on_char ':' p with
    | [ "wait-free" ] -> Adversary.wait_free n
    | [ "fig5b" ] -> Adversary.fig5b
    | [ "t-res"; t ] -> (
      match int_of_string_opt t with
      | Some t -> Adversary.t_resilient ~n ~t
      | None -> fail "bad t-res parameter %S" t)
    | [ "k-of"; k ] -> (
      match int_of_string_opt k with
      | Some k -> Adversary.k_obstruction_free ~n ~k
      | None -> fail "bad k-of parameter %S" k)
    | _ -> fail "unknown preset %S" p)
  | Live [] -> fail "empty live-set list"
  | Live ls -> (
    match Adversary.make ~n (List.map Pset.of_list ls) with
    | a -> a
    | exception (Invalid_argument m | Failure m) -> fail "bad live sets: %s" m)

let render f =
  let buf = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let eval_ra ~n ~adv ppf =
  let pf fmt = Format.fprintf ppf fmt in
  let a = adversary ~n adv in
  let task = Ra.of_adversary a in
  pf "adversary: %a@." Adversary.pp a;
  pf "R_A: %a@." Affine_task.pp_stats task;
  let c = Affine_task.complex task in
  pf "facets: %d  simplices: %d  euler characteristic: %d@."
    (Complex.facet_count c) (Complex.simplex_count c)
    (Complex.euler_characteristic c);
  pf "volume fraction of |Chr^2 s|: %.4f@." (Geometry.total_volume c);
  pf "link-connected: %b@." (Link.is_link_connected c);
  List.iter
    (fun p ->
      let d = Affine_task.delta task p in
      pf "delta(%a): %d facets@." Pset.pp p (Complex.facet_count d))
    (Pset.nonempty_subsets (Pset.full (Adversary.n a)))

let eval_chr ~n ~m ppf =
  let pf fmt = Format.fprintf ppf fmt in
  if m < 0 then fail "chr: m must be >= 0";
  let c = Chr.iterate m (Chr.standard n) in
  pf "Chr^%d s (n=%d): %a@." m n Complex.pp_stats c;
  pf "simplices: %d  euler characteristic: %d@." (Complex.simplex_count c)
    (Complex.euler_characteristic c)

let eval_critical ~n ~adv ppf =
  let pf fmt = Format.fprintf ppf fmt in
  let a = adversary ~n adv in
  let alpha = Agreement.of_adversary a in
  let chr1 = Chr.subdivide (Chr.standard n) in
  let crit = Critical.all_critical alpha chr1 in
  pf "adversary: %a@." Adversary.pp a;
  pf "critical simplices of Chr s: %d@." (List.length crit);
  List.iter
    (fun c ->
      pf "chi=%a carrier=%a power=%d@." Pset.pp (Simplex.colors c) Pset.pp
        (Simplex.base_carrier c)
        (Agreement.eval alpha (Simplex.base_carrier c)))
    crit

let eval_setcon ~n ~adv ppf =
  let pf fmt = Format.fprintf ppf fmt in
  let a = adversary ~n adv in
  pf "adversary: %a@." Adversary.pp a;
  pf "agreement power (setcon): %d@." (Setcon.setcon a);
  pf "minimal hitting set size (csize): %d@."
    (Hitting.csize (Adversary.live_sets a))

let eval_fairness ~n ~adv ppf =
  let pf fmt = Format.fprintf ppf fmt in
  let a = adversary ~n adv in
  pf "adversary: %a@." Adversary.pp a;
  pf "superset-closed: %b@.symmetric: %b@." (Adversary.is_superset_closed a)
    (Adversary.is_symmetric a);
  let fair = Fairness.is_fair a in
  pf "fair: %b@." fair;
  if not fair then
    List.iter
      (fun (p, q, got, expected) ->
        pf "violation: P=%a Q=%a setcon(A|P,Q)=%d expected %d@." Pset.pp p
          Pset.pp q got expected)
      (Fairness.violations a)

let eval_explore ~protocol ~n ~max_runs ppf =
  let pf fmt = Format.fprintf ppf fmt in
  if max_runs < 1 then fail "explore: max_runs must be >= 1";
  match protocol with
  | "is" ->
    let stats, parts = Harness.explore_immediate_snapshot ~max_runs ~n () in
    pf "one-shot IS, n=%d: %a@." n Explore.pp_stats stats;
    pf "distinct ordered partitions: %d (fubini %d = %d)@."
      (List.length parts) n (Opart.fubini n)
  | "alg1" ->
    let alpha = Agreement.of_adversary (Adversary.wait_free n) in
    let stats =
      Harness.explore_algorithm1 ~max_runs ~alpha ~participants:(Pset.full n)
        ()
    in
    pf "Algorithm 1 (wait-free), n=%d: %a@." n Explore.pp_stats stats;
    pf "violations: %d@." (List.length stats.Explore.violations)
  | p -> fail "unknown protocol %S (alg1 | is)" p

let eval q =
  render
    (match q with
    | Ra { n; adv } -> eval_ra ~n ~adv
    | Chr { n; m } -> eval_chr ~n ~m
    | Critical { n; adv } -> eval_critical ~n ~adv
    | Setcon { n; adv } -> eval_setcon ~n ~adv
    | Fairness { n; adv } -> eval_fairness ~n ~adv
    | Explore { protocol; n; max_runs } -> eval_explore ~protocol ~n ~max_runs)
