module Fact_error = Fact_resilience.Fact_error

type status = Healthy | Suspect | Down

let status_to_string = function
  | Healthy -> "healthy"
  | Suspect -> "suspect"
  | Down -> "down"

type slot = { mutable failures : int; mutable probes : int }

type t = {
  period_s : float;
  fail_threshold : int;
  probe : int -> bool;
  slots : slot array;
  lock : Mutex.t;
  mutable stopping : bool;
  mutable heartbeat : Thread.t option;
}

let create ?(period_s = 0.5) ?(fail_threshold = 3) ~probe ~n () =
  if n < 1 then
    Fact_error.precondition ~fn:"Health.create"
      (Printf.sprintf "need at least one slot, got %d" n);
  if fail_threshold < 1 then
    Fact_error.precondition ~fn:"Health.create" "fail_threshold must be >= 1";
  {
    period_s;
    fail_threshold;
    probe;
    slots = Array.init n (fun _ -> { failures = 0; probes = 0 });
    lock = Mutex.create ();
    stopping = false;
    heartbeat = None;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let slot t id =
  if id < 0 || id >= Array.length t.slots then
    Fact_error.precondition ~fn:"Health"
      (Printf.sprintf "no slot %d (have %d)" id (Array.length t.slots));
  t.slots.(id)

let status t id =
  locked t (fun () ->
      let s = slot t id in
      if s.failures = 0 then Healthy
      else if s.failures >= t.fail_threshold then Down
      else Suspect)

let report_success t id = locked t (fun () -> (slot t id).failures <- 0)

let report_failure t id =
  locked t (fun () ->
      let s = slot t id in
      s.failures <- s.failures + 1)

let reset t id = report_success t id

let heartbeat_loop t =
  let stopping () = locked t (fun () -> t.stopping) in
  while not (stopping ()) do
    Array.iteri (fun id _ ->
        if not (stopping ()) then begin
          let ok = try t.probe id with _ -> false in
          locked t (fun () -> (slot t id).probes <- (slot t id).probes + 1);
          if ok then report_success t id else report_failure t id
        end)
      t.slots;
    (* fine-grained sleep so stop does not wait a whole period *)
    let slept = ref 0. in
    while (not (stopping ())) && !slept < t.period_s do
      Thread.delay 0.05;
      slept := !slept +. 0.05
    done
  done

let start t =
  locked t (fun () ->
      match t.heartbeat with
      | Some _ -> ()
      | None -> t.heartbeat <- Some (Thread.create heartbeat_loop t))

let stats_lines t =
  locked t (fun () ->
      Array.to_list
        (Array.mapi (fun id s ->
             let st =
               if s.failures = 0 then Healthy
               else if s.failures >= t.fail_threshold then Down
               else Suspect
             in
             Printf.sprintf "health id=%d status=%s failures=%d probes=%d" id
               (status_to_string st) s.failures s.probes)
            t.slots))

let stop t =
  locked t (fun () -> t.stopping <- true);
  let th = locked t (fun () ->
      let th = t.heartbeat in
      t.heartbeat <- None;
      th)
  in
  match th with Some th -> Thread.join th | None -> ()
