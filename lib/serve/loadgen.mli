(** Concurrent load generator for a [fact serve] or [fact cluster]
    front tier — the measuring stick for the failure drills: fire a
    burst, kill workers mid-burst, and assert that {e zero} requests
    failed.

    [threads] client threads share [requests] total queries
    round-robin over the query mix; every request goes through
    {!Client.query_with_retry}, so transient [Unavailable] windows
    (a shard restarting) are absorbed by the retry budget and only
    count as failures once the budget is exhausted. *)

type report = {
  sent : int;
  ok : int;
  failed : int;  (** requests whose retry budget was exhausted *)
  computed : int;
  memory : int;
  disk : int;  (** per-source counts over the [ok] responses *)
  latencies_ms : int array;
  (** log-bucket histogram: index [i] counts round-trips in
      [(2^(i-1), 2^i]] milliseconds (index 0: <= 1ms) *)
  first_error : string option;  (** diagnostic for the first failure *)
}

val run :
  ?threads:int ->
  ?requests:int ->
  ?retries:int ->
  ?backoff:Fact_resilience.Backoff.policy ->
  ?timeout_s:float ->
  ?deadline_s:float ->
  queries:Query.t list ->
  Listener.addr ->
  report
(** Defaults: 4 threads, 64 requests, 4 retries, 10s per-attempt
    socket timeout. Raises a typed [Precondition] error on an empty
    query mix or non-positive [threads]/[requests]. *)

val report_to_string : report -> string
(** Parseable one-liner plus the latency histogram — the format CI
    greps ([loadgen sent=.. ok=.. failed=0 ..]). *)
