(** Blocking client for the {!Wire} protocol.

    One connection, sequential request/response. All entry points
    raise typed {!Fact_resilience.Fact_error} errors: connection
    failures as [Precondition], a server [Refused e] response is
    re-raised as [e] itself — so [fact client] exits with the same
    code the one-shot command would have. *)

type t

val connect : Listener.addr -> t
(** Raises a typed [Precondition] error if the server is unreachable. *)

val close : t -> unit

val roundtrip : t -> Wire.request -> Wire.response
(** One frame out, one frame in. Raises [Precondition] on a dropped or
    un-parseable reply. Does {e not} unwrap [Refused]. *)

val query :
  t -> ?deadline_s:float -> Query.t -> string * Wire.source
(** Payload text plus where the server found it. Raises the server's
    typed error on [Refused]. *)

val stats : t -> string
val ping : t -> unit
val shutdown : t -> unit
(** Asks the server to stop; returns once it acknowledges. *)

val with_connection : Listener.addr -> (t -> 'a) -> 'a
