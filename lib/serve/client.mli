(** Blocking client for the {!Wire} protocol.

    One connection, sequential request/response. All entry points
    raise typed {!Fact_resilience.Fact_error} errors — a server
    [Refused e] response is re-raised as [e] itself, so [fact client]
    exits with the same code the one-shot command would have.

    {b Failure classes.} Transport failures — server unreachable,
    connection closed mid-exchange, a bounded socket timing out — are
    [Unavailable] (exit code 7): the server may simply be restarting,
    so they are the retryable class {!with_retries} absorbs. Protocol
    failures (an unparseable or oversized reply) are [Precondition]
    and never retried. *)

type t

val connect : ?timeout_s:float -> Listener.addr -> t
(** Raises a typed [Unavailable] error if the server is unreachable.
    [timeout_s] bounds every subsequent send and receive on the
    connection ([SO_SNDTIMEO]/[SO_RCVTIMEO]), so a peer that accepted
    the connection and then stopped responding surfaces as a typed
    [Unavailable] instead of a hang. *)

val close : t -> unit

val roundtrip : t -> Wire.request -> Wire.response
(** One frame out, one frame in. Raises [Unavailable] on a dropped
    connection, [Precondition] on an un-parseable reply. Does {e not}
    unwrap [Refused]. *)

val query :
  t -> ?deadline_s:float -> Query.t -> string * Wire.source
(** Payload text plus where the server found it. Raises the server's
    typed error on [Refused]. *)

val put : t -> Query.t -> payload:string -> bool
(** Replication write-through: ask the server to persist an
    already-computed result. Returns [true] if the server already held
    it. *)

val stats : t -> string
val ping : t -> unit
val shutdown : t -> unit
(** Asks the server to stop; returns once it acknowledges. *)

val with_connection : ?timeout_s:float -> Listener.addr -> (t -> 'a) -> 'a

val with_retries :
  ?retries:int ->
  ?backoff:Fact_resilience.Backoff.policy ->
  ?timeout_s:float ->
  Listener.addr ->
  (t -> 'a) ->
  'a
(** [with_retries addr f] runs [f] over a fresh connection, retrying
    (a fresh dial each time, {!Fact_resilience.Backoff} between
    attempts) when the whole exchange fails with [Unavailable] —
    server-side refusals and protocol errors propagate immediately.
    [retries] counts {e extra} attempts after the first (default 2).
    When the budget is exhausted the last [Unavailable] is re-raised,
    so the CLI exits 7. *)

val query_with_retry :
  ?retries:int ->
  ?backoff:Fact_resilience.Backoff.policy ->
  ?timeout_s:float ->
  ?deadline_s:float ->
  Listener.addr ->
  Query.t ->
  string * Wire.source
(** {!with_retries} around {!query}. *)
