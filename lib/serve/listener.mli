(** The connection front-end of [fact serve] and [fact cluster].

    Accepts clients on a Unix-domain or TCP socket and speaks the
    {!Wire} protocol: each connection is served by its own thread,
    which reads length-prefixed request frames, dispatches to a
    pluggable request handler — a shared {!Scheduler} for a single
    worker ({!start_scheduler}), a {!Cluster} front tier for a sharded
    deployment — and writes one response frame per request.

    {b Fault policy.} A well-framed but malformed request (bad sexp,
    wrong version, unknown endpoint) gets a typed [Refused
    Precondition] response and the connection stays usable. An
    oversized frame gets a typed [Refused Resource_limit] response and
    the connection is then closed — past a bad length prefix the
    stream can no longer be trusted. A client that disconnects
    mid-response only kills its own connection thread ([SIGPIPE] is
    ignored); the listener and every other connection keep serving. *)

type addr = Unix_sock of string | Tcp of string * int

val addr_of_string : string -> (addr, string) result
(** ["unix:/path"] or ["tcp:host:port"]; a bare path means a
    Unix-domain socket. *)

val addr_to_string : addr -> string

type t

val start :
  ?max_frame:int ->
  ?on_stop:(unit -> unit) ->
  handler:(Wire.request -> Wire.response) ->
  addr ->
  t
(** Binds, listens, and returns once the socket is accepting. The
    [handler] receives every request except [Shutdown] (which the
    listener acknowledges itself before initiating its stop path); a
    typed {!Fact_resilience.Fact_error} it raises is turned into a
    [Refused] response. [on_stop] runs exactly once, at the end of the
    first completed {!stop}. Raises a typed [Unavailable] error (exit
    code 7, retryable — think [EADDRINUSE] right after a crash) if the
    address cannot be bound, so a supervising restart loop backs off
    and retries instead of dying. *)

val start_scheduler : ?max_frame:int -> scheduler:Scheduler.t -> addr -> t
(** {!start} with the single-worker handler: [Query] →
    {!Scheduler.submit}, [Put] → {!Scheduler.inject}, [Stats] →
    {!Scheduler.stats_text}, and [on_stop] → {!Scheduler.shutdown}. *)

val addr : t -> addr

val bound_addr : t -> addr
(** Like {!addr}, but with a TCP port of 0 resolved to the port the
    kernel actually assigned. *)

val stop : t -> unit
(** Stops accepting, closes the listening socket, joins the accept
    thread, then runs [on_stop] (once). Idempotent. *)

val wait : t -> unit
(** Blocks until the listener stops — either {!stop} from another
    thread or a client [Shutdown] request. *)
