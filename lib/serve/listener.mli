(** The connection front-end of [fact serve].

    Accepts clients on a Unix-domain or TCP socket and speaks the
    {!Wire} protocol: each connection is served by its own thread,
    which reads length-prefixed request frames, dispatches to the
    shared {!Scheduler}, and writes one response frame per request.

    {b Fault policy.} A well-framed but malformed request (bad sexp,
    wrong version, unknown endpoint) gets a typed [Refused
    Precondition] response and the connection stays usable. An
    oversized frame gets a typed [Refused Resource_limit] response and
    the connection is then closed — past a bad length prefix the
    stream can no longer be trusted. A client that disconnects
    mid-response only kills its own connection thread ([SIGPIPE] is
    ignored); the listener and every other connection keep serving. *)

type addr = Unix_sock of string | Tcp of string * int

val addr_of_string : string -> (addr, string) result
(** ["unix:/path"] or ["tcp:host:port"]; a bare path means a
    Unix-domain socket. *)

val addr_to_string : addr -> string

type t

val start : ?max_frame:int -> scheduler:Scheduler.t -> addr -> t
(** Binds, listens, and returns once the socket is accepting. Raises a
    typed [Precondition] {!Fact_resilience.Fact_error} if the address
    cannot be bound. *)

val addr : t -> addr

val stop : t -> unit
(** Stops accepting, closes the listening socket, shuts the scheduler
    down, and joins the accept thread. Idempotent. *)

val wait : t -> unit
(** Blocks until the listener stops — either {!stop} from another
    thread or a client [Shutdown] request. *)
