(** Per-worker health, fed by heartbeats and by the routing path.

    A background thread probes every slot each [period_s] (the probe
    is a bounded ping, so a wedged worker counts as a failure rather
    than a hang — lag beyond the probe's timeout {e is} failure).
    Routing outcomes feed the same accounting via {!report_success} /
    {!report_failure}, so a replica that refuses live traffic goes
    [Suspect] before the next heartbeat tick.

    One success makes a slot [Healthy]; [fail_threshold] consecutive
    failures make it [Down]; anything in between is [Suspect]. The
    router prefers [Healthy] over [Suspect] over [Down] — it never
    {e excludes} a replica outright, because a [Down] verdict is only
    a prediction and the last resort before degrading to local
    evaluation. *)

type status = Healthy | Suspect | Down

val status_to_string : status -> string

type t

val create :
  ?period_s:float ->
  ?fail_threshold:int ->
  probe:(int -> bool) ->
  n:int ->
  unit ->
  t
(** [probe id] must be bounded (ping with a timeout) and return
    whether slot [id] answered in time. Defaults: probe every 0.5s,
    [Down] after 3 consecutive failures. *)

val start : t -> unit
(** Starts the heartbeat thread. *)

val status : t -> int -> status
val report_success : t -> int -> unit
val report_failure : t -> int -> unit

val reset : t -> int -> unit
(** Back to [Healthy] with a clean failure count — called when the
    supervisor brings a restarted worker [Up] (readiness ping already
    passed). *)

val stats_lines : t -> string list
val stop : t -> unit
(** Stops and joins the heartbeat thread. Idempotent. *)
