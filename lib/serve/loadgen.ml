module Fact_error = Fact_resilience.Fact_error
module Backoff = Fact_resilience.Backoff

type report = {
  sent : int;
  ok : int;
  failed : int;
  computed : int;
  memory : int;
  disk : int;
  latencies_ms : int array;
  first_error : string option;
}

type acc = {
  lock : Mutex.t;
  mutable ok : int;
  mutable failed : int;
  mutable computed : int;
  mutable memory : int;
  mutable disk : int;
  hist : Histogram.t;
  mutable first_error : string option;
}

let record acc outcome ms =
  Mutex.lock acc.lock;
  (match outcome with
  | Ok source -> (
    acc.ok <- acc.ok + 1;
    Histogram.add acc.hist ms;
    match source with
    | Wire.Computed -> acc.computed <- acc.computed + 1
    | Wire.Memory -> acc.memory <- acc.memory + 1
    | Wire.Disk -> acc.disk <- acc.disk + 1)
  | Error msg ->
    acc.failed <- acc.failed + 1;
    if acc.first_error = None then acc.first_error <- Some msg);
  Mutex.unlock acc.lock

let run ?(threads = 4) ?(requests = 64) ?(retries = 4) ?backoff
    ?(timeout_s = 10.) ?deadline_s ~queries addr =
  if queries = [] then
    Fact_error.precondition ~fn:"Loadgen.run" "empty query mix";
  if threads < 1 || requests < 1 then
    Fact_error.precondition ~fn:"Loadgen.run"
      (Printf.sprintf "threads (%d) and requests (%d) must be >= 1" threads
         requests);
  let mix = Array.of_list queries in
  let acc =
    {
      lock = Mutex.create ();
      ok = 0;
      failed = 0;
      computed = 0;
      memory = 0;
      disk = 0;
      hist = Histogram.create ();
      first_error = None;
    }
  in
  let one i =
    let q = mix.(i mod Array.length mix) in
    let t0 = Unix.gettimeofday () in
    match
      Client.query_with_retry ~retries ?backoff ~timeout_s ?deadline_s addr q
    with
    | _payload, source ->
      record acc (Ok source) ((Unix.gettimeofday () -. t0) *. 1000.)
    | exception Fact_error.Error e -> record acc (Error (Fact_error.to_string e)) 0.
    | exception exn -> record acc (Error (Printexc.to_string exn)) 0.
  in
  let worker tid () =
    let i = ref tid in
    while !i < requests do
      one !i;
      i := !i + threads
    done
  in
  let ths = List.init threads (fun tid -> Thread.create (worker tid) ()) in
  List.iter Thread.join ths;
  {
    sent = requests;
    ok = acc.ok;
    failed = acc.failed;
    computed = acc.computed;
    memory = acc.memory;
    disk = acc.disk;
    latencies_ms = Histogram.counts acc.hist;
    first_error = acc.first_error;
  }

let report_to_string r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "loadgen sent=%d ok=%d failed=%d computed=%d memory=%d disk=%d" r.sent
       r.ok r.failed r.computed r.memory r.disk);
  (match r.first_error with
  | Some e -> Buffer.add_string b (Printf.sprintf "\nloadgen first_error: %s" e)
  | None -> ());
  let h = Histogram.of_counts r.latencies_ms in
  Buffer.add_string b
    (Printf.sprintf "\nloadgen latency %s" (Histogram.percentiles_line h));
  Buffer.add_string b "\nloadgen latency_ms:";
  Buffer.add_string b (Histogram.pp_counts_line h);
  Buffer.contents b
