(** The request scheduler behind the listener.

    One executor thread drains a queue of submitted queries in
    batches: each drain grabs {e every} pending request, so requests
    that arrive while a pipeline runs are executed back to back on the
    warm memo tables (and fan out over the
    {!Fact_topology.Parallel} domain pool inside the pipeline).
    Within and across batches, identical queries are {b deduplicated}
    by content digest: submitters of an in-flight digest park on the
    job and share its single result ([dedup] counts those joins).

    Results land in a bounded {!Fact_resilience.Cache.Make} result
    cache keyed by digest. With a {!Store.t} attached, the cache is
    warm-started from disk on creation, every computed result is
    written through, and evictions are persisted — so a restarted
    server answers from the store instead of recomputing.

    {b Deadlines.} A request's [deadline_s] covers its whole life,
    queueing included: the executor maps the remaining budget onto a
    {!Fact_resilience.Cancel} token around the pipeline, so one slow
    request times out with a typed [Deadline_exceeded] while the
    executor moves on to the next job. *)

type t

type outcome = { payload : string; source : Wire.source }

val create : ?store:Store.t -> ?cache_cap:int -> unit -> t

val submit :
  t -> ?deadline_s:float -> Query.t ->
  (outcome, Fact_resilience.Fact_error.t) result
(** Blocks until the query completes, fails, or times out. Safe to
    call from many threads. After {!shutdown}, returns a [Cancelled]
    error. *)

val dedup : t -> int
(** Requests that joined an in-flight identical query. *)

val latency : t -> string -> Histogram.t option
(** [latency t endpoint]: a snapshot of the endpoint's log-bucket
    latency histogram (request lifetime in ms, queueing included), or
    [None] if the endpoint was never hit. Feed it to
    {!Histogram.percentile} for p50/p95/p99 — the same accessor
    [fact loadgen] and [fact report] use. *)

val inject :
  t -> Query.t -> payload:string ->
  ([ `Stored | `Already ], Fact_resilience.Fact_error.t) result
(** Replication write-through / read-repair entry point (the {!Wire}
    [Put] request): persist [payload] under the query's digest and
    make it resident as a disk-sourced result, so later reads answer
    [source=disk]. Idempotent — [`Already] when the identical payload
    is both resident and on disk. After {!shutdown}, a [Cancelled]
    error. *)

val stats_text : t -> string
(** Human-readable server statistics: per-endpoint request counts and
    latency histograms, dedup/batch counters, result-cache and store
    counters, and the pipeline-wide {!Fact_resilience.Cache} registry
    counters. *)

val store : t -> Store.t option
val shutdown : t -> unit
(** Fails pending jobs with [Cancelled], stops and joins the executor
    thread. Idempotent. *)
