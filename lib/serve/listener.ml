open Fact_sexp
module Fact_error = Fact_resilience.Fact_error

type addr = Unix_sock of string | Tcp of string * int

let addr_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let addr_of_string s =
  let prefixed p = String.length s > String.length p && String.sub s 0 (String.length p) = p in
  let after p = String.sub s (String.length p) (String.length s - String.length p) in
  if prefixed "unix:" then Ok (Unix_sock (after "unix:"))
  else if prefixed "tcp:" then
    let rest = after "tcp:" in
    match String.rindex_opt rest ':' with
    | None -> Error (Printf.sprintf "tcp address %S needs host:port" s)
    | Some i -> (
      let host = String.sub rest 0 i in
      let port = String.sub rest (i + 1) (String.length rest - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 -> Ok (Tcp (host, p))
      | _ -> Error (Printf.sprintf "bad port %S" port))
  else if s = "" then Error "empty address"
  else Ok (Unix_sock s)

type t = {
  addr_ : addr;
  sock : Unix.file_descr;
  handler : Wire.request -> Wire.response;
  on_stop : unit -> unit;
  max_frame : int;
  lock : Mutex.t;
  stopped_cond : Condition.t;
  mutable stopping : bool;
  mutable accept_done : bool;
  mutable stopped_hook_run : bool;
  mutable accept_thread : Thread.t option;
}

let addr t = t.addr_

let bound_addr t =
  match t.addr_ with
  | Unix_sock _ -> t.addr_
  | Tcp (host, _) -> (
    match Unix.getsockname t.sock with
    | Unix.ADDR_INET (_, port) -> Tcp (host, port)
    | Unix.ADDR_UNIX _ | (exception Unix.Unix_error _) -> t.addr_)

let is_stopping t =
  Mutex.lock t.lock;
  let s = t.stopping in
  Mutex.unlock t.lock;
  s

(* Wake the accept loop so it can exit. [shutdown] (not [close]) on
   the listening socket: a blocked [accept] does not notice a plain
   close, but shutdown makes it return EINVAL immediately. The fd is
   closed in {!stop}, after the accept thread is joined. Safe from any
   thread, once. *)
let initiate_stop t =
  Mutex.lock t.lock;
  let first = not t.stopping in
  t.stopping <- true;
  Mutex.unlock t.lock;
  if first then begin
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    match t.addr_ with
    | Unix_sock path -> ( try Sys.remove path with Sys_error _ -> ())
    | Tcp _ -> ()
  end

(* --------------------------- connections --------------------------- *)

let send w resp = Wire.write_response w resp

let refuse_parse msg =
  Wire.Refused (Fact_error.Precondition { fn = "Wire.request_of_sexp"; what = msg })

(* [Shutdown] is a lifecycle request, owned by the listener itself;
   every other request goes to the pluggable handler (a scheduler for
   one worker, a {!Cluster} front tier for a sharded deployment). *)
let handle_request t = function
  | Wire.Shutdown -> Wire.Shutting_down
  | req -> (
    match t.handler req with
    | resp -> resp
    | exception Fact_error.Error e -> Wire.Refused e
    | exception (Failure m | Invalid_argument m) ->
      Wire.Refused (Fact_error.Precondition { fn = "Listener.handler"; what = m }))

(* One reused writer and reader per connection: frames render into and
   land in per-connection buffers, so concurrent connections never
   share framing state (and cannot interleave partial frames). *)
let rec serve_conn t w r =
  match Wire.read_frame_view r ~max_frame:t.max_frame with
  | Error (Wire.Eof | Wire.Truncated) -> ()
  | Error (Wire.Oversized len) ->
    (* past a bad length prefix the stream is garbage: answer, close *)
    send w
      (Wire.Refused
         (Fact_error.Resource_limit
            { what = "wire frame bytes"; limit = t.max_frame; got = len }))
  | Ok (raw, len) -> (
    let reply, shutdown_after =
      match Sexp.of_substring raw ~pos:0 ~len with
      | Error msg -> (refuse_parse msg, false)
      | Ok sx -> (
        match Wire.request_of_sexp sx with
        | Error msg -> (refuse_parse msg, false)
        | Ok req -> (handle_request t req, req = Wire.Shutdown))
    in
    send w reply;
    if shutdown_after then initiate_stop t else serve_conn t w r)

let connection t fd =
  (* a dead client only takes its own thread down: SIGPIPE is ignored,
     so a write to a closed peer raises EPIPE and lands here *)
  (try serve_conn t (Wire.writer fd) (Wire.reader fd)
   with Unix.Unix_error _ | Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let rec loop () =
    match Unix.accept t.sock with
    | fd, _ ->
      ignore (Thread.create (connection t) fd);
      loop ()
    | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EINTR), _, _) ->
      if is_stopping t then () else loop ()
    | exception Unix.Unix_error (_, _, _) -> ()
  in
  loop ();
  Mutex.lock t.lock;
  t.accept_done <- true;
  Condition.broadcast t.stopped_cond;
  Mutex.unlock t.lock

(* ----------------------------- lifecycle --------------------------- *)

let bind_listen addr =
  let domain, sockaddr =
    match addr with
    | Unix_sock path ->
      if Sys.file_exists path then (try Sys.remove path with Sys_error _ -> ());
      (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Tcp (host, port) ->
      let inet =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found | Invalid_argument _ ->
          Fact_error.precondition ~fn:"Listener.start" ("unknown host " ^ host)
      in
      (Unix.PF_INET, Unix.ADDR_INET (inet, port))
  in
  let sock = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock sockaddr;
     Unix.listen sock 64
   with Unix.Unix_error (err, _, _) ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     (* typed and retryable: a supervisor restarting a just-crashed
        shard must see exit code 7 and back off, not die on a usage
        error, when the old owner's address lingers (EADDRINUSE) *)
     Fact_error.unavailable
       (Printf.sprintf "Listener.start: cannot bind %s: %s"
          (addr_to_string addr) (Unix.error_message err)));
  sock

let start ?(max_frame = Wire.default_max_frame) ?(on_stop = fun () -> ())
    ~handler addr_ =
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception (Invalid_argument _ | Sys_error _) -> ());
  let sock = bind_listen addr_ in
  let t =
    {
      addr_;
      sock;
      handler;
      on_stop;
      max_frame;
      lock = Mutex.create ();
      stopped_cond = Condition.create ();
      stopping = false;
      accept_done = false;
      stopped_hook_run = false;
      accept_thread = None;
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let scheduler_handler scheduler = function
  | Wire.Query { query; deadline_s } -> (
    match Scheduler.submit scheduler ?deadline_s query with
    | Ok { Scheduler.payload; source } -> Wire.Payload { payload; source }
    | Error e -> Wire.Refused e)
  | Wire.Put { query; payload } -> (
    match Scheduler.inject scheduler query ~payload with
    | Ok `Stored -> Wire.Stored { already = false }
    | Ok `Already -> Wire.Stored { already = true }
    | Error e -> Wire.Refused e)
  | Wire.Stats -> Wire.Stats_payload (Scheduler.stats_text scheduler)
  | Wire.Ping -> Wire.Pong
  | Wire.Shutdown -> Wire.Shutting_down (* unreachable: listener-owned *)

let start_scheduler ?max_frame ~scheduler addr_ =
  start ?max_frame
    ~on_stop:(fun () -> Scheduler.shutdown scheduler)
    ~handler:(scheduler_handler scheduler) addr_

let wait t =
  Mutex.lock t.lock;
  while not t.accept_done do
    Condition.wait t.stopped_cond t.lock
  done;
  Mutex.unlock t.lock

let stop t =
  initiate_stop t;
  wait t;
  Mutex.lock t.lock;
  let th = t.accept_thread in
  t.accept_thread <- None;
  Mutex.unlock t.lock;
  (match th with
  | Some th ->
    Thread.join th;
    (* only the joiner closes, so a concurrent second [stop] cannot
       close a recycled descriptor *)
    (try Unix.close t.sock with Unix.Unix_error _ -> ())
  | None -> ());
  Mutex.lock t.lock;
  let first = not t.stopped_hook_run in
  t.stopped_hook_run <- true;
  Mutex.unlock t.lock;
  if first then t.on_stop ()
