(** The [fact serve] wire protocol.

    {b Framing.} Each message is one length-prefixed s-expression:
    a 4-byte big-endian payload length followed by that many bytes of
    {!Fact_sexp.Sexp} text. Frames larger than the receiver's
    [max_frame] are refused with a typed [Resource_limit] error (and
    the connection closed, since the stream can no longer be trusted);
    a frame whose payload is not a well-formed s-expression gets a
    typed [Precondition] response and the connection stays usable.

    {b Versioning.} Every request carries [(version N)]; a server
    refuses versions it does not speak with a [Precondition] response,
    so old clients fail fast instead of misparsing.

    {b Errors.} Failures travel as the typed
    {!Fact_resilience.Fact_error} taxonomy, serialized structurally —
    a client can map a [Deadline_exceeded] response to the same exit
    code 3 the one-shot CLI uses. *)

open Fact_sexp

val version : int
val default_max_frame : int  (** 1 MiB *)

type request =
  | Query of { query : Query.t; deadline_s : float option }
      (** [deadline_s] bounds the whole request, queueing included. *)
  | Put of { query : Query.t; payload : string }
      (** Replication write-through / read-repair: ask the receiver to
          persist an already-computed result under the query's digest.
          Idempotent; a receiver that already holds the digest answers
          [Stored { already = true }] without touching disk. *)
  | Stats
  | Ping
  | Shutdown

type source =
  | Computed  (** the pipeline ran for this request *)
  | Memory  (** in-memory result-cache hit *)
  | Disk  (** warm-started from the on-disk store *)

type response =
  | Payload of { payload : string; source : source }
  | Stored of { already : bool }  (** acknowledges a {!Put} *)
  | Stats_payload of string
  | Pong
  | Shutting_down
  | Refused of Fact_resilience.Fact_error.t

val source_to_string : source -> string

val request_to_sexp : request -> Sexp.t
val request_of_sexp : Sexp.t -> (request, string) result
val response_to_sexp : response -> Sexp.t
val response_of_sexp : Sexp.t -> (response, string) result

val error_to_sexp : Fact_resilience.Fact_error.t -> Sexp.t
val error_of_sexp : Sexp.t -> (Fact_resilience.Fact_error.t, string) result

(** {2 Framed I/O over file descriptors} *)

type read_error =
  | Eof  (** clean end of stream between frames *)
  | Oversized of int  (** announced length exceeded [max_frame] *)
  | Truncated  (** stream ended mid-frame *)

val write_frame : Unix.file_descr -> string -> unit
(** Raises [Unix.Unix_error] on a broken pipe — callers treat that as
    a client disconnect, never as a server failure. *)

val read_frame :
  max_frame:int -> Unix.file_descr -> (string, read_error) result
