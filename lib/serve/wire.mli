(** The [fact serve] wire protocol.

    {b Framing.} Each message is one length-prefixed s-expression:
    a 4-byte big-endian payload length followed by that many bytes of
    {!Fact_sexp.Sexp} text. Frames larger than the receiver's
    [max_frame] are refused with a typed [Resource_limit] error (and
    the connection closed, since the stream can no longer be trusted);
    a frame whose payload is not a well-formed s-expression gets a
    typed [Precondition] response and the connection stays usable.

    {b Versioning.} Every request carries [(version N)]; a server
    refuses versions it does not speak with a [Precondition] response,
    so old clients fail fast instead of misparsing.

    {b Errors.} Failures travel as the typed
    {!Fact_resilience.Fact_error} taxonomy, serialized structurally —
    a client can map a [Deadline_exceeded] response to the same exit
    code 3 the one-shot CLI uses. *)

open Fact_sexp

val version : int
val default_max_frame : int  (** 1 MiB *)

type request =
  | Query of { query : Query.t; deadline_s : float option }
      (** [deadline_s] bounds the whole request, queueing included. *)
  | Put of { query : Query.t; payload : string }
      (** Replication write-through / read-repair: ask the receiver to
          persist an already-computed result under the query's digest.
          Idempotent; a receiver that already holds the digest answers
          [Stored { already = true }] without touching disk. *)
  | Stats
  | Ping
  | Shutdown

type source =
  | Computed  (** the pipeline ran for this request *)
  | Memory  (** in-memory result-cache hit *)
  | Disk  (** warm-started from the on-disk store *)

type response =
  | Payload of { payload : string; source : source }
  | Stored of { already : bool }  (** acknowledges a {!Put} *)
  | Stats_payload of string
  | Pong
  | Shutting_down
  | Refused of Fact_resilience.Fact_error.t

val source_to_string : source -> string

val request_to_sexp : request -> Sexp.t
val request_of_sexp : Sexp.t -> (request, string) result
val response_to_sexp : response -> Sexp.t
val response_of_sexp : Sexp.t -> (response, string) result

val error_to_sexp : Fact_resilience.Fact_error.t -> Sexp.t
val error_of_sexp : Sexp.t -> (Fact_resilience.Fact_error.t, string) result

(** {2 Framed I/O over file descriptors} *)

type read_error =
  | Eof  (** clean end of stream between frames *)
  | Oversized of int  (** announced length exceeded [max_frame] *)
  | Truncated  (** stream ended mid-frame *)

val write_frame : Unix.file_descr -> string -> unit
(** One frame from an already-rendered payload string (allocates a
    fresh buffer per call — kept for raw-frame injection in the chaos
    suite and tests; the serve path uses {!writer}). Raises
    [Unix.Unix_error] on a broken pipe — callers treat that as a
    client disconnect, never as a server failure. *)

val read_frame :
  max_frame:int -> Unix.file_descr -> (string, read_error) result

(** {2 Zero-copy framed I/O}

    Per-connection buffered endpoints: messages render directly into a
    reused growable buffer (length prefix patched in afterwards, one
    [write] per frame, no per-frame allocation — refusals included),
    and inbound frames land in a reused receive buffer parsed in
    place. The rendering is byte-identical to
    [Sexp.to_string (request_to_sexp _)] /
    [Sexp.to_string (response_to_sexp _)], so the wire format and
    {!version} are unchanged. Writers and readers are single-owner:
    one connection thread each, never shared. *)

type writer

val writer : ?buf_size:int -> Unix.file_descr -> writer
val write_request : writer -> request -> unit
val write_response : writer -> response -> unit
(** Cached payload bytes ([Payload]/[Stats_payload]) are blitted into
    the frame without re-rendering; escaping is applied only when the
    payload actually contains a character that needs it. Raise
    [Unix.Unix_error] like {!write_frame}. *)

type reader

val reader : ?buf_size:int -> Unix.file_descr -> reader

val read_frame_view : reader -> max_frame:int -> (string * int, read_error) result
(** [Ok (view, len)]: the frame payload occupies [view.[0 .. len-1]].
    [view] is an {e unsafe view of the reader's reused buffer}, valid
    only until the next read on the same reader — parse it (e.g. with
    {!Fact_sexp.Sexp.of_substring}, which copies atoms out) before
    reading again, and never retain it. *)
