(** The query surface served by [fact serve].

    A {!t} is a self-contained, deterministic question about the
    paper's objects — the same computations the one-shot CLI
    subcommands run, factored out so that the one-shot path and the
    server produce {e bit-identical} payloads: both call {!eval}.

    Endpoints:
    - [Ra]: build the affine task [R_A] of an adversary and render its
      statistics (complex size, Euler characteristic, volume,
      link-connectivity, per-[P] delta sizes).
    - [Chr]: statistics of the iterated chromatic subdivision.
    - [Critical]: the critical simplices of [Chr s] under an
      adversary's agreement function (Figure 5).
    - [Setcon]: agreement power and minimal-hitting-set size.
    - [Fairness]: the fairness check, with violations when unfair.
    - [Explore]: a bounded model-checking run, reporting its final
      statistics (the [fact explore] counters).

    Evaluation is pure modulo the process-wide memo caches; it polls
    the ambient {!Fact_resilience.Cancel} token, so servers can bound
    each request with a deadline. *)

open Fact_sexp

type adversary_spec =
  | Preset of string  (** [wait-free | fig5b | t-res:T | k-of:K] *)
  | Live of int list list  (** explicit live sets *)

type t =
  | Ra of { n : int; adv : adversary_spec }
  | Chr of { n : int; m : int }
  | Critical of { n : int; adv : adversary_spec }
  | Setcon of { n : int; adv : adversary_spec }
  | Fairness of { n : int; adv : adversary_spec }
  | Explore of { protocol : string; n : int; max_runs : int }

val endpoint : t -> string
(** The endpoint name ([ra], [chr], ...) — the key of the server's
    per-endpoint latency histograms. *)

val to_sexp : t -> Sexp.t
(** Canonical form: field order is fixed, so equal queries render to
    equal strings (the content-address of {!Fact_serve.Digest} relies
    on this). *)

val of_sexp : Sexp.t -> (t, string) result

val adversary : n:int -> adversary_spec -> Fact_adversary.Adversary.t
(** Resolve a spec against universe size [n]. Raises a typed
    [Precondition] {!Fact_resilience.Fact_error} on an unknown preset
    or malformed live sets. *)

val eval : t -> string
(** Run the query and render its payload. Deterministic: independent
    of domain count, cache caps and cache temperature. Raises typed
    {!Fact_resilience.Fact_error}s only (preconditions, cancellation,
    deadlines, worker failures). *)
