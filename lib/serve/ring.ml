module Fact_error = Fact_resilience.Fact_error

(* points sorted by hash; hex MD5 compares lexicographically the same
   as numerically, so plain string order is the ring order *)
type t = { shards : int; points : (string * int) array }

let create ?(vnodes = 64) ~shards () =
  if shards < 1 then
    Fact_error.precondition ~fn:"Ring.create"
      (Printf.sprintf "shards must be >= 1, got %d" shards);
  if vnodes < 1 then
    Fact_error.precondition ~fn:"Ring.create"
      (Printf.sprintf "vnodes must be >= 1, got %d" vnodes);
  let points = Array.make (shards * vnodes) ("", 0) in
  for s = 0 to shards - 1 do
    for v = 0 to vnodes - 1 do
      let h = Digest.of_string (Printf.sprintf "shard-%d#%d" s v) in
      points.((s * vnodes) + v) <- (h, s)
    done
  done;
  Array.sort (fun (a, sa) (b, sb) ->
      match String.compare a b with 0 -> Int.compare sa sb | c -> c)
    points;
  { shards; points }

let shards t = t.shards

let shard_of t key =
  let h = Digest.of_string key in
  let n = Array.length t.points in
  (* first point >= h, else wrap to the smallest point *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if String.compare (fst t.points.(mid)) h < 0 then search (mid + 1) hi
      else search lo mid
  in
  let i = search 0 n in
  snd t.points.(if i = n then 0 else i)

let spread t keys =
  let counts = Array.make t.shards 0 in
  List.iter (fun k ->
      let s = shard_of t k in
      counts.(s) <- counts.(s) + 1)
    keys;
  counts
