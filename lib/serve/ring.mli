(** Consistent-hash ring: content digest → shard index.

    Each shard owns [vnodes] points on the ring (MD5 of
    ["shard#vnode"]); a key lands on the first point at or after its
    own hash, wrapping. The map is {b deterministic} — a front tier
    restarted with the same shard count routes every digest to the
    same shard, so a warm store keeps serving — and {b stable}:
    because every shard scatters many points, growing the ring from
    [n] to [n+1] shards remaps only ~1/(n+1) of the keyspace instead
    of reshuffling everything, which is what keeps a resize from
    stampeding the workers with recomputation. *)

type t

val create : ?vnodes:int -> shards:int -> unit -> t
(** [vnodes] defaults to 64 points per shard. Raises a typed
    [Precondition] error unless [shards >= 1] and [vnodes >= 1]. *)

val shards : t -> int

val shard_of : t -> string -> int
(** [shard_of t key] is the owning shard of [key] (any string — the
    cluster uses {!Digest.of_query} hex). Total and pure. *)

val spread : t -> string list -> int array
(** Per-shard key counts for a sample of keys — balance
    introspection, used by tests to bound skew. *)
