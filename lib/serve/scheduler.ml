open Fact_sexp
module Fact_error = Fact_resilience.Fact_error
module Cancel = Fact_resilience.Cancel
module Cache = Fact_resilience.Cache

module Result_cache = Cache.Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)

type cached = { query_sx : Sexp.t; payload : string; from_disk : bool }
type outcome = { payload : string; source : Wire.source }

type job = {
  digest : string;
  query : Query.t;
  deadline_s : float option;
  deadline_abs : float option;
  submitted : float;
  mutable result : (outcome, Fact_error.t) result option;
}

type t = {
  lock : Mutex.t;
  queue_cond : Condition.t;
  done_cond : Condition.t;
  mutable queue : job list; (* newest first; executor reverses *)
  in_flight : (string, job) Hashtbl.t;
  cache : cached Result_cache.t;
  store_ : Store.t option;
  hists : (string, Histogram.t) Hashtbl.t;
  mutable dedup_ : int;
  mutable injected : int;
  mutable batches : int;
  mutable max_batch : int;
  mutable jobs_run : int;
  mutable stopping : bool;
  mutable executor : Thread.t option;
}

let record_latency t endpoint ms =
  (* called with [t.lock] held *)
  let h =
    match Hashtbl.find_opt t.hists endpoint with
    | Some h -> h
    | None ->
      let h = Histogram.create () in
      Hashtbl.add t.hists endpoint h;
      h
  in
  Histogram.add h ms

(* ---------------------------- executor ---------------------------- *)

let run_job t job =
  let finish result =
    (match result with
    | Ok payload ->
      let query_sx = Query.to_sexp job.query in
      Result_cache.add t.cache job.digest
        { query_sx; payload; from_disk = false };
      (* write-through is best-effort: a failed persist degrades to a
         recompute after restart, it must not fail the request *)
      Option.iter
        (fun s ->
          try Store.put s ~digest:job.digest ~query:query_sx ~payload
          with Sys_error _ | Unix.Unix_error _ -> ())
        t.store_
    | Error _ -> ());
    Mutex.lock t.lock;
    t.jobs_run <- t.jobs_run + 1;
    job.result <-
      Some
        (match result with
        | Ok payload -> Ok { payload; source = Wire.Computed }
        | Error e -> Error e);
    Hashtbl.remove t.in_flight job.digest;
    record_latency t (Query.endpoint job.query)
      ((Unix.gettimeofday () -. job.submitted) *. 1000.);
    Condition.broadcast t.done_cond;
    Mutex.unlock t.lock
  in
  let remaining =
    match job.deadline_abs with
    | None -> None
    | Some abs -> Some (abs -. Unix.gettimeofday ())
  in
  match remaining with
  | Some r when r <= 0. ->
    finish
      (Error
         (Fact_error.Deadline_exceeded
            {
              where = "Scheduler.run_job";
              budget_s = Option.value job.deadline_s ~default:0.;
            }))
  | _ -> (
    let compute () = Query.eval job.query in
    let run =
      match remaining with
      | None -> compute
      | Some r -> fun () -> Cancel.with_token (Cancel.create ~deadline_s:r ()) compute
    in
    match run () with
    | payload -> finish (Ok payload)
    | exception Fact_error.Error e -> finish (Error e)
    | exception (Failure m | Invalid_argument m) ->
      finish (Error (Fact_error.Precondition { fn = "Query.eval"; what = m })))

let rec executor_loop t =
  Mutex.lock t.lock;
  while t.queue = [] && not t.stopping do
    Condition.wait t.queue_cond t.lock
  done;
  if t.queue = [] then Mutex.unlock t.lock (* stopping: drain done *)
  else begin
    let batch = List.rev t.queue in
    t.queue <- [];
    t.batches <- t.batches + 1;
    let size = List.length batch in
    if size > t.max_batch then t.max_batch <- size;
    Mutex.unlock t.lock;
    List.iter (run_job t) batch;
    executor_loop t
  end

(* ------------------------------ api ------------------------------- *)

let create ?store ?cache_cap () =
  let on_evict digest c =
    (* persist evicted results so a later miss reads the store instead
       of recomputing; entries loaded from disk are already there.
       Best-effort: the hook outlives this scheduler in the cache
       registry (force_evict_all can fire it after the store's
       directory is gone), so IO failures are swallowed, never raised
       into whoever triggered the eviction *)
    if not c.from_disk then
      Option.iter
        (fun s ->
          try Store.put s ~digest ~query:c.query_sx ~payload:c.payload
          with Sys_error _ | Unix.Unix_error _ -> ())
        store
  in
  let cache =
    Result_cache.create ~name:"serve.results" ?cap:cache_cap ~on_evict
      ~equal:(fun a b -> String.equal a.payload b.payload)
      ()
  in
  (* warm start: every valid persisted result becomes a resident entry *)
  Option.iter
    (fun s ->
      Store.iter s (fun ~digest ~query ~payload ->
          Result_cache.add cache digest
            { query_sx = query; payload; from_disk = true }))
    store;
  let t =
    {
      lock = Mutex.create ();
      queue_cond = Condition.create ();
      done_cond = Condition.create ();
      queue = [];
      in_flight = Hashtbl.create 16;
      cache;
      store_ = store;
      hists = Hashtbl.create 8;
      dedup_ = 0;
      injected = 0;
      batches = 0;
      max_batch = 0;
      jobs_run = 0;
      stopping = false;
      executor = None;
    }
  in
  t.executor <- Some (Thread.create executor_loop t);
  t

let store t = t.store_

let wait_for t job =
  (* lock held on entry; released on return *)
  while job.result = None do
    Condition.wait t.done_cond t.lock
  done;
  let r = Option.get job.result in
  Mutex.unlock t.lock;
  r

let submit t ?deadline_s query =
  let digest = Digest.of_query query in
  let now = Unix.gettimeofday () in
  Mutex.lock t.lock;
  if t.stopping then begin
    Mutex.unlock t.lock;
    Error (Fact_error.Cancelled { where = "Scheduler.submit: shutting down" })
  end
  else
    match Hashtbl.find_opt t.in_flight digest with
    | Some job ->
      t.dedup_ <- t.dedup_ + 1;
      wait_for t job
    | None -> (
      match Result_cache.find_opt t.cache digest with
      | Some c ->
        record_latency t (Query.endpoint query)
          ((Unix.gettimeofday () -. now) *. 1000.);
        Mutex.unlock t.lock;
        Ok
          {
            payload = c.payload;
            source = (if c.from_disk then Wire.Disk else Wire.Memory);
          }
      | None ->
        let job =
          {
            digest;
            query;
            deadline_s;
            deadline_abs = Option.map (fun d -> now +. d) deadline_s;
            submitted = now;
            result = None;
          }
        in
        Hashtbl.add t.in_flight digest job;
        t.queue <- job :: t.queue;
        Condition.signal t.queue_cond;
        wait_for t job)

let dedup t =
  Mutex.lock t.lock;
  let d = t.dedup_ in
  Mutex.unlock t.lock;
  d

let latency t endpoint =
  Mutex.lock t.lock;
  let h =
    Option.map
      (fun h -> Histogram.of_counts (Histogram.counts h))
      (Hashtbl.find_opt t.hists endpoint)
  in
  Mutex.unlock t.lock;
  h

(* Replication write path: persist an already-computed result under
   its digest and make it resident as a disk-sourced entry, so a
   subsequent read here answers [source=disk] without recomputing.
   Idempotent: a digest whose payload is already resident and on disk
   is acknowledged without touching anything. *)
let inject t query ~payload =
  Mutex.lock t.lock;
  let stopping = t.stopping in
  Mutex.unlock t.lock;
  if stopping then
    Error (Fact_error.Cancelled { where = "Scheduler.inject: shutting down" })
  else begin
    let digest = Digest.of_query query in
    let resident =
      match Result_cache.find_opt t.cache digest with
      | Some c -> String.equal c.payload payload
      | None -> false
    in
    let on_disk =
      match t.store_ with None -> true | Some s -> Store.has s ~digest
    in
    if resident && on_disk then Ok `Already
    else begin
      let query_sx = Query.to_sexp query in
      (match t.store_ with
      | None -> ()
      | Some s -> (
        try Store.put s ~digest ~query:query_sx ~payload
        with Sys_error _ | Unix.Unix_error _ -> ()));
      if not resident then
        Result_cache.add t.cache digest
          { query_sx; payload; from_disk = true };
      Mutex.lock t.lock;
      t.injected <- t.injected + 1;
      Mutex.unlock t.lock;
      Ok `Stored
    end
  end

let shutdown t =
  Mutex.lock t.lock;
  if t.stopping then Mutex.unlock t.lock
  else begin
    t.stopping <- true;
    (* fail queued-but-not-started jobs promptly *)
    List.iter
      (fun job ->
        job.result <-
          Some
            (Error
               (Fact_error.Cancelled
                  { where = "Scheduler.shutdown: job dropped" }));
        Hashtbl.remove t.in_flight job.digest)
      t.queue;
    t.queue <- [];
    Condition.broadcast t.queue_cond;
    Condition.broadcast t.done_cond;
    let executor = t.executor in
    t.executor <- None;
    Mutex.unlock t.lock;
    Option.iter Thread.join executor
  end

(* ------------------------------ stats ----------------------------- *)

let stats_text t =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  Mutex.lock t.lock;
  let hists =
    Hashtbl.fold (fun ep h acc -> (ep, h) :: acc) t.hists []
    |> List.sort compare
  in
  let dedup_ = t.dedup_ and batches = t.batches in
  let max_batch = t.max_batch and jobs_run = t.jobs_run in
  let injected = t.injected in
  Mutex.unlock t.lock;
  pf "endpoints:\n";
  if hists = [] then pf "  (no requests yet)\n";
  List.iter
    (fun (ep, h) ->
      pf "  %-10s count=%d mean_ms=%.3f max_ms=%.3f %s\n" ep
        (Histogram.count h) (Histogram.mean_ms h) (Histogram.max_ms h)
        (Histogram.percentiles_line h);
      pf "  %-10s hist:%s\n" "" (Histogram.pp_counts_line h))
    hists;
  pf "scheduler: dedup_joins=%d batches=%d max_batch=%d jobs_run=%d injected=%d\n"
    dedup_ batches max_batch jobs_run injected;
  let cs = Result_cache.stats t.cache in
  pf "result cache: hits=%d misses=%d evictions=%d size=%d cap=%d\n"
    cs.Cache.hits cs.Cache.misses cs.Cache.evictions cs.Cache.size cs.Cache.cap;
  (match t.store_ with
  | None -> pf "store: (none)\n"
  | Some s ->
    let st = Store.stats s in
    pf "store: dir=%s entries=%d puts=%d gets=%d hits=%d misses=%d corrupt=%d\n"
      (Store.dir s) (Store.entries s) st.Store.puts st.Store.gets st.Store.hits
      st.Store.misses st.Store.corrupt);
  pf "pipeline caches:\n";
  List.iter
    (fun (name, (s : Cache.stats)) ->
      pf "  %-28s hits=%d misses=%d evictions=%d size=%d cap=%d\n" name
        s.Cache.hits s.Cache.misses s.Cache.evictions s.Cache.size s.Cache.cap)
    (Cache.all_stats ());
  Buffer.contents buf
