(** Content addresses for query results.

    A result is keyed by the MD5 of the query's canonical s-expression
    rendering salted with {!code_version} — so the on-disk store and
    the in-memory result cache agree on keys across processes, and a
    pipeline change (bumping the version) silently invalidates every
    persisted result instead of serving stale payloads. *)

val code_version : string
(** Bump whenever the pipeline's output for any query can change. *)

val of_query : Query.t -> string
(** Lowercase hex, 32 chars. *)

val of_string : string -> string
(** The raw hash behind {!of_query}, for store self-checks. *)
