open Fact_sexp
module Fact_error = Fact_resilience.Fact_error

let version = 2
let default_max_frame = 1 lsl 20

type request =
  | Query of { query : Query.t; deadline_s : float option }
  | Put of { query : Query.t; payload : string }
  | Stats
  | Ping
  | Shutdown

type source = Computed | Memory | Disk

type response =
  | Payload of { payload : string; source : source }
  | Stored of { already : bool }
  | Stats_payload of string
  | Pong
  | Shutting_down
  | Refused of Fact_error.t

let source_to_string = function
  | Computed -> "computed"
  | Memory -> "memory"
  | Disk -> "disk"

let source_of_string = function
  | "computed" -> Ok Computed
  | "memory" -> Ok Memory
  | "disk" -> Ok Disk
  | s -> Error (Printf.sprintf "unknown source %S" s)

(* ----------------------------- errors ----------------------------- *)

let error_to_sexp (e : Fact_error.t) =
  let f k v = Sexp.List [ Sexp.Atom k; v ] in
  match e with
  | Fact_error.Precondition { fn; what } ->
    Sexp.List
      [ Sexp.Atom "precondition"; f "fn" (Sexp.Atom fn);
        f "what" (Sexp.Atom what) ]
  | Fact_error.Deadline_exceeded { where; budget_s } ->
    Sexp.List
      [ Sexp.Atom "deadline-exceeded"; f "where" (Sexp.Atom where);
        f "budget-s" (Sexp.Atom (Printf.sprintf "%.6f" budget_s)) ]
  | Fact_error.Cancelled { where } ->
    Sexp.List [ Sexp.Atom "cancelled"; f "where" (Sexp.Atom where) ]
  | Fact_error.Worker_failure { fn; failed; chunks; first } ->
    Sexp.List
      [ Sexp.Atom "worker-failure"; f "fn" (Sexp.Atom fn);
        f "failed" (Sexp.int failed); f "chunks" (Sexp.int chunks);
        f "first" (Sexp.Atom first) ]
  | Fact_error.Resource_limit { what; limit; got } ->
    Sexp.List
      [ Sexp.Atom "resource-limit"; f "what" (Sexp.Atom what);
        f "limit" (Sexp.int limit); f "got" (Sexp.int got) ]
  | Fact_error.Unavailable { what } ->
    Sexp.List [ Sexp.Atom "unavailable"; f "what" (Sexp.Atom what) ]

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e

let atom_field sx k =
  let* v = Sexp.assoc k sx in
  Sexp.to_atom v

let int_field sx k =
  let* v = Sexp.assoc k sx in
  Sexp.to_int v

let error_of_sexp sx =
  match sx with
  | Sexp.List (Sexp.Atom tag :: fields) -> (
    let sx = Sexp.List fields in
    match tag with
    | "precondition" ->
      let* fn = atom_field sx "fn" in
      let* what = atom_field sx "what" in
      Ok (Fact_error.Precondition { fn; what })
    | "deadline-exceeded" ->
      let* where = atom_field sx "where" in
      let* b = atom_field sx "budget-s" in
      let* budget_s =
        match float_of_string_opt b with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "bad budget %S" b)
      in
      Ok (Fact_error.Deadline_exceeded { where; budget_s })
    | "cancelled" ->
      let* where = atom_field sx "where" in
      Ok (Fact_error.Cancelled { where })
    | "worker-failure" ->
      let* fn = atom_field sx "fn" in
      let* failed = int_field sx "failed" in
      let* chunks = int_field sx "chunks" in
      let* first = atom_field sx "first" in
      Ok (Fact_error.Worker_failure { fn; failed; chunks; first })
    | "resource-limit" ->
      let* what = atom_field sx "what" in
      let* limit = int_field sx "limit" in
      let* got = int_field sx "got" in
      Ok (Fact_error.Resource_limit { what; limit; got })
    | "unavailable" ->
      let* what = atom_field sx "what" in
      Ok (Fact_error.Unavailable { what })
    | tag -> Error (Printf.sprintf "unknown error class %S" tag))
  | _ -> Error "malformed error payload"

(* ---------------------------- requests ---------------------------- *)

let versioned tag fields =
  Sexp.List
    (Sexp.List [ Sexp.Atom "version"; Sexp.int version ]
    :: Sexp.List [ Sexp.Atom "request"; Sexp.Atom tag ]
    :: fields)

let request_to_sexp = function
  | Query { query; deadline_s } ->
    let deadline =
      match deadline_s with
      | None -> []
      | Some d ->
        [ Sexp.List
            [ Sexp.Atom "deadline-s"; Sexp.Atom (Printf.sprintf "%.6f" d) ] ]
    in
    versioned "query"
      (Sexp.List [ Sexp.Atom "query"; Query.to_sexp query ] :: deadline)
  | Put { query; payload } ->
    versioned "put"
      [
        Sexp.List [ Sexp.Atom "query"; Query.to_sexp query ];
        Sexp.List [ Sexp.Atom "payload"; Sexp.Atom payload ];
      ]
  | Stats -> versioned "stats" []
  | Ping -> versioned "ping" []
  | Shutdown -> versioned "shutdown" []

let request_of_sexp sx =
  let* v = int_field sx "version" in
  if v <> version then
    Error (Printf.sprintf "protocol version %d, this server speaks %d" v version)
  else
    let* tag = atom_field sx "request" in
    match tag with
    | "query" ->
      let* qsx = Sexp.assoc "query" sx in
      let* query = Query.of_sexp qsx in
      let* deadline_s =
        match Sexp.assoc "deadline-s" sx with
        | Error _ -> Ok None
        | Ok v -> (
          let* a = Sexp.to_atom v in
          match float_of_string_opt a with
          | Some f -> Ok (Some f)
          | None -> Error (Printf.sprintf "bad deadline %S" a))
      in
      Ok (Query { query; deadline_s })
    | "put" ->
      let* qsx = Sexp.assoc "query" sx in
      let* query = Query.of_sexp qsx in
      let* payload = atom_field sx "payload" in
      Ok (Put { query; payload })
    | "stats" -> Ok Stats
    | "ping" -> Ok Ping
    | "shutdown" -> Ok Shutdown
    | tag -> Error (Printf.sprintf "unknown request %S" tag)

(* ---------------------------- responses --------------------------- *)

let response_to_sexp = function
  | Payload { payload; source } ->
    Sexp.List
      [
        Sexp.Atom "payload";
        Sexp.List [ Sexp.Atom "source"; Sexp.Atom (source_to_string source) ];
        Sexp.List [ Sexp.Atom "body"; Sexp.Atom payload ];
      ]
  | Stored { already } ->
    Sexp.List
      [
        Sexp.Atom "stored";
        Sexp.List
          [ Sexp.Atom "already"; Sexp.Atom (if already then "true" else "false") ];
      ]
  | Stats_payload s ->
    Sexp.List
      [ Sexp.Atom "stats"; Sexp.List [ Sexp.Atom "body"; Sexp.Atom s ] ]
  | Pong -> Sexp.List [ Sexp.Atom "pong" ]
  | Shutting_down -> Sexp.List [ Sexp.Atom "shutting-down" ]
  | Refused e ->
    Sexp.List
      [ Sexp.Atom "refused"; Sexp.List [ Sexp.Atom "error"; error_to_sexp e ] ]

let response_of_sexp sx =
  match sx with
  | Sexp.List (Sexp.Atom "payload" :: fields) ->
    let sx = Sexp.List fields in
    let* s = atom_field sx "source" in
    let* source = source_of_string s in
    let* payload = atom_field sx "body" in
    Ok (Payload { payload; source })
  | Sexp.List (Sexp.Atom "stored" :: fields) ->
    let* a = atom_field (Sexp.List fields) "already" in
    let* already =
      match a with
      | "true" -> Ok true
      | "false" -> Ok false
      | a -> Error (Printf.sprintf "bad already flag %S" a)
    in
    Ok (Stored { already })
  | Sexp.List (Sexp.Atom "stats" :: fields) ->
    let* body = atom_field (Sexp.List fields) "body" in
    Ok (Stats_payload body)
  | Sexp.List [ Sexp.Atom "pong" ] -> Ok Pong
  | Sexp.List [ Sexp.Atom "shutting-down" ] -> Ok Shutting_down
  | Sexp.List (Sexp.Atom "refused" :: fields) ->
    let* esx = Sexp.assoc "error" (Sexp.List fields) in
    let* e = error_of_sexp esx in
    Ok (Refused e)
  | _ -> Error "malformed response"

(* ----------------------------- framing ---------------------------- *)

type read_error = Eof | Oversized of int | Truncated

let rec write_all fd buf off len =
  if len > 0 then begin
    let n = Unix.write fd buf off len in
    write_all fd buf (off + n) (len - n)
  end

let write_frame fd payload =
  let len = String.length payload in
  let buf = Bytes.create (4 + len) in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.blit_string payload 0 buf 4 len;
  write_all fd buf 0 (4 + len)

(* Returns [`Short] if the stream ends before [len] bytes. *)
let read_exactly fd len =
  let buf = Bytes.create len in
  let rec go off =
    if off >= len then `Ok buf
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> if off = 0 then `Eof else `Short
      | n -> go (off + n)
  in
  go 0

let read_frame ~max_frame fd =
  match read_exactly fd 4 with
  | `Eof -> Error Eof
  | `Short -> Error Truncated
  | `Ok hdr -> (
    let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if len < 0 || len > max_frame then Error (Oversized len)
    else
      match read_exactly fd len with
      | `Ok buf -> Ok (Bytes.to_string buf)
      | `Eof | `Short -> Error Truncated)

(* --------------------- zero-copy framed I/O ----------------------- *)

(* Per-connection writer: messages render directly into a reused
   growable buffer starting at offset 4, the length prefix is patched
   in afterwards, and the frame leaves in one [write]. No [Bytes] is
   allocated per frame (refusals included), no intermediate sexp
   string is built, and cached payload bytes are blitted through
   unescaped when they contain nothing to escape — the emitters below
   replicate {!Sexp.to_string}'s rendering byte for byte, so the wire
   format (and [version]) is unchanged. *)

type writer = {
  wfd : Unix.file_descr;
  mutable wbuf : Bytes.t;
  mutable wlen : int;
}

let writer ?(buf_size = 4096) fd =
  { wfd = fd; wbuf = Bytes.create (max 64 buf_size); wlen = 0 }

let ensure w extra =
  let need = w.wlen + extra in
  let cap = Bytes.length w.wbuf in
  if need > cap then begin
    let cap' = ref (cap * 2) in
    while !cap' < need do
      cap' := !cap' * 2
    done;
    let b = Bytes.create !cap' in
    Bytes.blit w.wbuf 0 b 0 w.wlen;
    w.wbuf <- b
  end

let put_char w c =
  ensure w 1;
  Bytes.unsafe_set w.wbuf w.wlen c;
  w.wlen <- w.wlen + 1

let put_string w s =
  let l = String.length s in
  ensure w l;
  Bytes.blit_string s 0 w.wbuf w.wlen l;
  w.wlen <- w.wlen + l

(* 0: bare; 1: must be quoted, no escapes needed (single blit between
   the quotes); 2: quoted with per-char escaping. Mirrors
   [Sexp.must_quote] and the escape set exactly. *)
let atom_class s =
  let n = String.length s in
  if n = 0 then 1
  else begin
    let cls = ref 0 in
    let i = ref 0 in
    while !i < n && !cls < 2 do
      (match String.unsafe_get s !i with
      | '"' | '\\' | '\n' | '\t' | '\r' -> cls := 2
      | '(' | ')' | ' ' -> if !cls < 1 then cls := 1
      | _ -> ());
      incr i
    done;
    !cls
  end

let put_atom w s =
  match atom_class s with
  | 0 -> put_string w s
  | 1 ->
    put_char w '"';
    put_string w s;
    put_char w '"'
  | _ ->
    put_char w '"';
    String.iter
      (function
        | '"' -> put_string w "\\\""
        | '\\' -> put_string w "\\\\"
        | '\n' -> put_string w "\\n"
        | '\t' -> put_string w "\\t"
        | '\r' -> put_string w "\\r"
        | c -> put_char w c)
      s;
    put_char w '"'

let rec put_sexp w = function
  | Sexp.Atom s -> put_atom w s
  | Sexp.List xs ->
    put_char w '(';
    List.iteri
      (fun i x ->
        if i > 0 then put_char w ' ';
        put_sexp w x)
      xs;
    put_char w ')'

let begin_frame w = w.wlen <- 4

let finish_frame w =
  Bytes.set_int32_be w.wbuf 0 (Int32.of_int (w.wlen - 4));
  write_all w.wfd w.wbuf 0 w.wlen

let put_versioned w tag =
  put_string w "((version ";
  put_string w (string_of_int version);
  put_string w ") (request ";
  put_string w tag

let write_request w req =
  begin_frame w;
  (match req with
  | Query { query; deadline_s } ->
    put_versioned w "query";
    put_string w ") (query ";
    put_sexp w (Query.to_sexp query);
    (match deadline_s with
    | None -> ()
    | Some d ->
      put_string w ") (deadline-s ";
      put_string w (Printf.sprintf "%.6f" d));
    put_string w "))"
  | Put { query; payload } ->
    put_versioned w "put";
    put_string w ") (query ";
    put_sexp w (Query.to_sexp query);
    put_string w ") (payload ";
    put_atom w payload;
    put_string w "))"
  | Stats ->
    put_versioned w "stats";
    put_string w "))"
  | Ping ->
    put_versioned w "ping";
    put_string w "))"
  | Shutdown ->
    put_versioned w "shutdown";
    put_string w "))");
  finish_frame w

let write_response w resp =
  begin_frame w;
  (match resp with
  | Payload { payload; source } ->
    put_string w "(payload (source ";
    put_string w (source_to_string source);
    put_string w ") (body ";
    put_atom w payload;
    put_string w "))"
  | Stored { already } ->
    put_string w
      (if already then "(stored (already true))"
       else "(stored (already false))")
  | Stats_payload s ->
    put_string w "(stats (body ";
    put_atom w s;
    put_string w "))"
  | Pong -> put_string w "(pong)"
  | Shutting_down -> put_string w "(shutting-down)"
  | Refused e ->
    put_string w "(refused (error ";
    put_sexp w (error_to_sexp e);
    put_string w "))");
  finish_frame w

(* Per-connection reader: frames land in a reused buffer; the payload
   is handed out as an unsafe string view of that buffer, valid only
   until the next read on the same reader. {!Sexp.of_substring} copies
   atoms out, so parsing the view and dropping it is safe. *)

type reader = { rfd : Unix.file_descr; mutable rbuf : Bytes.t }

let reader ?(buf_size = 4096) fd =
  { rfd = fd; rbuf = Bytes.create (max 16 buf_size) }

let read_exactly_into fd buf ~len =
  let rec go got =
    if got >= len then `Ok
    else
      match Unix.read fd buf got (len - got) with
      | 0 -> if got = 0 then `Eof else `Short
      | n -> go (got + n)
  in
  go 0

let read_frame_view r ~max_frame =
  match read_exactly_into r.rfd r.rbuf ~len:4 with
  | `Eof -> Error Eof
  | `Short -> Error Truncated
  | `Ok -> (
    let len = Int32.to_int (Bytes.get_int32_be r.rbuf 0) in
    if len < 0 || len > max_frame then Error (Oversized len)
    else begin
      if Bytes.length r.rbuf < len then begin
        let cap = ref (Bytes.length r.rbuf * 2) in
        while !cap < len do
          cap := !cap * 2
        done;
        r.rbuf <- Bytes.create !cap
      end;
      match read_exactly_into r.rfd r.rbuf ~len with
      | `Ok -> Ok (Bytes.unsafe_to_string r.rbuf, len)
      | `Eof | `Short -> Error Truncated
    end)
