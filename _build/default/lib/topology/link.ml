let link sigma k =
  let gens =
    List.filter_map
      (fun f ->
        if Simplex.subset sigma f then
          let rest = Simplex.diff f sigma in
          if Simplex.is_empty rest then None else Some rest
        else None)
      (Complex.facets k)
  in
  Complex.of_facets ~n:(Complex.n k) gens

(* Union-find over the vertex list of the complex. *)
let is_connected k =
  match Complex.vertices k with
  | [] -> true
  | vertices ->
    let index = Hashtbl.create (List.length vertices) in
    List.iteri (fun i v -> Hashtbl.replace index v i) vertices;
    let parent = Array.init (List.length vertices) Fun.id in
    let rec find i = if parent.(i) = i then i else find parent.(i) in
    let union i j =
      let ri = find i and rj = find j in
      if ri <> rj then parent.(ri) <- rj
    in
    List.iter
      (fun f ->
        match List.map (fun v -> Hashtbl.find index v) (Simplex.vertices f) with
        | [] -> ()
        | i :: rest -> List.iter (union i) rest)
      (Complex.facets k);
    let root = find 0 in
    List.for_all (fun i -> find i = root)
      (List.init (List.length vertices) Fun.id)

let disconnected_vertices k =
  List.filter
    (fun v -> not (is_connected (link (Simplex.of_vertex v) k)))
    (Complex.vertices k)

let is_link_connected k = disconnected_vertices k = []
