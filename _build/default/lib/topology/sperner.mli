(** Sperner labelings and Sperner's lemma on chromatic subdivisions.

    A {e Sperner labeling} of a subdivision [K] of the standard simplex
    [s] assigns to each vertex a color of its base carrier:
    [λ(v) ∈ χ(carrier(v, s))]. Sperner's lemma: every Sperner labeling
    of a subdivision of the (n−1)-simplex has an odd number of
    {e rainbow} facets (facets carrying all [n] labels).

    This is the engine behind the set-consensus impossibility half of
    the ACT/FACT theorems: a chromatic simplicial map solving k-set
    consensus on the fixed input vector [(0, …, n−1)] induces (by
    reading decided values as labels) a Sperner labeling of the
    protocol complex, so some facet decides [n] distinct values —
    impossible for [k < n]. Unlike the CSP search of {!Solver}, the
    argument is depth-independent: it refutes solvability from [Chr^ℓ]
    for {e every} ℓ at once. The lemma itself is validated
    computationally by the test suite on random Sperner labelings of
    [Chr s] and [Chr² s]. *)



val is_sperner_labeling : Complex.t -> (Vertex.t -> int) -> bool
(** Does the labeling respect carriers on every vertex of the
    complex? *)

val rainbow_facets : Complex.t -> (Vertex.t -> int) -> int
(** Number of facets whose vertices carry pairwise distinct labels
    covering a full color set of the facet's dimension + 1. *)

val random_labeling : seed:int -> Complex.t -> Vertex.t -> int
(** A uniformly random Sperner labeling (each vertex label drawn from
    its base carrier). Deterministic in [seed]. *)

val lemma_holds : Complex.t -> (Vertex.t -> int) -> bool
(** [rainbow_facets] is odd — the conclusion of Sperner's lemma. Only
    meaningful when the complex is a subdivision of [s] (e.g.
    [Chr^m s]); proper sub-complexes such as [R_A] do not satisfy the
    parity in general. *)
