(** Geometric realization of iterated chromatic subdivisions
    (Appendix A).

    A vertex [(i, t)] of [Chr s] is identified with the point

    {v 1/(2k−1) · x_i + 2/(2k−1) · Σ_{j ∈ t, j ≠ i} x_j v}

    where [k = |t|] and [x_j] are the corners of [s]; iterating the
    formula realizes every vertex of [Chr^m s] in barycentric
    coordinates over [s]. Kozlov's theorem (Chr is a subdivision) then
    has a quantitative shadow: the geometric facets of [Chr^m s]
    partition [|s|], so their volume fractions sum to 1 — verified by
    the test suite. The volume fraction of an affine task [R_A]
    measures "how much of the 2-round IIS space" the adversary allows. *)

type point = float array
(** Barycentric coordinates over the corners of [s] (length n, entries
    ≥ 0 summing to 1). *)

val coords : n:int -> Vertex.t -> point
(** Realize a vertex of [Chr^m s] (or of an input complex — input
    values are ignored, only the process matters). *)

val volume_fraction : n:int -> Simplex.t -> float
(** Volume of the geometric realization of a full-dimensional simplex,
    as a fraction of the volume of [|s|]. 0 for degenerate or
    lower-dimensional simplices. *)

val total_volume : Complex.t -> float
(** Sum of facet volume fractions. 1.0 (up to float error) for any
    [Chr^m s]; the "allowed-run volume" for a sub-complex such as
    [R_A]. *)

val barycenter : point list -> point
