type t = Pset.t list

let make blocks =
  let rec check seen = function
    | [] -> ()
    | b :: rest ->
      if Pset.is_empty b then invalid_arg "Opart.make: empty block";
      if not (Pset.disjoint b seen) then
        invalid_arg "Opart.make: overlapping blocks";
      check (Pset.union seen b) rest
  in
  check Pset.empty blocks;
  blocks

let blocks t = t

let support t = List.fold_left Pset.union Pset.empty t

let view t p =
  let rec loop acc = function
    | [] -> raise Not_found
    | b :: rest ->
      let acc = Pset.union acc b in
      if Pset.mem p b then acc else loop acc rest
  in
  loop Pset.empty t

let views t =
  let rec loop acc prefix = function
    | [] -> acc
    | b :: rest ->
      let prefix = Pset.union prefix b in
      let acc = Pset.fold (fun p acc -> (p, prefix) :: acc) b acc in
      loop acc prefix rest
  in
  List.sort (fun (p, _) (q, _) -> Stdlib.compare p q) (loop [] Pset.empty t)

(* All ordered partitions of [s]: pick the first block as any nonempty
   subset, recurse on the rest. *)
let rec enumerate s =
  if Pset.is_empty s then [ [] ]
  else
    List.concat_map
      (fun b ->
        List.map (fun rest -> b :: rest) (enumerate (Pset.diff s b)))
      (Pset.nonempty_subsets s)

let random st s =
  let elements = Array.of_list (Pset.to_list s) in
  let len = Array.length elements in
  (* Fisher–Yates shuffle *)
  for i = len - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = elements.(i) in
    elements.(i) <- elements.(j);
    elements.(j) <- tmp
  done;
  let blocks = ref [] and current = ref Pset.empty in
  Array.iter
    (fun p ->
      current := Pset.add p !current;
      if Random.State.bool st then begin
        blocks := !current :: !blocks;
        current := Pset.empty
      end)
    elements;
  if not (Pset.is_empty !current) then blocks := !current :: !blocks;
  List.rev !blocks

let fubini n = List.length (enumerate (Pset.full n))

let is_valid_views pairs =
  let self_inclusion = List.for_all (fun (p, v) -> Pset.mem p v) pairs in
  let containment =
    List.for_all
      (fun (_, v1) ->
        List.for_all
          (fun (_, v2) -> Pset.subset v1 v2 || Pset.subset v2 v1)
          pairs)
      pairs
  in
  let immediacy =
    List.for_all
      (fun (p1, v1) ->
        List.for_all
          (fun (_, v2) -> (not (Pset.mem p1 v2)) || Pset.subset v1 v2)
          pairs)
      pairs
  in
  self_inclusion && containment && immediacy

let of_views pairs =
  if not (is_valid_views pairs) then None
  else
    let procs = List.fold_left (fun acc (p, _) -> Pset.add p acc) Pset.empty pairs in
    let seen = List.fold_left (fun acc (_, v) -> Pset.union acc v) Pset.empty pairs in
    if not (Pset.equal procs seen) then None
    else
      (* Group processes by view, order groups by view inclusion
         (i.e. by cardinality, since views are totally ordered). *)
      let sorted =
        List.sort
          (fun (_, v1) (_, v2) ->
            Stdlib.compare (Pset.cardinal v1) (Pset.cardinal v2))
          pairs
      in
      let rec group = function
        | [] -> []
        | (p, v) :: rest ->
          (match group rest with
          | (b, v') :: tail when Pset.equal v v' -> (Pset.add p b, v) :: tail
          | groups -> (Pset.singleton p, v) :: groups)
      in
      (* [group] folds from the right, so re-sort groups by view size. *)
      let groups =
        List.sort
          (fun (_, v1) (_, v2) ->
            Stdlib.compare (Pset.cardinal v1) (Pset.cardinal v2))
          (group sorted)
      in
      (* Validate: each view must equal the union of blocks so far. *)
      let rec rebuild prefix = function
        | [] -> Some []
        | (b, v) :: rest ->
          let prefix = Pset.union prefix b in
          if not (Pset.equal prefix v) then None
          else
            Option.map (fun tail -> b :: tail) (rebuild prefix rest)
      in
      rebuild Pset.empty groups

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
    Pset.pp ppf t

let compare = List.compare Pset.compare
let equal a b = compare a b = 0
