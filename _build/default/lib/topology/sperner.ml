let is_sperner_labeling k labeling =
  List.for_all
    (fun f ->
      List.for_all
        (fun v -> Pset.mem (labeling v) (Vertex.base_carrier v))
        (Simplex.vertices f))
    (Complex.facets k)

let rainbow_facets k labeling =
  List.length
    (List.filter
       (fun f ->
         let labels =
           List.fold_left
             (fun acc v -> Pset.add (labeling v) acc)
             Pset.empty (Simplex.vertices f)
         in
         Pset.cardinal labels = Simplex.card f)
       (Complex.facets k))

let random_labeling ~seed k =
  (* Pre-draw one label per vertex so the labeling is a function. *)
  let st = Random.State.make [| seed; 0x5be2 |] in
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun f ->
      List.iter
        (fun v ->
          if not (Hashtbl.mem tbl v) then begin
            let choices = Pset.to_list (Vertex.base_carrier v) in
            let l =
              List.nth choices (Random.State.int st (List.length choices))
            in
            Hashtbl.add tbl v l
          end)
        (Simplex.vertices f))
    (Complex.facets k);
  fun v -> Hashtbl.find tbl v

let lemma_holds k labeling = rainbow_facets k labeling mod 2 = 1
