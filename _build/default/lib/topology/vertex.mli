(** Vertices of (iterated) chromatic complexes.

    A single recursive type represents vertices of the standard simplex
    [s], of input complexes, and of any iterated standard chromatic
    subdivision [Chr^m]:

    - [Input {proc; value}] is a vertex of a base (input) complex:
      process [proc] with input [value]. The standard simplex [s] is
      the input complex where every process has value [0].
    - [Deriv {proc; carrier}] is a vertex of [Chr K]: the pair
      [(proc, σ)] of the paper, where [σ] (the [carrier]) is the
      simplex of [K] "seen" by [proc] — the snapshot it obtained in the
      corresponding immediate-snapshot run.

    Simplices are sorted vertex lists (see {!Simplex}); the [carrier]
    field stores such a sorted list. *)

type t =
  | Input of { proc : int; value : int }
  | Deriv of { proc : int; carrier : t list }

val proc : t -> int
(** The color χ(v) of the vertex: the process id. *)

val input : int -> int -> t
(** [input p v] is the base vertex of process [p] with value [v]. *)

val base : int -> t
(** [base p] = [input p 0]: a vertex of the standard simplex [s]. *)

val deriv : int -> t list -> t
(** [deriv p carrier] builds a [Chr]-vertex. The carrier must be a
    sorted simplex (as produced by {!Simplex.make}) containing a vertex
    of color [p]; raises [Invalid_argument] otherwise. *)

val carrier : t -> t list
(** The carrier of a [Deriv] vertex in the complex it subdivides, i.e.
    the simplex it has seen. For an [Input] vertex, its own singleton. *)

val base_carrier : t -> Pset.t
(** [carrier(v, s)]: the set of processes of the base complex
    ultimately seen by this vertex, flattening all subdivision
    levels. *)

val level : t -> int
(** Subdivision depth: 0 for [Input], 1 + level of carrier vertices for
    [Deriv]. *)

val value : t -> int
(** The base input value of the vertex's own process: for [Input] it is
    the stored value; for [Deriv] it is the value of the same process
    at the base level (full-information: a process always knows its own
    input). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
