lib/topology/chr.mli: Complex Opart Simplex
