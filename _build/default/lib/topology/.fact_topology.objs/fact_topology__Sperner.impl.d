lib/topology/sperner.ml: Complex Hashtbl List Pset Random Simplex Vertex
