lib/topology/chr.ml: Complex List Opart Pset Simplex Vertex
