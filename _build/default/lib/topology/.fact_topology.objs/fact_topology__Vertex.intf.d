lib/topology/vertex.mli: Format Pset
