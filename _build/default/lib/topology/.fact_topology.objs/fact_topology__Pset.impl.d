lib/topology/pset.ml: Format Hashtbl List Printf Stdlib String
