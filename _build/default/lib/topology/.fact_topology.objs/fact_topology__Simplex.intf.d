lib/topology/simplex.mli: Format Hashtbl Map Pset Set Vertex
