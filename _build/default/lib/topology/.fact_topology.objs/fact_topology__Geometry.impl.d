lib/topology/geometry.ml: Array Complex List Simplex Vertex
