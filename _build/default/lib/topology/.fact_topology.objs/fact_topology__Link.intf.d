lib/topology/link.mli: Complex Simplex Vertex
