lib/topology/link.ml: Array Complex Fun Hashtbl List Simplex
