lib/topology/complex.ml: Format Hashtbl List Option Pset Simplex Vertex
