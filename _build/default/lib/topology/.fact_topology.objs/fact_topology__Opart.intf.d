lib/topology/opart.mli: Format Pset Random
