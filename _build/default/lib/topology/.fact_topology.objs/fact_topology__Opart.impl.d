lib/topology/opart.ml: Array Format List Option Pset Random Stdlib
