lib/topology/geometry.mli: Complex Simplex Vertex
