lib/topology/pset.mli: Format
