lib/topology/simplex.ml: Format Hashtbl List Map Pset Set Vertex
