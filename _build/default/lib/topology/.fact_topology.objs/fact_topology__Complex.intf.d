lib/topology/complex.mli: Format Pset Simplex Vertex
