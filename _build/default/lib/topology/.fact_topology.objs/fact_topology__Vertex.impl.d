lib/topology/vertex.ml: Format Hashtbl List Pset Stdlib
