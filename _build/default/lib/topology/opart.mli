(** Ordered set partitions of a process set.

    An ordered partition [(B1, …, Bm)] of a set [P] of processes is the
    combinatorial description of an {e immediate snapshot (IS) run}: the
    processes of block [Bj] take their WriteSnapshot concurrently, after
    the blocks [B1, …, B(j-1)]. The view (snapshot) of a process in
    block [Bj] is [B1 ∪ … ∪ Bj].

    Facets of the standard chromatic subdivision [Chr s] are in
    one-to-one correspondence with ordered partitions of the full
    process set (see {!Chr}), so this module underlies the whole
    subdivision machinery. *)

type t = private Pset.t list
(** Blocks in execution order; all blocks nonempty and pairwise
    disjoint. *)

val make : Pset.t list -> t
(** Validates blocks: nonempty, pairwise disjoint. Raises
    [Invalid_argument] otherwise. *)

val blocks : t -> Pset.t list
val support : t -> Pset.t
(** Union of all blocks (the participating set of the run). *)

val view : t -> int -> Pset.t
(** [view part p] is the IS view of process [p] in the run: the union
    of blocks up to and including the one containing [p]. Raises
    [Not_found] if [p] is not in the support. *)

val views : t -> (int * Pset.t) list
(** The view of every process in the support, sorted by process id. *)

val enumerate : Pset.t -> t list
(** All ordered set partitions of the given set. The empty set yields
    the single empty partition. [List.length (enumerate (Pset.full n))]
    is the n-th Fubini (ordered Bell) number: 1, 1, 3, 13, 75, 541, … *)

val random : Random.State.t -> Pset.t -> t
(** A random ordered partition of the set: random process order with
    independent block cuts. Covers all partitions but is not the
    uniform distribution; meant for property tests and scaling
    experiments at sizes where {!enumerate} is infeasible. *)

val fubini : int -> int
(** [fubini n] is the number of ordered set partitions of an n-element
    set. *)

val is_valid_views : (int * Pset.t) list -> bool
(** Checks the three IS properties (self-inclusion, containment,
    immediacy) of a set of (process, view) pairs — Section 2 of the
    paper. *)

val of_views : (int * Pset.t) list -> t option
(** Reconstructs the ordered partition from a full set of IS views if
    they are valid and complete (every process in some view has a
    view), [None] otherwise. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{p1},{p0,p2}]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
