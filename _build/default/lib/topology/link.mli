(** Links and link-connectivity of complexes.

    The link of a simplex σ in a complex [K] is
    [Lk(σ, K) = {τ ∈ K : τ ∩ σ = ∅, τ ∪ σ ∈ K}]. A complex is
    link-connected if the link of every vertex is (graph-)connected.

    Section 8 of the paper observes that link-connectivity is what lets
    Saraph et al. [30] use continuous maps for [R_{t-res}], and that
    "only very special adversaries" have link-connected affine tasks —
    e.g. the task of 1-obstruction-freedom (Figure 7a) is {e not}
    link-connected. Both facts are checked computationally by the test
    suite and the [link] bench section. *)

val link : Simplex.t -> Complex.t -> Complex.t
(** [Lk(σ, K)]. Empty if σ is not a simplex of [K]. *)

val is_connected : Complex.t -> bool
(** Is the 1-skeleton connected (single component over the complex's
    vertices)? The empty complex counts as connected. *)

val is_link_connected : Complex.t -> bool
(** Are the links of all vertices connected? *)

val disconnected_vertices : Complex.t -> Vertex.t list
(** The vertices whose links are disconnected (witnesses for
    non-link-connectivity). *)
