(** Chromatic simplices: sorted lists of vertices with pairwise
    distinct colors.

    The empty simplex is allowed as a value (it is convenient for
    carriers and restrictions) but complexes store only nonempty
    simplices. *)

type t = private Vertex.t list
(** Vertices sorted by {!Vertex.compare}; colors pairwise distinct. *)

val make : Vertex.t list -> t
(** Sorts and validates. Raises [Invalid_argument] if two vertices
    share a color or a vertex is duplicated. *)

val empty : t
val of_vertex : Vertex.t -> t
val vertices : t -> Vertex.t list
val colors : t -> Pset.t
(** χ(σ): the set of process ids of the vertices. *)

val dim : t -> int
(** Dimension: |σ| − 1 (so −1 for the empty simplex). *)

val card : t -> int
val is_empty : t -> bool
val mem : Vertex.t -> t -> bool
val find_color : int -> t -> Vertex.t option
(** The vertex of the given color, if any. *)

val subset : t -> t -> bool
(** Face relation: [subset a b] iff every vertex of [a] is in [b]. *)

val restrict : t -> Pset.t -> t
(** Sub-simplex of the vertices whose color lies in the given set. *)

val union : t -> t -> t
(** Union as vertex sets. Raises [Invalid_argument] if two distinct
    vertices share a color. *)

val diff : t -> t -> t
val inter : t -> t -> t

val faces : t -> t list
(** All nonempty faces of the simplex ([2^|σ| − 1] of them). *)

val proper_faces : t -> t list
(** All nonempty faces except the simplex itself. *)

val subsimplices : t -> t list
(** All faces including the empty one. *)

val carrier : t -> t
(** For a simplex of [Chr K], its carrier in [K]: the union of the
    carriers of its vertices (by containment, the largest one). For a
    simplex of a base complex, the simplex itself. *)

val base_carrier : t -> Pset.t
(** [χ(carrier(σ, s))]: processes of the base complex seen by the
    simplex through all subdivision levels. *)

val base_simplex : t -> t
(** The carrier of the simplex in the base (input) complex, as a
    simplex of base vertices — i.e. the input assignments ultimately
    seen through all subdivision levels. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
