(** Finite sets of processes, represented as int-backed bitsets.

    Processes are identified by integers [0 .. n-1] with [n <= 62]. A
    [Pset.t] is immutable and supports the usual set algebra in O(1)
    word operations. This module is the workhorse of the whole library:
    live sets of adversaries, carriers in the standard simplex, IS
    views, and participation sets are all [Pset.t] values. *)

type t = private int
(** A set of processes. The private representation is the bitmask
    itself, so equality, comparison and hashing are the built-in ones on
    [int]. *)

val max_processes : int
(** Largest supported universe size (62 on 64-bit platforms). *)

val empty : t

val full : int -> t
(** [full n] is [{0, …, n-1}]. Raises [Invalid_argument] if [n] is
    negative or exceeds {!max_processes}. *)

val singleton : int -> t
val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
(** [subset a b] is true iff [a ⊆ b]. *)

val proper_subset : t -> t -> bool
(** [proper_subset a b] is true iff [a ⊊ b]. *)

val disjoint : t -> t -> bool
val is_empty : t -> bool
val cardinal : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val min_elt : t -> int
(** Smallest process id in the set. Raises [Not_found] on the empty
    set. *)

val max_elt : t -> int
(** Largest process id in the set. Raises [Not_found] on the empty
    set. *)

val choose : t -> int
(** Deterministic choice: the smallest element. Raises [Not_found] on
    the empty set. *)

val of_list : int list -> t
val to_list : t -> int list
(** Elements in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over elements in increasing order. *)

val iter : (int -> unit) -> t -> unit
val for_all : (int -> bool) -> t -> bool
val exists : (int -> bool) -> t -> bool
val filter : (int -> bool) -> t -> t

val subsets : t -> t list
(** All [2^|s|] subsets of [s], the empty set first. *)

val nonempty_subsets : t -> t list
(** All nonempty subsets of [s]. *)

val subsets_of_card : int -> t -> t list
(** [subsets_of_card k s] lists the subsets of [s] of cardinal [k]. *)

val of_mask : int -> t
(** Unsafe-ish constructor from a raw bitmask (must be non-negative). *)

val to_mask : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [{p0,p2}] using process names [p<i>]. *)

val to_string : t -> string
