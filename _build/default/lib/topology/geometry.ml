type point = float array

let rec coords ~n v =
  match v with
  | Vertex.Input { proc; _ } ->
    Array.init n (fun i -> if i = proc then 1.0 else 0.0)
  | Vertex.Deriv { proc; carrier } ->
    let k = List.length carrier in
    let own = 1.0 /. float_of_int ((2 * k) - 1) in
    let other = 2.0 /. float_of_int ((2 * k) - 1) in
    let acc = Array.make n 0.0 in
    List.iter
      (fun w ->
        let c = coords ~n w in
        let weight = if Vertex.proc w = proc then own else other in
        Array.iteri (fun i x -> acc.(i) <- acc.(i) +. (weight *. x)) c)
      carrier;
    acc

(* Determinant by Gaussian elimination with partial pivoting. *)
let det m =
  let size = Array.length m in
  let m = Array.map Array.copy m in
  let sign = ref 1.0 in
  let result = ref 1.0 in
  (try
     for col = 0 to size - 1 do
       (* pivot *)
       let pivot = ref col in
       for row = col + 1 to size - 1 do
         if abs_float m.(row).(col) > abs_float m.(!pivot).(col) then
           pivot := row
       done;
       if abs_float m.(!pivot).(col) < 1e-12 then begin
         result := 0.0;
         raise Exit
       end;
       if !pivot <> col then begin
         let tmp = m.(col) in
         m.(col) <- m.(!pivot);
         m.(!pivot) <- tmp;
         sign := -. !sign
       end;
       result := !result *. m.(col).(col);
       for row = col + 1 to size - 1 do
         let factor = m.(row).(col) /. m.(col).(col) in
         for j = col to size - 1 do
           m.(row).(j) <- m.(row).(j) -. (factor *. m.(col).(j))
         done
       done
     done
   with Exit -> ());
  !sign *. !result

let volume_fraction ~n sigma =
  if Simplex.card sigma <> n then 0.0
  else
    let pts = List.map (coords ~n) (Simplex.vertices sigma) in
    match pts with
    | [] -> 0.0
    | p0 :: rest ->
      (* Chart: drop the last barycentric coordinate. The standard
         simplex itself has the corners as unit vectors, so its chart
         matrix is the identity minus nothing — determinant 1; the
         fraction is just |det| of the difference matrix. *)
      let m =
        Array.of_list
          (List.map
             (fun p -> Array.init (n - 1) (fun i -> p.(i) -. p0.(i)))
             rest)
      in
      abs_float (det m)

let total_volume k =
  let n = Complex.n k in
  List.fold_left
    (fun acc f -> acc +. volume_fraction ~n f)
    0.0 (Complex.facets k)

let barycenter pts =
  match pts with
  | [] -> invalid_arg "Geometry.barycenter: no points"
  | p :: _ ->
    let n = Array.length p in
    let acc = Array.make n 0.0 in
    List.iter (Array.iteri (fun i x -> acc.(i) <- acc.(i) +. x)) pts;
    Array.map (fun x -> x /. float_of_int (List.length pts)) acc
