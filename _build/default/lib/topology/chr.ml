let standard n =
  let vs = List.init n Vertex.base in
  Complex.of_facets ~n [ Simplex.make vs ]

let facet_of_run tau run =
  let vs =
    List.map
      (fun (p, view) -> Vertex.deriv p (Simplex.restrict tau view :> Vertex.t list))
      (Opart.views run)
  in
  Simplex.make vs

let subdivide_simplex tau =
  let runs = Opart.enumerate (Simplex.colors tau) in
  List.map (facet_of_run tau) runs

let subdivide k =
  let gens = List.concat_map subdivide_simplex (Complex.facets k) in
  Complex.of_facets ~n:(Complex.n k) gens

let rec iterate m k = if m <= 0 then k else iterate (m - 1) (subdivide k)

let facet_of_runs tau runs = List.fold_left facet_of_run tau runs

let run_of_facet sigma =
  let pairs =
    List.map
      (fun v ->
        match v with
        | Vertex.Deriv { proc; carrier } ->
          (proc, Simplex.colors (Simplex.make carrier))
        | Vertex.Input _ ->
          invalid_arg "Chr.run_of_facet: base-level vertex")
      (Simplex.vertices sigma)
  in
  match Opart.of_views pairs with
  | Some run -> run
  | None -> invalid_arg "Chr.run_of_facet: not a full facet of Chr"

let carrier = Simplex.carrier

let is_simplex_of_chr sigma =
  let entries =
    List.map
      (fun v ->
        match v with
        | Vertex.Deriv { proc; carrier } -> (proc, Simplex.make carrier)
        | Vertex.Input _ ->
          invalid_arg "Chr.is_simplex_of_chr: base-level vertex")
      (Simplex.vertices sigma)
  in
  (* containment: carriers pairwise ordered by inclusion;
     immediacy: c_i ∈ χ(σ_j) implies σ_i ⊆ σ_j;
     self-inclusion: c_i ∈ χ(σ_i). *)
  List.for_all
    (fun (ci, si) ->
      Pset.mem ci (Simplex.colors si)
      && List.for_all
           (fun (_, sj) -> Simplex.subset si sj || Simplex.subset sj si)
           entries
      && List.for_all
           (fun (_, sj) ->
             (not (Pset.mem ci (Simplex.colors sj))) || Simplex.subset si sj)
           entries)
    entries
