type t = Vertex.t list

let make vs =
  let sorted = List.sort_uniq Vertex.compare vs in
  if List.length sorted <> List.length vs then
    invalid_arg "Simplex.make: duplicate vertex";
  let seen =
    List.fold_left
      (fun acc v ->
        let p = Vertex.proc v in
        if Pset.mem p acc then
          invalid_arg "Simplex.make: two vertices share a color";
        Pset.add p acc)
      Pset.empty sorted
  in
  ignore seen;
  sorted

let empty = []
let of_vertex v = [ v ]
let vertices t = t

let colors t =
  List.fold_left (fun acc v -> Pset.add (Vertex.proc v) acc) Pset.empty t

let card = List.length
let dim t = card t - 1
let is_empty t = t = []
let mem v t = List.exists (Vertex.equal v) t
let find_color c t = List.find_opt (fun v -> Vertex.proc v = c) t
let subset a b = List.for_all (fun v -> mem v b) a
let restrict t s = List.filter (fun v -> Pset.mem (Vertex.proc v) s) t

let union a b =
  let merged = List.sort_uniq Vertex.compare (a @ b) in
  let _ =
    List.fold_left
      (fun acc v ->
        let p = Vertex.proc v in
        if Pset.mem p acc then
          invalid_arg "Simplex.union: color clash between distinct vertices";
        Pset.add p acc)
      Pset.empty merged
  in
  merged

let diff a b = List.filter (fun v -> not (mem v b)) a
let inter a b = List.filter (fun v -> mem v b) a

let subsimplices t =
  List.fold_left
    (fun acc v -> acc @ List.map (fun f -> v :: f) acc)
    [ [] ]
    (List.rev t)

let faces t = List.filter (fun f -> f <> []) (subsimplices t)
let proper_faces t = List.filter (fun f -> f <> [] && f <> t) (subsimplices t)

let carrier t =
  List.fold_left (fun acc v -> union acc (Vertex.carrier v)) empty t

let base_carrier t =
  List.fold_left
    (fun acc v -> Pset.union acc (Vertex.base_carrier v))
    Pset.empty t

let rec base_vertex_list v =
  match v with
  | Vertex.Input _ -> [ v ]
  | Vertex.Deriv { carrier; _ } -> List.concat_map base_vertex_list carrier

let base_simplex t =
  List.concat_map base_vertex_list t |> List.sort_uniq Vertex.compare

let compare = List.compare Vertex.compare
let equal a b = compare a b = 0

let pp ppf t =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       Vertex.pp)
    t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = Hashtbl.hash
end)
