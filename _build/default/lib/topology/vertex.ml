type t =
  | Input of { proc : int; value : int }
  | Deriv of { proc : int; carrier : t list }

let proc = function Input { proc; _ } | Deriv { proc; _ } -> proc

let input proc value = Input { proc; value }
let base proc = Input { proc; value = 0 }

let rec compare a b =
  match (a, b) with
  | Input x, Input y ->
    let c = Stdlib.compare x.proc y.proc in
    if c <> 0 then c else Stdlib.compare x.value y.value
  | Input _, Deriv _ -> -1
  | Deriv _, Input _ -> 1
  | Deriv x, Deriv y ->
    let c = Stdlib.compare x.proc y.proc in
    if c <> 0 then c else List.compare compare x.carrier y.carrier

let equal a b = compare a b = 0
let hash v = Hashtbl.hash v

let deriv p carrier =
  if not (List.exists (fun v -> proc v = p) carrier) then
    invalid_arg "Vertex.deriv: carrier does not contain the vertex color";
  Deriv { proc = p; carrier }

let carrier = function
  | Input _ as v -> [ v ]
  | Deriv { carrier; _ } -> carrier

let rec base_carrier = function
  | Input { proc; _ } -> Pset.singleton proc
  | Deriv { carrier; _ } ->
    List.fold_left
      (fun acc v -> Pset.union acc (base_carrier v))
      Pset.empty carrier

let rec level = function
  | Input _ -> 0
  | Deriv { carrier = v :: _; _ } -> 1 + level v
  | Deriv { carrier = []; _ } -> 1

let rec value = function
  | Input { value; _ } -> value
  | Deriv { proc = p; carrier } ->
    (match List.find_opt (fun v -> proc v = p) carrier with
    | Some v -> value v
    | None -> invalid_arg "Vertex.value: self not in carrier")

let rec pp ppf = function
  | Input { proc; value } ->
    if value = 0 then Format.fprintf ppf "p%d" proc
    else Format.fprintf ppf "p%d=%d" proc value
  | Deriv { proc; carrier } ->
    Format.fprintf ppf "(p%d,[%a])" proc
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
         pp)
      carrier
