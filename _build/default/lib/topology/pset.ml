type t = int

let max_processes = 62

let empty = 0

let check_id i =
  if i < 0 || i >= max_processes then
    invalid_arg (Printf.sprintf "Pset: process id %d out of range" i)

let full n =
  if n < 0 || n > max_processes then
    invalid_arg (Printf.sprintf "Pset.full: bad universe size %d" n);
  if n = 0 then 0 else (1 lsl n) - 1

let singleton i = check_id i; 1 lsl i
let mem i s = check_id i; s land (1 lsl i) <> 0
let add i s = check_id i; s lor (1 lsl i)
let remove i s = check_id i; s land lnot (1 lsl i)
let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b
let subset a b = a land lnot b = 0
let equal (a : int) (b : int) = a = b
let proper_subset a b = subset a b && not (equal a b)
let disjoint a b = a land b = 0
let is_empty s = s = 0
let compare (a : int) (b : int) = Stdlib.compare a b
let hash (s : int) = Hashtbl.hash s

let cardinal s =
  let rec loop s acc = if s = 0 then acc else loop (s land (s - 1)) (acc + 1) in
  loop s 0

let min_elt s =
  if s = 0 then raise Not_found;
  (* index of lowest set bit *)
  let rec loop i = if s land (1 lsl i) <> 0 then i else loop (i + 1) in
  loop 0

let max_elt s =
  if s = 0 then raise Not_found;
  let rec loop i = if s land (1 lsl i) <> 0 then i else loop (i - 1) in
  loop (max_processes - 1)

let choose = min_elt

let fold f s acc =
  let rec loop i acc =
    if i >= max_processes || s lsr i = 0 then acc
    else if s land (1 lsl i) <> 0 then loop (i + 1) (f i acc)
    else loop (i + 1) acc
  in
  loop 0 acc

let iter f s = fold (fun i () -> f i) s ()
let to_list s = List.rev (fold (fun i acc -> i :: acc) s [])
let of_list l = List.fold_left (fun acc i -> add i acc) empty l
let for_all p s = fold (fun i acc -> acc && p i) s true
let exists p s = fold (fun i acc -> acc || p i) s false
let filter p s = fold (fun i acc -> if p i then add i acc else acc) s empty

(* Enumerate subsets of [s] by the standard submask-walk trick, then
   reverse so the empty set comes first. *)
let subsets s =
  let rec loop sub acc =
    let acc = sub :: acc in
    if sub = 0 then acc else loop ((sub - 1) land s) acc
  in
  loop s []

let nonempty_subsets s = List.filter (fun x -> x <> 0) (subsets s)

let subsets_of_card k s = List.filter (fun x -> cardinal x = k) (subsets s)

let of_mask m =
  if m < 0 then invalid_arg "Pset.of_mask: negative mask";
  m

let to_mask s = s

let pp ppf s =
  Format.fprintf ppf "{%s}"
    (String.concat "," (List.map (fun i -> "p" ^ string_of_int i) (to_list s)))

let to_string s = Format.asprintf "%a" pp s
