lib/core/fact.mli: Fact_adversary Fact_affine Fact_runtime Fact_tasks Fact_topology
