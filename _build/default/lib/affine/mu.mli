(** α-adaptive leader election in [R_A]: the [µ_Q] map (Section 6.2).

    Given a set [Q] of processes that may participate in an agreement
    protocol, [µ_Q] assigns to each vertex [v ∈ R_A] with [χ(v) ∈ Q] a
    leader process in [Q ∩ χ(carrier(v, s))]:

    - if the process observes a critical simplex whose View1 meets [Q]
      ([χ(CSV_α(carrier(v, Chr s))) ∩ Q ≠ ∅]), the leader is drawn from
      the smallest such critical View1 ([δ_Q]);
    - otherwise from the smallest observed View1 meeting [Q] ([γ_Q]);
    - in both cases the leader is the minimum process id in the
      selected view intersected with [Q] ([min_Q]).

    Properties 9 (validity), 10 (agreement: at most
    [α(χ(carrier(θ,s)))] distinct leaders on any θ ⊆ σ with χ(θ) ⊆ Q)
    and 12 (robustness: only [Q ∩ carrier(v,s)] matters) are verified
    exhaustively by the test suite. *)

open Fact_topology
open Fact_adversary

val delta_q : Agreement.t -> q:Pset.t -> Vertex.t -> Pset.t option
(** The smallest critical View1 meeting [Q], if any. *)

val gamma_q : q:Pset.t -> Vertex.t -> Pset.t option
(** The smallest observed View1 meeting [Q], if any. *)

val leader : Agreement.t -> q:Pset.t -> Vertex.t -> int
(** [µ_Q(v)]. Raises [Invalid_argument] if [χ(v) ∉ Q] or the vertex is
    not at level 2 (in both cases [µ_Q] is undefined). *)

val leaders : Agreement.t -> q:Pset.t -> Simplex.t -> Pset.t
(** The set [{µ_Q(v) : v ∈ θ, χ(v) ∈ Q}]. *)
