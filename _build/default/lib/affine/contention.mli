(** The 2-contention complex [Cont2] (Definition 5, Figure 4).

    Two vertices of [Chr² s] are {e contending} if their View1 and
    View2 are strictly ordered in opposite ways. A simplex all of whose
    vertex pairs are contending is a 2-contention simplex. [Cont2] is
    inclusion-closed, hence a complex. *)

open Fact_topology

val contending : Vertex.t -> Vertex.t -> bool
(** Both vertices must be at level 2. *)

val is_contention_simplex : Simplex.t -> bool
(** True for every simplex of dimension ≤ 0 (vacuously). *)

val max_contention_dim : Simplex.t -> int
(** Dimension of the largest contention face of the given simplex
    (−1 if even single vertices are excluded — never happens for
    nonempty simplices, whose vertices are 0-dimensional contention
    simplices). *)

val complex : Complex.t -> Complex.t
(** The 2-contention sub-complex of the given sub-complex of
    [Chr² s]: all its contention simplices (given by maximal ones). *)

val simplices_of_dim_ge : int -> Complex.t -> Simplex.t list
(** All contention simplices of dimension ≥ k in the complex — the
    prohibited set of Definition 6. *)
