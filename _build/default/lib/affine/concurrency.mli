(** The concurrency map [Conc_α] (Definition 8, Figure 6).

    [Conc_α(σ)], for σ ∈ Chr s, is the largest agreement power
    associated with a critical face of σ (0 if σ has none):
    [max (0 ∪ {α(χ(carrier(τ,s))) : τ ∈ CS_α(σ)})]. *)

open Fact_topology
open Fact_adversary

val level : Agreement.t -> Simplex.t -> int
(** [Conc_α(σ)] for σ ∈ Chr s. *)

val classify : Agreement.t -> Complex.t -> (Simplex.t * int) list
(** Concurrency level of every simplex of a sub-complex of [Chr s]
    (regenerates Figure 6). *)

val histogram : Agreement.t -> Complex.t -> (int * int) list
(** [(level, how many simplices)] pairs, sorted by level. *)
