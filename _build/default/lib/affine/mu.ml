open Fact_topology

(* Smallest set (by inclusion) among a nonempty list of pairwise
   comparable sets — carriers inside one simplex of Chr s are totally
   ordered by inclusion, so minimizing cardinality is sound. *)
let smallest sets =
  match sets with
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun acc s -> if Pset.cardinal s < Pset.cardinal acc then s else acc)
         first rest)

let delta_q alpha ~q v =
  let car = Views.chr1_carrier v in
  Critical.critical_subsets alpha car
  |> List.filter_map (fun cs ->
         let view = Simplex.base_carrier cs in
         if Pset.disjoint view q then None else Some view)
  |> smallest

let gamma_q ~q v =
  let car = Views.chr1_carrier v in
  Simplex.vertices car
  |> List.filter_map (fun v' ->
         let view = Vertex.base_carrier v' in
         if Pset.disjoint view q then None else Some view)
  |> smallest

let leader alpha ~q v =
  if Vertex.level v <> 2 then invalid_arg "Mu.leader: vertex not at level 2";
  if not (Pset.mem (Vertex.proc v) q) then
    invalid_arg "Mu.leader: vertex color not in Q";
  let car = Views.chr1_carrier v in
  let csv = Critical.view alpha car in
  let selected =
    if not (Pset.disjoint csv q) then delta_q alpha ~q v else gamma_q ~q v
  in
  match selected with
  | Some view -> Pset.min_elt (Pset.inter view q)
  | None ->
    (* χ(v) ∈ Q and v sees itself, so γ_Q always has a candidate. *)
    assert false

let leaders alpha ~q theta =
  List.fold_left
    (fun acc v ->
      if Pset.mem (Vertex.proc v) q then Pset.add (leader alpha ~q v) acc
      else acc)
    Pset.empty (Simplex.vertices theta)
