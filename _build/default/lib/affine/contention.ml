open Fact_topology

let contending v v' =
  let v1 = Views.view1 v and v1' = Views.view1 v' in
  let v2 = Views.view2 v and v2' = Views.view2 v' in
  (Pset.proper_subset v1 v1' && Pset.proper_subset v2' v2)
  || (Pset.proper_subset v1' v1 && Pset.proper_subset v2 v2')

let is_contention_simplex s =
  let vs = Simplex.vertices s in
  let rec pairs = function
    | [] -> true
    | v :: rest ->
      List.for_all (fun v' -> contending v v') rest && pairs rest
  in
  pairs vs

(* Largest contention face: greedy does not work, enumerate faces from
   large to small. Simplices here have at most n vertices, so 2^n
   faces. *)
let max_contention_dim s =
  List.fold_left
    (fun acc f -> if is_contention_simplex f then max acc (Simplex.dim f) else acc)
    (-1) (Simplex.faces s)

let complex k =
  let gens =
    List.filter is_contention_simplex (Complex.all_simplices k)
  in
  Complex.of_facets ~n:(Complex.n k) gens

let simplices_of_dim_ge d k =
  List.filter
    (fun s -> Simplex.dim s >= d && is_contention_simplex s)
    (Complex.all_simplices k)
